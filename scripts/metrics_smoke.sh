#!/bin/sh
# metrics-smoke: end-to-end check of the streaming observability layer.
#
#  1. Boot a real tvarouter with /metrics enabled, scrape it with
#     tvatop -once, and require the shared-name series contract —
#     tvatop's parser is strict, so this also validates the exposition
#     format itself.
#  2. Run the same seeded tvasim flood twice and require (a) the
#     attack-onset health engine to walk ... -> under-attack, and
#     (b) the health transition log and final exposition snapshot to
#     be byte-identical across the two runs — the determinism the
#     registry promises.
#
# Exits non-zero on any failure. Run via `make metrics-smoke`.
set -eu

dir=$(mktemp -d)
router_pid=""
cleanup() {
	[ -n "$router_pid" ] && kill "$router_pid" 2>/dev/null || true
	rm -rf "$dir"
}
trap cleanup EXIT INT TERM

echo "# metrics-smoke: building tvarouter, tvatop, tvasim"
go build -o "$dir/tvarouter" ./cmd/tvarouter
go build -o "$dir/tvatop" ./cmd/tvatop
go build -o "$dir/tvasim" ./cmd/tvasim

echo "# metrics-smoke: booting tvarouter with /metrics"
# One route so a neighbour port (and its labelled queue/token series)
# exists; the next hop never has to answer.
"$dir/tvarouter" -listen 127.0.0.1:0 -metrics 127.0.0.1:0 \
	-route 10.0.0.1=127.0.0.1:9 -metrics-interval 200ms -stats 0 \
	>"$dir/router.log" 2>&1 &
router_pid=$!

url=""
for _ in $(seq 1 50); do
	url=$(sed -n 's/^metrics on \(http:[^ ]*\/metrics\).*$/\1/p' "$dir/router.log")
	[ -n "$url" ] && break
	kill -0 "$router_pid" 2>/dev/null || {
		echo "metrics-smoke: tvarouter died:" >&2
		cat "$dir/router.log" >&2
		exit 1
	}
	sleep 0.1
done
[ -n "$url" ] || { echo "metrics-smoke: no metrics URL in router log" >&2; exit 1; }

# Poll the endpoint until the full required series set (including the
# :rate series that only exist once the sampler has ticked twice)
# scrapes cleanly, bounded at ~5s — no fixed sleep, so the script is
# as fast as the router and never flakes on a slow runner.
echo "# metrics-smoke: polling $url until the overlay series set scrapes"
ready=""
for _ in $(seq 1 50); do
	if "$dir/tvatop" -once -require-set overlay "$url" >/dev/null 2>&1; then
		ready=1
		break
	fi
	kill -0 "$router_pid" 2>/dev/null || {
		echo "metrics-smoke: tvarouter died while polling:" >&2
		cat "$dir/router.log" >&2
		exit 1
	}
	sleep 0.1
done
[ -n "$ready" ] || {
	echo "metrics-smoke: /metrics never satisfied the overlay series set; last scrape:" >&2
	"$dir/tvatop" -once -require-set overlay "$url" >&2 || true
	exit 1
}

echo "# metrics-smoke: scraping $url with tvatop -once"
# -require-set resolves to internal/metrics.OverlaySeries (plus the
# :rate proof that the sampler ticked), so the required series set and
# the router's registrations come from the same constants — the
# metricname analyzer keeps both sides honest.
"$dir/tvatop" -once -require-set overlay "$url"

echo "# metrics-smoke: requiring the per-sender flow series explicitly"
# The flow series ride in OverlaySeries and so are already covered
# above; requiring them by name keeps this check meaningful even if
# the plane sets are ever reshuffled.
"$dir/tvatop" -once \
	-require tva_flow_tracked_senders,tva_flow_bytes_total,tva_flow_top_share,tva_flow_fairness_jain,tva_flow_goodput_maxmin_ratio \
	"$url" >/dev/null

echo "# metrics-smoke: checking the fairness gauge in the raw exposition"
curl -sf "$url" >"$dir/exposition.prom"
grep -q '^tva_flow_fairness_jain ' "$dir/exposition.prom" || {
	echo "metrics-smoke: exposition is missing the fairness gauge:" >&2
	grep '^tva_flow' "$dir/exposition.prom" >&2 || true
	exit 1
}

echo "# metrics-smoke: checking the /flows JSON endpoint"
flows_url="${url%/metrics}/flows"
curl -sf "$flows_url" >"$dir/flows.json"
grep -q '"tracked"' "$dir/flows.json" && grep -q '"jain"' "$dir/flows.json" || {
	echo "metrics-smoke: $flows_url did not serve a flows document:" >&2
	cat "$dir/flows.json" >&2
	exit 1
}

kill "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=""

echo "# metrics-smoke: seeded flood determinism (two identical runs)"
run_flood() {
	"$dir/tvasim" -fig 8 -schemes tva -attackers 20 -duration 8 -seed 7 \
		-metrics "$dir/run$1.csv" -prom "$dir/run$1.prom" \
		>"$dir/run$1.out" 2>&1
	grep '^health: ' "$dir/run$1.out" >"$dir/run$1.health"
}
run_flood 1
run_flood 2

grep -q -- '-> under-attack' "$dir/run1.health" || {
	echo "metrics-smoke: flood never reached under-attack:" >&2
	cat "$dir/run1.health" >&2
	exit 1
}
cmp "$dir/run1.health" "$dir/run2.health" || {
	echo "metrics-smoke: health transitions differ across same-seed runs" >&2
	diff "$dir/run1.health" "$dir/run2.health" >&2 || true
	exit 1
}
cmp "$dir/run1.csv" "$dir/run2.csv" || {
	echo "metrics-smoke: metrics time series differ across same-seed runs" >&2
	exit 1
}
cmp "$dir/run1.prom" "$dir/run2.prom" || {
	echo "metrics-smoke: exposition snapshots differ across same-seed runs" >&2
	exit 1
}
grep -q '^tva_flow_fairness_jain ' "$dir/run1.prom" || {
	echo "metrics-smoke: sim exposition is missing the fairness gauge" >&2
	exit 1
}
echo "# metrics-smoke: attack onset detected deterministically:"
cat "$dir/run1.health"
echo "metrics-smoke: ok"
