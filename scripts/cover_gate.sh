#!/bin/sh
# cover-gate: enforce the repo-total statement coverage floor.
#
# Reads a go coverage profile (default cover.out, override as $1),
# extracts the total from `go tool cover -func`, surfaces it — in the
# GitHub job summary when $GITHUB_STEP_SUMMARY is set — and exits
# non-zero when it is below $COVER_FLOOR percent (default 70).
#
# Run via `make cover` (which writes the profile first).
set -eu

floor=${COVER_FLOOR:-70}
profile=${1:-cover.out}

[ -f "$profile" ] || {
	echo "cover-gate: no coverage profile at $profile (run 'make cover')" >&2
	exit 1
}

total=$(go tool cover -func="$profile" | awk 'END { sub(/%$/, "", $NF); print $NF }')
echo "cover-gate: total statement coverage ${total}% (floor ${floor}%)"

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
	{
		echo "### Coverage"
		echo ""
		echo "Total statement coverage: **${total}%** (floor: ${floor}%)"
	} >>"$GITHUB_STEP_SUMMARY"
fi

ok=$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t + 0 >= f + 0) ? "yes" : "no" }')
if [ "$ok" != yes ]; then
	echo "cover-gate: coverage ${total}% is below the ${floor}% floor" >&2
	exit 1
fi
