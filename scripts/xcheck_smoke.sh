#!/bin/sh
# xcheck-smoke: the sim-vs-real agreement gate.
#
# Runs the two canonical cross-validation scenarios (legit-only
# baseline, legacy flood) on both data planes — the discrete-event
# simulator and an in-process loopback overlay deployment — and fails
# if any gated divergence check exceeds its declared tolerance. The
# JSON divergence report lands at $XCHECK_REPORT (default
# xcheck_report.json in the working directory) whether or not the gate
# passes, so CI can upload it as an artifact either way.
#
# Run via `make xcheck`.
set -eu

report=${XCHECK_REPORT:-xcheck_report.json}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

echo "# xcheck-smoke: building tvaxcheck"
go build -o "$dir/tvaxcheck" ./cmd/tvaxcheck

echo "# xcheck-smoke: cross-validating scenarios: baseline flood"
status=0
"$dir/tvaxcheck" -o "$report" baseline flood || status=$?

echo "# xcheck-smoke: divergence report written to $report"
if [ "$status" -ne 0 ]; then
	echo "xcheck-smoke: planes diverged beyond tolerance (see report)" >&2
	exit "$status"
fi
echo "xcheck-smoke: ok"
