// Integration tests against the public facade: the paper's end-to-end
// claims exercised through exactly the API a downstream user sees.
package tva_test

import (
	"math/rand"
	"testing"
	"time"

	"tva"
)

// fixedClock drives facade-level protocol tests.
type fixedClock struct{ t tva.Time }

func (c *fixedClock) Now() tva.Time { return c.t }

func TestFacadeCapabilityLifecycle(t *testing.T) {
	clock := &fixedClock{}
	router := tva.NewRouter(tva.RouterConfig{Suite: tva.CryptoSuite, TrustBoundary: true})

	alice := tva.AddrFrom(10, 0, 0, 1)
	bob := tva.AddrFrom(10, 0, 0, 2)
	shims := map[tva.Addr]*tva.Shim{}
	deliver := func(pkt *tva.Packet) {
		router.Process(pkt, 0, clock.Now())
		if s := shims[pkt.Dst]; s != nil {
			s.Receive(pkt)
		}
	}
	a := tva.NewShim(alice, tva.NewClientPolicy(), clock, rand.New(rand.NewSource(1)),
		tva.ShimConfig{Suite: tva.CryptoSuite, AutoReturn: true})
	b := tva.NewShim(bob, tva.NewServerPolicy(), clock, rand.New(rand.NewSource(2)),
		tva.ShimConfig{Suite: tva.CryptoSuite, AutoReturn: true})
	a.Output, b.Output = deliver, deliver
	shims[alice], shims[bob] = a, b

	var delivered int
	b.Deliver = func(src tva.Addr, proto tva.Proto, payload any, size int, demoted bool) {
		if demoted {
			t.Errorf("authorized traffic demoted")
		}
		delivered++
	}

	a.Send(bob, tva.ProtoRaw, nil, 100) // request
	if !a.HasCaps(bob) {
		t.Fatal("handshake failed through the facade")
	}
	for i := 0; i < 10; i++ {
		a.Send(bob, tva.ProtoRaw, nil, 1000)
	}
	if delivered != 11 {
		t.Errorf("delivered %d, want 11", delivered)
	}
	if router.Cache().Len() == 0 {
		t.Error("router kept no flow state for an active flow")
	}
}

func TestFacadeAuthorityRoundtrip(t *testing.T) {
	auth := tva.NewAuthority(tva.CryptoSuite, 0)
	now := tva.Time(5e9)
	pre := auth.PreCap(1, 2, now)
	cap := tva.CryptoSuite.MakeCap(pre, 32, 10)
	if !auth.ValidateCap(1, 2, cap, 32, 10, now) {
		t.Error("facade authority roundtrip failed")
	}
	if auth.ValidateCap(2, 1, cap, 32, 10, now) {
		t.Error("capability valid for the reverse flow")
	}
}

// TestHeadlineClaim is the abstract's sentence as a test: "attack
// traffic can only degrade legitimate traffic to a limited extent,
// significantly outperforming previously proposed DoS solutions."
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	const attackers = 100
	dur := 15 * time.Second
	frac := map[tva.Scheme]float64{}
	for _, s := range []tva.Scheme{tva.SchemeInternet, tva.SchemeSIFF, tva.SchemePushback, tva.SchemeTVA} {
		frac[s] = tva.RunSim(tva.SimConfig{
			Scheme: s, Attack: tva.AttackLegacyFlood,
			NumAttackers: attackers, Duration: dur, Seed: 1,
		}).CompletionFraction()
	}
	if frac[tva.SchemeTVA] < 0.95 {
		t.Errorf("TVA completion %.3f under 10x flood, want ≥0.95", frac[tva.SchemeTVA])
	}
	for _, s := range []tva.Scheme{tva.SchemeInternet, tva.SchemeSIFF} {
		if frac[s] >= frac[tva.SchemeTVA] {
			t.Errorf("%v (%.3f) not outperformed by TVA (%.3f)", s, frac[s], frac[tva.SchemeTVA])
		}
	}
}

// TestSweepShapeFig8 checks the qualitative Fig. 8 curve through the
// facade sweep helper: TVA flat, Internet monotonically collapsing.
func TestSweepShapeFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test skipped in -short mode")
	}
	counts := []int{1, 30, 100}
	base := tva.SimConfig{Attack: tva.AttackLegacyFlood, Duration: 12 * time.Second, Seed: 1}

	tvaCfg := base
	tvaCfg.Scheme = tva.SchemeTVA
	tvaPts := tva.SweepSim(tvaCfg, counts)
	for _, p := range tvaPts {
		if p.CompletionFraction < 0.95 {
			t.Errorf("TVA k=%d completion %.3f", p.Attackers, p.CompletionFraction)
		}
		if p.AvgTransferTime > 0.4 {
			t.Errorf("TVA k=%d transfer time %.3f", p.Attackers, p.AvgTransferTime)
		}
	}

	netCfg := base
	netCfg.Scheme = tva.SchemeInternet
	netPts := tva.SweepSim(netCfg, counts)
	if !(netPts[0].CompletionFraction > netPts[1].CompletionFraction &&
		netPts[1].CompletionFraction >= netPts[2].CompletionFraction) {
		t.Errorf("Internet completion not monotone under rising attack: %+v", netPts)
	}
}

func TestOverlayThroughFacade(t *testing.T) {
	router, err := tva.NewOverlayRouter(tva.OverlayRouterConfig{
		Listen: "127.0.0.1:0",
		Core:   tva.RouterConfig{Suite: tva.FastSuite, TrustBoundary: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	mk := func(addr tva.Addr, pol tva.Policy) *tva.OverlayHost {
		h, err := tva.NewOverlayHost(tva.OverlayHostConfig{
			Addr: addr, Listen: "127.0.0.1:0", Gateway: router.Addr().String(),
			Policy: pol, Shim: tva.ShimConfig{Suite: tva.FastSuite, AutoReturn: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		if err := router.AddRoute(addr, h.UDPAddr().String()); err != nil {
			t.Fatal(err)
		}
		return h
	}
	alice := mk(tva.AddrFrom(10, 0, 0, 1), tva.NewClientPolicy())
	bob := mk(tva.AddrFrom(10, 0, 0, 2), tva.NewServerPolicy())

	if err := alice.Send(bob.Addr(), []byte("facade")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-bob.Inbox:
		if string(msg.Payload) != "facade" {
			t.Fatalf("payload %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery through facade overlay")
	}
}
