// Quickstart: the TVA capability lifecycle end to end, in process.
//
// Two hosts are wired through two capability routers. Watch the
// packets change shape exactly as §4 describes: the first packet is a
// request that routers stamp with pre-capabilities; the destination
// converts them into a fine-grained grant (N bytes over T seconds);
// the next packet carries the capability list, seeding router flow
// caches; and everything after that needs only the 48-bit flow nonce.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"tva"
)

func main() {
	clock := clockAt(0)

	// Two capability routers on the path, as in the paper's Fig. 1.
	routers := []*tva.Router{
		tva.NewRouter(tva.RouterConfig{Suite: tva.CryptoSuite, TrustBoundary: true}),
		tva.NewRouter(tva.RouterConfig{Suite: tva.CryptoSuite}),
	}

	alice := tva.AddrFrom(10, 0, 0, 1)
	bob := tva.AddrFrom(10, 0, 0, 2)
	shims := map[tva.Addr]*tva.Shim{}

	// deliver pushes a packet through every router and hands it to
	// the destination shim — an instantaneous, lossless "network".
	deliver := func(pkt *tva.Packet) {
		for i, r := range routers {
			class := r.Process(pkt, 0, clock.Now())
			fmt.Printf("    router %d: %-10v -> class %v\n", i+1, kindOf(pkt), class)
		}
		if dst := shims[pkt.Dst]; dst != nil {
			dst.Receive(pkt)
		}
	}

	// Bob is a public server: grant everyone 32 KB over 10 s and
	// blacklist misbehavers (§3.3). Alice is a client.
	bobShim := tva.NewShim(bob, tva.NewServerPolicy(), clock, rng(2), tva.ShimConfig{
		Suite: tva.CryptoSuite, AutoReturn: true,
	})
	aliceShim := tva.NewShim(alice, tva.NewClientPolicy(), clock, rng(1), tva.ShimConfig{
		Suite: tva.CryptoSuite, AutoReturn: true,
	})
	aliceShim.Output = deliver
	bobShim.Output = deliver
	shims[alice], shims[bob] = aliceShim, bobShim

	fmt.Println("1) Alice's first packet piggybacks a capability request:")
	aliceShim.Send(bob, tva.ProtoRaw, []byte("GET /"), 5)
	fmt.Printf("   alice authorized: %v (grant returned on Bob's carrier)\n\n", aliceShim.HasCaps(bob))

	fmt.Println("2) The next packet carries the capability list, seeding router caches:")
	aliceShim.Send(bob, tva.ProtoRaw, []byte("data"), 1000)
	fmt.Println()

	fmt.Println("3) Steady state: packets carry only the 48-bit flow nonce:")
	aliceShim.Send(bob, tva.ProtoRaw, []byte("data"), 1000)
	aliceShim.Send(bob, tva.ProtoRaw, []byte("data"), 1000)
	fmt.Println()

	fmt.Println("4) Approaching the 32 KB authorization, the shim renews in-band:")
	for i := 0; i < 24; i++ {
		aliceShim.Send(bob, tva.ProtoRaw, nil, 1000)
	}
	st := aliceShim.Stats
	fmt.Printf("\nshim stats: requests=%d regular=%d nonce-only=%d renewals=%d grants=%d\n",
		st.RequestsSent, st.RegularSent, st.NonceOnlySent, st.RenewalsSent, st.GrantsReceived)
	fmt.Printf("router 1 flow cache entries: %d\n", routers[0].Cache().Len())
}

func kindOf(pkt *tva.Packet) string {
	if pkt.Hdr == nil {
		return "legacy"
	}
	s := pkt.Hdr.Kind.String()
	if pkt.Hdr.Demoted {
		s += "(demoted)"
	}
	return s
}

type fixedClock struct{ t tva.Time }

func (c *fixedClock) Now() tva.Time { return c.t }

func clockAt(sec int64) *fixedClock {
	return &fixedClock{t: tva.Time(sec * 1e9)}
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
