// Overlay network: TVA over real UDP sockets on localhost — the
// incremental-deployment form of the paper's §8 (inline processing
// boxes plus host proxies).
//
// A capability router and two host proxies start on loopback; Alice
// pings Bob through the router, bootstrapping capabilities on the
// first exchange and riding the flow-nonce fast path afterwards.
//
//	go run ./examples/overlaynet
package main

import (
	"fmt"
	"log"
	"time"

	"tva"
)

func main() {
	router, err := tva.NewOverlayRouter(tva.OverlayRouterConfig{
		Listen: "127.0.0.1:0",
		Core:   tva.RouterConfig{Suite: tva.CryptoSuite, TrustBoundary: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	aliceAddr := tva.AddrFrom(10, 0, 0, 1)
	bobAddr := tva.AddrFrom(10, 0, 0, 2)

	newHost := func(addr tva.Addr, policy tva.Policy) *tva.OverlayHost {
		h, err := tva.NewOverlayHost(tva.OverlayHostConfig{
			Addr:    addr,
			Listen:  "127.0.0.1:0",
			Gateway: router.Addr().String(),
			Policy:  policy,
			Shim:    tva.ShimConfig{Suite: tva.CryptoSuite, AutoReturn: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := router.AddRoute(addr, h.UDPAddr().String()); err != nil {
			log.Fatal(err)
		}
		return h
	}

	alice := newHost(aliceAddr, tva.NewClientPolicy())
	defer alice.Close()
	bob := newHost(bobAddr, tva.NewServerPolicy())
	defer bob.Close()

	// Bob echoes.
	go func() {
		for msg := range bob.Inbox {
			bob.Send(msg.Src, msg.Payload)
		}
	}()

	fmt.Printf("router %s, alice %s, bob %s\n\n", router.Addr(), alice.UDPAddr(), bob.UDPAddr())
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := alice.Send(bobAddr, []byte(fmt.Sprintf("ping %d", i))); err != nil {
			log.Fatal(err)
		}
		select {
		case msg := <-alice.Inbox:
			mode := "request"
			if alice.HasCaps(bobAddr) {
				mode = "capability"
			}
			fmt.Printf("reply %q rtt=%v mode=%s\n", msg.Payload,
				time.Since(start).Round(time.Microsecond), mode)
		case <-time.After(2 * time.Second):
			fmt.Println("timeout")
		}
		time.Sleep(50 * time.Millisecond)
	}

	st := alice.Stats()
	fmt.Printf("\nalice shim: requests=%d grants=%d regular=%d nonce-only=%d\n",
		st.RequestsSent, st.GrantsReceived, st.RegularSent, st.NonceOnlySent)
	fmt.Printf("router: received=%d forwarded=%d\n", router.Received.Load(), router.Forwarded.Load())
}
