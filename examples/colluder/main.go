// Colluder attack: the paper's hardest scenario (§5.3, Fig. 10).
//
// Attackers cannot forge capabilities, so instead they collude: a host
// behind the same bottleneck authorizes their floods, making the
// attack traffic fully legitimate as far as capability checks go. TVA
// answers with per-destination fair queuing — the colluder's traffic
// and the victim's traffic split the bottleneck, so the victim keeps
// roughly half its bandwidth no matter how many attackers join.
//
//	go run ./examples/colluder
package main

import (
	"fmt"
	"time"

	"tva"
)

func main() {
	fmt.Println("authorized flood via a colluder (TVA, 30 simulated seconds per run)")
	fmt.Printf("%-10s %12s %14s\n", "attackers", "completion", "xfer-time(s)")
	for _, k := range []int{0, 10, 50, 100} {
		attack := tva.AttackAuthorizedFlood
		if k == 0 {
			attack = tva.AttackNone
		}
		res := tva.RunSim(tva.SimConfig{
			Scheme:       tva.SchemeTVA,
			Attack:       attack,
			NumAttackers: k,
			Duration:     30 * time.Second,
			Seed:         1,
		})
		fmt.Printf("%-10d %12.3f %14.3f\n", k, res.CompletionFraction(), res.AvgTransferTime())
	}

	fmt.Println("\nFor contrast, SIFF has no balancing between authorized flows — the")
	fmt.Println("same attack starves its users once it exceeds the bottleneck:")
	fmt.Printf("%-10s %12s %14s\n", "attackers", "completion", "xfer-time(s)")
	for _, k := range []int{10, 100} {
		res := tva.RunSim(tva.SimConfig{
			Scheme:       tva.SchemeSIFF,
			Attack:       tva.AttackAuthorizedFlood,
			NumAttackers: k,
			Duration:     30 * time.Second,
			Seed:         1,
		})
		fmt.Printf("%-10d %12.3f %14.3f\n", k, res.CompletionFraction(), res.AvgTransferTime())
	}
}
