// Flood defense: the paper's headline result (Fig. 8) in one run.
//
// Ten users repeatedly fetch a 20 KB file across a 10 Mb/s bottleneck
// while 100 attackers flood ten times the bottleneck's capacity at the
// same destination. Under today's Internet the transfers starve; under
// TVA the flood is unauthorized traffic that never competes with the
// users' capability-carrying packets.
//
//	go run ./examples/flooddefense
package main

import (
	"fmt"
	"time"

	"tva"
)

func main() {
	const attackers = 100
	fmt.Printf("10 users vs %d attackers flooding 10x the bottleneck (30 simulated seconds per run)\n\n", attackers)
	fmt.Printf("%-10s %12s %14s %12s\n", "scheme", "completed", "completion", "xfer-time(s)")

	for _, scheme := range []tva.Scheme{tva.SchemeInternet, tva.SchemeSIFF, tva.SchemePushback, tva.SchemeTVA} {
		res := tva.RunSim(tva.SimConfig{
			Scheme:       scheme,
			Attack:       tva.AttackLegacyFlood,
			NumAttackers: attackers,
			Duration:     30 * time.Second,
			Seed:         1,
		})
		done := 0
		for _, t := range res.Transfers {
			if t.Completed {
				done++
			}
		}
		fmt.Printf("%-10v %12d %14.3f %12.3f\n",
			scheme, done, res.CompletionFraction(), res.AvgTransferTime())
	}

	fmt.Println("\nTVA holds its no-attack baseline (~0.32s per transfer) because the")
	fmt.Println("legacy flood is confined to the lowest-priority queue (paper §5.1).")
}
