GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

# Per-target native fuzzing budget for fuzz-smoke; CI's scheduled fuzz
# job raises it (make fuzz-smoke FUZZTIME=30s).
FUZZTIME ?= 10s

# Repo-total statement coverage floor enforced by `make cover`.
COVER_FLOOR ?= 70

.PHONY: all build vet lint test race bench bench-guard bench-batch fuzz-smoke cover trace-smoke metrics-smoke xcheck check

all: check

build:
	go build ./...

# vet is kept for manual use; `make check` gets full vet coverage from
# the test target instead, so the tool runs exactly once per check.
vet:
	go vet ./...

# lint runs the repo's own eight-analyzer suite (internal/lint):
# hot-path allocation freedom, simulation determinism, drop-reason
# attribution, packet-pool ownership, lock discipline, atomic-field
# hygiene, goroutine shutdown edges, and cross-plane metric-name
# consistency. Non-zero exit on any finding.
lint:
	go run ./cmd/tvalint ./...

# -vet=all widens go test's implicit vet subset to every analyzer, so
# this is the one place vet runs during `make check` (the old layout
# ran `go vet` standalone and then again implicitly here).
test:
	go test -vet=all ./...

# The extra -count=2 pass re-runs the overlay shard/batch tests so the
# race detector sees worker startup and teardown twice in one process —
# the window the goleak analyzer reasons about statically.
race:
	go test -race -vet=off ./...
	go test -race -vet=off -count=2 -run 'Batch|Shard' ./internal/overlay

# bench writes a machine-readable snapshot (Table 1 ns/op + allocs/op,
# Fig. 12 peak kpps, scenario completion fractions) keyed by revision.
bench:
	go run ./cmd/tvabench -label $(GIT_SHA)

# bench-guard fails if any Table 1 row allocates more per packet than
# the committed baseline — the zero-allocation forwarding path must
# survive telemetry and whatever comes after it. The PR 10 baseline
# pins every row at 0 allocs/op with per-sender flow accounting
# (heavy-hitter table + count-min sketch) attached to the bench router.
bench-guard:
	go run ./cmd/tvabench -guard BENCH_pr10.json

# bench-batch measures the batched data path end to end over loopback
# sockets and fails unless batch=32 still forwards at >=2x the legacy
# per-datagram rate (the amortization the batching work exists for).
bench-batch:
	go run ./cmd/tvabench -guard-batch

# fuzz-smoke gives each native fuzz target $(FUZZTIME) of mutation on
# top of the seed corpus (go permits one -fuzz pattern per invocation).
fuzz-smoke:
	go test ./internal/packet -run '^$$' -fuzz FuzzWireUnmarshal -fuzztime $(FUZZTIME)
	go test ./internal/packet -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME)

# cover writes a coverage profile, then the gate script extracts the
# repo-total statement coverage, surfaces it (in the GitHub job summary
# when running in CI), and fails below $(COVER_FLOOR) percent.
cover:
	go test -vet=off -coverprofile=cover.out ./...
	COVER_FLOOR=$(COVER_FLOOR) sh scripts/cover_gate.sh cover.out

# trace-smoke round-trips a real flight-recorder dump through every
# tvatrace subcommand: a short traced Fig. 9 run writes smoke.trace,
# then each query must parse it and exit zero (chrome output is
# discarded; CI uploads smoke.trace itself as an artifact).
trace-smoke:
	go run ./cmd/tvasim -fig 9 -schemes tva -attackers 10 -duration 5 -tracefile smoke.trace
	go run ./cmd/tvatrace summary smoke.trace
	go run ./cmd/tvatrace slowest -n 3 smoke.trace
	go run ./cmd/tvatrace hops smoke.trace
	go run ./cmd/tvatrace drops smoke.trace
	go run ./cmd/tvatrace chrome -o /dev/null smoke.trace

# metrics-smoke boots a real tvarouter, scrapes /metrics with tvatop
# (strict parse + required shared-name series), then runs the same
# seeded tvasim flood twice and requires the attack-onset health
# transitions and the emitted time series to be byte-identical.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# xcheck cross-validates the two data planes: both canonical scenarios
# (baseline, flood) run on the simulator and on a loopback overlay
# deployment, and the gate fails on any out-of-tolerance divergence.
# The JSON divergence report lands at xcheck_report.json (override with
# XCHECK_REPORT=path).
xcheck:
	sh scripts/xcheck_smoke.sh

check: build lint test race bench-guard bench-batch
