GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

.PHONY: all build vet test race bench check

all: check

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench writes a machine-readable snapshot (Table 1 ns/op + allocs/op,
# Fig. 12 peak kpps, scenario completion fractions) keyed by revision.
bench:
	go run ./cmd/tvabench -label $(GIT_SHA)

check: build vet test race
