GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

.PHONY: all build vet test race bench bench-guard check

all: check

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench writes a machine-readable snapshot (Table 1 ns/op + allocs/op,
# Fig. 12 peak kpps, scenario completion fractions) keyed by revision.
bench:
	go run ./cmd/tvabench -label $(GIT_SHA)

# bench-guard fails if any Table 1 row allocates more per packet than
# the committed PR 1 baseline — the zero-allocation forwarding path
# must survive telemetry and whatever comes after it.
bench-guard:
	go run ./cmd/tvabench -guard BENCH_pr1.json

check: build vet test race bench-guard
