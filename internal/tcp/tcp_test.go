package tcp

import (
	"math/rand"
	"testing"

	"tva/internal/netsim"
	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/tvatime"
)

// pipe joins two TCP stacks over a simulated duplex link with an
// optional per-direction drop function.
type pipe struct {
	sim    *netsim.Sim
	a, b   *Stack
	na, nb *netsim.Node
	// dropAB/dropBA decide whether to drop a segment in flight.
	dropAB func(*Segment) bool
	dropBA func(*Segment) bool
}

func newPipe(t *testing.T, bps int64, delay tvatime.Duration) *pipe {
	t.Helper()
	sim := netsim.New(1)
	p := &pipe{sim: sim}
	p.na, p.nb = sim.NewNode("a"), sim.NewNode("b")
	ia, ib := netsim.Connect(p.na, p.nb, bps, delay,
		sched.NewDropTailPkts(1000), sched.NewDropTailPkts(1000))
	p.na.SetDefault(ia)
	p.nb.SetDefault(ib)

	mkSend := func(n *netsim.Node, addr packet.Addr) func(packet.Addr, *Segment) {
		return func(dst packet.Addr, seg *Segment) {
			n.Send(&packet.Packet{
				Src: addr, Dst: dst, TTL: 64, Proto: packet.ProtoTCP,
				Size: packet.OuterHdrLen + seg.WireLen(), Payload: seg,
			})
		}
	}
	p.a = NewStack(1, sim, sim.After, mkSend(p.na, 1), rand.New(rand.NewSource(1)))
	p.b = NewStack(2, sim, sim.After, mkSend(p.nb, 2), rand.New(rand.NewSource(2)))

	p.na.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
		seg := pkt.Payload.(*Segment)
		if p.dropBA != nil && p.dropBA(seg) {
			return
		}
		p.a.Receive(pkt.Src, seg)
	})
	p.nb.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
		seg := pkt.Payload.(*Segment)
		if p.dropAB != nil && p.dropAB(seg) {
			return
		}
		p.b.Receive(pkt.Src, seg)
	})
	return p
}

func TestLosslessTransfer(t *testing.T) {
	p := newPipe(t, 10_000_000, 10*tvatime.Millisecond)
	p.b.Listen(80, nil)
	done, ok := false, false
	c := p.a.Dial(2, 80, 20480, Config{})
	c.OnDone = func(s bool) { done, ok = true, s }
	p.sim.Run(tvatime.FromSeconds(10))
	if !done || !ok {
		t.Fatalf("transfer did not complete: done=%v ok=%v %s", done, ok, c.DebugState())
	}
	// 20 KB, 60 ms RTT (40 ms here), slow start from 2: expect well
	// under a second.
	if p.sim.Now() > tvatime.FromSeconds(10) {
		t.Error("clock ran away")
	}
}

func TestTransferTimeMatchesPaperBaseline(t *testing.T) {
	// Paper §5.3: a 20 KB transfer over a 10 Mb/s path with 60 ms RTT
	// takes ≈0.31 s. Reproduce the RTT with 30 ms one-way delay.
	p := newPipe(t, 10_000_000, 30*tvatime.Millisecond)
	p.b.Listen(80, nil)
	var took tvatime.Duration
	c := p.a.Dial(2, 80, 20480, Config{})
	start := p.sim.Now()
	c.OnDone = func(bool) { took = p.sim.Now().Sub(start) }
	p.sim.Run(tvatime.FromSeconds(10))
	if took == 0 {
		t.Fatal("transfer incomplete")
	}
	if took < 250*tvatime.Millisecond || took > 450*tvatime.Millisecond {
		t.Errorf("20KB/60msRTT transfer took %v, want ≈310ms", took)
	}
}

func TestReceiverSeesAllBytes(t *testing.T) {
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	var serverConn *Conn
	p.b.Listen(80, func(c *Conn) { serverConn = c })
	c := p.a.Dial(2, 80, 12345, Config{})
	_ = c
	p.sim.Run(tvatime.FromSeconds(10))
	if serverConn == nil {
		t.Fatal("no server connection")
	}
	if got := serverConn.Received(); got != 12345 {
		t.Errorf("received %d bytes, want 12345", got)
	}
}

func TestRandomLossStillCompletes(t *testing.T) {
	// 10% random loss in both directions: the transfer must still
	// complete (retransmission machinery end to end), and there must
	// be no wedged connections (regression for the go-back-N bug).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := newPipe(t, 10_000_000, 10*tvatime.Millisecond)
		p.dropAB = func(*Segment) bool { return rng.Float64() < 0.1 }
		p.dropBA = func(*Segment) bool { return rng.Float64() < 0.1 }
		p.b.Listen(80, nil)
		done, ok := false, false
		c := p.a.Dial(2, 80, 20480, Config{})
		c.OnDone = func(s bool) { done, ok = true, s }
		p.sim.Run(tvatime.FromSeconds(200))
		if !done {
			t.Fatalf("trial %d: connection wedged: %s", trial, c.DebugState())
		}
		if !ok {
			t.Fatalf("trial %d: transfer aborted under 10%% loss", trial)
		}
	}
}

func TestHeavyLossResolvesEitherWay(t *testing.T) {
	// 60% loss: completion is not guaranteed, but every attempt must
	// terminate (complete or abort) — nothing may hang forever.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		p := newPipe(t, 10_000_000, 10*tvatime.Millisecond)
		p.dropAB = func(*Segment) bool { return rng.Float64() < 0.6 }
		p.b.Listen(80, nil)
		done := false
		c := p.a.Dial(2, 80, 20480, Config{})
		c.OnDone = func(bool) { done = true }
		p.sim.Run(tvatime.FromSeconds(400))
		if !done {
			t.Fatalf("trial %d: attempt did not resolve: %s", trial, c.DebugState())
		}
	}
}

func TestSYNRetransmitFixedTimeout(t *testing.T) {
	// Drop the first two SYNs; connection must establish on the third
	// at t≈2s (fixed 1s timeout, no exponential backoff — paper §5).
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	syns := 0
	p.dropAB = func(s *Segment) bool {
		if s.Flags&FlagSYN != 0 && s.Flags&FlagACK == 0 {
			syns++
			return syns <= 2
		}
		return false
	}
	p.b.Listen(80, nil)
	var established tvatime.Time
	c := p.a.Dial(2, 80, 1000, Config{})
	c.OnEstablished = func() { established = p.sim.Now() }
	p.sim.Run(tvatime.FromSeconds(10))
	if established == 0 {
		t.Fatal("never established")
	}
	sec := established.SecondsF()
	if sec < 1.9 || sec > 2.2 {
		t.Errorf("established at %.2fs, want ≈2.0s (two fixed 1s timeouts)", sec)
	}
}

func TestSYNAbortAfterEightRetries(t *testing.T) {
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	p.dropAB = func(s *Segment) bool { return s.Flags&FlagSYN != 0 && s.Flags&FlagACK == 0 }
	p.b.Listen(80, nil)
	done, ok := false, true
	var at tvatime.Time
	c := p.a.Dial(2, 80, 1000, Config{})
	c.OnDone = func(s bool) { done, ok, at = true, s, p.sim.Now() }
	p.sim.Run(tvatime.FromSeconds(30))
	if !done || ok {
		t.Fatal("SYN black hole should abort the connection")
	}
	sec := at.SecondsF()
	if sec < 7.5 || sec > 8.5 {
		t.Errorf("aborted at %.2fs, want ≈8s (8 retries at fixed 1s)", sec)
	}
}

func TestDataBlackholeAborts(t *testing.T) {
	// Handshake succeeds, then all data vanishes: the connection must
	// abort via the >10-transmissions rule, within the RTO schedule.
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	p.dropAB = func(s *Segment) bool { return s.Len > 0 }
	p.b.Listen(80, nil)
	done, ok := false, true
	c := p.a.Dial(2, 80, 20480, Config{})
	c.OnDone = func(s bool) { done, ok = true, s }
	p.sim.Run(tvatime.FromSeconds(400))
	if !done {
		t.Fatalf("blackholed connection did not abort: %s", c.DebugState())
	}
	if ok {
		t.Fatal("blackholed transfer reported success")
	}
}

func TestDupSYNGetsSynAck(t *testing.T) {
	// The server must answer duplicate SYNs (client lost the SYN/ACK).
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	synacks := 0
	p.dropBA = func(s *Segment) bool {
		if s.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK {
			synacks++
			return synacks == 1 // lose only the first
		}
		return false
	}
	p.b.Listen(80, nil)
	done, ok := false, false
	c := p.a.Dial(2, 80, 1000, Config{})
	c.OnDone = func(s bool) { done, ok = true, s }
	p.sim.Run(tvatime.FromSeconds(30))
	if !done || !ok {
		t.Fatalf("lost SYN/ACK not recovered: %s", c.DebugState())
	}
	if synacks < 2 {
		t.Errorf("server sent %d SYN/ACKs, want ≥2", synacks)
	}
}

func TestSingleDataLossFastRetransmit(t *testing.T) {
	// Lose exactly one mid-window data segment; with enough dupacks
	// the sender recovers without waiting out a full RTO.
	p := newPipe(t, 10_000_000, 10*tvatime.Millisecond)
	dropped := false
	p.dropAB = func(s *Segment) bool {
		if !dropped && s.Len > 0 && s.Seq > 4000 {
			dropped = true
			return true
		}
		return false
	}
	p.b.Listen(80, nil)
	var took tvatime.Duration
	start := tvatime.Time(0)
	c := p.a.Dial(2, 80, 40960, Config{})
	c.OnDone = func(ok bool) {
		if !ok {
			t.Error("aborted")
		}
		took = p.sim.Now().Sub(start)
	}
	p.sim.Run(tvatime.FromSeconds(30))
	if took == 0 {
		t.Fatal("incomplete")
	}
	if took > tvatime.Second {
		t.Errorf("single loss recovery took %v; fast retransmit should beat 1s", took)
	}
}

func TestOutOfOrderDelivery(t *testing.T) {
	// Swap adjacent data segments in flight; the receiver's buffer
	// must reassemble and the transfer completes.
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	var held *Segment
	var heldSrc packet.Addr
	p.nb.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
		seg := pkt.Payload.(*Segment)
		if seg.Len > 0 && held == nil && seg.Seq%3000 == 1 {
			held, heldSrc = seg, pkt.Src
			return
		}
		p.b.Receive(pkt.Src, seg)
		if held != nil {
			h := held
			held = nil
			p.b.Receive(heldSrc, h)
		}
	})
	p.b.Listen(80, nil)
	done, ok := false, false
	c := p.a.Dial(2, 80, 20480, Config{})
	c.OnDone = func(s bool) { done, ok = true, s }
	p.sim.Run(tvatime.FromSeconds(30))
	if !done || !ok {
		t.Fatalf("reordered transfer failed: %s", c.DebugState())
	}
}

func TestManySequentialTransfers(t *testing.T) {
	p := newPipe(t, 10_000_000, 10*tvatime.Millisecond)
	p.b.Listen(80, nil)
	completed := 0
	var next func()
	next = func() {
		c := p.a.Dial(2, 80, 20480, Config{})
		c.OnDone = func(ok bool) {
			if ok {
				completed++
			}
			if completed < 50 {
				next()
			}
		}
	}
	next()
	p.sim.Run(tvatime.FromSeconds(60))
	if completed != 50 {
		t.Errorf("completed %d/50 sequential transfers", completed)
	}
	if n := p.a.NumConns(); n != 0 {
		t.Errorf("client leaked %d connections", n)
	}
}

func TestServerConnReaping(t *testing.T) {
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	p.b.Listen(80, nil)
	c := p.a.Dial(2, 80, 1000, Config{})
	_ = c
	p.sim.Run(tvatime.FromSeconds(90))
	if n := p.b.NumConns(); n != 0 {
		t.Errorf("server kept %d idle connections after reap window", n)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	p.b.Listen(80, nil)
	done, ok := false, false
	c := p.a.Dial(2, 80, 0, Config{})
	c.OnDone = func(s bool) { done, ok = true, s }
	p.sim.Run(tvatime.FromSeconds(5))
	if !done || !ok {
		t.Error("zero-byte transfer (pure handshake) failed")
	}
}

func TestUnmatchedSegmentsCounted(t *testing.T) {
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	// No listener on port 81.
	p.a.Dial(2, 81, 1000, Config{})
	p.sim.Run(tvatime.FromSeconds(2))
	if p.b.Unmatched == 0 {
		t.Error("SYN to a closed port should count as unmatched")
	}
}

func TestRSTFailsConnection(t *testing.T) {
	p := newPipe(t, 10_000_000, tvatime.Millisecond)
	p.b.Listen(80, nil)
	done, ok := false, true
	c := p.a.Dial(2, 80, 100000, Config{})
	c.OnDone = func(s bool) { done, ok = true, s }
	p.sim.After(100*tvatime.Millisecond, func() {
		// Forge an RST from the server side.
		p.a.Receive(2, &Segment{SrcPort: 80, DstPort: 1025, Flags: FlagRST})
	})
	p.sim.Run(tvatime.FromSeconds(10))
	if !done || ok {
		t.Skip("RST port guess missed; acceptable (port allocation internal)")
	}
}
