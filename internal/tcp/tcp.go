// Package tcp is the transport substrate for the simulation: a
// Reno-style TCP (slow start, congestion avoidance, fast retransmit,
// RTT-estimated retransmission timeouts) with the evaluation's
// modifications from paper §5:
//
//   - the SYN timeout is fixed at one second (no exponential backoff)
//     with up to eight retransmissions, so that capability requests
//     piggybacked on SYNs are retried aggressively for every scheme;
//   - a data transfer aborts when the retransmission timeout for a
//     segment exceeds 64 seconds or the same segment has been
//     transmitted more than ten times.
//
// Sequence numbers count bytes; the SYN occupies sequence 0 and data
// occupies [1, total]. Transfers are one-directional (client sends,
// server acknowledges), which is all the evaluation workload needs;
// payload bytes are modeled by length only.
package tcp

import (
	"fmt"
	"math/rand"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// Flags are TCP header flags.
type Flags uint8

// Flag bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// HeaderLen is the modeled TCP header size in bytes.
const HeaderLen = 20

// Segment is one TCP segment. Payload content is modeled by Len only.
type Segment struct {
	SrcPort, DstPort uint16
	Flags            Flags
	Seq, Ack         uint32
	Len              int
}

// WireLen returns the segment's on-the-wire size above IP.
func (s *Segment) WireLen() int { return HeaderLen + s.Len }

// String implements fmt.Stringer.
func (s *Segment) String() string {
	f := ""
	if s.Flags&FlagSYN != 0 {
		f += "S"
	}
	if s.Flags&FlagACK != 0 {
		f += "A"
	}
	if s.Flags&FlagFIN != 0 {
		f += "F"
	}
	if s.Flags&FlagRST != 0 {
		f += "R"
	}
	return fmt.Sprintf("[%s seq=%d ack=%d len=%d %d->%d]", f, s.Seq, s.Ack, s.Len, s.SrcPort, s.DstPort)
}

// Config holds per-connection TCP parameters. The zero value selects
// the evaluation defaults.
type Config struct {
	MSS            int              // segment payload size (default 1000)
	InitCwndSegs   int              // initial window in segments (default 2)
	SYNTimeout     tvatime.Duration // fixed SYN retransmit interval (default 1s)
	MaxSYNRetries  int              // SYN retransmissions before abort (default 8)
	MinRTO         tvatime.Duration // RTO floor (default 200ms)
	MaxRTO         tvatime.Duration // abort when RTO exceeds this (default 64s)
	MaxSegRetrans  int              // abort when one segment exceeds this (default 10)
	ReceiveWindow  int              // receiver window in bytes (default 1MB)
	IdleReapPeriod tvatime.Duration // server-side idle connection reap (default 30s)
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = 1000
	}
	if c.InitCwndSegs <= 0 {
		c.InitCwndSegs = 2
	}
	if c.SYNTimeout <= 0 {
		c.SYNTimeout = tvatime.Second
	}
	if c.MaxSYNRetries <= 0 {
		c.MaxSYNRetries = 8
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * tvatime.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 64 * tvatime.Second
	}
	if c.MaxSegRetrans <= 0 {
		c.MaxSegRetrans = 10
	}
	if c.ReceiveWindow <= 0 {
		c.ReceiveWindow = 1 << 20
	}
	if c.IdleReapPeriod <= 0 {
		c.IdleReapPeriod = 30 * tvatime.Second
	}
	return c
}

// Stack is one host's TCP instance. It is single-threaded: the
// simulator (or overlay event loop) serializes calls.
type Stack struct {
	addr  packet.Addr
	clock tvatime.Clock
	after func(d tvatime.Duration, fn func())
	send  func(dst packet.Addr, seg *Segment)
	rng   *rand.Rand

	conns     map[connKey]*Conn
	listeners map[uint16]func(*Conn)
	nextPort  uint16

	// Stats.
	SegsSent, SegsReceived, Unmatched uint64
}

type connKey struct {
	peer          packet.Addr
	local, remote uint16
}

// NewStack returns a TCP stack for addr. after schedules a callback
// (the simulator's After); send transmits a segment toward dst (the
// host shim wraps it in a packet).
func NewStack(addr packet.Addr, clock tvatime.Clock, after func(tvatime.Duration, func()), send func(packet.Addr, *Segment), rng *rand.Rand) *Stack {
	return &Stack{
		addr:      addr,
		clock:     clock,
		after:     after,
		send:      send,
		rng:       rng,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		nextPort:  1024,
	}
}

// Addr returns the stack's address.
func (st *Stack) Addr() packet.Addr { return st.addr }

// Listen registers an accept callback for a port. The callback runs
// when a connection is created by an incoming SYN.
func (st *Stack) Listen(port uint16, onConn func(*Conn)) {
	st.listeners[port] = onConn
}

// Dial starts a client connection to dst:port that will send
// totalBytes of data once established. Callbacks may be set on the
// returned Conn before the first event fires (the SYN is sent
// immediately but responses arrive strictly later).
func (st *Stack) Dial(dst packet.Addr, port uint16, totalBytes int, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	local := st.allocPort(dst, port)
	c := &Conn{
		st:       st,
		cfg:      cfg,
		peer:     dst,
		local:    local,
		remote:   port,
		isClient: true,
		state:    stateSynSent,
		total:    uint32(totalBytes),
		cwnd:     float64(cfg.InitCwndSegs * cfg.MSS),
		ssthresh: float64(cfg.ReceiveWindow),
		rto:      cfg.SYNTimeout,
		retx:     make(map[uint32]int),
		started:  st.clock.Now(),
	}
	st.conns[connKey{dst, local, port}] = c
	c.sendSYN()
	return c
}

func (st *Stack) allocPort(dst packet.Addr, port uint16) uint16 {
	for {
		st.nextPort++
		if st.nextPort < 1024 {
			st.nextPort = 1024
		}
		if _, used := st.conns[connKey{dst, st.nextPort, port}]; !used {
			return st.nextPort
		}
	}
}

// Receive delivers an incoming segment from src to the matching
// connection or listener. Unmatched segments are counted and dropped.
func (st *Stack) Receive(src packet.Addr, seg *Segment) {
	st.SegsReceived++
	key := connKey{src, seg.DstPort, seg.SrcPort}
	if c, ok := st.conns[key]; ok {
		c.receive(seg)
		return
	}
	if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		if onConn, ok := st.listeners[seg.DstPort]; ok {
			c := st.acceptConn(src, seg)
			if onConn != nil {
				onConn(c)
			}
			return
		}
	}
	st.Unmatched++
}

func (st *Stack) acceptConn(src packet.Addr, syn *Segment) *Conn {
	cfg := Config{}.withDefaults()
	c := &Conn{
		st:       st,
		cfg:      cfg,
		peer:     src,
		local:    syn.DstPort,
		remote:   syn.SrcPort,
		state:    stateEstablished,
		rcvNxt:   1,
		ooo:      make(map[uint32]int),
		retx:     make(map[uint32]int),
		started:  st.clock.Now(),
		lastSeen: st.clock.Now(),
	}
	st.conns[connKey{src, syn.DstPort, syn.SrcPort}] = c
	c.sendSynAck()
	c.armReap()
	return c
}

func (st *Stack) remove(c *Conn) {
	delete(st.conns, connKey{c.peer, c.local, c.remote})
}

// NumConns returns the live connection count (for tests).
func (st *Stack) NumConns() int { return len(st.conns) }

// Connection states.
const (
	stateSynSent = iota
	stateEstablished
	stateDone
	stateFailed
)

// Conn is one TCP connection. Client connections send data; server
// connections acknowledge it.
type Conn struct {
	st  *Stack
	cfg Config

	peer          packet.Addr
	local, remote uint16
	isClient      bool
	state         int

	// Sender.
	total    uint32 // bytes to send; data occupies [1, total]
	sndUna   uint32
	sndNxt   uint32
	cwnd     float64
	ssthresh float64
	dupAcks  int

	rto         tvatime.Duration
	srtt        tvatime.Duration
	rttvar      tvatime.Duration
	hasRTT      bool
	timedSeq    uint32
	timedAt     tvatime.Time
	timedValid  bool
	rtoGen      int
	rtoArmed    bool
	synRetries  int
	retx        map[uint32]int
	retransHint bool // a retransmission happened since last RTT sample

	// Receiver.
	rcvNxt   uint32
	ooo      map[uint32]int
	received uint64

	started  tvatime.Time
	lastSeen tvatime.Time
	reaping  bool

	// OnEstablished fires on the client when the SYN/ACK arrives.
	OnEstablished func()
	// OnDone fires once on the client when the transfer completes
	// (success) or aborts (failure).
	OnDone func(success bool)
	// OnData fires on the server as in-order data advances; n is the
	// newly delivered byte count.
	OnData func(n int)
}

// Peer returns the remote address.
func (c *Conn) Peer() packet.Addr { return c.peer }

// Received returns the in-order bytes delivered to a server conn.
func (c *Conn) Received() uint64 { return c.received }

// Done reports whether the connection has finished (either way).
func (c *Conn) Done() bool { return c.state == stateDone || c.state == stateFailed }

// Succeeded reports whether a client transfer completed.
func (c *Conn) Succeeded() bool { return c.state == stateDone }

func (c *Conn) emit(seg *Segment) {
	seg.SrcPort, seg.DstPort = c.local, c.remote
	c.st.SegsSent++
	c.st.send(c.peer, seg)
}

// --- client side ---

func (c *Conn) sendSYN() {
	c.emit(&Segment{Flags: FlagSYN, Seq: 0})
	gen := c.nextGen()
	c.st.after(c.cfg.SYNTimeout, func() { c.synTimeout(gen) })
}

func (c *Conn) synTimeout(gen int) {
	if gen != c.rtoGen || c.state != stateSynSent {
		return
	}
	c.synRetries++
	if c.synRetries >= c.cfg.MaxSYNRetries {
		c.fail()
		return
	}
	c.sendSYN()
}

func (c *Conn) nextGen() int {
	c.rtoGen++
	return c.rtoGen
}

func (c *Conn) fail() {
	if c.Done() {
		return
	}
	c.state = stateFailed
	c.st.remove(c)
	if c.OnDone != nil {
		c.OnDone(false)
	}
}

func (c *Conn) succeed() {
	if c.Done() {
		return
	}
	c.state = stateDone
	c.st.remove(c)
	if c.OnDone != nil {
		c.OnDone(true)
	}
}

func (c *Conn) receive(seg *Segment) {
	c.lastSeen = c.st.clock.Now()
	if seg.Flags&FlagRST != 0 {
		c.fail()
		return
	}
	if c.isClient {
		c.clientReceive(seg)
	} else {
		c.serverReceive(seg)
	}
}

func (c *Conn) clientReceive(seg *Segment) {
	switch c.state {
	case stateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && seg.Ack >= 1 {
			c.state = stateEstablished
			c.sndUna, c.sndNxt = 1, 1
			c.rcvNxt = 1
			c.nextGen() // cancel SYN timer
			c.rto = c.cfg.MinRTO
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			if c.total == 0 {
				// Nothing to send: pure handshake.
				c.emit(&Segment{Flags: FlagACK, Seq: 1, Ack: 1})
				c.succeed()
				return
			}
			c.pump()
		}
	case stateEstablished:
		if seg.Flags&FlagACK == 0 || seg.Flags&FlagSYN != 0 {
			return // stray or duplicate handshake segment
		}
		c.handleAck(seg.Ack)
	}
}

func (c *Conn) handleAck(ack uint32) {
	if ack > c.sndUna {
		// New data acknowledged.
		c.sampleRTT(ack)
		c.sndUna = ack
		if c.sndNxt < c.sndUna {
			// A post-timeout go-back-N rewind can leave sndNxt behind
			// an ack for data sent before the timeout; never let the
			// window go negative.
			c.sndNxt = c.sndUna
		}
		c.dupAcks = 0
		mss := float64(c.cfg.MSS)
		if c.cwnd < c.ssthresh {
			c.cwnd += mss // slow start
		} else {
			c.cwnd += mss * mss / c.cwnd // congestion avoidance
		}
		if c.sndUna >= 1+c.total {
			c.succeed()
			return
		}
		c.restartRTO()
		c.pump()
		return
	}
	if ack == c.sndUna && c.sndNxt > c.sndUna {
		c.dupAcks++
		if c.dupAcks == 3 {
			c.fastRetransmit()
		}
	}
}

func (c *Conn) sampleRTT(ack uint32) {
	if !c.timedValid || ack <= c.timedSeq {
		return
	}
	taint := c.retransHint
	c.timedValid = false
	if ack >= c.sndNxt {
		// Everything in flight is acknowledged; future samples are
		// untainted by past retransmissions.
		c.retransHint = false
	}
	if taint {
		// Karn's algorithm: no samples across retransmissions.
		return
	}
	rtt := c.st.clock.Now().Sub(c.timedAt)
	if !c.hasRTT {
		c.srtt = rtt
		c.rttvar = rtt / 2
		c.hasRTT = true
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
}

// pump sends new data allowed by the congestion window.
func (c *Conn) pump() {
	end := 1 + c.total
	for c.sndNxt < end && float64(c.sndNxt-c.sndUna) < c.cwnd {
		l := uint32(c.cfg.MSS)
		if end-c.sndNxt < l {
			l = end - c.sndNxt
		}
		c.transmit(c.sndNxt, int(l), false)
		if c.Done() {
			return
		}
		c.sndNxt += l
	}
	c.armRTO()
}

func (c *Conn) transmit(seq uint32, l int, isRetrans bool) {
	c.retx[seq]++
	if c.retx[seq] > c.cfg.MaxSegRetrans {
		c.fail()
		return
	}
	if isRetrans {
		c.retransHint = true
	} else if !c.timedValid {
		c.timedSeq = seq
		c.timedAt = c.st.clock.Now()
		c.timedValid = true
	}
	c.emit(&Segment{Flags: FlagACK, Seq: seq, Ack: c.rcvNxt, Len: l})
}

func (c *Conn) fastRetransmit() {
	flight := float64(c.sndNxt - c.sndUna)
	mss := float64(c.cfg.MSS)
	c.ssthresh = flight / 2
	if c.ssthresh < 2*mss {
		c.ssthresh = 2 * mss
	}
	c.cwnd = c.ssthresh
	c.retransmitHead()
	c.armRTOFresh()
}

func (c *Conn) retransmitHead() {
	l := uint32(c.cfg.MSS)
	end := 1 + c.total
	if end-c.sndUna < l {
		l = end - c.sndUna
	}
	c.transmit(c.sndUna, int(l), true)
}

func (c *Conn) armRTO() {
	if c.sndUna >= c.sndNxt {
		c.nextGen()
		c.rtoArmed = false
		return
	}
	if !c.rtoArmed {
		c.armRTOFresh()
	}
}

// restartRTO cancels any pending timer and re-arms it from now, the
// standard response to an acknowledgement of new data.
func (c *Conn) restartRTO() {
	c.nextGen()
	c.rtoArmed = false
	if c.sndUna < c.sndNxt {
		c.armRTOFresh()
	}
}

func (c *Conn) armRTOFresh() {
	gen := c.nextGen()
	c.rtoArmed = true
	c.st.after(c.rto, func() { c.rtoTimeout(gen) })
}

func (c *Conn) rtoTimeout(gen int) {
	if gen != c.rtoGen || c.Done() || c.state != stateEstablished {
		return
	}
	c.rtoArmed = false
	if c.sndUna >= c.sndNxt {
		return // everything acked in the meantime
	}
	// Exponential backoff; abort when the timeout exceeds the cap
	// (paper §5: 64 s) — checked before retransmitting so a dead path
	// gives up rather than babbling.
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.fail()
		return
	}
	flight := float64(c.sndNxt - c.sndUna)
	mss := float64(c.cfg.MSS)
	c.ssthresh = flight / 2
	if c.ssthresh < 2*mss {
		c.ssthresh = 2 * mss
	}
	c.cwnd = mss
	c.dupAcks = 0
	// Go-back-N after a timeout: retransmit the head and let the
	// window re-send the rest as acks return.
	c.retransmitHead()
	if c.Done() {
		return
	}
	c.sndNxt = c.sndUna + uint32(c.cfg.MSS)
	if c.sndNxt > 1+c.total {
		c.sndNxt = 1 + c.total
	}
	c.armRTOFresh()
}

// --- server side ---

func (c *Conn) sendSynAck() {
	c.emit(&Segment{Flags: FlagSYN | FlagACK, Seq: 0, Ack: 1})
}

func (c *Conn) serverReceive(seg *Segment) {
	if seg.Flags&FlagSYN != 0 {
		// Duplicate SYN: client lost our SYN/ACK.
		c.sendSynAck()
		return
	}
	if seg.Len > 0 {
		c.ingest(seg.Seq, seg.Len)
	}
	// Acknowledge every data segment (no delayed acks, matching the
	// evaluation's prompt-ack behaviour).
	if seg.Len > 0 {
		c.emit(&Segment{Flags: FlagACK, Seq: 1, Ack: c.rcvNxt})
	}
}

func (c *Conn) ingest(seq uint32, l int) {
	switch {
	case seq == c.rcvNxt:
		c.advance(l)
		// Drain any contiguous out-of-order segments.
		for {
			nl, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.advance(nl)
		}
	case seq > c.rcvNxt:
		if len(c.ooo) < c.cfg.ReceiveWindow/c.cfg.MSS {
			if old, ok := c.ooo[seq]; !ok || old < l {
				c.ooo[seq] = l
			}
		}
	default:
		// Old duplicate; the cumulative ack below handles it.
	}
}

func (c *Conn) advance(l int) {
	c.rcvNxt += uint32(l)
	c.received += uint64(l)
	if c.OnData != nil {
		c.OnData(l)
	}
}

// armReap periodically removes an idle server connection so repeated
// transfers do not accumulate state.
func (c *Conn) armReap() {
	if c.reaping {
		return
	}
	c.reaping = true
	var tick func()
	tick = func() {
		if c.Done() {
			return
		}
		if c.st.clock.Now().Sub(c.lastSeen) > c.cfg.IdleReapPeriod {
			c.state = stateDone
			c.st.remove(c)
			return
		}
		c.st.after(c.cfg.IdleReapPeriod, tick)
	}
	c.st.after(c.cfg.IdleReapPeriod, tick)
}

// DebugState formats the connection's internals for diagnostics.
func (c *Conn) DebugState() string {
	return fmt.Sprintf("state=%d una=%d nxt=%d total=%d cwnd=%.0f ssthresh=%.0f rto=%v armed=%v gen=%d dupacks=%d rcvNxt=%d synRetries=%d",
		c.state, c.sndUna, c.sndNxt, c.total, c.cwnd, c.ssthresh, c.rto, c.rtoArmed, c.rtoGen, c.dupAcks, c.rcvNxt, c.synRetries)
}
