// The host shim of paper §4.2: it piggybacks capability requests on
// outgoing packets, converts granted pre-capabilities into packets with
// capability lists and then flow nonces, renews before authorization
// runs out, echoes demotion signals, and repairs the path when told.
package core

import (
	"math/rand"

	"tva/internal/capability"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// ShimConfig parameterizes host shim behaviour.
type ShimConfig struct {
	// Suite must match the routers' (the destination computes the
	// public capability hash).
	Suite capability.Suite
	// RenewAt is the fraction of N (bytes) or T (time) consumed at
	// which the sender starts renewing (default 0.75).
	RenewAt float64
	// CapsOnFirst is how many packets carry the full capability list
	// after a grant before switching to nonce-only (default 1: the
	// first packet seeds every router's cache).
	CapsOnFirst int
	// IdleReattach re-attaches the capability list after this much
	// send silence, in case routers evicted the flow (default 1s):
	// the host-side cache model of §3.7, optimistic variant.
	IdleReattach tvatime.Duration
	// ReattachMinGap rate-limits demotion-triggered re-attachment so a
	// burst of stale demotion notices cannot thrash a fresh grant.
	ReattachMinGap tvatime.Duration
	// AutoReturn emits a standalone packet to carry return information
	// (grants, demotion notices) when no outbound traffic picked it up
	// in the same event (default true). Pure receivers need it.
	AutoReturn bool
	// CollectHops marks outgoing requests with the WantHops wire flag,
	// asking every capability router on the path to stamp its ID and
	// current queue-wait estimate. The destination shim echoes the
	// stamps in return info and LastHopReport exposes them — the data
	// behind tvaping's per-hop breakdown. Off by default: stamps cost
	// five wire bytes per hop.
	CollectHops bool

	// Reliability engine (active only when Shim.After is set): a
	// request or renewal whose answer does not arrive within RetryRTO
	// is retransmitted as a bare knock, with the timeout doubling up to
	// RetryRTOMax, for at most RetryCap attempts per episode. Defaults:
	// 250 ms / 4 s / 8. Lost requests and lost grants both look the
	// same from here — no fresh grant — so one timer covers both.
	RetryRTO    tvatime.Duration
	RetryRTOMax tvatime.Duration
	RetryCap    int
}

func (c ShimConfig) withDefaults() ShimConfig {
	if c.Suite.NewKeyed == nil {
		c.Suite = capability.Crypto
	}
	if c.RenewAt <= 0 || c.RenewAt >= 1 {
		c.RenewAt = 0.75
	}
	if c.CapsOnFirst <= 0 {
		c.CapsOnFirst = 1
	}
	if c.IdleReattach <= 0 {
		c.IdleReattach = tvatime.Second
	}
	if c.ReattachMinGap <= 0 {
		c.ReattachMinGap = 100 * tvatime.Millisecond
	}
	if c.RetryRTO <= 0 {
		c.RetryRTO = 250 * tvatime.Millisecond
	}
	if c.RetryRTOMax <= 0 {
		c.RetryRTOMax = 4 * tvatime.Second
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 8
	}
	return c
}

// sendState tracks the shim's authorization toward one destination.
type sendState struct {
	granted    bool
	nonce      uint64
	caps       []uint64
	nkb        uint16
	tsec       uint8
	grantedAt  tvatime.Time
	bytesSent  int64
	capsSent   int // packets sent carrying the full list
	everSent   bool
	lastSend   tvatime.Time
	lastRepair tvatime.Time
}

// ShimStats counts shim activity.
type ShimStats struct {
	RequestsSent   uint64
	RegularSent    uint64
	NonceOnlySent  uint64
	RenewalsSent   uint64
	GrantsReceived uint64
	GrantsIssued   uint64
	Refusals       uint64
	DemotionsSeen  uint64
	Repairs        uint64
	Reacquires     uint64
	ReturnsCarried uint64
	AutoReturns    uint64

	// Reliability engine (Shim.After).
	RetriesSent       uint64 // bare knocks sent because no grant answered in time
	RetriesAbandoned  uint64 // episodes that exhausted RetryCap
	ProactiveRenewals uint64 // renewals initiated by the timer, not by traffic
}

// Shim is one host's TVA layer. Output is the function that hands a
// finished packet to the network (set by the owner before use);
// Deliver receives incoming payloads. Shim is single-threaded.
type Shim struct {
	cfg    ShimConfig
	addr   packet.Addr
	clock  tvatime.Clock
	rng    *rand.Rand
	policy Policy

	// Output transmits a packet (required).
	Output func(pkt *packet.Packet)
	// Deliver hands an incoming payload to the upper layer; demoted
	// reports the packet arrived demoted (optional).
	Deliver func(src packet.Addr, proto packet.Proto, payload any, size int, demoted bool)
	// After, when set, schedules fn after d and turns on the shim's
	// reliability engine: unanswered requests and renewals are
	// retransmitted with exponential backoff, and grants are renewed
	// proactively at RenewAt of their lifetime even when no traffic is
	// flowing to piggyback the renewal on. Left nil (the overlay, old
	// tests), the shim is exactly as lossy as the network: a lost
	// request stays lost until the upper layer resends.
	After func(d tvatime.Duration, fn func())

	sends      map[packet.Addr]*sendState
	pending    map[packet.Addr]*packet.ReturnInfo
	demotions  map[packet.Addr]Demotion
	retries    map[packet.Addr]*retryState
	hopReports map[packet.Addr][]packet.HopStamp

	Stats ShimStats
}

// retryState is one destination's retransmission episode: armed when a
// request or renewal goes out, disarmed when any grant or refusal
// answers. gen invalidates timers from superseded episodes, so a stale
// closure firing after the answer arrived is a no-op.
type retryState struct {
	gen      uint64
	attempts int
	rto      tvatime.Duration
	waiting  bool
}

// Demotion is the most recent demotion evidence involving a peer: the
// router that cleared the capability bits and its reason, carried in
// the demoted packet's two-byte extension and echoed back in return
// information (§3.8). Diagnostics like tvaping use it to say *where*
// and *why* a path stopped honouring capabilities instead of reporting
// a bare timeout.
type Demotion struct {
	Reason telemetry.DropReason
	Router uint8
	At     tvatime.Time
}

// NewShim builds a host shim for addr with the given authorization
// policy (nil means refuse everything inbound).
func NewShim(addr packet.Addr, policy Policy, clock tvatime.Clock, rng *rand.Rand, cfg ShimConfig) *Shim {
	return &Shim{
		cfg:        cfg.withDefaults(),
		addr:       addr,
		clock:      clock,
		rng:        rng,
		policy:     policy,
		sends:      make(map[packet.Addr]*sendState),
		pending:    make(map[packet.Addr]*packet.ReturnInfo),
		demotions:  make(map[packet.Addr]Demotion),
		retries:    make(map[packet.Addr]*retryState),
		hopReports: make(map[packet.Addr][]packet.HopStamp),
	}
}

// Addr returns the host address.
func (s *Shim) Addr() packet.Addr { return s.addr }

// HasCaps reports whether the shim currently holds a grant toward dst
// (for tests and sender-side diagnostics).
func (s *Shim) HasCaps(dst packet.Addr) bool {
	st := s.sends[dst]
	return st != nil && st.granted
}

// LastDemotion reports the most recent demotion evidence involving
// peer: either a demotion notice echoed back from the receiver (sender
// side) or a demoted packet that arrived here (receiver side).
func (s *Shim) LastDemotion(peer packet.Addr) (Demotion, bool) {
	d, ok := s.demotions[peer]
	return d, ok
}

// LastHopReport returns the most recent per-hop queue-wait stamps
// echoed back from peer (collected by a CollectHops request on its way
// there), ordered first hop to last. The slice is owned by the shim;
// callers must not mutate it.
func (s *Shim) LastHopReport(peer packet.Addr) []packet.HopStamp {
	return s.hopReports[peer]
}

// Send wraps an upper-layer payload toward dst and transmits it. size
// is the payload's wire size in bytes (e.g. seg.WireLen()). Packets
// come from the packet pool; ownership passes to Output, and the
// terminal consumer (drop point or destination) releases them.
func (s *Shim) Send(dst packet.Addr, proto packet.Proto, payload any, size int) {
	now := s.clock.Now()
	pkt := packet.AcquirePacket()
	h := pkt.NewHdr()
	h.Proto = proto
	st := s.sends[dst]

	switch {
	case st == nil || !st.granted:
		s.makeRequest(dst, h, now)
		if proto != packet.ProtoControl {
			// Arm retransmission only for requests something is waiting
			// on. A return-info carrier that doubles as a request is
			// opportunistic: retrying it would have every grant issued
			// to a silent peer spawn a knock storm toward it.
			s.armRetry(dst)
		}
	default:
		s.fillGranted(dst, st, h, size, now)
	}

	// Piggyback any pending return information (§4.1).
	if ret := s.pending[dst]; ret != nil {
		h.Return = ret
		delete(s.pending, dst)
		s.Stats.ReturnsCarried++
	}

	pkt.Src = s.addr
	pkt.Dst = dst
	pkt.TTL = 64
	pkt.Proto = proto
	pkt.Size = packet.OuterHdrLen + h.WireSize() + size
	pkt.Payload = payload
	pkt.SentAt = now

	if st = s.sends[dst]; st != nil && st.granted {
		st.bytesSent += int64(pkt.Size)
		st.lastSend = now
		st.everSent = true
	}
	s.Output(pkt)
}

// pathPreCaps is the pre-capability (and path identifier) list
// capacity preallocated on requests, sized to a typical path length so
// routers appending their stamps do not reallocate per hop.
const pathPreCaps = 8

func (s *Shim) makeRequest(dst packet.Addr, h *packet.CapHdr, now tvatime.Time) {
	h.Kind = packet.KindRequest
	if cap(h.Request.PreCaps) == 0 {
		h.Request.PreCaps = make([]uint64, 0, pathPreCaps)
	}
	if cap(h.Request.PathIDs) == 0 {
		h.Request.PathIDs = make([]packet.PathID, 0, pathPreCaps)
	}
	if s.cfg.CollectHops {
		h.Request.WantHops = true
		if cap(h.Request.HopWaits) == 0 {
			h.Request.HopWaits = make([]packet.HopStamp, 0, pathPreCaps)
		}
	}
	s.Stats.RequestsSent++
	if oa, ok := s.policy.(OutboundAware); ok {
		oa.NoteOutboundRequest(dst, now)
	}
}

// armRetry starts a retransmission episode toward dst if none is
// pending. It is called for every request and renewal sent, so the
// first send of an episode arms the timer and the rest (TCP's own
// retransmissions, renewals piggybacked on data) leave it alone.
func (s *Shim) armRetry(dst packet.Addr) {
	if s.After == nil {
		return
	}
	rs := s.retries[dst]
	if rs == nil {
		rs = &retryState{}
		s.retries[dst] = rs
	}
	if rs.waiting {
		return
	}
	rs.waiting = true
	rs.attempts = 0
	rs.rto = s.cfg.RetryRTO
	s.scheduleRetry(dst, rs)
}

func (s *Shim) scheduleRetry(dst packet.Addr, rs *retryState) {
	rs.gen++
	gen := rs.gen
	s.After(rs.rto, func() { s.retryFire(dst, gen) })
}

// retryFire retransmits an unanswered request or renewal as a bare
// ProtoRaw knock (a control carrier would skip authorization at the
// receiver) and re-arms with the backed-off timeout. Send rebuilds the
// right header from current state: a fresh request if the grant is
// gone, a renewal if the old grant is still usable.
func (s *Shim) retryFire(dst packet.Addr, gen uint64) {
	rs := s.retries[dst]
	if rs == nil || !rs.waiting || rs.gen != gen {
		return
	}
	if rs.attempts >= s.cfg.RetryCap {
		rs.waiting = false
		s.Stats.RetriesAbandoned++
		return
	}
	rs.attempts++
	rs.rto *= 2
	if rs.rto > s.cfg.RetryRTOMax {
		rs.rto = s.cfg.RetryRTOMax
	}
	s.Stats.RetriesSent++
	s.scheduleRetry(dst, rs)
	s.Send(dst, packet.ProtoRaw, nil, 0)
}

// clearRetry ends the episode: the request or renewal was answered.
func (s *Shim) clearRetry(dst packet.Addr) {
	if rs := s.retries[dst]; rs != nil && rs.waiting {
		rs.waiting = false
		rs.gen++
	}
}

func (s *Shim) fillGranted(dst packet.Addr, st *sendState, h *packet.CapHdr, size int, now tvatime.Time) {
	n := st.n()
	age := now.Sub(st.grantedAt)
	life := tvatime.Duration(st.tsec) * tvatime.Second

	// A dead grant (expired or out of bytes) forces a fresh request.
	if age >= life || st.bytesSent+int64(size)+64 > n {
		s.sends[dst] = nil
		s.Stats.Reacquires++
		s.makeRequest(dst, h, now)
		return
	}

	renew := float64(st.bytesSent) >= s.cfg.RenewAt*float64(n) ||
		age >= tvatime.Duration(s.cfg.RenewAt*float64(life))

	attachCaps := st.capsSent < s.cfg.CapsOnFirst ||
		(st.everSent && now.Sub(st.lastSend) > s.cfg.IdleReattach)

	h.Nonce = st.nonce
	switch {
	case renew:
		h.Kind = packet.KindRenewal
		h.Caps = append(h.Caps[:0], st.caps...)
		h.NKB, h.TSec = st.nkb, st.tsec
		if s.cfg.CollectHops {
			h.Request.WantHops = true
		}
		st.capsSent++
		s.Stats.RenewalsSent++
		if h.Proto != packet.ProtoControl {
			s.armRetry(dst) // same carrier exemption as requests
		}
	case attachCaps:
		h.Kind = packet.KindRegular
		h.Caps = append(h.Caps[:0], st.caps...)
		h.NKB, h.TSec = st.nkb, st.tsec
		st.capsSent++
		s.Stats.RegularSent++
	default:
		h.Kind = packet.KindNonceOnly
		s.Stats.NonceOnlySent++
	}
}

func (st *sendState) n() int64 { return int64(st.nkb) * 1024 }

// pendingFor returns (creating if needed) the return info accumulating
// toward dst.
func (s *Shim) pendingFor(dst packet.Addr) *packet.ReturnInfo {
	r := s.pending[dst]
	if r == nil {
		r = &packet.ReturnInfo{}
		s.pending[dst] = r
	}
	return r
}

// Receive processes an incoming packet: applies return information,
// answers authorization requests per policy, echoes demotions, and
// delivers the payload upward.
func (s *Shim) Receive(pkt *packet.Packet) {
	now := s.clock.Now()
	h := pkt.Hdr
	if h == nil {
		if s.Deliver != nil {
			s.Deliver(pkt.Src, pkt.Proto, pkt.Payload, pkt.Size, false)
		}
		return
	}

	if h.Demoted {
		// Echo the demotion to the sender on the reverse channel
		// (§3.8) so it repairs the path, carrying the demoting router
		// and its reason along.
		s.Stats.DemotionsSeen++
		ret := s.pendingFor(pkt.Src)
		ret.DemotionNotice = true
		ret.DemoteReason = h.DemoteReason
		ret.DemoteRouter = h.DemoteRouter
		s.demotions[pkt.Src] = Demotion{
			Reason: telemetry.DropReason(h.DemoteReason),
			Router: h.DemoteRouter,
			At:     now,
		}
	}

	if h.Return != nil {
		s.applyReturn(pkt.Src, h.Return, now)
	}

	// Echo hop stamps collected on the way here back to the sender
	// (they describe the sender's forward path, which only the sender
	// can act on). They ride the same pending return info as grants.
	if len(h.Request.HopWaits) > 0 &&
		(h.Kind == packet.KindRequest || h.Kind == packet.KindRenewal) {
		ret := s.pendingFor(pkt.Src)
		ret.Hops = append(ret.Hops[:0], h.Request.HopWaits...)
	}

	// Authorization decisions for requests and (valid, undemoted)
	// renewals that carry fresh pre-capabilities. Pure control
	// carriers never trigger authorization: answering them could
	// ping-pong refusal carriers between two shims through the
	// rate-limited request channel indefinitely.
	if !h.Demoted && h.Proto != packet.ProtoControl && len(h.Request.PreCaps) > 0 &&
		(h.Kind == packet.KindRequest || h.Kind == packet.KindRenewal) {
		s.authorize(pkt.Src, h, now)
	}

	if s.Deliver != nil && h.Proto != packet.ProtoControl {
		s.Deliver(pkt.Src, h.Proto, pkt.Payload, pkt.Size, h.Demoted)
	}

	// If the upper layer produced no reverse traffic to piggyback the
	// return info on, emit a bare carrier packet. Refusals (empty
	// grants) are not worth a packet of their own: the refused sender
	// simply times out, and answering every refused request would let
	// attackers solicit carrier traffic.
	if s.cfg.AutoReturn {
		if ret := s.pending[pkt.Src]; ret != nil &&
			((ret.Grant != nil && len(ret.Grant.Caps) > 0) || ret.DemotionNotice) {
			s.Stats.AutoReturns++
			s.Send(pkt.Src, packet.ProtoControl, nil, 0)
		}
	}
}

func (s *Shim) applyReturn(src packet.Addr, ret *packet.ReturnInfo, now tvatime.Time) {
	if len(ret.Hops) > 0 {
		// Copy: ret aliases the decoded packet's scratch storage.
		s.hopReports[src] = append(s.hopReports[src][:0], ret.Hops...)
	}
	if ret.Grant != nil {
		if len(ret.Grant.Caps) == 0 {
			// An empty capability list is an explicit refusal (§4.2).
			// An answer all the same: retrying a refused request would
			// just be unwanted traffic.
			s.Stats.Refusals++
			s.clearRetry(src)
			return
		}
		s.Stats.GrantsReceived++
		s.clearRetry(src)
		st := &sendState{
			granted:   true,
			nonce:     s.rng.Uint64() & packet.NonceMask,
			caps:      append([]uint64(nil), ret.Grant.Caps...),
			nkb:       ret.Grant.NKB,
			tsec:      ret.Grant.TSec,
			grantedAt: now,
		}
		s.sends[src] = st
		s.scheduleProactiveRenew(src, st)
	}
	if ret.DemotionNotice {
		s.demotions[src] = Demotion{
			Reason: telemetry.DropReason(ret.DemoteReason),
			Router: ret.DemoteRouter,
			At:     now,
		}
		s.repair(src, now)
	}
}

// scheduleProactiveRenew arms a one-shot timer at RenewAt of the
// grant's lifetime. A busy flow renews through its own data packets
// long before the timer fires (the grant has usually been superseded,
// making the closure a no-op); the timer exists for flows idle or slow
// enough that no data packet crosses the renewal threshold before T
// runs out — without it, such a flow's next send after expiry falls
// all the way back to a request through the contended request channel.
func (s *Shim) scheduleProactiveRenew(dst packet.Addr, st *sendState) {
	if s.After == nil {
		return
	}
	life := tvatime.Duration(st.tsec) * tvatime.Second
	s.After(tvatime.Duration(s.cfg.RenewAt*float64(life)), func() {
		if cur := s.sends[dst]; cur != st || !cur.granted {
			return // superseded or torn down; a newer grant has its own timer
		}
		if !st.everSent || s.clock.Now().Sub(st.lastSend) >= s.cfg.IdleReattach {
			// The flow has gone quiet (or never spoke): renewing would
			// keep dead authorizations alive indefinitely — 100 finished
			// attackers re-knocking every period. Let an idle flow's
			// next send fall back to a request instead.
			return
		}
		s.Stats.ProactiveRenewals++
		// A bare knock: fillGranted sees age >= RenewAt*life and builds
		// the renewal (or a fresh request if the grant died meanwhile).
		s.Send(dst, packet.ProtoRaw, nil, 0)
	})
}

// repair responds to a demotion echo: first re-attach the capability
// list so routers can rebuild cache state; if notices keep coming,
// fall back to a fresh request (§3.8).
func (s *Shim) repair(src packet.Addr, now tvatime.Time) {
	st := s.sends[src]
	if st == nil || !st.granted {
		return // already re-acquiring
	}
	if now.Sub(st.grantedAt) < s.cfg.ReattachMinGap {
		return // notices about packets that predate the fresh grant
	}
	if st.lastRepair == 0 || now.Sub(st.lastRepair) > s.cfg.ReattachMinGap {
		st.capsSent = 0 // re-attach caps on next packets
		st.lastRepair = now
		s.Stats.Repairs++
		return
	}
	// Re-attachment did not stick: re-acquire from scratch.
	s.sends[src] = nil
	s.Stats.Reacquires++
}

func (s *Shim) authorize(src packet.Addr, h *packet.CapHdr, now tvatime.Time) {
	if s.policy == nil {
		return
	}
	nkb, tsec, ok := s.policy.Authorize(src, now)
	if !ok {
		// Refusal: an empty capability list (§4.2).
		s.pendingFor(src).Grant = &packet.Grant{}
		return
	}
	if tsec > packet.MaxTSeconds {
		tsec = packet.MaxTSeconds
	}
	caps := make([]uint64, len(h.Request.PreCaps))
	for i, pre := range h.Request.PreCaps {
		caps[i] = s.cfg.Suite.MakeCap(pre, nkb, tsec)
	}
	s.Stats.GrantsIssued++
	s.pendingFor(src).Grant = &packet.Grant{NKB: nkb, TSec: tsec, Caps: caps}
}
