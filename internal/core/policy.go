// Destination authorization policies (paper §3.3). Policies decide
// whether to grant a request and with what fine-grained authorization
// (N bytes over T seconds). The paper argues two simple policies cover
// the extremes: a client that only accepts responses to its own
// requests, and a public server that grants everyone a default
// allowance and blacklists senders that misbehave.
package core

import (
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// Policy authorizes inbound senders. Implementations are
// single-threaded with their owning shim.
type Policy interface {
	// Authorize decides whether to grant src and returns the grant's
	// N (KB) and T (seconds).
	Authorize(src packet.Addr, now tvatime.Time) (nkb uint16, tsec uint8, ok bool)
}

// OutboundAware is implemented by policies that key decisions off the
// host's own outgoing requests (the client policy). The shim notifies
// it whenever a request is sent.
type OutboundAware interface {
	NoteOutboundRequest(dst packet.Addr, now tvatime.Time)
}

// DefaultGrantKB and DefaultGrantTSec are a public server's default
// allowance: enough for typical request/response exchanges while
// bounding the damage of a wrong decision (§3.5's 32KB/10s example is
// the evaluation's setting; servers may choose larger).
const (
	DefaultGrantKB   = 32
	DefaultGrantTSec = 10
)

// ClientPolicy implements the firewall-like client behaviour: accept a
// request only if it matches a recent outgoing request to that host
// (e.g. a capability request on a TCP SYN/ACK matching our SYN).
type ClientPolicy struct {
	// GrantKB/GrantTSec are the authorization returned to accepted
	// peers (zero values select the defaults).
	GrantKB   uint16
	GrantTSec uint8
	// Window is how long an outgoing request stays matchable
	// (default 30s).
	Window tvatime.Duration

	pending map[packet.Addr]tvatime.Time
}

// NewClientPolicy returns a client policy with default parameters.
func NewClientPolicy() *ClientPolicy {
	return &ClientPolicy{pending: make(map[packet.Addr]tvatime.Time)}
}

// NoteOutboundRequest implements OutboundAware.
func (p *ClientPolicy) NoteOutboundRequest(dst packet.Addr, now tvatime.Time) {
	if p.pending == nil {
		p.pending = make(map[packet.Addr]tvatime.Time)
	}
	p.pending[dst] = now
}

// Authorize implements Policy.
func (p *ClientPolicy) Authorize(src packet.Addr, now tvatime.Time) (uint16, uint8, bool) {
	window := p.Window
	if window <= 0 {
		window = 30 * tvatime.Second
	}
	at, ok := p.pending[src]
	if !ok || now.Sub(at) > window {
		return 0, 0, false
	}
	nkb, tsec := p.GrantKB, p.GrantTSec
	if nkb == 0 {
		nkb = DefaultGrantKB
	}
	if tsec == 0 {
		tsec = DefaultGrantTSec
	}
	return nkb, tsec, true
}

// ServerPolicy implements the public-server behaviour: grant every
// first request a default allowance; blacklist senders reported as
// misbehaving (flooding, unexpected traffic) so their capabilities
// simply run out (§3.3: "misbehaving senders are quickly contained").
type ServerPolicy struct {
	GrantKB   uint16
	GrantTSec uint8
	// BlacklistFor is how long a misbehaving source stays refused
	// (zero = forever).
	BlacklistFor tvatime.Duration

	black map[packet.Addr]tvatime.Time // time of blacklisting

	// Stats.
	Granted, Refused, Marked uint64
}

// NewServerPolicy returns a server policy granting the default
// allowance.
func NewServerPolicy() *ServerPolicy {
	return &ServerPolicy{black: make(map[packet.Addr]tvatime.Time)}
}

// Authorize implements Policy.
func (p *ServerPolicy) Authorize(src packet.Addr, now tvatime.Time) (uint16, uint8, bool) {
	if at, bad := p.black[src]; bad {
		if p.BlacklistFor > 0 && now.Sub(at) > p.BlacklistFor {
			delete(p.black, src) // parole
		} else {
			p.Refused++
			return 0, 0, false
		}
	}
	nkb, tsec := p.GrantKB, p.GrantTSec
	if nkb == 0 {
		nkb = DefaultGrantKB
	}
	if tsec == 0 {
		tsec = DefaultGrantTSec
	}
	p.Granted++
	return nkb, tsec, true
}

// MarkMisbehaving blacklists a source. The detector is the host stack:
// e.g. traffic to a port with no service, raw floods, or protocol
// violations (§3.3 leaves the detector abstract; DESIGN.md §2).
func (p *ServerPolicy) MarkMisbehaving(src packet.Addr, now tvatime.Time) {
	if _, bad := p.black[src]; !bad {
		p.Marked++
	}
	p.black[src] = now
}

// Blacklisted reports whether src is currently refused.
func (p *ServerPolicy) Blacklisted(src packet.Addr) bool {
	_, bad := p.black[src]
	return bad
}

// AllowAllPolicy grants the maximum expressible authorization to
// anyone: the colluder in the authorized-flood attack (§5.3), and
// convenient for examples.
type AllowAllPolicy struct {
	GrantKB   uint16
	GrantTSec uint8
}

// Authorize implements Policy.
func (p *AllowAllPolicy) Authorize(packet.Addr, tvatime.Time) (uint16, uint8, bool) {
	nkb, tsec := p.GrantKB, p.GrantTSec
	if nkb == 0 {
		nkb = packet.MaxNKB
	}
	if tsec == 0 {
		tsec = packet.MaxTSeconds
	}
	return nkb, tsec, true
}

// RefuseAllPolicy refuses everyone (a host that only ever initiates).
type RefuseAllPolicy struct{}

// Authorize implements Policy.
func (RefuseAllPolicy) Authorize(packet.Addr, tvatime.Time) (uint16, uint8, bool) {
	return 0, 0, false
}
