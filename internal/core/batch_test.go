package core

import (
	"reflect"
	"testing"

	"tva/internal/capability"
	"tva/internal/packet"
	"tva/internal/pathid"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// sliceTracer collects classify events for comparison.
type sliceTracer struct{ evs []telemetry.Event }

func (s *sliceTracer) Record(ev telemetry.Event) { s.evs = append(s.evs, ev) }

// equivWorkload builds a deterministic mixed burst exercising every
// Fig. 6 arm: requests (with and without hop stamps), regular packets
// creating/hitting/renewing cache entries (including same-flow trains
// that exercise the burst memo across a Create), forged and undersized
// capabilities, exhausted budgets, nonce-only misses, legacy packets,
// and already-demoted packets. caps are minted from auth so the same
// workload validates on any router sharing those secrets.
func equivWorkload(auth *capability.Authority, now tvatime.Time) []*packet.Packet {
	mint := func(src, dst packet.Addr, nkb uint16, tsec uint8) uint64 {
		return capability.Fast.MakeCap(auth.PreCap(src, dst, now), nkb, tsec)
	}
	goodAB := mint(1, 2, 32, 10)
	goodCD := mint(3, 4, 32, 10)
	renewCD := mint(3, 4, 64, 20)
	tiny := mint(5, 6, 1, 200) // below (N/T)min
	small := mint(7, 8, 1, 10) // 1 KB budget, exhausted by two packets

	var pkts []*packet.Packet
	add := func(p *packet.Packet) {
		p.TraceID = uint64(len(pkts) + 1)
		pkts = append(pkts, p)
	}

	req := reqPacket(1, 2, 100)
	req.Hdr.Request.WantHops = true
	add(req)
	add(reqPacket(9, 10, 50))

	// Flow (1,2): create, then a nonce train (burst memo hits).
	add(regPacket(1, 2, packet.KindRegular, 41, []uint64{goodAB}, 32, 10, 400))
	add(regPacket(1, 2, packet.KindNonceOnly, 41, nil, 0, 0, 300))
	add(regPacket(1, 2, packet.KindNonceOnly, 41, nil, 0, 0, 300))
	add(regPacket(1, 2, packet.KindNonceOnly, 42, nil, 0, 0, 300)) // wrong nonce

	// Flow (3,4): create, then renewal replacing the entry.
	add(regPacket(3, 4, packet.KindRegular, 51, []uint64{goodCD}, 32, 10, 200))
	add(regPacket(3, 4, packet.KindRenewal, 52, []uint64{renewCD}, 64, 20, 200))
	add(regPacket(3, 4, packet.KindNonceOnly, 52, nil, 0, 0, 100))

	// Failures: forged cap, under-minimum authorization, budget burn.
	add(regPacket(11, 12, packet.KindRegular, 61, []uint64{0xdeadbeef}, 32, 10, 100))
	add(regPacket(5, 6, packet.KindRegular, 62, []uint64{tiny}, 1, 200, 10))
	add(regPacket(7, 8, packet.KindRegular, 63, []uint64{small}, 1, 10, 600))
	add(regPacket(7, 8, packet.KindNonceOnly, 63, nil, 0, 0, 600)) // exceeds 1 KB

	// Legacy (no header) and an already-demoted packet.
	add(&packet.Packet{Src: 13, Dst: 14, TTL: 9, Size: 700})
	demoted := regPacket(1, 2, packet.KindNonceOnly, 41, nil, 0, 0, 100)
	demoted.Hdr.Demoted = true
	demoted.Hdr.DemoteReason = uint8(telemetry.DropCapInvalid)
	add(demoted)

	// Nonce-only for a flow with no entry at all.
	add(regPacket(15, 16, packet.KindNonceOnly, 70, nil, 0, 0, 100))
	return pkts
}

// TestProcessBatchEquivalence drives the same workload through looped
// Process and through ProcessBatch (in several bursts) on routers
// sharing one authority, and requires identical classes, packet
// mutations, stats, demotion counters, cache accounting, trace
// events, and flight-recorder spans.
func TestProcessBatchEquivalence(t *testing.T) {
	now := at(2)
	mk := func() *Router {
		return NewRouter(RouterConfig{
			Suite: capability.Fast, ID: 7, CacheEntries: 8,
			TrustBoundary: true, Tagger: pathid.NewSeeded(3),
			MinNKB: 4, MinTSec: 10,
		})
	}
	single, batched := mk(), mk()
	batched.auth = single.auth // share secrets so minted values agree

	var trSingle, trBatched sliceTracer
	single.Tracer, batched.Tracer = &trSingle, &trBatched
	spSingle, spBatched := trace.NewRecorder(256), trace.NewRecorder(256)
	single.Spans, batched.Spans = spSingle, spBatched

	wantPkts := equivWorkload(single.auth, now)
	gotPkts := equivWorkload(single.auth, now)

	var wantClasses, gotClasses []packet.Class
	for _, p := range wantPkts {
		wantClasses = append(wantClasses, single.Process(p, 5, now))
	}
	// Batch in uneven bursts so the memo and minter reset mid-stream.
	for lo := 0; lo < len(gotPkts); {
		hi := lo + 6
		if hi > len(gotPkts) {
			hi = len(gotPkts)
		}
		b := packet.NewBatch(hi - lo)
		for _, p := range gotPkts[lo:hi] {
			b.Append(p)
		}
		batched.ProcessBatch(b, 5, now)
		for i := 0; i < b.Len(); i++ {
			gotClasses = append(gotClasses, b.Class(i))
			if b.Class(i) != b.At(i).Class {
				t.Errorf("slot %d: batch class %v != packet class %v", i, b.Class(i), b.At(i).Class)
			}
		}
		lo = hi
	}

	if !reflect.DeepEqual(wantClasses, gotClasses) {
		t.Errorf("classes diverge:\n single %v\n batched %v", wantClasses, gotClasses)
	}
	for i := range wantPkts {
		if !reflect.DeepEqual(wantPkts[i], gotPkts[i]) {
			t.Errorf("packet %d mutated differently:\n single %+v (hdr %+v)\n batched %+v (hdr %+v)",
				i, wantPkts[i], wantPkts[i].Hdr, gotPkts[i], gotPkts[i].Hdr)
		}
	}
	if single.Stats != batched.Stats {
		t.Errorf("stats diverge:\n single %+v\n batched %+v", single.Stats, batched.Stats)
	}
	if single.Demotions != batched.Demotions {
		t.Errorf("demotions diverge:\n single %v\n batched %v", single.Demotions, batched.Demotions)
	}
	sc, bc := single.Cache(), batched.Cache()
	if sc.Creates != bc.Creates || sc.Hits != bc.Hits || sc.Misses != bc.Misses || sc.Evictions != bc.Evictions {
		t.Errorf("cache accounting diverges: single c=%d h=%d m=%d e=%d, batched c=%d h=%d m=%d e=%d",
			sc.Creates, sc.Hits, sc.Misses, sc.Evictions, bc.Creates, bc.Hits, bc.Misses, bc.Evictions)
	}
	if !reflect.DeepEqual(trSingle.evs, trBatched.evs) {
		t.Errorf("trace events diverge:\n single %+v\n batched %+v", trSingle.evs, trBatched.evs)
	}
	if !reflect.DeepEqual(spSingle.Snapshot(), spBatched.Snapshot()) {
		t.Errorf("spans diverge:\n single %+v\n batched %+v", spSingle.Snapshot(), spBatched.Snapshot())
	}
}

// TestProcessBatchSkipsNilSlots verifies Take-ed slots pass through
// untouched.
func TestProcessBatchSkipsNilSlots(t *testing.T) {
	r := newTestRouter(false)
	b := packet.NewBatch(3)
	b.Append(reqPacket(1, 2, 10))
	b.Append(reqPacket(3, 4, 10))
	b.Append(reqPacket(5, 6, 10))
	b.Take(1)
	r.ProcessBatch(b, 0, at(0))
	if r.Stats.Requests != 2 {
		t.Fatalf("Requests = %d, want 2 (nil slot skipped)", r.Stats.Requests)
	}
	if b.Class(0) != packet.ClassRequest || b.Class(2) != packet.ClassRequest {
		t.Fatalf("classes = %v %v", b.Class(0), b.Class(2))
	}
}

// TestProcessBatchZeroAlloc pins the amortized allocation freedom of
// the batched hot path at steady state.
func TestProcessBatchZeroAlloc(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 1<<12, 200, now)
	first := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 1<<12, 200, 100)
	if got := r.Process(first, 0, now); got != packet.ClassRegular {
		t.Fatalf("setup packet classified %v", got)
	}
	b := packet.NewBatch(32)
	pkts := make([]*packet.Packet, 32)
	for i := range pkts {
		pkts[i] = regPacket(1, 2, packet.KindNonceOnly, 5, nil, 0, 0, 1)
	}
	avg := testing.AllocsPerRun(50, func() {
		b.Reset()
		for _, p := range pkts {
			b.Append(p)
		}
		r.ProcessBatch(b, 0, now)
	})
	if avg != 0 {
		t.Fatalf("ProcessBatch allocates %.1f/op, want 0", avg)
	}
}
