package core

import (
	"testing"

	"tva/internal/capability"
	"tva/internal/flowcache"
	"tva/internal/packet"
	"tva/internal/pathid"
	"tva/internal/tvatime"
)

func at(sec float64) tvatime.Time { return tvatime.FromSeconds(sec) }

func newTestRouter(boundary bool) *Router {
	return NewRouter(RouterConfig{
		Suite:         capability.Fast,
		CacheEntries:  64,
		TrustBoundary: boundary,
		Tagger:        pathid.NewSeeded(1),
	})
}

func reqPacket(src, dst packet.Addr, payload int) *packet.Packet {
	h := &packet.CapHdr{Kind: packet.KindRequest, Proto: packet.ProtoRaw}
	return &packet.Packet{
		Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
		Hdr: h, Size: packet.OuterHdrLen + h.WireSize() + payload,
	}
}

func TestRequestStamping(t *testing.T) {
	r := newTestRouter(true)
	pkt := reqPacket(1, 2, 100)
	before := pkt.Size
	class := r.Process(pkt, 3, at(0))
	if class != packet.ClassRequest {
		t.Fatalf("class = %v, want request", class)
	}
	if len(pkt.Hdr.Request.PreCaps) != 1 {
		t.Fatalf("pre-capability not added: %v", pkt.Hdr.Request.PreCaps)
	}
	if len(pkt.Hdr.Request.PathIDs) != 1 {
		t.Fatalf("path id not added at trust boundary")
	}
	if want := before + 8 + 2; pkt.Size != want {
		t.Errorf("Size = %d, want %d (grew by precap+pathid)", pkt.Size, want)
	}
	if !r.Authority().ValidatePre(1, 2, pkt.Hdr.Request.PreCaps[0], at(0)) {
		t.Error("stamped pre-capability does not validate")
	}
}

func TestNonBoundaryDoesNotTag(t *testing.T) {
	r := newTestRouter(false)
	pkt := reqPacket(1, 2, 100)
	r.Process(pkt, 0, at(0))
	if len(pkt.Hdr.Request.PathIDs) != 0 {
		t.Error("non-boundary router added a path id")
	}
	if len(pkt.Hdr.Request.PreCaps) != 1 {
		t.Error("every router must add a pre-capability")
	}
}

// grantFor runs the request through the router and converts the
// pre-capability into a capability, as a destination would.
func grantFor(t *testing.T, r *Router, src, dst packet.Addr, nkb uint16, tsec uint8, now tvatime.Time) uint64 {
	t.Helper()
	req := reqPacket(src, dst, 0)
	r.Process(req, 0, now)
	if len(req.Hdr.Request.PreCaps) != 1 {
		t.Fatal("no pre-capability")
	}
	return capability.Fast.MakeCap(req.Hdr.Request.PreCaps[0], nkb, tsec)
}

func regPacket(src, dst packet.Addr, kind packet.Kind, nonce uint64, caps []uint64, nkb uint16, tsec uint8, payload int) *packet.Packet {
	h := &packet.CapHdr{Kind: kind, Proto: packet.ProtoRaw, Nonce: nonce, NKB: nkb, TSec: tsec, Caps: caps}
	return &packet.Packet{
		Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
		Hdr: h, Size: packet.OuterHdrLen + h.WireSize() + payload,
	}
}

func TestRegularValidationAndCaching(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 32, 10, now)

	first := regPacket(1, 2, packet.KindRegular, 777, []uint64{cap}, 32, 10, 500)
	if class := r.Process(first, 0, now); class != packet.ClassRegular {
		t.Fatalf("valid first packet classified %v", class)
	}
	if r.Cache().Len() != 1 {
		t.Fatal("no cache entry created")
	}

	// Subsequent nonce-only packet hits the cache.
	nonceOnly := regPacket(1, 2, packet.KindNonceOnly, 777, nil, 0, 0, 500)
	if class := r.Process(nonceOnly, 0, now.Add(10*tvatime.Millisecond)); class != packet.ClassRegular {
		t.Fatalf("nonce-only packet classified %v", class)
	}
	if r.Stats.RegularHit != 1 {
		t.Errorf("RegularHit = %d, want 1", r.Stats.RegularHit)
	}

	// Wrong nonce without capabilities: demoted.
	bad := regPacket(1, 2, packet.KindNonceOnly, 778, nil, 0, 0, 500)
	if class := r.Process(bad, 0, now.Add(20*tvatime.Millisecond)); class != packet.ClassLegacy {
		t.Fatalf("wrong-nonce packet classified %v", class)
	}
	if !bad.Hdr.Demoted {
		t.Error("wrong-nonce packet not marked demoted")
	}
}

func TestForgedCapDemoted(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 32, 10, now)
	forged := regPacket(1, 2, packet.KindRegular, 1, []uint64{cap ^ 4}, 32, 10, 500)
	if class := r.Process(forged, 0, now); class != packet.ClassLegacy || !forged.Hdr.Demoted {
		t.Error("forged capability not demoted")
	}
	// Stolen capability used from another source: demoted.
	stolen := regPacket(9, 2, packet.KindRegular, 1, []uint64{cap}, 32, 10, 500)
	if class := r.Process(stolen, 0, now); class != packet.ClassLegacy {
		t.Error("capability transferred to another sender was accepted")
	}
}

func TestByteLimitDemotes(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 1, 10, now) // N = 1 KB
	first := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 1, 10, 500)
	if r.Process(first, 0, now) != packet.ClassRegular {
		t.Fatal("first packet rejected")
	}
	second := regPacket(1, 2, packet.KindNonceOnly, 5, nil, 0, 0, 600)
	if r.Process(second, 0, now) != packet.ClassLegacy {
		t.Error("packet beyond N not demoted")
	}
	if r.Stats.Demoted == 0 {
		t.Error("demotion not counted")
	}
}

func TestExpiryDemotes(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 32, 2, now) // T = 2s
	first := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 32, 2, 100)
	if r.Process(first, 0, now) != packet.ClassRegular {
		t.Fatal("first packet rejected")
	}
	late := regPacket(1, 2, packet.KindNonceOnly, 5, nil, 0, 0, 100)
	if r.Process(late, 0, now.Add(3*tvatime.Second)) != packet.ClassLegacy {
		t.Error("packet after T not demoted")
	}
}

func TestRenewalReplacesEntryAndMintsPreCap(t *testing.T) {
	r := newTestRouter(true)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 1, 10, now)
	first := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 1, 10, 400)
	if r.Process(first, 0, now) != packet.ClassRegular {
		t.Fatal("setup failed")
	}

	// Renewal carrying the old (still valid) capability but a new
	// nonce; the router validates, replaces the entry, and mints a
	// fresh pre-capability into the packet.
	renewal := regPacket(1, 2, packet.KindRenewal, 6, []uint64{cap}, 1, 10, 100)
	if class := r.Process(renewal, 0, now.Add(tvatime.Second)); class != packet.ClassRegular {
		t.Fatalf("renewal classified %v", class)
	}
	if len(renewal.Hdr.Request.PreCaps) != 1 {
		t.Error("renewal did not receive a fresh pre-capability")
	}
	if len(renewal.Hdr.Request.PathIDs) != 1 {
		t.Error("renewal not tagged at trust boundary")
	}
	if r.Stats.Replaced != 1 {
		t.Errorf("Replaced = %d, want 1", r.Stats.Replaced)
	}
	// The new nonce now hits the cache.
	pkt := regPacket(1, 2, packet.KindNonceOnly, 6, nil, 0, 0, 100)
	if r.Process(pkt, 0, now.Add(tvatime.Second)) != packet.ClassRegular {
		t.Error("renewed nonce rejected")
	}
}

func TestDemotedStaysDemoted(t *testing.T) {
	r1 := newTestRouter(false)
	r2 := newTestRouter(false)
	now := at(1)
	// A packet demoted at r1 must not be re-promoted at r2 even if it
	// would otherwise validate there.
	req := reqPacket(1, 2, 0)
	r1.Process(req, 0, now)
	r2.Process(req, 0, now)
	cap2 := capability.Fast.MakeCap(req.Hdr.Request.PreCaps[1], 32, 10)
	pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{123, cap2}, 32, 10, 100)
	if r1.Process(pkt, 0, now) != packet.ClassLegacy {
		t.Fatal("bogus first-hop capability accepted")
	}
	if r2.Process(pkt, 0, now) != packet.ClassLegacy {
		t.Error("demoted packet re-promoted downstream")
	}
	if r2.Stats.Legacy == 0 {
		t.Error("demoted packet not counted as legacy downstream")
	}
}

func TestCapabilityPointerWalksTwoRouters(t *testing.T) {
	r1 := newTestRouter(false)
	r2 := newTestRouter(false)
	now := at(1)
	req := reqPacket(1, 2, 0)
	r1.Process(req, 0, now)
	r2.Process(req, 0, now)
	caps := make([]uint64, 2)
	for i, pre := range req.Hdr.Request.PreCaps {
		caps[i] = capability.Fast.MakeCap(pre, 32, 10)
	}
	pkt := regPacket(1, 2, packet.KindRegular, 5, caps, 32, 10, 100)
	if r1.Process(pkt, 0, now) != packet.ClassRegular {
		t.Fatal("hop 1 rejected")
	}
	if pkt.Hdr.Ptr != 1 {
		t.Fatalf("Ptr = %d after hop 1, want 1", pkt.Hdr.Ptr)
	}
	if r2.Process(pkt, 0, now) != packet.ClassRegular {
		t.Fatal("hop 2 rejected")
	}
	if pkt.Hdr.Ptr != 2 {
		t.Errorf("Ptr = %d after hop 2, want 2", pkt.Hdr.Ptr)
	}
	// A third router has no slot: demote.
	r3 := newTestRouter(false)
	if r3.Process(pkt, 0, now) != packet.ClassLegacy {
		t.Error("packet with exhausted capability list not demoted")
	}
}

func TestLegacyPassesAsLegacy(t *testing.T) {
	r := newTestRouter(false)
	pkt := &packet.Packet{Src: 1, Dst: 2, Proto: packet.ProtoRaw, Size: 100}
	if r.Process(pkt, 0, at(0)) != packet.ClassLegacy {
		t.Error("legacy packet misclassified")
	}
	if r.Stats.Legacy != 1 {
		t.Error("legacy not counted")
	}
}

func TestMinRateEnforced(t *testing.T) {
	r := NewRouter(RouterConfig{
		Suite: capability.Fast, CacheEntries: 16,
		MinNKB: 4, MinTSec: 10, // (N/T)min = 0.4 KB/s
	})
	now := at(1)
	// Grant with a rate below the architectural minimum: rejected so
	// attackers cannot pin state with absurdly slow authorizations.
	cap := grantFor(t, r, 1, 2, 1, 60, now) // ~17 B/s
	pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 1, 60, 50)
	if r.Process(pkt, 0, now) != packet.ClassLegacy {
		t.Error("authorization below (N/T)min accepted")
	}
}

func TestCacheBoundedUnderFloodOfFlows(t *testing.T) {
	r := NewRouter(RouterConfig{Suite: capability.Fast, CacheEntries: 8})
	now := at(1)
	admitted := 0
	for i := 0; i < 100; i++ {
		src := packet.Addr(i + 10)
		cap := grantFor(t, r, src, 2, 32, 10, now)
		pkt := regPacket(src, 2, packet.KindRegular, uint64(i), []uint64{cap}, 32, 10, 1000)
		if r.Process(pkt, 0, now) == packet.ClassRegular {
			admitted++
		}
	}
	if got := r.Cache().Len(); got > 8 {
		t.Errorf("cache exceeded bound: %d > 8", got)
	}
	if admitted == 0 {
		t.Error("no flows admitted at all")
	}
}

func TestProcessDropsConsistencyWithFlowcacheKey(t *testing.T) {
	// Same source, different destinations are distinct flows (§3.5).
	r := newTestRouter(false)
	now := at(1)
	capA := grantFor(t, r, 1, 2, 32, 10, now)
	capB := grantFor(t, r, 1, 3, 32, 10, now)
	a := regPacket(1, 2, packet.KindRegular, 5, []uint64{capA}, 32, 10, 100)
	b := regPacket(1, 3, packet.KindRegular, 6, []uint64{capB}, 32, 10, 100)
	r.Process(a, 0, now)
	r.Process(b, 0, now)
	if r.Cache().Len() != 2 {
		t.Errorf("flows not keyed by (src,dst): %d entries", r.Cache().Len())
	}
	if r.Cache().Lookup(1, 2) == nil || r.Cache().Lookup(1, 3) == nil {
		t.Error("missing per-destination entries")
	}
}

func TestNewAuthorityCache(t *testing.T) {
	if NewAuthorityCache(5).Max() != 5 {
		t.Error("cache sizing ignored")
	}
	var _ *flowcache.Cache = NewAuthorityCache(1)
}
