package core

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// A restart flushes the soft state (flow cache, path-id history) but
// keeps the capability secrets, so outstanding capabilities stay valid
// and flows revalidate from the lists they carry (§3.8, §3.6).
func TestRouterRestartFlushesSoftStateKeepsSecrets(t *testing.T) {
	r := newTestRouter(true)
	now := at(1)
	cap0 := grantFor(t, r, 1, 2, 32, 10, now)

	// Seed a cache entry with a regular packet.
	reg := regPacket(1, 2, packet.KindRegular, 77, []uint64{cap0}, 32, 10, 500)
	if got := r.Process(reg, 0, now); got != packet.ClassRegular {
		t.Fatalf("pre-restart regular packet classified %v", got)
	}
	if r.Cache().Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", r.Cache().Len())
	}
	tagBefore := pathTag(t, r, 3, now)

	r.Restart()

	if got := r.Restarts(); got != 1 {
		t.Errorf("Restarts = %d, want 1", got)
	}
	if r.Cache().Len() != 0 {
		t.Errorf("cache has %d entries after restart, want 0 (soft state)", r.Cache().Len())
	}
	if tagAfter := pathTag(t, r, 3, now); tagAfter == tagBefore {
		t.Errorf("path-id tag unchanged across restart; history should be re-keyed")
	}

	// A nonce-only packet has nothing to revalidate with: demoted.
	nonceOnly := regPacket(1, 2, packet.KindNonceOnly, 77, nil, 32, 10, 500)
	if got := r.Process(nonceOnly, 0, now.Add(0)); got != packet.ClassLegacy {
		t.Errorf("nonce-only after restart classified %v, want legacy (cache entry gone)", got)
	}

	// The same capability list still validates: secrets survived.
	reg2 := regPacket(1, 2, packet.KindRegular, 78, []uint64{cap0}, 32, 10, 500)
	if got := r.Process(reg2, 0, now.Add(0)); got != packet.ClassRegular {
		t.Errorf("capability-carrying packet after restart classified %v, want regular", got)
	}
	if r.Cache().Len() != 1 {
		t.Errorf("cache has %d entries after revalidation, want 1", r.Cache().Len())
	}
}

// pathTag stamps a fresh request through interface iface and returns
// the path identifier the router applied.
func pathTag(t *testing.T, r *Router, iface int, now tvatime.Time) packet.PathID {
	t.Helper()
	req := reqPacket(9, 10, 0)
	r.Process(req, iface, now)
	if len(req.Hdr.Request.PathIDs) != 1 {
		t.Fatal("no path id stamped")
	}
	return req.Hdr.Request.PathIDs[0]
}
