package core

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// timers is a minimal timer wheel driving Shim.After against the wire
// harness's controllable clock.
type timers struct {
	w *wire
	q []timerEv
}

type timerEv struct {
	at tvatime.Time
	fn func()
}

func (tm *timers) After(d tvatime.Duration, fn func()) {
	tm.q = append(tm.q, timerEv{tm.w.now.Add(d), fn})
}

// runUntil fires due timers in order, advancing the wire clock.
func (tm *timers) runUntil(until tvatime.Time) {
	for {
		best := -1
		for i, ev := range tm.q {
			if ev.at <= until && (best < 0 || ev.at < tm.q[best].at) {
				best = i
			}
		}
		if best < 0 {
			tm.w.now = until
			return
		}
		ev := tm.q[best]
		tm.q = append(tm.q[:best], tm.q[best+1:]...)
		if ev.at > tm.w.now {
			tm.w.now = ev.at
		}
		ev.fn()
	}
}

func TestRetryRecoversLostRequest(t *testing.T) {
	w := newWire(1)
	tm := &timers{w: w}
	client := w.addHost(1, NewClientPolicy())
	client.After = tm.After
	w.addHost(2, NewServerPolicy())

	w.dropNext = 1 // lose the initial request on the wire
	client.Send(2, packet.ProtoRaw, nil, 100)
	if client.HasCaps(2) {
		t.Fatal("request was dropped; no grant should have arrived")
	}
	tm.runUntil(tvatime.FromSeconds(2))
	if !client.HasCaps(2) {
		t.Fatal("retry engine did not recover the lost request")
	}
	if client.Stats.RetriesSent != 1 {
		t.Errorf("RetriesSent = %d, want 1 (first retry should have succeeded)", client.Stats.RetriesSent)
	}
}

func TestRetryBacksOffAndGivesUp(t *testing.T) {
	w := newWire(1)
	tm := &timers{w: w}
	client := w.addHost(1, NewClientPolicy())
	client.After = tm.After
	w.addHost(2, NewServerPolicy())

	w.dropNext = 1 << 20 // black-hole everything
	client.Send(2, packet.ProtoRaw, nil, 100)
	tm.runUntil(tvatime.FromSeconds(120))
	if client.HasCaps(2) {
		t.Fatal("nothing should get through a black hole")
	}
	if got, want := client.Stats.RetriesSent, uint64(8); got != want {
		t.Errorf("RetriesSent = %d, want %d (the default cap)", got, want)
	}
	if client.Stats.RetriesAbandoned != 1 {
		t.Errorf("RetriesAbandoned = %d, want 1", client.Stats.RetriesAbandoned)
	}
	if len(tm.q) != 0 {
		t.Errorf("%d timers still pending after abandonment; the episode should be dead", len(tm.q))
	}
}

func TestRetryAnswerCancelsEpisode(t *testing.T) {
	w := newWire(1)
	tm := &timers{w: w}
	client := w.addHost(1, NewClientPolicy())
	client.After = tm.After
	w.addHost(2, NewServerPolicy())

	client.Send(2, packet.ProtoRaw, nil, 100) // delivered; grant arrives inline
	if !client.HasCaps(2) {
		t.Fatal("lossless request should be granted")
	}
	tm.runUntil(tvatime.FromSeconds(5))
	if client.Stats.RetriesSent != 0 {
		t.Errorf("RetriesSent = %d after an answered request, want 0", client.Stats.RetriesSent)
	}
}

func TestProactiveRenewalKeepsActiveFlowAuthorized(t *testing.T) {
	w := newWire(1)
	tm := &timers{w: w}
	client := w.addHost(1, NewClientPolicy())
	client.After = tm.After
	w.addHost(2, NewServerPolicy())

	client.Send(2, packet.ProtoRaw, nil, 100) // request + grant (T = 10s)
	if !client.HasCaps(2) {
		t.Fatal("no grant")
	}
	// Keep the flow active just before the 0.75*T renewal point, then
	// let the proactive timer fire.
	tm.runUntil(tvatime.FromSeconds(7.4))
	client.Send(2, packet.ProtoRaw, nil, 100)
	grantsBefore := client.Stats.GrantsReceived
	tm.runUntil(tvatime.FromSeconds(8))
	if client.Stats.ProactiveRenewals != 1 {
		t.Fatalf("ProactiveRenewals = %d, want 1", client.Stats.ProactiveRenewals)
	}
	if client.Stats.GrantsReceived != grantsBefore+1 {
		t.Errorf("GrantsReceived = %d, want %d (the renewal should have been re-granted)",
			client.Stats.GrantsReceived, grantsBefore+1)
	}
}

func TestProactiveRenewalSkipsIdleFlow(t *testing.T) {
	w := newWire(1)
	tm := &timers{w: w}
	client := w.addHost(1, NewClientPolicy())
	client.After = tm.After
	w.addHost(2, NewServerPolicy())

	client.Send(2, packet.ProtoRaw, nil, 100)
	// Flow goes silent; at 7.5s the timer must decline to renew.
	tm.runUntil(tvatime.FromSeconds(20))
	if client.Stats.ProactiveRenewals != 0 {
		t.Errorf("ProactiveRenewals = %d for an idle flow, want 0", client.Stats.ProactiveRenewals)
	}
}
