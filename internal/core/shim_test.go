package core

import (
	"math/rand"
	"testing"

	"tva/internal/capability"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// wire glues two shims through a chain of routers with a controllable
// clock and immediate, lossless delivery — the minimal end-to-end TVA
// path for protocol tests.
type wire struct {
	now     tvatime.Time
	routers []*Router
	shims   map[packet.Addr]*Shim

	// dropNext drops the next n forwarded packets (loss injection).
	dropNext int
	// forwarded log of classes seen at the first router.
	classes []packet.Class
}

func (w *wire) Now() tvatime.Time { return w.now }

func (w *wire) advance(d tvatime.Duration) { w.now = w.now.Add(d) }

func newWire(nRouters int) *wire {
	w := &wire{shims: make(map[packet.Addr]*Shim)}
	for i := 0; i < nRouters; i++ {
		w.routers = append(w.routers, NewRouter(RouterConfig{
			Suite:         capability.Fast,
			CacheEntries:  128,
			TrustBoundary: i == 0,
		}))
	}
	return w
}

func (w *wire) addHost(addr packet.Addr, policy Policy) *Shim {
	s := NewShim(addr, policy, w, rand.New(rand.NewSource(int64(addr))), ShimConfig{
		Suite:      capability.Fast,
		AutoReturn: true,
	})
	s.Output = func(pkt *packet.Packet) { w.route(pkt) }
	w.shims[addr] = s
	return s
}

// route runs a packet through every router (in order for "left" hosts;
// the chain is symmetric for this harness) and delivers it.
func (w *wire) route(pkt *packet.Packet) {
	for i, r := range w.routers {
		class := r.Process(pkt, 0, w.now)
		if i == 0 {
			w.classes = append(w.classes, class)
		}
	}
	if w.dropNext > 0 {
		w.dropNext--
		return
	}
	if dst := w.shims[pkt.Dst]; dst != nil {
		dst.Receive(pkt)
	}
}

func TestHandshakeGrantsCapabilities(t *testing.T) {
	w := newWire(2)
	client := w.addHost(1, NewClientPolicy())
	server := w.addHost(2, NewServerPolicy())
	_ = server

	if client.HasCaps(2) {
		t.Fatal("client should start without capabilities")
	}
	client.Send(2, packet.ProtoRaw, nil, 100) // becomes a request
	if !client.HasCaps(2) {
		t.Fatal("grant did not arrive (auto-return carrier)")
	}
	if client.Stats.RequestsSent != 1 || client.Stats.GrantsReceived != 1 {
		t.Errorf("stats: %+v", client.Stats)
	}
}

func TestDataFlowsRegularThenNonceOnly(t *testing.T) {
	w := newWire(2)
	client := w.addHost(1, NewClientPolicy())
	w.addHost(2, NewServerPolicy())

	client.Send(2, packet.ProtoRaw, nil, 100) // request → grant
	w.classes = nil
	client.Send(2, packet.ProtoRaw, nil, 100) // first regular w/ caps
	client.Send(2, packet.ProtoRaw, nil, 100) // nonce-only
	client.Send(2, packet.ProtoRaw, nil, 100)
	for i, c := range w.classes {
		if c != packet.ClassRegular {
			t.Errorf("packet %d class %v, want regular", i, c)
		}
	}
	if client.Stats.RegularSent != 1 {
		t.Errorf("RegularSent = %d, want 1 (then nonce-only)", client.Stats.RegularSent)
	}
	if client.Stats.NonceOnlySent != 2 {
		t.Errorf("NonceOnlySent = %d, want 2", client.Stats.NonceOnlySent)
	}
}

func TestRefusedSenderStaysLegacy(t *testing.T) {
	w := newWire(1)
	client := w.addHost(1, NewClientPolicy())
	w.addHost(2, RefuseAllPolicy{})

	client.Send(2, packet.ProtoRaw, nil, 100)
	if client.HasCaps(2) {
		t.Fatal("refused client believes it has capabilities")
	}
	// Refusals are not carried by standalone packets; the client only
	// learns via piggyback. Either way it must keep requesting.
	client.Send(2, packet.ProtoRaw, nil, 100)
	if client.Stats.RequestsSent != 2 {
		t.Errorf("RequestsSent = %d, want 2", client.Stats.RequestsSent)
	}
}

func TestRenewalBeforeExhaustion(t *testing.T) {
	w := newWire(1)
	client := w.addHost(1, NewClientPolicy())
	server := NewServerPolicy()
	server.GrantKB = 4 // tiny: 4096 bytes
	w.addHost(2, server)

	client.Send(2, packet.ProtoRaw, nil, 100)
	if !client.HasCaps(2) {
		t.Fatal("no grant")
	}
	// Stream ~6 KB in 500B payloads; the shim must renew mid-stream
	// and nothing may be demoted.
	for i := 0; i < 12; i++ {
		client.Send(2, packet.ProtoRaw, nil, 500)
		w.advance(10 * tvatime.Millisecond)
	}
	if client.Stats.RenewalsSent == 0 {
		t.Error("no renewal sent despite approaching N")
	}
	if got := w.routers[0].Stats.Demoted; got != 0 {
		t.Errorf("%d packets demoted; renewal should prevent that", got)
	}
	if client.Stats.GrantsReceived < 2 {
		t.Errorf("GrantsReceived = %d, want ≥2", client.Stats.GrantsReceived)
	}
}

func TestRenewalOnTimeThreshold(t *testing.T) {
	w := newWire(1)
	client := w.addHost(1, NewClientPolicy())
	server := NewServerPolicy()
	server.GrantTSec = 8
	w.addHost(2, server)

	client.Send(2, packet.ProtoRaw, nil, 100)
	w.advance(7 * tvatime.Second) // past 0.75*T
	client.Send(2, packet.ProtoRaw, nil, 100)
	if client.Stats.RenewalsSent == 0 {
		t.Error("no renewal near T")
	}
}

func TestDemotionEchoAndRepair(t *testing.T) {
	w := newWire(1)
	client := w.addHost(1, NewClientPolicy())
	w.addHost(2, NewServerPolicy())

	client.Send(2, packet.ProtoRaw, nil, 100)
	client.Send(2, packet.ProtoRaw, nil, 100) // seeds router cache
	w.advance(200 * tvatime.Millisecond)

	// Simulate router state loss: clear the flow cache, so the next
	// nonce-only packet is demoted (§3.8).
	*w.routers[0].Cache() = *NewAuthorityCache(128)
	client.Send(2, packet.ProtoRaw, nil, 100)
	if w.routers[0].Stats.Demoted != 1 {
		t.Fatalf("expected a demotion after cache loss, got %d", w.routers[0].Stats.Demoted)
	}
	// The destination echoed the demotion (auto-return); the client
	// repairs by re-attaching its capability list.
	if client.Stats.DemotionsSeen != 0 {
		t.Error("client itself should not see demoted packets here")
	}
	if client.Stats.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", client.Stats.Repairs)
	}
	w.advance(200 * tvatime.Millisecond)
	w.classes = nil
	client.Send(2, packet.ProtoRaw, nil, 100) // re-attaches caps
	if w.classes[0] != packet.ClassRegular {
		t.Error("repair packet not regular (cache not rebuilt)")
	}
	if w.routers[0].Cache().Len() != 1 {
		t.Error("router cache not repopulated by repair")
	}
}

func TestIdleReattach(t *testing.T) {
	w := newWire(1)
	client := w.addHost(1, NewClientPolicy())
	server := NewServerPolicy()
	server.GrantTSec = 60
	w.addHost(2, server)

	client.Send(2, packet.ProtoRaw, nil, 100)
	client.Send(2, packet.ProtoRaw, nil, 100)
	regularBefore := client.Stats.RegularSent
	// Idle past the reattach guard: the next packet carries the full
	// capability list in case routers evicted the flow (§3.7).
	w.advance(5 * tvatime.Second)
	client.Send(2, packet.ProtoRaw, nil, 100)
	if client.Stats.RegularSent != regularBefore+1 {
		t.Errorf("idle resume did not re-attach capabilities: %+v", client.Stats)
	}
}

func TestReturnInfoPiggybacksOnReverseTraffic(t *testing.T) {
	w := newWire(1)
	a := w.addHost(1, NewServerPolicy())
	b := w.addHost(2, NewServerPolicy())
	_ = b

	// a requests to b; b grants via an auto-return carrier. The
	// carrier itself must NOT earn b capabilities (it is pure control;
	// see the anti-loop rule) — b bootstraps its own direction with
	// its first real packet toward a.
	a.Send(2, packet.ProtoRaw, nil, 100)
	if !a.HasCaps(2) {
		t.Fatal("a did not get capabilities")
	}
	if b.HasCaps(1) {
		t.Fatal("control carrier alone granted b capabilities")
	}
	b.Send(1, packet.ProtoRaw, nil, 100) // real reverse traffic: a request
	if !b.HasCaps(1) {
		t.Fatal("reverse direction did not bootstrap on real traffic")
	}
}

func TestServerPolicyBlacklist(t *testing.T) {
	p := NewServerPolicy()
	now := tvatime.FromSeconds(1)
	if _, _, ok := p.Authorize(5, now); !ok {
		t.Fatal("first request refused")
	}
	p.MarkMisbehaving(5, now)
	if _, _, ok := p.Authorize(5, now); ok {
		t.Fatal("blacklisted source granted")
	}
	if _, _, ok := p.Authorize(6, now); !ok {
		t.Fatal("innocent source refused")
	}
	if !p.Blacklisted(5) || p.Blacklisted(6) {
		t.Error("Blacklisted() inconsistent")
	}
}

func TestServerPolicyParole(t *testing.T) {
	p := NewServerPolicy()
	p.BlacklistFor = 10 * tvatime.Second
	p.MarkMisbehaving(5, tvatime.FromSeconds(0))
	if _, _, ok := p.Authorize(5, tvatime.FromSeconds(5)); ok {
		t.Fatal("granted during blacklist period")
	}
	if _, _, ok := p.Authorize(5, tvatime.FromSeconds(11)); !ok {
		t.Fatal("not paroled after blacklist period")
	}
}

func TestClientPolicyMatchesOutbound(t *testing.T) {
	p := NewClientPolicy()
	now := tvatime.FromSeconds(100)
	if _, _, ok := p.Authorize(7, now); ok {
		t.Fatal("unsolicited request granted")
	}
	p.NoteOutboundRequest(7, now)
	if _, _, ok := p.Authorize(7, now.Add(tvatime.Second)); !ok {
		t.Fatal("matching response refused")
	}
	// Window expiry.
	if _, _, ok := p.Authorize(7, now.Add(31*tvatime.Second)); ok {
		t.Fatal("stale match granted")
	}
}

func TestGrantDefaults(t *testing.T) {
	p := NewServerPolicy()
	nkb, tsec, ok := p.Authorize(1, 0)
	if !ok || nkb != DefaultGrantKB || tsec != DefaultGrantTSec {
		t.Errorf("defaults: %d/%d/%v", nkb, tsec, ok)
	}
	aa := &AllowAllPolicy{}
	nkb, tsec, ok = aa.Authorize(1, 0)
	if !ok || nkb != packet.MaxNKB || tsec != packet.MaxTSeconds {
		t.Errorf("allow-all defaults: %d/%d/%v", nkb, tsec, ok)
	}
}

func TestShimCountsBytesConservatively(t *testing.T) {
	w := newWire(1)
	client := w.addHost(1, NewClientPolicy())
	server := NewServerPolicy()
	server.GrantKB = 2 // 2048 bytes
	w.addHost(2, server)

	client.Send(2, packet.ProtoRaw, nil, 100)
	// Exactly fill the authorization; the shim must flip to renewal or
	// request before the router would demote.
	for i := 0; i < 20; i++ {
		client.Send(2, packet.ProtoRaw, nil, 200)
	}
	if got := w.routers[0].Stats.Demoted; got != 0 {
		t.Errorf("shim overdrove its authorization: %d demotions", got)
	}
}

func TestControlCarrierDoesNotTriggerGrantLoop(t *testing.T) {
	w := newWire(1)
	a := w.addHost(1, NewServerPolicy())
	b := w.addHost(2, NewServerPolicy())
	a.Send(2, packet.ProtoRaw, nil, 100)
	// Bounded control chatter: a handful of carriers at most.
	if a.Stats.AutoReturns+b.Stats.AutoReturns > 4 {
		t.Errorf("carrier storm: a=%d b=%d", a.Stats.AutoReturns, b.Stats.AutoReturns)
	}
}
