// Package core implements the TVA protocol engine of paper §4: the
// router capability-processing path (Fig. 6) and the host shim that
// bootstraps, uses, renews and repairs capabilities. Both are
// transport-agnostic: the discrete-event simulator and the userspace
// UDP overlay drive the same code.
package core

import (
	"tva/internal/capability"
	"tva/internal/flowcache"
	"tva/internal/packet"
	"tva/internal/pathid"
	"tva/internal/tvatime"
)

// RouterConfig parameterizes a TVA capability router.
type RouterConfig struct {
	// Suite selects the hash construction (capability.Crypto or Fast).
	Suite capability.Suite
	// SecretPeriod is the router-secret rotation period (default 128s).
	SecretPeriod tvatime.Duration
	// CacheEntries bounds flow state (size with flowcache.Bound).
	CacheEntries int
	// TrustBoundary marks the router as a trust-boundary ingress that
	// stamps path identifiers on requests (§3.2).
	TrustBoundary bool
	// Tagger supplies per-interface path identifier tags; required
	// when TrustBoundary is set.
	Tagger *pathid.Tagger
	// MinNKB/MinTSec express the architectural minimum sending rate
	// (N/T)min used to reject authorizations too small to bound state
	// (§3.6). Zero values disable the check.
	MinNKB  uint16
	MinTSec uint8
}

// RouterStats counts router processing outcomes.
type RouterStats struct {
	Requests    uint64
	RegularHit  uint64 // regular packets matching a cache entry nonce
	RegularMiss uint64 // regular packets validated without an entry
	Renewals    uint64
	Replaced    uint64 // renewed capabilities installed over an entry
	Demoted     uint64
	Legacy      uint64
}

// Router is one TVA capability router's processing state. It is not
// safe for concurrent use; wrap calls in the owner's event loop.
type Router struct {
	cfg   RouterConfig
	auth  *capability.Authority
	cache *flowcache.Cache

	Stats RouterStats
}

// NewRouter builds a router from cfg.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Suite.NewKeyed == nil {
		cfg.Suite = capability.Crypto
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1 << 16
	}
	if cfg.TrustBoundary && cfg.Tagger == nil {
		cfg.Tagger = pathid.New()
	}
	return &Router{
		cfg:   cfg,
		auth:  capability.NewAuthority(cfg.Suite, cfg.SecretPeriod),
		cache: NewAuthorityCache(cfg.CacheEntries),
	}
}

// NewAuthorityCache builds the bounded flow cache (split out so tests
// can size it precisely).
func NewAuthorityCache(entries int) *flowcache.Cache { return flowcache.New(entries) }

// Authority exposes the router's capability authority (for tests and
// the overlay's diagnostics).
func (r *Router) Authority() *capability.Authority { return r.auth }

// Cache exposes the router's flow cache.
func (r *Router) Cache() *flowcache.Cache { return r.cache }

// Process runs Fig. 6 for one packet: it stamps pre-capabilities (and,
// at trust boundaries, path identifiers) on requests and valid
// renewals, validates and charges regular packets against the flow
// cache, demotes packets that fail, and assigns the forwarding class.
// inIface is the incoming interface index used for path identifier
// tags. The packet is mutated in place.
func (r *Router) Process(pkt *packet.Packet, inIface int, now tvatime.Time) packet.Class {
	h := pkt.Hdr
	if h == nil {
		r.Stats.Legacy++
		pkt.Class = packet.ClassLegacy
		return pkt.Class
	}
	if h.Demoted {
		// Once demoted, a packet stays legacy for the rest of the path
		// (§3.8); it is not re-validated downstream.
		r.Stats.Legacy++
		pkt.Class = packet.ClassLegacy
		return pkt.Class
	}
	// Header mutation (appended pre-capabilities and path identifiers)
	// grows the packet on the wire; keep Size consistent.
	before := h.WireSize()
	switch h.Kind {
	case packet.KindRequest:
		r.stampRequest(pkt, h, inIface, now)
		pkt.Class = packet.ClassRequest
	default:
		if r.processRegular(pkt, h, inIface, now) {
			pkt.Class = packet.ClassRegular
		} else {
			h.Demoted = true
			r.Stats.Demoted++
			pkt.Class = packet.ClassLegacy
		}
	}
	pkt.Size += h.WireSize() - before
	return pkt.Class
}

// stampRequest adds this router's pre-capability (and path identifier
// at trust boundaries) to a request.
func (r *Router) stampRequest(pkt *packet.Packet, h *packet.CapHdr, inIface int, now tvatime.Time) {
	r.Stats.Requests++
	if len(h.Request.PreCaps) < packet.MaxCaps {
		h.Request.PreCaps = append(h.Request.PreCaps, r.auth.PreCap(pkt.Src, pkt.Dst, now))
	}
	if r.cfg.TrustBoundary && len(h.Request.PathIDs) < 255 {
		pathid.Stamp(h, r.cfg.Tagger.ForInterface(inIface))
	}
}

// processRegular implements the regular/renewal arm of Fig. 6 and
// reports whether the packet is authorized.
func (r *Router) processRegular(pkt *packet.Packet, h *packet.CapHdr, inIface int, now tvatime.Time) bool {
	// This router's capability, if the packet carries a list: the
	// capability pointer names this router's slot and is advanced
	// unconditionally so downstream routers index their own slot even
	// when this router satisfies the packet from cache (Fig. 5).
	var myCap uint64
	hasCap := false
	if h.Kind == packet.KindRegular || h.Kind == packet.KindRenewal {
		if int(h.Ptr) >= len(h.Caps) {
			return false // malformed or more routers than slots
		}
		myCap = h.Caps[h.Ptr]
		h.Ptr++
		hasCap = true
	}

	if r.cfg.MinTSec > 0 && hasCap {
		// Enforce the architectural (N/T)min so attackers cannot force
		// per-flow state at an arbitrarily low rate (§3.6).
		minRate := int64(r.cfg.MinNKB) * 1024 / int64(r.cfg.MinTSec)
		if h.TSec == 0 || int64(h.NKB)*1024/int64(h.TSec) < minRate {
			return false
		}
	}

	key := flowcache.Key{Src: pkt.Src, Dst: pkt.Dst}
	entry := r.cache.Lookup(pkt.Src, pkt.Dst)
	valid := false
	switch {
	case entry != nil && h.Nonce == entry.Nonce:
		// Common case: flow nonce matches the cached validation.
		valid = r.cache.Charge(entry, pkt.Size, now)
		r.Stats.RegularHit++
	case entry != nil && hasCap:
		// Possibly the first packet carrying a renewed capability:
		// validate and, if good, replace the entry (§4.3).
		if r.auth.ValidateCap(pkt.Src, pkt.Dst, myCap, h.NKB, h.TSec, now) {
			expiry := capability.Expiry(myCap, h.TSec, now)
			valid = r.cache.Replace(entry, h.Nonce, myCap, int64(h.NKB)*1024, h.TSec, expiry, pkt.Size, now)
			if valid {
				r.Stats.Replaced++
			}
		}
	case entry == nil && hasCap:
		if r.auth.ValidateCap(pkt.Src, pkt.Dst, myCap, h.NKB, h.TSec, now) {
			expiry := capability.Expiry(myCap, h.TSec, now)
			valid = r.cache.Create(key, h.Nonce, myCap, int64(h.NKB)*1024, h.TSec, expiry, pkt.Size, now) != nil
			r.Stats.RegularMiss++
		}
	}

	if valid && h.Kind == packet.KindRenewal {
		// Mint a fresh pre-capability into the renewal (§4.3).
		r.Stats.Renewals++
		if len(h.Request.PreCaps) < packet.MaxCaps {
			h.Request.PreCaps = append(h.Request.PreCaps, r.auth.PreCap(pkt.Src, pkt.Dst, now))
		}
		if r.cfg.TrustBoundary && len(h.Request.PathIDs) < 255 {
			pathid.Stamp(h, r.cfg.Tagger.ForInterface(inIface))
		}
	}
	return valid
}
