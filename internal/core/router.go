// Package core implements the TVA protocol engine of paper §4: the
// router capability-processing path (Fig. 6) and the host shim that
// bootstraps, uses, renews and repairs capabilities. Both are
// transport-agnostic: the discrete-event simulator and the userspace
// UDP overlay drive the same code.
package core

import (
	"tva/internal/capability"
	"tva/internal/flowcache"
	"tva/internal/flowstats"
	"tva/internal/packet"
	"tva/internal/pathid"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// RouterConfig parameterizes a TVA capability router.
type RouterConfig struct {
	// Suite selects the hash construction (capability.Crypto or Fast).
	Suite capability.Suite
	// ID identifies the router in demotion notices and trace events
	// (stamped into CapHdr.DemoteRouter, which is one byte).
	ID uint8
	// SecretPeriod is the router-secret rotation period (default 128s).
	SecretPeriod tvatime.Duration
	// CacheEntries bounds flow state (size with flowcache.Bound).
	CacheEntries int
	// TrustBoundary marks the router as a trust-boundary ingress that
	// stamps path identifiers on requests (§3.2).
	TrustBoundary bool
	// Tagger supplies per-interface path identifier tags; required
	// when TrustBoundary is set.
	Tagger *pathid.Tagger
	// MinNKB/MinTSec express the architectural minimum sending rate
	// (N/T)min used to reject authorizations too small to bound state
	// (§3.6). Zero values disable the check.
	MinNKB  uint16
	MinTSec uint8
	// Authority, when non-nil, is used instead of minting fresh
	// secrets. Shard replicas of one logical router must share the
	// capability authority (it is internally locked) and the Tagger so
	// every shard mints and validates identical capabilities and path
	// tags; each replica still owns a private flow cache, keyed by a
	// flow hash that also picks the shard, so no flow's state is split.
	Authority *capability.Authority
}

// RouterStats counts router processing outcomes.
type RouterStats struct {
	Requests    uint64
	RegularHit  uint64 // regular packets matching a cache entry nonce
	RegularMiss uint64 // regular packets validated without an entry
	Renewals    uint64
	Replaced    uint64 // renewed capabilities installed over an entry
	Demoted     uint64
	Legacy      uint64
}

// Router is one TVA capability router's processing state. It is not
// safe for concurrent use; wrap calls in the owner's event loop.
type Router struct {
	cfg      RouterConfig
	auth     *capability.Authority
	cache    *flowcache.Cache
	restarts uint64

	Stats RouterStats
	// Demotions attributes every demotion (the capability router's
	// "drop": the packet loses regular service and takes its chances
	// in the legacy class, §3.8) to the check that failed. The actual
	// discard, if any, happens later at a queue and is counted there.
	Demotions telemetry.DropCounters
	// Tracer, when non-nil, receives one classify event per processed
	// packet. Checked with a single branch so the nil (disabled) case
	// costs nothing on the hot path.
	Tracer telemetry.Tracer
	// Spans, when non-nil, is the flight recorder the router reports
	// capability verdicts and demotions to (one span per processed
	// traced packet, plus one per demotion). Same nil-disabled pattern
	// as Tracer; Record itself is allocation-free.
	Spans *trace.Recorder
	// HopWait, when non-nil, supplies the router's current output-queue
	// wait estimate in microseconds for hop stamps on WantHops requests
	// (the overlay wires its per-port EWMA here). Nil stamps 0.
	HopWait func() uint32
	// Flows, when non-nil, is the bounded-memory per-sender accounting
	// unit this engine feeds: every processed packet is observed (after
	// request stamping, so requests carry the path-id they are keyed
	// by) and every demotion attributed. Same nil-disabled single
	// branch as Tracer; the record path is allocation-free.
	Flows *flowstats.Collector
}

// NewRouter builds a router from cfg.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Suite.NewKeyed == nil {
		cfg.Suite = capability.Crypto
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1 << 16
	}
	if cfg.TrustBoundary && cfg.Tagger == nil {
		cfg.Tagger = pathid.New()
	}
	auth := cfg.Authority
	if auth == nil {
		auth = capability.NewAuthority(cfg.Suite, cfg.SecretPeriod)
	}
	return &Router{
		cfg:   cfg,
		auth:  auth,
		cache: NewAuthorityCache(cfg.CacheEntries),
	}
}

// NewAuthorityCache builds the bounded flow cache (split out so tests
// can size it precisely).
func NewAuthorityCache(entries int) *flowcache.Cache { return flowcache.New(entries) }

// Authority exposes the router's capability authority (for tests and
// the overlay's diagnostics).
func (r *Router) Authority() *capability.Authority { return r.auth }

// Restarts counts Restart calls (crash/reboot cycles).
func (r *Router) Restarts() uint64 { return r.restarts }

// Restart models a router crash and reboot: all soft state — the flow
// cache and, at trust boundaries, the path-identifier tag history — is
// lost, while the capability secrets survive (§3.8 rotates them on a
// slow schedule precisely so that a reboot within a rotation period
// does not invalidate outstanding capabilities; a router that lost its
// secrets would demote every regular packet until T expired). Queue
// state lives with the owning link, so the caller flushes its
// interfaces separately (netsim.Iface.Flush). Flows whose cache
// entries vanished revalidate from the capability lists hosts
// re-attach, or re-request — the recovery path §3.7's host-side cache
// model exists for.
func (r *Router) Restart() {
	r.restarts++
	r.cache.Flush()
	if r.cfg.Tagger != nil {
		r.cfg.Tagger.Rekey(r.restarts)
	}
}

// Cache exposes the router's flow cache.
func (r *Router) Cache() *flowcache.Cache { return r.cache }

// batchCtx carries the per-burst amortization state threaded through
// the shared packet engine: the capability-minter snapshot (one
// secret-rotation check and timestamp derivation per burst) and the
// last flow-cache resolution (map probes collapse across a train of
// packets on one flow). A zero batchCtx is a burst of one — Process
// runs the same engine with a fresh context, so the single-packet and
// batched paths cannot drift apart.
type batchCtx struct {
	minter     capability.Minter
	haveMinter bool

	memoKey   flowcache.Key
	memoEntry *flowcache.Entry
	haveMemo  bool
}

// burstMinter returns the burst's capability minter, snapshotting it
// from the authority on first use. Valid because a burst is processed
// at a single instant (now does not advance mid-burst).
//
//tva:hotpath
func (r *Router) burstMinter(bc *batchCtx, now tvatime.Time) capability.Minter {
	if !bc.haveMinter {
		bc.minter = r.auth.MinterAt(now)
		bc.haveMinter = true
	}
	return bc.minter
}

// lookup resolves the flow-cache entry for (src, dst), serving a
// repeat of the burst's previous flow from the memo. The memo is
// invalidated on Create (entries recycle through the cache's free
// list, so a held pointer is only trustworthy between mutations);
// Charge and Replace mutate the entry in place and keep it valid.
//
//tva:hotpath
func (r *Router) lookup(bc *batchCtx, src, dst packet.Addr) *flowcache.Entry {
	key := flowcache.Key{Src: src, Dst: dst}
	if bc.haveMemo && bc.memoKey == key {
		r.cache.Revisit(bc.memoEntry != nil)
		return bc.memoEntry
	}
	e := r.cache.Lookup(src, dst)
	bc.memoKey, bc.memoEntry, bc.haveMemo = key, e, true
	return e
}

// Process runs Fig. 6 for one packet: it stamps pre-capabilities (and,
// at trust boundaries, path identifiers) on requests and valid
// renewals, validates and charges regular packets against the flow
// cache, demotes packets that fail, and assigns the forwarding class.
// inIface is the incoming interface index used for path identifier
// tags. The packet is mutated in place. Process is the burst-of-one
// form of ProcessBatch: both run the same engine.
//
//tva:hotpath
func (r *Router) Process(pkt *packet.Packet, inIface int, now tvatime.Time) packet.Class {
	var bc batchCtx
	return r.process1(pkt, inIface, now, &bc)
}

// ProcessBatch runs Fig. 6 over every occupied slot of b in order,
// recording each packet's forwarding class in the batch's class slots
// (nil slots from Take are skipped). Semantics are packet-for-packet
// identical to calling Process in a loop — same classes, stats,
// demotion counters, trace events, and spans, in the same order — but
// the fixed per-packet costs amortize across the burst: the secret
// snapshot behind pre-capability minting is taken once, and flow-cache
// map probes collapse for trains of packets on one flow. inIface
// applies to the whole burst (a batch is filled from one ingress).
//
//tva:hotpath
func (r *Router) ProcessBatch(b *packet.Batch, inIface int, now tvatime.Time) {
	var bc batchCtx
	for i, pkt := range b.Pkts() {
		if pkt == nil {
			continue
		}
		b.SetClass(i, r.process1(pkt, inIface, now, &bc))
	}
}

// process1 is the shared single-packet engine behind Process and
// ProcessBatch.
//
//tva:hotpath
func (r *Router) process1(pkt *packet.Packet, inIface int, now tvatime.Time, bc *batchCtx) packet.Class {
	h := pkt.Hdr
	if h == nil {
		r.Stats.Legacy++
		pkt.Class = packet.ClassLegacy
		r.Flows.Observe(pkt)
		r.trace(pkt, now)
		r.verdict(pkt, now)
		return pkt.Class
	}
	if h.Demoted {
		// Once demoted, a packet stays legacy for the rest of the path
		// (§3.8); it is not re-validated downstream.
		r.Stats.Legacy++
		pkt.Class = packet.ClassLegacy
		r.Flows.Observe(pkt)
		r.trace(pkt, now)
		r.verdict(pkt, now)
		return pkt.Class
	}
	// Header mutation (appended pre-capabilities and path identifiers)
	// grows the packet on the wire; keep Size consistent.
	before := h.WireSize()
	switch h.Kind {
	case packet.KindRequest:
		r.stampRequest(pkt, h, inIface, now, bc)
		pkt.Class = packet.ClassRequest
	default:
		if ok, reason := r.processRegular(pkt, h, inIface, now, bc); ok {
			pkt.Class = packet.ClassRegular
		} else {
			h.Demoted = true
			// Carry the failed check and the demoting router back to
			// the sender (via return info at the destination) so tools
			// like tvaping can name the hop and reason.
			h.DemoteReason = uint8(reason)
			h.DemoteRouter = r.cfg.ID
			r.Stats.Demoted++
			r.Demotions.Inc(reason)
			r.Flows.Demote(pkt)
			pkt.Class = packet.ClassLegacy
			if r.Spans != nil && pkt.TraceID != 0 {
				sp := r.span(pkt, now, trace.EdgeDemote)
				sp.Reason = reason
				r.Spans.Record(sp)
			}
		}
	}
	pkt.Size += h.WireSize() - before
	r.Flows.Observe(pkt)
	r.trace(pkt, now)
	r.verdict(pkt, now)
	return pkt.Class
}

// span builds the router-local flight-recorder span for pkt.
func (r *Router) span(pkt *packet.Packet, now tvatime.Time, edge trace.Edge) trace.Span {
	sp := trace.Span{
		ID:     pkt.TraceID,
		Time:   now,
		Src:    uint32(pkt.Src),
		Dst:    uint32(pkt.Dst),
		Size:   uint32(pkt.Size),
		Hop:    trace.NoHop,
		Edge:   edge,
		Class:  uint8(pkt.Class),
		Router: r.cfg.ID,
	}
	if pkt.Hdr != nil {
		sp.Kind = uint8(pkt.Hdr.Kind) + 1
	}
	return sp
}

// verdict emits the capability-check verdict span (the class the
// packet leaves this router with).
func (r *Router) verdict(pkt *packet.Packet, now tvatime.Time) {
	if r.Spans == nil || pkt.TraceID == 0 {
		return
	}
	r.Spans.Record(r.span(pkt, now, trace.EdgeVerdict))
}

// trace emits a classify event when a tracer is attached.
func (r *Router) trace(pkt *packet.Packet, now tvatime.Time) {
	if r.Tracer == nil {
		return
	}
	ev := telemetry.Event{
		Time:   now,
		Kind:   telemetry.EventClassify,
		Router: int(r.cfg.ID),
		Src:    uint32(pkt.Src),
		Dst:    uint32(pkt.Dst),
		Class:  uint8(pkt.Class),
		Size:   pkt.Size,
	}
	if pkt.Hdr != nil && pkt.Hdr.Demoted {
		ev.Reason = telemetry.DropReason(pkt.Hdr.DemoteReason)
	}
	r.Tracer.Record(ev)
}

// stampRequest adds this router's pre-capability (and path identifier
// at trust boundaries) to a request.
//
//tva:hotpath
func (r *Router) stampRequest(pkt *packet.Packet, h *packet.CapHdr, inIface int, now tvatime.Time, bc *batchCtx) {
	r.Stats.Requests++
	if len(h.Request.PreCaps) < packet.MaxCaps {
		h.Request.PreCaps = append(h.Request.PreCaps, r.burstMinter(bc, now).PreCap(pkt.Src, pkt.Dst))
	}
	if r.cfg.TrustBoundary && len(h.Request.PathIDs) < 255 {
		pathid.Stamp(h, r.cfg.Tagger.ForInterface(inIface))
	}
	r.stampHop(h)
}

// stampHop appends this router's queue-wait report to a request that
// opted into hop stamps (RequestHdr.WantHops). The destination echoes
// the list in return info; tvaping prints the breakdown.
func (r *Router) stampHop(h *packet.CapHdr) {
	if !h.Request.WantHops || len(h.Request.HopWaits) >= 255 {
		return
	}
	var wait uint32
	if r.HopWait != nil {
		wait = r.HopWait()
	}
	h.Request.HopWaits = append(h.Request.HopWaits, packet.HopStamp{Router: r.cfg.ID, WaitUs: wait})
}

// processRegular implements the regular/renewal arm of Fig. 6 and
// reports whether the packet is authorized; when it is not, the
// DropReason names the check that failed:
//
//   - cap-invalid: malformed capability pointer, a failed MAC/secret
//     validation, or an authorization below the architectural (N/T)min;
//   - cap-expired: the authorization is used up — expiry passed or the
//     N-byte budget exhausted (both of §3.5's router checks);
//   - flowcache-pressure: the packet was cryptographically valid but
//     the bounded flow cache could not admit it, or its cache entry is
//     gone (evicted/expired) and it carries only a nonce to revalidate
//     with.
func (r *Router) processRegular(pkt *packet.Packet, h *packet.CapHdr, inIface int, now tvatime.Time, bc *batchCtx) (bool, telemetry.DropReason) {
	// This router's capability, if the packet carries a list: the
	// capability pointer names this router's slot and is advanced
	// unconditionally so downstream routers index their own slot even
	// when this router satisfies the packet from cache (Fig. 5).
	var myCap uint64
	hasCap := false
	if h.Kind == packet.KindRegular || h.Kind == packet.KindRenewal {
		if int(h.Ptr) >= len(h.Caps) {
			return false, telemetry.DropCapInvalid // malformed or more routers than slots
		}
		myCap = h.Caps[h.Ptr]
		h.Ptr++
		hasCap = true
	}

	if r.cfg.MinTSec > 0 && hasCap {
		// Enforce the architectural (N/T)min so attackers cannot force
		// per-flow state at an arbitrarily low rate (§3.6).
		minRate := int64(r.cfg.MinNKB) * 1024 / int64(r.cfg.MinTSec)
		if h.TSec == 0 || int64(h.NKB)*1024/int64(h.TSec) < minRate {
			return false, telemetry.DropCapInvalid
		}
	}

	key := flowcache.Key{Src: pkt.Src, Dst: pkt.Dst}
	entry := r.lookup(bc, pkt.Src, pkt.Dst)
	reason := telemetry.DropFlowCachePressure
	valid := false
	switch {
	case entry != nil && h.Nonce == entry.Nonce:
		// Common case: flow nonce matches the cached validation.
		valid = r.cache.Charge(entry, pkt.Size, now)
		if !valid {
			// Both Charge checks — expiry and the N-byte budget — mean
			// the authorization is used up.
			reason = telemetry.DropCapExpired
		}
		r.Stats.RegularHit++
	case entry != nil && hasCap:
		// Possibly the first packet carrying a renewed capability:
		// validate and, if good, replace the entry (§4.3).
		if r.auth.ValidateCap(pkt.Src, pkt.Dst, myCap, h.NKB, h.TSec, now) {
			expiry := capability.Expiry(myCap, h.TSec, now)
			valid = r.cache.Replace(entry, h.Nonce, myCap, int64(h.NKB)*1024, h.TSec, expiry, pkt.Size, now)
			if valid {
				r.Stats.Replaced++
			} else {
				reason = telemetry.DropCapExpired
			}
		} else {
			reason = telemetry.DropCapInvalid
		}
	case entry == nil && hasCap:
		if r.auth.ValidateCap(pkt.Src, pkt.Dst, myCap, h.NKB, h.TSec, now) {
			expiry := capability.Expiry(myCap, h.TSec, now)
			if !now.Before(expiry) || int64(pkt.Size) > int64(h.NKB)*1024 {
				reason = telemetry.DropCapExpired
			} else {
				created := r.cache.Create(key, h.Nonce, myCap, int64(h.NKB)*1024, h.TSec, expiry, pkt.Size, now)
				// Create may have recycled any expired entry, so the
				// burst memo pointer is no longer trustworthy; the new
				// entry (when admitted) is the flow's fresh resolution.
				bc.haveMemo = false
				if created != nil {
					bc.memoKey, bc.memoEntry, bc.haveMemo = key, created, true
					valid = true
				}
			}
			r.Stats.RegularMiss++
		} else {
			reason = telemetry.DropCapInvalid
		}
	}

	if valid && h.Kind == packet.KindRenewal {
		// Mint a fresh pre-capability into the renewal (§4.3).
		r.Stats.Renewals++
		if len(h.Request.PreCaps) < packet.MaxCaps {
			h.Request.PreCaps = append(h.Request.PreCaps, r.burstMinter(bc, now).PreCap(pkt.Src, pkt.Dst))
		}
		if r.cfg.TrustBoundary && len(h.Request.PathIDs) < 255 {
			pathid.Stamp(h, r.cfg.Tagger.ForInterface(inIface))
		}
		r.stampHop(h)
	}
	if valid {
		return true, telemetry.DropNone
	}
	return false, reason
}
