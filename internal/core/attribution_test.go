package core

import (
	"testing"

	"tva/internal/capability"
	"tva/internal/packet"
	"tva/internal/telemetry"
)

// TestDemotionAttribution drives every demotion site in Fig. 6's
// regular-packet arm and checks the failed check is named in the
// Demotions counters and stamped into the header (DemoteReason,
// DemoteRouter) so the reverse channel can carry it back.
func TestDemotionAttribution(t *testing.T) {
	const routerID = 7
	cases := []struct {
		name   string
		router func() *Router
		// drive returns the packet expected to be demoted.
		drive  func(t *testing.T, r *Router) *packet.Packet
		reason telemetry.DropReason
	}{
		{
			name:   "forged capability",
			router: func() *Router { return attrRouter(routerID, 64, 0, 0) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				cap := grantFor(t, r, 1, 2, 32, 10, at(1))
				pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap ^ 4}, 32, 10, 100)
				r.Process(pkt, 0, at(1))
				return pkt
			},
			reason: telemetry.DropCapInvalid,
		},
		{
			name:   "malformed capability pointer",
			router: func() *Router { return attrRouter(routerID, 64, 0, 0) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				// Regular packet with an empty capability list: the
				// pointer names a slot that does not exist.
				pkt := regPacket(1, 2, packet.KindRegular, 5, nil, 32, 10, 100)
				r.Process(pkt, 0, at(1))
				return pkt
			},
			reason: telemetry.DropCapInvalid,
		},
		{
			name:   "authorization below (N/T)min",
			router: func() *Router { return attrRouter(routerID, 64, 4, 10) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				cap := grantFor(t, r, 1, 2, 1, 60, at(1)) // ~17 B/s < 0.4 KB/s
				pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 1, 60, 50)
				r.Process(pkt, 0, at(1))
				return pkt
			},
			reason: telemetry.DropCapInvalid,
		},
		{
			name:   "byte budget exhausted",
			router: func() *Router { return attrRouter(routerID, 64, 0, 0) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				cap := grantFor(t, r, 1, 2, 1, 10, at(1)) // N = 1 KB
				first := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 1, 10, 500)
				if r.Process(first, 0, at(1)) != packet.ClassRegular {
					t.Fatal("setup packet rejected")
				}
				over := regPacket(1, 2, packet.KindNonceOnly, 5, nil, 0, 0, 600)
				r.Process(over, 0, at(1))
				return over
			},
			reason: telemetry.DropCapExpired,
		},
		{
			name:   "authorization expired",
			router: func() *Router { return attrRouter(routerID, 64, 0, 0) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				cap := grantFor(t, r, 1, 2, 32, 2, at(1)) // T = 2s
				first := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 32, 2, 100)
				if r.Process(first, 0, at(1)) != packet.ClassRegular {
					t.Fatal("setup packet rejected")
				}
				late := regPacket(1, 2, packet.KindNonceOnly, 5, nil, 0, 0, 100)
				r.Process(late, 0, at(4))
				return late
			},
			reason: telemetry.DropCapExpired,
		},
		{
			name:   "flow cache cannot admit",
			router: func() *Router { return attrRouter(routerID, 1, 0, 0) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				capA := grantFor(t, r, 1, 2, 32, 10, at(1))
				a := regPacket(1, 2, packet.KindRegular, 5, []uint64{capA}, 32, 10, 100)
				if r.Process(a, 0, at(1)) != packet.ClassRegular {
					t.Fatal("first flow rejected")
				}
				capB := grantFor(t, r, 3, 2, 32, 10, at(1))
				b := regPacket(3, 2, packet.KindRegular, 6, []uint64{capB}, 32, 10, 100)
				r.Process(b, 0, at(1))
				return b
			},
			reason: telemetry.DropFlowCachePressure,
		},
		{
			name:   "nonce-only with no cache entry",
			router: func() *Router { return attrRouter(routerID, 64, 0, 0) },
			drive: func(t *testing.T, r *Router) *packet.Packet {
				pkt := regPacket(1, 2, packet.KindNonceOnly, 5, nil, 0, 0, 100)
				r.Process(pkt, 0, at(1))
				return pkt
			},
			reason: telemetry.DropFlowCachePressure,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.router()
			pkt := tc.drive(t, r)
			if pkt.Class != packet.ClassLegacy || !pkt.Hdr.Demoted {
				t.Fatalf("packet not demoted: class=%v demoted=%v", pkt.Class, pkt.Hdr.Demoted)
			}
			if got := telemetry.DropReason(pkt.Hdr.DemoteReason); got != tc.reason {
				t.Errorf("DemoteReason = %v, want %v", got, tc.reason)
			}
			if pkt.Hdr.DemoteRouter != routerID {
				t.Errorf("DemoteRouter = %d, want %d", pkt.Hdr.DemoteRouter, routerID)
			}
			if got := r.Demotions.Get(tc.reason); got != 1 {
				t.Errorf("Demotions.Get(%v) = %d, want 1", tc.reason, got)
			}
			if r.Demotions.Total() != uint64(r.Stats.Demoted) {
				t.Errorf("Demotions.Total() = %d, Stats.Demoted = %d; must agree",
					r.Demotions.Total(), r.Stats.Demoted)
			}
		})
	}
}

func attrRouter(id uint8, cacheEntries int, minNKB uint16, minTSec uint8) *Router {
	return NewRouter(RouterConfig{
		Suite:        capability.Fast,
		ID:           id,
		CacheEntries: cacheEntries,
		MinNKB:       minNKB,
		MinTSec:      minTSec,
	})
}
