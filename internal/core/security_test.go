// Security analysis tests: the threat catalogue of paper §7, each
// attack expressed against the real protocol machinery.
package core

import (
	"math/rand"
	"testing"

	"tva/internal/capability"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// §7: "An attacker might try to obtain capabilities by breaking the
// hashing scheme" — random guessing must fail (the 56-bit space is
// covered by the crypto tests; here: no structural shortcut).
func TestSecGuessedCapabilityRejected(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		guess := rng.Uint64()
		pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{guess}, 32, 10, 100)
		if r.Process(pkt, 0, now) == packet.ClassRegular {
			t.Fatal("guessed capability accepted")
		}
	}
}

// §7: "A different attack is to steal and use capabilities belonging
// to a sender... the attacker will not generally be able to send
// packets along the same path" — a capability is bound to (src, dst),
// so using it from any other source or toward any other destination
// fails, as does presenting it to a different router.
func TestSecStolenCapabilityUnusable(t *testing.T) {
	victim := newTestRouter(false)
	other := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, victim, 1, 2, 32, 10, now)

	cases := []struct {
		name     string
		router   *Router
		src, dst packet.Addr
	}{
		{"other source", victim, 9, 2},
		{"other destination", victim, 1, 9},
		{"other router", other, 1, 2},
	}
	for _, c := range cases {
		pkt := regPacket(c.src, c.dst, packet.KindRegular, 5, []uint64{cap}, 32, 10, 100)
		if c.router.Process(pkt, 0, now) == packet.ClassRegular {
			t.Errorf("%s: stolen capability accepted", c.name)
		}
	}
}

// §7: replay of very old capabilities "for which the local router
// clock has wrapped are handled... by periodically changing the router
// secret". A capability recorded by an eavesdropper and replayed two
// secret periods later must fail even if its (mod 256) timestamp looks
// fresh again.
func TestSecOldCapabilityReplayFails(t *testing.T) {
	r := NewRouter(RouterConfig{Suite: capability.Fast, SecretPeriod: 8 * tvatime.Second, CacheEntries: 16})
	now := at(1)
	cap := grantFor(t, r, 1, 2, 32, 63, now)

	fresh := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 32, 63, 100)
	if r.Process(fresh, 0, now) != packet.ClassRegular {
		t.Fatal("setup: fresh capability rejected")
	}
	// Two secret rotations later (but well inside T=63s): the secret
	// that minted it is retired.
	replay := regPacket(1, 2, packet.KindRegular, 6, []uint64{cap}, 32, 63, 100)
	if r.Process(replay, 0, at(20)) == packet.ClassRegular {
		t.Error("capability replayed across two secret rotations accepted")
	}
}

// §7 / §3.5: the nonce fast path must not outlive its capability — an
// attacker replaying a sniffed nonce after the authorization expires
// gets demoted.
func TestSecNonceReplayAfterExpiry(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 32, 2, now)
	first := regPacket(1, 2, packet.KindRegular, 42, []uint64{cap}, 32, 2, 100)
	if r.Process(first, 0, now) != packet.ClassRegular {
		t.Fatal("setup failed")
	}
	replay := regPacket(1, 2, packet.KindNonceOnly, 42, nil, 0, 0, 100)
	if r.Process(replay, 0, at(10)) == packet.ClassRegular {
		t.Error("nonce accepted after the capability expired")
	}
}

// §7: a nonce guessed by an off-path attacker (who cannot see the
// flow's traffic) succeeds with probability 2^-48 per try; any wrong
// guess is demoted.
func TestSecNonceGuessing(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	cap := grantFor(t, r, 1, 2, 32, 10, now)
	first := regPacket(1, 2, packet.KindRegular, 777, []uint64{cap}, 32, 10, 100)
	r.Process(first, 0, now)

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		guess := rng.Uint64() & packet.NonceMask
		if guess == 777 {
			continue
		}
		pkt := regPacket(1, 2, packet.KindNonceOnly, guess, nil, 0, 0, 100)
		if r.Process(pkt, 0, now) == packet.ClassRegular {
			t.Fatal("guessed flow nonce accepted")
		}
	}
}

// §7: "an attacker and a colluder can spoof authorized traffic as if
// it were sent by a different sender S" — the colluder authorizes
// src=S, and the attacker floods with S's address. The flood is
// *valid* (this is the paper's point), but with TVA's default
// per-destination queuing it shares the colluder's queue and cannot
// touch S's traffic to other destinations. Here we verify the
// mechanics: the spoofed flow's capability only works for (S,
// colluder), so the attacker gains nothing against S's own peers.
func TestSecSpoofedAuthorizationScopedToColluder(t *testing.T) {
	r := newTestRouter(false)
	now := at(1)
	const s, colluder, victim = 11, 22, 33
	capToColluder := grantFor(t, r, s, colluder, 32, 10, now)

	// The spoofed flood toward the colluder validates...
	flood := regPacket(s, colluder, packet.KindRegular, 5, []uint64{capToColluder}, 32, 10, 1000)
	if r.Process(flood, 0, now) != packet.ClassRegular {
		t.Fatal("colluder-authorized spoofed traffic should validate")
	}
	// ...but is useless against any destination S actually talks to.
	cross := regPacket(s, victim, packet.KindRegular, 6, []uint64{capToColluder}, 32, 10, 1000)
	if r.Process(cross, 0, now) == packet.ClassRegular {
		t.Error("colluder-issued capability crossed to another destination")
	}
}

// §3.4: "each pre-capability is valid for about the same time period
// regardless of when it is issued" — a capability issued just before
// a secret change is still honoured (previous secret) rather than
// dying instantly.
func TestSecCapabilitySurvivesOneRotation(t *testing.T) {
	r := NewRouter(RouterConfig{Suite: capability.Fast, SecretPeriod: 8 * tvatime.Second, CacheEntries: 16})
	mint := at(7.5) // half a second before rotation at t=8
	cap := grantFor(t, r, 1, 2, 32, 10, mint)
	pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{cap}, 32, 10, 100)
	if r.Process(pkt, 0, at(9)) != packet.ClassRegular {
		t.Error("capability died at the secret rotation despite being within T")
	}
}

// §3.6's attack: "colluding attackers may create many authorized
// connections across a target link" to exhaust router memory. The
// cache admits at most its bound and legitimate established flows
// (fast senders with live ttl) are never evicted for the attackers.
func TestSecStateExhaustionBounded(t *testing.T) {
	r := NewRouter(RouterConfig{Suite: capability.Fast, CacheEntries: 32})
	now := at(1)

	// A legitimate fast flow (keeps its ttl alive). Granted the
	// maximum N so the byte budget outlasts the test's keep-alives.
	legit := grantFor(t, r, 1, 2, packet.MaxNKB, 10, now)
	first := regPacket(1, 2, packet.KindRegular, 7, []uint64{legit}, packet.MaxNKB, 10, 1000)
	if r.Process(first, 0, now) != packet.ClassRegular {
		t.Fatal("setup failed")
	}

	// 1000 attacker flows try to claim state.
	for i := 0; i < 1000; i++ {
		src := packet.Addr(100 + i)
		cap := grantFor(t, r, src, 2, 32, 10, now)
		pkt := regPacket(src, 2, packet.KindRegular, uint64(i), []uint64{cap}, 32, 10, 1000)
		r.Process(pkt, 0, now)
		// The legitimate flow keeps sending fast, keeping its ttl hot.
		keep := regPacket(1, 2, packet.KindNonceOnly, 7, nil, 0, 0, 1000)
		if r.Process(keep, 0, now) != packet.ClassRegular {
			t.Fatalf("legitimate flow evicted by state-exhaustion attack at %d", i)
		}
	}
	if got := r.Cache().Len(); got > 32 {
		t.Errorf("router state exceeded its bound: %d", got)
	}
}

// §7: source-routed / misdelivered packets are treated as legacy —
// here the invariant that a packet demoted anywhere never re-enters
// the authorized class, even if later routers would validate it.
func TestSecDemotionIsSticky(t *testing.T) {
	r1 := newTestRouter(false)
	r2 := newTestRouter(false)
	now := at(1)
	// Valid only at r2 (e.g. delivered around r1 via source routing).
	req := reqPacket(1, 2, 0)
	r2.Process(req, 0, now)
	cap2 := capability.Fast.MakeCap(req.Hdr.Request.PreCaps[0], 32, 10)
	pkt := regPacket(1, 2, packet.KindRegular, 5, []uint64{0xBAD, cap2}, 32, 10, 100)
	if r1.Process(pkt, 0, now) != packet.ClassLegacy {
		t.Fatal("r1 accepted a bogus capability")
	}
	if r2.Process(pkt, 0, now) != packet.ClassLegacy {
		t.Error("demoted packet re-promoted by a downstream router")
	}
}
