package xcheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{Name: "d"}.withDefaults()
	if s.Users != 10 || s.MsgBytes != 512 || s.MsgIntervalMS != 50 {
		t.Errorf("stream defaults: %+v", s)
	}
	if s.LinkBps != 10_000_000 || s.DurationMS != 3000 || s.DrainMS != 500 {
		t.Errorf("link/schedule defaults: %+v", s)
	}
	if s.WaitFloorBucket != 18 || s.WaitShiftBuckets != 1 {
		t.Errorf("wait comparison defaults: floor %d shift %d", s.WaitFloorBucket, s.WaitShiftBuckets)
	}
	if s.GrantKB != 64 || s.GrantTSec != 10 {
		t.Errorf("grant defaults: %+v", s)
	}

	// -1 requests exact alignment (shift allowance 0).
	s = Scenario{Name: "d", WaitShiftBuckets: -1}.withDefaults()
	if s.WaitShiftBuckets != 0 {
		t.Errorf("WaitShiftBuckets -1 should clamp to 0, got %d", s.WaitShiftBuckets)
	}
}

func TestToleranceResolution(t *testing.T) {
	s := Scenario{Name: "t"}.withDefaults()
	if tol, ok := s.tolerance("drop_rate"); !ok || tol != DefaultTolerances["drop_rate"] {
		t.Errorf("default drop_rate: %v %v", tol, ok)
	}
	if _, ok := s.tolerance("metric:tva_flowcache_entries"); ok {
		t.Error("undeclared metric tolerance should be informational")
	}
	s.Tolerances = map[string]float64{"drop_rate": 0.5, "metric:tva_flowcache_entries": 0.1}
	if tol, _ := s.tolerance("drop_rate"); tol != 0.5 {
		t.Errorf("override drop_rate: %v", tol)
	}
	if tol, ok := s.tolerance("metric:tva_flowcache_entries"); !ok || tol != 0.1 {
		t.Errorf("declared metric tolerance: %v %v", tol, ok)
	}
}

func TestBuiltins(t *testing.T) {
	for _, name := range []string{"baseline", "flood"} {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		if s.Name != name || s.Seed == 0 {
			t.Errorf("builtin %q malformed: %+v", name, s)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestLoadScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := Scenario{
		Name: "rt", Users: 4, Attackers: 2, AttackRateBps: 2_000_000,
		DurationMS: 1500, Seed: 7,
		Tolerances: map[string]float64{"wait_cdf_gap": 0.5},
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "rt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.Users != 4 || got.Attackers != 2 || got.Seed != 7 {
		t.Errorf("round trip: %+v", got)
	}
	if got.Tolerances["wait_cdf_gap"] != 0.5 {
		t.Errorf("tolerances lost: %+v", got.Tolerances)
	}

	// A nameless spec is rejected.
	anon := filepath.Join(dir, "anon.json")
	if err := os.WriteFile(anon, []byte(`{"users": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(anon); err == nil {
		t.Error("nameless scenario accepted")
	}
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunScenarioQuick cross-validates a scaled-down baseline end to
// end: both planes run for real (the overlay side binds loopback UDP
// sockets), so it is skipped in -short mode.
func TestRunScenarioQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a wall-clock overlay deployment")
	}
	c, err := RunScenario(Scenario{
		Name: "quick", Users: 3, DurationMS: 1000, DrainMS: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Pass {
		t.Errorf("quick baseline diverged:")
		for _, chk := range c.Checks {
			if chk.Gated && !chk.Pass {
				t.Errorf("  %s: sim %v real %v delta %v > tol %v",
					chk.Name, chk.Sim, chk.Real, chk.Delta, chk.Tolerance)
			}
		}
	}
	if c.Sim.LegitSent == 0 || c.Real.LegitSent == 0 {
		t.Errorf("no traffic: sim %d real %d", c.Sim.LegitSent, c.Real.LegitSent)
	}
}
