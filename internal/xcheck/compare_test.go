package xcheck

import (
	"math"
	"strings"
	"testing"

	"tva/internal/metrics"
)

func TestRelDelta(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{10, 10, 0},
		{10, 5, 0.5},
		{5, 10, 0.5},
		{0, 4, 1},
		{-10, 10, 2},
	}
	for _, c := range cases {
		if got := relDelta(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("relDelta(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDropMixTVD(t *testing.T) {
	sim := &PlaneResult{DropsTotal: 100, DropReasons: map[string]uint64{"legacy-queue-full": 100}}
	real := &PlaneResult{DropsTotal: 100, DropReasons: map[string]uint64{"legacy-queue-full": 100}}
	if tvd, _ := dropMixTVD(sim, real); tvd != 0 {
		t.Errorf("identical mixes: tvd = %v, want 0", tvd)
	}

	real.DropReasons = map[string]uint64{"regular-queue-full": 100}
	if tvd, _ := dropMixTVD(sim, real); tvd != 1 {
		t.Errorf("disjoint mixes: tvd = %v, want 1", tvd)
	}

	real.DropReasons = map[string]uint64{"legacy-queue-full": 50, "regular-queue-full": 50}
	if tvd, _ := dropMixTVD(sim, real); math.Abs(tvd-0.5) > 1e-12 {
		t.Errorf("half-shifted mix: tvd = %v, want 0.5", tvd)
	}

	// Below minimum mass on both planes: not evaluated.
	lo1 := &PlaneResult{DropsTotal: 3, DropReasons: map[string]uint64{"filter": 3}}
	lo2 := &PlaneResult{DropsTotal: 5, DropReasons: map[string]uint64{"demoted": 5}}
	tvd, note := dropMixTVD(lo1, lo2)
	if tvd != 0 || !strings.Contains(note, "both planes") {
		t.Errorf("low mass both: tvd = %v note = %q", tvd, note)
	}

	// One plane substantial, one negligible: deferred to drop_rate.
	tvd, note = dropMixTVD(sim, lo2)
	if tvd != 0 || !strings.Contains(note, "drop_rate") {
		t.Errorf("low mass one: tvd = %v note = %q", tvd, note)
	}
}

func TestWaitCDFGap(t *testing.T) {
	var a, b [metrics.SketchBuckets]uint64

	if g := waitCDFGap(a, b, 0, 0); g != 0 {
		t.Errorf("both empty: gap = %v, want 0", g)
	}
	a[20] = 100
	if g := waitCDFGap(a, b, 0, 0); g != 1 {
		t.Errorf("one empty: gap = %v, want 1", g)
	}
	b[20] = 50
	if g := waitCDFGap(a, b, 0, 0); g != 0 {
		t.Errorf("identical shapes: gap = %v, want 0", g)
	}

	// Mass split below the floor differs, above it agrees: the floor
	// collapse must absorb the below-floor disagreement.
	a, b = [metrics.SketchBuckets]uint64{}, [metrics.SketchBuckets]uint64{}
	a[0], b[5] = 100, 100 // both "negligible wait", different buckets
	a[25], b[25] = 100, 100
	if g := waitCDFGap(a, b, 0, 0); g != 0.5 {
		t.Errorf("no floor: gap = %v, want 0.5", g)
	}
	if g := waitCDFGap(a, b, 18, 0); g != 0 {
		t.Errorf("floored: gap = %v, want 0", g)
	}

	// A rigid one-bucket shift vanishes inside the shift allowance but
	// fails exact alignment.
	a, b = [metrics.SketchBuckets]uint64{}, [metrics.SketchBuckets]uint64{}
	a[24], a[25], a[26] = 10, 80, 10
	b[25], b[26], b[27] = 10, 80, 10
	if g := waitCDFGap(a, b, 0, 0); g < 0.8 {
		t.Errorf("shifted, no allowance: gap = %v, want >= 0.8", g)
	}
	if g := waitCDFGap(a, b, 0, 1); g != 0 {
		t.Errorf("shifted, allowance 1: gap = %v, want 0", g)
	}

	// A genuine shape divergence survives the shift allowance.
	a, b = [metrics.SketchBuckets]uint64{}, [metrics.SketchBuckets]uint64{}
	a[25] = 100                      // concentrated
	b[20], b[25], b[30] = 34, 33, 33 // spread out
	if g := waitCDFGap(a, b, 0, 1); g < 0.3 {
		t.Errorf("shape divergence: gap = %v, want >= 0.3", g)
	}
}

func TestShiftCountsPreservesMass(t *testing.T) {
	var c [metrics.SketchBuckets]uint64
	c[0], c[1], c[40], c[metrics.SketchBuckets-1] = 7, 11, 13, 17
	for _, k := range []int{-3, -1, 0, 1, 3, metrics.SketchBuckets + 5} {
		if got := sketchTotal(shiftCounts(c, k)); got != sketchTotal(c) {
			t.Errorf("shift %d: total = %d, want %d", k, got, sketchTotal(c))
		}
	}
	s := shiftCounts(c, 2)
	if s[42] != 13 || s[metrics.SketchBuckets-1] != 17 {
		t.Errorf("shift 2: bucket 42 = %d (want 13), top = %d (want 17)", s[42], s[metrics.SketchBuckets-1])
	}
}

func TestCompareGating(t *testing.T) {
	sc := Scenario{Name: "t"}.withDefaults()
	sim := &PlaneResult{Plane: "sim", LegitSent: 100, LegitDelivered: 100,
		SharedMetrics: map[string]float64{"tva_flowcache_entries": 10}}
	real := &PlaneResult{Plane: "real", LegitSent: 100, LegitDelivered: 100,
		SharedMetrics: map[string]float64{"tva_flowcache_entries": 10}}
	c := Compare(sc, sim, real)
	if !c.Pass {
		t.Fatalf("identical planes should pass: %+v", c.Checks)
	}
	for _, chk := range c.Checks {
		if strings.HasPrefix(chk.Name, "metric:") && chk.Gated {
			t.Errorf("metric check %q gated without a declared tolerance", chk.Name)
		}
	}

	// An out-of-tolerance gated check fails the comparison.
	real.LegitDelivered = 50
	c = Compare(sc, sim, real)
	if c.Pass {
		t.Fatal("halved delivery should fail delivered_fraction")
	}

	// A declared metric tolerance gates that series.
	real.LegitDelivered = 100
	real.SharedMetrics["tva_flowcache_entries"] = 40
	sc.Tolerances = map[string]float64{"metric:tva_flowcache_entries": 0.10}
	c = Compare(sc, sim, real)
	if c.Pass {
		t.Fatal("gated metric delta 0.75 should fail its 0.10 tolerance")
	}
	found := false
	for _, chk := range c.Checks {
		if chk.Name == "metric:tva_flowcache_entries" {
			found = true
			if !chk.Gated || chk.Pass {
				t.Errorf("expected gated failing metric check, got %+v", chk)
			}
		}
	}
	if !found {
		t.Error("metric:tva_flowcache_entries check missing")
	}
}
