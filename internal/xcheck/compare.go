// Divergence scoring: difference two PlaneResults check by check,
// gate each against the scenario's tolerance, and report shared-series
// relative deltas (informational unless a "metric:<name>" tolerance
// is declared).
package xcheck

import (
	"math"
	"sort"

	"tva/internal/metrics"
)

// minMixMass is the minimum drop count each plane must show before the
// drop-reason-mix TVD is meaningful: normalizing a handful of drops
// into a distribution amplifies noise into spurious distance.
const minMixMass = 20

// Check is one gated (or informational) comparison.
type Check struct {
	Name      string  `json:"name"`
	Sim       float64 `json:"sim"`
	Real      float64 `json:"real"`
	Delta     float64 `json:"delta"`
	Tolerance float64 `json:"tolerance"`
	Gated     bool    `json:"gated"`
	Pass      bool    `json:"pass"`
	Note      string  `json:"note,omitempty"`
}

// Comparison is one scenario's full divergence report.
type Comparison struct {
	Scenario Scenario     `json:"scenario"`
	Sim      *PlaneResult `json:"sim"`
	Real     *PlaneResult `json:"real"`
	Checks   []Check      `json:"checks"`
	Pass     bool         `json:"pass"`
}

// Compare scores the two plane results against the scenario's
// tolerances.
func Compare(sc Scenario, sim, real *PlaneResult) *Comparison {
	c := &Comparison{Scenario: sc, Sim: sim, Real: real, Pass: true}

	add := func(name string, simV, realV, delta float64, note string) {
		tol, gated := sc.tolerance(name)
		chk := Check{
			Name: name, Sim: simV, Real: realV, Delta: delta,
			Tolerance: tol, Gated: gated, Pass: !gated || delta <= tol,
			Note: note,
		}
		c.Checks = append(c.Checks, chk)
		if !chk.Pass {
			c.Pass = false
		}
	}

	df1, df2 := sim.DeliveredFraction(), real.DeliveredFraction()
	add("delivered_fraction", df1, df2, math.Abs(df1-df2), "")

	dr1, dr2 := sim.DropRate(), real.DropRate()
	add("drop_rate", dr1, dr2, math.Abs(dr1-dr2), "")

	tvd, note := dropMixTVD(sim, real)
	add("drop_mix", float64(sim.DropsTotal), float64(real.DropsTotal), tvd, note)

	dm1, dm2 := sim.DemotionRate(), real.DemotionRate()
	add("demotion_rate", dm1, dm2, math.Abs(dm1-dm2), "")

	gap := waitCDFGap(sim.WaitCounts, real.WaitCounts, sc.WaitFloorBucket, sc.WaitShiftBuckets)
	add("wait_cdf_gap", float64(sketchTotal(sim.WaitCounts)), float64(sketchTotal(real.WaitCounts)), gap,
		"buckets below the wait floor are collapsed and the sketches aligned within the shift allowance before the gap is taken")

	// Shared-series relative deltas, sorted by name for stable output.
	ids := map[string]bool{}
	for id := range sim.SharedMetrics {
		ids[id] = true
	}
	for id := range real.SharedMetrics {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		a, b := sim.SharedMetrics[id], real.SharedMetrics[id]
		add("metric:"+id, a, b, relDelta(a, b), "")
	}
	return c
}

// relDelta is |a-b| / max(|a|, |b|), 0 when both are ~0.
func relDelta(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-9 {
		return 0
	}
	return math.Abs(a-b) / m
}

// dropMixTVD is the total variation distance between the two planes'
// normalized drop-reason distributions.
func dropMixTVD(sim, real *PlaneResult) (float64, string) {
	st, rt := sim.DropsTotal, real.DropsTotal
	if st < minMixMass || rt < minMixMass {
		if st >= minMixMass || rt >= minMixMass {
			// One plane drops substantially, the other barely: that
			// magnitude gap belongs to drop_rate; the mix is undefined.
			return 0, "insufficient drop mass on one plane; magnitude gated by drop_rate"
		}
		return 0, "both planes below minimum drop mass; mix not evaluated"
	}
	keys := map[string]bool{}
	for k := range sim.DropReasons {
		keys[k] = true
	}
	for k := range real.DropReasons {
		keys[k] = true
	}
	var tvd float64
	for k := range keys {
		p := float64(sim.DropReasons[k]) / float64(st)
		q := float64(real.DropReasons[k]) / float64(rt)
		tvd += math.Abs(p - q)
	}
	return tvd / 2, ""
}

func sketchTotal(counts [metrics.SketchBuckets]uint64) uint64 {
	var t uint64
	for _, n := range counts {
		t += n
	}
	return t
}

// waitCDFGap is the Kolmogorov–Smirnov-style max CDF gap between two
// wait sketches, after collapsing every bucket below floor into one
// "negligible wait" bucket and aligning the sketches within the shift
// allowance (minimum gap over shifting b by up to ±shift buckets). The
// collapse encodes a known modeling gap: an unloaded simulator queue
// waits exactly zero virtual time where an unloaded overlay port waits
// real microseconds; both are "no queueing" for the paper's purposes.
// The shift allowance encodes a second gap: wall-clock sleep pacing
// stretches the overlay's effective service time by a constant factor,
// which the sketch's power-of-two buckets render as a rigid shift —
// indistinguishable from a timing calibration, unlike a genuine shape
// divergence, which no rigid shift can hide.
func waitCDFGap(a, b [metrics.SketchBuckets]uint64, floor, shift int) float64 {
	ta, tb := sketchTotal(a), sketchTotal(b)
	if ta == 0 && tb == 0 {
		return 0
	}
	if ta == 0 || tb == 0 {
		return 1
	}
	if shift < 0 {
		shift = 0
	}
	best := math.Inf(1)
	for k := -shift; k <= shift; k++ {
		if g := rawCDFGap(a, shiftCounts(b, k), floor); g < best {
			best = g
		}
	}
	return best
}

// shiftCounts moves every bucket of c by k positions (positive k =
// toward larger waits), clamping mass that falls off either end into
// the edge buckets so totals are preserved.
func shiftCounts(c [metrics.SketchBuckets]uint64, k int) [metrics.SketchBuckets]uint64 {
	if k == 0 {
		return c
	}
	var out [metrics.SketchBuckets]uint64
	for i, n := range c {
		j := i + k
		if j < 0 {
			j = 0
		}
		if j >= metrics.SketchBuckets {
			j = metrics.SketchBuckets - 1
		}
		out[j] += n
	}
	return out
}

func rawCDFGap(a, b [metrics.SketchBuckets]uint64, floor int) float64 {
	ta, tb := sketchTotal(a), sketchTotal(b)
	if floor < 0 {
		floor = 0
	}
	if floor >= metrics.SketchBuckets {
		floor = metrics.SketchBuckets - 1
	}
	var gap, ca, cb float64
	for i := 0; i < metrics.SketchBuckets; i++ {
		ca += float64(a[i]) / float64(ta)
		cb += float64(b[i]) / float64(tb)
		if i < floor {
			continue // inside the collapsed negligible-wait bucket
		}
		if d := math.Abs(ca - cb); d > gap {
			gap = d
		}
	}
	return gap
}
