package xcheck

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testComparison(pass bool) *Comparison {
	sc := Scenario{Name: "t"}.withDefaults()
	sim := &PlaneResult{Plane: "sim", LegitSent: 100, LegitDelivered: 100,
		Hops: []HopWait{{Name: "L->R", Visits: 100, MeanWaitUS: 12.5}}}
	real := &PlaneResult{Plane: "real", LegitSent: 100, LegitDelivered: 100,
		Hops: []HopWait{{Name: "a->b", Visits: 99, MeanWaitUS: 40.1}}}
	if !pass {
		real.LegitDelivered = 10
	}
	return Compare(sc, sim, real)
}

func TestReportVerdicts(t *testing.T) {
	r := NewReport([]*Comparison{testComparison(true)})
	if !r.Pass {
		t.Fatal("all-pass comparisons should pass the report")
	}
	r = NewReport([]*Comparison{testComparison(true), testComparison(false)})
	if r.Pass {
		t.Fatal("one failing comparison should fail the report")
	}
}

func TestReportWriteText(t *testing.T) {
	var buf bytes.Buffer
	r := NewReport([]*Comparison{testComparison(false)})
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario t", "FAIL", "delivered_fraction", "wait_cdf_gap",
		"overall: FAIL", "per-hop mean wait", "L->R", "a->b",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestReportWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewReport([]*Comparison{testComparison(true)})
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse back: %v", err)
	}
	if !back.Pass || len(back.Comparisons) != 1 {
		t.Errorf("round trip lost content: %+v", back)
	}
	if back.Comparisons[0].Scenario.Name != "t" {
		t.Errorf("scenario lost: %+v", back.Comparisons[0].Scenario)
	}
}
