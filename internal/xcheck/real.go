// Real-plane runner: the same scenario over an in-process loopback
// overlay.Topology — real UDP sockets, real port pacing goroutines,
// wall-clock time. Senders mirror the simulator's stream driver: knock
// until granted (at most one request per 100 ms), then stream
// full-size messages at the jittered configured pace; attackers blast
// marshaled legacy packets from plain UDP sockets.
package xcheck

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/exp"
	"tva/internal/metrics"
	"tva/internal/overlay"
	"tva/internal/packet"
)

// knockInterval paces capability requests while ungranted — the same
// bound the sim-plane stream driver applies.
const knockInterval = 100 * time.Millisecond

func runReal(sc Scenario) (*PlaneResult, error) {
	topo, err := overlay.NewTopology(overlay.TopoConfig{
		Routers:         2,
		LinkBps:         sc.LinkBps,
		RequestFraction: sc.RequestFraction,
		Suite:           capability.Fast,
		SpanCapacity:    simSpanCapacity,
	})
	if err != nil {
		return nil, err
	}
	defer topo.Close()

	shim := core.ShimConfig{Suite: capability.Fast, AutoReturn: true}
	destPolicy := core.NewServerPolicy()
	destPolicy.GrantKB = sc.GrantKB
	destPolicy.GrantTSec = sc.GrantTSec
	dest, err := topo.AddHost(exp.DestAddr, 1, destPolicy, shim)
	if err != nil {
		return nil, err
	}
	users := make([]*overlay.Host, sc.Users)
	for i := range users {
		if users[i], err = topo.AddHost(exp.UserAddr(i), 0, core.NewClientPolicy(), shim); err != nil {
			return nil, err
		}
	}
	window := sc.DurationMS/100 + 4
	if _, err := topo.StartMetrics(window, metrics.DetectorConfig{}, 100*time.Millisecond); err != nil {
		return nil, err
	}

	// Delivery accounting: the counter goroutine owns the tallies until
	// its stop channel closes (then drains what's buffered and exits).
	perFlow := make([]uint64, sc.Users)
	var legitDelivered, attackDelivered uint64
	userIdx := make(map[packet.Addr]int, sc.Users)
	for i := 0; i < sc.Users; i++ {
		userIdx[exp.UserAddr(i)] = i
	}
	stopCount := make(chan struct{})
	var countWG sync.WaitGroup
	countWG.Add(1)
	go func() {
		defer countWG.Done()
		count := func(m overlay.Message) {
			if i, ok := userIdx[m.Src]; ok {
				if len(m.Payload) >= sc.MsgBytes {
					perFlow[i]++
					legitDelivered++
				}
				return
			}
			if len(m.Payload) >= sc.AttackPktSize {
				attackDelivered++
			}
		}
		for {
			select {
			case m := <-dest.Inbox:
				count(m)
			case <-stopCount:
				for {
					select {
					case m := <-dest.Inbox:
						count(m)
					default:
						return
					}
				}
			}
		}
	}()

	// Senders and attackers run for Duration-Drain, then the run idles
	// for Drain so in-flight traffic settles — the same schedule the
	// simulator plane follows.
	sendFor := time.Duration(sc.DurationMS-sc.DrainMS) * time.Millisecond
	stopSend := make(chan struct{})
	var sendWG sync.WaitGroup

	perFlowSent := make([]uint64, sc.Users)
	var legitSent, attackSent atomic.Uint64
	msg := make([]byte, sc.MsgBytes)
	interval := time.Duration(sc.MsgIntervalMS) * time.Millisecond
	for i := range users {
		sendWG.Add(1)
		go func(i int) {
			defer sendWG.Done()
			u := users[i]
			rng := rand.New(rand.NewSource(sc.Seed + int64(i)*1315423911 + 1))
			var lastKnock time.Time
			// Credit-based pacing: advance a deadline by the jittered
			// interval and sleep until it. Timer overshoot (sleep
			// granularity) then self-corrects instead of compounding,
			// keeping the mean rate equal to the simulator's.
			next := time.Now().Add(time.Duration(rng.Int63n(int64(interval) + 1)))
			timer := time.NewTimer(time.Until(next))
			defer timer.Stop()
			for {
				select {
				case <-stopSend:
					return
				case <-timer.C:
				}
				now := time.Now()
				if u.HasCaps(exp.DestAddr) {
					if u.Send(exp.DestAddr, msg) == nil {
						perFlowSent[i]++
						legitSent.Add(1)
					}
				} else if now.Sub(lastKnock) >= knockInterval {
					lastKnock = now
					u.Send(exp.DestAddr, nil) // knock: the shim piggybacks a request
				}
				jitter := 0.75 + 0.5*rng.Float64()
				next = next.Add(time.Duration(float64(interval) * jitter))
				timer.Reset(time.Until(next))
			}
		}(i)
	}

	routerAddr := topo.Router(0).Addr().String()
	atkInterval := time.Duration(int64(sc.AttackPktSize) * 8 * int64(time.Second) / sc.AttackRateBps)
	atkStart := time.Duration(sc.AttackStartMS) * time.Millisecond
	for i := 0; i < sc.Attackers; i++ {
		wire, err := attackPacket(exp.AttackerAddr(i), sc.AttackPktSize)
		if err != nil {
			close(stopSend)
			close(stopCount)
			return nil, err
		}
		conn, err := net.Dial("udp", routerAddr)
		if err != nil {
			close(stopSend)
			close(stopCount)
			return nil, err
		}
		sendWG.Add(1)
		go func(i int, conn net.Conn, wire []byte) {
			defer sendWG.Done()
			defer conn.Close()
			rng := rand.New(rand.NewSource(sc.Seed + int64(i)*2654435761 + 7))
			next := time.Now().Add(atkStart + time.Duration(rng.Int63n(int64(atkInterval)+1)))
			timer := time.NewTimer(time.Until(next))
			defer timer.Stop()
			for {
				select {
				case <-stopSend:
					return
				case <-timer.C:
				}
				if _, err := conn.Write(wire); err == nil {
					attackSent.Add(1)
				}
				jitter := 0.75 + 0.5*rng.Float64()
				next = next.Add(time.Duration(float64(atkInterval) * jitter))
				timer.Reset(time.Until(next))
			}
		}(i, conn, wire)
	}

	time.Sleep(sendFor)
	close(stopSend)
	sendWG.Wait()
	time.Sleep(time.Duration(sc.DrainMS) * time.Millisecond)

	// Final deterministic sample, then freeze the tallies.
	topo.Tick()
	close(stopCount)
	countWG.Wait()

	linkDrops := topo.LinkSchedDrops(0)
	dem0, dem1 := topo.Router(0).CoreDemotions(), topo.Router(1).CoreDemotions()
	out := &PlaneResult{
		Plane:           "real",
		LegitSent:       legitSent.Load(),
		LegitDelivered:  legitDelivered,
		AttackSent:      attackSent.Load(),
		AttackDelivered: attackDelivered,
		DropReasons:     dropReasonMap(linkDrops),
		DropsTotal:      linkDrops.Total(),
		DemotionsTotal:  dem0.Total() + dem1.Total(),
	}
	for i := 0; i < sc.Users; i++ {
		out.PerFlow = append(out.PerFlow, FlowCount{
			Addr: exp.UserAddr(i).String(), Sent: perFlowSent[i], Delivered: perFlow[i],
		})
	}
	if sk := topo.LinkWaitSketch(0); sk != nil {
		out.WaitCounts = sk.Counts()
	}
	shared, err := sharedMetrics(topo.Metrics(0).Registry)
	if err != nil {
		return nil, fmt.Errorf("xcheck: real scrape: %w", err)
	}
	out.SharedMetrics = shared
	if sink := topo.Spans(); sink != nil {
		out.Hops = hopWaits(sink.Snapshot(), sink.HopName, uint32(exp.DestAddr))
	}
	return out, nil
}

// attackPacket marshals one legacy raw flood packet to wire form.
func attackPacket(src packet.Addr, payloadBytes int) ([]byte, error) {
	pkt := packet.AcquirePacket()
	pkt.Src, pkt.Dst, pkt.TTL = src, exp.DestAddr, 64
	pkt.Proto = packet.ProtoRaw
	pkt.Payload = make([]byte, payloadBytes)
	pkt.Size = packet.OuterHdrLen + payloadBytes
	wire, err := pkt.Marshal(nil)
	packet.Release(pkt)
	return wire, err
}
