// PlaneResult: the structured extract both runners produce, aligned
// so compare.go can difference them field by field. Flows align by
// construction — both planes use exp.UserAddr(i)/exp.AttackerAddr(i)/
// exp.DestAddr — and hops align by position along the forward path.
package xcheck

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"tva/internal/metrics"
	"tva/internal/telemetry"
	"tva/internal/trace"
)

// FlowCount is one sender's message tally on one plane.
type FlowCount struct {
	Addr      string `json:"addr"`
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
}

// HopWait is one forward-path hop's span-derived wait aggregate.
type HopWait struct {
	Name       string  `json:"name"`
	Visits     int     `json:"visits"`
	MeanWaitUS float64 `json:"mean_wait_us"`
}

// PlaneResult is one plane's structured scenario outcome.
type PlaneResult struct {
	Plane string `json:"plane"` // "sim" or "real"

	LegitSent       uint64 `json:"legit_sent"`
	LegitDelivered  uint64 `json:"legit_delivered"`
	AttackSent      uint64 `json:"attack_sent"`
	AttackDelivered uint64 `json:"attack_delivered"`

	PerFlow []FlowCount `json:"per_flow"`

	// Bottleneck drop attribution (forward direction), by reason name.
	DropReasons map[string]uint64 `json:"drop_reasons,omitempty"`
	DropsTotal  uint64            `json:"drops_total"`

	// DemotionsTotal counts capability-check demotions across the
	// plane's routers.
	DemotionsTotal uint64 `json:"demotions_total"`

	// WaitCounts is the bottleneck queue-wait sketch's per-bucket
	// counts (power-of-two nanosecond buckets, bucket 0 = zero wait).
	WaitCounts [metrics.SketchBuckets]uint64 `json:"wait_counts"`

	// SharedMetrics is the final scrape restricted to the shared-name
	// contract, with the overlay's per-port label collapsed (summed)
	// so both planes key identically.
	SharedMetrics map[string]float64 `json:"shared_metrics"`

	// Hops are the forward-path per-hop wait aggregates from the trace
	// spans (informational: units are virtual vs wall nanoseconds).
	Hops []HopWait `json:"hops,omitempty"`
}

// DeliveredFraction is delivered/sent for legitimate messages.
func (p *PlaneResult) DeliveredFraction() float64 {
	if p.LegitSent == 0 {
		return 1
	}
	return float64(p.LegitDelivered) / float64(p.LegitSent)
}

// Offered is the total injected load in messages/packets.
func (p *PlaneResult) Offered() uint64 { return p.LegitSent + p.AttackSent }

// DropRate is bottleneck drops per offered packet.
func (p *PlaneResult) DropRate() float64 {
	if p.Offered() == 0 {
		return 0
	}
	return float64(p.DropsTotal) / float64(p.Offered())
}

// DemotionRate is demotions per offered packet.
func (p *PlaneResult) DemotionRate() float64 {
	if p.Offered() == 0 {
		return 0
	}
	return float64(p.DemotionsTotal) / float64(p.Offered())
}

// dropReasonMap converts counters into a name-keyed map of nonzero
// reasons.
func dropReasonMap(d telemetry.DropCounters) map[string]uint64 {
	out := map[string]uint64{}
	for i := 1; i < telemetry.NumDropReasons; i++ {
		r := telemetry.DropReason(i)
		if n := d.Get(r); n > 0 {
			out[r.String()] = n
		}
	}
	return out
}

// sharedMetrics extracts the SharedSeries samples from a rendered
// registry, collapsing any "port" label (the overlay registers one
// series per neighbour port; the simulator has a single bottleneck) by
// summing across its values.
func sharedMetrics(reg *metrics.Registry) (map[string]float64, error) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	scrape, err := metrics.ParseProm(&buf)
	if err != nil {
		return nil, err
	}
	shared := map[string]bool{}
	for _, n := range metrics.SharedSeries {
		shared[n] = true
	}
	out := map[string]float64{}
	for _, s := range scrape.Samples {
		if !shared[s.Name] {
			continue
		}
		var parts []string
		for _, l := range s.Labels {
			if l.Key == "port" {
				continue
			}
			parts = append(parts, l.Key+"="+l.Value)
		}
		id := s.Name
		if len(parts) > 0 {
			sort.Strings(parts)
			id += "{" + strings.Join(parts, ",") + "}"
		}
		out[id] += s.Value
	}
	return out, nil
}

// hopWaits aggregates forward-path (any source toward dst) waits per
// hop from a span snapshot.
func hopWaits(spans []trace.Span, hopName func(uint16) string, dst uint32) []HopWait {
	stats := trace.AnalyzeAll(spans)
	aggs := trace.AggregateHops(stats, 0, dst)
	out := make([]HopWait, 0, len(aggs))
	for _, a := range aggs {
		name := hopName(a.Hop)
		if name == "" {
			name = fmt.Sprintf("hop-%d", a.Hop)
		}
		out = append(out, HopWait{
			Name:       name,
			Visits:     a.Visits,
			MeanWaitUS: float64(a.MeanWait()) / 1e3,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
