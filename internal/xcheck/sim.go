// Simulator-plane runner: maps the scenario onto exp.RunStream and
// extracts the aligned PlaneResult.
package xcheck

import (
	"fmt"

	"tva/internal/exp"
	"tva/internal/tvatime"
)

// simSpanCapacity retains every span of a CI-sized scenario.
const simSpanCapacity = 1 << 17

func runSim(sc Scenario) (*PlaneResult, error) {
	res := exp.RunStream(exp.StreamConfig{
		Users:           sc.Users,
		MsgBytes:        sc.MsgBytes,
		MsgInterval:     tvatime.Duration(sc.MsgIntervalMS) * tvatime.Millisecond,
		Attackers:       sc.Attackers,
		AttackRateBps:   sc.AttackRateBps,
		AttackPktSize:   sc.AttackPktSize,
		AttackStart:     tvatime.Duration(sc.AttackStartMS) * tvatime.Millisecond,
		BottleneckBps:   sc.LinkBps,
		AccessBps:       sc.LinkBps,
		LinkDelay:       tvatime.Duration(sc.LinkDelayMS) * tvatime.Millisecond,
		Duration:        tvatime.Duration(sc.DurationMS) * tvatime.Millisecond,
		Drain:           tvatime.Duration(sc.DrainMS) * tvatime.Millisecond,
		RequestFraction: sc.RequestFraction,
		GrantKB:         sc.GrantKB,
		GrantTSec:       sc.GrantTSec,
		MetricsInterval: 100 * tvatime.Millisecond,
		SpanCapacity:    simSpanCapacity,
		Seed:            sc.Seed,
	})

	out := &PlaneResult{
		Plane:           "sim",
		LegitSent:       res.LegitSent,
		LegitDelivered:  res.LegitDelivered,
		AttackSent:      res.AttackSent,
		AttackDelivered: res.AttackDelivered,
		DropsTotal:      res.BottleneckDrops,
		DropReasons:     dropReasonMap(res.Telemetry.SchedDrops),
		DemotionsTotal:  res.Telemetry.Demotions.Total(),
	}
	for _, f := range res.PerFlow {
		out.PerFlow = append(out.PerFlow, FlowCount{
			Addr: f.Addr.String(), Sent: f.Sent, Delivered: f.Delivered,
		})
	}
	if res.WaitSketch != nil {
		out.WaitCounts = res.WaitSketch.Counts()
	}
	if res.Telemetry.Metrics == nil {
		return nil, fmt.Errorf("xcheck: sim run produced no metrics registry")
	}
	shared, err := sharedMetrics(res.Telemetry.Metrics)
	if err != nil {
		return nil, fmt.Errorf("xcheck: sim scrape: %w", err)
	}
	out.SharedMetrics = shared
	if rec := res.Telemetry.Spans; rec != nil {
		out.Hops = hopWaits(rec.Snapshot(), rec.HopName, uint32(exp.DestAddr))
	}
	return out, nil
}
