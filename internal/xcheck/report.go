// Report rendering: a human-readable text table per scenario and a
// machine-readable JSON document for the CI artifact.
package xcheck

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report bundles every scenario comparison of one tvaxcheck run.
type Report struct {
	Comparisons []*Comparison `json:"comparisons"`
	Pass        bool          `json:"pass"`
}

// NewReport wraps comparisons and computes the overall verdict.
func NewReport(cs []*Comparison) *Report {
	r := &Report{Comparisons: cs, Pass: true}
	for _, c := range cs {
		if !c.Pass {
			r.Pass = false
		}
	}
	return r
}

// WriteJSON emits the full report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the divergence tables.
func (r *Report) WriteText(w io.Writer) error {
	for _, c := range r.Comparisons {
		if err := c.writeText(w); err != nil {
			return err
		}
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "overall: %s\n", verdict)
	return err
}

func (c *Comparison) writeText(w io.Writer) error {
	verdict := "PASS"
	if !c.Pass {
		verdict = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "scenario %-12s %s\n", c.Scenario.Name, verdict); err != nil {
		return err
	}
	fmt.Fprintf(w, "  offered: sim %d (legit %d + attack %d) | real %d (legit %d + attack %d)\n",
		c.Sim.Offered(), c.Sim.LegitSent, c.Sim.AttackSent,
		c.Real.Offered(), c.Real.LegitSent, c.Real.AttackSent)
	fmt.Fprintf(w, "  %-44s %12s %12s %9s %9s  %s\n",
		"check", "sim", "real", "delta", "tol", "verdict")
	for _, chk := range c.Checks {
		verdict := "pass"
		switch {
		case !chk.Gated:
			verdict = "info"
		case !chk.Pass:
			verdict = "FAIL"
		}
		tol := "-"
		if chk.Gated {
			tol = fmt.Sprintf("%.3f", chk.Tolerance)
		}
		fmt.Fprintf(w, "  %-44s %12.4g %12.4g %9.4f %9s  %s\n",
			chk.Name, chk.Sim, chk.Real, chk.Delta, tol, verdict)
		if chk.Note != "" {
			fmt.Fprintf(w, "      note: %s\n", chk.Note)
		}
	}
	if len(c.Sim.Hops) > 0 || len(c.Real.Hops) > 0 {
		fmt.Fprintf(w, "  per-hop mean wait (informational; sim=virtual ns, real=wall ns):\n")
		writeHops(w, "sim", c.Sim.Hops)
		writeHops(w, "real", c.Real.Hops)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeHops(w io.Writer, plane string, hops []HopWait) {
	for _, h := range hops {
		fmt.Fprintf(w, "    %-4s %-32s visits %8d  mean wait %10.1f us\n",
			plane, h.Name, h.Visits, h.MeanWaitUS)
	}
}
