// Package xcheck cross-validates the two data planes: it runs one
// scenario spec on the discrete-event simulator (exp.RunStream) and on
// an in-process loopback overlay deployment (overlay.Topology),
// collects the shared metric series, drop attribution, queue-wait
// sketches, and trace spans from each, and scores the divergence
// against per-check tolerances declared in the scenario. The paper's
// evaluation rests on simulator results; this harness is the
// machine-checked evidence that the simulator's behaviour matches the
// deployable implementation (ROADMAP item 5), in the spirit of the
// simulated-vs-experimental DiffServ validation study.
package xcheck

import (
	"encoding/json"
	"fmt"
	"os"
)

// Scenario is one cross-plane experiment spec. Durations are integer
// milliseconds so specs round-trip through JSON without float drift.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Users         int `json:"users"`
	MsgBytes      int `json:"msg_bytes"`
	MsgIntervalMS int `json:"msg_interval_ms"`

	Attackers     int   `json:"attackers"`
	AttackRateBps int64 `json:"attack_rate_bps"`
	AttackPktSize int   `json:"attack_pkt_size"`
	AttackStartMS int   `json:"attack_start_ms"`

	LinkBps int64 `json:"link_bps"`
	// LinkDelayMS applies to the simulator plane only: loopback UDP has
	// no configurable propagation delay. A known modeling gap — it
	// shifts time-to-first-grant, not queueing behaviour, and the
	// default is kept small so the gap stays inside tolerances.
	LinkDelayMS int `json:"link_delay_ms"`

	DurationMS int `json:"duration_ms"`
	// DrainMS is quiet time at the end of the run: senders stop at
	// Duration-Drain so in-flight traffic settles inside the window on
	// both planes.
	DrainMS int `json:"drain_ms"`

	RequestFraction float64 `json:"request_fraction"`
	GrantKB         uint16  `json:"grant_kb"`
	GrantTSec       uint8   `json:"grant_tsec"`

	Seed int64 `json:"seed"`

	// WaitFloorBucket collapses sketch buckets below this index (2^n
	// nanoseconds) into one "negligible wait" bucket before the
	// max-CDF-gap is computed. The default (18, ~262 µs) absorbs the
	// known modeling gap that an unloaded simulator queue reports
	// exactly zero wait while an unloaded overlay port reports
	// microseconds of scheduling noise; queueing that matters (service
	// times upward) lives above the floor on both planes.
	WaitFloorBucket int `json:"wait_floor_bucket"`

	// WaitShiftBuckets lets the wait comparison slide one plane's sketch
	// by up to this many power-of-two buckets before taking the CDF gap
	// (the minimum gap over all shifts is scored). Default 1. This
	// absorbs a known modeling gap: the overlay paces ports with
	// wall-clock sleeps whose overshoot stretches effective service time,
	// scaling saturated queue waits by a constant factor the sketch's
	// factor-2 buckets cannot distinguish from one bucket of shift. Shape
	// divergence (different distributions, not just a time scale) still
	// fails. Set to -1 to require exact bucket alignment.
	WaitShiftBuckets int `json:"wait_shift_buckets"`

	// Tolerances overrides or extends the default per-check bounds:
	// "delivered_fraction", "drop_rate", "demotion_rate" (absolute
	// deltas), "drop_mix" (total variation distance), "wait_cdf_gap"
	// (max CDF gap). Keys of the form "metric:<name>" additionally gate
	// that shared series' relative delta, which is otherwise
	// informational.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
}

// DefaultTolerances are the bounds used when a scenario does not
// declare its own. They encode the expected residual divergence of a
// wall-clock UDP deployment vs a discrete-event model: counts and
// fractions agree tightly, distribution shapes more loosely.
var DefaultTolerances = map[string]float64{
	"delivered_fraction": 0.10,
	"drop_rate":          0.10,
	"drop_mix":           0.25,
	"demotion_rate":      0.10,
	"wait_cdf_gap":       0.35,
}

func (s Scenario) withDefaults() Scenario {
	if s.Users == 0 {
		s.Users = 10
	}
	if s.MsgBytes == 0 {
		s.MsgBytes = 512
	}
	if s.MsgIntervalMS == 0 {
		s.MsgIntervalMS = 50
	}
	if s.AttackRateBps == 0 {
		s.AttackRateBps = 1_000_000
	}
	if s.AttackPktSize == 0 {
		s.AttackPktSize = 1000
	}
	if s.AttackStartMS == 0 {
		s.AttackStartMS = 500
	}
	if s.LinkBps == 0 {
		s.LinkBps = 10_000_000
	}
	if s.LinkDelayMS == 0 {
		s.LinkDelayMS = 2
	}
	if s.DurationMS == 0 {
		s.DurationMS = 3000
	}
	if s.DrainMS == 0 {
		s.DrainMS = 500
	}
	if s.RequestFraction == 0 {
		s.RequestFraction = 0.05
	}
	if s.GrantKB == 0 {
		// Large enough to outlive a scenario without renewal: the
		// overlay shim has no retransmission timers (a documented
		// modeling gap), so a mid-run renewal would diverge.
		s.GrantKB = 64
	}
	if s.GrantTSec == 0 {
		s.GrantTSec = 10
	}
	if s.WaitFloorBucket == 0 {
		s.WaitFloorBucket = 18
	}
	if s.WaitShiftBuckets == 0 {
		s.WaitShiftBuckets = 1
	}
	if s.WaitShiftBuckets < 0 {
		s.WaitShiftBuckets = 0
	}
	return s
}

// tolerance resolves one check's bound: scenario override first, then
// the package default; checks without either are informational.
func (s Scenario) tolerance(check string) (float64, bool) {
	if v, ok := s.Tolerances[check]; ok {
		return v, true
	}
	v, ok := DefaultTolerances[check]
	return v, ok
}

// Builtins are the canonical CI scenarios: a legit-only baseline and a
// legacy flood at 4x the bottleneck capacity.
var Builtins = []Scenario{
	{
		Name:        "baseline",
		Description: "10 users streaming 512 B messages every 50 ms through capability shims; no attack. Both planes should deliver essentially everything with idle queues.",
		Users:       10,
		DurationMS:  2500,
		Seed:        42,
	},
	{
		Name:          "flood",
		Description:   "10 users under a 10-attacker legacy flood at 4 Mb/s each (40 Mb/s into a 10 Mb/s bottleneck). TVA must protect the capability-carrying flows on both planes while the bottleneck sheds legacy load.",
		Users:         10,
		Attackers:     10,
		AttackRateBps: 4_000_000,
		DurationMS:    3000,
		Seed:          42,
	},
}

// Builtin returns the named canonical scenario.
func Builtin(name string) (Scenario, bool) {
	for _, s := range Builtins {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// LoadScenario reads one scenario spec from a JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("xcheck: parse %s: %w", path, err)
	}
	if s.Name == "" {
		return Scenario{}, fmt.Errorf("xcheck: %s: scenario needs a name", path)
	}
	return s, nil
}
