// Top-level runner: one scenario on both planes, compared.
package xcheck

import "fmt"

// RunScenario executes the scenario on the simulator and the loopback
// overlay deployment and returns the scored comparison.
func RunScenario(sc Scenario) (*Comparison, error) {
	sc = sc.withDefaults()
	if sc.DrainMS >= sc.DurationMS {
		return nil, fmt.Errorf("xcheck: scenario %q: drain (%d ms) must be shorter than duration (%d ms)",
			sc.Name, sc.DrainMS, sc.DurationMS)
	}
	sim, err := runSim(sc)
	if err != nil {
		return nil, fmt.Errorf("xcheck: %s: sim plane: %w", sc.Name, err)
	}
	real, err := runReal(sc)
	if err != nil {
		return nil, fmt.Errorf("xcheck: %s: real plane: %w", sc.Name, err)
	}
	return Compare(sc, sim, real), nil
}
