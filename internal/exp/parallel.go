// Parallel sweep engine: independent simulation runs fanned across
// worker goroutines. Every Run constructs its own simulator whose RNG
// is seeded solely from its Config, so a sweep's results are a pure
// function of its configurations — identical no matter how many
// workers execute them or in what order they finish.
//
// The Debug* hooks are process-global and unsynchronized; instrumented
// runs must stay serial (workers = 1).
package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunMany executes each configuration and returns results in input
// order. workers <= 0 uses GOMAXPROCS; the worker count never affects
// the results, only the wall-clock time.
func RunMany(cfgs []Config, workers int) []*Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			results[i] = Run(cfg)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				results[i] = Run(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// SweepParallel is Sweep fanned across workers; it returns the same
// points as Sweep(base, counts) in the same order.
func SweepParallel(base Config, counts []int, workers int) []SweepPoint {
	cfgs := make([]Config, len(counts))
	for i, n := range counts {
		cfgs[i] = base
		cfgs[i].NumAttackers = n
	}
	results := RunMany(cfgs, workers)
	points := make([]SweepPoint, len(results))
	for i, res := range results {
		points[i] = SweepPoint{
			Attackers:          counts[i],
			CompletionFraction: res.CompletionFraction(),
			AvgTransferTime:    res.AvgTransferTime(),
			FairnessJain:       res.FairnessJain,
			MaxMinRatio:        res.MaxMinRatio,
		}
	}
	return points
}

// SweepSpec enumerates a (scheme, attack, attacker-count, seed) grid
// over a base configuration. Empty dimensions keep the base's value.
type SweepSpec struct {
	Base      Config
	Schemes   []Scheme
	Attacks   []Attack
	Attackers []int
	Seeds     []int64
}

// Expand returns the grid's configurations in row-major order:
// scheme, then attack, then attacker count, then seed.
func (s SweepSpec) Expand() []Config {
	schemes := s.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{s.Base.Scheme}
	}
	attacks := s.Attacks
	if len(attacks) == 0 {
		attacks = []Attack{s.Base.Attack}
	}
	attackers := s.Attackers
	if len(attackers) == 0 {
		attackers = []int{s.Base.NumAttackers}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Base.Seed}
	}
	cfgs := make([]Config, 0, len(schemes)*len(attacks)*len(attackers)*len(seeds))
	for _, sc := range schemes {
		for _, at := range attacks {
			for _, n := range attackers {
				for _, seed := range seeds {
					cfg := s.Base
					cfg.Scheme = sc
					cfg.Attack = at
					cfg.NumAttackers = n
					cfg.Seed = seed
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	return cfgs
}

// Run executes the spec's grid across workers, returning results in
// Expand order.
func (s SweepSpec) Run(workers int) []*Result {
	return RunMany(s.Expand(), workers)
}
