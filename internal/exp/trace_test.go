package exp

import (
	"bytes"
	"testing"

	"tva/internal/trace"
	"tva/internal/tvatime"
)

func tracedConfig() Config {
	return Config{
		Scheme:       SchemeTVA,
		Attack:       AttackRequestFlood,
		NumUsers:     4,
		NumAttackers: 6,
		Duration:     4 * tvatime.Second,
		Seed:         11,
		SpanCapacity: 1 << 19,
	}
}

// TestTracedRunCompleteChains runs a small request flood with the span
// recorder attached and checks the causal chains reconstruct: every
// chain starts at send (capacity is large enough that nothing was
// overwritten), and both delivered and dropped outcomes appear with
// their terminal edges in place.
func TestTracedRunCompleteChains(t *testing.T) {
	res := Run(tracedConfig())
	rec := res.Telemetry.Spans
	if rec == nil {
		t.Fatal("SpanCapacity set but Telemetry.Spans is nil")
	}
	if rec.Overwritten() != 0 {
		t.Fatalf("recorder overwrote %d spans; raise SpanCapacity so chain assertions hold", rec.Overwritten())
	}
	spans := rec.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	stats := trace.AnalyzeAll(spans)
	var delivered, dropped int
	for _, st := range stats {
		switch st.Outcome {
		case trace.ChainDelivered:
			delivered++
			if st.Send == trace.NoTime || st.End <= st.Send {
				t.Fatalf("delivered chain %d has bad endpoints: send=%d end=%d", st.ID, st.Send, st.End)
			}
		case trace.ChainDropped:
			dropped++
			if st.DropTime == trace.NoTime {
				t.Fatalf("dropped chain %d missing drop time", st.ID)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered chains in a run with legitimate users")
	}
	if dropped == 0 {
		t.Fatal("no dropped chains in a request flood")
	}
	// Every chain must begin with its send edge: chains are causal,
	// not fragments.
	for _, ch := range trace.Chains(spans) {
		if ch.Spans[0].Edge != trace.EdgeSend {
			t.Fatalf("chain %d starts with %s, want send", ch.ID, ch.Spans[0].Edge)
		}
	}
}

// TestTracedRunDeterministicDump runs the same seed twice and requires
// byte-identical trace dumps — the determinism contract extended to
// the flight recorder.
func TestTracedRunDeterministicDump(t *testing.T) {
	var a, b bytes.Buffer
	if err := Run(tracedConfig()).Telemetry.Spans.WriteDump(&a); err != nil {
		t.Fatal(err)
	}
	if err := Run(tracedConfig()).Telemetry.Spans.WriteDump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed trace dumps differ: %d vs %d bytes", a.Len(), b.Len())
	}
}

// TestTracingDoesNotPerturbOutcomes checks the observer effect is
// zero: a traced run and an untraced run of the same seed produce the
// same transfers and bottleneck counters.
func TestTracingDoesNotPerturbOutcomes(t *testing.T) {
	traced := Run(tracedConfig())
	plain := tracedConfig()
	plain.SpanCapacity = 0
	base := Run(plain)

	if got, want := traced.CompletionFraction(), base.CompletionFraction(); got != want {
		t.Fatalf("completion fraction %v with tracing, %v without", got, want)
	}
	if traced.BottleneckDrops != base.BottleneckDrops {
		t.Fatalf("bottleneck drops %d with tracing, %d without", traced.BottleneckDrops, base.BottleneckDrops)
	}
	if len(traced.Transfers) != len(base.Transfers) {
		t.Fatalf("transfer count %d with tracing, %d without", len(traced.Transfers), len(base.Transfers))
	}
	for i := range base.Transfers {
		if traced.Transfers[i] != base.Transfers[i] {
			t.Fatalf("transfer %d differs: %+v vs %+v", i, traced.Transfers[i], base.Transfers[i])
		}
	}
}
