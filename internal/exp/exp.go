// Package exp reproduces the paper's simulation methodology (§5): the
// dumbbell topology of Fig. 7, the four schemes (TVA, SIFF, pushback,
// legacy Internet), the four attack workloads (legacy floods, request
// floods, authorized floods via a colluder, and imprecise
// authorization), and the two metrics reported in Figs. 8–11 (fraction
// of completed transfers and average time of completed transfers).
package exp

import (
	"fmt"
	"sort"

	"tva/internal/capability"
	"tva/internal/flowstats"
	"tva/internal/tvatime"
)

// Scheme selects the DoS defense under test.
type Scheme int

// Schemes compared in §5.
const (
	SchemeInternet Scheme = iota
	SchemeTVA
	SchemeSIFF
	SchemePushback
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeInternet:
		return "internet"
	case SchemeTVA:
		return "tva"
	case SchemeSIFF:
		return "siff"
	case SchemePushback:
		return "pushback"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Attack selects the attacker workload.
type Attack int

// Attacks of §5.1–§5.4.
const (
	AttackNone Attack = iota
	AttackLegacyFlood
	AttackRequestFlood
	AttackAuthorizedFlood
	AttackImpreciseAuth
)

// String implements fmt.Stringer.
func (a Attack) String() string {
	switch a {
	case AttackNone:
		return "none"
	case AttackLegacyFlood:
		return "legacy-flood"
	case AttackRequestFlood:
		return "request-flood"
	case AttackAuthorizedFlood:
		return "authorized-flood"
	case AttackImpreciseAuth:
		return "imprecise-auth"
	}
	return fmt.Sprintf("attack(%d)", int(a))
}

// Deployment selects which routers run the scheme's processing —
// the paper's incremental deployment story (§8): boxes are placed at
// points of congestion first, and benefit accrues per box.
type Deployment int

// Deployment levels.
const (
	// DeployFull upgrades both routers (the default).
	DeployFull Deployment = iota
	// DeployBottleneckOnly upgrades only the router ahead of the
	// congested link ("preceding a step-down in capacity", §8).
	DeployBottleneckOnly
	// DeployNone leaves both routers legacy (any scheme degenerates
	// to the Internet baseline).
	DeployNone
)

// String implements fmt.Stringer.
func (d Deployment) String() string {
	switch d {
	case DeployFull:
		return "full"
	case DeployBottleneckOnly:
		return "bottleneck-only"
	case DeployNone:
		return "none"
	}
	return fmt.Sprintf("deploy(%d)", int(d))
}

// Config is one simulation run's parameters. The zero value plus a
// Scheme/Attack/NumAttackers selects the paper's settings.
type Config struct {
	Scheme Scheme
	Attack Attack

	// Deployment controls which routers are upgraded (§8).
	Deployment Deployment

	NumUsers     int // legitimate users (default 10)
	NumAttackers int

	BottleneckBps int64            // default 10 Mb/s
	AccessBps     int64            // default 10 Mb/s
	LinkDelay     tvatime.Duration // default 10 ms (60 ms RTT end to end)

	AttackRateBps int64 // per attacker (default 1 Mb/s)
	AttackPktSize int   // attack payload bytes (default 1000)

	FileKB int // transfer size (default 20 KB)

	Duration    tvatime.Duration // simulated time (default 60s)
	AttackStart tvatime.Duration // when flooding begins (default 1s)

	// AttackGroups splits attackers into sequential groups for the
	// imprecise-authorization attack (Fig. 11: 1 = all at once,
	// 10 = ten at a time). GroupInterval is their spacing (default 3s),
	// GroupDuration how long each attacker floods (default 3s).
	AttackGroups  int
	GroupInterval tvatime.Duration
	GroupDuration tvatime.Duration

	// RequestFraction is TVA's request-channel share (the simulations
	// stress the design at 1%, §5).
	RequestFraction float64

	// GrantKB/GrantTSec are the destination server policy's default
	// authorization (default 32 KB / 10 s, §5.4).
	GrantKB   uint16
	GrantTSec uint8

	// SIFFSecretPeriod is the SIFF router secret lifetime (default 3s).
	SIFFSecretPeriod tvatime.Duration

	// Suite selects capability hashing (default capability.Fast for
	// simulation speed; capability.Crypto is the paper's construction).
	Suite capability.Suite

	// Fault injection: all zeros model a perfect network. LossRate and
	// DupProb are per-packet probabilities on the bottleneck link (both
	// directions, independent per-direction seeded PRNGs); LinkJitter
	// adds a uniform [0, LinkJitter) per-packet extra delay.
	LossRate   float64
	DupProb    float64
	LinkJitter tvatime.Duration

	// RestartAt, if positive, crashes and restarts the left (user-side)
	// router at that virtual time: its output queues are flushed and,
	// under TVA, its flow cache and path-identifier history are lost
	// while capability secrets survive (§3.8).
	RestartAt tvatime.Duration

	// OutageStart/OutageDuration, if the duration is positive, take the
	// bottleneck link down (both directions) for the window; queued and
	// in-flight packets are cut.
	OutageStart    tvatime.Duration
	OutageDuration tvatime.Duration

	// MetricsInterval, if positive, samples per-router gauges and
	// cumulative drop counters every interval of virtual time into
	// Result.Telemetry.Sampler. Sampling is off the forwarding path
	// (its own simulator events), so zero vs non-zero does not change
	// packet-level outcomes.
	MetricsInterval tvatime.Duration
	// MetricsCapacity bounds the sampler ring (rows kept; oldest
	// overwritten). Zero sizes it to Duration/MetricsInterval.
	MetricsCapacity int
	// TraceEvents, if positive, attaches a bounded per-packet tracer
	// of that capacity to the bottleneck link and the destination
	// (Result.Telemetry.Trace).
	TraceEvents int

	// SpanCapacity, if positive, attaches a span flight recorder
	// (internal/trace) of that many retained spans to the whole
	// simulation: every injected packet gets a trace ID and every
	// lifecycle edge — send, verdict, enqueue, dequeue, transmit, drop,
	// demotion, delivery — is recorded (Result.Telemetry.Spans).
	// Emission is allocation-free, but tracing every edge costs a few
	// stores per packet per hop.
	SpanCapacity int

	// DropStormPkts, if positive, arms the drop-storm detector: when
	// the forward bottleneck's enqueue drops grow by at least this many
	// packets within one detection window (MetricsInterval, or 100 ms
	// if metrics are off), Telemetry.DropStorm is latched — tvasim uses
	// it to dump the flight recorder automatically.
	DropStormPkts int

	// TxBatch caps how many packets one interface transmit burst may
	// serve per event-loop visit (netsim.Sim.TxBatch). 0 or 1 is the
	// classic one-event-per-packet loop; larger values collapse
	// quiet-window transmissions without changing any virtual
	// timestamp, so same-seed results and trace dumps are identical at
	// every setting (TestTxBatchTraceIdentical pins this).
	TxBatch int

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumUsers == 0 {
		c.NumUsers = 10
	}
	if c.BottleneckBps == 0 {
		c.BottleneckBps = 10_000_000
	}
	if c.AccessBps == 0 {
		c.AccessBps = 10_000_000
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 10 * tvatime.Millisecond
	}
	if c.AttackRateBps == 0 {
		c.AttackRateBps = 1_000_000
	}
	if c.AttackPktSize == 0 {
		c.AttackPktSize = 1000
	}
	if c.FileKB == 0 {
		c.FileKB = 20
	}
	if c.Duration == 0 {
		c.Duration = 60 * tvatime.Second
	}
	if c.AttackStart == 0 {
		c.AttackStart = tvatime.Second
	}
	if c.AttackGroups == 0 {
		c.AttackGroups = 1
	}
	if c.GroupInterval == 0 {
		c.GroupInterval = 3 * tvatime.Second
	}
	if c.GroupDuration == 0 {
		if c.Attack == AttackImpreciseAuth {
			c.GroupDuration = 3 * tvatime.Second
		} else {
			c.GroupDuration = c.Duration // flood to the end
		}
	}
	if c.RequestFraction == 0 {
		c.RequestFraction = 0.01
	}
	if c.GrantKB == 0 {
		c.GrantKB = 32
	}
	if c.GrantTSec == 0 {
		c.GrantTSec = 10
	}
	if c.SIFFSecretPeriod == 0 {
		c.SIFFSecretPeriod = 3 * tvatime.Second
	}
	if c.Suite.NewKeyed == nil {
		c.Suite = capability.Fast
	}
	return c
}

// TransferRecord is one user file transfer's outcome.
type TransferRecord struct {
	User      int
	Start     tvatime.Time
	End       tvatime.Time
	Completed bool
}

// Duration returns the transfer's elapsed time.
func (t TransferRecord) Duration() tvatime.Duration { return t.End.Sub(t.Start) }

// Result aggregates one run.
type Result struct {
	Cfg       Config
	Transfers []TransferRecord

	// BottleneckUtilization is the forward bottleneck's share of
	// capacity actually used.
	BottleneckUtilization float64
	// BottleneckDrops counts forward bottleneck enqueue drops.
	BottleneckDrops uint64

	// FairnessJain and MaxMinRatio summarize how evenly the legitimate
	// users shared goodput over the whole run: Jain's index
	// (Σx)²/(n·Σx²) of per-user delivered bytes, and the best-served /
	// worst-served ratio (worst clamped to 1 byte).
	FairnessJain float64
	MaxMinRatio  float64

	// Flows is the bottleneck's end-of-run heavy-hitter table, sorted
	// by bytes descending (per-sender bytes, packets, drops and
	// demotions at the congested point; Err bounds the space-saving
	// overcount).
	Flows []flowstats.Sample

	// Telemetry carries the run's observability output: per-reason
	// drop counters, demotion causes, delay histograms, and (when
	// configured) the gauge time series and packet trace.
	Telemetry RunTelemetry
}

// CompletionFraction is the fraction of decided transfers that
// completed (the paper's first metric).
func (r *Result) CompletionFraction() float64 {
	if len(r.Transfers) == 0 {
		return 0
	}
	done := 0
	for _, t := range r.Transfers {
		if t.Completed {
			done++
		}
	}
	return float64(done) / float64(len(r.Transfers))
}

// AvgTransferTime is the mean duration of completed transfers in
// seconds (the paper's second metric). It returns 0 when nothing
// completed.
func (r *Result) AvgTransferTime() float64 {
	var sum float64
	n := 0
	for _, t := range r.Transfers {
		if t.Completed {
			sum += t.Duration().Seconds()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxTransferTime returns the slowest completed transfer in seconds.
func (r *Result) MaxTransferTime() float64 {
	var m float64
	for _, t := range r.Transfers {
		if t.Completed {
			if d := t.Duration().Seconds(); d > m {
				m = d
			}
		}
	}
	return m
}

// Series returns (start-time, duration) points of completed transfers
// ordered by start time — the Fig. 11 time series.
func (r *Result) Series() (startSec, durSec []float64) {
	recs := append([]TransferRecord(nil), r.Transfers...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	for _, t := range recs {
		if t.Completed {
			startSec = append(startSec, t.Start.SecondsF())
			durSec = append(durSec, t.Duration().Seconds())
		}
	}
	return startSec, durSec
}

// SweepPoint is one x-axis point of Figs. 8–10, plus the fairness pair
// (Fig. 11-style: how evenly the survivors shared the bottleneck).
type SweepPoint struct {
	Attackers          int
	CompletionFraction float64
	AvgTransferTime    float64
	FairnessJain       float64
	MaxMinRatio        float64
}

// Sweep runs the config at each attacker count and collects the two
// paper metrics.
func Sweep(base Config, counts []int) []SweepPoint {
	points := make([]SweepPoint, 0, len(counts))
	for _, n := range counts {
		cfg := base
		cfg.NumAttackers = n
		res := Run(cfg)
		points = append(points, SweepPoint{
			Attackers:          n,
			CompletionFraction: res.CompletionFraction(),
			AvgTransferTime:    res.AvgTransferTime(),
			FairnessJain:       res.FairnessJain,
			MaxMinRatio:        res.MaxMinRatio,
		})
	}
	return points
}
