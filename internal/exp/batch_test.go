package exp

import (
	"bytes"
	"testing"
)

// TestTxBatchTraceIdentical pins the Config.TxBatch contract: tx-burst
// batching is an event-scheduling optimization, not a semantic change,
// so a batched run of the same seed produces byte-identical trace
// dumps and identical results — down to every span timestamp.
func TestTxBatchTraceIdentical(t *testing.T) {
	plain := tracedConfig()
	batched := tracedConfig()
	batched.TxBatch = 32

	resPlain := Run(plain)
	resBatched := Run(batched)

	var a, b bytes.Buffer
	if err := resPlain.Telemetry.Spans.WriteDump(&a); err != nil {
		t.Fatal(err)
	}
	if err := resBatched.Telemetry.Spans.WriteDump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace dumps diverge under TxBatch=32: %d vs %d bytes", a.Len(), b.Len())
	}
	if got, want := resBatched.CompletionFraction(), resPlain.CompletionFraction(); got != want {
		t.Fatalf("completion fraction %v batched, %v unbatched", got, want)
	}
	if resBatched.BottleneckDrops != resPlain.BottleneckDrops {
		t.Fatalf("bottleneck drops %d batched, %d unbatched", resBatched.BottleneckDrops, resPlain.BottleneckDrops)
	}
	if len(resBatched.Transfers) != len(resPlain.Transfers) {
		t.Fatalf("transfer count %d batched, %d unbatched", len(resBatched.Transfers), len(resPlain.Transfers))
	}
	for i := range resPlain.Transfers {
		if resBatched.Transfers[i] != resPlain.Transfers[i] {
			t.Fatalf("transfer %d differs: %+v vs %+v", i, resBatched.Transfers[i], resPlain.Transfers[i])
		}
	}
}
