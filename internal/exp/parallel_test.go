package exp

import (
	"fmt"
	"strings"
	"testing"

	"tva/internal/tvatime"
)

// summarize renders a result's observable outputs canonically (the
// Config is excluded: it is an input, and its Suite holds function
// values that cannot be compared).
func summarize(results []*Result) string {
	var b strings.Builder
	for i, r := range results {
		fmt.Fprintf(&b, "run %d: util=%.9f drops=%d transfers=%d\n",
			i, r.BottleneckUtilization, r.BottleneckDrops, len(r.Transfers))
		for _, tr := range r.Transfers {
			fmt.Fprintf(&b, "  u%d %d..%d %v\n", tr.User, tr.Start, tr.End, tr.Completed)
		}
	}
	return b.String()
}

// TestRunManyDeterministicAcrossWorkers runs the same sweep serially
// and with 8 workers and requires byte-identical results: worker count
// must never leak into simulation outcomes.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation integration test skipped in -short mode")
	}
	d := 6 * tvatime.Second
	spec := SweepSpec{
		Base:      Config{Duration: d, AttackRateBps: 2_000_000},
		Schemes:   []Scheme{SchemeTVA, SchemeInternet},
		Attacks:   []Attack{AttackLegacyFlood, AttackRequestFlood},
		Attackers: []int{5},
		Seeds:     []int64{1, 2},
	}
	cfgs := spec.Expand()
	if len(cfgs) != 8 {
		t.Fatalf("grid expanded to %d configs, want 8", len(cfgs))
	}

	serial := summarize(RunMany(cfgs, 1))
	parallel := summarize(RunMany(cfgs, 8))
	if serial != parallel {
		t.Fatalf("serial and 8-worker sweeps diverge:\n--- serial ---\n%s--- parallel ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "transfers=") || strings.Count(serial, "run ") != 8 {
		t.Fatalf("summary malformed:\n%s", serial)
	}
}

// TestSweepParallelMatchesSweep checks the parallel sweep façade
// returns exactly what the serial Sweep does.
func TestSweepParallelMatchesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation integration test skipped in -short mode")
	}
	base := Config{Scheme: SchemeTVA, Attack: AttackLegacyFlood, Duration: 5 * tvatime.Second, Seed: 3}
	counts := []int{1, 4, 8}
	want := Sweep(base, counts)
	got := SweepParallel(base, counts, 4)
	if len(got) != len(want) {
		t.Fatalf("point counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestRunManyOrdering checks results land at their config's index even
// when workers finish out of order.
func TestRunManyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation integration test skipped in -short mode")
	}
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = Config{Duration: 2 * tvatime.Second, NumUsers: i + 1, Seed: int64(i)}
	}
	results := RunMany(cfgs, 3)
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
		if r.Cfg.NumUsers != i+1 {
			t.Fatalf("result %d has NumUsers %d, want %d (misordered)", i, r.Cfg.NumUsers, i+1)
		}
	}
}
