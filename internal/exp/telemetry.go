// Run-level observability: every experiment carries a RunTelemetry
// with reason-attributed drop counters, delay histograms, and (when
// enabled) a virtual-time gauge sampler and a bounded per-packet
// tracer. All of it is preallocated or fixed-size, so instrumented and
// uninstrumented runs execute the same hot path (DESIGN.md §8).
package exp

import (
	"tva/internal/flowstats"
	"tva/internal/metrics"
	"tva/internal/netsim"
	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// RunTelemetry aggregates one run's observability output.
type RunTelemetry struct {
	// SchedDrops attributes the forward bottleneck scheduler's enqueue
	// drops by reason; SchedDrops.Total() equals
	// Result.BottleneckDrops exactly.
	SchedDrops telemetry.DropCounters

	// Demotions counts capability-check failures at TVA routers by
	// cause. A demotion is not a loss — the packet continues as legacy
	// traffic (§3.8) — so these are reported separately from drops.
	Demotions telemetry.DropCounters

	// HostEgressDrops counts packets lost in the hosts' own output
	// queues. Without it that loss is silent and skews goodput.
	HostEgressDrops uint64

	// LinkDrops attributes fault losses — wire loss, down-window cuts,
	// restart flushes — across both routers' interfaces, by reason.
	// These are physical-layer losses, separate from SchedDrops'
	// queue-full enqueue drops, so the SchedDrops/BottleneckDrops
	// equality is unaffected by fault injection.
	LinkDrops telemetry.DropCounters

	// QueueDelay is the distribution of time spent in the forward
	// bottleneck's output queue (virtual time, enqueue to dequeue).
	QueueDelay telemetry.Histogram

	// Delivery is the end-to-end latency distribution of packets
	// arriving at the destination host (send stamp to delivery).
	Delivery telemetry.Histogram

	// GoodputBytes is the cumulative wire bytes delivered to the
	// destination host (attack payloads included; compare against
	// transfer records to separate useful work).
	GoodputBytes uint64

	// Flows is the bottleneck's per-sender accounting unit: top-K
	// bytes/pkts/drops/demotions plus the count-min traffic sketch,
	// fed by the left router's capability engine and the bottleneck
	// scheduler's drop sites. Always on (O(K) memory, allocation-free
	// recording); snapshot via Result.Flows.
	Flows *flowstats.Collector

	// Fairness is the exact per-window fairness engine over the
	// legitimate users (the simulator knows the population, so this is
	// ground truth rather than the overlay's tracked-sender
	// approximation). Rolled once per metrics window; whole-run
	// indices land in Result.FairnessJain / Result.MaxMinRatio.
	Fairness *flowstats.Fairness

	// Sampler holds the virtual-time gauge series; nil unless
	// Config.MetricsInterval > 0.
	Sampler *telemetry.Sampler

	// Metrics is the streaming time-series registry, carrying the same
	// series names the overlay router serves at /metrics (shared-name
	// contract: tvatop and offline tooling read both data planes
	// identically). Ticked at MetricsInterval of virtual time; nil
	// unless Config.MetricsInterval > 0.
	Metrics *metrics.Registry

	// Health is the attack-onset detector, ticked just before Metrics
	// each interval so the registry's tva_health_state row reflects the
	// state after that interval's observation; nil unless metrics are
	// on. Its transition log is the run's health timeline.
	Health *metrics.Detector

	// Trace holds the last Config.TraceEvents per-packet events at the
	// bottleneck and destination; nil unless TraceEvents > 0.
	Trace *telemetry.RingTracer

	// Spans is the packet-lifecycle flight recorder: every injected
	// packet's send, verdict, queue, transmit, drop, demotion, and
	// delivery edges; nil unless Config.SpanCapacity > 0.
	Spans *trace.Recorder

	// DropStorm reports that the drop-storm detector fired: the forward
	// bottleneck's enqueue drops grew by at least Config.DropStormPkts
	// within one detection window. DropStormAt is the end of the first
	// such window. tvasim dumps the flight recorder when this latches.
	DropStorm   bool
	DropStormAt tvatime.Time
}

// userIndex maps a legitimate user's address back to its index (the
// inverse of UserAddr); any other address — attackers, the colluder —
// returns -1, which the fairness engine ignores.
func userIndex(addr packet.Addr) int {
	a := uint32(addr) - 1
	if a>>16 != 10<<8 { // not in 10.0.0.0/16
		return -1
	}
	return int(a & 0xffff)
}

// instrumentDest wraps the destination host's handler to record
// end-to-end latency, delivered bytes, per-sender fairness
// accounting, and deliver-trace events.
func (b *builder) instrumentDest(dest *host, tel *RunTelemetry, tracer *telemetry.RingTracer) {
	sim := b.sim
	inner := dest.node.Handler
	dest.node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
		if pkt.SentAt > 0 {
			tel.Delivery.Observe(sim.Now().Sub(pkt.SentAt))
		}
		tel.GoodputBytes += uint64(pkt.Size)
		tel.Fairness.Account(userIndex(pkt.Src), uint64(pkt.Size))
		if tracer != nil {
			tracer.Record(telemetry.Event{
				Time:  sim.Now(),
				Kind:  telemetry.EventDeliver,
				Src:   uint32(pkt.Src),
				Dst:   uint32(pkt.Dst),
				Class: uint8(pkt.Class),
				Size:  pkt.Size,
			})
		}
		inner.Receive(pkt, in)
	})
}

// traceDelivery wraps a host node's handler so every traced packet
// terminating there emits the deliver span, closing its lifecycle
// chain. A no-op without a recorder, so untraced runs keep the
// original handler and its cost profile.
func (b *builder) traceDelivery(n *netsim.Node) {
	rec := b.spans
	if rec == nil {
		return
	}
	sim := b.sim
	inner := n.Handler
	n.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
		if pkt.TraceID != 0 {
			sp := sim.SpanFor(pkt, trace.EdgeDeliver)
			if in != nil {
				sp.Hop = in.Hop
			}
			rec.Record(sp)
		}
		inner.Receive(pkt, in)
	})
}

// watchDropStorm arms the drop-storm detector on the forward
// bottleneck: each window it compares the enqueue-drop delta against
// Config.DropStormPkts and latches tel.DropStorm on the first
// crossing. The window is MetricsInterval when metrics are on, else
// 100 ms.
func (b *builder) watchDropStorm(tel *RunTelemetry, lr *netsim.Iface) {
	if b.cfg.DropStormPkts <= 0 {
		return
	}
	threshold := uint64(b.cfg.DropStormPkts)
	window := b.cfg.MetricsInterval
	if window <= 0 {
		window = 100 * tvatime.Millisecond
	}
	sim := b.sim
	var last uint64
	stop := sim.Every(window, func() {
		cur := lr.Stats.DroppedPkts
		if !tel.DropStorm && cur-last >= threshold {
			tel.DropStorm = true
			tel.DropStormAt = sim.Now()
		}
		last = cur
	})
	b.stops = append(b.stops, stop)
}

// startSampler registers the gauge set and schedules periodic
// snapshots. Gauge registration order fixes the output column order,
// so it must not depend on map iteration or timing: scheduler-class
// gauges, flow-cache occupancy, goodput, then the cumulative
// per-reason drop counters of the forward bottleneck.
func (b *builder) startSampler(tel *RunTelemetry, lr *netsim.Iface) {
	cfg := b.cfg
	if cfg.MetricsInterval <= 0 {
		return
	}
	capacity := cfg.MetricsCapacity
	if capacity <= 0 {
		capacity = int(cfg.Duration/cfg.MetricsInterval) + 2
		if capacity > 1<<16 {
			capacity = 1 << 16
		}
	}
	s := telemetry.NewSampler(capacity)
	tel.Sampler = s
	sim := b.sim

	if tva, ok := lr.Sched.(*sched.TVA); ok {
		s.AddGauge("queue_request_pkts", func() float64 { return float64(tva.RequestBacklog()) })
		s.AddGauge("queue_regular_pkts", func() float64 { return float64(tva.RegularBacklog()) })
		s.AddGauge("queue_legacy_pkts", func() float64 { return float64(tva.LegacyBacklog()) })
		s.AddGauge("regular_queues", func() float64 { return float64(tva.RegularQueues()) })
		s.AddGauge("token_bucket_bytes", func() float64 { return tva.TokenLevel(sim.Now()) })
	} else {
		s.AddGauge("queue_pkts", func() float64 { return float64(lr.Sched.Len()) })
	}
	if len(b.tvaRouters) > 0 {
		cache := b.tvaRouters[0].Cache()
		s.AddGauge("flowcache_entries", func() float64 { return float64(cache.Len()) })
	}
	s.AddGauge("goodput_bytes", func() float64 { return float64(tel.GoodputBytes) })
	if rc, ok := lr.Sched.(sched.ReasonCounter); ok {
		drops := rc.DropReasons()
		// Start past DropNone: nothing may ever be attributed to the
		// explicit no-reason value, so it gets no gauge.
		for i := int(telemetry.DropNone) + 1; i < telemetry.NumDropReasons; i++ {
			reason := telemetry.DropReason(i)
			s.AddGauge("drops_"+reason.String(), func() float64 { return float64(drops.Get(reason)) })
		}
		s.AddGauge("drops_total", func() float64 { return float64(drops.Total()) })
	}
	rl := lr.Peer
	s.AddGauge("link_fault_drops", func() float64 {
		return float64(lr.FaultDrops.Total() + rl.FaultDrops.Total())
	})
	// Batching efficiency: mean packets per transmit-loop visit (1.0
	// when TxBatch <= 1; approaches TxBatch under sustained backlog).
	s.AddGauge("tx_burst_fill", sim.TxBurstFill)

	stop := sim.Every(cfg.MetricsInterval, func() { s.Sample(sim.Now()) })
	b.stops = append(b.stops, stop)
	// One final snapshot after the run so the last row reflects the
	// final counter values (the consistency invariant tvasim checks).
	b.finalSample = func() { s.Sample(sim.Now()) }
}

// startMetrics builds the streaming registry and health detector for
// the run — the virtual-time twin of overlay.Router.Metrics. Series
// registration order is fixed (never map iteration), so same-seed
// runs emit byte-identical CSV/JSON/exposition. completion reports
// the live fraction of decided legitimate transfers that completed —
// the run's service-level objective, sampled as
// tva_legit_completion_fraction.
func (b *builder) startMetrics(tel *RunTelemetry, lr *netsim.Iface, completion func() float64) {
	cfg := b.cfg
	if cfg.MetricsInterval <= 0 {
		return
	}
	window := cfg.MetricsCapacity
	if window <= 0 {
		window = int(cfg.Duration/cfg.MetricsInterval) + 2
		if window > 1<<16 {
			window = 1 << 16
		}
	}
	reg := metrics.New(window)
	det := metrics.NewDetector(metrics.DetectorConfig{})
	tel.Metrics = reg
	tel.Health = det
	sim := b.sim

	// Health transitions become trace spans too, so a flight-recorder
	// dump shows the onset verdicts interleaved with packet lifecycles.
	if rec := b.spans; rec != nil {
		det.OnTransition = func(tr metrics.Transition) {
			rec.Record(trace.Span{
				Time:  tr.At,
				Edge:  trace.EdgeHealth,
				Kind:  uint8(tr.From) + 1,
				Class: uint8(tr.To),
			})
		}
	}

	// Bottleneck scheduler occupancy (shared names with the overlay's
	// per-port gauges; the sim plane has one bottleneck, so no port
	// label).
	if tva, ok := lr.Sched.(*sched.TVA); ok {
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("class", "request"),
			"Backlogged packets at the forward bottleneck, by class.",
			func() float64 { return float64(tva.RequestBacklog()) }))
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("class", "regular"),
			"Backlogged packets at the forward bottleneck, by class.",
			func() float64 { return float64(tva.RegularBacklog()) }))
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("class", "legacy"),
			"Backlogged packets at the forward bottleneck, by class.",
			func() float64 { return float64(tva.LegacyBacklog()) }))
		mustReg(reg.Gauge(metrics.NameRegularQueues, nil,
			"Live per-destination fair queues.",
			func() float64 { return float64(tva.RegularQueues()) }))
		mustReg(reg.Gauge(metrics.NameTokenBucket, nil,
			"Request-channel token bucket level in bytes.",
			func() float64 { return tva.TokenLevel(sim.Now()) }))
	} else {
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("class", "all"),
			"Backlogged packets at the forward bottleneck.",
			func() float64 { return float64(lr.Sched.Len()) }))
	}
	if len(b.tvaRouters) > 0 {
		cache := b.tvaRouters[0].Cache()
		mustReg(reg.Gauge(metrics.NameFlowCacheEntries, nil,
			"Live flow-cache entries at the bottleneck router.",
			func() float64 { return float64(cache.Len()) }))
	}
	mustReg(reg.Counter(metrics.NameGoodputBytes, nil,
		"Wire bytes delivered to the destination host.",
		func() float64 { return float64(tel.GoodputBytes) }))

	// Reason-attributed drops and demotions, same labelled series the
	// overlay registers.
	if rc, ok := lr.Sched.(sched.ReasonCounter); ok {
		drops := rc.DropReasons()
		for i := int(telemetry.DropNone) + 1; i < telemetry.NumDropReasons; i++ {
			reason := telemetry.DropReason(i)
			mustReg(reg.Counter(metrics.NameSchedDrops, metrics.L("reason", reason.String()),
				"Packets dropped by the bottleneck scheduler, by attributed reason.",
				func() float64 { return float64(drops.Get(reason)) }))
		}
	}
	if routers := b.tvaRouters; len(routers) > 0 {
		for i := int(telemetry.DropNone) + 1; i < telemetry.NumDropReasons; i++ {
			reason := telemetry.DropReason(i)
			mustReg(reg.Counter(metrics.NameDemotions, metrics.L("reason", reason.String()),
				"Packets demoted to legacy service, by attributed cause.",
				func() float64 {
					var t uint64
					for _, r := range routers {
						t += r.Demotions.Get(reason)
					}
					return float64(t)
				}))
		}
	}
	rl := lr.Peer
	mustReg(reg.Counter(metrics.NameLinkFaultDrops, nil,
		"Physical-layer fault losses on the bottleneck link, both directions.",
		func() float64 {
			return float64(lr.FaultDrops.Total() + rl.FaultDrops.Total())
		}))
	mustReg(reg.Gauge(metrics.NameTxBurstFill, nil,
		"Mean packets per transmit-loop visit.", sim.TxBurstFill))

	// Queue-wait quantiles, streamed per packet from the bottleneck's
	// transmit path (the sketch hook costs one nil check when unused).
	sk := new(metrics.Sketch)
	lr.WaitSketch = sk
	mustReg(reg.SketchQuantiles(metrics.NameQueueWait, nil,
		"Forward-bottleneck output-queue wait quantiles in nanoseconds.",
		sk, 0.5, 0.99))

	// Per-sender flow accounting and the streaming fairness indices.
	// The gauges read fields the tick closure below refreshes once per
	// window, so registry sampling itself stays trivially cheap and
	// the fairness window roll happens exactly once per interval.
	flows := tel.Flows
	fair := tel.Fairness
	fg := &struct{ tracked, bytes, topShare, jain, ratio float64 }{jain: 1, ratio: 1}
	rollFlows := func() {
		fair.Roll()
		fg.tracked = float64(flows.Tracked())
		fg.bytes = float64(flows.TotalBytes())
		fg.topShare = flows.TopShare()
		fg.jain = fair.Jain()
		fg.ratio = fair.MaxMinRatio()
	}
	mustReg(reg.Gauge(metrics.NameFlowTrackedSenders, nil,
		"Senders live in the bottleneck's top-K flow table.",
		func() float64 { return fg.tracked }))
	mustReg(reg.Counter(metrics.NameFlowBytes, nil,
		"Bytes observed by the bottleneck's per-sender accounting.",
		func() float64 { return fg.bytes }))
	mustReg(reg.Gauge(metrics.NameFlowTopShare, nil,
		"Top tracked sender's share of all observed bytes.",
		func() float64 { return fg.topShare }))
	mustReg(reg.Gauge(metrics.NameFlowFairnessJain, nil,
		"Jain's fairness index over legit-sender goodput, last window.",
		func() float64 { return fg.jain }))
	mustReg(reg.Gauge(metrics.NameFlowMaxMinRatio, nil,
		"Best/worst legit-sender goodput ratio, last window.",
		func() float64 { return fg.ratio }))

	// The live SLO and the health series.
	mustReg(reg.Gauge(metrics.NameLegitCompletion, nil,
		"Fraction of decided legitimate transfers that completed.",
		completion))
	mustReg(reg.Gauge(metrics.NameHealthState, nil,
		"Attack-onset health: 0=healthy 1=degraded 2=under-attack 3=recovered.",
		det.StateValue))
	mustReg(reg.Counter(metrics.NameHealthTransitions, nil,
		"Health-state transitions since start.",
		func() float64 { return float64(len(det.Transitions()) + det.Overflow()) }))

	// Detector inputs: cumulative bottleneck drops and request-channel
	// backlog pressure.
	dropsTotal := func() float64 { return float64(lr.Stats.DroppedPkts) }
	if rc, ok := lr.Sched.(sched.ReasonCounter); ok {
		drops := rc.DropReasons()
		dropsTotal = func() float64 { return float64(drops.Total()) }
	}
	pressure := func() float64 { return 0 }
	if tva, ok := lr.Sched.(*sched.TVA); ok {
		pressure = func() float64 { return float64(tva.RequestBacklog()) }
	}

	var lastTick tvatime.Time = -1
	tick := func() {
		now := sim.Now()
		if now == lastTick {
			return // end-of-run sample landing on a periodic tick
		}
		lastTick = now
		rollFlows()
		det.ObserveTick(now, dropsTotal(), pressure())
		reg.Tick(now)
	}
	stop := sim.Every(cfg.MetricsInterval, tick)
	b.stops = append(b.stops, stop)
	b.finalMetrics = tick
}

// mustReg panics on a registration error: startMetrics registers
// everything before the registry's first Tick, so an error here is a
// programming bug (duplicate series), not runtime input.
func mustReg(err error) {
	if err != nil {
		panic(err)
	}
}

// finishTelemetry copies end-of-run counter snapshots into tel.
func (b *builder) finishTelemetry(tel *RunTelemetry, lr *netsim.Iface) {
	if b.finalSample != nil {
		b.finalSample()
	}
	if b.finalMetrics != nil {
		b.finalMetrics()
	}
	if rc, ok := lr.Sched.(sched.ReasonCounter); ok {
		tel.SchedDrops = *rc.DropReasons()
	}
	// Fault losses can happen on any interface either router owns (the
	// restart flush hits the left router's access links too).
	for _, ifc := range lr.Node.Ifaces() {
		tel.LinkDrops.Merge(&ifc.FaultDrops)
	}
	for _, ifc := range lr.Peer.Node.Ifaces() {
		tel.LinkDrops.Merge(&ifc.FaultDrops)
	}
	for _, rtr := range b.tvaRouters {
		tel.Demotions.Merge(&rtr.Demotions)
	}
	for _, q := range b.hostEgs {
		if dc, ok := q.(sched.DropCounter); ok {
			tel.HostEgressDrops += dc.DropCount()
		}
	}
}
