// Headless stream driver for cross-plane validation (internal/xcheck).
// Run() reproduces the paper's file-transfer methodology; RunStream
// instead drives the workload the loopback overlay deployment can also
// run exactly: each user streams fixed-size raw messages through its
// capability shim to a granting destination while legacy attackers
// flood, and the result is structured counts — messages sent and
// delivered per flow, drops, demotions, queue-wait sketch — rather
// than transfer records. Keeping the workload identical on both planes
// is what makes their metric series comparable.
package exp

import (
	"strconv"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/flowstats"
	"tva/internal/metrics"
	"tva/internal/netsim"
	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// StreamConfig parameterizes one stream run. It is deliberately a
// subset of Config: only knobs the overlay plane can also honour.
type StreamConfig struct {
	Users       int              // legitimate senders (default 10)
	MsgBytes    int              // raw payload per message (default 512)
	MsgInterval tvatime.Duration // per-user send spacing (default 50 ms)

	Attackers     int
	AttackRateBps int64            // per attacker (default 1 Mb/s)
	AttackPktSize int              // attack payload bytes (default 1000)
	AttackStart   tvatime.Duration // default 1 s

	BottleneckBps int64            // default 10 Mb/s
	AccessBps     int64            // default 10 Mb/s
	LinkDelay     tvatime.Duration // default 2 ms

	// Duration is total virtual time; senders and attackers stop Drain
	// before the end so in-flight traffic settles inside the window
	// (defaults 3 s / 500 ms). The overlay runner mirrors both.
	Duration tvatime.Duration
	Drain    tvatime.Duration

	RequestFraction float64 // default 0.05 (the overlay router default)
	GrantKB         uint16  // default 64 (outlives a scenario: the overlay shim cannot renew)
	GrantTSec       uint8   // default 10

	MetricsInterval tvatime.Duration // default 100 ms
	SpanCapacity    int

	Suite capability.Suite
	Seed  int64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Users == 0 {
		c.Users = 10
	}
	if c.MsgBytes == 0 {
		c.MsgBytes = 512
	}
	if c.MsgInterval == 0 {
		c.MsgInterval = 50 * tvatime.Millisecond
	}
	if c.AttackRateBps == 0 {
		c.AttackRateBps = 1_000_000
	}
	if c.AttackPktSize == 0 {
		c.AttackPktSize = 1000
	}
	if c.AttackStart == 0 {
		c.AttackStart = tvatime.Second
	}
	if c.BottleneckBps == 0 {
		c.BottleneckBps = 10_000_000
	}
	if c.AccessBps == 0 {
		c.AccessBps = 10_000_000
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 2 * tvatime.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 3 * tvatime.Second
	}
	if c.Drain == 0 {
		c.Drain = 500 * tvatime.Millisecond
	}
	if c.RequestFraction == 0 {
		c.RequestFraction = 0.05
	}
	if c.GrantKB == 0 {
		c.GrantKB = 64
	}
	if c.GrantTSec == 0 {
		c.GrantTSec = 10
	}
	if c.MetricsInterval == 0 {
		c.MetricsInterval = 100 * tvatime.Millisecond
	}
	if c.Suite.NewKeyed == nil {
		c.Suite = capability.Fast
	}
	return c
}

// expConfig maps the stream knobs onto the simulation Config (TVA
// scheme, full deployment).
func (c StreamConfig) expConfig() Config {
	return Config{
		Scheme:          SchemeTVA,
		Attack:          AttackLegacyFlood,
		NumUsers:        c.Users,
		NumAttackers:    c.Attackers,
		BottleneckBps:   c.BottleneckBps,
		AccessBps:       c.AccessBps,
		LinkDelay:       c.LinkDelay,
		AttackRateBps:   c.AttackRateBps,
		AttackPktSize:   c.AttackPktSize,
		Duration:        c.Duration,
		AttackStart:     c.AttackStart,
		RequestFraction: c.RequestFraction,
		GrantKB:         c.GrantKB,
		GrantTSec:       c.GrantTSec,
		MetricsInterval: c.MetricsInterval,
		SpanCapacity:    c.SpanCapacity,
		Suite:           c.Suite,
		Seed:            c.Seed,
	}.withDefaults()
}

// FlowCount is one sender's message tally.
type FlowCount struct {
	Addr      packet.Addr
	Sent      uint64
	Delivered uint64
}

// StreamResult is one stream run's structured outcome.
type StreamResult struct {
	Cfg StreamConfig

	// LegitSent/LegitDelivered count full-size user messages injected
	// and arriving at the destination (capability knocks excluded).
	LegitSent      uint64
	LegitDelivered uint64
	// AttackSent/AttackDelivered count attacker flood packets.
	AttackSent      uint64
	AttackDelivered uint64

	// PerFlow is indexed by user; PerFlow[i].Addr == UserAddr(i).
	PerFlow []FlowCount

	BottleneckUtilization float64
	BottleneckDrops       uint64

	// WaitSketch is the forward bottleneck's queue-wait distribution
	// (nanoseconds of virtual time), nil when metrics are off.
	WaitSketch *metrics.Sketch

	Telemetry RunTelemetry
}

// DeliveredFraction is delivered/sent for legitimate messages (1 when
// nothing was sent).
func (r *StreamResult) DeliveredFraction() float64 {
	if r.LegitSent == 0 {
		return 1
	}
	return float64(r.LegitDelivered) / float64(r.LegitSent)
}

// RunStream executes one stream scenario on the simulator plane.
func RunStream(scfg StreamConfig) *StreamResult {
	scfg = scfg.withDefaults()
	cfg := scfg.expConfig()
	sim := netsim.New(cfg.Seed + 1)
	b := &builder{cfg: cfg, sim: sim}

	tel := RunTelemetry{
		Flows:    flowstats.New(flowstats.DefaultTopK, flowstats.DefaultSketchWidth),
		Fairness: flowstats.NewFairness(cfg.NumUsers),
	}
	if cfg.SpanCapacity > 0 {
		rec := trace.NewRecorder(cfg.SpanCapacity)
		sim.Spans = rec
		tel.Spans = rec
		b.spans = rec
	}

	left, _ := b.newRouterNode("L", true)
	right, _ := b.newRouterNode("R", true)
	lr, rl := netsim.Connect(left, right, cfg.BottleneckBps, cfg.LinkDelay,
		b.linkSched(cfg.BottleneckBps), b.linkSched(cfg.BottleneckBps))
	left.SetDefault(lr)
	right.SetDefault(rl)
	lr.QueueDelay = &tel.QueueDelay

	// Same accounting points as Run: the left engine and the forward
	// bottleneck's scheduler.
	if len(b.tvaRouters) > 0 {
		b.tvaRouters[0].Flows = tel.Flows
	}
	switch q := lr.Sched.(type) {
	case *sched.TVA:
		q.Flows = tel.Flows
	case *sched.SIFF:
		q.Flows = tel.Flows
	case *sched.DropTail:
		q.Flows = tel.Flows
	}

	attachLeft := func(h *host) {
		hi, li := netsim.Connect(h.node, left, cfg.AccessBps, cfg.LinkDelay,
			b.hostEgress(), b.linkSched(cfg.AccessBps))
		h.node.SetDefault(hi)
		left.AddRoute(h.addr, li)
	}
	attachRight := func(h *host) {
		hi, ri := netsim.Connect(h.node, right, cfg.AccessBps, cfg.LinkDelay,
			b.hostEgress(), b.linkSched(cfg.AccessBps))
		h.node.SetDefault(hi)
		right.AddRoute(h.addr, ri)
	}

	// Destination: grants the default allowance; unlike Run it never
	// blacklists raw senders — the overlay host has no misbehaviour
	// detector, and the planes must apply identical policy.
	destPolicy := core.NewServerPolicy()
	destPolicy.GrantKB = cfg.GrantKB
	destPolicy.GrantTSec = cfg.GrantTSec
	dest := newHost(sim, "dest", DestAddr, destPolicy, cfg)

	res := &StreamResult{Cfg: scfg, PerFlow: make([]FlowCount, scfg.Users)}
	userIdx := make(map[packet.Addr]int, scfg.Users)
	for i := 0; i < scfg.Users; i++ {
		res.PerFlow[i].Addr = UserAddr(i)
		userIdx[UserAddr(i)] = i
	}
	dest.onRaw = func(src packet.Addr, size int, demoted bool) {
		if i, ok := userIdx[src]; ok {
			if size >= packet.OuterHdrLen+scfg.MsgBytes {
				res.PerFlow[i].Delivered++
				res.LegitDelivered++
			}
			return
		}
		if size >= packet.OuterHdrLen+scfg.AttackPktSize {
			res.AttackDelivered++
		}
	}
	b.instrumentDest(dest, &tel, nil)
	b.traceDelivery(dest.node)
	attachRight(dest)

	// Legitimate streamers: while unauthorized, knock (a bare request
	// the shim retransmits) at most once per 100 ms; once granted,
	// stream full-size messages at the configured pace. Sent counts
	// only full-size messages — the same rule the overlay runner uses.
	sendStop := tvatime.Time(cfg.Duration - scfg.Drain)
	for i := 0; i < scfg.Users; i++ {
		policy := core.NewClientPolicy()
		policy.Window = cfg.Duration + 120*tvatime.Second
		u := newHost(sim, "user"+strconv.Itoa(i), UserAddr(i), policy, cfg)
		u.onRaw = func(packet.Addr, int, bool) {}
		b.traceDelivery(u.node)
		attachLeft(u)

		idx := i
		var lastKnock tvatime.Time = -tvatime.Time(tvatime.Second)
		flood(sim, 0, sendStop, scfg.MsgInterval, func() {
			if u.hasCaps(DestAddr) {
				u.sendRaw(DestAddr, scfg.MsgBytes)
				res.PerFlow[idx].Sent++
				res.LegitSent++
				return
			}
			if sim.Now().Sub(lastKnock) >= 100*tvatime.Millisecond {
				lastKnock = sim.Now()
				u.sendRaw(DestAddr, 0)
			}
		})
	}

	// Attackers: the legacy flood of §5.1, with injection counted.
	atkInterval := tvatime.Duration(int64(cfg.AttackPktSize) * 8 * int64(tvatime.Second) / cfg.AttackRateBps)
	for i := 0; i < scfg.Attackers; i++ {
		node := sim.NewNode("atk" + strconv.Itoa(i))
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
			packet.Release(pkt) // reverse traffic sink
		})
		b.traceDelivery(node)
		h := &host{addr: AttackerAddr(i), node: node}
		attachLeft(h)
		addr := h.addr
		flood(sim, tvatime.Time(cfg.AttackStart), sendStop, atkInterval, func() {
			pkt := packet.AcquirePacket()
			pkt.Src, pkt.Dst, pkt.TTL = addr, DestAddr, 64
			pkt.Proto = packet.ProtoRaw
			pkt.Size = packet.OuterHdrLen + cfg.AttackPktSize
			pkt.SentAt = sim.Now()
			node.Send(pkt)
			res.AttackSent++
		})
	}

	b.startMetrics(&tel, lr, func() float64 {
		if res.LegitSent == 0 {
			return 1
		}
		return float64(res.LegitDelivered) / float64(res.LegitSent)
	})

	sim.Run(tvatime.Time(cfg.Duration))
	for _, stop := range b.stops {
		stop()
	}
	b.finishTelemetry(&tel, lr)

	res.BottleneckUtilization = lr.Utilization(cfg.Duration)
	res.BottleneckDrops = lr.Stats.DroppedPkts
	res.WaitSketch = lr.WaitSketch
	res.Telemetry = tel
	return res
}
