// Topology construction and the simulation driver: the Fig. 7 dumbbell
// with 10 legitimate users, 1–100 attackers, a destination and a
// colluder behind a 10 Mb/s bottleneck.
package exp

import (
	"strconv"

	"tva/internal/core"
	"tva/internal/flowstats"
	"tva/internal/netsim"
	"tva/internal/packet"
	"tva/internal/pathid"
	"tva/internal/pushback"
	"tva/internal/sched"
	"tva/internal/siff"
	"tva/internal/tcp"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// Well-known addresses of the dumbbell.
var (
	DestAddr     = packet.AddrFrom(192, 168, 0, 1)
	ColluderAddr = packet.AddrFrom(192, 168, 0, 2)
)

// UserAddr returns the i-th legitimate user's address.
func UserAddr(i int) packet.Addr { return packet.AddrFrom(10, 0, byte(i>>8), byte(i)) + 1 }

// AttackerAddr returns the i-th attacker's address.
func AttackerAddr(i int) packet.Addr { return packet.AddrFrom(11, 0, byte(i>>8), byte(i)) + 1 }

// DestPort is the destination's service port.
const DestPort = 80

// rawFloodThreshold separates attack payloads from bare protocol
// packets in the destination's misbehaviour detector.
const rawFloodThreshold = 200

// builder carries run-scoped construction state.
type builder struct {
	cfg Config
	sim *netsim.Sim

	tvaRouters  []*core.Router
	siffRouters []*siff.Router
	taggerSeed  uint64
	stops       []func() // periodic-ticker stops to run after the sim

	hostEgs      []sched.Scheduler // host egress queues (silent-loss audit)
	tracer       telemetry.Tracer  // nil unless cfg.TraceEvents > 0
	spans        *trace.Recorder   // nil unless cfg.SpanCapacity > 0
	finalSample  func()            // end-of-run sampler snapshot
	finalMetrics func()            // end-of-run registry/health tick
}

// linkSched builds the scheme's output scheduler for a link direction
// owned by an upgraded router; legacy boxes get drop-tail.
func (b *builder) linkSched(bps int64) sched.Scheduler {
	return b.linkSchedFor(bps, true)
}

func (b *builder) linkSchedFor(bps int64, deployed bool) sched.Scheduler {
	if !deployed {
		return sched.NewDropTailPkts(50)
	}
	switch b.cfg.Scheme {
	case SchemeTVA:
		return sched.NewTVA(sched.TVAConfig{
			LinkBps:           bps,
			RequestFraction:   b.cfg.RequestFraction,
			RegularQueueBytes: 64 * 1024,
		})
	case SchemeSIFF:
		return sched.NewSIFF(100, 50)
	default:
		return sched.NewDropTailPkts(50)
	}
}

// hostEgress is a host's own output queue (hosts self-pace). The
// builder keeps every one so end-of-run accounting can surface drops
// that happen before traffic even reaches a router.
func (b *builder) hostEgress() sched.Scheduler {
	q := sched.NewDropTailPkts(128)
	b.hostEgs = append(b.hostEgs, q)
	return q
}

// newRouterNode builds a router node for the scheme; an undeployed
// router is a plain legacy forwarder regardless of scheme (§8
// incremental deployment). For pushback the returned node must
// additionally be wired with attachPushback.
func (b *builder) newRouterNode(name string, deployed bool) (*netsim.Node, *pushback.Router) {
	node := b.sim.NewNode(name)
	if !deployed {
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
			if pkt.TTL == 0 {
				packet.Release(pkt)
				return
			}
			pkt.TTL--
			node.Send(pkt)
		})
		return node, nil
	}
	switch b.cfg.Scheme {
	case SchemeTVA:
		b.taggerSeed++
		rtr := core.NewRouter(core.RouterConfig{
			ID:            uint8(b.taggerSeed),
			Suite:         b.cfg.Suite,
			CacheEntries:  4096,
			TrustBoundary: true,
			Tagger:        pathid.NewSeeded(uint64(b.cfg.Seed)*1315423911 + b.taggerSeed),
		})
		rtr.Tracer = b.tracer
		rtr.Spans = b.spans
		b.tvaRouters = append(b.tvaRouters, rtr)
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
			if pkt.TTL == 0 {
				packet.Release(pkt)
				return
			}
			pkt.TTL--
			rtr.Process(pkt, in.Index, b.sim.Now())
			node.Send(pkt)
		})
		return node, nil
	case SchemeSIFF:
		rtr := siff.NewRouter(b.cfg.Suite, b.cfg.SIFFSecretPeriod)
		b.siffRouters = append(b.siffRouters, rtr)
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
			if pkt.TTL == 0 {
				packet.Release(pkt)
				return
			}
			pkt.TTL--
			if _, drop := rtr.Process(pkt, b.sim.Now()); drop {
				packet.Release(pkt)
				return
			}
			node.Send(pkt)
		})
		return node, nil
	case SchemePushback:
		pr := pushback.NewRouter(b.cfg.BottleneckBps, pushback.Config{})
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
			if pkt.TTL == 0 {
				packet.Release(pkt)
				return
			}
			pkt.TTL--
			if !pr.Arrival(pkt, in.Index, b.sim.Now()) {
				packet.Release(pkt)
				return
			}
			node.Send(pkt)
		})
		return node, pr
	default:
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
			if pkt.TTL == 0 {
				packet.Release(pkt)
				return
			}
			pkt.TTL--
			node.Send(pkt)
		})
		return node, nil
	}
}

// attachPushback wires a pushback router's control loop to its
// congested output interface.
func (b *builder) attachPushback(pr *pushback.Router, out *netsim.Iface) {
	if pr == nil {
		return
	}
	out.OnDrop = pr.RecordDrop
	var lastSent uint64
	stop := b.sim.Every(pr.Interval(), func() {
		pr.RecordSent(out.Stats.SentBytes - lastSent)
		lastSent = out.Stats.SentBytes
		pr.Tick(b.sim.Now())
	})
	b.stops = append(b.stops, stop)
}

// Run executes one simulation and returns its metrics.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	sim := netsim.New(cfg.Seed + 1)
	sim.TxBatch = cfg.TxBatch
	b := &builder{cfg: cfg, sim: sim}

	// Per-sender accounting is always on: O(K) memory, allocation-free
	// recording, and it never changes a packet's fate — so instrumented
	// and plain runs stay packet-for-packet identical.
	tel := RunTelemetry{
		Flows:    flowstats.New(flowstats.DefaultTopK, flowstats.DefaultSketchWidth),
		Fairness: flowstats.NewFairness(cfg.NumUsers),
	}
	var tracer *telemetry.RingTracer
	if cfg.TraceEvents > 0 {
		tracer = telemetry.NewRingTracer(cfg.TraceEvents)
		tel.Trace = tracer
		b.tracer = tracer
	}
	// The span recorder must exist before any topology is built: Connect
	// registers each interface as a hop at construction time.
	if cfg.SpanCapacity > 0 {
		rec := trace.NewRecorder(cfg.SpanCapacity)
		sim.Spans = rec
		tel.Spans = rec
		b.spans = rec
	}

	// Routers (possibly only partially deployed, §8).
	leftDeployed := cfg.Deployment != DeployNone
	rightDeployed := cfg.Deployment == DeployFull
	left, prLeft := b.newRouterNode("L", leftDeployed)
	right, _ := b.newRouterNode("R", rightDeployed)

	// Bottleneck link (Fig. 7).
	lr, rl := netsim.Connect(left, right, cfg.BottleneckBps, cfg.LinkDelay,
		b.linkSchedFor(cfg.BottleneckBps, leftDeployed),
		b.linkSchedFor(cfg.BottleneckBps, rightDeployed))
	left.SetDefault(lr)
	right.SetDefault(rl)
	b.attachPushback(prLeft, lr)

	// Per-sender accounting watches the congested point: the left
	// router's engine (TVA observes/demotes there) and the forward
	// bottleneck's scheduler (all schemes drop there).
	if len(b.tvaRouters) > 0 {
		b.tvaRouters[0].Flows = tel.Flows
	}
	switch q := lr.Sched.(type) {
	case *sched.TVA:
		q.Flows = tel.Flows
	case *sched.SIFF:
		q.Flows = tel.Flows
	case *sched.DropTail:
		q.Flows = tel.Flows
	}

	lr.QueueDelay = &tel.QueueDelay
	if tracer != nil {
		lr.Tracer = tracer
		lr.TraceID = 1 // the left (bottleneck-facing) router
	}

	b.applyFaults(lr, rl, left)

	if Debug != nil {
		Debug(lr)
		if DebugEnq != nil {
			inner := left.Handler
			left.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, in *netsim.Iface) {
				DebugEnq(pkt)
				inner.Receive(pkt, in)
			})
		}
	}

	attachLeft := func(h *host) {
		hi, li := netsim.Connect(h.node, left, cfg.AccessBps, cfg.LinkDelay,
			b.hostEgress(), b.linkSchedFor(cfg.AccessBps, leftDeployed))
		h.node.SetDefault(hi)
		left.AddRoute(h.addr, li)
	}
	attachRight := func(h *host) {
		hi, ri := netsim.Connect(h.node, right, cfg.AccessBps, cfg.LinkDelay,
			b.hostEgress(), b.linkSchedFor(cfg.AccessBps, rightDeployed))
		h.node.SetDefault(hi)
		right.AddRoute(h.addr, ri)
	}

	// Destination: a public server granting the default allowance and
	// blacklisting raw flooders.
	destPolicy := core.NewServerPolicy()
	destPolicy.GrantKB = cfg.GrantKB
	destPolicy.GrantTSec = cfg.GrantTSec
	dest := newHost(sim, "dest", DestAddr, destPolicy, cfg)
	dest.stack.Listen(DestPort, nil)
	dest.onRaw = func(src packet.Addr, size int, demoted bool) {
		if size >= rawFloodThreshold {
			destPolicy.MarkMisbehaving(src, sim.Now())
		}
	}
	b.instrumentDest(dest, &tel, tracer)
	b.traceDelivery(dest.node)
	attachRight(dest)

	// Colluder: authorizes anything (§5.3).
	colluder := newHost(sim, "colluder", ColluderAddr, &core.AllowAllPolicy{}, cfg)
	colluder.onRaw = func(packet.Addr, int, bool) {} // flood sink
	b.traceDelivery(colluder.node)
	attachRight(colluder)

	// In the request-flood scenario the paper assumes the destination
	// can tell attacker requests from user requests (§5.2); mark the
	// attackers up front so grants are refused.
	if cfg.Attack == AttackRequestFlood {
		for i := 0; i < cfg.NumAttackers; i++ {
			destPolicy.MarkMisbehaving(AttackerAddr(i), 0)
		}
	}

	// Legitimate users.
	var transfers []TransferRecord
	var users []*host
	for i := 0; i < cfg.NumUsers; i++ {
		policy := core.NewClientPolicy()
		policy.Window = cfg.Duration + 120*tvatime.Second
		u := newHost(sim, "user"+strconv.Itoa(i), UserAddr(i), policy, cfg)
		b.traceDelivery(u.node)
		attachLeft(u)
		startUser(sim, u, i, cfg, &transfers)
		users = append(users, u)
	}

	// Attackers.
	for i := 0; i < cfg.NumAttackers; i++ {
		b.startAttacker(i, attachLeft)
	}

	b.startSampler(&tel, lr)
	b.startMetrics(&tel, lr, func() float64 {
		done, decided := 0, 0
		for _, t := range transfers {
			decided++
			if t.Completed {
				done++
			}
		}
		if decided == 0 {
			return 1 // no verdicts yet: the SLO starts unviolated
		}
		return float64(done) / float64(decided)
	})
	b.watchDropStorm(&tel, lr)

	sim.Run(tvatime.Time(cfg.Duration))
	for _, stop := range b.stops {
		stop()
	}
	b.finishTelemetry(&tel, lr)

	if DebugHosts != nil {
		DebugHosts(users, dest, b.tvaRouters)
	}

	res := &Result{
		Cfg:                   cfg,
		Transfers:             transfers,
		BottleneckUtilization: lr.Utilization(cfg.Duration),
		BottleneckDrops:       lr.Stats.DroppedPkts,
		FairnessJain:          flowstats.JainIndex(tel.Fairness.Totals()),
		MaxMinRatio:           flowstats.MaxMinRatio(tel.Fairness.Totals()),
		Telemetry:             tel,
	}
	res.Flows = tel.Flows.AppendSamples(nil)
	flowstats.SortSamples(res.Flows)
	return res
}

// startUser begins the sequential 20 KB transfer loop of §5: the next
// transfer starts when the previous completes or aborts.
func startUser(sim *netsim.Sim, u *host, idx int, cfg Config, out *[]TransferRecord) {
	var next func()
	next = func() {
		if sim.Now() >= tvatime.Time(cfg.Duration) {
			return
		}
		start := sim.Now()
		decided := false
		if u.beforeTransfer != nil {
			u.beforeTransfer(DestAddr)
		}
		conn := u.stack.Dial(DestAddr, DestPort, cfg.FileKB*1024, tcp.Config{})
		if DebugDial != nil {
			DebugDial(conn)
		}
		conn.OnDone = func(ok bool) {
			decided = true
			*out = append(*out, TransferRecord{
				User:      idx,
				Start:     start,
				End:       sim.Now(),
				Completed: ok,
			})
			next()
		}
		// A transfer still unresolved when the measurement window
		// closes has not completed within it; record it as such (the
		// paper's fraction-of-completed-transfers denominator counts
		// every attempt).
		sim.At(tvatime.Time(cfg.Duration), func() {
			if !decided {
				decided = true
				*out = append(*out, TransferRecord{
					User: idx, Start: start, End: sim.Now(), Completed: false,
				})
			}
		})
	}
	// Stagger start times a little so users do not phase-lock.
	offset := tvatime.Duration(sim.Rand().Int63n(int64(200 * tvatime.Millisecond)))
	sim.At(tvatime.Time(offset), next)
}

// startAttacker builds attacker i's host and schedules its flood.
func (b *builder) startAttacker(i int, attach func(*host)) {
	cfg := b.cfg
	sim := b.sim
	addr := AttackerAddr(i)

	// Group schedule (Fig. 11's low-intensity attack).
	group := 0
	if cfg.AttackGroups > 1 {
		perGroup := (cfg.NumAttackers + cfg.AttackGroups - 1) / cfg.AttackGroups
		group = i / perGroup
	}
	start := tvatime.Time(cfg.AttackStart) + tvatime.Time(group)*tvatime.Time(cfg.GroupInterval)
	stop := start.Add(cfg.GroupDuration)

	interval := tvatime.Duration(int64(cfg.AttackPktSize) * 8 * int64(tvatime.Second) / cfg.AttackRateBps)

	switch cfg.Attack {
	case AttackNone:
		return

	case AttackLegacyFlood:
		node := sim.NewNode("atk" + strconv.Itoa(i))
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
			packet.Release(pkt) // reverse traffic sink
		})
		b.traceDelivery(node)
		h := &host{addr: addr, node: node}
		attach(h)
		flood(sim, start, stop, interval, func() {
			pkt := packet.AcquirePacket()
			pkt.Src, pkt.Dst, pkt.TTL = addr, DestAddr, 64
			pkt.Proto = packet.ProtoRaw
			pkt.Size = packet.OuterHdrLen + cfg.AttackPktSize
			pkt.SentAt = sim.Now()
			node.Send(pkt)
		})

	case AttackRequestFlood:
		node := sim.NewNode("atk" + strconv.Itoa(i))
		node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
			packet.Release(pkt) // reverse traffic sink
		})
		b.traceDelivery(node)
		h := &host{addr: addr, node: node}
		attach(h)
		flood(sim, start, stop, interval, func() {
			pkt := packet.AcquirePacket()
			hdr := pkt.NewHdr()
			hdr.Kind = packet.KindRequest
			hdr.Proto = packet.ProtoRaw
			pkt.Src, pkt.Dst, pkt.TTL = addr, DestAddr, 64
			pkt.Proto = packet.ProtoRaw
			pkt.Size = packet.OuterHdrLen + hdr.WireSize() + cfg.AttackPktSize
			pkt.SentAt = sim.Now()
			node.Send(pkt)
		})

	case AttackAuthorizedFlood:
		h := newHost(sim, "atk"+strconv.Itoa(i), addr, core.RefuseAllPolicy{}, cfg)
		h.onRaw = func(packet.Addr, int, bool) {}
		b.traceDelivery(h.node)
		attach(h)
		b.floodWithCaps(h, ColluderAddr, start, stop, interval)

	case AttackImpreciseAuth:
		h := newHost(sim, "atk"+strconv.Itoa(i), addr, core.RefuseAllPolicy{}, cfg)
		h.onRaw = func(packet.Addr, int, bool) {}
		b.traceDelivery(h.node)
		attach(h)
		b.floodWithCaps(h, DestAddr, start, stop, interval)
	}
}

// flood schedules fn at the given pacing within [start, stop). Packet
// spacing is jittered ±25% (preserving the mean rate) so a fleet of
// constant-bit-rate attackers does not phase-lock with the bottleneck's
// service times, which would unrealistically capture every freed
// drop-tail slot.
func flood(sim *netsim.Sim, start, stop tvatime.Time, interval tvatime.Duration, fn func()) {
	rng := sim.Rand()
	var tick func()
	tick = func() {
		if sim.Now() >= stop {
			return
		}
		fn()
		jitter := 0.75 + 0.5*rng.Float64()
		sim.After(tvatime.Duration(float64(interval)*jitter), tick)
	}
	sim.At(start.Add(tvatime.Duration(rng.Int63n(int64(interval)+1))), tick)
}

// floodWithCaps floods raw payloads through the scheme's shim: while
// unauthorized it sends small bare requests paced at one per 100 ms
// (the attacker wants a grant, and fat requests would only clog the
// rate-limited request channel ahead of it); once granted it floods at
// full rate and lets the shim renew.
func (b *builder) floodWithCaps(h *host, dst packet.Addr, start, stop tvatime.Time, interval tvatime.Duration) {
	sim := b.sim
	size := b.cfg.AttackPktSize
	var lastReq tvatime.Time = -tvatime.Time(tvatime.Second)
	flood(sim, start, stop, interval, func() {
		if h.hasCaps(dst) {
			h.sendRaw(dst, size)
			return
		}
		if sim.Now().Sub(lastReq) >= 100*tvatime.Millisecond {
			lastReq = sim.Now()
			h.sendRaw(dst, 0) // bare knock: the shim makes it a request
		}
	})
}

// Debug hooks for instrumented runs (tests and diagnostics). Debug, if
// set, receives the forward bottleneck interface after construction;
// DebugEnq, if set, observes every packet arriving at the left router.
var (
	Debug    func(bottleneck *netsim.Iface)
	DebugEnq func(pkt *packet.Packet)
)

// DebugDial, if set, observes every legitimate user connection.
var DebugDial func(conn *tcp.Conn)

// DebugHosts, if set, receives the user hosts, destination host and
// TVA routers after the run completes (white-box assertions in tests).
var DebugHosts func(users []*host, dest *host, routers []*core.Router)
