// Fault injection and recovery wiring (DESIGN.md §10): bottleneck
// impairments, scheduled outages, and router crash/restart, plus the
// recovery sweeps (loss rate, restart time) the failure experiments
// report. Everything here is driven by Config knobs and derives its
// randomness from Config.Seed, so faulted runs are bit-identical per
// seed like every other run.
package exp

import (
	"tva/internal/netsim"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// Per-direction salts for the bottleneck impairment PRNGs: forward and
// reverse must fault independently, and neither may share a stream
// with the simulator's own RNG.
const (
	saltForward = 0x1f3a
	saltReverse = 0x2b7c
)

// impairSeed derives a link-direction PRNG seed from the run seed.
func impairSeed(runSeed int64, salt int64) int64 {
	return runSeed*0x5851f42d4c957f2d + salt
}

// applyFaults attaches the configured impairments and schedules the
// outage window and the router restart. lr/rl are the bottleneck's
// forward and reverse directions; left is the user-side router node
// the restart applies to.
func (b *builder) applyFaults(lr, rl *netsim.Iface, left *netsim.Node) {
	cfg := b.cfg
	if cfg.LossRate > 0 || cfg.DupProb > 0 || cfg.LinkJitter > 0 {
		lr.SetImpairment(netsim.ImpairConfig{
			Seed:     impairSeed(cfg.Seed, saltForward),
			LossProb: cfg.LossRate,
			DupProb:  cfg.DupProb,
			Jitter:   cfg.LinkJitter,
		})
		rl.SetImpairment(netsim.ImpairConfig{
			Seed:     impairSeed(cfg.Seed, saltReverse),
			LossProb: cfg.LossRate,
			DupProb:  cfg.DupProb,
			Jitter:   cfg.LinkJitter,
		})
	}
	if cfg.OutageDuration > 0 {
		lr.ScheduleOutage(tvatime.Time(cfg.OutageStart), cfg.OutageDuration)
		rl.ScheduleOutage(tvatime.Time(cfg.OutageStart), cfg.OutageDuration)
	}
	if cfg.RestartAt > 0 {
		b.sim.At(tvatime.Time(cfg.RestartAt), func() { b.restartLeft(left) })
	}
}

// restartLeft models the left router crashing and rebooting: every
// output queue it owns is flushed (reason router-restart) and, under
// TVA, the router's soft state — flow cache, path-identifier history —
// is lost while its capability secrets survive (§3.8). Other schemes
// keep their router state (pushback's rate-limiters and SIFF's secrets
// are small enough to model as persistent); the queue loss alone is
// the dominant transient.
func (b *builder) restartLeft(left *netsim.Node) {
	for _, ifc := range left.Ifaces() {
		ifc.Flush(telemetry.DropRouterRestart)
	}
	if len(b.tvaRouters) > 0 {
		b.tvaRouters[0].Restart()
	}
}

// TimeToRecover reports the delay from the event at `at` to the first
// transfer completion at or after it — the recovery experiments'
// headline metric. ok is false when nothing completed after the event.
func (r *Result) TimeToRecover(at tvatime.Duration) (tvatime.Duration, bool) {
	t := tvatime.Time(at)
	best := tvatime.Time(0)
	found := false
	for _, tr := range r.Transfers {
		if !tr.Completed || tr.End < t {
			continue
		}
		if !found || tr.End < best {
			best = tr.End
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return best.Sub(t), true
}

// FaultPoint is one x-axis point of a loss-rate sweep.
type FaultPoint struct {
	LossRate           float64
	CompletionFraction float64
	AvgTransferTime    float64
	LinkDrops          uint64
}

// LossSweep runs the config at each bottleneck loss rate and collects
// the degradation curve: how transfer completion and time degrade as
// the wire gets lossier.
func LossSweep(base Config, rates []float64) []FaultPoint {
	points := make([]FaultPoint, 0, len(rates))
	for _, rate := range rates {
		cfg := base
		cfg.LossRate = rate
		res := Run(cfg)
		points = append(points, FaultPoint{
			LossRate:           rate,
			CompletionFraction: res.CompletionFraction(),
			AvgTransferTime:    res.AvgTransferTime(),
			LinkDrops:          res.Telemetry.LinkDrops.Total(),
		})
	}
	return points
}

// RestartPoint is one x-axis point of a restart-time sweep.
type RestartPoint struct {
	RestartAtSec       float64
	CompletionFraction float64
	// TimeToRecoverSec is the delay from the restart to the first
	// completed transfer after it; -1 when nothing recovered.
	TimeToRecoverSec float64
	FlushedPkts      uint64
}

// RestartSweep crashes the left router at each time and collects how
// completion and recovery latency respond.
func RestartSweep(base Config, atSec []float64) []RestartPoint {
	points := make([]RestartPoint, 0, len(atSec))
	for _, at := range atSec {
		cfg := base
		cfg.RestartAt = tvatime.Duration(at * float64(tvatime.Second))
		res := Run(cfg)
		p := RestartPoint{
			RestartAtSec:       at,
			CompletionFraction: res.CompletionFraction(),
			TimeToRecoverSec:   -1,
			FlushedPkts:        res.Telemetry.LinkDrops.Get(telemetry.DropRouterRestart),
		}
		if d, ok := res.TimeToRecover(cfg.RestartAt); ok {
			p.TimeToRecoverSec = d.Seconds()
		}
		points = append(points, p)
	}
	return points
}
