package exp

import (
	"testing"

	"tva/internal/tvatime"
)

// A legit-only stream run should deliver essentially every message and
// record zero attack traffic.
func TestRunStreamBaseline(t *testing.T) {
	res := RunStream(StreamConfig{
		Users:    5,
		Duration: 2 * tvatime.Second,
		Seed:     7,
	})
	if res.LegitSent == 0 {
		t.Fatal("no messages sent")
	}
	if f := res.DeliveredFraction(); f < 0.95 {
		t.Fatalf("baseline delivered fraction %.3f, want >= 0.95 (sent %d delivered %d)",
			f, res.LegitSent, res.LegitDelivered)
	}
	if res.AttackSent != 0 || res.AttackDelivered != 0 {
		t.Fatalf("attack counters nonzero in baseline: sent %d delivered %d",
			res.AttackSent, res.AttackDelivered)
	}
	var perFlow uint64
	for i, f := range res.PerFlow {
		if f.Addr != UserAddr(i) {
			t.Fatalf("PerFlow[%d].Addr = %v, want %v", i, f.Addr, UserAddr(i))
		}
		perFlow += f.Sent
	}
	if perFlow != res.LegitSent {
		t.Fatalf("per-flow sent %d != total %d", perFlow, res.LegitSent)
	}
	if res.Telemetry.Metrics == nil {
		t.Fatal("metrics registry not built")
	}
}

// Under a legacy flood TVA must keep delivering legitimate messages
// while the bottleneck sheds most attack load.
func TestRunStreamFlood(t *testing.T) {
	res := RunStream(StreamConfig{
		Users:         5,
		Attackers:     10,
		AttackRateBps: 4_000_000, // 40 Mb/s aggregate into 10 Mb/s
		Duration:      3 * tvatime.Second,
		Seed:          7,
	})
	if f := res.DeliveredFraction(); f < 0.9 {
		t.Fatalf("flood delivered fraction %.3f, want >= 0.9 (sent %d delivered %d)",
			f, res.LegitSent, res.LegitDelivered)
	}
	if res.AttackSent == 0 {
		t.Fatal("no attack packets injected")
	}
	if res.BottleneckDrops == 0 {
		t.Fatal("overloaded bottleneck recorded no drops")
	}
	if res.AttackDelivered >= res.AttackSent {
		t.Fatalf("attack delivery %d of %d: bottleneck shed nothing",
			res.AttackDelivered, res.AttackSent)
	}
}

// Same seed, same counts: the stream driver must stay deterministic.
func TestRunStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{Users: 3, Attackers: 2, Duration: 2 * tvatime.Second, Seed: 11}
	a, b := RunStream(cfg), RunStream(cfg)
	if a.LegitSent != b.LegitSent || a.LegitDelivered != b.LegitDelivered ||
		a.AttackSent != b.AttackSent || a.BottleneckDrops != b.BottleneckDrops {
		t.Fatalf("same-seed divergence: %+v vs %+v",
			[4]uint64{a.LegitSent, a.LegitDelivered, a.AttackSent, a.BottleneckDrops},
			[4]uint64{b.LegitSent, b.LegitDelivered, b.AttackSent, b.BottleneckDrops})
	}
}
