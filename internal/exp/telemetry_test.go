package exp

import (
	"bytes"
	"strings"
	"testing"

	"tva/internal/tvatime"
)

func telemetryCfg(d tvatime.Duration) Config {
	return Config{
		Scheme:          SchemeTVA,
		Attack:          AttackLegacyFlood,
		NumAttackers:    10,
		Duration:        d,
		Seed:            1,
		MetricsInterval: 100 * tvatime.Millisecond,
	}
}

// TestTelemetryDropSumMatchesBottleneck asserts the accounting
// invariant the whole layer hangs on: the reason-attributed counters
// cover every bottleneck drop exactly — no drop site is missed and
// none is double-counted — and the sampler's final row agrees.
func TestTelemetryDropSumMatchesBottleneck(t *testing.T) {
	d := short(t)
	res := Run(telemetryCfg(d))
	tel := &res.Telemetry
	if res.BottleneckDrops == 0 {
		t.Fatal("flood produced no drops; the test exercises nothing")
	}
	if got := tel.SchedDrops.Total(); got != res.BottleneckDrops {
		t.Errorf("per-reason drop sum %d != bottleneck drops %d", got, res.BottleneckDrops)
	}
	if tel.Sampler == nil || tel.Sampler.Len() == 0 {
		t.Fatal("sampler missing or empty")
	}
	names := tel.Sampler.Names()
	_, last := tel.Sampler.Row(tel.Sampler.Len() - 1)
	found := false
	for i, name := range names {
		if name == "drops_total" {
			found = true
			if got := uint64(last[i]); got != res.BottleneckDrops {
				t.Errorf("final sample drops_total = %d, want %d", got, res.BottleneckDrops)
			}
		}
	}
	if !found {
		t.Errorf("drops_total gauge missing from sampler columns %v", names)
	}
}

// TestTelemetryHistogramsAndHostDrops checks the latency histograms
// fill in and host egress loss (silent drops before any router) is
// surfaced rather than folded into router totals.
func TestTelemetryHistogramsAndHostDrops(t *testing.T) {
	d := short(t)
	res := Run(telemetryCfg(d))
	tel := &res.Telemetry
	if tel.QueueDelay.Count() == 0 {
		t.Error("queueing-delay histogram empty")
	}
	if tel.Delivery.Count() == 0 {
		t.Error("end-to-end delivery histogram empty")
	}
	if q50, q99 := tel.QueueDelay.Quantile(0.5), tel.QueueDelay.Quantile(0.99); q99 < q50 {
		t.Errorf("queue delay p99 %v < p50 %v", q99, q50)
	}
	// Default scenarios never overflow a host's own queue (1 Mb/s
	// attackers on 10 Mb/s access links), so host egress loss must
	// read zero — not leak in from router drops.
	if tel.HostEgressDrops != 0 {
		t.Errorf("host egress drops = %d, want 0 when access links are unloaded", tel.HostEgressDrops)
	}

	// An attacker flooding faster than its access link drops in its
	// own egress queue; that silent pre-router loss must be surfaced
	// separately from bottleneck drops.
	over := telemetryCfg(d)
	over.AttackRateBps = 40_000_000 // 4x the 10 Mb/s access link
	res = Run(over)
	if res.Telemetry.HostEgressDrops == 0 {
		t.Error("oversubscribed access link produced no surfaced host egress drops")
	}
}

// TestSamplerDeterministicAcrossWorkers runs the same instrumented
// configs serially and with 8 workers and requires byte-identical
// sampler output: observability must not perturb, or be perturbed by,
// the parallel sweep engine.
func TestSamplerDeterministicAcrossWorkers(t *testing.T) {
	d := short(t)
	cfgs := []Config{telemetryCfg(d), telemetryCfg(d)}
	cfgs[1].Attack = AttackRequestFlood

	serial := RunMany(cfgs, 1)
	parallel := RunMany(cfgs, 8)
	for i := range cfgs {
		a, b := serial[i].Telemetry.Sampler, parallel[i].Telemetry.Sampler
		if a == nil || b == nil {
			t.Fatalf("cfg %d: missing sampler (serial=%v parallel=%v)", i, a != nil, b != nil)
		}
		var aj, bj, ac, bc bytes.Buffer
		if err := a.WriteJSON(&aj); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteJSON(&bj); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
			t.Errorf("cfg %d: JSON sampler output differs between 1 and 8 workers", i)
		}
		if err := a.WriteCSV(&ac); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteCSV(&bc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
			t.Errorf("cfg %d: CSV sampler output differs between 1 and 8 workers", i)
		}
		if ac.Len() == 0 || !strings.HasPrefix(ac.String(), "t_sec") {
			t.Errorf("cfg %d: CSV output malformed: %q", i, firstLine(ac.String()))
		}
	}
}

// TestTelemetryOffByDefault guards the zero-config contract: without
// MetricsInterval/TraceEvents the run allocates no sampler or tracer,
// and enabling them does not change packet-level outcomes.
func TestTelemetryOffByDefault(t *testing.T) {
	d := short(t)
	plain := Run(Config{Scheme: SchemeTVA, Attack: AttackLegacyFlood,
		NumAttackers: 10, Duration: d, Seed: 1})
	if plain.Telemetry.Sampler != nil || plain.Telemetry.Trace != nil {
		t.Error("sampler/tracer allocated without being requested")
	}
	instr := Run(telemetryCfg(d))
	if plain.BottleneckDrops != instr.BottleneckDrops ||
		plain.CompletionFraction() != instr.CompletionFraction() {
		t.Errorf("telemetry changed outcomes: drops %d vs %d, completion %.4f vs %.4f",
			plain.BottleneckDrops, instr.BottleneckDrops,
			plain.CompletionFraction(), instr.CompletionFraction())
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
