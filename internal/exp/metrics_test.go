package exp

import (
	"bytes"
	"strings"
	"testing"

	"tva/internal/metrics"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// metricsCfg is a flood heavy enough to trip the attack-onset
// detector: 20 Mb/s of legacy flood into a 10 Mb/s bottleneck drops
// thousands of packets per second against a near-zero quiet baseline.
func metricsCfg(d tvatime.Duration) Config {
	return Config{
		Scheme:          SchemeTVA,
		Attack:          AttackLegacyFlood,
		NumAttackers:    20,
		Duration:        d,
		Seed:            7,
		MetricsInterval: 100 * tvatime.Millisecond,
	}
}

// healthLog renders a run's health transitions the way tvasim prints
// them (and metrics-smoke diffs them).
func healthLog(res *Result) []string {
	var out []string
	for _, tr := range res.Telemetry.Health.Transitions() {
		out = append(out, tr.String())
	}
	return out
}

// TestMetricsRegistryDeterministic is the acceptance criterion pinned
// in code: two same-seed flood runs emit byte-identical registry
// CSV/JSON/exposition and byte-identical health transition lines —
// including the attack-onset transition at the same sample offset.
func TestMetricsRegistryDeterministic(t *testing.T) {
	d := short(t)
	a, b := Run(metricsCfg(d)), Run(metricsCfg(d))
	for _, res := range []*Result{a, b} {
		if res.Telemetry.Metrics == nil || res.Telemetry.Health == nil {
			t.Fatal("metrics registry or health detector missing")
		}
	}

	var ac, bc, aj, bj, ap, bp bytes.Buffer
	for _, pair := range []struct {
		res  *Result
		c, j *bytes.Buffer
		p    *bytes.Buffer
	}{{a, &ac, &aj, &ap}, {b, &bc, &bj, &bp}} {
		reg := pair.res.Telemetry.Metrics
		if err := reg.WriteCSV(pair.c); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteJSON(pair.j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WritePrometheus(pair.p); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
		t.Error("same-seed runs emit different registry CSV")
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Error("same-seed runs emit different registry JSON")
	}
	if !bytes.Equal(ap.Bytes(), bp.Bytes()) {
		t.Error("same-seed runs emit different exposition")
	}

	la, lb := healthLog(a), healthLog(b)
	if strings.Join(la, "|") != strings.Join(lb, "|") {
		t.Fatalf("health transitions differ across same-seed runs:\n%v\n%v", la, lb)
	}
	var onset bool
	for _, line := range la {
		if strings.Contains(line, "-> under-attack") {
			onset = true
		}
	}
	if !onset {
		t.Fatalf("flood produced no under-attack transition: %v", la)
	}

	// The parsed exposition must carry both data-plane and health
	// series, plus the synthetic :rate derivations (the registry has
	// ticked far more than twice by the end of the run).
	sc, err := metrics.ParseProm(bytes.NewReader(ap.Bytes()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	for _, name := range []string{
		"tva_queue_pkts", "tva_regular_queues", "tva_token_bucket_bytes",
		"tva_flowcache_entries", "tva_goodput_bytes_total",
		"tva_sched_drops_total", "tva_queue_wait_ns", "tva_tx_burst_fill",
		"tva_legit_completion_fraction", "tva_health_state",
		"tva_health_transitions_total", "tva_sched_drops_total:rate",
	} {
		if !sc.Has(name) {
			t.Errorf("exposition missing series %s", name)
		}
	}
}

// TestMetricsHealthLifecycleAndSpans checks the detector walks
// healthy -> degraded -> under-attack during the flood, that the
// registry's final tva_health_state row agrees with the detector, and
// that each transition also lands in the flight recorder as an
// EdgeHealth span with matching from/to encoding.
func TestMetricsHealthLifecycleAndSpans(t *testing.T) {
	short(t)
	// Short run with a recorder big enough that nothing wraps: health
	// spans share ring shards with packet spans, so wraparound would
	// evict them like any other old span.
	cfg := metricsCfg(5 * tvatime.Second)
	cfg.SpanCapacity = 1 << 18
	res := Run(cfg)
	if res.Telemetry.Spans.Overwritten() != 0 {
		t.Fatalf("recorder wrapped (%d evicted); grow SpanCapacity", res.Telemetry.Spans.Overwritten())
	}
	det := res.Telemetry.Health
	trs := det.Transitions()
	if len(trs) < 2 {
		t.Fatalf("want >= 2 transitions (degraded then under-attack), got %v", healthLog(res))
	}
	if trs[0].From != metrics.Healthy || trs[0].To != metrics.Degraded {
		t.Errorf("first transition %s, want healthy -> degraded", trs[0])
	}
	if trs[1].To != metrics.UnderAttack {
		t.Errorf("second transition %s, want -> under-attack", trs[1])
	}

	// Registry state column agrees with the detector's live state.
	var stateCol float64
	found := false
	res.Telemetry.Metrics.Each(func(s metrics.SeriesView) {
		if s.Name == "tva_health_state" {
			stateCol, found = s.Value, true
		}
	})
	if !found {
		t.Fatal("tva_health_state not registered")
	}
	if metrics.State(stateCol) != det.State() {
		t.Errorf("registry health state %v != detector %v", metrics.State(stateCol), det.State())
	}

	// EdgeHealth spans mirror the transition log one-for-one.
	all := res.Telemetry.Spans.Snapshot()
	var spans []trace.Span
	for _, sp := range all {
		if sp.Edge == trace.EdgeHealth {
			spans = append(spans, sp)
		}
	}
	if len(spans) != len(trs) {
		t.Fatalf("EdgeHealth spans = %d, transitions = %d", len(spans), len(trs))
	}
	for i, sp := range spans {
		if sp.Time != trs[i].At {
			t.Errorf("span %d at %v, transition at %v", i, sp.Time, trs[i].At)
		}
		if trace.HealthStateName(sp.Kind-1) != trs[i].From.String() ||
			trace.HealthStateName(sp.Class) != trs[i].To.String() {
			t.Errorf("span %d encodes %s -> %s, want %s", i,
				trace.HealthStateName(sp.Kind-1), trace.HealthStateName(sp.Class), trs[i])
		}
	}
	// Health spans are control-plane annotations: they must not leak
	// into packet lifecycle chain analysis.
	for _, ch := range trace.Chains(all) {
		for _, sp := range ch.Spans {
			if sp.Edge == trace.EdgeHealth {
				t.Fatal("EdgeHealth span leaked into a lifecycle chain")
			}
		}
	}
}

// TestMetricsTxBatchInvariant pins the batched-data-path half of the
// shared-series contract for the sim plane: transmit batching may
// change tva_tx_burst_fill (that gauge exists to show it) but must
// not move a single drop counter, goodput byte, or health transition.
func TestMetricsTxBatchInvariant(t *testing.T) {
	d := short(t)
	cfg1 := metricsCfg(d)
	cfg32 := metricsCfg(d)
	cfg32.TxBatch = 32
	a, b := Run(cfg1), Run(cfg32)

	if strings.Join(healthLog(a), "|") != strings.Join(healthLog(b), "|") {
		t.Errorf("health transitions differ across TxBatch:\n%v\n%v", healthLog(a), healthLog(b))
	}
	if a.Telemetry.SchedDrops != b.Telemetry.SchedDrops {
		t.Errorf("drop counters differ across TxBatch:\n%v\n%v",
			a.Telemetry.SchedDrops, b.Telemetry.SchedDrops)
	}
	if a.Telemetry.GoodputBytes != b.Telemetry.GoodputBytes {
		t.Errorf("goodput differs across TxBatch: %d vs %d",
			a.Telemetry.GoodputBytes, b.Telemetry.GoodputBytes)
	}
	// Whole registry rows, minus the burst-fill column, are identical.
	ra, rb := a.Telemetry.Metrics, b.Telemetry.Metrics
	if ra.Len() != rb.Len() || ra.NumSeries() != rb.NumSeries() {
		t.Fatalf("registry shape differs: %dx%d vs %dx%d",
			ra.Len(), ra.NumSeries(), rb.Len(), rb.NumSeries())
	}
	ids := ra.IDs()
	va, vb := make([]float64, ra.NumSeries()), make([]float64, rb.NumSeries())
	for i := 0; i < ra.Len(); i++ {
		ta, tb := ra.Row(i, va), rb.Row(i, vb)
		if ta != tb {
			t.Fatalf("row %d tick time differs: %v vs %v", i, ta, tb)
		}
		for j := range va {
			if ids[j] == "tva_tx_burst_fill" {
				continue
			}
			if va[j] != vb[j] {
				t.Errorf("row %d series %s: %v vs %v", i, ids[j], va[j], vb[j])
			}
		}
	}
}

// TestMetricsOffByDefault extends the zero-config contract to the
// registry: no MetricsInterval, no registry, no detector — and an
// instrumented run still reproduces identical packet-level outcomes
// (the sketch hook and gauge closures stay off the decision path).
func TestMetricsOffByDefault(t *testing.T) {
	d := short(t)
	cfg := metricsCfg(d)
	cfg.MetricsInterval = 0
	res := Run(cfg)
	if res.Telemetry.Metrics != nil || res.Telemetry.Health != nil {
		t.Error("registry/detector allocated without being requested")
	}
	instr := Run(metricsCfg(d))
	if res.BottleneckDrops != instr.BottleneckDrops ||
		res.CompletionFraction() != instr.CompletionFraction() {
		t.Errorf("metrics changed outcomes: drops %d vs %d, completion %.4f vs %.4f",
			res.BottleneckDrops, instr.BottleneckDrops,
			res.CompletionFraction(), instr.CompletionFraction())
	}
}
