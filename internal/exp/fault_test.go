package exp

import (
	"testing"

	"tva/internal/core"
	"tva/internal/netsim"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// Transfers degrade but complete across a lossy bottleneck: the TCP
// stack retransmits data and the shim's reliability engine retransmits
// the capability handshake, so 10–20% wire loss slows transfers
// instead of killing them.
func TestLossyBottleneckDegradesGracefully(t *testing.T) {
	d := short(t)
	base := Config{Scheme: SchemeTVA, Attack: AttackNone, Duration: d, Seed: 3}
	pts := LossSweep(base, []float64{0, 0.1, 0.2})
	// Not 1.0: each user's final transfer is still in flight when the
	// measurement window closes and counts as incomplete.
	if pts[0].CompletionFraction < 0.95 {
		t.Fatalf("lossless completion %.3f, want ≥0.95", pts[0].CompletionFraction)
	}
	for _, p := range pts[1:] {
		if p.CompletionFraction == 0 {
			t.Errorf("completion 0 at loss %.0f%%; transfers should degrade, not die", p.LossRate*100)
		}
		if p.LinkDrops == 0 {
			t.Errorf("no link drops recorded at loss %.0f%%", p.LossRate*100)
		}
	}
	if pts[2].CompletionFraction > pts[0].CompletionFraction {
		t.Errorf("completion rose with loss: %.3f at 0%% vs %.3f at 20%%",
			pts[0].CompletionFraction, pts[2].CompletionFraction)
	}
}

// Two same-seed faulted runs are bit-identical: impairments draw from
// their own per-link PRNGs, so fault injection preserves determinism.
func TestFaultedRunDeterministic(t *testing.T) {
	d := short(t)
	cfg := Config{
		Scheme: SchemeTVA, Attack: AttackLegacyFlood, NumAttackers: 10,
		Duration: d, Seed: 11,
		LossRate: 0.1, DupProb: 0.02, LinkJitter: 2 * tvatime.Millisecond,
		RestartAt: d / 2,
	}
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Transfers) != len(b.Transfers) {
		t.Fatalf("same seed, different transfer counts: %d vs %d", len(a.Transfers), len(b.Transfers))
	}
	for i := range a.Transfers {
		if a.Transfers[i] != b.Transfers[i] {
			t.Fatalf("same seed, different record %d: %+v vs %+v", i, a.Transfers[i], b.Transfers[i])
		}
	}
	if a.Telemetry.LinkDrops != b.Telemetry.LinkDrops {
		t.Fatalf("same seed, different link drops: %v vs %v", a.Telemetry.LinkDrops, b.Telemetry.LinkDrops)
	}
	if a.BottleneckDrops != b.BottleneckDrops {
		t.Fatalf("same seed, different bottleneck drops: %d vs %d", a.BottleneckDrops, b.BottleneckDrops)
	}
}

// A mid-run router crash: queued packets are flushed (attributed
// router-restart), soft state is lost, and transfers recover because
// capability secrets survive and hosts re-request what the cache
// forgot.
func TestRouterRestartRecovery(t *testing.T) {
	d := short(t)
	var restarts uint64
	DebugHosts = func(users []*host, dest *host, routers []*core.Router) {
		for _, r := range routers {
			restarts += r.Restarts()
		}
	}
	defer func() { DebugHosts = nil }()

	cfg := Config{
		Scheme: SchemeTVA, Attack: AttackLegacyFlood, NumAttackers: 10,
		Duration: d, Seed: 5, RestartAt: d / 2,
	}
	r := Run(cfg)
	if restarts != 1 {
		t.Fatalf("router restarts = %d, want 1", restarts)
	}
	// The flood keeps the bottleneck queue full, so the flush must have
	// caught packets.
	if got := r.Telemetry.LinkDrops.Get(telemetry.DropRouterRestart); got == 0 {
		t.Errorf("restart flushed no packets despite a flood-loaded queue")
	}
	rec, ok := r.TimeToRecover(cfg.RestartAt)
	if !ok {
		t.Fatal("no transfer completed after the restart: no recovery")
	}
	if rec > 5*tvatime.Second {
		t.Errorf("time to recover %v, want under 5s", rec)
	}
	// The drops-sum invariant holds with fault injection active: fault
	// losses are attributed separately from enqueue drops.
	if got, want := r.Telemetry.SchedDrops.Total(), r.BottleneckDrops; got != want {
		t.Errorf("SchedDrops.Total()=%d != BottleneckDrops=%d with faults active", got, want)
	}
}

// The renewal-loss fallback (§4.3 meets §3.8): every renewal packet is
// destroyed on the wire, so mid-transfer re-authorization can only
// succeed by falling back to a fresh request — which the shim does once
// the dead grant's budget is exhausted. Transfers complete and the
// routers see no demotion storm.
func TestRenewalLossFallsBackToFreshRequest(t *testing.T) {
	d := short(t)
	Debug = func(bottleneck *netsim.Iface) {
		bottleneck.SetImpairment(netsim.ImpairConfig{
			DropIf: func(pkt *packet.Packet) bool {
				return pkt.Hdr != nil && pkt.Hdr.Kind == packet.KindRenewal
			},
		})
	}
	var reacquires, renewals uint64
	DebugHosts = func(users []*host, dest *host, routers []*core.Router) {
		for _, u := range users {
			reacquires += u.tvaShim.Stats.Reacquires
			renewals += u.tvaShim.Stats.RenewalsSent
		}
	}
	defer func() { Debug, DebugHosts = nil, nil }()

	// A small grant forces renewal in the middle of every 20 KB
	// transfer; with renewals black-holed, each transfer must cross the
	// re-request fallback to finish.
	r := Run(Config{
		Scheme: SchemeTVA, Attack: AttackNone, NumUsers: 4,
		GrantKB: 8, Duration: d, Seed: 9,
	})
	// Every transfer with room to finish must finish; only window-edge
	// stragglers (started in the last seconds) may be cut off.
	margin := tvatime.Time(d - 5*tvatime.Second)
	for _, tr := range r.Transfers {
		if !tr.Completed && tr.Start < margin {
			t.Errorf("transfer started at %v never completed despite %v of runway", tr.Start, d)
		}
	}
	if renewals == 0 {
		t.Fatal("test exercised no renewals; shrink GrantKB")
	}
	if reacquires == 0 {
		t.Fatal("no reacquisitions: the fallback path never ran")
	}
	// No demotion storm: the sender stops using the dead grant before
	// routers demote at any scale. A handful of demotions (in-flight
	// stragglers) is fine; thousands is a storm.
	if got := r.Telemetry.Demotions.Total(); got > 100 {
		t.Errorf("demotions = %d, want few (no demotion storm)", got)
	}
}
