// Host constructors: each scheme couples a simulator node with a TCP
// stack and (for TVA and SIFF) the scheme's host shim.
package exp

import (
	"tva/internal/core"
	"tva/internal/netsim"
	"tva/internal/packet"
	"tva/internal/siff"
	"tva/internal/tcp"
	"tva/internal/tvatime"
)

// host is one end system in the simulation.
type host struct {
	node  *netsim.Node
	addr  packet.Addr
	stack *tcp.Stack

	// onRaw observes non-TCP payload deliveries (the destination's
	// misbehaviour detector, flood sinks); demoted reports arrival as
	// demoted legacy traffic.
	onRaw func(src packet.Addr, size int, demoted bool)

	// scheme-specific senders; exactly one of these is set for
	// capability schemes, none for plain hosts.
	tvaShim  *core.Shim
	siffShim *siff.Shim

	// sendRaw transmits an opaque payload of the given size toward dst
	// through whatever shim the scheme uses (attack generators).
	sendRaw func(dst packet.Addr, size int)
	// hasCaps reports sender authorization state toward dst (true for
	// schemes without capabilities).
	hasCaps func(dst packet.Addr) bool
	// beforeTransfer, if set, runs before each new user transfer
	// (SIFF re-handshakes per connection).
	beforeTransfer func(dst packet.Addr)
}

func (h *host) deliver(src packet.Addr, proto packet.Proto, payload any, size int, demoted bool) {
	if proto == packet.ProtoTCP {
		if seg, ok := payload.(*tcp.Segment); ok {
			h.stack.Receive(src, seg)
			return
		}
	}
	if h.onRaw != nil {
		h.onRaw(src, size, demoted)
	}
}

// newTCPStack wires a stack whose segments leave through send.
func newTCPStack(sim *netsim.Sim, addr packet.Addr, send func(packet.Addr, *tcp.Segment)) *tcp.Stack {
	return tcp.NewStack(addr, sim, sim.After, send, sim.Rand())
}

// newTVAHost builds a TVA end system with the given authorization
// policy.
func newTVAHost(sim *netsim.Sim, name string, addr packet.Addr, policy core.Policy, cfg Config) *host {
	h := &host{addr: addr, node: sim.NewNode(name)}
	shim := core.NewShim(addr, policy, sim, sim.Rand(), core.ShimConfig{
		Suite:      cfg.Suite,
		AutoReturn: true,
	})
	shim.Output = func(pkt *packet.Packet) { h.node.Send(pkt) }
	// The reliability engine: simulated hosts retransmit unanswered
	// requests/renewals and renew proactively (the overlay leaves this
	// to real deployments' own timers).
	shim.After = sim.After
	shim.Deliver = h.deliver
	h.tvaShim = shim
	h.stack = newTCPStack(sim, addr, func(dst packet.Addr, seg *tcp.Segment) {
		shim.Send(dst, packet.ProtoTCP, seg, seg.WireLen())
	})
	h.sendRaw = func(dst packet.Addr, size int) { shim.Send(dst, packet.ProtoRaw, nil, size) }
	h.hasCaps = shim.HasCaps
	h.node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
		shim.Receive(pkt)
		packet.Release(pkt)
	})
	return h
}

// siffPolicyAdapter exposes a core.Policy as a binary SIFF policy and
// keeps the client-side outbound matching working.
type siffPolicyAdapter struct{ p core.Policy }

func (a siffPolicyAdapter) Authorize(src packet.Addr, now tvatime.Time) bool {
	if a.p == nil {
		return false
	}
	_, _, ok := a.p.Authorize(src, now)
	return ok
}

// newSIFFHost builds a SIFF end system.
func newSIFFHost(sim *netsim.Sim, name string, addr packet.Addr, policy core.Policy, cfg Config) *host {
	h := &host{addr: addr, node: sim.NewNode(name)}
	shim := siff.NewShim(addr, siffPolicyAdapter{policy}, sim, sim.Rand(), siff.ShimConfig{
		SecretPeriod: cfg.SIFFSecretPeriod,
		AutoReturn:   true,
	})
	shim.Output = func(pkt *packet.Packet) { h.node.Send(pkt) }
	shim.Deliver = h.deliver
	h.siffShim = shim
	h.stack = newTCPStack(sim, addr, func(dst packet.Addr, seg *tcp.Segment) {
		if oa, ok := policy.(core.OutboundAware); ok && !shim.HasCaps(dst) {
			// Mirror the TVA shim's bookkeeping: requests we are about
			// to send keep the client policy's pinhole open.
			oa.NoteOutboundRequest(dst, sim.Now())
		}
		shim.Send(dst, packet.ProtoTCP, seg, seg.WireLen())
	})
	h.sendRaw = func(dst packet.Addr, size int) { shim.Send(dst, packet.ProtoRaw, nil, size) }
	h.hasCaps = shim.HasCaps
	h.beforeTransfer = shim.Forget
	h.node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
		shim.Receive(pkt)
		packet.Release(pkt)
	})
	return h
}

// newPlainHost builds an end system with no capability layer (legacy
// Internet and pushback schemes).
func newPlainHost(sim *netsim.Sim, name string, addr packet.Addr) *host {
	h := &host{addr: addr, node: sim.NewNode(name)}
	h.stack = newTCPStack(sim, addr, func(dst packet.Addr, seg *tcp.Segment) {
		pkt := packet.AcquirePacket()
		pkt.Src = addr
		pkt.Dst = dst
		pkt.TTL = 64
		pkt.Proto = packet.ProtoTCP
		pkt.Size = packet.OuterHdrLen + seg.WireLen()
		pkt.Payload = seg
		pkt.SentAt = sim.Now()
		h.node.Send(pkt)
	})
	h.sendRaw = func(dst packet.Addr, size int) {
		pkt := packet.AcquirePacket()
		pkt.Src = addr
		pkt.Dst = dst
		pkt.TTL = 64
		pkt.Proto = packet.ProtoRaw
		pkt.Size = packet.OuterHdrLen + size
		pkt.SentAt = sim.Now()
		h.node.Send(pkt)
	}
	h.hasCaps = func(packet.Addr) bool { return true }
	h.node.Handler = netsim.HandlerFunc(func(pkt *packet.Packet, _ *netsim.Iface) {
		h.deliver(pkt.Src, pkt.Proto, pkt.Payload, pkt.Size, false)
		packet.Release(pkt)
	})
	return h
}

// newHost dispatches on scheme.
func newHost(sim *netsim.Sim, name string, addr packet.Addr, policy core.Policy, cfg Config) *host {
	switch cfg.Scheme {
	case SchemeTVA:
		return newTVAHost(sim, name, addr, policy, cfg)
	case SchemeSIFF:
		return newSIFFHost(sim, name, addr, policy, cfg)
	default:
		return newPlainHost(sim, name, addr)
	}
}
