// The compact binary dump format. A dump is:
//
//	magic   [8]byte  "TVATRACE"
//	version uint16   (currently 1)
//	_       uint16   reserved
//	nhops   uint32
//	hops    nhops × (uint16 length + bytes)
//	nspans  uint64
//	spans   nspans × 56-byte fixed little-endian records, in Seq order
//
// Records are fixed-width and the span list is sorted by Seq before
// writing, so two same-seed runs produce byte-identical dumps.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

var dumpMagic = [8]byte{'T', 'V', 'A', 'T', 'R', 'A', 'C', 'E'}

// DumpVersion is the current binary dump format version.
const DumpVersion = 1

// spanRecSize is the fixed on-disk size of one span record.
const spanRecSize = 56

// Dump is a loaded trace file: the hop-name table plus every retained
// span in causal order.
type Dump struct {
	Hops  []string
	Spans []Span
}

// HopName resolves a Span.Hop against the dump's hop table.
func (d *Dump) HopName(h uint16) string {
	if h == NoHop || int(h) >= len(d.Hops) {
		return "-"
	}
	return d.Hops[h]
}

func putSpan(buf []byte, sp *Span) {
	binary.LittleEndian.PutUint64(buf[0:], sp.ID)
	binary.LittleEndian.PutUint64(buf[8:], sp.Seq)
	binary.LittleEndian.PutUint64(buf[16:], uint64(sp.Time))
	binary.LittleEndian.PutUint32(buf[24:], sp.Src)
	binary.LittleEndian.PutUint32(buf[28:], sp.Dst)
	binary.LittleEndian.PutUint32(buf[32:], sp.Size)
	binary.LittleEndian.PutUint16(buf[36:], sp.PathID)
	binary.LittleEndian.PutUint16(buf[38:], sp.Hop)
	buf[40] = byte(sp.Edge)
	buf[41] = sp.Class
	buf[42] = sp.Kind
	buf[43] = byte(sp.Reason)
	buf[44] = sp.Router
	buf[45] = 0
	buf[46] = 0
	buf[47] = 0
	binary.LittleEndian.PutUint64(buf[48:], 0) // reserved
}

func getSpan(buf []byte) Span {
	return Span{
		ID:     binary.LittleEndian.Uint64(buf[0:]),
		Seq:    binary.LittleEndian.Uint64(buf[8:]),
		Time:   tvatime.Time(binary.LittleEndian.Uint64(buf[16:])),
		Src:    binary.LittleEndian.Uint32(buf[24:]),
		Dst:    binary.LittleEndian.Uint32(buf[28:]),
		Size:   binary.LittleEndian.Uint32(buf[32:]),
		PathID: binary.LittleEndian.Uint16(buf[36:]),
		Hop:    binary.LittleEndian.Uint16(buf[38:]),
		Edge:   Edge(buf[40]),
		Class:  buf[41],
		Kind:   buf[42],
		Reason: telemetry.DropReason(buf[43]),
		Router: buf[44],
	}
}

// WriteDump serializes hop names and spans as a binary dump.
func WriteDump(w io.Writer, hops []string, spans []Span) error {
	var hdr [16]byte
	copy(hdr[:8], dumpMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:], DumpVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(hops)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var sbuf [2]byte
	for _, h := range hops {
		if len(h) > 0xffff {
			return fmt.Errorf("trace: hop name %q too long", h[:32])
		}
		binary.LittleEndian.PutUint16(sbuf[:], uint16(len(h)))
		if _, err := w.Write(sbuf[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(spans)))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	buf := make([]byte, spanRecSize)
	for i := range spans {
		putSpan(buf, &spans[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteDump serializes the recorder's retained spans (in causal order)
// plus its hop table.
func (r *Recorder) WriteDump(w io.Writer) error {
	return WriteDump(w, r.hops, r.Snapshot())
}

// maxDumpSpans bounds how much a reader will allocate for one dump
// (64 Mi spans ≈ 3.5 GiB would already be absurd; real dumps are MBs).
const maxDumpSpans = 1 << 26

// ErrBadDump reports a structurally invalid trace file.
var ErrBadDump = errors.New("trace: not a tvatrace dump")

// ReadDump parses a binary dump produced by WriteDump.
func ReadDump(r io.Reader) (*Dump, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ErrBadDump
	}
	if [8]byte(hdr[:8]) != dumpMagic {
		return nil, ErrBadDump
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != DumpVersion {
		return nil, fmt.Errorf("trace: dump version %d, want %d", v, DumpVersion)
	}
	nhops := binary.LittleEndian.Uint32(hdr[12:])
	if nhops > 1<<20 {
		return nil, ErrBadDump
	}
	d := &Dump{Hops: make([]string, 0, nhops)}
	var sbuf [2]byte
	for i := uint32(0); i < nhops; i++ {
		if _, err := io.ReadFull(r, sbuf[:]); err != nil {
			return nil, ErrBadDump
		}
		name := make([]byte, binary.LittleEndian.Uint16(sbuf[:]))
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, ErrBadDump
		}
		d.Hops = append(d.Hops, string(name))
	}
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, ErrBadDump
	}
	nspans := binary.LittleEndian.Uint64(cnt[:])
	if nspans > maxDumpSpans {
		return nil, fmt.Errorf("trace: dump claims %d spans, refusing", nspans)
	}
	d.Spans = make([]Span, 0, nspans)
	buf := make([]byte, spanRecSize)
	for i := uint64(0); i < nspans; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, ErrBadDump
		}
		d.Spans = append(d.Spans, getSpan(buf))
	}
	return d, nil
}
