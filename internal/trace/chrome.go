// Chrome Trace Event JSON export (the "JSON Array Format" that
// chrome://tracing and Perfetto's legacy importer load). Each
// registered hop — a router or host output interface — becomes one
// track (tid); queue-wait and transmit phases render as nested "X"
// complete events, while sends, verdicts, demotions, drops, and
// deliveries render as "i" instant events. The JSON is hand-built with
// strconv so output is byte-deterministic for a given span list.
package trace

import (
	"bufio"
	"io"
	"strconv"

	"tva/internal/tvatime"
)

// chromePID is the single process id all tracks live under.
const chromePID = 1

// routerTIDBase offsets router-internal (NoHop) events onto their own
// per-router tracks, above any plausible interface count.
const routerTIDBase = 100000

type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (c *chromeWriter) raw(s string) {
	if c.err == nil {
		_, c.err = c.w.WriteString(s)
	}
}

// event opens one trace-event object, writing the common fields.
func (c *chromeWriter) event(ph byte, name string, tid int, ts tvatime.Time) {
	if c.first {
		c.first = false
	} else {
		c.raw(",\n")
	}
	c.raw(`{"ph":"`)
	c.raw(string(ph))
	c.raw(`","pid":` + strconv.Itoa(chromePID))
	c.raw(`,"tid":` + strconv.Itoa(tid))
	c.raw(`,"ts":` + microseconds(ts))
	c.raw(`,"name":` + strconv.Quote(name))
}

func (c *chromeWriter) close() { c.raw("}") }

// microseconds renders a simulation time as fixed-precision trace-
// event microseconds.
func microseconds(t tvatime.Time) string {
	return strconv.FormatFloat(float64(t)/1e3, 'f', 3, 64)
}

func spanTID(sp *Span) int {
	if sp.Hop == NoHop {
		return routerTIDBase + int(sp.Router)
	}
	return int(sp.Hop)
}

// WriteChromeTrace renders the dump as Chrome Trace Event JSON.
func WriteChromeTrace(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	c := &chromeWriter{w: bw, first: true}
	c.raw(`{"displayTimeUnit":"ms","traceEvents":[` + "\n")

	// Track-name metadata: one per registered hop, plus router tracks
	// discovered from the spans.
	for i, name := range d.Hops {
		c.event('M', "thread_name", i, 0)
		c.raw(`,"args":{"name":` + strconv.Quote(name) + `}`)
		c.close()
	}
	routers := map[int]bool{}
	for i := range d.Spans {
		sp := &d.Spans[i]
		if sp.Hop == NoHop && !routers[int(sp.Router)] {
			routers[int(sp.Router)] = true
			c.event('M', "thread_name", routerTIDBase+int(sp.Router), 0)
			c.raw(`,"args":{"name":"router ` + strconv.Itoa(int(sp.Router)) + `"}`)
			c.close()
		}
	}

	// Phase reconstruction: walk spans in causal order, pairing each
	// dequeue with the open enqueue and each tx with the dequeue, per
	// (trace ID, hop).
	type key struct {
		id  uint64
		hop uint16
	}
	enq := map[key]*Span{}
	deq := map[key]*Span{}
	idArg := func(sp *Span) string { return `,"args":{"id":` + strconv.FormatUint(sp.ID, 10) }
	for i := range d.Spans {
		sp := &d.Spans[i]
		k := key{sp.ID, sp.Hop}
		switch sp.Edge {
		case EdgeEnqueue:
			enq[k] = sp
		case EdgeDequeue:
			if e := enq[k]; e != nil {
				c.event('X', "queue "+ClassName(sp.Class), spanTID(sp), e.Time)
				c.raw(`,"dur":` + microseconds(tvatime.Time(sp.Time-e.Time)))
				c.raw(idArg(sp) + `,"class":` + strconv.Quote(ClassName(sp.Class)))
				if ClassName(sp.Class) == "request" {
					c.raw(`,"path_id":` + strconv.Itoa(int(sp.PathID)))
				}
				c.raw("}")
				c.close()
				delete(enq, k)
			}
			deq[k] = sp
		case EdgeTx:
			if q := deq[k]; q != nil {
				c.event('X', "tx", spanTID(sp), q.Time)
				c.raw(`,"dur":` + microseconds(tvatime.Time(sp.Time-q.Time)))
				c.raw(idArg(sp) + "}")
				c.close()
				delete(deq, k)
			}
		case EdgeHealth:
			// Health transitions are process-global instants, not packet
			// events: mark them with global scope so the viewer draws a
			// full-height line at the onset.
			c.event('i', "health "+HealthStateName(sp.Class), spanTID(sp), sp.Time)
			c.raw(`,"s":"g"`)
			c.raw(`,"args":{"from":` + strconv.Quote(HealthStateName(sp.Kind-1)) +
				`,"to":` + strconv.Quote(HealthStateName(sp.Class)) + "}")
			c.close()
		case EdgeSend, EdgeVerdict, EdgeDemote, EdgeDrop, EdgeDeliver:
			c.event('i', sp.Edge.String(), spanTID(sp), sp.Time)
			c.raw(`,"s":"t"`)
			c.raw(idArg(sp))
			if sp.Edge == EdgeVerdict {
				c.raw(`,"class":` + strconv.Quote(ClassName(sp.Class)))
			}
			if sp.Edge == EdgeDrop || sp.Edge == EdgeDemote {
				c.raw(`,"reason":` + strconv.Quote(sp.Reason.String()))
			}
			c.raw("}")
			c.close()
		}
	}
	c.raw("\n]}\n")
	if c.err != nil {
		return c.err
	}
	return bw.Flush()
}
