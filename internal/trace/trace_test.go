package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

func span(id uint64, t tvatime.Time, edge Edge, hop uint16) Span {
	return Span{ID: id, Time: t, Src: 10, Dst: 20, Size: 1000, Edge: edge, Hop: hop}
}

func TestRecorderSeqOrder(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 10; i++ {
		r.Record(span(uint64(i+1), tvatime.Time(i), EdgeSend, NoHop))
	}
	got := r.Snapshot()
	if len(got) != 10 {
		t.Fatalf("snapshot len = %d, want 10", len(got))
	}
	for i, sp := range got {
		if sp.Seq != uint64(i+1) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (causal order)", i, sp.Seq, i+1)
		}
	}
	if r.Recorded() != 10 || r.Overwritten() != 0 {
		t.Fatalf("Recorded=%d Overwritten=%d, want 10/0", r.Recorded(), r.Overwritten())
	}
}

func TestRecorderWraparoundOldestFirst(t *testing.T) {
	// Capacity 16 over 8 shards = 2 spans per shard. Five spans of one
	// trace ID all land in one shard; only the newest two survive, in
	// causal order.
	r := NewRecorder(16)
	for i := 0; i < 5; i++ {
		r.Record(span(1, tvatime.Time(i), EdgeEnqueue, 0))
	}
	got := r.Snapshot()
	if len(got) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(got))
	}
	if got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("snapshot Seqs = %d,%d, want 4,5 (oldest first after overwrite)", got[0].Seq, got[1].Seq)
	}
	if r.Overwritten() != 3 {
		t.Fatalf("Overwritten = %d, want 3", r.Overwritten())
	}
}

func TestRecorderShardIsolation(t *testing.T) {
	// A storm on trace ID 8 (shard 0) must not evict ID 1's (shard 1)
	// history.
	r := NewRecorder(16)
	r.Record(span(1, 0, EdgeSend, NoHop))
	for i := 0; i < 100; i++ {
		r.Record(span(8, tvatime.Time(i+1), EdgeEnqueue, 0))
	}
	var kept bool
	for _, sp := range r.Snapshot() {
		if sp.ID == 1 {
			kept = true
		}
	}
	if !kept {
		t.Fatal("shard isolation failed: ID 1's span evicted by ID 8's storm")
	}
}

func TestRecordNoAllocs(t *testing.T) {
	r := NewRecorder(1 << 10)
	sp := span(3, 7, EdgeTx, 2)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(sp)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestNextIDMonotonic(t *testing.T) {
	r := NewRecorder(8)
	if r.NextID() != 1 || r.NextID() != 2 || r.LastID() != 2 {
		t.Fatal("NextID not monotonic from 1")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	h0 := r.RegisterHop("user0#0->L")
	h1 := r.RegisterHop("L#0->R")
	r.Record(Span{ID: 1, Time: 5, Src: 1, Dst: 2, Size: 1048, PathID: 77,
		Hop: h0, Edge: EdgeEnqueue, Class: 1, Kind: 1})
	r.Record(Span{ID: 1, Time: 9, Src: 1, Dst: 2, Size: 1048,
		Hop: h1, Edge: EdgeDrop, Class: 1, Kind: 1,
		Reason: telemetry.DropReason(3), Router: 2})

	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Hops) != 2 || d.Hops[0] != "user0#0->L" || d.Hops[1] != "L#0->R" {
		t.Fatalf("hops = %v", d.Hops)
	}
	want := r.Snapshot()
	if len(d.Spans) != len(want) {
		t.Fatalf("spans = %d, want %d", len(d.Spans), len(want))
	}
	for i := range want {
		if d.Spans[i] != want[i] {
			t.Fatalf("span %d: got %+v want %+v", i, d.Spans[i], want[i])
		}
	}
}

func TestReadDumpRejectsGarbage(t *testing.T) {
	if _, err := ReadDump(strings.NewReader("not a trace dump at all")); err == nil {
		t.Fatal("ReadDump accepted garbage")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := NewRecorder(64)
	hop := r.RegisterHop("L#0->R")
	r.Record(Span{ID: 1, Time: 1000, Edge: EdgeSend, Hop: hop, Class: 1, Kind: 1})
	r.Record(Span{ID: 1, Time: 2000, Edge: EdgeEnqueue, Hop: hop, Class: 1, PathID: 3})
	r.Record(Span{ID: 1, Time: 3000, Edge: EdgeDequeue, Hop: hop, Class: 1})
	r.Record(Span{ID: 1, Time: 4000, Edge: EdgeTx, Hop: hop, Class: 1})
	r.Record(Span{ID: 1, Time: 5000, Edge: EdgeVerdict, Hop: NoHop, Class: 2, Router: 1})
	r.Record(Span{ID: 1, Time: 6000, Edge: EdgeDeliver, Hop: hop, Class: 2})

	var dumpBuf bytes.Buffer
	if err := r.WriteDump(&dumpBuf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(&dumpBuf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, d); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", out.String())
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	var sawQueue, sawTx bool
	for _, ev := range parsed.TraceEvents {
		switch ev["name"] {
		case "queue request":
			sawQueue = true
		case "tx":
			sawTx = true
		}
	}
	if !sawQueue || !sawTx {
		t.Fatalf("missing reconstructed phases: queue=%v tx=%v", sawQueue, sawTx)
	}
}

func TestAnalyzeDeliveredChain(t *testing.T) {
	ch := Chain{ID: 1, Spans: []Span{
		{ID: 1, Seq: 1, Time: 0, Edge: EdgeSend, Hop: 0, Class: 1, Src: 1, Dst: 2, Size: 100},
		{ID: 1, Seq: 2, Time: 0, Edge: EdgeEnqueue, Hop: 0, Class: 1, Src: 1, Dst: 2, Size: 100},
		{ID: 1, Seq: 3, Time: 10, Edge: EdgeDequeue, Hop: 0, Class: 1},
		{ID: 1, Seq: 4, Time: 15, Edge: EdgeTx, Hop: 0, Class: 1},
		{ID: 1, Seq: 5, Time: 20, Edge: EdgeEnqueue, Hop: 1, Class: 1},
		{ID: 1, Seq: 6, Time: 50, Edge: EdgeDequeue, Hop: 1, Class: 1},
		{ID: 1, Seq: 7, Time: 55, Edge: EdgeTx, Hop: 1, Class: 1},
		{ID: 1, Seq: 8, Time: 60, Edge: EdgeDeliver, Hop: 2, Class: 1, Src: 1, Dst: 2, Size: 100},
	}}
	st := Analyze(ch)
	if st.Outcome != ChainDelivered {
		t.Fatalf("outcome = %s, want delivered", st.Outcome)
	}
	if st.Total() != 60 {
		t.Fatalf("total = %d, want 60", st.Total())
	}
	if len(st.Visits) != 2 {
		t.Fatalf("visits = %d, want 2", len(st.Visits))
	}
	if w := st.Visits[0].Wait(); w != 10 {
		t.Fatalf("hop0 wait = %d, want 10", w)
	}
	if s := st.Visits[0].Service(); s != 5 {
		t.Fatalf("hop0 service = %d, want 5", s)
	}
	if hop, wait := st.Bottleneck(); hop != 1 || wait != 30 {
		t.Fatalf("bottleneck = hop %d wait %d, want hop 1 wait 30", hop, wait)
	}
	if q := st.QueueWait(); q != 40 {
		t.Fatalf("queue wait = %d, want 40", q)
	}
}

func TestAnalyzeDroppedChain(t *testing.T) {
	ch := Chain{ID: 2, Spans: []Span{
		{ID: 2, Seq: 1, Time: 0, Edge: EdgeSend, Hop: 0},
		{ID: 2, Seq: 2, Time: 5, Edge: EdgeDrop, Hop: 1, Reason: telemetry.DropReason(2)},
	}}
	st := Analyze(ch)
	if st.Outcome != ChainDropped || st.DropHop != 1 || st.DropTime != 5 {
		t.Fatalf("drop attribution wrong: %+v", st)
	}
	if st.DropReason != telemetry.DropReason(2) {
		t.Fatalf("reason = %v", st.DropReason)
	}
}

func TestQueueSharers(t *testing.T) {
	spans := []Span{
		{ID: 1, Seq: 1, Time: 0, Edge: EdgeEnqueue, Hop: 0},
		{ID: 2, Seq: 2, Time: 1, Edge: EdgeEnqueue, Hop: 0},
		{ID: 3, Seq: 3, Time: 2, Edge: EdgeEnqueue, Hop: 0},
		{ID: 1, Seq: 4, Time: 3, Edge: EdgeDequeue, Hop: 0}, // gone before t=5
		{ID: 4, Seq: 5, Time: 4, Edge: EdgeEnqueue, Hop: 1}, // other hop
		{ID: 5, Seq: 6, Time: 5, Edge: EdgeDrop, Hop: 0},    // the victim
		{ID: 6, Seq: 7, Time: 6, Edge: EdgeEnqueue, Hop: 0}, // after t
	}
	got := QueueSharers(spans, 0, 5, 5)
	want := []uint64{2, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("sharers = %v, want %v", got, want)
	}
}

func TestChainsGroupsAndSorts(t *testing.T) {
	spans := []Span{
		{ID: 2, Seq: 3, Edge: EdgeDeliver},
		{ID: 1, Seq: 2, Edge: EdgeDeliver},
		{ID: 2, Seq: 1, Edge: EdgeSend},
	}
	chains := Chains(spans)
	if len(chains) != 2 || chains[0].ID != 1 || chains[1].ID != 2 {
		t.Fatalf("chains = %+v", chains)
	}
	if chains[1].Spans[0].Seq != 1 || chains[1].Spans[1].Seq != 3 {
		t.Fatal("chain spans not Seq-sorted")
	}
}

func TestAggregateHops(t *testing.T) {
	stats := []ChainStats{
		{Src: 1, Dst: 2, Visits: []HopVisit{{Hop: 0, Enqueue: 0, Dequeue: 10, Tx: 12}}},
		{Src: 1, Dst: 2, Visits: []HopVisit{{Hop: 0, Enqueue: 0, Dequeue: 30, Tx: 32}}},
		{Src: 9, Dst: 2, Visits: []HopVisit{{Hop: 0, Enqueue: 0, Dequeue: 100, Tx: 101}}},
	}
	aggs := AggregateHops(stats, 1, 0)
	if len(aggs) != 1 || aggs[0].Visits != 2 {
		t.Fatalf("aggs = %+v", aggs)
	}
	if aggs[0].MeanWait() != 20 || aggs[0].WaitMax != 30 {
		t.Fatalf("wait agg = mean %d max %d", aggs[0].MeanWait(), aggs[0].WaitMax)
	}
}

func TestEdgeAndClassNames(t *testing.T) {
	if EdgeSend.String() != "send" || EdgeDeliver.String() != "deliver" {
		t.Fatal("edge names wrong")
	}
	if Edge(200).String() != "unknown" {
		t.Fatal("out-of-range edge should be unknown")
	}
	if ClassName(1) != "request" || ClassName(2) != "regular" || ClassName(0) != "legacy" {
		t.Fatal("class names wrong")
	}
	if KindName(0) != "legacy" || KindName(4) != "renewal" {
		t.Fatal("kind names wrong")
	}
}
