// Package trace is the causal packet-lifecycle tracing subsystem: a
// span-based flight recorder that follows a packet end-to-end through
// the simulator. Every injected packet gets a cheap monotonic trace ID
// (carried in the pooled packet.Packet, wiped by the pool reset), and
// each lifecycle edge — host send, queue enqueue/dequeue, capability
// verdict, demotion, link transmit, drop, delivery — becomes one
// fixed-size Span in a sharded, preallocated ring. With the recorder
// attached, Record is two array stores and an increment: no
// allocations, no maps, no interface dispatch, so the forwarding hot
// path stays zero-alloc with tracing on (pinned by the hotpath
// analyzer and a bench).
//
// Like telemetry, this package sits below every data-path package: it
// imports only the standard library, tvatime, and telemetry, so
// netsim, core, sched, and exp can all depend on it without cycles.
package trace

import (
	"sort"

	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// Edge identifies which lifecycle transition a Span records.
type Edge uint8

const (
	// EdgeSend: the origin host injected the packet into the network.
	// Emitted exactly once per trace ID, when the ID is assigned.
	EdgeSend Edge = iota
	// EdgeVerdict: a router's capability check classified the packet
	// (Span.Class holds the verdict: request, regular, or legacy).
	EdgeVerdict
	// EdgeDemote: a router demoted the packet to legacy service
	// (Span.Reason holds the attributed cause, Span.Router the culprit).
	EdgeDemote
	// EdgeEnqueue: the packet entered a link's output scheduler
	// (request queues carry Span.PathID; Span.Class says which band).
	EdgeEnqueue
	// EdgeDequeue: the scheduler selected the packet for transmission.
	// Dequeue−Enqueue is the queue wait at that hop.
	EdgeDequeue
	// EdgeTx: serialization onto the wire finished. Tx−Dequeue is the
	// service (transmission) time; the next hop's first edge minus Tx
	// is the propagation time.
	EdgeTx
	// EdgeDrop: the packet died (queue overflow, impairment, flush);
	// Span.Reason carries the attributed telemetry.DropReason.
	EdgeDrop
	// EdgeDeliver: the packet reached its destination host.
	EdgeDeliver
	// EdgeHealth: the attack-onset health engine changed state. Not a
	// packet-lifecycle edge — the span carries no packet identity
	// (ID 0); Span.Kind holds the previous metrics.State + 1 and
	// Span.Class the new one, so forensics can line up "when did the
	// detector fire" against the packet timeline around it.
	EdgeHealth

	// NumEdges sizes per-edge count arrays.
	NumEdges = int(EdgeHealth) + 1
)

var edgeNames = [NumEdges]string{
	EdgeSend:    "send",
	EdgeVerdict: "verdict",
	EdgeDemote:  "demote",
	EdgeEnqueue: "enqueue",
	EdgeDequeue: "dequeue",
	EdgeTx:      "tx",
	EdgeDrop:    "drop",
	EdgeDeliver: "deliver",
	EdgeHealth:  "health",
}

// String returns the stable name used in text and JSON output.
func (e Edge) String() string {
	if int(e) < NumEdges {
		return edgeNames[e]
	}
	return "unknown"
}

// HealthStateName names a raw metrics.State byte carried in an
// EdgeHealth span (kept here so trace need not import metrics; the
// metrics package tests assert the two stay in sync).
func HealthStateName(s uint8) string {
	switch s {
	case 0:
		return "healthy"
	case 1:
		return "degraded"
	case 2:
		return "under-attack"
	case 3:
		return "recovered"
	default:
		return "unknown"
	}
}

// ClassName names a raw packet.Class byte (kept here so trace need not
// import packet).
func ClassName(c uint8) string {
	switch c {
	case 1:
		return "request"
	case 2:
		return "regular"
	default:
		return "legacy"
	}
}

// KindName names a Span.Kind byte (shim kind + 1; 0 means no shim
// header).
func KindName(k uint8) string {
	switch k {
	case 1:
		return "request"
	case 2:
		return "regular"
	case 3:
		return "nonce-only"
	case 4:
		return "renewal"
	default:
		return "legacy"
	}
}

// NoHop is the Hop value for spans that are not tied to a registered
// interface (router-internal verdicts and demotions).
const NoHop = ^uint16(0)

// Span is one lifecycle event. It is a flat fixed-size value — no
// pointers, no strings — so rings of them preallocate cleanly and the
// binary dump format is a fixed-width record.
type Span struct {
	// ID is the packet's trace ID (monotonic from 1; 0 means untraced).
	ID uint64
	// Seq is the global emission order, assigned by Record. Sorting by
	// Seq reconstructs causal order even across ring shards.
	Seq uint64
	// Time is the simulation time of the event.
	Time tvatime.Time
	// Src and Dst are the packet's addresses (raw uint32 form).
	Src, Dst uint32
	// Size is the packet's wire size in bytes.
	Size uint32
	// PathID is the request-channel path identifier for request-band
	// enqueues, else 0.
	PathID uint16
	// Hop identifies the interface (registered via RegisterHop) the
	// event happened on, or NoHop.
	Hop uint16
	// Edge is the lifecycle transition.
	Edge Edge
	// Class is the packet's service class at event time (the raw
	// packet.Class value: 0 legacy, 1 request, 2 regular).
	Class uint8
	// Kind is the shim header kind + 1 (0 means no shim header, i.e. a
	// legacy packet).
	Kind uint8
	// Reason is the attributed drop/demotion cause for EdgeDrop and
	// EdgeDemote spans.
	Reason telemetry.DropReason
	// Router is the router ID for EdgeVerdict/EdgeDemote spans.
	Router uint8
}

// shard is one preallocated ring. Spans hash to shards by trace ID, so
// a drop storm of one flood's packets can overwrite at most its own
// shards' history while other flows' spans survive.
type shard struct {
	spans []Span
	next  int
	total uint64
}

// Recorder is the flight recorder: a fixed set of preallocated span
// rings plus the monotonic trace-ID counter. It is not synchronized —
// the discrete-event simulator is single-goroutine, and the per-call
// Seq counter is what makes dumps byte-identical across same-seed
// runs.
type Recorder struct {
	shards []shard
	mask   uint64
	nextID uint64
	seq    uint64
	hops   []string
}

// DefaultCapacity is the per-recorder span budget used when callers
// pass 0: 1<<18 spans × ~56 B ≈ 14 MiB, enough for every span of a
// tvasim-scale run.
const DefaultCapacity = 1 << 18

// defaultShards keeps one flow's storm from evicting everything.
const defaultShards = 8

// NewRecorder returns a recorder holding at most capacity spans
// (rounded up to a multiple of the shard count). capacity <= 0 selects
// DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := defaultShards
	per := (capacity + n - 1) / n
	r := &Recorder{
		shards: make([]shard, n),
		mask:   uint64(n - 1),
	}
	for i := range r.shards {
		r.shards[i].spans = make([]Span, per)
	}
	return r
}

// NextID issues the next monotonic trace ID (starting at 1).
func (r *Recorder) NextID() uint64 {
	r.nextID++
	return r.nextID
}

// LastID returns the highest trace ID issued so far.
func (r *Recorder) LastID() uint64 { return r.nextID }

// Record appends one span to the ring shard owned by its trace ID,
// overwriting the shard's oldest span when full. Two array stores and
// three integer ops: safe on the forwarding hot path.
//
//tva:hotpath
func (r *Recorder) Record(sp Span) {
	r.seq++
	sp.Seq = r.seq
	sh := &r.shards[sp.ID&r.mask]
	sh.spans[sh.next] = sp
	sh.next++
	if sh.next == len(sh.spans) {
		sh.next = 0
	}
	sh.total++
}

// RegisterHop interns a hop (interface) name and returns its span Hop
// id. Called once per interface at topology-construction time, never
// on the data path.
func (r *Recorder) RegisterHop(name string) uint16 {
	r.hops = append(r.hops, name)
	return uint16(len(r.hops) - 1)
}

// Hops returns the registered hop names, indexed by Span.Hop.
func (r *Recorder) Hops() []string { return r.hops }

// HopName resolves a Span.Hop to its registered name.
func (r *Recorder) HopName(h uint16) string {
	if h == NoHop || int(h) >= len(r.hops) {
		return "-"
	}
	return r.hops[h]
}

// Recorded returns the total number of spans ever recorded, including
// those since overwritten.
func (r *Recorder) Recorded() uint64 {
	var t uint64
	for i := range r.shards {
		t += r.shards[i].total
	}
	return t
}

// Overwritten returns how many spans were evicted by ring wraparound.
func (r *Recorder) Overwritten() uint64 {
	var t uint64
	for i := range r.shards {
		sh := &r.shards[i]
		held := sh.total
		if held > uint64(len(sh.spans)) {
			t += sh.total - uint64(len(sh.spans))
		}
	}
	return t
}

// Snapshot returns every retained span in causal (Seq) order. It
// allocates and is meant for export, not the data path.
func (r *Recorder) Snapshot() []Span {
	var n int
	for i := range r.shards {
		sh := &r.shards[i]
		if sh.total < uint64(len(sh.spans)) {
			n += int(sh.total)
		} else {
			n += len(sh.spans)
		}
	}
	out := make([]Span, 0, n)
	for i := range r.shards {
		sh := &r.shards[i]
		if sh.total < uint64(len(sh.spans)) {
			out = append(out, sh.spans[:sh.next]...)
		} else {
			out = append(out, sh.spans[sh.next:]...)
			out = append(out, sh.spans[:sh.next]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
