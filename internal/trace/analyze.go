// Offline analysis over recorded spans: chain reconstruction (all
// spans of one trace ID in causal order), per-hop latency attribution
// (queue wait vs service time vs propagation), and drop forensics
// (who was sharing the queue when a packet died). Everything here
// allocates freely — it runs on dumps, never on the data path.
package trace

import (
	"sort"

	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// Chain is every retained span of one trace ID, in causal (Seq) order.
type Chain struct {
	ID    uint64
	Spans []Span
}

// Chains groups spans by trace ID. Input order does not matter; each
// chain comes out Seq-sorted and chains are ordered by ID. Chains that
// lost their head to ring wraparound are still returned — the caller
// can detect truncation by a missing EdgeSend. EdgeHealth spans carry
// no packet identity (ID 0) and are excluded rather than grouped into
// a phantom chain.
func Chains(spans []Span) []Chain {
	byID := make(map[uint64][]Span)
	for _, sp := range spans {
		if sp.Edge == EdgeHealth {
			continue
		}
		byID[sp.ID] = append(byID[sp.ID], sp)
	}
	out := make([]Chain, 0, len(byID))
	for id, sps := range byID {
		sort.Slice(sps, func(i, j int) bool { return sps[i].Seq < sps[j].Seq })
		out = append(out, Chain{ID: id, Spans: sps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NoTime marks a lifecycle edge that was not observed for a visit.
const NoTime = tvatime.Time(-1)

// HopVisit is one traversal of one hop, decomposed into the queue wait
// (Dequeue−Enqueue) and service time (Tx−Dequeue). Unobserved edges
// are NoTime and the corresponding durations negative.
type HopVisit struct {
	Hop     uint16
	Class   uint8
	PathID  uint16
	Enqueue tvatime.Time
	Dequeue tvatime.Time
	Tx      tvatime.Time
}

// Wait is the time spent queued at this hop (negative if unobserved).
func (v HopVisit) Wait() tvatime.Duration {
	if v.Enqueue == NoTime || v.Dequeue == NoTime {
		return -1
	}
	return v.Dequeue.Sub(v.Enqueue)
}

// Service is the transmission (serialization) time at this hop
// (negative if unobserved).
func (v HopVisit) Service() tvatime.Duration {
	if v.Dequeue == NoTime || v.Tx == NoTime {
		return -1
	}
	return v.Tx.Sub(v.Dequeue)
}

// Outcome classifies how a chain ended.
type Outcome uint8

// Chain outcomes.
const (
	// ChainInFlight: neither a drop nor a delivery was recorded (still
	// queued at end of run, or edges lost to wraparound).
	ChainInFlight Outcome = iota
	// ChainDelivered: the packet reached its destination host.
	ChainDelivered
	// ChainDropped: the packet died in the network.
	ChainDropped
)

// String returns the stable outcome name.
func (o Outcome) String() string {
	switch o {
	case ChainDelivered:
		return "delivered"
	case ChainDropped:
		return "dropped"
	}
	return "in-flight"
}

// ChainStats is one chain decomposed for latency attribution.
type ChainStats struct {
	ID       uint64
	Src, Dst uint32
	Size     uint32
	Class    uint8 // class at the last observed edge (post-demotion)
	Outcome  Outcome

	// Send is the injection time (NoTime if the send span was lost to
	// wraparound); End is the delivery or drop time, else the last
	// observed edge's time.
	Send, End tvatime.Time

	// Drop attribution (valid when Outcome == ChainDropped).
	DropReason telemetry.DropReason
	DropHop    uint16
	DropTime   tvatime.Time

	// Demotions this packet suffered (router IDs, in order).
	DemotedBy []uint8

	// Visits are the hop traversals in path order.
	Visits []HopVisit
}

// Total is end-to-end elapsed time (negative if the send edge is
// missing).
func (c *ChainStats) Total() tvatime.Duration {
	if c.Send == NoTime {
		return -1
	}
	return c.End.Sub(c.Send)
}

// QueueWait sums the observed queue waits across all visits.
func (c *ChainStats) QueueWait() tvatime.Duration {
	var sum tvatime.Duration
	for _, v := range c.Visits {
		if w := v.Wait(); w > 0 {
			sum += w
		}
	}
	return sum
}

// Bottleneck returns the visit with the largest queue wait, or a
// zero-wait visit at NoHop when nothing was observed.
func (c *ChainStats) Bottleneck() (hop uint16, wait tvatime.Duration) {
	hop = NoHop
	for _, v := range c.Visits {
		if w := v.Wait(); w > wait {
			hop, wait = v.Hop, w
		}
	}
	return hop, wait
}

// Analyze decomposes one chain into per-hop visits and an outcome.
func Analyze(ch Chain) ChainStats {
	st := ChainStats{ID: ch.ID, Send: NoTime, End: NoTime, DropHop: NoHop}
	visitAt := make(map[uint16]int) // hop -> open visit index
	for _, sp := range ch.Spans {
		st.Src, st.Dst, st.Size, st.Class = sp.Src, sp.Dst, sp.Size, sp.Class
		st.End = sp.Time
		switch sp.Edge {
		case EdgeSend:
			st.Send = sp.Time
		case EdgeDemote:
			st.DemotedBy = append(st.DemotedBy, sp.Router)
		case EdgeEnqueue:
			visitAt[sp.Hop] = len(st.Visits)
			st.Visits = append(st.Visits, HopVisit{
				Hop: sp.Hop, Class: sp.Class, PathID: sp.PathID,
				Enqueue: sp.Time, Dequeue: NoTime, Tx: NoTime,
			})
		case EdgeDequeue:
			if i, ok := visitAt[sp.Hop]; ok {
				st.Visits[i].Dequeue = sp.Time
			}
		case EdgeTx:
			if i, ok := visitAt[sp.Hop]; ok {
				st.Visits[i].Tx = sp.Time
				delete(visitAt, sp.Hop)
			}
		case EdgeDrop:
			st.Outcome = ChainDropped
			st.DropReason = sp.Reason
			st.DropHop = sp.Hop
			st.DropTime = sp.Time
		case EdgeDeliver:
			st.Outcome = ChainDelivered
		}
	}
	return st
}

// AnalyzeAll maps Analyze over Chains(spans).
func AnalyzeAll(spans []Span) []ChainStats {
	chains := Chains(spans)
	out := make([]ChainStats, len(chains))
	for i, ch := range chains {
		out[i] = Analyze(ch)
	}
	return out
}

// QueueSharers returns the trace IDs resident in hop's queue at time t
// (enqueued at or before t and not yet dequeued or dropped there),
// excluding excludeID — the "what was sharing its queue" half of drop
// forensics. IDs come back sorted.
func QueueSharers(spans []Span, hop uint16, t tvatime.Time, excludeID uint64) []uint64 {
	type window struct {
		enq  tvatime.Time
		exit tvatime.Time
	}
	occ := make(map[uint64]window)
	for _, sp := range spans {
		if sp.Hop != hop || sp.ID == excludeID {
			continue
		}
		switch sp.Edge {
		case EdgeEnqueue:
			occ[sp.ID] = window{enq: sp.Time, exit: NoTime}
		case EdgeDequeue, EdgeDrop:
			if w, ok := occ[sp.ID]; ok && w.exit == NoTime {
				w.exit = sp.Time
				occ[sp.ID] = w
			}
		}
	}
	var ids []uint64
	for id, w := range occ {
		if w.enq <= t && (w.exit == NoTime || w.exit > t) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HopAggregate is aggregated wait/service over every visit to one hop.
type HopAggregate struct {
	Hop                    uint16
	Visits                 int
	WaitSum, WaitMax       tvatime.Duration
	ServiceSum, ServiceMax tvatime.Duration
}

// MeanWait is the average observed queue wait.
func (h HopAggregate) MeanWait() tvatime.Duration {
	if h.Visits == 0 {
		return 0
	}
	return h.WaitSum / tvatime.Duration(h.Visits)
}

// MeanService is the average observed service time.
func (h HopAggregate) MeanService() tvatime.Duration {
	if h.Visits == 0 {
		return 0
	}
	return h.ServiceSum / tvatime.Duration(h.Visits)
}

// AggregateHops reduces chain stats to per-hop aggregates, optionally
// filtered to one flow (src, dst raw addresses; 0,0 means every flow).
// Hops come back in hop-id order.
func AggregateHops(stats []ChainStats, src, dst uint32) []HopAggregate {
	agg := make(map[uint16]*HopAggregate)
	for i := range stats {
		st := &stats[i]
		if (src != 0 && st.Src != src) || (dst != 0 && st.Dst != dst) {
			continue
		}
		for _, v := range st.Visits {
			w, s := v.Wait(), v.Service()
			if w < 0 && s < 0 {
				continue
			}
			a := agg[v.Hop]
			if a == nil {
				a = &HopAggregate{Hop: v.Hop}
				agg[v.Hop] = a
			}
			a.Visits++
			if w >= 0 {
				a.WaitSum += w
				if w > a.WaitMax {
					a.WaitMax = w
				}
			}
			if s >= 0 {
				a.ServiceSum += s
				if s > a.ServiceMax {
					a.ServiceMax = s
				}
			}
		}
	}
	out := make([]HopAggregate, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hop < out[j].Hop })
	return out
}
