package mac

import (
	"testing"
	"testing/quick"
)

func TestKeyedDeterministic(t *testing.T) {
	secret := NewSecret()
	for name, factory := range map[string]KeyedFactory{"aes": NewAES, "fnv": NewFNV} {
		k1 := factory(secret)
		k2 := factory(secret)
		if k1.MAC56(1, 2, 3) != k2.MAC56(1, 2, 3) {
			t.Errorf("%s: same secret, same input gave different MACs", name)
		}
	}
}

func TestKeyedKeyDependence(t *testing.T) {
	s1, s2 := NewSecret(), NewSecret()
	if s1 == s2 {
		t.Fatal("NewSecret returned identical secrets")
	}
	for name, factory := range map[string]KeyedFactory{"aes": NewAES, "fnv": NewFNV} {
		if factory(s1).MAC56(1, 2, 3) == factory(s2).MAC56(1, 2, 3) {
			t.Errorf("%s: different secrets gave identical MACs", name)
		}
	}
}

func TestKeyedInputSensitivity(t *testing.T) {
	secret := NewSecret()
	for name, factory := range map[string]KeyedFactory{"aes": NewAES, "fnv": NewFNV} {
		k := factory(secret)
		base := k.MAC56(10, 20, 30)
		for i, other := range []uint64{k.MAC56(11, 20, 30), k.MAC56(10, 21, 30), k.MAC56(10, 20, 31)} {
			if other == base {
				t.Errorf("%s: flipping input %d did not change MAC", name, i)
			}
		}
	}
}

func TestMAC56Within56Bits(t *testing.T) {
	secret := NewSecret()
	aes, fnv := NewAES(secret), NewFNV(secret)
	f := func(a, b, c uint64) bool {
		return aes.MAC56(a, b, c) <= Mask56 && fnv.MAC56(a, b, c) <= Mask56
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSHA56Deterministic(t *testing.T) {
	if SHA56(42, 100, 10) != SHA56(42, 100, 10) {
		t.Error("SHA56 not deterministic")
	}
	if FastSHA56(42, 100, 10) != FastSHA56(42, 100, 10) {
		t.Error("FastSHA56 not deterministic")
	}
}

func TestSHA56InputSensitivity(t *testing.T) {
	for name, h := range map[string]func(uint64, uint32, uint8) uint64{"sha": SHA56, "fast": FastSHA56} {
		base := h(42, 100, 10)
		if h(43, 100, 10) == base || h(42, 101, 10) == base || h(42, 100, 11) == base {
			t.Errorf("%s: input change did not change hash", name)
		}
	}
}

func TestSHA56Within56Bits(t *testing.T) {
	f := func(pre uint64, n uint32, tt uint8) bool {
		return SHA56(pre, n, tt) <= Mask56 && FastSHA56(pre, n, tt) <= Mask56
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFNVDistribution sanity-checks that the fast hash spreads low bits
// (it feeds DRR queue selection in simulations).
func TestFNVDistribution(t *testing.T) {
	k := NewFNV(NewSecret())
	buckets := make([]int, 16)
	const n = 4096
	for i := uint64(0); i < n; i++ {
		buckets[k.MAC56(i, i*3, 7)&15]++
	}
	for b, c := range buckets {
		if c < n/32 || c > n/4 {
			t.Errorf("bucket %d badly skewed: %d of %d", b, c, n)
		}
	}
}

func BenchmarkAESMAC56(b *testing.B) {
	k := NewAES(NewSecret())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.MAC56(uint64(i), 2, 3)
	}
}

func BenchmarkFNVMAC56(b *testing.B) {
	k := NewFNV(NewSecret())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.MAC56(uint64(i), 2, 3)
	}
}

func BenchmarkSHA56(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SHA56(uint64(i), 100, 10)
	}
}
