// Package mac provides the 56-bit keyed and unkeyed hash functions that
// TVA capabilities are built from (paper §3.4, §6).
//
// The paper's prototype uses an AES-based hash for pre-capabilities (the
// keyed, router-secret hash) and SHA-1 for capabilities (the public hash
// the destination can compute). Both are reproduced here on the standard
// library. A fast keyed FNV variant is provided for large simulations
// where cryptographic strength is irrelevant to the measured behaviour;
// the choice is an explicit ablation (see DESIGN.md §5).
package mac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha1"
	"encoding/binary"
)

// Mask56 keeps the low 56 bits of a hash, the size of the hash field in
// a TVA capability (Fig. 3: 8-bit timestamp + 56-bit hash).
const Mask56 = (uint64(1) << 56) - 1

// Keyed computes a 56-bit MAC over a small fixed-size message. A router
// uses one Keyed instance per secret; rotating the secret means
// constructing a fresh Keyed.
//
// Implementations may reuse internal scratch buffers across calls (the
// AES variant does, to keep the forwarding path allocation-free), so a
// Keyed instance is NOT safe for concurrent use. The capability
// Authority and the SIFF Marker serialize every MAC56 call under their
// own locks.
type Keyed interface {
	// MAC56 hashes the three words (src/dst addresses and metadata)
	// under the instance's secret and returns the low 56 bits.
	MAC56(a, b, c uint64) uint64
}

// KeyedFactory builds a Keyed from 16 bytes of secret material. It is
// how the capability authority is parameterized over AES vs FNV.
type KeyedFactory func(secret [16]byte) Keyed

// NewSecret returns 16 bytes of cryptographically random secret
// material for a router.
func NewSecret() [16]byte {
	var s [16]byte
	if _, err := rand.Read(s[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does,
		// the router cannot operate safely.
		//lint:ignore hotpath concatenation happens only on the fatal error path, which panics
		panic("mac: reading random secret: " + err.Error())
	}
	return s
}

// aesMAC is a CBC-MAC over exactly two AES blocks (32 bytes of input:
// three 8-byte words plus 8 bytes of zero padding). Fixed-length input
// makes plain CBC-MAC safe.
//
// The scratch blocks live on the struct rather than the stack: slices
// passed through the cipher.Block interface escape, so stack buffers
// would cost two heap allocations per MAC — the last allocations on
// the request/renewal forwarding rows. Struct scratch makes MAC56
// allocation-free at the price of concurrency (see Keyed).
type aesMAC struct {
	block cipher.Block
	in    [32]byte
	out   [16]byte
}

// NewAES returns a Keyed backed by AES-128 CBC-MAC, the paper's
// pre-capability hash.
func NewAES(secret [16]byte) Keyed {
	block, err := aes.NewCipher(secret[:])
	if err != nil {
		// 16-byte keys are always valid for AES-128.
		panic("mac: aes.NewCipher: " + err.Error())
	}
	return &aesMAC{block: block}
}

// MAC56 implements Keyed.
//
//tva:hotpath
func (m *aesMAC) MAC56(a, b, c uint64) uint64 {
	binary.BigEndian.PutUint64(m.in[0:8], a)
	binary.BigEndian.PutUint64(m.in[8:16], b)
	binary.BigEndian.PutUint64(m.in[16:24], c)
	// in[24:32] stays zero (length is fixed, so no length encoding is
	// needed for CBC-MAC security; the scratch bytes are never written).
	m.block.Encrypt(m.out[:], m.in[0:16])
	for i := range m.out {
		m.out[i] ^= m.in[16+i]
	}
	m.block.Encrypt(m.out[:], m.out[:])
	return binary.BigEndian.Uint64(m.out[0:8]) & Mask56
}

// fnvMAC is a fast keyed FNV-1a variant for simulation runs. It is NOT
// cryptographically secure; it exists so that multi-million-packet
// simulations are not dominated by AES, and its use is confined to
// simulations where the adversary model does not include hash breaking.
type fnvMAC struct {
	k0, k1 uint64
}

// NewFNV returns a fast, non-cryptographic Keyed for simulations.
func NewFNV(secret [16]byte) Keyed {
	return &fnvMAC{
		k0: binary.BigEndian.Uint64(secret[0:8]),
		k1: binary.BigEndian.Uint64(secret[8:16]),
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// MAC56 implements Keyed.
func (m *fnvMAC) MAC56(a, b, c uint64) uint64 {
	h := uint64(fnvOffset) ^ m.k0
	for _, w := range [4]uint64{a, b, c, m.k1} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	// Final avalanche so that low bits depend on all input bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & Mask56
}

// SHA56 is the public (unkeyed) 56-bit hash used to derive a capability
// from a pre-capability plus the destination's chosen N and T
// (paper §3.5: capability = hash(pre-capability, N, T)). Both the
// destination and every router on the path can compute it.
func SHA56(pre uint64, n uint32, t uint8) uint64 {
	var in [13]byte
	binary.BigEndian.PutUint64(in[0:8], pre)
	binary.BigEndian.PutUint32(in[8:12], n)
	in[12] = t
	sum := sha1.Sum(in[:])
	return binary.BigEndian.Uint64(sum[0:8]) & Mask56
}

// FastSHA56 is the simulation-speed counterpart of SHA56, used when the
// keyed side also runs in FNV mode. It mirrors SHA56's interface.
func FastSHA56(pre uint64, n uint32, t uint8) uint64 {
	h := uint64(fnvOffset)
	for _, w := range [3]uint64{pre, uint64(n), uint64(t)} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h & Mask56
}
