package sched

import (
	"math/rand"
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// mkWorkload builds a deterministic mixed-class burst: request trains
// sharing path-id tags, regular trains per destination, legacy and
// demoted packets, with sizes chosen to overflow the small queues.
func mkWorkload(rng *rand.Rand, n int) []*packet.Packet {
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		p := &packet.Packet{Src: packet.Addr(i), Size: 200 + rng.Intn(1300)}
		switch rng.Intn(4) {
		case 0:
			p.Class = packet.ClassRequest
			p.Hdr = &packet.CapHdr{Kind: packet.KindRequest}
			p.Hdr.Request.PathIDs = []packet.PathID{packet.PathID(rng.Intn(3))}
			p.Dst = packet.Addr(100 + rng.Intn(2))
		case 1:
			p.Class = packet.ClassRegular
			p.Dst = packet.Addr(200 + rng.Intn(3))
		case 2:
			p.Class = packet.ClassLegacy
			p.Dst = packet.Addr(300)
		default:
			p.Class = packet.ClassLegacy
			p.Hdr = &packet.CapHdr{Kind: packet.KindRegular, Demoted: true}
			p.Dst = packet.Addr(301)
		}
		pkts[i] = p
	}
	return pkts
}

func clonePkts(pkts []*packet.Packet) []*packet.Packet {
	out := make([]*packet.Packet, len(pkts))
	for i, p := range pkts {
		c := *p
		if p.Hdr != nil {
			h := *p.Hdr
			c.Hdr = &h
		}
		out[i] = &c
	}
	return out
}

func samePacket(a, b *packet.Packet) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Size == b.Size && a.Class == b.Class
}

// testBatchEquivalence drives the same workload through per-packet and
// batched paths of two identically configured schedulers and requires
// identical admission, drop attribution, service order, and retry
// behavior.
func testBatchEquivalence(t *testing.T, name string, mk func() Scheduler) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	single := mk()
	batched := mk().(BatchScheduler)
	now := tvatime.FromSeconds(1)

	for round := 0; round < 40; round++ {
		work := mkWorkload(rng, 1+rng.Intn(12))
		mine := clonePkts(work)

		wantAcc := 0
		var wantDrops []*packet.Packet
		for _, p := range work {
			if single.Enqueue(p, now) {
				wantAcc++
			} else {
				wantDrops = append(wantDrops, p)
			}
		}
		b := packet.NewBatch(len(mine))
		for _, p := range mine {
			b.Append(p)
		}
		var gotDrops []*packet.Packet
		gotAcc := batched.EnqueueBatch(b, now, func(p *packet.Packet) { gotDrops = append(gotDrops, p) })
		if b.Len() != 0 {
			t.Fatalf("%s round %d: batch not cleared after EnqueueBatch", name, round)
		}
		if wantAcc != gotAcc || len(wantDrops) != len(gotDrops) {
			t.Fatalf("%s round %d: accepted %d/%d drops %d/%d", name, round, wantAcc, gotAcc, len(wantDrops), len(gotDrops))
		}
		for i := range wantDrops {
			if !samePacket(wantDrops[i], gotDrops[i]) {
				t.Fatalf("%s round %d drop %d: %+v vs %+v", name, round, i, wantDrops[i], gotDrops[i])
			}
		}

		dst := make([]*packet.Packet, rng.Intn(10))
		got, gotRetry := batched.DequeueBatch(dst, now)
		for i := 0; i < got; i++ {
			want, _ := single.Dequeue(now)
			if want == nil || !samePacket(want, dst[i]) {
				t.Fatalf("%s round %d pos %d: batched %+v != single %+v", name, round, i, dst[i], want)
			}
		}
		if got < len(dst) {
			extra, wantRetry := single.Dequeue(now)
			if extra != nil {
				t.Fatalf("%s round %d: batched drained at %d, single still has %+v", name, round, got, extra)
			}
			if got == 0 && wantRetry != gotRetry {
				t.Fatalf("%s round %d: retry %v vs %v", name, round, gotRetry, wantRetry)
			}
		}
		if single.Len() != batched.(Scheduler).Len() {
			t.Fatalf("%s round %d: Len %d vs %d", name, round, single.Len(), batched.(Scheduler).Len())
		}
	}

	sd, bd := single.(ReasonCounter).DropReasons(), batched.(ReasonCounter).DropReasons()
	if *sd != *bd {
		t.Fatalf("%s: drop attribution diverges:\n single  %v\n batched %v", name, sd, bd)
	}
}

func TestBatchEquivalenceTVA(t *testing.T) {
	testBatchEquivalence(t, "tva", func() Scheduler {
		return NewTVA(TVAConfig{
			LinkBps:           10_000_000,
			RequestFraction:   0.05,
			RequestQueueBytes: 4 * 1024,
			RegularQueueBytes: 8 * 1024,
			LegacyQueueBytes:  8 * 1024,
			MaxRequestQueues:  2, // force EnqDropNoQueue on the third tag
			MaxRegularQueues:  2,
		})
	})
}

func TestBatchEquivalenceDropTail(t *testing.T) {
	testBatchEquivalence(t, "droptail", func() Scheduler { return NewDropTail(16 * 1024) })
}

func TestBatchEquivalenceSIFF(t *testing.T) {
	testBatchEquivalence(t, "siff", func() Scheduler { return NewSIFF(20, 10) })
}

// TestTVADequeueBatchRetry pins the rate-limit retry contract: a burst
// of requests beyond the token allowance dequeues partially, and once
// nothing is serviceable the retry time matches per-packet Dequeue.
func TestTVADequeueBatchRetry(t *testing.T) {
	s := NewTVA(TVAConfig{LinkBps: 1_000_000, RequestFraction: 0.01, Quantum: 1500, RequestQueueBytes: 32 * 1024})
	now := tvatime.FromSeconds(0)
	b := packet.NewBatch(8)
	for i := 0; i < 8; i++ {
		p := &packet.Packet{Src: packet.Addr(i), Dst: 1, Size: 1500, Class: packet.ClassRequest,
			Hdr: &packet.CapHdr{Kind: packet.KindRequest}}
		b.Append(p)
	}
	if acc := s.EnqueueBatch(b, now, func(p *packet.Packet) { t.Fatalf("unexpected drop %+v", p) }); acc != 8 {
		t.Fatalf("accepted %d, want 8", acc)
	}
	dst := make([]*packet.Packet, 8)
	n, _ := s.DequeueBatch(dst, now)
	if n == 0 || n == 8 {
		t.Fatalf("expected partial dequeue under rate limit, got %d", n)
	}
	m, retry := s.DequeueBatch(dst, now)
	if m != 0 || retry == 0 {
		t.Fatalf("blocked burst: n=%d retry=%v, want 0 with retry", m, retry)
	}
	if retry <= now {
		t.Fatalf("retry %v not in the future", retry)
	}
}
