package sched

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

func demotedPkt(size int) *packet.Packet {
	return &packet.Packet{Size: size, Class: packet.ClassLegacy,
		Hdr: &packet.CapHdr{Kind: packet.KindNonceOnly, Demoted: true}}
}

// smallTVA has queue caps that two 1000-byte packets fill, so every
// drop site is reachable with a handful of enqueues. Quantum 64 keeps
// the request-channel token bucket burst (3 quanta = 192 bytes) below
// one packet, so a dequeued request parks as a holdover forever.
func smallTVA(maxRegularQueues int) *TVA {
	return NewTVA(TVAConfig{
		LinkBps:           1_000_000,
		Quantum:           64,
		RequestQueueBytes: 2000,
		RegularQueueBytes: 2000,
		LegacyQueueBytes:  2000,
		MaxRegularQueues:  maxRegularQueues,
	})
}

// TestTVADropAttribution drives every TVA Enqueue drop site and checks
// the drop lands on its reason, is reported by LastDropReason, and is
// covered by the total (DropCount == Drops.Total()).
func TestTVADropAttribution(t *testing.T) {
	now := tvatime.Time(0)
	cases := []struct {
		name   string
		drive  func(t *testing.T, s *TVA) // must produce exactly one drop
		s      func() *TVA
		reason telemetry.DropReason
	}{
		{
			name: "request queue full",
			s:    func() *TVA { return smallTVA(0) },
			drive: func(t *testing.T, s *TVA) {
				mustEnqueue(t, s, reqPkt(1, 1000), now)
				mustEnqueue(t, s, reqPkt(1, 1000), now)
				mustDrop(t, s, reqPkt(1, 1000), now)
			},
			reason: telemetry.DropRequestQueueFull,
		},
		{
			name: "request rate limited (holdover parked)",
			s:    func() *TVA { return smallTVA(0) },
			drive: func(t *testing.T, s *TVA) {
				mustEnqueue(t, s, reqPkt(1, 1000), now)
				// The 1000-byte request exceeds the bucket burst, so
				// Dequeue parks it as a holdover and asks for a retry.
				if pkt, retry := s.Dequeue(now); pkt != nil || retry == 0 {
					t.Fatalf("Dequeue = (%v, %v), want parked holdover", pkt, retry)
				}
				mustEnqueue(t, s, reqPkt(1, 1000), now)
				mustEnqueue(t, s, reqPkt(1, 1000), now)
				mustDrop(t, s, reqPkt(1, 1000), now)
			},
			reason: telemetry.DropRequestRateLimited,
		},
		{
			name: "regular per-destination cap",
			s:    func() *TVA { return smallTVA(0) },
			drive: func(t *testing.T, s *TVA) {
				mustEnqueue(t, s, regPkt(7, 1000), now)
				mustEnqueue(t, s, regPkt(7, 1000), now)
				mustDrop(t, s, regPkt(7, 1000), now)
			},
			reason: telemetry.DropRegularQueueFull,
		},
		{
			name: "regular queue-count bound (flow-cache pressure)",
			s:    func() *TVA { return smallTVA(1) },
			drive: func(t *testing.T, s *TVA) {
				mustEnqueue(t, s, regPkt(7, 1000), now)
				mustDrop(t, s, regPkt(8, 1000), now)
			},
			reason: telemetry.DropFlowCachePressure,
		},
		{
			name: "legacy queue full",
			s:    func() *TVA { return smallTVA(0) },
			drive: func(t *testing.T, s *TVA) {
				mustEnqueue(t, s, legPkt(1000), now)
				mustEnqueue(t, s, legPkt(1000), now)
				mustDrop(t, s, legPkt(1000), now)
			},
			reason: telemetry.DropLegacyQueueFull,
		},
		{
			name: "demoted packet dropped in legacy queue",
			s:    func() *TVA { return smallTVA(0) },
			drive: func(t *testing.T, s *TVA) {
				mustEnqueue(t, s, legPkt(1000), now)
				mustEnqueue(t, s, legPkt(1000), now)
				mustDrop(t, s, demotedPkt(1000), now)
			},
			reason: telemetry.DropDemoted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s()
			tc.drive(t, s)
			if got := s.Drops.Get(tc.reason); got != 1 {
				t.Errorf("Drops.Get(%v) = %d, want 1 (all: %v)", tc.reason, got, dropMap(&s.Drops))
			}
			if got := s.LastDropReason(); got != tc.reason {
				t.Errorf("LastDropReason() = %v, want %v", got, tc.reason)
			}
			if s.DropCount() != s.Drops.Total() || s.DropCount() != 1 {
				t.Errorf("DropCount() = %d, Drops.Total() = %d, want both 1",
					s.DropCount(), s.Drops.Total())
			}
		})
	}
}

// TestQueueDropReasonClassification covers the shared FIFO
// classification used by DropTail and SIFF: the reason is derived from
// what the packet was, with demotion reported separately (§3.8).
func TestQueueDropReasonClassification(t *testing.T) {
	now := tvatime.Time(0)
	cases := []struct {
		name   string
		pkt    *packet.Packet
		reason telemetry.DropReason
	}{
		{"demoted", demotedPkt(100), telemetry.DropDemoted},
		{"request class", reqPkt(1, 100), telemetry.DropRequestQueueFull},
		{"request kind without class", &packet.Packet{Size: 100,
			Hdr: &packet.CapHdr{Kind: packet.KindRequest}}, telemetry.DropRequestQueueFull},
		{"regular", regPkt(7, 100), telemetry.DropRegularQueueFull},
		{"legacy", legPkt(100), telemetry.DropLegacyQueueFull},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewDropTailPkts(1)
			mustEnqueue(t, s, legPkt(100), now)
			if s.Enqueue(tc.pkt, now) {
				t.Fatal("enqueue into a full FIFO succeeded")
			}
			if got := s.Drops.Get(tc.reason); got != 1 {
				t.Errorf("Drops.Get(%v) = %d, want 1 (all: %v)", tc.reason, got, dropMap(&s.Drops))
			}
			if got := s.LastDropReason(); got != tc.reason {
				t.Errorf("LastDropReason() = %v, want %v", got, tc.reason)
			}
		})
	}
}

// TestSIFFDropAttribution checks that SIFF's two FIFOs attribute drops
// per class as well.
func TestSIFFDropAttribution(t *testing.T) {
	now := tvatime.Time(0)
	s := NewSIFF(1, 1)
	mustEnqueue(t, s, regPkt(7, 100), now)
	mustEnqueue(t, s, legPkt(100), now)
	if s.Enqueue(regPkt(7, 100), now) {
		t.Fatal("high-priority FIFO should be full")
	}
	if s.Enqueue(demotedPkt(100), now) {
		t.Fatal("low-priority FIFO should be full")
	}
	if got := s.Drops.Get(telemetry.DropRegularQueueFull); got != 1 {
		t.Errorf("regular drops = %d, want 1", got)
	}
	if got := s.Drops.Get(telemetry.DropDemoted); got != 1 {
		t.Errorf("demoted drops = %d, want 1", got)
	}
	if s.DropCount() != 2 {
		t.Errorf("DropCount() = %d, want 2", s.DropCount())
	}
}

func mustEnqueue(t *testing.T, s Scheduler, pkt *packet.Packet, now tvatime.Time) {
	t.Helper()
	if !s.Enqueue(pkt, now) {
		t.Fatal("setup enqueue dropped unexpectedly")
	}
}

func mustDrop(t *testing.T, s Scheduler, pkt *packet.Packet, now tvatime.Time) {
	t.Helper()
	if s.Enqueue(pkt, now) {
		t.Fatal("enqueue succeeded, want drop")
	}
}

func dropMap(c *telemetry.DropCounters) map[string]uint64 {
	m := make(map[string]uint64)
	for i := 0; i < telemetry.NumDropReasons; i++ {
		if n := c.Get(telemetry.DropReason(i)); n > 0 {
			m[telemetry.DropReason(i).String()] = n
		}
	}
	return m
}
