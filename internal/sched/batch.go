// Batched scheduler operations: the per-burst forms of Enqueue and
// Dequeue. Classification decisions, drop attribution, and service
// order are packet-for-packet identical to the per-packet methods;
// what amortizes is the fixed machinery around them — queue
// resolution and ring bookkeeping collapse over same-queue runs
// (fq.EnqueueBulk/DequeueBulk) and drop counters are merged into the
// scheduler's telemetry once per burst instead of once per packet.
package sched

import (
	"tva/internal/flowstats"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// batchDrops is the allocation-free drop plumbing shared by the batch
// schedulers: the closure handed to the fq bulk paths is built once at
// construction and per-burst state (the burst's drop tally and the
// caller's onDrop) lives in fields, so EnqueueBatch never allocates.
type batchDrops struct {
	burst       telemetry.DropCounters
	batchOnDrop func(*packet.Packet)
	dropFn      func(*packet.Packet)
}

// initBatchDrops builds the persistent drop closure: classify decides
// the reason, *lastDrop records it (the schedulers' LastDrop
// contract), the burst tally accumulates it, per-sender accounting
// attributes it (flows points at the owner's Flows field so a
// collector attached after construction is still seen), and the
// caller's onDrop takes ownership of the refused packet.
func (b *batchDrops) initBatchDrops(lastDrop *telemetry.DropReason, flows **flowstats.Collector, classify func(*packet.Packet) telemetry.DropReason) {
	b.dropFn = func(pkt *packet.Packet) {
		*lastDrop = classify(pkt)
		b.burst.Inc(*lastDrop)
		(*flows).Drop(pkt)
		b.batchOnDrop(pkt)
	}
}

// beginBurst arms the drop plumbing for one EnqueueBatch call.
//
//tva:hotpath
func (b *batchDrops) beginBurst(onDrop func(*packet.Packet)) {
	b.burst = telemetry.DropCounters{}
	b.batchOnDrop = onDrop
}

// endBurst folds the burst's tally into the scheduler's counters and
// drops the reference to the caller's closure.
//
//tva:hotpath
func (b *batchDrops) endBurst(total *telemetry.DropCounters) {
	total.Merge(&b.burst)
	b.batchOnDrop = nil
}

// BatchScheduler is implemented by schedulers with amortized burst
// operations. Both methods run at a single instant (now does not
// advance mid-burst), which is what makes run-based service order
// provably identical to the per-packet loop.
type BatchScheduler interface {
	// EnqueueBatch enqueues every occupied slot of b in order, with
	// decisions and drop attribution identical to per-packet Enqueue.
	// Ownership of every packet leaves the batch: accepted packets
	// belong to the scheduler, refused ones are handed to onDrop in
	// order (the caller's drop-accounting + pool-release path; it must
	// not re-enqueue into b). All slots are cleared. Returns the number
	// accepted.
	EnqueueBatch(b *packet.Batch, now tvatime.Time, onDrop func(*packet.Packet)) int
	// DequeueBatch fills dst with up to len(dst) packets in exactly
	// the order repeated Dequeue calls would produce. The retry time
	// is meaningful only when it returns 0 packets (a rate-limited
	// class is the only backlog), mirroring Dequeue.
	DequeueBatch(dst []*packet.Packet, now tvatime.Time) (int, tvatime.Time)
}

// EnqueueBatch implements BatchScheduler.
//
//tva:hotpath
func (s *DropTail) EnqueueBatch(b *packet.Batch, _ tvatime.Time, onDrop func(*packet.Packet)) int {
	s.beginBurst(onDrop)
	accepted := s.q.EnqueueBulk(b.Pkts(), s.dropFn)
	s.endBurst(&s.Drops)
	b.Reset()
	return accepted
}

// DequeueBatch implements BatchScheduler.
//
//tva:hotpath
func (s *DropTail) DequeueBatch(dst []*packet.Packet, _ tvatime.Time) (int, tvatime.Time) {
	return s.q.DequeueBulk(dst), 0
}

// EnqueueBatch implements BatchScheduler: the burst is split into
// maximal runs that share a class and fair-queuing key (path-id tag
// for requests, destination for regular traffic, the one legacy FIFO
// for the rest), and each run goes through the fq bulk path.
//
//tva:hotpath
func (s *TVA) EnqueueBatch(b *packet.Batch, _ tvatime.Time, onDrop func(*packet.Packet)) int {
	s.beginBurst(onDrop)
	accepted := 0
	pkts := b.Pkts()
	for i := 0; i < len(pkts); {
		pkt := pkts[i]
		if pkt == nil {
			i++
			continue
		}
		j := i + 1
		switch pkt.Class {
		case packet.ClassRequest:
			key := requestKey(pkt)
			for j < len(pkts) && pkts[j] != nil &&
				pkts[j].Class == packet.ClassRequest && requestKey(pkts[j]) == key {
				j++
			}
			accepted += s.request.EnqueueBulk(key, pkts[i:j], s.reqDropFn)
		case packet.ClassRegular:
			for j < len(pkts) && pkts[j] != nil &&
				pkts[j].Class == packet.ClassRegular && pkts[j].Dst == pkt.Dst {
				j++
			}
			accepted += s.regular.EnqueueBulk(uint64(pkt.Dst), pkts[i:j], s.regDropFn)
		default:
			for j < len(pkts) && pkts[j] != nil &&
				pkts[j].Class != packet.ClassRequest && pkts[j].Class != packet.ClassRegular {
				j++
			}
			accepted += s.legacy.EnqueueBulk(pkts[i:j], s.dropFn)
		}
		i = j
	}
	s.endBurst(&s.Drops)
	b.Reset()
	return accepted
}

// DequeueBatch implements BatchScheduler: requests while the rate
// limit allows, then regular runs, then legacy — the order repeated
// Dequeue calls produce at one instant. (Once the request arm blocks
// at a given now it stays blocked: the token bucket only refills as
// time advances and no request can arrive mid-burst, so serving the
// remaining classes in bulk cannot reorder anything.)
//
//tva:hotpath
func (s *TVA) DequeueBatch(dst []*packet.Packet, now tvatime.Time) (int, tvatime.Time) {
	n := 0
	for n < len(dst) {
		if s.holdover == nil && s.request.Len() > 0 {
			s.holdover = s.request.Dequeue()
		}
		if s.holdover == nil || !s.bucket.Allow(s.holdover.Size, now) {
			break
		}
		dst[n] = s.holdover
		s.holdover = nil
		n++
	}
	if n < len(dst) {
		n += s.regular.DequeueBulk(dst[n:])
	}
	if n < len(dst) {
		n += s.legacy.DequeueBulk(dst[n:])
	}
	if n == 0 && s.holdover != nil {
		return 0, s.bucket.When(s.holdover.Size, now)
	}
	return n, 0
}

// EnqueueBatch implements BatchScheduler.
//
//tva:hotpath
func (s *SIFF) EnqueueBatch(b *packet.Batch, _ tvatime.Time, onDrop func(*packet.Packet)) int {
	s.beginBurst(onDrop)
	accepted := 0
	pkts := b.Pkts()
	for i := 0; i < len(pkts); {
		pkt := pkts[i]
		if pkt == nil {
			i++
			continue
		}
		j := i + 1
		if pkt.Class == packet.ClassRegular {
			for j < len(pkts) && pkts[j] != nil && pkts[j].Class == packet.ClassRegular {
				j++
			}
			accepted += s.high.EnqueueBulk(pkts[i:j], s.dropFn)
		} else {
			for j < len(pkts) && pkts[j] != nil && pkts[j].Class != packet.ClassRegular {
				j++
			}
			accepted += s.low.EnqueueBulk(pkts[i:j], s.dropFn)
		}
		i = j
	}
	s.endBurst(&s.Drops)
	b.Reset()
	return accepted
}

// DequeueBatch implements BatchScheduler.
//
//tva:hotpath
func (s *SIFF) DequeueBatch(dst []*packet.Packet, _ tvatime.Time) (int, tvatime.Time) {
	n := s.high.DequeueBulk(dst)
	if n < len(dst) {
		n += s.low.DequeueBulk(dst[n:])
	}
	return n, 0
}
