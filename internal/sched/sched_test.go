package sched

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

func reqPkt(path packet.PathID, size int) *packet.Packet {
	h := &packet.CapHdr{Kind: packet.KindRequest}
	if path != 0 {
		h.Request.PathIDs = []packet.PathID{path}
	}
	return &packet.Packet{Size: size, Class: packet.ClassRequest, Hdr: h}
}

func regPkt(dst packet.Addr, size int) *packet.Packet {
	return &packet.Packet{Dst: dst, Size: size, Class: packet.ClassRegular,
		Hdr: &packet.CapHdr{Kind: packet.KindNonceOnly}}
}

func legPkt(size int) *packet.Packet {
	return &packet.Packet{Size: size, Class: packet.ClassLegacy}
}

func TestTVAClassPriority(t *testing.T) {
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, RequestFraction: 0.05})
	now := tvatime.Time(0)
	s.Enqueue(legPkt(1000), now)
	s.Enqueue(regPkt(1, 1000), now)
	s.Enqueue(reqPkt(7, 100), now)

	p, _ := s.Dequeue(now)
	if p == nil || p.Class != packet.ClassRequest {
		t.Fatalf("first dequeue = %v, want request", p)
	}
	p, _ = s.Dequeue(now)
	if p == nil || p.Class != packet.ClassRegular {
		t.Fatalf("second dequeue = %v, want regular", p)
	}
	p, _ = s.Dequeue(now)
	if p == nil || p.Class != packet.ClassLegacy {
		t.Fatalf("third dequeue = %v, want legacy", p)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestTVARequestRateLimit(t *testing.T) {
	// 1% of 10 Mb/s = 100 kb/s = 12.5 KB/s for requests. With no other
	// traffic, a backlog of requests must drain at about that rate.
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, RequestFraction: 0.01,
		RequestQueueBytes: 1 << 20})
	now := tvatime.Time(0)
	for i := 0; i < 1000; i++ {
		if !s.Enqueue(reqPkt(1, 125), now) {
			t.Fatal("enqueue failed")
		}
	}
	served := 0
	end := now.Add(10 * tvatime.Second)
	for now < end {
		p, retry := s.Dequeue(now)
		if p != nil {
			served += p.Size
			continue
		}
		if retry == 0 {
			break
		}
		now = retry
	}
	// Expect ≈ 125 KB served over 10s (+ burst allowance).
	if served < 100_000 || served > 160_000 {
		t.Errorf("request bytes served in 10s = %d, want ≈125000", served)
	}
}

func TestTVARequestsDoNotStarveRegular(t *testing.T) {
	// With request backlog but no tokens, regular traffic must flow.
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, RequestFraction: 0.01})
	now := tvatime.Time(0)
	// Drain the initial token burst.
	for i := 0; i < 100; i++ {
		s.Enqueue(reqPkt(1, 1000), now)
	}
	for {
		p, _ := s.Dequeue(now)
		if p == nil {
			break
		}
		if p.Class != packet.ClassRequest {
			t.Fatal("unexpected class while draining burst")
		}
	}
	s.Enqueue(regPkt(2, 1000), now)
	p, _ := s.Dequeue(now)
	if p == nil || p.Class != packet.ClassRegular {
		t.Fatalf("regular packet blocked behind rate-limited requests: %v", p)
	}
}

func TestTVADequeueRetryTime(t *testing.T) {
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, RequestFraction: 0.01})
	now := tvatime.Time(0)
	for i := 0; i < 100; i++ {
		s.Enqueue(reqPkt(1, 1000), now)
	}
	var retry tvatime.Time
	for {
		p, r := s.Dequeue(now)
		if p == nil {
			retry = r
			break
		}
	}
	if retry <= now {
		t.Fatalf("expected a retry time for rate-limited backlog, got %v", retry)
	}
	// At the retry time the packet must be released.
	p, _ := s.Dequeue(retry)
	if p == nil {
		t.Error("packet not released at the promised retry time")
	}
}

func TestTVAPerDestinationFairness(t *testing.T) {
	// Two destinations, one with a huge backlog: service alternates so
	// each destination gets about half the bytes (Fig. 2 / §3.9).
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, RegularQueueBytes: 1 << 20})
	now := tvatime.Time(0)
	for i := 0; i < 500; i++ {
		s.Enqueue(regPkt(1, 1000), now)
		s.Enqueue(regPkt(2, 1000), now)
	}
	bytes := map[packet.Addr]int{}
	for i := 0; i < 400; i++ {
		p, _ := s.Dequeue(now)
		bytes[p.Dst] += p.Size
	}
	if bytes[1] < 150_000 || bytes[2] < 150_000 {
		t.Errorf("per-destination shares unfair: %v", bytes)
	}
}

func TestTVARequestPathIsolation(t *testing.T) {
	// Queue caps apply per path identifier: one flooding path cannot
	// push another path's requests out.
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, RequestQueueBytes: 2000})
	now := tvatime.Time(0)
	for i := 0; i < 100; i++ {
		s.Enqueue(reqPkt(1, 1000), now) // flooding path: mostly dropped
	}
	if !s.Enqueue(reqPkt(2, 100), now) {
		t.Error("victim path's request dropped because of another path's flood")
	}
}

func TestSIFFPriority(t *testing.T) {
	s := NewSIFF(10, 10)
	now := tvatime.Time(0)
	s.Enqueue(legPkt(100), now)
	s.Enqueue(regPkt(1, 100), now)
	p, _ := s.Dequeue(now)
	if p.Class != packet.ClassRegular {
		t.Error("SIFF must serve authorized traffic first")
	}
	p, _ = s.Dequeue(now)
	if p.Class != packet.ClassLegacy {
		t.Error("legacy packet lost")
	}
}

func TestSIFFLowClassSharedByRequests(t *testing.T) {
	// Requests and legacy share the low queue: filling it with legacy
	// drops requests (the SIFF weakness TVA fixes).
	s := NewSIFF(10, 2)
	now := tvatime.Time(0)
	s.Enqueue(legPkt(100), now)
	s.Enqueue(legPkt(100), now)
	req := reqPkt(1, 50)
	req.Class = packet.ClassLegacy // SIFF routers classify requests as legacy
	if s.Enqueue(req, now) {
		t.Error("request admitted past the shared low-queue cap")
	}
}

func TestDropTail(t *testing.T) {
	s := NewDropTailPkts(2)
	now := tvatime.Time(0)
	if !s.Enqueue(legPkt(1), now) || !s.Enqueue(legPkt(1), now) {
		t.Fatal("enqueue failed")
	}
	if s.Enqueue(legPkt(1), now) {
		t.Error("drop-tail over capacity")
	}
	if s.DropCount() != 1 {
		t.Errorf("DropCount = %d, want 1", s.DropCount())
	}
	p, retry := s.Dequeue(now)
	if p == nil || retry != 0 {
		t.Error("dequeue failed")
	}
}

func TestTVADropCount(t *testing.T) {
	s := NewTVA(TVAConfig{LinkBps: 10_000_000, LegacyQueueBytes: 1000})
	now := tvatime.Time(0)
	s.Enqueue(legPkt(800), now)
	s.Enqueue(legPkt(800), now)
	if s.DropCount() != 1 {
		t.Errorf("DropCount = %d, want 1", s.DropCount())
	}
}
