// Package sched defines the per-link output scheduler interface used by
// the network simulator and the userspace overlay, and the three
// schedulers the evaluation needs: TVA's three-class hierarchy
// (Fig. 2), SIFF's two-level priority queue, and a plain drop-tail FIFO
// for the legacy Internet.
package sched

import (
	"tva/internal/flowstats"
	"tva/internal/fq"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// Scheduler is a link output queue. Enqueue classifies and stores a
// packet (false = dropped). Dequeue returns the next packet to
// transmit; when it returns nil with a non-zero time, the link should
// retry at that time (a rate-limited class is the only backlog).
type Scheduler interface {
	Enqueue(pkt *packet.Packet, now tvatime.Time) bool
	Dequeue(now tvatime.Time) (*packet.Packet, tvatime.Time)
	Len() int
}

// DropCounter is implemented by schedulers that track drops.
type DropCounter interface {
	DropCount() uint64
}

// Flusher is implemented by schedulers whose queue state can be torn
// down cleanly (router restart, link removal). Flush must hand every
// queued packet — including any internally parked state such as a
// rate-limiter holdover — to release exactly once, so the owner can
// attribute the loss and return pooled packets to the pool. Flushed
// packets are NOT counted as enqueue drops: the scheduler accepted
// them, the fault discarded them, so the fault's owner accounts them.
type Flusher interface {
	Flush(release func(*packet.Packet))
}

// ReasonCounter is implemented by schedulers that attribute every drop
// to a telemetry.DropReason. DropReasons exposes the per-reason
// counters; LastDropReason reports why the most recent Enqueue
// returned false, so a caller (e.g. a simulated interface with a
// tracer) can tag the drop event without re-deriving the reason.
type ReasonCounter interface {
	DropReasons() *telemetry.DropCounters
	LastDropReason() telemetry.DropReason
}

// queueDropReason classifies a FIFO tail-drop by what the packet was:
// demoted packets (§3.8) are reported separately from packets that
// were legacy all along, and request/regular classes map to their
// queue-full reasons.
func queueDropReason(pkt *packet.Packet) telemetry.DropReason {
	if pkt.Hdr != nil && pkt.Hdr.Demoted {
		return telemetry.DropDemoted
	}
	switch {
	case pkt.Class == packet.ClassRequest ||
		(pkt.Hdr != nil && pkt.Hdr.Kind == packet.KindRequest):
		return telemetry.DropRequestQueueFull
	case pkt.Class == packet.ClassRegular:
		return telemetry.DropRegularQueueFull
	default:
		return telemetry.DropLegacyQueueFull
	}
}

// DropTail is a single FIFO for all classes: the legacy Internet
// router, and also host egress queues.
type DropTail struct {
	q *fq.FIFO

	// Drops counts tail drops by reason (classified by what the packet
	// was, since a shared FIFO has no classes of its own).
	Drops    telemetry.DropCounters
	lastDrop telemetry.DropReason
	// Flows, when non-nil, receives per-sender drop attribution (may be
	// attached after construction; nil costs one branch per drop).
	Flows *flowstats.Collector

	batchDrops
}

// NewDropTail returns a FIFO scheduler with the given byte capacity.
func NewDropTail(capBytes int) *DropTail {
	s := &DropTail{q: fq.NewFIFO(capBytes)}
	s.initBatchDrops(&s.lastDrop, &s.Flows, queueDropReason)
	return s
}

// NewDropTailPkts returns a FIFO scheduler bounded by packet count,
// matching ns-2's drop-tail queues (uniform per-packet loss).
func NewDropTailPkts(capPkts int) *DropTail {
	s := &DropTail{q: fq.NewFIFOCount(capPkts)}
	s.initBatchDrops(&s.lastDrop, &s.Flows, queueDropReason)
	return s
}

// Enqueue implements Scheduler.
//
//tva:hotpath
func (s *DropTail) Enqueue(pkt *packet.Packet, _ tvatime.Time) bool {
	if !s.q.Enqueue(pkt) {
		s.lastDrop = queueDropReason(pkt)
		s.Drops.Inc(s.lastDrop)
		s.Flows.Drop(pkt)
		return false
	}
	return true
}

// Dequeue implements Scheduler.
//
//tva:hotpath
func (s *DropTail) Dequeue(_ tvatime.Time) (*packet.Packet, tvatime.Time) {
	return s.q.Dequeue(), 0
}

// Len implements Scheduler.
func (s *DropTail) Len() int { return s.q.Len() }

// Flush implements Flusher.
func (s *DropTail) Flush(release func(*packet.Packet)) { s.q.Flush(release) }

// DropCount implements DropCounter.
func (s *DropTail) DropCount() uint64 { return s.Drops.Total() }

// DropReasons implements ReasonCounter.
func (s *DropTail) DropReasons() *telemetry.DropCounters { return &s.Drops }

// LastDropReason implements ReasonCounter.
func (s *DropTail) LastDropReason() telemetry.DropReason { return s.lastDrop }

// TVAConfig parameterizes the TVA link scheduler.
type TVAConfig struct {
	// LinkBps is the outgoing link's capacity in bits/second.
	LinkBps int64
	// RequestFraction is the share of the link reserved as the ceiling
	// for request traffic (paper default 5%; the simulations stress
	// the design at 1%).
	RequestFraction float64
	// Quantum is the DRR quantum in bytes for regular traffic (>= MTU).
	Quantum int
	// RequestQuantum is the DRR quantum for the request class. Requests
	// are small, so a small quantum keeps the round short and a newly
	// backlogged path's request from waiting behind a burst from every
	// other path.
	RequestQuantum int
	// RequestQueueBytes caps each per-path-identifier request queue.
	RequestQueueBytes int
	// RegularQueueBytes caps each per-destination regular queue.
	RegularQueueBytes int
	// LegacyQueueBytes caps the shared legacy/demoted FIFO.
	LegacyQueueBytes int
	// MaxRequestQueues bounds request queue state (tag space is 16
	// bits; deployments configure something smaller).
	MaxRequestQueues int
	// MaxRegularQueues bounds per-destination queue state (the paper
	// falls back on the flow-cache bound, §3.9).
	MaxRegularQueues int
}

func (c *TVAConfig) fillDefaults() {
	if c.RequestFraction <= 0 {
		c.RequestFraction = 0.05
	}
	if c.Quantum <= 0 {
		c.Quantum = 1500
	}
	if c.RequestQuantum <= 0 {
		c.RequestQuantum = 256
	}
	if c.RequestQueueBytes <= 0 {
		c.RequestQueueBytes = 8 * 1024
	}
	if c.RegularQueueBytes <= 0 {
		c.RegularQueueBytes = 32 * 1024
	}
	if c.LegacyQueueBytes <= 0 {
		c.LegacyQueueBytes = 32 * 1024
	}
	if c.MaxRequestQueues <= 0 {
		c.MaxRequestQueues = 1 << 16
	}
	if c.MaxRegularQueues <= 0 {
		c.MaxRegularQueues = 1 << 20
	}
}

// TVA is the three-class scheduler of Fig. 2:
//
//   - requests: fair-queued per path identifier, rate-limited to a
//     fixed fraction of the link;
//   - regular (capability-carrying) packets: fair-queued per
//     authorizing destination, using the remaining capacity;
//   - legacy and demoted packets: lowest priority FIFO.
type TVA struct {
	cfg     TVAConfig
	request *fq.DRR
	regular *fq.DRR
	legacy  *fq.FIFO
	bucket  *fq.TokenBucket

	// holdover buffers a request already selected by DRR that is
	// waiting for rate-limit tokens.
	holdover *packet.Packet

	// Drops attributes every dropped packet to a reason.
	Drops    telemetry.DropCounters
	lastDrop telemetry.DropReason
	// Flows, when non-nil, receives per-sender drop attribution (may be
	// attached after construction; nil costs one branch per drop).
	Flows *flowstats.Collector

	batchDrops
	// Per-class drop closures for the fq bulk paths, built once here
	// so EnqueueBatch allocates nothing per burst.
	reqDropFn func(*packet.Packet, fq.EnqueueResult)
	regDropFn func(*packet.Packet, fq.EnqueueResult)
}

// NewTVA returns a TVA link scheduler.
func NewTVA(cfg TVAConfig) *TVA {
	cfg.fillDefaults()
	reqRate := int64(float64(cfg.LinkBps) * cfg.RequestFraction)
	s := &TVA{
		cfg:     cfg,
		request: fq.NewDRR(cfg.RequestQuantum, cfg.MaxRequestQueues, cfg.RequestQueueBytes),
		regular: fq.NewDRR(cfg.Quantum, cfg.MaxRegularQueues, cfg.RegularQueueBytes),
		legacy:  fq.NewFIFO(cfg.LegacyQueueBytes),
		// Burst of ~3 MTUs keeps the limiter from quantizing small
		// links too harshly while staying near the configured rate.
		bucket: fq.NewTokenBucket(reqRate, 3*cfg.Quantum),
	}
	s.initBatchDrops(&s.lastDrop, &s.Flows, func(pkt *packet.Packet) telemetry.DropReason {
		if pkt.Hdr != nil && pkt.Hdr.Demoted {
			return telemetry.DropDemoted
		}
		return telemetry.DropLegacyQueueFull
	})
	s.reqDropFn = func(p *packet.Packet, _ fq.EnqueueResult) {
		// Same attribution rule as Enqueue: when a holdover is parked
		// at the rate limiter, that is what's backing the class up.
		if s.holdover != nil {
			s.lastDrop = telemetry.DropRequestRateLimited
		} else {
			s.lastDrop = telemetry.DropRequestQueueFull
		}
		s.burst.Inc(s.lastDrop)
		s.Flows.Drop(p)
		s.batchOnDrop(p)
	}
	s.regDropFn = func(p *packet.Packet, res fq.EnqueueResult) {
		if res == fq.EnqDropNoQueue {
			s.lastDrop = telemetry.DropFlowCachePressure
		} else {
			s.lastDrop = telemetry.DropRegularQueueFull
		}
		s.burst.Inc(s.lastDrop)
		s.Flows.Drop(p)
		s.batchOnDrop(p)
	}
	return s
}

// requestKey selects the fair-queuing key for a request: the most
// recent path identifier tag (§3.2). Untagged requests (from a host
// directly attached to this router) share the zero queue.
func requestKey(pkt *packet.Packet) uint64 {
	if pkt.Hdr == nil || len(pkt.Hdr.Request.PathIDs) == 0 {
		return 0
	}
	return uint64(pkt.Hdr.Request.PathIDs[len(pkt.Hdr.Request.PathIDs)-1])
}

// Enqueue implements Scheduler, classifying on pkt.Class (assigned by
// router capability processing). Every drop is attributed: request
// drops to the rate limiter when it is what's backing the class up
// (a holdover is parked waiting for tokens) or to the per-path queue
// bound otherwise; regular drops to the per-destination byte cap or,
// when the queue-count bound (derived from the flow-cache size, §3.9)
// is hit, to flow-cache pressure; legacy drops to demotion (§3.8) or
// plain legacy overflow.
//
//tva:hotpath
func (s *TVA) Enqueue(pkt *packet.Packet, _ tvatime.Time) bool {
	switch pkt.Class {
	case packet.ClassRequest:
		if s.request.Enqueue(requestKey(pkt), pkt) != fq.EnqOK {
			if s.holdover != nil {
				s.drop(pkt, telemetry.DropRequestRateLimited)
			} else {
				s.drop(pkt, telemetry.DropRequestQueueFull)
			}
			return false
		}
	case packet.ClassRegular:
		switch s.regular.Enqueue(uint64(pkt.Dst), pkt) {
		case fq.EnqDropQueueFull:
			s.drop(pkt, telemetry.DropRegularQueueFull)
			return false
		case fq.EnqDropNoQueue:
			s.drop(pkt, telemetry.DropFlowCachePressure)
			return false
		}
	default:
		if !s.legacy.Enqueue(pkt) {
			if pkt.Hdr != nil && pkt.Hdr.Demoted {
				s.drop(pkt, telemetry.DropDemoted)
			} else {
				s.drop(pkt, telemetry.DropLegacyQueueFull)
			}
			return false
		}
	}
	return true
}

//tva:hotpath
func (s *TVA) drop(pkt *packet.Packet, r telemetry.DropReason) {
	s.lastDrop = r
	s.Drops.Inc(r)
	s.Flows.Drop(pkt)
}

// Dequeue implements Scheduler: requests first (within their rate
// ceiling), then regular packets, then legacy.
//
//tva:hotpath
func (s *TVA) Dequeue(now tvatime.Time) (*packet.Packet, tvatime.Time) {
	// Serve a request if the rate limit allows.
	if s.holdover == nil && s.request.Len() > 0 {
		s.holdover = s.request.Dequeue()
	}
	if s.holdover != nil && s.bucket.Allow(s.holdover.Size, now) {
		pkt := s.holdover
		s.holdover = nil
		return pkt, 0
	}
	if pkt := s.regular.Dequeue(); pkt != nil {
		return pkt, 0
	}
	if pkt := s.legacy.Dequeue(); pkt != nil {
		return pkt, 0
	}
	if s.holdover != nil {
		return nil, s.bucket.When(s.holdover.Size, now)
	}
	return nil, 0
}

// Len implements Scheduler.
func (s *TVA) Len() int {
	n := s.request.Len() + s.regular.Len() + s.legacy.Len()
	if s.holdover != nil {
		n++
	}
	return n
}

// Flush implements Flusher: all three classes and the rate-limiter
// holdover are drained, so a restarted router's link starts empty.
func (s *TVA) Flush(release func(*packet.Packet)) {
	if s.holdover != nil {
		release(s.holdover)
		s.holdover = nil
	}
	s.request.Flush(release)
	s.regular.Flush(release)
	s.legacy.Flush(release)
}

// DropCount implements DropCounter.
func (s *TVA) DropCount() uint64 { return s.Drops.Total() }

// DropReasons implements ReasonCounter.
func (s *TVA) DropReasons() *telemetry.DropCounters { return &s.Drops }

// LastDropReason implements ReasonCounter.
func (s *TVA) LastDropReason() telemetry.DropReason { return s.lastDrop }

// LegacyDrops exposes drops in the legacy class (used in tests).
func (s *TVA) LegacyDrops() uint64 {
	return s.Drops.Get(telemetry.DropLegacyQueueFull) + s.Drops.Get(telemetry.DropDemoted)
}

// RequestBacklog returns queued request packets (including a holdover
// parked at the rate limiter). Sampler gauge.
func (s *TVA) RequestBacklog() int {
	n := s.request.Len()
	if s.holdover != nil {
		n++
	}
	return n
}

// RegularBacklog returns queued regular packets. Sampler gauge.
func (s *TVA) RegularBacklog() int { return s.regular.Len() }

// LegacyBacklog returns queued legacy/demoted packets. Sampler gauge.
func (s *TVA) LegacyBacklog() int { return s.legacy.Len() }

// RegularQueues returns the number of live per-destination queues.
func (s *TVA) RegularQueues() int { return s.regular.NumQueues() }

// TokenLevel returns the request rate limiter's token level in bytes.
func (s *TVA) TokenLevel(now tvatime.Time) float64 { return s.bucket.Level(now) }

// SIFF is the SIFF baseline scheduler: authorized (capability-carrying)
// packets in a strict-priority FIFO over everything else; requests are
// "treated as legacy traffic" (paper §5), so they share the low queue
// with legacy packets.
type SIFF struct {
	high *fq.FIFO
	low  *fq.FIFO

	// Drops attributes every dropped packet to a reason.
	Drops    telemetry.DropCounters
	lastDrop telemetry.DropReason
	// Flows, when non-nil, receives per-sender drop attribution (may be
	// attached after construction; nil costs one branch per drop).
	Flows *flowstats.Collector

	batchDrops
}

// NewSIFF returns a SIFF scheduler with the given per-class packet
// caps (ns-style packet-count queues).
func NewSIFF(highPkts, lowPkts int) *SIFF {
	if highPkts <= 0 {
		highPkts = 100
	}
	if lowPkts <= 0 {
		lowPkts = 50
	}
	s := &SIFF{high: fq.NewFIFOCount(highPkts), low: fq.NewFIFOCount(lowPkts)}
	s.initBatchDrops(&s.lastDrop, &s.Flows, queueDropReason)
	return s
}

// Enqueue implements Scheduler.
//
//tva:hotpath
func (s *SIFF) Enqueue(pkt *packet.Packet, _ tvatime.Time) bool {
	var ok bool
	if pkt.Class == packet.ClassRegular {
		ok = s.high.Enqueue(pkt)
	} else {
		ok = s.low.Enqueue(pkt)
	}
	if !ok {
		s.lastDrop = queueDropReason(pkt)
		s.Drops.Inc(s.lastDrop)
		s.Flows.Drop(pkt)
	}
	return ok
}

// Dequeue implements Scheduler.
//
//tva:hotpath
func (s *SIFF) Dequeue(_ tvatime.Time) (*packet.Packet, tvatime.Time) {
	if pkt := s.high.Dequeue(); pkt != nil {
		return pkt, 0
	}
	return s.low.Dequeue(), 0
}

// Len implements Scheduler.
func (s *SIFF) Len() int { return s.high.Len() + s.low.Len() }

// Flush implements Flusher.
func (s *SIFF) Flush(release func(*packet.Packet)) {
	s.high.Flush(release)
	s.low.Flush(release)
}

// DropCount implements DropCounter.
func (s *SIFF) DropCount() uint64 { return s.Drops.Total() }

// DropReasons implements ReasonCounter.
func (s *SIFF) DropReasons() *telemetry.DropCounters { return &s.Drops }

// LastDropReason implements ReasonCounter.
func (s *SIFF) LastDropReason() telemetry.DropReason { return s.lastDrop }
