// Package capability implements TVA's unforgeable, fine-grained
// capabilities (paper §3.4–§3.5, Fig. 3).
//
// A pre-capability is minted by each router on the path of a request:
//
//	pre = timestamp(8 bits) || MAC56_secret(src, dst, timestamp)
//
// The destination converts each pre-capability into a capability bound
// to its chosen authorization of N bytes over T seconds:
//
//	cap = timestamp(8 bits) || H56(pre, N, T)
//
// where H56 is a public hash, so the destination needs no router
// secrets. A router validates a capability by recomputing both hashes.
//
// Router secrets rotate every SecretPeriod (128 s by default, half the
// modulo-256-second timestamp rollover); the high-order bit of the
// timestamp selects the current or previous secret, so a router tries
// exactly one secret per validation.
package capability

import (
	"sync"

	"tva/internal/mac"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// DefaultSecretPeriod is the paper's router secret lifetime: secrets
// change at twice the rate of the 256 s timestamp rollover (§3.4, §5.4
// "TVA expires router secret every 128 seconds").
const DefaultSecretPeriod = 128 * tvatime.Second

// tsRollover is the modulo of the 8-bit router timestamp, in seconds.
const tsRollover = 256

// CapHash is the public second hash deriving a capability from a
// pre-capability and the destination's N (bytes, KB units widened to
// uint32) and T (seconds).
type CapHash func(pre uint64, nkb uint32, tsec uint8) uint64

// Suite bundles the two hash functions so routers and destinations
// agree. Crypto is the paper's construction; Fast trades strength for
// simulation speed (see DESIGN.md §5).
type Suite struct {
	Name     string
	NewKeyed mac.KeyedFactory
	CapHash  CapHash
}

// Crypto is the paper's AES-CBC-MAC + SHA-1 construction.
var Crypto = Suite{Name: "aes+sha1", NewKeyed: mac.NewAES, CapHash: mac.SHA56}

// Fast is a keyed-FNV construction for large simulations.
var Fast = Suite{Name: "fnv", NewKeyed: mac.NewFNV, CapHash: mac.FastSHA56}

// Timestamp extracts the 8-bit router timestamp from a pre-capability
// or capability value.
func Timestamp(v uint64) uint8 { return uint8(v >> 56) }

// hashOf extracts the 56-bit hash part.
func hashOf(v uint64) uint64 { return v & mac.Mask56 }

// compose packs a timestamp and 56-bit hash into one 64-bit value.
func compose(ts uint8, h uint64) uint64 { return uint64(ts)<<56 | (h & mac.Mask56) }

// MakeCap converts a pre-capability into a capability for the grant
// (N, T) using the suite's public hash. Destinations call this; no
// router secret is involved (§3.5).
func (s Suite) MakeCap(pre uint64, nkb uint16, tsec uint8) uint64 {
	return compose(Timestamp(pre), s.CapHash(pre, uint32(nkb), tsec))
}

// Age returns the age in seconds of a timestamp under the modulo-256
// clock, and whether the comparison is unambiguous (age within half the
// rollover). now is absolute seconds.
func Age(ts uint8, nowSec int64) (age int64, ok bool) {
	age = (nowSec - int64(ts)) % tsRollover
	if age < 0 {
		age += tsRollover
	}
	return age, age <= tsRollover/2
}

// Authority mints and validates capabilities for one router. It owns
// the router's rotating secrets. Authority is safe for concurrent use.
type Authority struct {
	suite  Suite
	period tvatime.Duration

	mu sync.Mutex
	// keyed[i] is the MAC for secret epochs with parity i. An epoch is
	// period-long; validation uses the mint epoch's parity, so only
	// the current and previous secrets ever validate (§3.4).
	keyed [2]mac.Keyed
	epoch int64
}

// NewAuthority returns an Authority using the given suite and secret
// period. A zero period selects DefaultSecretPeriod.
func NewAuthority(suite Suite, period tvatime.Duration) *Authority {
	if period <= 0 {
		period = DefaultSecretPeriod
	}
	a := &Authority{suite: suite, period: period, epoch: -1}
	a.rotateTo(0)
	return a
}

// Suite returns the authority's hash suite.
func (a *Authority) Suite() Suite { return a.suite }

// rotateTo installs fresh secrets up to epoch e. Caller must not hold mu.
func (a *Authority) rotateTo(e int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e <= a.epoch {
		return
	}
	if e-a.epoch >= 2 {
		// Both slots are stale; regenerate both.
		a.keyed[e&1] = a.suite.NewKeyed(mac.NewSecret())
		a.keyed[(e-1)&1] = a.suite.NewKeyed(mac.NewSecret())
	} else {
		a.keyed[e&1] = a.suite.NewKeyed(mac.NewSecret())
	}
	a.epoch = e
}

// mac56For computes MAC56(src, dst, ts) under the secret in effect for
// a value minted at timestamp ts and observed at now. The MAC runs
// inside the authority's critical section because Keyed instances
// carry scratch state (mac.Keyed); ok is false if the mint epoch's
// secret has already been retired.
func (a *Authority) mac56For(ts uint8, now tvatime.Time, src, dst packet.Addr) (h uint64, ok bool) {
	nowSec := now.Seconds()
	curEpoch := int64(now) / int64(a.period)
	if curEpoch > a.epoch {
		a.rotateTo(curEpoch)
	}
	age, ok := Age(ts, nowSec)
	if !ok {
		return 0, false
	}
	mintEpoch := (int64(now) - age*int64(tvatime.Second)) / int64(a.period)
	if mintEpoch < 0 {
		mintEpoch = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if mintEpoch < a.epoch-1 || mintEpoch > a.epoch {
		return 0, false // secret retired (or impossible future epoch)
	}
	return a.keyed[mintEpoch&1].MAC56(uint64(src), uint64(dst), uint64(ts)), true
}

// PreCap mints a pre-capability for the (src, dst) pair at time now
// (§3.4: hash of timestamp, addresses and the router secret).
//
//tva:hotpath
func (a *Authority) PreCap(src, dst packet.Addr, now tvatime.Time) uint64 {
	curEpoch := int64(now) / int64(a.period)
	if curEpoch > a.epoch {
		a.rotateTo(curEpoch)
	}
	ts := uint8(now.Seconds() % tsRollover)
	a.mu.Lock()
	h := a.keyed[curEpoch&1].MAC56(uint64(src), uint64(dst), uint64(ts))
	a.mu.Unlock()
	return compose(ts, h)
}

// Minter is a per-burst snapshot of the authority's minting state: the
// secret-rotation check and the modulo-256 timestamp are resolved once
// when the snapshot is taken, so batched request processing pays them
// per burst instead of per packet. Each PreCap still takes the
// authority's lock for the MAC itself (the Keyed scratch is shared).
// A Minter is only valid for the instant it was taken at — take a
// fresh one whenever now advances (core.Router.ProcessBatch takes one
// per burst, which runs at a single timestamp).
type Minter struct {
	a  *Authority
	k  mac.Keyed
	ts uint8
}

// MinterAt snapshots the minting secret and timestamp in effect at now.
func (a *Authority) MinterAt(now tvatime.Time) Minter {
	curEpoch := int64(now) / int64(a.period)
	if curEpoch > a.epoch {
		a.rotateTo(curEpoch)
	}
	ts := uint8(now.Seconds() % tsRollover)
	a.mu.Lock()
	k := a.keyed[curEpoch&1]
	a.mu.Unlock()
	return Minter{a: a, k: k, ts: ts}
}

// PreCap mints a pre-capability for (src, dst) under the snapshot's
// secret and timestamp.
//
//tva:hotpath
func (m Minter) PreCap(src, dst packet.Addr) uint64 {
	m.a.mu.Lock()
	h := m.k.MAC56(uint64(src), uint64(dst), uint64(m.ts))
	m.a.mu.Unlock()
	return compose(m.ts, h)
}

// ValidateCap checks a full capability for (src, dst) with the claimed
// grant parameters (N in KB, T in seconds): it recomputes the
// pre-capability under the mint-epoch secret, recomputes the public
// hash, and checks the expiry time (§3.5: local time must not exceed
// timestamp + T). The byte-count check lives in the flow cache.
func (a *Authority) ValidateCap(src, dst packet.Addr, cap uint64, nkb uint16, tsec uint8, now tvatime.Time) bool {
	ts := Timestamp(cap)
	age, ok := Age(ts, now.Seconds())
	if !ok || age > int64(tsec) {
		return false // expired (or ambiguous, which implies long expired)
	}
	h, ok := a.mac56For(ts, now, src, dst)
	if !ok {
		return false
	}
	pre := compose(ts, h)
	return hashOf(a.suite.CapHash(pre, uint32(nkb), tsec)) == hashOf(cap)
}

// ValidatePre checks that a pre-capability was minted by this authority
// for (src, dst) and has not outlived the secret rotation. Routers do
// not need this on the forwarding path (they re-mint rather than
// verify), but destinations of diagnostic tools and tests use it.
func (a *Authority) ValidatePre(src, dst packet.Addr, pre uint64, now tvatime.Time) bool {
	ts := Timestamp(pre)
	h, ok := a.mac56For(ts, now, src, dst)
	if !ok {
		return false
	}
	return hashOf(pre) == h
}

// Expiry returns the first instant at which a capability with the
// given timestamp and period T stops validating (ValidateCap compares
// whole seconds, so a capability minted in second s is good through
// the end of second s+T). Callers must treat the returned time as
// exclusive: the capability is valid strictly before it.
func Expiry(cap uint64, tsec uint8, now tvatime.Time) tvatime.Time {
	age, _ := Age(Timestamp(cap), now.Seconds())
	remaining := int64(tsec) - age
	if remaining < 0 {
		remaining = 0
	}
	// Truncate to the second boundary the router's modulo clock uses.
	nowWhole := tvatime.Time(now.Seconds() * int64(tvatime.Second))
	return nowWhole.Add(tvatime.Duration(remaining+1) * tvatime.Second)
}
