package capability

import (
	"math/rand"
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

var suites = map[string]Suite{"crypto": Crypto, "fast": Fast}

func at(sec float64) tvatime.Time { return tvatime.FromSeconds(sec) }

func TestMintValidateRoundtrip(t *testing.T) {
	for name, suite := range suites {
		t.Run(name, func(t *testing.T) {
			a := NewAuthority(suite, 0)
			src, dst := packet.Addr(100), packet.Addr(200)
			now := at(5)
			pre := a.PreCap(src, dst, now)
			cap := suite.MakeCap(pre, 32, 10)
			if !a.ValidateCap(src, dst, cap, 32, 10, now) {
				t.Fatal("freshly minted capability failed validation")
			}
			if !a.ValidateCap(src, dst, cap, 32, 10, now.Add(9*tvatime.Second)) {
				t.Error("capability invalid before T elapsed")
			}
		})
	}
}

func TestValidateRejectsWrongBinding(t *testing.T) {
	a := NewAuthority(Fast, 0)
	src, dst := packet.Addr(1), packet.Addr(2)
	now := at(3)
	pre := a.PreCap(src, dst, now)
	cap := Fast.MakeCap(pre, 32, 10)

	cases := []struct {
		name     string
		src, dst packet.Addr
		cap      uint64
		nkb      uint16
		tsec     uint8
	}{
		{"wrong src", 9, dst, cap, 32, 10},
		{"wrong dst", src, 9, cap, 32, 10},
		{"wrong N", src, dst, cap, 33, 10},
		{"wrong T", src, dst, cap, 32, 11},
		{"tampered hash", src, dst, cap ^ 1, 32, 10},
	}
	for _, c := range cases {
		if a.ValidateCap(c.src, c.dst, c.cap, c.nkb, c.tsec, now) {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestValidateRejectsOtherRouter(t *testing.T) {
	// A capability minted by one router must not validate at another
	// (distinct secrets): unforgeability across routers.
	a1 := NewAuthority(Fast, 0)
	a2 := NewAuthority(Fast, 0)
	now := at(1)
	pre := a1.PreCap(1, 2, now)
	cap := Fast.MakeCap(pre, 32, 10)
	if a2.ValidateCap(1, 2, cap, 32, 10, now) {
		t.Error("capability from router 1 validated at router 2")
	}
}

func TestExpiryByT(t *testing.T) {
	a := NewAuthority(Fast, 0)
	now := at(10)
	pre := a.PreCap(1, 2, now)
	cap := Fast.MakeCap(pre, 32, 5)
	if !a.ValidateCap(1, 2, cap, 32, 5, now.Add(4*tvatime.Second)) {
		t.Error("capability should be valid at age 4s with T=5")
	}
	if a.ValidateCap(1, 2, cap, 32, 5, now.Add(6*tvatime.Second)) {
		t.Error("capability valid past its T")
	}
}

func TestSecretRotation(t *testing.T) {
	// A capability spanning one secret rotation must validate under
	// the previous secret; after two rotations it must not, even for
	// a generous T.
	period := 16 * tvatime.Second
	a := NewAuthority(Fast, period)
	now := at(15) // one second before the first rotation
	pre := a.PreCap(1, 2, now)
	cap := Fast.MakeCap(pre, 32, 60)
	if !a.ValidateCap(1, 2, cap, 32, 60, at(17)) {
		t.Error("capability minted before rotation should validate after it (previous secret)")
	}
	if a.ValidateCap(1, 2, cap, 32, 60, at(33)) {
		t.Error("capability validated after two rotations (secret retired)")
	}
}

func TestValidateAcrossEpochBoundaryMintEarly(t *testing.T) {
	// Mint early in an epoch and validate later in the same epoch, and
	// just after the boundary.
	period := 128 * tvatime.Second
	a := NewAuthority(Fast, period)
	now := at(2)
	pre := a.PreCap(1, 2, now)
	cap := Fast.MakeCap(pre, 32, 63)
	if !a.ValidateCap(1, 2, cap, 32, 63, at(60)) {
		t.Error("same-epoch validation failed")
	}
}

func TestAge(t *testing.T) {
	age, ok := Age(10, 15)
	if age != 5 || !ok {
		t.Errorf("Age(10,15) = %d,%v want 5,true", age, ok)
	}
	// Wraparound: ts=250, now=260 (now mod 256 = 4).
	age, ok = Age(250, 260)
	if age != 10 || !ok {
		t.Errorf("Age(250,260) = %d,%v want 10,true", age, ok)
	}
	// Ambiguous: more than half the rollover old.
	if _, ok = Age(0, 200); ok {
		t.Error("age beyond half rollover should be ambiguous")
	}
}

func TestValidatePre(t *testing.T) {
	a := NewAuthority(Fast, 0)
	now := at(1)
	pre := a.PreCap(7, 8, now)
	if !a.ValidatePre(7, 8, pre, now) {
		t.Error("own pre-capability failed validation")
	}
	if a.ValidatePre(7, 9, pre, now) {
		t.Error("pre-capability validated for wrong destination")
	}
	if a.ValidatePre(7, 8, pre^2, now) {
		t.Error("tampered pre-capability validated")
	}
}

func TestExpiryHelper(t *testing.T) {
	a := NewAuthority(Fast, 0)
	now := at(100)
	pre := a.PreCap(1, 2, now)
	cap := Fast.MakeCap(pre, 32, 10)
	exp := Expiry(cap, 10, now)
	if exp.Seconds() < 109 || exp.Seconds() > 111 {
		t.Errorf("Expiry = %v, want ~110s", exp.Seconds())
	}
}

func TestTimestampExtraction(t *testing.T) {
	a := NewAuthority(Fast, 0)
	now := at(42)
	pre := a.PreCap(1, 2, now)
	if Timestamp(pre) != 42 {
		t.Errorf("Timestamp = %d, want 42", Timestamp(pre))
	}
}

// TestPropertyRoundtripRandom exercises random bindings and grant
// parameters: mint→make→validate always succeeds at mint time, and a
// forged hash never does.
func TestPropertyRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewAuthority(Fast, 0)
	for i := 0; i < 500; i++ {
		src := packet.Addr(rng.Uint32())
		dst := packet.Addr(rng.Uint32())
		nkb := uint16(rng.Intn(packet.MaxNKB + 1))
		tsec := uint8(1 + rng.Intn(packet.MaxTSeconds))
		now := at(float64(rng.Intn(1000)) / 10)
		pre := a.PreCap(src, dst, now)
		cap := Fast.MakeCap(pre, nkb, tsec)
		if !a.ValidateCap(src, dst, cap, nkb, tsec, now) {
			t.Fatalf("iter %d: roundtrip failed", i)
		}
		forged := cap ^ (1 << uint(rng.Intn(56)))
		if a.ValidateCap(src, dst, forged, nkb, tsec, now) {
			t.Fatalf("iter %d: forged capability validated", i)
		}
	}
}

// TestForgeryWithoutSecret checks an attacker computing caps from
// guessed pre-capabilities fails: the keyed hash binds the secret.
func TestForgeryWithoutSecret(t *testing.T) {
	a := NewAuthority(Crypto, 0)
	now := at(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		guessPre := rng.Uint64()
		cap := Crypto.MakeCap(guessPre, 32, 10)
		if a.ValidateCap(1, 2, cap, 32, 10, now) {
			t.Fatal("capability built from a guessed pre-capability validated")
		}
	}
}

func BenchmarkPreCap(b *testing.B) {
	for name, suite := range suites {
		b.Run(name, func(b *testing.B) {
			a := NewAuthority(suite, 0)
			now := at(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.PreCap(packet.Addr(i), 2, now)
			}
		})
	}
}

func BenchmarkValidateCap(b *testing.B) {
	for name, suite := range suites {
		b.Run(name, func(b *testing.B) {
			a := NewAuthority(suite, 0)
			now := at(1)
			pre := a.PreCap(1, 2, now)
			cap := suite.MakeCap(pre, 32, 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !a.ValidateCap(1, 2, cap, 32, 10, now) {
					b.Fatal("validation failed")
				}
			}
		})
	}
}
