package siff

import (
	"math/rand"
	"testing"

	"tva/internal/capability"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

func at(sec float64) tvatime.Time { return tvatime.FromSeconds(sec) }

func TestMarkerCheckCurrentAndPrevious(t *testing.T) {
	m := NewMarker(capability.Fast, 3*tvatime.Second)
	mark := m.Mark(1, 2, at(1))
	if !m.Check(1, 2, mark, at(2)) {
		t.Error("mark invalid within its own epoch")
	}
	if !m.Check(1, 2, mark, at(4)) {
		t.Error("mark invalid in the next epoch (previous secret)")
	}
	if m.Check(1, 2, mark, at(7)) {
		t.Error("mark valid after two epochs")
	}
}

func TestMarkerBinding(t *testing.T) {
	m := NewMarker(capability.Fast, 0)
	mark := m.Mark(1, 2, at(1))
	if m.Check(1, 3, mark, at(1)) || m.Check(9, 2, mark, at(1)) {
		t.Error("mark validated for a different flow")
	}
	if m.Check(1, 2, mark^1, at(1)) {
		t.Error("tampered mark validated")
	}
	other := NewMarker(capability.Fast, 0)
	if other.Check(1, 2, mark, at(1)) {
		t.Error("mark validated at a different router")
	}
}

func req(src, dst packet.Addr) *packet.Packet {
	h := &packet.CapHdr{Kind: packet.KindRequest, Proto: packet.ProtoRaw}
	return &packet.Packet{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
		Hdr: h, Size: packet.OuterHdrLen + h.WireSize()}
}

func TestRouterRequestIsLegacyPriority(t *testing.T) {
	r := NewRouter(capability.Fast, 0)
	pkt := req(1, 2)
	class, drop := r.Process(pkt, at(0))
	if drop {
		t.Fatal("request dropped")
	}
	if class != packet.ClassLegacy {
		t.Errorf("SIFF request class = %v, want legacy (the SIFF weakness)", class)
	}
	if len(pkt.Hdr.Request.PreCaps) != 1 {
		t.Error("mark not stamped")
	}
}

func TestRouterValidAndInvalidMarks(t *testing.T) {
	r := NewRouter(capability.Fast, 0)
	rq := req(1, 2)
	r.Process(rq, at(0))
	mark := rq.Hdr.Request.PreCaps[0]

	good := &packet.Packet{Src: 1, Dst: 2, Proto: packet.ProtoRaw, Size: 100,
		Hdr: &packet.CapHdr{Kind: packet.KindRegular, Caps: []uint64{mark}}}
	class, drop := r.Process(good, at(1))
	if drop || class != packet.ClassRegular {
		t.Fatalf("valid mark: class=%v drop=%v", class, drop)
	}

	bad := &packet.Packet{Src: 1, Dst: 2, Proto: packet.ProtoRaw, Size: 100,
		Hdr: &packet.CapHdr{Kind: packet.KindRegular, Caps: []uint64{mark ^ 1}}}
	if _, drop := r.Process(bad, at(1)); !drop {
		t.Error("invalid mark must be dropped, not demoted (SIFF)")
	}
	if r.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", r.Dropped())
	}
	if r.Drops.Get(telemetry.DropCapInvalid) != 1 {
		t.Errorf("drop not attributed to cap-invalid: %+v", r.Drops)
	}
}

func TestRouterNoByteLimit(t *testing.T) {
	// SIFF places no limit on how much an authorized flow sends: the
	// same mark forwards arbitrarily many bytes until rotation.
	r := NewRouter(capability.Fast, 1000*tvatime.Second)
	rq := req(1, 2)
	r.Process(rq, at(0))
	mark := rq.Hdr.Request.PreCaps[0]
	for i := 0; i < 10_000; i++ {
		pkt := &packet.Packet{Src: 1, Dst: 2, Proto: packet.ProtoRaw, Size: 1500,
			Hdr: &packet.CapHdr{Kind: packet.KindRegular, Caps: []uint64{mark}}}
		if _, drop := r.Process(pkt, at(1)); drop {
			t.Fatalf("packet %d dropped despite valid mark (no byte limit in SIFF)", i)
		}
	}
}

func TestRouterMarkDiesOnRotation(t *testing.T) {
	r := NewRouter(capability.Fast, 3*tvatime.Second)
	rq := req(1, 2)
	r.Process(rq, at(0))
	mark := rq.Hdr.Request.PreCaps[0]
	pkt := func() *packet.Packet {
		return &packet.Packet{Src: 1, Dst: 2, Proto: packet.ProtoRaw, Size: 100,
			Hdr: &packet.CapHdr{Kind: packet.KindRegular, Caps: []uint64{mark}}}
	}
	if _, drop := r.Process(pkt(), at(5)); drop {
		t.Error("mark should survive one rotation")
	}
	if _, drop := r.Process(pkt(), at(7)); !drop {
		t.Error("mark survived two rotations; destination can never revoke (§5.4)")
	}
}

// siffWire glues two SIFF shims through one router.
type siffWire struct {
	now    tvatime.Time
	router *Router
	shims  map[packet.Addr]*Shim
	drops  int
}

func (w *siffWire) Now() tvatime.Time { return w.now }

func newSIFFWire() *siffWire {
	return &siffWire{router: NewRouter(capability.Fast, 3*tvatime.Second), shims: map[packet.Addr]*Shim{}}
}

func (w *siffWire) addHost(addr packet.Addr, policy Policy) *Shim {
	s := NewShim(addr, policy, w, rand.New(rand.NewSource(int64(addr))), ShimConfig{AutoReturn: true})
	s.Output = func(pkt *packet.Packet) {
		if _, drop := w.router.Process(pkt, w.now); drop {
			w.drops++
			return
		}
		if d := w.shims[pkt.Dst]; d != nil {
			d.Receive(pkt)
		}
	}
	w.shims[addr] = s
	return s
}

func alwaysGrant(packet.Addr, tvatime.Time) bool { return true }

func TestSIFFHandshake(t *testing.T) {
	w := newSIFFWire()
	c := w.addHost(1, PolicyFunc(alwaysGrant))
	w.addHost(2, PolicyFunc(alwaysGrant))
	c.Send(2, packet.ProtoRaw, nil, 100)
	if !c.HasCaps(2) {
		t.Fatal("handshake failed")
	}
	c.Send(2, packet.ProtoRaw, nil, 100)
	if c.Stats.RegularSent != 1 {
		t.Errorf("RegularSent = %d, want 1", c.Stats.RegularSent)
	}
	if w.drops != 0 {
		t.Errorf("unexpected drops: %d", w.drops)
	}
}

func TestSIFFShimReRequestsAfterStaleness(t *testing.T) {
	w := newSIFFWire()
	c := w.addHost(1, PolicyFunc(alwaysGrant))
	w.addHost(2, PolicyFunc(alwaysGrant))
	c.Send(2, packet.ProtoRaw, nil, 100)
	w.now = at(4) // past the assumed secret period
	c.Send(2, packet.ProtoRaw, nil, 100)
	if c.Stats.ReRequests != 1 {
		t.Errorf("ReRequests = %d, want 1 (marks presumed dead)", c.Stats.ReRequests)
	}
	// The re-request re-granted fresh marks inline (auto-return).
	if !c.HasCaps(2) {
		t.Error("re-request did not refresh marks")
	}
}

func TestSIFFShimSilenceFallback(t *testing.T) {
	w := newSIFFWire()
	c := w.addHost(1, PolicyFunc(alwaysGrant))
	w.addHost(2, PolicyFunc(alwaysGrant))
	c.Send(2, packet.ProtoRaw, nil, 100)
	if !c.HasCaps(2) {
		t.Fatal("no caps")
	}
	// Simulate the peer going silent while we keep sending: after the
	// silence timeout the shim must fall back to requesting.
	w.shims[2] = nil // blackhole the peer
	c.Send(2, packet.ProtoRaw, nil, 100)
	w.now = at(2)
	c.Send(2, packet.ProtoRaw, nil, 100)
	if c.Stats.ReRequests != 1 {
		t.Errorf("ReRequests = %d, want 1 after silence", c.Stats.ReRequests)
	}
}

func TestSIFFForget(t *testing.T) {
	w := newSIFFWire()
	c := w.addHost(1, PolicyFunc(alwaysGrant))
	w.addHost(2, PolicyFunc(alwaysGrant))
	c.Send(2, packet.ProtoRaw, nil, 100)
	if !c.HasCaps(2) {
		t.Fatal("no caps")
	}
	c.Forget(2)
	if c.HasCaps(2) {
		t.Error("Forget did not clear marks")
	}
}

func TestSIFFRefusedStaysUnauthorized(t *testing.T) {
	w := newSIFFWire()
	c := w.addHost(1, PolicyFunc(alwaysGrant))
	w.addHost(2, PolicyFunc(func(packet.Addr, tvatime.Time) bool { return false }))
	c.Send(2, packet.ProtoRaw, nil, 100)
	if c.HasCaps(2) {
		t.Error("refused sender got marks")
	}
}
