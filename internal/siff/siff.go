// Package siff implements the SIFF baseline (Yaar et al. 2004) as the
// paper models it in its ns simulations (§5):
//
//   - capability requests are treated as legacy (low priority) traffic;
//   - routers keep no per-flow state and place no limit on how many
//     bytes a capability forwards;
//   - a capability remains valid until the router secret changes (the
//     evaluation assumes an aggressive 3 s rotation, §5.4) — the
//     destination cannot revoke it sooner;
//   - packets whose capability fails verification are dropped, not
//     demoted;
//   - authorized traffic shares one priority FIFO (no per-destination
//     balancing).
//
// SIFF's real marks are 2 bits per router; we carry 64-bit marks in the
// same header fields as TVA so both schemes exercise identical
// machinery, since none of the reproduced experiments exercises
// brute-forcing of short marks (DESIGN.md §2).
package siff

import (
	"sync"

	"tva/internal/capability"
	"tva/internal/mac"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// DefaultSecretPeriod is the evaluation's aggressive SIFF secret
// rotation (§5.4).
const DefaultSecretPeriod = 3 * tvatime.Second

// Marker mints and checks one router's SIFF marks. A mark is a keyed
// hash of the flow's addresses under the router's epoch secret; the
// router accepts the current or previous epoch's mark.
type Marker struct {
	suite  capability.Suite
	period tvatime.Duration

	mu    sync.Mutex
	keyed [2]mac.Keyed
	epoch int64
}

// NewMarker returns a Marker rotating its secret every period
// (DefaultSecretPeriod if zero).
func NewMarker(suite capability.Suite, period tvatime.Duration) *Marker {
	if suite.NewKeyed == nil {
		suite = capability.Crypto
	}
	if period <= 0 {
		period = DefaultSecretPeriod
	}
	m := &Marker{suite: suite, period: period, epoch: -1}
	m.rotateTo(0)
	return m
}

func (m *Marker) rotateTo(e int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e <= m.epoch {
		return
	}
	if e-m.epoch >= 2 {
		m.keyed[e&1] = m.suite.NewKeyed(mac.NewSecret())
		m.keyed[(e-1)&1] = m.suite.NewKeyed(mac.NewSecret())
	} else {
		m.keyed[e&1] = m.suite.NewKeyed(mac.NewSecret())
	}
	m.epoch = e
}

func (m *Marker) epochAt(now tvatime.Time) int64 {
	e := int64(now) / int64(m.period)
	if e > m.epoch {
		m.rotateTo(e)
	}
	return e
}

// Mark computes the current-epoch mark for a flow. The MAC runs under
// the marker's lock because Keyed instances carry scratch state
// (mac.Keyed).
func (m *Marker) Mark(src, dst packet.Addr, now tvatime.Time) uint64 {
	e := m.epochAt(now)
	m.mu.Lock()
	v := m.keyed[e&1].MAC56(uint64(src), uint64(dst), 0)
	m.mu.Unlock()
	return v
}

// Check reports whether v is the flow's mark under the current or
// previous epoch secret.
func (m *Marker) Check(src, dst packet.Addr, v uint64, now tvatime.Time) bool {
	e := m.epochAt(now)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.keyed[e&1].MAC56(uint64(src), uint64(dst), 0) == v {
		return true
	}
	prev := m.keyed[(e-1)&1]
	return prev != nil && prev.MAC56(uint64(src), uint64(dst), 0) == v
}

// RouterStats counts SIFF router outcomes.
type RouterStats struct {
	Requests uint64
	Valid    uint64
	Legacy   uint64
}

// Router is one SIFF router's processing state.
type Router struct {
	marker *Marker
	Stats  RouterStats
	// Drops attributes verification drops by reason (a failed or
	// malformed mark is cap-invalid in the shared taxonomy).
	Drops telemetry.DropCounters
}

// Dropped returns the total packets dropped by mark verification.
func (r *Router) Dropped() uint64 { return r.Drops.Total() }

// NewRouter returns a SIFF router.
func NewRouter(suite capability.Suite, secretPeriod tvatime.Duration) *Router {
	return &Router{marker: NewMarker(suite, secretPeriod)}
}

// Marker exposes the router's marker (tests).
func (r *Router) Marker() *Marker { return r.marker }

// Process classifies one packet. Requests are stamped with this
// router's mark and forwarded as legacy traffic; packets with valid
// marks are high-priority; packets with invalid marks are dropped
// (drop=true). Legacy packets pass at low priority.
func (r *Router) Process(pkt *packet.Packet, now tvatime.Time) (class packet.Class, drop bool) {
	h := pkt.Hdr
	if h == nil {
		r.Stats.Legacy++
		pkt.Class = packet.ClassLegacy
		return pkt.Class, false
	}
	switch h.Kind {
	case packet.KindRequest:
		r.Stats.Requests++
		before := h.WireSize()
		if len(h.Request.PreCaps) < packet.MaxCaps {
			h.Request.PreCaps = append(h.Request.PreCaps, r.marker.Mark(pkt.Src, pkt.Dst, now))
		}
		pkt.Size += h.WireSize() - before
		// SIFF gives requests no better treatment than legacy traffic.
		pkt.Class = packet.ClassLegacy
		return pkt.Class, false
	case packet.KindRegular:
		if int(h.Ptr) >= len(h.Caps) {
			r.Drops.Inc(telemetry.DropCapInvalid)
			return packet.ClassLegacy, true
		}
		mark := h.Caps[h.Ptr]
		h.Ptr++
		if !r.marker.Check(pkt.Src, pkt.Dst, mark, now) {
			r.Drops.Inc(telemetry.DropCapInvalid)
			return packet.ClassLegacy, true
		}
		r.Stats.Valid++
		pkt.Class = packet.ClassRegular
		return pkt.Class, false
	default:
		// SIFF has no nonce-only or renewal packets; treat as legacy.
		r.Stats.Legacy++
		pkt.Class = packet.ClassLegacy
		return pkt.Class, false
	}
}
