// SIFF host shim: the sender-side of the SIFF handshake. Unlike TVA
// there is no renewal, no flow nonce (every authorized packet carries
// the full mark list), and no demotion signal: invalid packets vanish,
// so the sender falls back to requesting when the path goes silent or
// its marks are older than the secret rotation guarantees.
package siff

import (
	"math/rand"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// ShimConfig parameterizes SIFF host behaviour.
type ShimConfig struct {
	// SecretPeriod is the sender's assumption about router rotation;
	// marks older than this are presumed dead (default 3s).
	SecretPeriod tvatime.Duration
	// SilenceTimeout re-requests when packets have been sent but
	// nothing has been heard from the peer for this long (default 1s):
	// the sender's only signal that its marks died mid-epoch.
	SilenceTimeout tvatime.Duration
	// AutoReturn mirrors core.ShimConfig.AutoReturn.
	AutoReturn bool
}

func (c ShimConfig) withDefaults() ShimConfig {
	if c.SecretPeriod <= 0 {
		c.SecretPeriod = DefaultSecretPeriod
	}
	if c.SilenceTimeout <= 0 {
		c.SilenceTimeout = tvatime.Second
	}
	return c
}

type sendState struct {
	granted        bool
	caps           []uint64
	grantedAt      tvatime.Time
	heard          bool
	lastHeard      tvatime.Time
	sentSinceHeard int
}

// Policy mirrors core.Policy but SIFF grants are binary (no N/T).
type Policy interface {
	Authorize(src packet.Addr, now tvatime.Time) (ok bool)
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(src packet.Addr, now tvatime.Time) bool

// Authorize implements Policy.
func (f PolicyFunc) Authorize(src packet.Addr, now tvatime.Time) bool { return f(src, now) }

// ShimStats counts shim activity.
type ShimStats struct {
	RequestsSent   uint64
	RegularSent    uint64
	GrantsReceived uint64
	GrantsIssued   uint64
	ReRequests     uint64
}

// Shim is one host's SIFF layer.
type Shim struct {
	cfg    ShimConfig
	addr   packet.Addr
	clock  tvatime.Clock
	rng    *rand.Rand
	policy Policy

	Output  func(pkt *packet.Packet)
	Deliver func(src packet.Addr, proto packet.Proto, payload any, size int, demoted bool)

	sends   map[packet.Addr]*sendState
	pending map[packet.Addr]*packet.ReturnInfo

	Stats ShimStats
}

// NewShim builds a SIFF host shim.
func NewShim(addr packet.Addr, policy Policy, clock tvatime.Clock, rng *rand.Rand, cfg ShimConfig) *Shim {
	return &Shim{
		cfg:     cfg.withDefaults(),
		addr:    addr,
		clock:   clock,
		rng:     rng,
		policy:  policy,
		sends:   make(map[packet.Addr]*sendState),
		pending: make(map[packet.Addr]*packet.ReturnInfo),
	}
}

// HasCaps reports whether the shim holds (presumed live) marks for dst.
func (s *Shim) HasCaps(dst packet.Addr) bool {
	st := s.sends[dst]
	return st != nil && st.granted
}

// Send wraps an upper-layer payload toward dst. Packets come from the
// packet pool; ownership passes to Output.
func (s *Shim) Send(dst packet.Addr, proto packet.Proto, payload any, size int) {
	now := s.clock.Now()
	pkt := packet.AcquirePacket()
	h := pkt.NewHdr()
	h.Proto = proto
	st := s.sends[dst]

	if st != nil && st.granted {
		stale := now.Sub(st.grantedAt) >= s.cfg.SecretPeriod
		silent := st.sentSinceHeard > 0 && st.heard &&
			now.Sub(st.lastHeard) > s.cfg.SilenceTimeout
		if stale || silent {
			st.granted = false
			s.Stats.ReRequests++
		}
	}

	if st != nil && st.granted {
		h.Kind = packet.KindRegular
		h.Caps = append(h.Caps[:0], st.caps...)
		st.sentSinceHeard++
		s.Stats.RegularSent++
	} else {
		h.Kind = packet.KindRequest
		if cap(h.Request.PreCaps) == 0 {
			h.Request.PreCaps = make([]uint64, 0, 8)
		}
		s.Stats.RequestsSent++
	}

	if ret := s.pending[dst]; ret != nil {
		h.Return = ret
		delete(s.pending, dst)
	}

	pkt.Src = s.addr
	pkt.Dst = dst
	pkt.TTL = 64
	pkt.Proto = proto
	pkt.Size = packet.OuterHdrLen + h.WireSize() + size
	pkt.Payload = payload
	pkt.SentAt = now
	s.Output(pkt)
}

// Receive processes an incoming packet.
func (s *Shim) Receive(pkt *packet.Packet) {
	now := s.clock.Now()
	h := pkt.Hdr
	if h == nil {
		if s.Deliver != nil {
			s.Deliver(pkt.Src, pkt.Proto, pkt.Payload, pkt.Size, false)
		}
		return
	}
	if st := s.sends[pkt.Src]; st != nil {
		st.heard = true
		st.lastHeard = now
		st.sentSinceHeard = 0
	}
	if h.Return != nil && h.Return.Grant != nil {
		if len(h.Return.Grant.Caps) > 0 {
			s.Stats.GrantsReceived++
			s.sends[pkt.Src] = &sendState{
				granted:   true,
				caps:      append([]uint64(nil), h.Return.Grant.Caps...),
				grantedAt: now,
				heard:     true,
				lastHeard: now,
			}
		}
	}
	if h.Kind == packet.KindRequest && h.Proto != packet.ProtoControl &&
		len(h.Request.PreCaps) > 0 && s.policy != nil {
		if s.policy.Authorize(pkt.Src, now) {
			s.Stats.GrantsIssued++
			s.pendingFor(pkt.Src).Grant = &packet.Grant{
				Caps: append([]uint64(nil), h.Request.PreCaps...),
			}
		}
	}
	if s.Deliver != nil && h.Proto != packet.ProtoControl {
		s.Deliver(pkt.Src, h.Proto, pkt.Payload, pkt.Size, false)
	}
	if s.cfg.AutoReturn {
		if ret := s.pending[pkt.Src]; ret != nil && ret.Grant != nil {
			s.Send(pkt.Src, packet.ProtoControl, nil, 0)
		}
	}
}

func (s *Shim) pendingFor(dst packet.Addr) *packet.ReturnInfo {
	r := s.pending[dst]
	if r == nil {
		r = &packet.ReturnInfo{}
		s.pending[dst] = r
	}
	return r
}

// Forget drops any marks held toward dst, forcing the next packet to
// re-request. The evaluation uses it to model per-connection SIFF
// handshakes (each transfer's SYN carries a request, matching the
// paper's 1-p^9 completion model in §5.1).
func (s *Shim) Forget(dst packet.Addr) { delete(s.sends, dst) }
