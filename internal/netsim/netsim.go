// Package netsim is a packet-level discrete-event network simulator,
// the substrate the paper's ns-2 evaluation runs on (DESIGN.md §2).
//
// A simulation is a set of nodes joined by full-duplex links. Each
// direction of a link has a bandwidth, a propagation delay, and its own
// output scheduler (any sched.Scheduler), so TVA/SIFF/drop-tail routers
// differ only in the scheduler attached to each link direction and the
// node's packet handler. Packets occupy the link for size*8/bandwidth
// and arrive delay later, which reproduces exactly the queueing
// behaviour the paper's figures depend on.
package netsim

import (
	"fmt"
	"math/rand"

	"tva/internal/metrics"
	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// Sim is the event loop. It is single-goroutine: handlers run inline
// from Run.
type Sim struct {
	now     tvatime.Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	horizon tvatime.Time // active Run bound; 0 = no Run in progress

	// Spans, if set, is the flight recorder every lifecycle edge in
	// this simulation reports to. Attach it before building the
	// topology: Connect registers each interface as a trace hop, and
	// Node.Send assigns trace IDs to injected packets. Nil disables
	// tracing (a single pointer check per edge).
	Spans *trace.Recorder

	// TxBatch caps how many packets one interface transmit burst may
	// serve inline (see Iface.txNext). 0 or 1 is the classic
	// one-event-per-packet loop; larger values collapse quiet-window
	// transmissions into one event-loop visit without changing any
	// timestamp, which the same-seed trace-equivalence tests pin.
	TxBatch int

	// TxBursts/TxBurstPkts count transmit-loop visits that moved at
	// least one packet and the packets they moved; their ratio is the
	// burst fill level surfaced as a telemetry gauge.
	TxBursts    uint64
	TxBurstPkts uint64
}

// New returns a simulator with a deterministic RNG.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now implements tvatime.Clock.
func (s *Sim) Now() tvatime.Time { return s.now }

// Rand returns the simulation's RNG (deterministic per seed).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute time t (>= now).
func (s *Sim) At(t tvatime.Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now.
func (s *Sim) After(d tvatime.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Every schedules fn every period until the returned stop function is
// called. A stopped ticker never re-arms: at most one already-pending
// (now inert) event remains in the heap, so long sweeps do not
// accumulate live periodic events past the span they need them for.
func (s *Sim) Every(period tvatime.Duration, fn func()) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		s.After(period, tick)
	}
	s.After(period, tick)
	return func() { stopped = true }
}

// Step runs the earliest event; it reports false when no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := s.events.pop()
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue empties or the clock passes
// until. Events scheduled beyond until remain pending. While Run is
// active its bound is the burst-inlining horizon: transmit bursts may
// advance the clock inline only across spans Run itself would have
// stepped through.
func (s *Sim) Run(until tvatime.Time) {
	prev := s.horizon
	s.horizon = until
	for len(s.events) > 0 && s.events[0].at <= until {
		s.Step()
	}
	s.horizon = prev
	if s.now < until {
		s.now = until
	}
}

// canInline reports whether an event at time t, if scheduled now,
// would be the very next event the loop pops — no pending event is at
// or before t (a same-time event would win the tie on sequence
// number), and the active Run covers t. When it holds, running the
// event's body inline with the clock advanced to t is
// indistinguishable from scheduling it: same state, same timestamps,
// same event order.
func (s *Sim) canInline(t tvatime.Time) bool {
	if s.horizon == 0 || t > s.horizon {
		return false
	}
	return len(s.events) == 0 || s.events[0].at > t
}

// TxBurstFill returns the mean packets moved per transmit-loop visit
// (1.0 when unbatched; up to TxBatch under backlog). Telemetry gauge.
func (s *Sim) TxBurstFill() float64 {
	if s.TxBursts == 0 {
		return 0
	}
	return float64(s.TxBurstPkts) / float64(s.TxBursts)
}

type event struct {
	at  tvatime.Time
	seq uint64
	fn  func()
}

// eventHeap is a value-based binary min-heap ordered by (at, seq).
// Events are stored by value rather than behind container/heap's
// interface, so scheduling does not heap-allocate per event; the
// backing array shrinks and regrows in place, acting as the free-list
// for retired event slots.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the closure reference for GC
	s = s[:n]
	*h = s
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && s.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// Handler processes packets arriving at a node. in is the interface
// the packet arrived on (nil for locally originated deliveries).
type Handler interface {
	Receive(pkt *packet.Packet, in *Iface)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(pkt *packet.Packet, in *Iface)

// Receive implements Handler.
func (f HandlerFunc) Receive(pkt *packet.Packet, in *Iface) { f(pkt, in) }

// Node is a host or router.
type Node struct {
	Sim     *Sim
	Name    string
	Handler Handler

	ifaces []*Iface
	routes map[packet.Addr]*Iface
	def    *Iface
}

// NewNode creates a node attached to the simulation.
func (s *Sim) NewNode(name string) *Node {
	return &Node{Sim: s, Name: name, routes: make(map[packet.Addr]*Iface)}
}

// Ifaces returns the node's interfaces in attachment order.
func (n *Node) Ifaces() []*Iface { return n.ifaces }

// AddRoute installs a host route for dst via the given interface.
func (n *Node) AddRoute(dst packet.Addr, via *Iface) { n.routes[dst] = via }

// SetDefault installs the default route.
func (n *Node) SetDefault(via *Iface) { n.def = via }

// Route returns the output interface for dst, or nil if unroutable.
func (n *Node) Route(dst packet.Addr) *Iface {
	if i, ok := n.routes[dst]; ok {
		return i
	}
	return n.def
}

// Send routes and transmits a locally originated or forwarded packet.
// Unroutable packets are silently dropped (and returned to the packet
// pool if pooled).
//
// With a flight recorder attached, Send is where a packet enters the
// traced world: the first routable Send assigns its monotonic trace ID
// and emits the send edge. Forwarded packets already carry an ID and
// get no second send edge.
func (n *Node) Send(pkt *packet.Packet) {
	out := n.Route(pkt.Dst)
	if out == nil {
		packet.Release(pkt)
		return
	}
	if rec := n.Sim.Spans; rec != nil && pkt.TraceID == 0 {
		pkt.TraceID = rec.NextID()
		sp := n.Sim.SpanFor(pkt, trace.EdgeSend)
		sp.Hop = out.Hop
		rec.Record(sp)
	}
	out.Send(pkt)
}

// SpanFor builds the base span for pkt at the current simulation time,
// with Hop set to trace.NoHop; callers fill in location fields and
// pass it to Spans.Record.
func (s *Sim) SpanFor(pkt *packet.Packet, edge trace.Edge) trace.Span {
	sp := trace.Span{
		ID:    pkt.TraceID,
		Time:  s.now,
		Src:   uint32(pkt.Src),
		Dst:   uint32(pkt.Dst),
		Size:  uint32(pkt.Size),
		Hop:   trace.NoHop,
		Edge:  edge,
		Class: uint8(pkt.Class),
	}
	if pkt.Hdr != nil {
		sp.Kind = uint8(pkt.Hdr.Kind) + 1
	}
	return sp
}

// String implements fmt.Stringer.
func (n *Node) String() string { return n.Name }

// IfaceStats counts traffic through one link direction. DroppedPkts
// counts enqueue (queue-full) drops only; LostPkts counts fault losses
// — wire loss, down-window cuts, and restart flushes — which are
// attributed by reason in Iface.FaultDrops.
type IfaceStats struct {
	EnqueuedPkts  uint64
	EnqueuedBytes uint64
	SentPkts      uint64
	SentBytes     uint64
	DroppedPkts   uint64
	DroppedBytes  uint64
	LostPkts      uint64
	LostBytes     uint64
}

// Iface is one direction of a link: the sending side's output queue
// plus the wire to the peer.
type Iface struct {
	Node  *Node
	Peer  *Iface
	Index int // index within Node.ifaces

	Bps   int64
	Delay tvatime.Duration
	Sched sched.Scheduler

	Stats IfaceStats

	// OnDrop, if set, observes packets dropped at enqueue (pushback's
	// drop-history hook).
	OnDrop func(pkt *packet.Packet)

	// QueueDelay, if set, observes each dequeued packet's time in this
	// output queue (virtual time between Enqueue and Dequeue). A single
	// nil check on the dequeue path; nil costs nothing.
	QueueDelay *telemetry.Histogram

	// WaitSketch, if set, streams the same per-packet queue wait into
	// the metrics layer's quantile sketch, feeding the live
	// tva_queue_wait_ns series. Same contract as QueueDelay: one nil
	// check, zero allocation.
	WaitSketch *metrics.Sketch

	// Tracer, if set, receives enqueue/dequeue/drop events for this
	// interface. TraceID labels the events (set it to the owning
	// router's id).
	Tracer  telemetry.Tracer
	TraceID int

	// Hop is this interface's identity in the span flight recorder
	// (registered by Connect when Sim.Spans is attached), or
	// trace.NoHop when the simulation is untraced.
	Hop uint16

	// FaultDrops attributes every fault loss on this interface —
	// link-loss, link-down, router-restart — by reason (impair.go).
	FaultDrops telemetry.DropCounters

	busy         bool
	retryPending bool
	down         bool
	impair       *Impairment
}

// Connect joins two nodes with a full-duplex link. bps and delay apply
// to both directions; schedAB is the output queue for a→b traffic and
// schedBA for b→a. It returns (a's iface, b's iface).
func Connect(a, b *Node, bps int64, delay tvatime.Duration, schedAB, schedBA sched.Scheduler) (*Iface, *Iface) {
	if schedAB == nil {
		schedAB = sched.NewDropTail(0)
	}
	if schedBA == nil {
		schedBA = sched.NewDropTail(0)
	}
	ia := &Iface{Node: a, Bps: bps, Delay: delay, Sched: schedAB, Index: len(a.ifaces), Hop: trace.NoHop}
	ib := &Iface{Node: b, Bps: bps, Delay: delay, Sched: schedBA, Index: len(b.ifaces), Hop: trace.NoHop}
	ia.Peer, ib.Peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	if rec := a.Sim.Spans; rec != nil {
		ia.Hop = rec.RegisterHop(ia.String())
		ib.Hop = rec.RegisterHop(ib.String())
	}
	return ia, ib
}

// Send enqueues pkt on this interface's output queue and starts
// transmission if the link is idle.
func (i *Iface) Send(pkt *packet.Packet) {
	sim := i.Node.Sim
	pkt.EnqueuedAt = sim.now
	if !i.Sched.Enqueue(pkt, sim.now) {
		i.Stats.DroppedPkts++
		i.Stats.DroppedBytes += uint64(pkt.Size)
		if i.OnDrop != nil {
			i.OnDrop(pkt)
		}
		var reason telemetry.DropReason
		if rc, ok := i.Sched.(sched.ReasonCounter); ok {
			reason = rc.LastDropReason()
		}
		if i.Tracer != nil {
			ev := i.traceEvent(pkt, telemetry.EventDrop)
			ev.Reason = reason
			i.Tracer.Record(ev)
		}
		if sim.Spans != nil && pkt.TraceID != 0 {
			sp := i.span(pkt, trace.EdgeDrop)
			sp.Reason = reason
			sim.Spans.Record(sp)
		}
		packet.Release(pkt)
		return
	}
	i.Stats.EnqueuedPkts++
	i.Stats.EnqueuedBytes += uint64(pkt.Size)
	if i.Tracer != nil {
		i.Tracer.Record(i.traceEvent(pkt, telemetry.EventEnqueue))
	}
	if sim.Spans != nil && pkt.TraceID != 0 {
		sim.Spans.Record(i.span(pkt, trace.EdgeEnqueue))
	}
	i.kick()
}

// span builds the flight-recorder span for pkt on this interface.
// Request-class enqueues carry the packet's most recent path id, the
// key of the fair queue it joined.
func (i *Iface) span(pkt *packet.Packet, edge trace.Edge) trace.Span {
	sp := i.Node.Sim.SpanFor(pkt, edge)
	sp.Hop = i.Hop
	if pkt.Class == packet.ClassRequest && pkt.Hdr != nil {
		if ids := pkt.Hdr.Request.PathIDs; len(ids) > 0 {
			sp.PathID = uint16(ids[len(ids)-1])
		}
	}
	return sp
}

// traceEvent builds the per-packet event for this interface.
func (i *Iface) traceEvent(pkt *packet.Packet, kind telemetry.EventKind) telemetry.Event {
	return telemetry.Event{
		Time:   i.Node.Sim.now,
		Kind:   kind,
		Router: i.TraceID,
		Src:    uint32(pkt.Src),
		Dst:    uint32(pkt.Dst),
		Class:  uint8(pkt.Class),
		Size:   pkt.Size,
	}
}

// kick starts the transmit loop if idle.
func (i *Iface) kick() {
	if i.busy {
		return
	}
	i.busy = true
	// Not a tail call: kick runs mid-event (inside an enqueue deep in
	// some handler's stack), where advancing the clock inline would
	// corrupt the rest of that event's callback.
	i.txNext(false)
}

// txTime returns the serialization delay of size bytes at the link rate.
func (i *Iface) txTime(size int) tvatime.Duration {
	if i.Bps <= 0 {
		return 0
	}
	return tvatime.Duration(int64(size) * 8 * int64(tvatime.Second) / i.Bps)
}

// txNext serves the output queue. One visit transmits up to
// Sim.TxBatch packets: after a packet's serialization time is
// computed, its completion normally becomes a heap event — but when
// no other event is due first (Sim.canInline), the completion is the
// event the loop would pop next, so it runs inline with the clock
// advanced to the completion instant and the loop dequeues the next
// packet immediately. Every observation (queue delay, tracer events,
// spans, launch) happens at exactly the virtual time it would have
// under the one-event-per-packet loop, which is why same-seed batched
// and unbatched runs produce byte-identical trace dumps.
//
// Inlining is only legal when txNext is the last statement of the
// running event (tail=true, the completion event's own callback). A
// kick from inside an enqueue is mid-event: code after it would
// observe the advanced clock and schedule at wrong times.
func (i *Iface) txNext(tail bool) {
	sim := i.Node.Sim
	burst := 0
	for {
		if i.down {
			// The interface stops serving its queue while down;
			// SetDown(false) kicks the loop back into motion.
			i.busy = false
			break
		}
		pkt, retry := i.Sched.Dequeue(sim.now)
		if pkt == nil {
			i.busy = false
			if retry > sim.now && !i.retryPending {
				i.retryPending = true
				sim.At(retry, func() {
					i.retryPending = false
					if !i.busy && i.Sched.Len() > 0 {
						i.kick()
					}
				})
			}
			break
		}
		if i.QueueDelay != nil {
			i.QueueDelay.Observe(sim.now.Sub(pkt.EnqueuedAt))
		}
		if i.WaitSketch != nil {
			i.WaitSketch.Observe(int64(sim.now.Sub(pkt.EnqueuedAt)))
		}
		if i.Tracer != nil {
			i.Tracer.Record(i.traceEvent(pkt, telemetry.EventDequeue))
		}
		if sim.Spans != nil && pkt.TraceID != 0 {
			sim.Spans.Record(i.span(pkt, trace.EdgeDequeue))
		}
		done := sim.now.Add(i.txTime(pkt.Size))
		if tail && burst+1 < sim.TxBatch && sim.canInline(done) {
			sim.now = done
			i.txComplete(pkt)
			burst++
			continue
		}
		burst++
		sim.At(done, func() {
			i.txComplete(pkt)
			i.txNext(true)
		})
		break
	}
	if burst > 0 {
		sim.TxBursts++
		sim.TxBurstPkts += uint64(burst)
	}
}

// txComplete finishes one packet's transmission: accounting, the tx
// span, and the move onto the wire.
func (i *Iface) txComplete(pkt *packet.Packet) {
	sim := i.Node.Sim
	i.Stats.SentPkts++
	i.Stats.SentBytes += uint64(pkt.Size)
	if sim.Spans != nil && pkt.TraceID != 0 {
		sim.Spans.Record(i.span(pkt, trace.EdgeTx))
	}
	i.launch(pkt)
}

func (i *Iface) deliver(pkt *packet.Packet) {
	peer := i.Peer
	if peer.Node.Handler != nil {
		peer.Node.Handler.Receive(pkt, peer)
	}
}

// String implements fmt.Stringer.
func (i *Iface) String() string {
	return fmt.Sprintf("%s#%d->%s", i.Node.Name, i.Index, i.Peer.Node.Name)
}

// Utilization returns sent bytes as a fraction of what the link could
// have carried over the elapsed duration.
func (i *Iface) Utilization(elapsed tvatime.Duration) float64 {
	if elapsed <= 0 || i.Bps <= 0 {
		return 0
	}
	capacity := float64(i.Bps) / 8 * elapsed.Seconds()
	return float64(i.Stats.SentBytes) / capacity
}
