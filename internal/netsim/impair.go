// Link impairment models: the fault-injection substrate for the
// recovery experiments (DESIGN.md §10). Each impairment is attached to
// one link direction and owns a deterministic PRNG seeded per link, so
// a run with impairments is still a pure function of its seed and the
// determinism analyzer's contract holds. Composable faults:
//
//   - random loss: each packet leaving the wire is dropped with
//     LossProb (reason link-loss);
//   - duplication: with DupProb the packet is delivered twice (the
//     duplicate is a deep clone, so pool ownership stays single);
//   - reordering via jitter: each delivery is delayed by an extra
//     uniform [0, Jitter) on top of the propagation delay, so packets
//     launched close together can arrive out of order;
//   - scheduled down/up windows (Iface.SetDown / ScheduleOutage):
//     while down the interface stops transmitting (its queue builds)
//     and anything already in flight is cut at delivery time (reason
//     link-down).
//
// All fault losses are reason-attributed into Iface.FaultDrops and
// counted in IfaceStats.LostPkts — never into the scheduler's enqueue
// drop counters, so the PR-2 invariant (per-reason enqueue drops sum
// to IfaceStats.DroppedPkts) is untouched by fault injection.
package netsim

import (
	"math/rand"

	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// ImpairConfig parameterizes one link direction's impairments.
type ImpairConfig struct {
	// Seed keys the impairment's private PRNG. Derive it from the run
	// seed and a per-link salt so links fault independently but
	// reproducibly.
	Seed int64
	// LossProb is the independent per-packet wire-loss probability.
	LossProb float64
	// DupProb is the independent per-packet duplication probability.
	DupProb float64
	// Jitter adds uniform [0, Jitter) to each packet's propagation
	// delay; deliveries with overlapping windows reorder.
	Jitter tvatime.Duration
	// DropIf, when set, deterministically drops matching packets
	// (attributed as link-loss). Tests use it to kill a specific
	// packet kind — e.g. every renewal — instead of rolling dice.
	DropIf func(pkt *packet.Packet) bool
}

// Impairment is the attached state: config plus the per-link PRNG.
type Impairment struct {
	cfg ImpairConfig
	rng *rand.Rand

	// Duplicated counts packets delivered twice.
	Duplicated uint64
}

// SetImpairment attaches (or, with a zero cfg, effectively clears)
// impairments on this link direction. It returns the Impairment for
// inspection.
func (i *Iface) SetImpairment(cfg ImpairConfig) *Impairment {
	imp := &Impairment{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	i.impair = imp
	return imp
}

// lose reports whether this packet dies on the wire.
func (imp *Impairment) lose(pkt *packet.Packet) bool {
	if imp.cfg.DropIf != nil && imp.cfg.DropIf(pkt) {
		return true
	}
	return imp.cfg.LossProb > 0 && imp.rng.Float64() < imp.cfg.LossProb
}

// extraDelay returns this packet's jitter draw.
func (imp *Impairment) extraDelay() tvatime.Duration {
	if imp.cfg.Jitter <= 0 {
		return 0
	}
	return tvatime.Duration(imp.rng.Int63n(int64(imp.cfg.Jitter)))
}

// Down reports whether the interface is inside a down window.
func (i *Iface) Down() bool { return i.down }

// SetDown changes the interface's up/down state. Going down stops
// transmission (the output queue keeps building and drains on the
// next up); packets already in flight are cut at delivery time.
// Coming up restarts the transmit loop.
func (i *Iface) SetDown(down bool) {
	if i.down == down {
		return
	}
	i.down = down
	if !down && i.Sched.Len() > 0 {
		i.kick()
	}
}

// ScheduleOutage arms one down/up window on this link direction:
// down at start, back up at start+dur.
func (i *Iface) ScheduleOutage(start tvatime.Time, dur tvatime.Duration) {
	sim := i.Node.Sim
	sim.At(start, func() { i.SetDown(true) })
	sim.At(start.Add(dur), func() { i.SetDown(false) })
}

// fault attributes a wire/fault loss of pkt to reason, traces it, and
// returns the packet to the pool. This is the single accounting point
// for every non-enqueue discard on an interface.
func (i *Iface) fault(pkt *packet.Packet, reason telemetry.DropReason) {
	i.FaultDrops.Inc(reason)
	i.Stats.LostPkts++
	i.Stats.LostBytes += uint64(pkt.Size)
	if i.Tracer != nil {
		ev := i.traceEvent(pkt, telemetry.EventDrop)
		ev.Reason = reason
		i.Tracer.Record(ev)
	}
	if sim := i.Node.Sim; sim.Spans != nil && pkt.TraceID != 0 {
		sp := i.span(pkt, trace.EdgeDrop)
		sp.Reason = reason
		sim.Spans.Record(sp)
	}
	packet.Release(pkt)
}

// Flush drains this interface's output queue through the scheduler's
// pool-clean flush path, attributing every queued packet (including
// rate-limiter holdovers) to reason and releasing it. It returns the
// number of packets flushed. Interfaces whose scheduler cannot flush
// report 0 and keep their queue.
func (i *Iface) Flush(reason telemetry.DropReason) int {
	fl, ok := i.Sched.(sched.Flusher)
	if !ok {
		return 0
	}
	n := 0
	fl.Flush(func(pkt *packet.Packet) {
		n++
		i.fault(pkt, reason)
	})
	return n
}

// launch moves a packet that finished serialization onto the wire:
// down-windows and impairments apply here, then propagation delay
// (plus jitter) carries it to the peer. Delivery re-checks the down
// state so an outage cuts packets already in flight.
func (i *Iface) launch(pkt *packet.Packet) {
	if i.down {
		i.fault(pkt, telemetry.DropLinkDown)
		return
	}
	imp := i.impair
	if imp == nil {
		i.scheduleDeliver(pkt, i.Delay)
		return
	}
	if imp.lose(pkt) {
		i.fault(pkt, telemetry.DropLinkLoss)
		return
	}
	if imp.cfg.DupProb > 0 && imp.rng.Float64() < imp.cfg.DupProb {
		imp.Duplicated++
		i.scheduleDeliver(pkt.Clone(), i.Delay+imp.extraDelay())
	}
	i.scheduleDeliver(pkt, i.Delay+imp.extraDelay())
}

// scheduleDeliver arms the arrival event d from now.
func (i *Iface) scheduleDeliver(pkt *packet.Packet, d tvatime.Duration) {
	i.Node.Sim.After(d, func() {
		if i.down {
			i.fault(pkt, telemetry.DropLinkDown)
			return
		}
		i.deliver(pkt)
	})
}
