package netsim

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/tvatime"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(tvatime.FromSeconds(2), func() { order = append(order, 2) })
	s.At(tvatime.FromSeconds(1), func() { order = append(order, 1) })
	s.At(tvatime.FromSeconds(1), func() { order = append(order, 11) }) // same time: FIFO
	s.At(tvatime.FromSeconds(3), func() { order = append(order, 3) })
	s.Run(tvatime.FromSeconds(10))
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New(1)
	fired := false
	s.At(tvatime.FromSeconds(5), func() { fired = true })
	s.Run(tvatime.FromSeconds(1))
	if fired {
		t.Error("event beyond the horizon fired")
	}
	if s.Now() != tvatime.FromSeconds(1) {
		t.Errorf("Now = %v, want 1s", s.Now())
	}
	s.Run(tvatime.FromSeconds(10))
	if !fired {
		t.Error("pending event did not fire on a later Run")
	}
}

func TestAfterNesting(t *testing.T) {
	s := New(1)
	var at2 tvatime.Time
	s.After(tvatime.Second, func() {
		s.After(tvatime.Second, func() { at2 = s.Now() })
	})
	s.Run(tvatime.FromSeconds(5))
	if at2 != tvatime.FromSeconds(2) {
		t.Errorf("nested After fired at %v, want 2s", at2)
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(tvatime.Second, func() { n++ })
	s.Run(tvatime.FromSeconds(5) + 1)
	if n != 5 {
		t.Errorf("Every fired %d times in 5s, want 5", n)
	}
}

func TestEveryStop(t *testing.T) {
	s := New(1)
	n := 0
	var stop func()
	stop = s.Every(tvatime.Second, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	s.Run(tvatime.FromSeconds(10) + 1)
	if n != 3 {
		t.Errorf("stopped ticker fired %d times, want 3", n)
	}

	// Stopping before the first tick cancels the whole series.
	m := 0
	stop2 := s.Every(tvatime.Second, func() { m++ })
	stop2()
	s.Run(tvatime.FromSeconds(20) + 1)
	if m != 0 {
		t.Errorf("ticker stopped before first tick fired %d times, want 0", m)
	}
}

// collector is a Handler recording deliveries with times.
type collector struct {
	sim  *Sim
	pkts []*packet.Packet
	at   []tvatime.Time
}

func (c *collector) Receive(pkt *packet.Packet, in *Iface) {
	c.pkts = append(c.pkts, pkt)
	c.at = append(c.at, c.sim.Now())
}

func TestLinkTimingBandwidthAndDelay(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	sink := &collector{sim: s}
	b.Handler = sink
	// 1 Mb/s, 10 ms: a 1250-byte packet serializes in 10 ms and
	// arrives at 20 ms.
	ia, _ := Connect(a, b, 1_000_000, 10*tvatime.Millisecond, nil, nil)
	a.SetDefault(ia)
	a.Send(&packet.Packet{Src: 1, Dst: 2, Size: 1250})
	s.Run(tvatime.FromSeconds(1))
	if len(sink.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(sink.pkts))
	}
	want := 20 * tvatime.Millisecond
	got := sink.at[0].Sub(0)
	if got != want {
		t.Errorf("delivery at %v, want %v", got, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &collector{sim: s}
	b.Handler = sink
	ia, _ := Connect(a, b, 1_000_000, 0, nil, nil)
	a.SetDefault(ia)
	for i := 0; i < 3; i++ {
		a.Send(&packet.Packet{Dst: 2, Size: 1250}) // 10ms each
	}
	s.Run(tvatime.FromSeconds(1))
	if len(sink.at) != 3 {
		t.Fatalf("delivered %d, want 3", len(sink.at))
	}
	for i, want := range []tvatime.Duration{10, 20, 30} {
		if got := sink.at[i].Sub(0); got != want*tvatime.Millisecond {
			t.Errorf("pkt %d delivered at %v, want %vms", i, got, want)
		}
	}
}

func TestQueueDropWhenFull(t *testing.T) {
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &collector{sim: s}
	b.Handler = sink
	ia, _ := Connect(a, b, 1_000_000, 0, sched.NewDropTailPkts(2), nil)
	a.SetDefault(ia)
	dropped := 0
	ia.OnDrop = func(*packet.Packet) { dropped++ }
	// First packet goes into transmission immediately; next two queue;
	// the rest drop.
	for i := 0; i < 6; i++ {
		a.Send(&packet.Packet{Dst: 2, Size: 1250})
	}
	s.Run(tvatime.FromSeconds(1))
	if len(sink.pkts) != 3 {
		t.Errorf("delivered %d, want 3", len(sink.pkts))
	}
	if dropped != 3 || ia.Stats.DroppedPkts != 3 {
		t.Errorf("dropped %d (stats %d), want 3", dropped, ia.Stats.DroppedPkts)
	}
}

func TestRouting(t *testing.T) {
	s := New(1)
	a, r, b, c := s.NewNode("a"), s.NewNode("r"), s.NewNode("b"), s.NewNode("c")
	sb := &collector{sim: s}
	sc := &collector{sim: s}
	b.Handler = sb
	c.Handler = sc
	r.Handler = HandlerFunc(func(pkt *packet.Packet, in *Iface) { r.Send(pkt) })

	ia, _ := Connect(a, r, 1e6, 0, nil, nil)
	_, rb := Connect(b, r, 1e6, 0, nil, nil) // rb is r's iface toward b
	_, rc := Connect(c, r, 1e6, 0, nil, nil)
	a.SetDefault(ia)
	r.AddRoute(packet.Addr(2), rb)
	r.AddRoute(packet.Addr(3), rc)

	a.Send(&packet.Packet{Dst: 2, Size: 100})
	a.Send(&packet.Packet{Dst: 3, Size: 100})
	a.Send(&packet.Packet{Dst: 4, Size: 100}) // unroutable at r: dropped
	s.Run(tvatime.FromSeconds(1))
	if len(sb.pkts) != 1 || len(sc.pkts) != 1 {
		t.Errorf("routing misdelivered: b=%d c=%d", len(sb.pkts), len(sc.pkts))
	}
}

func TestBidirectionalLink(t *testing.T) {
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	var aGot, bGot int
	a.Handler = HandlerFunc(func(pkt *packet.Packet, in *Iface) { aGot++ })
	b.Handler = HandlerFunc(func(pkt *packet.Packet, in *Iface) {
		bGot++
		b.Send(&packet.Packet{Dst: 1, Size: 100})
	})
	ia, ib := Connect(a, b, 1e6, tvatime.Millisecond, nil, nil)
	a.SetDefault(ia)
	b.SetDefault(ib)
	a.Send(&packet.Packet{Dst: 2, Size: 100})
	s.Run(tvatime.FromSeconds(1))
	if bGot != 1 || aGot != 1 {
		t.Errorf("ping-pong failed: a=%d b=%d", aGot, bGot)
	}
}

func TestUtilization(t *testing.T) {
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	b.Handler = HandlerFunc(func(*packet.Packet, *Iface) {})
	ia, _ := Connect(a, b, 1_000_000, 0, nil, nil)
	a.SetDefault(ia)
	// 12500 bytes over 1s at 1 Mb/s = 10% utilization.
	for i := 0; i < 10; i++ {
		a.Send(&packet.Packet{Dst: 2, Size: 1250})
	}
	s.Run(tvatime.FromSeconds(1))
	u := ia.Utilization(tvatime.Second)
	if u < 0.09 || u > 0.11 {
		t.Errorf("utilization = %.3f, want 0.10", u)
	}
}

func TestRateLimitedSchedulerWakeup(t *testing.T) {
	// A scheduler that returns retry times must still drain fully (the
	// link must wake itself up).
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &collector{sim: s}
	b.Handler = sink
	tvaSched := sched.NewTVA(sched.TVAConfig{LinkBps: 1_000_000, RequestFraction: 0.01,
		RequestQueueBytes: 1 << 20})
	ia, _ := Connect(a, b, 1_000_000, 0, tvaSched, nil)
	a.SetDefault(ia)
	for i := 0; i < 100; i++ {
		h := &packet.CapHdr{Kind: packet.KindRequest}
		a.Send(&packet.Packet{Dst: 2, Size: 250, Class: packet.ClassRequest, Hdr: h})
	}
	s.Run(tvatime.FromSeconds(60))
	if len(sink.pkts) != 100 {
		t.Fatalf("rate-limited backlog did not drain: %d/100", len(sink.pkts))
	}
	// 25 KB at 1% of 1 Mb/s = 1250 B/s takes ≈16s after the initial
	// burst: deliveries must be spread out, not instantaneous.
	if last := sink.at[len(sink.at)-1]; last < tvatime.FromSeconds(10) {
		t.Errorf("backlog drained too fast for the rate limit: %v", last)
	}
}
