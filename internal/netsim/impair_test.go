package netsim

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// releaseSink counts deliveries and returns pooled packets, recording
// arrival times and the Src field as a sequence label.
type releaseSink struct {
	sim  *Sim
	srcs []packet.Addr
	at   []tvatime.Time
}

func (r *releaseSink) Receive(pkt *packet.Packet, in *Iface) {
	r.srcs = append(r.srcs, pkt.Src)
	r.at = append(r.at, r.sim.Now())
	packet.Release(pkt)
}

// lossyLink builds a 1 Mb/s a→b link with the given impairment and
// returns (sim, a, a's iface, sink).
func lossyLink(t *testing.T, seed int64, cfg ImpairConfig) (*Sim, *Node, *Iface, *releaseSink) {
	t.Helper()
	s := New(seed)
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &releaseSink{sim: s}
	b.Handler = sink
	ia, _ := Connect(a, b, 1_000_000, 10*tvatime.Millisecond, nil, nil)
	a.SetDefault(ia)
	ia.SetImpairment(cfg)
	return s, a, ia, sink
}

func sendPooled(s *Sim, a *Node, src packet.Addr, size int) {
	pkt := packet.AcquirePacket()
	pkt.Src, pkt.Dst, pkt.TTL = src, 2, 64
	pkt.Size = size
	pkt.SentAt = s.Now()
	a.Send(pkt)
}

func TestImpairLossAllAccounted(t *testing.T) {
	baseline := packet.Live()
	s, a, ia, sink := lossyLink(t, 1, ImpairConfig{Seed: 7, LossProb: 1})
	const n = 20
	for i := 0; i < n; i++ {
		sendPooled(s, a, packet.Addr(i+1), 125)
	}
	s.Run(tvatime.FromSeconds(5))
	if len(sink.srcs) != 0 {
		t.Errorf("delivered %d packets across a fully lossy wire", len(sink.srcs))
	}
	if got := ia.FaultDrops.Get(telemetry.DropLinkLoss); got != n {
		t.Errorf("link-loss drops = %d, want %d", got, n)
	}
	if ia.Stats.LostPkts != n || ia.Stats.DroppedPkts != 0 {
		t.Errorf("LostPkts=%d DroppedPkts=%d, want %d and 0 (wire loss is not an enqueue drop)",
			ia.Stats.LostPkts, ia.Stats.DroppedPkts, n)
	}
	if got := packet.Live(); got != baseline {
		t.Errorf("pool gauge %d after run, want baseline %d (lost packets must be released)", got, baseline)
	}
}

func TestImpairLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) ([]packet.Addr, []tvatime.Time, uint64) {
		s, a, ia, sink := lossyLink(t, 1, ImpairConfig{Seed: seed, LossProb: 0.3})
		for i := 0; i < 200; i++ {
			sendPooled(s, a, packet.Addr(i+1), 125)
		}
		s.Run(tvatime.FromSeconds(10))
		return sink.srcs, sink.at, ia.Stats.LostPkts
	}
	s1, t1, l1 := run(42)
	s2, t2, l2 := run(42)
	if l1 != l2 || len(s1) != len(s2) {
		t.Fatalf("same seed diverged: lost %d vs %d, delivered %d vs %d", l1, l2, len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] || t1[i] != t2[i] {
			t.Fatalf("same seed diverged at delivery %d: (%v,%v) vs (%v,%v)", i, s1[i], t1[i], s2[i], t2[i])
		}
	}
	if l1 == 0 || l1 == 200 {
		t.Errorf("lost %d of 200 at p=0.3; the PRNG is not being consulted", l1)
	}
	_, _, l3 := run(43)
	if l3 == l1 {
		t.Logf("note: seeds 42 and 43 lost the same count (%d); allowed but unusual", l1)
	}
}

func TestImpairDuplication(t *testing.T) {
	baseline := packet.Live()
	s, a, ia, sink := lossyLink(t, 1, ImpairConfig{Seed: 9, DupProb: 1})
	const n = 10
	for i := 0; i < n; i++ {
		sendPooled(s, a, packet.Addr(i+1), 125)
	}
	s.Run(tvatime.FromSeconds(5))
	if len(sink.srcs) != 2*n {
		t.Errorf("delivered %d, want %d (every packet duplicated)", len(sink.srcs), 2*n)
	}
	imp := ia.impair
	if imp.Duplicated != n {
		t.Errorf("Duplicated = %d, want %d", imp.Duplicated, n)
	}
	if got := packet.Live(); got != baseline {
		t.Errorf("pool gauge %d after run, want baseline %d (clones must not double-release)", got, baseline)
	}
}

func TestImpairJitterReordersDeterministically(t *testing.T) {
	run := func() []packet.Addr {
		s, a, _, sink := lossyLink(t, 1, ImpairConfig{Seed: 3, Jitter: 50 * tvatime.Millisecond})
		for i := 0; i < 10; i++ {
			sendPooled(s, a, packet.Addr(i+1), 125) // 1ms serialization each
		}
		s.Run(tvatime.FromSeconds(5))
		return sink.srcs
	}
	got := run()
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10 (jitter must not lose packets)", len(got))
	}
	inverted := false
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inverted = true
		}
	}
	if !inverted {
		t.Errorf("arrival order %v never inverted; 50ms jitter over 1ms spacing should reorder", got)
	}
	again := run()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("same seed, different arrival order: %v vs %v", got, again)
		}
	}
}

func TestImpairDropIf(t *testing.T) {
	s, a, ia, sink := lossyLink(t, 1, ImpairConfig{
		DropIf: func(pkt *packet.Packet) bool { return pkt.Src == 5 },
	})
	for i := 1; i <= 8; i++ {
		sendPooled(s, a, packet.Addr(i), 125)
	}
	s.Run(tvatime.FromSeconds(5))
	if len(sink.srcs) != 7 {
		t.Fatalf("delivered %d, want 7", len(sink.srcs))
	}
	for _, src := range sink.srcs {
		if src == 5 {
			t.Errorf("DropIf target was delivered")
		}
	}
	if got := ia.FaultDrops.Get(telemetry.DropLinkLoss); got != 1 {
		t.Errorf("link-loss drops = %d, want 1", got)
	}
}

func TestOutageWindow(t *testing.T) {
	baseline := packet.Live()
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &releaseSink{sim: s}
	b.Handler = sink
	// 1 Mb/s, 10 ms: a 1250-byte packet serializes in 10 ms.
	ia, _ := Connect(a, b, 1_000_000, 10*tvatime.Millisecond, nil, nil)
	a.SetDefault(ia)
	ia.ScheduleOutage(tvatime.Time(50*tvatime.Millisecond), 50*tvatime.Millisecond)

	// A: clear of the window entirely (delivered at 20 ms).
	s.At(0, func() { sendPooled(s, a, 1, 1250) })
	// C: in flight when the window opens (launched 45 ms, delivery due
	// 55 ms — cut).
	s.At(tvatime.Time(35*tvatime.Millisecond), func() { sendPooled(s, a, 3, 1250) })
	// D: sent during the window; held in queue, transmitted on the
	// up-edge at 100 ms, delivered 120 ms.
	s.At(tvatime.Time(60*tvatime.Millisecond), func() { sendPooled(s, a, 4, 1250) })
	s.Run(tvatime.FromSeconds(5))

	if len(sink.srcs) != 2 || sink.srcs[0] != 1 || sink.srcs[1] != 4 {
		t.Fatalf("delivered %v, want [1 4]", sink.srcs)
	}
	if got, want := sink.at[1], tvatime.Time(120*tvatime.Millisecond); got != want {
		t.Errorf("held packet delivered at %v, want %v (queued across the window)", got, want)
	}
	if got := ia.FaultDrops.Get(telemetry.DropLinkDown); got != 1 {
		t.Errorf("link-down drops = %d, want 1 (the in-flight cut)", got)
	}
	if got := packet.Live(); got != baseline {
		t.Errorf("pool gauge %d after run, want baseline %d", got, baseline)
	}
}

func TestIfaceFlushReturnsPoolToBaseline(t *testing.T) {
	baseline := packet.Live()
	s := New(1)
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &releaseSink{sim: s}
	b.Handler = sink
	// TVA scheduler so the flush exercises the rate-limiter holdover
	// path too; slow link so everything queues.
	tva := sched.NewTVA(sched.TVAConfig{LinkBps: 10_000, RequestFraction: 0.05})
	ia, _ := Connect(a, b, 10_000, tvatime.Millisecond, tva, nil)
	a.SetDefault(ia)
	for i := 0; i < 12; i++ {
		pkt := packet.AcquirePacket()
		pkt.Src, pkt.Dst, pkt.TTL = packet.Addr(i+1), 2, 64
		pkt.Size = 1000
		if i%3 == 0 {
			h := pkt.NewHdr()
			h.Kind = packet.KindRequest
			pkt.Class = packet.ClassRequest
		} else {
			pkt.Class = packet.ClassRegular
		}
		a.Send(pkt)
	}
	// Run briefly so one packet is mid-serialization and the rest are
	// queued, then crash the interface.
	s.Run(tvatime.Time(5 * tvatime.Millisecond))
	queued := ia.Sched.Len()
	if queued == 0 {
		t.Fatal("test setup: nothing queued at flush time")
	}
	n := ia.Flush(telemetry.DropRouterRestart)
	if n != queued {
		t.Errorf("Flush released %d, want the %d queued", n, queued)
	}
	if ia.Sched.Len() != 0 {
		t.Errorf("scheduler still holds %d packets after flush", ia.Sched.Len())
	}
	if got := ia.FaultDrops.Get(telemetry.DropRouterRestart); got != uint64(n) {
		t.Errorf("router-restart drops = %d, want %d", got, n)
	}
	// Let the in-flight packet land, then the gauge must be back.
	s.Run(tvatime.FromSeconds(5))
	if got := packet.Live(); got != baseline {
		t.Errorf("pool gauge %d after flush+drain, want baseline %d", got, baseline)
	}
}
