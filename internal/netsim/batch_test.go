package netsim

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// runBacklog drives n back-to-back packets through a 1 Mb/s link with
// the given TxBatch and returns the sim and delivery times. The
// propagation delay exceeds the whole burst's serialization time, so
// no deliver event falls inside the backlog window and inlining can
// actually collapse completions.
func runBacklog(t *testing.T, txBatch, n int) (*Sim, []tvatime.Time) {
	t.Helper()
	s := New(7)
	s.TxBatch = txBatch
	a, b := s.NewNode("a"), s.NewNode("b")
	sink := &collector{sim: s}
	b.Handler = sink
	ia, _ := Connect(a, b, 1_000_000, 500*tvatime.Millisecond, nil, nil)
	a.SetDefault(ia)
	for i := 0; i < n; i++ {
		a.Send(&packet.Packet{Dst: 2, Size: 1250}) // 10 ms each on the wire
	}
	s.Run(tvatime.FromSeconds(2))
	if len(sink.at) != n {
		t.Fatalf("TxBatch=%d delivered %d, want %d", txBatch, len(sink.at), n)
	}
	return s, sink.at
}

// TestTxBatchTimingIdentical pins the batching contract at the
// simulator level: a backlogged link produces the same delivery
// timestamps at every TxBatch setting, while the burst counters show
// the event collapse actually happened.
func TestTxBatchTimingIdentical(t *testing.T) {
	const n = 24
	base, baseAt := runBacklog(t, 0, n)
	if base.TxBurstFill() > 1 {
		t.Fatalf("unbatched fill %.2f, want <= 1", base.TxBurstFill())
	}
	for _, txb := range []int{1, 4, 8, 64} {
		s, at := runBacklog(t, txb, n)
		for i := range baseAt {
			if at[i] != baseAt[i] {
				t.Fatalf("TxBatch=%d pkt %d delivered at %v, unbatched %v", txb, i, at[i], baseAt[i])
			}
		}
		if txb > 1 && s.TxBurstFill() <= 1 {
			t.Errorf("TxBatch=%d fill %.2f on a backlogged link, want > 1", txb, s.TxBurstFill())
		}
	}
}

// TestTxBatchRespectsHorizon checks a burst never runs past the Run
// bound: packets whose serialization completes after `until` stay
// pending, exactly as the unbatched loop leaves them.
func TestTxBatchRespectsHorizon(t *testing.T) {
	mk := func(txBatch int) (*Sim, *Iface, *collector) {
		s := New(7)
		s.TxBatch = txBatch
		a, b := s.NewNode("a"), s.NewNode("b")
		sink := &collector{sim: s}
		b.Handler = sink
		ia, _ := Connect(a, b, 1_000_000, 200*tvatime.Millisecond, nil, nil)
		a.SetDefault(ia)
		for i := 0; i < 10; i++ {
			a.Send(&packet.Packet{Dst: 2, Size: 1250}) // 10 ms each
		}
		return s, ia, sink
	}
	base, baseIf, baseSink := mk(0)
	batched, batchedIf, batchedSink := mk(32)
	// Stop mid-backlog: only the first 3 transmissions complete by 35 ms.
	until := 35 * tvatime.Millisecond
	base.Run(tvatime.Time(until))
	batched.Run(tvatime.Time(until))
	if batchedIf.Stats.SentPkts != baseIf.Stats.SentPkts {
		t.Fatalf("batched sent %d by %v, unbatched %d", batchedIf.Stats.SentPkts, until, baseIf.Stats.SentPkts)
	}
	if baseIf.Stats.SentPkts != 3 {
		t.Fatalf("sent %d by %v, want 3", baseIf.Stats.SentPkts, until)
	}
	// Resume both to the end; totals and times must still agree.
	base.Run(tvatime.FromSeconds(1))
	batched.Run(tvatime.FromSeconds(1))
	if len(batchedSink.at) != 10 || len(baseSink.at) != 10 {
		t.Fatalf("after resume: batched %d, unbatched %d, want 10", len(batchedSink.at), len(baseSink.at))
	}
	for i := range baseSink.at {
		if batchedSink.at[i] != baseSink.at[i] {
			t.Fatalf("pkt %d delivered at %v batched, %v unbatched", i, batchedSink.at[i], baseSink.at[i])
		}
	}
}
