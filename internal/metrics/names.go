// Series-name constants: the single source of truth for every metric
// name either data plane exposes. The overlay router
// (overlay.Router.Metrics), the simulator harness (exp.startMetrics),
// the tvatop console, and scripts/metrics_smoke.sh all refer to these
// constants (the script indirectly, via `tvatop -require-set`), so a
// renamed or dropped series is a compile error or a lint finding —
// never silent sim-vs-real drift. The metricname analyzer
// (internal/lint) enforces the contract: registrations in the plane
// packages must use these constants, and the plane lists below must
// match what each plane actually registers.
package metrics

// Metric series names shared by, or specific to, the two data planes.
const (
	// Overlay-plane forwarding totals (tvarouter socket path).
	NameRouterReceived   = "tva_router_received_total"
	NameRouterForwarded  = "tva_router_forwarded_total"
	NameRouterUnroutable = "tva_router_unroutable_total"
	NameRouterMalformed  = "tva_router_malformed_total"

	// Reason-attributed scheduler drops and demotions (both planes).
	NameSchedDrops = "tva_sched_drops_total"
	NameDemotions  = "tva_demotions_total"

	// Router soft state and queue instrumentation (both planes).
	NameFlowCacheEntries = "tva_flowcache_entries"
	NameQueuePkts        = "tva_queue_pkts"
	NameRegularQueues    = "tva_regular_queues"
	NameTokenBucket      = "tva_token_bucket_bytes"
	NameQueueWait        = "tva_queue_wait_ns"

	// Hop-wait EWMA and burst fill (overlay; tx fill also in sim).
	NameQueueWaitEWMA = "tva_queue_wait_ewma_us"
	NameRxBurstFill   = "tva_rx_burst_fill"
	NameTxBurstFill   = "tva_tx_burst_fill"

	// Per-neighbour port counters (overlay only).
	NamePortSent    = "tva_port_sent_pkts_total"
	NamePortDropped = "tva_port_dropped_pkts_total"

	// Attack-onset health engine (both planes).
	NameHealthState       = "tva_health_state"
	NameHealthTransitions = "tva_health_transitions_total"

	// Simulator-plane run outcomes.
	NameGoodputBytes    = "tva_goodput_bytes_total"
	NameLinkFaultDrops  = "tva_link_fault_drops_total"
	NameLegitCompletion = "tva_legit_completion_fraction"

	// Table 1 bench harness series (overlay.BenchMetrics).
	NameBenchForwarded = "tva_bench_forwarded_total"
	NameBenchDemoted   = "tva_bench_demoted_total"
	NameBenchWireBytes = "tva_bench_wire_bytes"

	// Per-sender flow accounting (internal/flowstats, both planes):
	// bounded-memory top-K aggregates plus the streaming fairness
	// indices over the legit-sender population. Per-sender detail is
	// deliberately not a labelled series (the registry seals its set
	// at the first tick; an open-ended sender population cannot be) —
	// tvarouter serves it as JSON on /flows instead.
	NameFlowTrackedSenders = "tva_flow_tracked_senders"
	NameFlowBytes          = "tva_flow_bytes_total"
	NameFlowTopShare       = "tva_flow_top_share"
	NameFlowFairnessJain   = "tva_flow_fairness_jain"
	NameFlowMaxMinRatio    = "tva_flow_goodput_maxmin_ratio"
)

// SharedSeries is the sim-vs-real contract: every name here must be
// registered by BOTH data planes (overlay.Router.Metrics and
// exp.startMetrics), so tvatop and offline tooling read either plane
// identically. The metricname analyzer fails the build when a name
// listed here is missing from either plane.
var SharedSeries = []string{
	NameQueuePkts,
	NameRegularQueues,
	NameTokenBucket,
	NameFlowCacheEntries,
	NameSchedDrops,
	NameDemotions,
	NameTxBurstFill,
	NameQueueWait,
	NameHealthState,
	NameHealthTransitions,
	NameFlowTrackedSenders,
	NameFlowBytes,
	NameFlowTopShare,
	NameFlowFairnessJain,
	NameFlowMaxMinRatio,
}

// OverlaySeries is the full series set a tvarouter /metrics scrape
// must expose (shared names included). `tvatop -require-set overlay`
// and scripts/metrics_smoke.sh require exactly this list.
var OverlaySeries = []string{
	NameRouterReceived,
	NameRouterForwarded,
	NameRouterUnroutable,
	NameRouterMalformed,
	NameSchedDrops,
	NameDemotions,
	NameFlowCacheEntries,
	NameQueueWaitEWMA,
	NameQueueWait,
	NameRxBurstFill,
	NameTxBurstFill,
	NameQueuePkts,
	NameRegularQueues,
	NameTokenBucket,
	NamePortSent,
	NamePortDropped,
	NameHealthState,
	NameHealthTransitions,
	NameFlowTrackedSenders,
	NameFlowBytes,
	NameFlowTopShare,
	NameFlowFairnessJain,
	NameFlowMaxMinRatio,
}

// SimSeries is the full series set an instrumented simulator run
// (tvasim -metrics/-prom) must expose.
var SimSeries = []string{
	NameQueuePkts,
	NameRegularQueues,
	NameTokenBucket,
	NameFlowCacheEntries,
	NameGoodputBytes,
	NameSchedDrops,
	NameDemotions,
	NameLinkFaultDrops,
	NameTxBurstFill,
	NameQueueWait,
	NameLegitCompletion,
	NameHealthState,
	NameHealthTransitions,
	NameFlowTrackedSenders,
	NameFlowBytes,
	NameFlowTopShare,
	NameFlowFairnessJain,
	NameFlowMaxMinRatio,
}

// BenchSeries is the registry set overlay.BenchMetrics attaches to the
// Table 1 bench loops; it is not part of either plane's scrape
// contract but lives here so every series name has one home.
var BenchSeries = []string{
	NameBenchForwarded,
	NameBenchDemoted,
	NameBenchWireBytes,
	NameFlowCacheEntries,
}

// RequiredFor returns the series names `tvatop -require-set <plane>`
// demands of a scrape: the plane's full list, plus — for the overlay —
// the derived :rate column of the received counter, which proves the
// registry has ticked at least twice.
func RequiredFor(plane string) []string {
	switch plane {
	case "shared":
		return append([]string(nil), SharedSeries...)
	case "overlay":
		out := append([]string(nil), OverlaySeries...)
		return append(out, NameRouterReceived+":rate")
	case "sim":
		return append([]string(nil), SimSeries...)
	}
	return nil
}
