package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"tva/internal/tvatime"
)

// Kind says how a series' samples are interpreted: a Gauge is an
// instantaneous level, a KindCounter is a cumulative total from which
// the registry derives per-second rate and EWMA at tick time.
type Kind uint8

const (
	KindGauge Kind = iota
	KindCounter
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// L builds a label set from alternating key, value strings. It panics
// on an odd count — label sets are always literal at registration
// time, so this is a programming error, not input.
func L(pairs ...string) []Label {
	if len(pairs)%2 != 0 {
		panic("metrics: L wants key, value pairs")
	}
	ls := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{Key: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// renderLabels produces the canonical {k="v",...} form, with values
// escaped per the Prometheus text exposition rules. Empty label sets
// render as "".
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one registered time series: a metric name, a rendered
// label set, and a closure that reads the live value from whatever
// owns it (a telemetry counter, a scheduler gauge, an atomic
// instrument).
type series struct {
	name   string
	labels []Label
	id     string // name + rendered labels; the column identity
	help   string
	kind   Kind
	read   func() float64
}

// SeriesView is a snapshot of one series' identity and live value,
// handed to Each callbacks (used by tvarouter to keep the legacy
// expvar names as aliases of registry-owned values).
type SeriesView struct {
	Name   string
	Labels []Label
	ID     string
	Kind   Kind
	Value  float64
}

// Registry is a windowed time-series store. Series are registered
// up front (each with a read closure over its live source), then Tick
// samples every series into preallocated row-major rings: raw value,
// derived per-second rate (counters), and an exponentially weighted
// moving average. The first Tick seals the series set; registration
// after that returns an error, and ticking is zero-allocation from
// then on.
//
// The registry never reads a clock itself — the caller passes now, so
// the simulator drives it with virtual time and the overlay with wall
// time, producing comparable series from both data planes.
type Registry struct {
	mu     sync.Mutex
	series []series
	cap    int
	sealed bool

	times  []tvatime.Time // ring of tick times
	values []float64      // row-major: values[row*len(series)+col]
	rates  []float64      // same layout; counters only, gauges stay 0
	ewma   []float64      // latest EWMA per series
	prev   []float64      // previous raw value per series
	prevT  tvatime.Time
	next   int // ring write cursor
	total  int // ticks ever taken
}

// ewmaAlpha is the smoothing gain for the per-series EWMA: each tick
// moves the average a quarter of the way to the new sample, the same
// order of responsiveness as the overlay's queue-wait estimate.
const ewmaAlpha = 0.25

// New returns a registry retaining the most recent capacity ticks.
func New(capacity int) *Registry {
	if capacity <= 0 {
		capacity = 1
	}
	return &Registry{cap: capacity}
}

// Gauge registers an instantaneous-level series read from fn.
func (r *Registry) Gauge(name string, labels []Label, help string, fn func() float64) error {
	return r.register(name, labels, help, KindGauge, fn)
}

// Counter registers a cumulative-total series read from fn. The
// registry derives per-second rate and EWMA-of-rate at tick time.
func (r *Registry) Counter(name string, labels []Label, help string, fn func() float64) error {
	return r.register(name, labels, help, KindCounter, fn)
}

// CounterVar registers a Counter instrument as a series.
func (r *Registry) CounterVar(name string, labels []Label, help string, c *Counter) error {
	return r.Counter(name, labels, help, func() float64 { return float64(c.Value()) })
}

// GaugeVar registers a Gauge instrument as a series.
func (r *Registry) GaugeVar(name string, labels []Label, help string, g *Gauge) error {
	return r.Gauge(name, labels, help, g.Value)
}

// SketchQuantiles registers one gauge series per requested quantile,
// labelled q="<quantile>", reading live from the sketch.
func (r *Registry) SketchQuantiles(name string, labels []Label, help string, s *Sketch, qs ...float64) error {
	for _, q := range qs {
		q := q
		ql := append(append([]Label(nil), labels...),
			Label{Key: "q", Value: strconv.FormatFloat(q, 'g', -1, 64)})
		if err := r.Gauge(name, ql, help, func() float64 { return float64(s.Quantile(q)) }); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) register(name string, labels []Label, help string, kind Kind, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("metrics: register %s: nil read func", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealed {
		return fmt.Errorf("metrics: register %s after first Tick", name)
	}
	id := name + renderLabels(labels)
	for _, s := range r.series {
		if s.id == id {
			return fmt.Errorf("metrics: duplicate series %s", id)
		}
		if s.name == name && s.kind != kind {
			return fmt.Errorf("metrics: series %s registered as both %s and %s", name, s.kind, kind)
		}
	}
	r.series = append(r.series, series{
		name: name, labels: labels, id: id, help: help, kind: kind, read: fn,
	})
	return nil
}

// seal allocates the rings. Called with mu held, on the first Tick.
func (r *Registry) seal() {
	n := len(r.series)
	r.times = make([]tvatime.Time, r.cap)
	r.values = make([]float64, r.cap*n)
	r.rates = make([]float64, r.cap*n)
	r.ewma = make([]float64, n)
	r.prev = make([]float64, n)
	r.sealed = true
}

// Tick samples every series at time now. The first call seals the
// series set; subsequent calls are allocation-free. Counters get a
// per-second rate (delta over the tick interval) and an EWMA of that
// rate; gauges get an EWMA of the raw value.
func (r *Registry) Tick(now tvatime.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sealed {
		r.seal()
	}
	n := len(r.series)
	row := r.next * n
	r.times[r.next] = now
	dt := now.Sub(r.prevT).Seconds()
	first := r.total == 0
	for i := range r.series {
		s := &r.series[i]
		v := s.read()
		r.values[row+i] = v
		x := v
		if s.kind == KindCounter {
			var rate float64
			if !first && dt > 0 {
				rate = (v - r.prev[i]) / dt
			}
			r.rates[row+i] = rate
			x = rate
		}
		if first {
			r.ewma[i] = x
		} else {
			r.ewma[i] += ewmaAlpha * (x - r.ewma[i])
		}
		r.prev[i] = v
	}
	r.prevT = now
	r.next = (r.next + 1) % r.cap
	r.total++
}

// Ticks returns how many times Tick has run.
func (r *Registry) Ticks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns the number of retained rows (<= capacity).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.len()
}

func (r *Registry) len() int {
	if r.total < r.cap {
		return r.total
	}
	return r.cap
}

// rowIndex maps retained-row i (0 = oldest) to a ring slot. Called
// with mu held.
func (r *Registry) rowIndex(i int) int {
	if r.total < r.cap {
		return i
	}
	return (r.next + i) % r.cap
}

// Row copies retained row i (0 = oldest) into dst, returning the tick
// time. dst must have len >= NumSeries. Rates for counter columns are
// available via RowRates.
func (r *Registry) Row(i int, dst []float64) tvatime.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := r.rowIndex(i)
	copy(dst, r.values[slot*len(r.series):(slot+1)*len(r.series)])
	return r.times[slot]
}

// RowRates copies retained row i's derived rates into dst.
func (r *Registry) RowRates(i int, dst []float64) tvatime.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := r.rowIndex(i)
	copy(dst, r.rates[slot*len(r.series):(slot+1)*len(r.series)])
	return r.times[slot]
}

// NumSeries returns the number of registered series.
func (r *Registry) NumSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}

// IDs returns the series identities in registration order (the column
// order of Row, WriteCSV, and WriteJSON).
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, len(r.series))
	for i, s := range r.series {
		ids[i] = s.id
	}
	return ids
}

// EWMA returns the latest exponentially weighted moving average for
// series column i (rate for counters, value for gauges).
func (r *Registry) EWMA(i int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ewma[i]
}

// Each calls fn for every series with its live (not last-ticked)
// value, in registration order.
func (r *Registry) Each(fn func(SeriesView)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.series {
		s := &r.series[i]
		fn(SeriesView{Name: s.name, Labels: s.labels, ID: s.id, Kind: s.kind, Value: s.read()})
	}
}

// formatValue renders a sample compactly and deterministically:
// integral values print without a decimal point, everything else in
// Go 'g' formatting — the same discipline as telemetry.Sampler, so
// same-seed runs produce byte-identical files.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvQuote wraps a field in quotes when it contains CSV-significant
// bytes (series IDs carry {reason="..."} label syntax).
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// columnIDs returns the export column schema shared by every tabular
// writer: t_sec, one column per series ID (registration order), then
// one <id>:rate column per counter series. WriteCSV and WriteJSON
// both render exactly this list (they used to duplicate it, which is
// how format drift starts), and the row loops below emit values in
// the same order. Callers hold r.mu.
func (r *Registry) columnIDs() []string {
	cols := make([]string, 0, 1+2*len(r.series))
	cols = append(cols, "t_sec")
	for _, s := range r.series {
		cols = append(cols, s.id)
	}
	for _, s := range r.series {
		if s.kind == KindCounter {
			cols = append(cols, s.id+":rate")
		}
	}
	return cols
}

// WriteCSV writes the retained window as CSV: a t_sec column, one
// column per series (cumulative value for counters, level for
// gauges), and one trailing rate column per counter series, named
// <id>:rate. Output is byte-stable for identical tick histories.
func (r *Registry) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := &errWriter{w: w}
	for i, id := range r.columnIDs() {
		if i > 0 {
			bw.WriteString(",")
		}
		bw.WriteString(csvQuote(id))
	}
	bw.WriteString("\n")
	n := len(r.series)
	for i := 0; i < r.len(); i++ {
		slot := r.rowIndex(i)
		bw.WriteString(strconv.FormatFloat(r.times[slot].Sub(0).Seconds(), 'f', 6, 64))
		for j := 0; j < n; j++ {
			bw.WriteString(",")
			bw.WriteString(formatValue(r.values[slot*n+j]))
		}
		for j := 0; j < n; j++ {
			if r.series[j].kind == KindCounter {
				bw.WriteString(",")
				bw.WriteString(formatValue(r.rates[slot*n+j]))
			}
		}
		bw.WriteString("\n")
	}
	return bw.err
}

// WriteJSON writes the retained window as a single JSON object with
// "columns" (t_sec plus series IDs plus counter rate columns) and
// "rows" of numbers, mirroring telemetry.Sampler's layout.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := &errWriter{w: w}
	bw.WriteString(`{"columns":[`)
	for i, id := range r.columnIDs() {
		if i > 0 {
			bw.WriteString(",")
		}
		bw.WriteString(strconv.Quote(id))
	}
	bw.WriteString(`],"rows":[`)
	n := len(r.series)
	for i := 0; i < r.len(); i++ {
		if i > 0 {
			bw.WriteString(",")
		}
		slot := r.rowIndex(i)
		bw.WriteString("[")
		bw.WriteString(strconv.FormatFloat(r.times[slot].Sub(0).Seconds(), 'f', 6, 64))
		for j := 0; j < n; j++ {
			bw.WriteString(",")
			bw.WriteString(formatValue(r.values[slot*n+j]))
		}
		for j := 0; j < n; j++ {
			if r.series[j].kind == KindCounter {
				bw.WriteString(",")
				bw.WriteString(formatValue(r.rates[slot*n+j]))
			}
		}
		bw.WriteString("]")
	}
	bw.WriteString("]}\n")
	return bw.err
}

// errWriter folds write errors into one sticky error so the encoders
// above stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
