package metrics

import (
	"strings"
	"testing"

	"tva/internal/trace"
	"tva/internal/tvatime"
)

// TestHealthStateNamesMatchTrace pins the duplicate state-name table
// in the trace package (kept there so trace need not import metrics)
// to this package's State strings.
func TestHealthStateNamesMatchTrace(t *testing.T) {
	for s := 0; s < NumStates; s++ {
		if got, want := trace.HealthStateName(uint8(s)), State(s).String(); got != want {
			t.Errorf("trace.HealthStateName(%d) = %q, metrics says %q", s, got, want)
		}
	}
}

// tickSeq feeds the detector a cumulative-drop series sampled at 1s
// intervals and returns the transition log.
func tickSeq(d *Detector, rates []float64) {
	var cum float64
	for i, r := range rates {
		cum += r
		d.ObserveTick(tvatime.FromSeconds(float64(i+1)), cum, 0)
	}
}

func TestDetectorAttackLifecycle(t *testing.T) {
	d := NewDetector(DetectorConfig{
		K: 4, MinDropRate: 50, DegradedTicks: 1, OnsetTicks: 3,
		RecoverTicks: 2, ClearTicks: 2,
	})
	var fired []Transition
	d.OnTransition = func(tr Transition) { fired = append(fired, tr) }

	// Quiet baseline, then a sustained flood, then quiet again.
	rates := []float64{0, 2, 1, 2, 1, // baseline
		5000, 5000, 5000, 5000, 5000, // attack
		1, 0, 1, 0, 1} // recovery
	tickSeq(d, rates)

	var got []string
	for _, tr := range d.Transitions() {
		got = append(got, tr.From.String()+">"+tr.To.String())
	}
	want := []string{
		"healthy>degraded",
		"degraded>under-attack",
		"under-attack>recovered",
		"recovered>healthy",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	if len(fired) != len(d.Transitions()) {
		t.Fatalf("OnTransition fired %d times, log has %d", len(fired), len(d.Transitions()))
	}
	// First hot tick is sample index 5 (0-based): degraded fires
	// there; under-attack after OnsetTicks more hot ticks.
	if d.Transitions()[0].Sample != 5 {
		t.Fatalf("degraded at sample %d, want 5", d.Transitions()[0].Sample)
	}
	if d.Transitions()[1].Sample != 8 {
		t.Fatalf("under-attack at sample %d, want 8", d.Transitions()[1].Sample)
	}
	if d.State() != Healthy {
		t.Fatalf("final state %v, want healthy", d.State())
	}
}

func TestDetectorDeterministicReplay(t *testing.T) {
	run := func() []string {
		d := NewDetector(DetectorConfig{})
		rates := []float64{0, 1, 0, 2, 900, 900, 900, 900, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		tickSeq(d, rates)
		var out []string
		for _, tr := range d.Transitions() {
			out = append(out, tr.String())
		}
		return out
	}
	a, b := run(), run()
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("same input produced different transitions:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("flood produced no transitions")
	}
	// The rendered line is what tvasim prints and metrics-smoke diffs.
	if !strings.Contains(a[0], "sample=") || !strings.Contains(a[0], "drop-rate=") {
		t.Fatalf("transition line missing fields: %s", a[0])
	}
}

func TestDetectorBaselineFrozenDuringAttack(t *testing.T) {
	d := NewDetector(DetectorConfig{K: 4, MinDropRate: 50, DegradedTicks: 1, OnsetTicks: 2,
		RecoverTicks: 3, ClearTicks: 3})
	// Baseline ~10 pps, then a long attack at 10k pps: if the attack
	// leaked into the baseline the detector would adapt and declare
	// recovery while the flood still runs.
	rates := make([]float64, 0, 64)
	for i := 0; i < 8; i++ {
		rates = append(rates, 10)
	}
	for i := 0; i < 40; i++ {
		rates = append(rates, 10000)
	}
	tickSeq(d, rates)
	if d.State() != UnderAttack {
		t.Fatalf("state after sustained flood = %v, want under-attack", d.State())
	}
}

func TestDetectorPressureSignal(t *testing.T) {
	d := NewDetector(DetectorConfig{MinPressure: 32, DegradedTicks: 1, OnsetTicks: 2})
	// No drops at all, but the request channel backs up: the pressure
	// signal alone must trip the detector (request floods starve the
	// channel before they overflow queues).
	d.ObserveTick(tvatime.FromSeconds(1), 0, 0)
	d.ObserveTick(tvatime.FromSeconds(2), 0, 100) // hot -> degraded
	d.ObserveTick(tvatime.FromSeconds(3), 0, 100) // hot ticks count from entry
	d.ObserveTick(tvatime.FromSeconds(4), 0, 100)
	if d.State() != UnderAttack {
		t.Fatalf("state = %v, want under-attack from pressure", d.State())
	}
}

func TestDetectorTransitionLogBounded(t *testing.T) {
	d := NewDetector(DetectorConfig{MinPressure: 1, DegradedTicks: 1, OnsetTicks: 100,
		RecoverTicks: 1, ClearTicks: 100, MaxTransitions: 4})
	// Alternate hot/cool ticks to thrash degraded<->recovered.
	for i := 0; i < 40; i++ {
		p := float64(i % 2)
		d.ObserveTick(tvatime.FromSeconds(float64(i)), 0, p)
	}
	if len(d.Transitions()) != 4 {
		t.Fatalf("log len = %d, want cap 4", len(d.Transitions()))
	}
	if d.Overflow() == 0 {
		t.Fatal("expected overflow count after thrash")
	}
}

func TestDetectorTickNoAllocs(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var now tvatime.Time
	var cum float64
	if n := testing.AllocsPerRun(200, func() {
		now += tvatime.Time(tvatime.Second)
		cum += 3
		d.ObserveTick(now, cum, 1)
	}); n != 0 {
		t.Fatalf("ObserveTick allocates %v per run, want 0", n)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	bad := []string{
		"metric{ 1\n",                        // unterminated label block
		"metric{a=b} 1\n",                    // unquoted label value
		"metric 1 2 3\n",                     // trailing junk
		"metric notanumber\n",                // bad value
		"# TYPE metric wat\nmetric 1\n",      // unknown type
		"# TYPE m counter\n# TYPE m gauge\n", // duplicate TYPE
		"m 1\nm 1\n",                         // duplicate series
		"{a=\"b\"} 1\n",                      // missing name
		"m{__name__=\"x\"} 1\n",              // reserved label
	}
	for _, in := range bad {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	ok := "# some comment\nm{a=\"b\",c=\"d\"} 1.5 1700000000\nm2 +Inf\n"
	sc, err := ParseProm(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
	if len(sc.Samples) != 2 || sc.Samples[0].Label("c") != "d" {
		t.Fatalf("samples = %+v", sc.Samples)
	}
}
