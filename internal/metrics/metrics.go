// Package metrics is the streaming observability layer shared by both
// data planes: a preallocated, windowed time-series store (Registry)
// fed from the repo's existing telemetry counters and gauges, plus the
// lock-free instruments (Counter, Gauge, Sketch) that may sit directly
// on the forwarding hot path. The same series names exist whether the
// source is the discrete-event simulator (driven by netsim virtual
// time) or the real-UDP overlay (driven by wall time), which is what
// makes sim-vs-real comparison and a single tvatop console possible.
//
// Everything here is stdlib-only. Recording into an instrument is
// zero-allocation and safe for concurrent writers; sampling the
// registry (Tick) is zero-allocation after the first tick seals the
// series set.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing event count — packets
// forwarded, bytes delivered, drops by reason. Writers call Record or
// Add from any goroutine; the registry samples it as a cumulative
// total and derives per-second rate and EWMA at tick time.
type Counter struct {
	v atomic.Uint64
}

// Record adds n events to the counter. It is a single atomic add —
// safe on the forwarding hot path.
//
//tva:hotpath
func (c *Counter) Record(n uint64) {
	c.v.Add(n)
}

// Add is Record under the name the rest of the repo's counter types
// use.
//
//tva:hotpath
func (c *Counter) Add(n uint64) {
	c.v.Add(n)
}

// Value returns the current cumulative count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level — queue depth, token-bucket fill,
// burst occupancy. Set stores the latest value; the registry samples
// whatever is current at tick time.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's current value.
//
//tva:hotpath
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Value returns the most recently Set value (0 for the zero value).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// sketchBuckets is one bucket per bit position of an int64 sample,
// plus a zero bucket — the same power-of-two layout as
// telemetry.Histogram, but with atomic cells so concurrent overlay
// goroutines can observe without a lock.
const sketchBuckets = 64

// Sketch is a fixed-bucket quantile sketch over non-negative int64
// samples (typically nanosecond durations or byte sizes). Observe is
// one bits.Len64 plus three atomic adds — no allocation, no floating
// point — so it can sit on the dequeue path of every interface in
// either data plane. Quantiles are exact to within a factor of two,
// which is all the time-series view needs. The zero value is ready to
// use.
type Sketch struct {
	counts [sketchBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// Observe records one sample.
//
//tva:hotpath
func (s *Sketch) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v)) % sketchBuckets
	}
	s.counts[i].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// SketchBuckets is the number of power-of-two buckets a Sketch holds:
// bucket 0 counts zero samples, bucket i counts samples with bit
// length i. Exported so cross-plane comparison code (internal/xcheck)
// can size its CDF scratch without reaching into the sketch.
const SketchBuckets = sketchBuckets

// Counts returns a snapshot of the per-bucket observation counts.
// Reads are tearing-tolerant in the same sense as Quantile: a
// concurrent Observe may land between bucket loads, never corrupt
// them. This is the raw material for distribution comparisons
// (max-CDF-gap between the two data planes' wait sketches).
func (s *Sketch) Counts() [SketchBuckets]uint64 {
	var out [SketchBuckets]uint64
	for i := range s.counts {
		out[i] = s.counts[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count.Load() }

// Sum returns the total of all observed samples.
func (s *Sketch) Sum() int64 { return s.sum.Load() }

// Mean returns the average observed sample (0 if empty).
func (s *Sketch) Mean() float64 {
	n := s.count.Load()
	if n == 0 {
		return 0
	}
	return float64(s.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1):
// the upper edge of the bucket containing that rank. Reads are
// tearing-tolerant — a concurrent Observe may shift the answer by one
// bucket, never corrupt it.
func (s *Sketch) Quantile(q float64) int64 {
	total := s.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < sketchBuckets; i++ {
		seen += s.counts[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i == sketchBuckets-1 {
				break
			}
			return int64(1) << i
		}
	}
	return math.MaxInt64
}
