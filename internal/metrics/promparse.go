package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its raw
// rendered label block (`{k="v",...}` or ""), decoded label pairs,
// and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ID returns the canonical series identity (name + rendered labels),
// matching Registry.IDs.
func (s Sample) ID() string { return s.Name + renderLabels(s.Labels) }

// Label returns the value of the named label ("" if absent).
func (s Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Scrape is one parsed /metrics payload: samples in document order
// plus the declared TYPE per metric name.
type Scrape struct {
	Samples []Sample
	Types   map[string]string // metric name -> "counter" | "gauge" | ...
}

// Get returns the first sample with the given metric name.
func (sc *Scrape) Get(name string) (Sample, bool) {
	for _, s := range sc.Samples {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}

// Select returns every sample with the given metric name, in document
// order.
func (sc *Scrape) Select(name string) []Sample {
	var out []Sample
	for _, s := range sc.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Has reports whether any sample carries the metric name.
func (sc *Scrape) Has(name string) bool {
	_, ok := sc.Get(name)
	return ok
}

// ParseProm is a strict parser for the Prometheus text exposition
// format subset this repo emits (and the broader 0.0.4 grammar for
// sample lines). It is shared by tvatop and the metrics-smoke
// validation, so a malformed exposition fails loudly with a line
// number instead of rendering garbage. Rules enforced:
//
//   - comment lines must be well-formed # HELP / # TYPE with a known
//     type keyword, or plain comments;
//   - a TYPE for a name may be declared at most once;
//   - sample lines must have a valid metric name, well-formed label
//     syntax, and a float value (optional timestamp accepted);
//   - duplicate series (same name + label set) are rejected.
func ParseProm(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	seen := make(map[string]bool)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(sc, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		id := s.ID()
		if seen[id] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, id)
		}
		seen[id] = true
		sc.Samples = append(sc.Samples, s)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func parseComment(sc *Scrape, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if !promTypes[typ] {
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := sc.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE declaration for %s", name)
		}
		sc.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validMetricName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line

	// Metric name.
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name in %q", line)
	}
	s.Name = rest[:i]
	rest = rest[i:]

	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			if inQuote {
				if c == '\\' {
					j++
				} else if c == '"' {
					inQuote = false
				}
				continue
			}
			if c == '"' {
				inQuote = true
			} else if c == '}' {
				end = j
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}

	// Value and optional timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after series in %q", line)
	}
	v, err := parsePromFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parseLabels(body string) ([]Label, error) {
	var out []Label
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		key := rest[:eq]
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("label %s: value must be quoted", key)
		}
		val, n, err := unquoteLabelValue(rest)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", key, err)
		}
		rest = rest[n:]
		out = append(out, Label{Key: key, Value: val})
		switch {
		case rest == "":
		case strings.HasPrefix(rest, ","):
			rest = rest[1:]
		default:
			return nil, fmt.Errorf("junk after label %s in %q", key, body)
		}
	}
	return out, nil
}

// unquoteLabelValue decodes a leading quoted label value, returning
// the decoded string and how many input bytes it consumed.
func unquoteLabelValue(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
