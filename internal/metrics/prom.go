package metrics

import (
	"io"
	"net/http"
	"strconv"
	"strings"
)

// promValue renders a sample for the text exposition: integers print
// exactly, everything else in shortest 'g' form. NaN/Inf render in
// the spec's spelling.
func promValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry's live values in the Prometheus
// text exposition format (version 0.0.4), stdlib-only. Series sharing
// a metric name are grouped under one # HELP / # TYPE pair, in
// first-registration order. For every counter the writer also emits
// two synthetic gauges carrying the registry's tick-time derivations:
// <name>:rate (per-second rate over the last tick interval) and
// <name>:ewma (smoothed rate) — recording-rule-style names, so a
// single scrape gives tvatop rates without a second poll. Derived
// series appear only once the registry has ticked at least twice
// (before that there is no interval to rate over).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := &errWriter{w: w}

	// Live values, grouped by metric name in first-seen order.
	emitted := make(map[string]bool, len(r.series))
	for i := range r.series {
		lead := &r.series[i]
		if emitted[lead.name] {
			continue
		}
		emitted[lead.name] = true
		bw.WriteString("# HELP ")
		bw.WriteString(lead.name)
		bw.WriteString(" ")
		bw.WriteString(sanitizeHelp(lead.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(lead.name)
		bw.WriteString(" ")
		bw.WriteString(lead.kind.String())
		bw.WriteString("\n")
		for j := i; j < len(r.series); j++ {
			s := &r.series[j]
			if s.name != lead.name {
				continue
			}
			bw.WriteString(s.id)
			bw.WriteString(" ")
			bw.WriteString(promValue(s.read()))
			bw.WriteString("\n")
		}
	}

	// Tick-derived rate and EWMA series for counters.
	if r.total >= 2 {
		last := (r.next - 1 + r.cap) % r.cap
		n := len(r.series)
		for _, suffix := range [2]string{":rate", ":ewma"} {
			emitted = make(map[string]bool, len(r.series))
			for i := range r.series {
				lead := &r.series[i]
				if lead.kind != KindCounter || emitted[lead.name] {
					continue
				}
				emitted[lead.name] = true
				bw.WriteString("# HELP ")
				bw.WriteString(lead.name)
				bw.WriteString(suffix)
				if suffix == ":rate" {
					bw.WriteString(" Per-second rate of ")
				} else {
					bw.WriteString(" Smoothed (EWMA) per-second rate of ")
				}
				bw.WriteString(lead.name)
				bw.WriteString(" over registry ticks.\n# TYPE ")
				bw.WriteString(lead.name)
				bw.WriteString(suffix)
				bw.WriteString(" gauge\n")
				for j := i; j < len(r.series); j++ {
					s := &r.series[j]
					if s.name != lead.name || s.kind != KindCounter {
						continue
					}
					var v float64
					if suffix == ":rate" {
						v = r.rates[last*n+j]
					} else {
						v = r.ewma[j]
					}
					bw.WriteString(s.name)
					bw.WriteString(suffix)
					bw.WriteString(renderLabels(s.labels))
					bw.WriteString(" ")
					bw.WriteString(promValue(v))
					bw.WriteString("\n")
				}
			}
		}
	}
	return bw.err
}

// sanitizeHelp strips newlines (escaped per spec) so HELP lines stay
// single-line.
func sanitizeHelp(h string) string {
	if h == "" {
		return "(no help)"
	}
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler serves the registry as a /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
