package metrics

import (
	"math"
	"strings"
	"testing"

	"tva/internal/tvatime"
)

func TestInstruments(t *testing.T) {
	var c Counter
	c.Record(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}

	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v, want 0", g.Value())
	}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}

	var s Sketch
	if s.Quantile(0.5) != 0 {
		t.Fatalf("empty sketch quantile = %d, want 0", s.Quantile(0.5))
	}
	for i := 0; i < 90; i++ {
		s.Observe(100) // bucket upper edge 128
	}
	for i := 0; i < 10; i++ {
		s.Observe(100000) // bucket upper edge 131072
	}
	if got := s.Count(); got != 100 {
		t.Fatalf("sketch count = %d, want 100", got)
	}
	if q := s.Quantile(0.5); q != 128 {
		t.Fatalf("p50 = %d, want 128", q)
	}
	if q := s.Quantile(0.99); q != 131072 {
		t.Fatalf("p99 = %d, want 131072", q)
	}
	s.Observe(0)
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 with zero sample = %d, want 0", q)
	}
	if s.Sum() != 90*100+10*100000 {
		t.Fatalf("sum = %d", s.Sum())
	}
}

func TestRegistryRatesAndEWMA(t *testing.T) {
	r := New(8)
	var pkts Counter
	var depth Gauge
	if err := r.CounterVar("tva_test_pkts_total", nil, "packets", &pkts); err != nil {
		t.Fatal(err)
	}
	if err := r.GaugeVar("tva_test_depth", L("class", "regular"), "queue depth", &depth); err != nil {
		t.Fatal(err)
	}

	sec := func(s float64) tvatime.Time { return tvatime.FromSeconds(s) }
	depth.Set(4)
	r.Tick(sec(0))
	pkts.Record(100)
	depth.Set(8)
	r.Tick(sec(1))
	pkts.Record(300)
	r.Tick(sec(2))

	if n := r.NumSeries(); n != 2 {
		t.Fatalf("NumSeries = %d, want 2", n)
	}
	ids := r.IDs()
	if ids[0] != "tva_test_pkts_total" || ids[1] != `tva_test_depth{class="regular"}` {
		t.Fatalf("IDs = %q", ids)
	}

	row := make([]float64, 2)
	rates := make([]float64, 2)
	if at := r.Row(2, row); at != sec(2) {
		t.Fatalf("row 2 time = %v", at)
	}
	r.RowRates(2, rates)
	if row[0] != 400 || rates[0] != 300 {
		t.Fatalf("counter value/rate = %v/%v, want 400/300", row[0], rates[0])
	}
	if row[1] != 8 || rates[1] != 0 {
		t.Fatalf("gauge value/rate = %v/%v, want 8/0", row[1], rates[1])
	}

	// EWMA of counter rate: seeded 0, then 0+.25*(100-0)=25, then
	// 25+.25*(300-25)=93.75.
	if got := r.EWMA(0); math.Abs(got-93.75) > 1e-9 {
		t.Fatalf("counter EWMA = %v, want 93.75", got)
	}
	// EWMA of gauge value: seeded 4, then 5, then 5.75.
	if got := r.EWMA(1); math.Abs(got-5.75) > 1e-9 {
		t.Fatalf("gauge EWMA = %v, want 5.75", got)
	}
}

func TestRegistryWindowWraps(t *testing.T) {
	r := New(3)
	var c Counter
	if err := r.CounterVar("tva_test_total", nil, "", &c); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		c.Record(uint64(i))
		r.Tick(tvatime.FromSeconds(float64(i)))
	}
	if r.Len() != 3 || r.Ticks() != 5 {
		t.Fatalf("Len=%d Ticks=%d, want 3/5", r.Len(), r.Ticks())
	}
	row := make([]float64, 1)
	if at := r.Row(0, row); at != tvatime.FromSeconds(3) {
		t.Fatalf("oldest retained row at %v, want t=3s", at)
	}
	if at := r.Row(2, row); at != tvatime.FromSeconds(5) {
		t.Fatalf("newest retained row at %v, want t=5s", at)
	}
	if row[0] != 1+2+3+4+5 {
		t.Fatalf("newest value = %v, want 15", row[0])
	}
}

func TestRegistryRegistrationErrors(t *testing.T) {
	r := New(4)
	var c Counter
	if err := r.CounterVar("tva_x_total", nil, "", &c); err != nil {
		t.Fatal(err)
	}
	if err := r.CounterVar("tva_x_total", nil, "", &c); err == nil {
		t.Fatal("duplicate series registration succeeded")
	}
	if err := r.Gauge("tva_x_total", L("a", "b"), "", func() float64 { return 0 }); err == nil {
		t.Fatal("kind conflict for one metric name succeeded")
	}
	if err := r.Gauge("tva_nilfn", nil, "", nil); err == nil {
		t.Fatal("nil read func accepted")
	}
	r.Tick(0)
	err := r.CounterVar("tva_late_total", nil, "", &c)
	if err == nil || !strings.Contains(err.Error(), "after first Tick") {
		t.Fatalf("post-seal registration error = %v", err)
	}
	if r.NumSeries() != 1 {
		t.Fatalf("failed registrations mutated the series set: %d", r.NumSeries())
	}
}

func TestWriteCSVAndJSONStable(t *testing.T) {
	build := func() *Registry {
		r := New(4)
		var c Counter
		var g Gauge
		_ = r.CounterVar("tva_drops_total", L("reason", "regular-queue-full"), "drops", &c)
		_ = r.GaugeVar("tva_fill", nil, "fill", &g)
		g.Set(1.5)
		r.Tick(tvatime.FromSeconds(0))
		c.Record(10)
		g.Set(3)
		r.Tick(tvatime.FromSeconds(0.5))
		return r
	}
	var a, b strings.Builder
	if err := build().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("CSV not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
	want := `t_sec,"tva_drops_total{reason=""regular-queue-full""}",tva_fill,"tva_drops_total{reason=""regular-queue-full""}:rate"` + "\n" +
		"0.000000,0,1.5,0\n0.500000,10,3,20\n"
	if a.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", a.String(), want)
	}

	var j strings.Builder
	if err := build().WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"columns":["t_sec","tva_drops_total{reason=\"regular-queue-full\"}","tva_fill","tva_drops_total{reason=\"regular-queue-full\"}:rate"],"rows":[[0.000000,0,1.5,0],[0.500000,10,3,20]]}` + "\n"
	if j.String() != wantJSON {
		t.Fatalf("JSON:\n%s\nwant:\n%s", j.String(), wantJSON)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := New(4)
	var c Counter
	var g Gauge
	var s Sketch
	if err := r.CounterVar("tva_pkts_total", L("port", "10.0.0.1:7001"), "Forwarded packets.", &c); err != nil {
		t.Fatal(err)
	}
	if err := r.CounterVar("tva_pkts_total", L("port", "10.0.0.2:7002"), "Forwarded packets.", &c); err != nil {
		t.Fatal(err)
	}
	if err := r.GaugeVar("tva_fill", nil, "Burst fill.", &g); err != nil {
		t.Fatal(err)
	}
	if err := r.SketchQuantiles("tva_wait_ns", nil, "Queue wait.", &s, 0.5, 0.99); err != nil {
		t.Fatal(err)
	}
	c.Record(42)
	g.Set(3.25)
	s.Observe(1000)
	r.Tick(tvatime.FromSeconds(0))
	c.Record(58)
	r.Tick(tvatime.FromSeconds(1))

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseProm(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("self-emitted exposition rejected: %v\n%s", err, out.String())
	}
	if sc.Types["tva_pkts_total"] != "counter" || sc.Types["tva_fill"] != "gauge" {
		t.Fatalf("types = %v", sc.Types)
	}
	if got := len(sc.Select("tva_pkts_total")); got != 2 {
		t.Fatalf("pkts series = %d, want 2", got)
	}
	q, ok := sc.Get("tva_wait_ns")
	if !ok || q.Label("q") != "0.5" {
		t.Fatalf("quantile sample = %+v ok=%v", q, ok)
	}
	// Derived series present after two ticks, with the tick-time rate.
	rate := sc.Select("tva_pkts_total:rate")
	if len(rate) != 2 {
		t.Fatalf("rate series = %d, want 2", len(rate))
	}
	if rate[0].Value != 58 {
		t.Fatalf("rate = %v, want 58", rate[0].Value)
	}
	if !sc.Has("tva_pkts_total:ewma") {
		t.Fatal("missing ewma series")
	}

	// Before the second tick there is no interval, so no derived
	// series.
	r2 := New(4)
	_ = r2.CounterVar("tva_pkts_total", nil, "", &c)
	r2.Tick(0)
	var out2 strings.Builder
	_ = r2.WritePrometheus(&out2)
	if strings.Contains(out2.String(), ":rate") {
		t.Fatalf("rate series before two ticks:\n%s", out2.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	id := renderLabels(L("path", `a\b"c`+"\n"))
	want := `{path="a\\b\"c\n"}`
	if id != want {
		t.Fatalf("rendered = %s, want %s", id, want)
	}
	sc, err := ParseProm(strings.NewReader(`m` + id + ` 1` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Samples[0].Label("path") != `a\b"c`+"\n" {
		t.Fatalf("roundtrip = %q", sc.Samples[0].Label("path"))
	}
}

func TestTickNoAllocs(t *testing.T) {
	r := New(16)
	var c Counter
	var g Gauge
	var s Sketch
	_ = r.CounterVar("tva_pkts_total", nil, "", &c)
	_ = r.GaugeVar("tva_fill", nil, "", &g)
	_ = r.SketchQuantiles("tva_wait_ns", nil, "", &s, 0.5, 0.99)
	r.Tick(0) // seal
	var now tvatime.Time
	if n := testing.AllocsPerRun(100, func() {
		c.Record(1)
		g.Set(1)
		s.Observe(512)
		now += tvatime.Time(tvatime.Millisecond)
		r.Tick(now)
	}); n != 0 {
		t.Fatalf("instrument+tick allocates %v per run, want 0", n)
	}
}
