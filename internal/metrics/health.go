package metrics

import (
	"strconv"

	"tva/internal/tvatime"
)

// State is the router's attack-onset health, derived online from the
// drop-rate slope and request-channel pressure. The progression
// mirrors what an operator watching the paper's Fig. 11 would call
// out by hand: drops ramp (degraded), sustain (under-attack), fall
// back (recovered), and stay quiet (healthy again).
type State uint8

const (
	Healthy State = iota
	Degraded
	UnderAttack
	Recovered
	// NumStates bounds State for array sizing and gauge encoding.
	NumStates = int(Recovered) + 1
)

// String returns the kebab-case state name used in log lines, metric
// values' documentation, and tvatop.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case UnderAttack:
		return "under-attack"
	case Recovered:
		return "recovered"
	default:
		return "state-" + strconv.Itoa(int(s))
	}
}

// Transition records one health-state change: when it fired, at which
// tick (the deterministic sample offset in simulation), and the
// signal values that triggered it.
type Transition struct {
	At       tvatime.Time
	Sample   int // tick index at which the transition fired (0-based)
	From, To State
	DropRate float64 // drops/sec at the transition tick
	Pressure float64 // request-channel pressure at the transition tick
}

// String renders the transition the way tvasim and tvarouter log it.
// Formatting is fixed-precision so same-seed runs emit byte-identical
// lines.
func (t Transition) String() string {
	return t.From.String() + " -> " + t.To.String() +
		" t=" + strconv.FormatFloat(t.At.Sub(0).Seconds(), 'f', 3, 64) + "s" +
		" sample=" + strconv.Itoa(t.Sample) +
		" drop-rate=" + strconv.FormatFloat(t.DropRate, 'f', 1, 64) + "pps" +
		" pressure=" + strconv.FormatFloat(t.Pressure, 'f', 1, 64)
}

// DetectorConfig tunes the change-point detector. The zero value is
// usable: withDefaults fills each field the caller leaves zero.
type DetectorConfig struct {
	// K is the deviation multiplier: a tick is "hot" when the drop
	// rate exceeds baseline + K*deviation (and MinDropRate).
	K float64
	// MinDropRate (drops/sec) is an absolute floor under which a tick
	// is never hot, so idle-network noise cannot trip the detector.
	MinDropRate float64
	// MinPressure, when > 0, marks a tick hot whenever the
	// request-channel pressure (backlogged request packets) reaches
	// it, independent of the drop slope — the paper's request-flood
	// signature (§5.2) shows up here before capability drops do.
	MinPressure float64
	// DegradedTicks / OnsetTicks are the consecutive hot ticks needed
	// to enter Degraded / UnderAttack (hysteresis against blips).
	DegradedTicks int
	OnsetTicks    int
	// RecoverTicks is the consecutive cool ticks needed to leave an
	// attack state for Recovered; ClearTicks the further cool ticks
	// from Recovered back to Healthy.
	RecoverTicks int
	ClearTicks   int
	// MaxTransitions bounds the preallocated transition log.
	MaxTransitions int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.K == 0 {
		c.K = 4
	}
	if c.MinDropRate == 0 {
		c.MinDropRate = 50
	}
	if c.DegradedTicks == 0 {
		c.DegradedTicks = 1
	}
	if c.OnsetTicks == 0 {
		c.OnsetTicks = 3
	}
	if c.RecoverTicks == 0 {
		c.RecoverTicks = 5
	}
	if c.ClearTicks == 0 {
		c.ClearTicks = 5
	}
	if c.MaxTransitions == 0 {
		c.MaxTransitions = 64
	}
	return c
}

// Detector is a streaming change-point detector over the drop-rate
// slope and request-channel pressure. It keeps an EWMA baseline of
// the drop rate plus an EWMA of absolute deviation (both updated only
// while Healthy, so an attack cannot teach the detector that attacks
// are normal), and advances a four-state machine with hysteresis on
// every ObserveTick. All state is a handful of floats: ticking is
// allocation-free, and — fed from sampled values in virtual time — a
// pure function of the tick sequence, so same-seed simulations
// transition at identical sample offsets.
type Detector struct {
	cfg   DetectorConfig
	state State

	mean float64 // EWMA baseline of drop rate while healthy
	dev  float64 // EWMA of |rate - mean| while healthy

	prevDrops float64
	prevT     tvatime.Time
	ticked    bool

	hot, cool int // consecutive hot / cool tick counts
	tick      int // ticks observed

	transitions []Transition
	overflow    int // transitions dropped once the log filled

	// OnTransition, when set, runs synchronously inside ObserveTick
	// for every state change — the hook tvasim uses for trace spans
	// and tvarouter for log lines.
	OnTransition func(Transition)
}

// NewDetector returns a detector with cfg's zeros defaulted.
func NewDetector(cfg DetectorConfig) *Detector {
	c := cfg.withDefaults()
	return &Detector{
		cfg:         c,
		transitions: make([]Transition, 0, c.MaxTransitions),
	}
}

// State returns the current health state.
func (d *Detector) State() State { return d.state }

// StateValue returns the state as a float for the tva_health_state
// gauge (0=healthy 1=degraded 2=under-attack 3=recovered).
func (d *Detector) StateValue() float64 { return float64(d.state) }

// Transitions returns the recorded transitions, oldest first.
func (d *Detector) Transitions() []Transition { return d.transitions }

// Overflow returns how many transitions were discarded after the
// preallocated log filled.
func (d *Detector) Overflow() int { return d.overflow }

// ObserveTick feeds the detector one sample: the cumulative drop
// count and the instantaneous request-channel pressure at time now.
// Call it once per registry tick, before Registry.Tick, so the
// tva_health_state gauge row reflects this tick's verdict.
func (d *Detector) ObserveTick(now tvatime.Time, dropsTotal, pressure float64) {
	var rate float64
	if d.ticked {
		if dt := now.Sub(d.prevT).Seconds(); dt > 0 {
			rate = (dropsTotal - d.prevDrops) / dt
		}
	}
	first := !d.ticked
	d.prevDrops = dropsTotal
	d.prevT = now
	d.ticked = true

	hot := rate >= d.cfg.MinDropRate && rate > d.mean+d.cfg.K*d.dev
	if d.cfg.MinPressure > 0 && pressure >= d.cfg.MinPressure {
		hot = true
	}
	if hot {
		d.hot++
		d.cool = 0
	} else {
		d.cool++
		d.hot = 0
	}

	// The baseline learns only quiet, healthy ticks: an attack must
	// not drag the mean up until the detector stops firing.
	if d.state == Healthy && !hot {
		if first {
			d.mean = rate
		} else {
			d.mean += ewmaAlpha * (rate - d.mean)
			ad := rate - d.mean
			if ad < 0 {
				ad = -ad
			}
			d.dev += ewmaAlpha * (ad - d.dev)
		}
	}

	switch d.state {
	case Healthy:
		if d.hot >= d.cfg.OnsetTicks {
			d.transition(now, UnderAttack, rate, pressure)
		} else if d.hot >= d.cfg.DegradedTicks {
			d.transition(now, Degraded, rate, pressure)
		}
	case Degraded:
		if d.hot >= d.cfg.OnsetTicks {
			d.transition(now, UnderAttack, rate, pressure)
		} else if d.cool >= d.cfg.RecoverTicks {
			d.transition(now, Recovered, rate, pressure)
		}
	case UnderAttack:
		if d.cool >= d.cfg.RecoverTicks {
			d.transition(now, Recovered, rate, pressure)
		}
	case Recovered:
		if d.hot >= d.cfg.DegradedTicks {
			d.transition(now, Degraded, rate, pressure)
		} else if d.cool >= d.cfg.ClearTicks {
			d.transition(now, Healthy, rate, pressure)
		}
	}
	d.tick++
}

// transition switches state, logs the change, and fires the hook.
// Consecutive-tick counters reset so each state's thresholds count
// from its own entry.
func (d *Detector) transition(now tvatime.Time, to State, rate, pressure float64) {
	tr := Transition{
		At:       now,
		Sample:   d.tick,
		From:     d.state,
		To:       to,
		DropRate: rate,
		Pressure: pressure,
	}
	d.state = to
	d.hot, d.cool = 0, 0
	if len(d.transitions) < cap(d.transitions) {
		d.transitions = append(d.transitions, tr)
	} else {
		d.overflow++
	}
	if d.OnTransition != nil {
		d.OnTransition(tr)
	}
}
