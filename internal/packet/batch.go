// Batch: the unit of amortized forwarding. The per-packet data path
// (one Process call, one scheduler op, one socket syscall per
// datagram) caps the userspace router well below line rate; a Batch
// carries a burst of packets through every layer at once so fixed
// costs — verdict crypto setup, flow-cache probes, scheduler
// bookkeeping, recvmmsg/sendmmsg syscalls — are paid once per burst.
//
// A Batch is pool-backed like Packet itself: AcquireBatch/ReleaseBatch
// recycle the slot arrays, so batched forwarding stays allocation-free
// at steady state. Ownership composes with the packet pool's rules
// (pool.go): appending a pooled packet to a batch hands it to the
// batch's owner; whoever consumes the batch consumes (or passes on)
// every slot. ReleaseBatch releases only the batch container — the
// packets' ownership must already have moved on. ReleaseAll is the
// terminal-consumer form that releases every remaining packet and then
// the container.
package packet

import "sync"

// DefaultBatchCap is the default burst size used by batch-aware
// drivers when the caller does not choose one. 64 covers a recvmmsg
// burst on a loaded socket while keeping per-batch buffer memory
// (64 × ~2 KB) well under the L2 working set.
const DefaultBatchCap = 64

// Batch is a fixed-capacity burst of packets with per-slot forwarding
// verdicts. Pkts[:Len()] are the occupied slots; Classes[i] is the
// class router processing assigned to Pkts[i] (valid after
// core.Router.ProcessBatch). The zero value is unusable; get one from
// AcquireBatch or build one with NewBatch.
type Batch struct {
	pkts    []*Packet
	classes []Class
	pooled  bool
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// NewBatch returns an unpooled batch with the given capacity (for
// long-lived owners such as a per-worker scratch batch).
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	return &Batch{
		pkts:    make([]*Packet, 0, capacity),
		classes: make([]Class, 0, capacity),
	}
}

// AcquireBatch returns an empty pooled batch with at least
// DefaultBatchCap capacity. Release it with ReleaseBatch (container
// only) or ReleaseAll (container plus remaining packets).
func AcquireBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.pooled = true
	if cap(b.pkts) == 0 {
		b.pkts = make([]*Packet, 0, DefaultBatchCap)
		b.classes = make([]Class, 0, DefaultBatchCap)
	}
	return b
}

// ReleaseBatch returns the batch container to the pool. The packets in
// its slots are NOT released — their ownership must already have moved
// on (enqueued, transmitted, or released individually). No-op for nil
// and for unpooled batches.
func ReleaseBatch(b *Batch) {
	if b == nil || !b.pooled {
		return
	}
	b.Reset()
	b.pooled = false
	batchPool.Put(b)
}

// ReleaseAll releases every remaining packet in the batch and then the
// container itself: the terminal-consumer form of ReleaseBatch.
func (b *Batch) ReleaseAll() {
	for i, pkt := range b.pkts {
		Release(pkt)
		b.pkts[i] = nil
	}
	b.pkts = b.pkts[:0]
	b.classes = b.classes[:0]
	ReleaseBatch(b)
}

// Len returns the number of occupied slots.
func (b *Batch) Len() int { return len(b.pkts) }

// Cap returns the slot capacity.
func (b *Batch) Cap() int { return cap(b.pkts) }

// Full reports whether the batch has reached its capacity.
func (b *Batch) Full() bool { return len(b.pkts) == cap(b.pkts) }

// Append adds pkt to the next slot, taking ownership of it. It grows
// the batch beyond its capacity only for unpooled batches; pooled
// batches keep their fixed footprint (callers check Full and flush).
//
//tva:hotpath
func (b *Batch) Append(pkt *Packet) {
	b.pkts = append(b.pkts, pkt)
	b.classes = append(b.classes, ClassLegacy)
}

// At returns the packet in slot i.
//
//tva:hotpath
func (b *Batch) At(i int) *Packet { return b.pkts[i] }

// Class returns the forwarding class assigned to slot i.
//
//tva:hotpath
func (b *Batch) Class(i int) Class { return b.classes[i] }

// SetClass records slot i's forwarding verdict.
//
//tva:hotpath
func (b *Batch) SetClass(i int, c Class) { b.classes[i] = c }

// Take removes and returns the packet in slot i, leaving the slot nil
// so a later ReleaseAll does not double-release it. Len is unchanged.
//
//tva:hotpath
func (b *Batch) Take(i int) *Packet {
	pkt := b.pkts[i]
	b.pkts[i] = nil
	return pkt
}

// Pkts exposes the occupied slots (read-only by convention; slots may
// be nil after Take).
//
//tva:hotpath
func (b *Batch) Pkts() []*Packet { return b.pkts }

// Reset clears all slots (dropping references for GC) without
// releasing the packets; the caller owns any it did not pass on.
func (b *Batch) Reset() {
	for i := range b.pkts {
		b.pkts[i] = nil
	}
	b.pkts = b.pkts[:0]
	b.classes = b.classes[:0]
}
