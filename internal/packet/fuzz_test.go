// Native fuzz targets for the wire codec: UnmarshalReuse must never
// panic on arbitrary bytes (the overlay feeds it raw UDP datagrams),
// and Marshal∘Unmarshal must be the identity on valid headers.
// `make fuzz-smoke` runs each for ~10s; the committed corpus under
// testdata/ (if any) replays in plain `go test`.
package packet

import (
	"bytes"
	"testing"
)

// fuzzSeedPackets builds one representative packet per shape for the
// seed corpus.
func fuzzSeedPackets(t testing.TB) [][]byte {
	var out [][]byte
	add := func(p *Packet) {
		wire, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("marshaling seed: %v", err)
		}
		out = append(out, wire)
	}

	legacy := &Packet{Src: 1, Dst: 2, TTL: 64, Proto: ProtoRaw, Payload: []byte("legacy")}
	add(legacy)

	req := &Packet{Src: 3, Dst: 4, TTL: 64}
	h := req.NewHdr()
	h.Kind = KindRequest
	h.Proto = ProtoTCP
	h.Request.PathIDs = []PathID{9}
	h.Request.PreCaps = []uint64{0xfeed}
	add(req)

	reg := &Packet{Src: 5, Dst: 6, TTL: 64, Payload: []byte("data")}
	h = reg.NewHdr()
	h.Kind = KindRegular
	h.Proto = ProtoRaw
	h.Nonce = 42
	h.NKB = 10
	h.TSec = 5
	h.Caps = []uint64{1, 2, 3}
	h.Return = &ReturnInfo{
		DemotionNotice: true,
		DemoteReason:   2,
		DemoteRouter:   7,
		Grant:          &Grant{NKB: 8, TSec: 4, Caps: []uint64{11, 12}},
	}
	add(reg)
	return out
}

// FuzzWireUnmarshal: arbitrary bytes never panic the decoder, and
// anything it accepts must re-marshal cleanly.
func FuzzWireUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 64, byte(ProtoShim), 0, 0, 0, 20})
	for _, seed := range fuzzSeedPackets(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := AcquirePacket()
		defer Release(p)
		if err := p.UnmarshalReuse(data); err != nil {
			return
		}
		if _, err := p.Marshal(nil); err != nil {
			t.Fatalf("re-marshaling an accepted packet failed: %v", err)
		}
	})
}

// FuzzWireRoundTrip: a valid header built from fuzzed fields survives
// Marshal → Unmarshal → Marshal byte-identically.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(1), false, uint64(42), uint16(10), uint8(5), uint8(3), []byte("hi"), true, uint8(3))
	f.Add(uint8(0), true, uint64(7), uint16(1), uint8(1), uint8(1), []byte(nil), false, uint8(0))
	f.Fuzz(func(t *testing.T, kind uint8, demoted bool, nonce uint64, nkb uint16, tsec, ncaps uint8, payload []byte, withReturn bool, retbits uint8) {
		p := AcquirePacket()
		defer Release(p)
		p.Src, p.Dst = AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2)
		p.TTL = 64
		h := p.NewHdr()
		h.Kind = Kind(kind & 3)
		h.Proto = ProtoRaw
		if demoted {
			h.Demoted = true
			h.DemoteReason = retbits
			h.DemoteRouter = ncaps
		}
		h.Nonce = nonce & NonceMask
		h.NKB = nkb & MaxNKB
		h.TSec = tsec & MaxTSeconds
		h.Ptr = ncaps % 8
		for i := 0; i < int(ncaps%8); i++ {
			h.Caps = append(h.Caps, nonce+uint64(i))
		}
		if h.Kind == KindRequest || h.Kind == KindRenewal {
			for i := 0; i < int(ncaps%4); i++ {
				h.Request.PathIDs = append(h.Request.PathIDs, PathID(nkb)+PathID(i))
				h.Request.PreCaps = append(h.Request.PreCaps, nonce^uint64(i))
			}
		}
		if withReturn {
			ret := &ReturnInfo{}
			if retbits&1 != 0 {
				ret.DemotionNotice = true
				ret.DemoteReason = retbits
				ret.DemoteRouter = retbits >> 1
			}
			if retbits&2 != 0 {
				g := &Grant{NKB: nkb % MaxNKB, TSec: tsec % MaxTSeconds}
				for i := 0; i < int(ncaps%5); i++ {
					g.Caps = append(g.Caps, nonce-uint64(i))
				}
				ret.Grant = g
			}
			h.Return = ret
		}
		if len(payload) > 0 {
			p.Payload = append([]byte(nil), payload...)
		}

		wire, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("marshaling a valid header: %v", err)
		}
		q := AcquirePacket()
		defer Release(q)
		if err := q.UnmarshalReuse(wire); err != nil {
			t.Fatalf("unmarshaling our own wire bytes: %v", err)
		}
		// Compare via re-marshaled bytes, not DeepEqual: the decoded
		// header aliases packet-owned scratch storage.
		wire2, err := q.Marshal(nil)
		if err != nil {
			t.Fatalf("re-marshaling the decoded packet: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("round trip changed the encoding:\n first %x\nsecond %x", wire, wire2)
		}
		if q.Size != len(wire) {
			t.Fatalf("decoded Size = %d, wire length %d", q.Size, len(wire))
		}
	})
}
