// Packet pool: the simulator and the overlay push millions of packets
// through their hot paths, and a heap allocation per packet (plus one
// per shim header) dominates the profile. The pool recycles Packet
// values together with their scratch shim header, so steady-state
// forwarding allocates nothing.
//
// Ownership rules (see DESIGN.md "Performance model"):
//
//   - AcquirePacket transfers ownership to the caller; passing the
//     packet on (Shim.Output, Node.Send, a scheduler Enqueue) passes
//     ownership with it.
//   - Whoever terminally consumes a packet — a drop point, the final
//     destination after its handler returns — calls Release. Release
//     is a no-op for packets that did not come from the pool, so
//     terminal consumers may call it unconditionally.
//   - Forgetting to release is safe (the packet is simply garbage
//     collected); releasing a packet that is still referenced is not.
//     Never release a packet that a queue, a clone-free retransmit
//     buffer, or an observer still holds.
package packet

import (
	"sync"
	"sync/atomic"
)

var pool = sync.Pool{New: func() any { return new(Packet) }}

// live counts packets acquired and not yet released — the pool gauge.
// Restart/link-down flushes are verified against it: after a crash
// flush, Live must return to its pre-fault baseline, or queue state
// leaked pooled packets.
var live atomic.Int64

// Live returns the number of pool-acquired packets not yet released.
func Live() int64 { return live.Load() }

// AcquirePacket returns a zeroed packet owned by the caller. Its
// scratch header (NewHdr) and slice capacities are recycled from
// earlier releases, so steady-state use is allocation-free.
func AcquirePacket() *Packet {
	p := pool.Get().(*Packet)
	p.pooled = true
	live.Add(1)
	return p
}

// Release returns p to the pool if it was pool-acquired and is a no-op
// otherwise (including for nil), so terminal consumers can call it on
// any packet. The caller must not touch p afterwards.
func Release(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	p.reset()
	live.Add(-1)
	pool.Put(p)
}

// Pooled reports whether p is currently owned by the pool lifecycle
// (acquired and not yet released).
func (p *Packet) Pooled() bool { return p.pooled }

// reset clears every field for reuse while keeping the scratch header
// (adopting an externally attached one if the packet has no scratch of
// its own) so its slice capacity survives the round trip.
func (p *Packet) reset() {
	scratch := p.scratch
	if scratch == nil {
		scratch = p.Hdr
	}
	*p = Packet{scratch: scratch}
}
