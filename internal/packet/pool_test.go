package packet

import (
	"sync"
	"testing"
)

// regularWire builds the wire form of a regular packet with caps and a
// payload for decode tests.
func regularWire(t *testing.T, caps []uint64, payload []byte) []byte {
	t.Helper()
	p := &Packet{
		Src: 10, Dst: 20, TTL: 64, Proto: ProtoRaw,
		Hdr: &CapHdr{
			Kind: KindRegular, Proto: ProtoRaw,
			Nonce: 0x123456789a & NonceMask,
			NKB:   32, TSec: 10, Caps: caps,
		},
		Payload: payload,
	}
	p.Size = OuterHdrLen + p.HdrWireSize() + len(payload)
	data, err := p.Marshal(nil)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestPoolNoAliasingBetweenLivePackets decodes into two concurrently
// live pooled packets and checks neither's capability list or payload
// is disturbed by the other: every live packet owns its own storage.
func TestPoolNoAliasingBetweenLivePackets(t *testing.T) {
	wireA := regularWire(t, []uint64{1, 2, 3}, []byte("payload-a"))
	wireB := regularWire(t, []uint64{9, 8, 7, 6}, []byte("payload-b!"))

	a := AcquirePacket()
	if err := a.UnmarshalReuse(wireA); err != nil {
		t.Fatalf("unmarshal A: %v", err)
	}
	if !a.Pooled() {
		t.Fatal("acquired packet not marked pooled")
	}
	b := AcquirePacket()
	if err := b.UnmarshalReuse(wireB); err != nil {
		t.Fatalf("unmarshal B: %v", err)
	}
	if a == b || a.Hdr == b.Hdr {
		t.Fatal("two live pooled packets share storage")
	}
	if got := a.Hdr.Caps; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("packet A caps corrupted by packet B's decode: %#x", got)
	}
	if got := string(a.Payload.([]byte)); got != "payload-a" {
		t.Fatalf("packet A payload corrupted: %q", got)
	}
	Release(a)
	Release(b)
}

// TestPoolPayloadSurvivesReuse retains a decoded payload past the
// packet's release and checks a later decode into the recycled packet
// leaves it intact: payloads are fresh per decode (consumers hold
// them, e.g. the overlay host inbox), unlike the header's slices,
// which alias pool storage and must be copied before release.
func TestPoolPayloadSurvivesReuse(t *testing.T) {
	wireA := regularWire(t, []uint64{1, 2, 3}, []byte("payload-a"))
	wireB := regularWire(t, []uint64{9, 8, 7, 6}, []byte("payload-b!"))

	pkt := AcquirePacket()
	if err := pkt.UnmarshalReuse(wireA); err != nil {
		t.Fatalf("unmarshal A: %v", err)
	}
	payload := pkt.Payload.([]byte)
	capsCopy := append([]uint64(nil), pkt.Hdr.Caps...)
	Release(pkt)

	pkt2 := AcquirePacket()
	if err := pkt2.UnmarshalReuse(wireB); err != nil {
		t.Fatalf("unmarshal B: %v", err)
	}
	if string(payload) != "payload-a" {
		t.Fatalf("retained payload mutated by pool reuse: %q", payload)
	}
	if len(capsCopy) != 3 || capsCopy[0] != 1 || capsCopy[1] != 2 || capsCopy[2] != 3 {
		t.Fatalf("copied caps mutated by pool reuse: %#x", capsCopy)
	}
	Release(pkt2)
}

// TestPoolDoubleReleaseSafe checks a second Release of the same packet
// is a no-op: the pool must not hold the packet twice.
func TestPoolDoubleReleaseSafe(t *testing.T) {
	pkt := AcquirePacket()
	Release(pkt)
	Release(pkt) // must not panic or double-insert

	a := AcquirePacket()
	b := AcquirePacket()
	if a == b {
		t.Fatal("double release put the same packet in the pool twice")
	}
	Release(a)
	Release(b)
}

// TestReleaseNonPooledNoop checks Release ignores packets built as
// literals (tests and workload generators construct these freely).
func TestReleaseNonPooledNoop(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Hdr: &CapHdr{Kind: KindRequest}}
	Release(p)
	if p.Hdr == nil || p.Src != 1 {
		t.Fatal("Release reset a non-pooled packet")
	}
}

// TestCloneDetachesFromPool checks a clone survives its source's
// release untouched and is itself not pool-owned.
func TestCloneDetachesFromPool(t *testing.T) {
	wire := regularWire(t, []uint64{5, 6}, []byte("keep"))
	pkt := AcquirePacket()
	if err := pkt.UnmarshalReuse(wire); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	cl := pkt.Clone()
	Release(pkt)
	reuse := AcquirePacket()
	if err := reuse.UnmarshalReuse(regularWire(t, []uint64{0xdead, 0xbeef}, nil)); err != nil {
		t.Fatalf("unmarshal reuse: %v", err)
	}
	if cl.Pooled() {
		t.Fatal("clone inherited pooled flag")
	}
	if got := cl.Hdr.Caps; len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("clone caps corrupted by source reuse: %#x", got)
	}
	Release(reuse)
}

// TestPoolConcurrent hammers acquire/decode/release from several
// goroutines; run with -race it checks pool handoff is data-race free
// and contents never bleed across concurrently live packets.
func TestPoolConcurrent(t *testing.T) {
	wires := [][]byte{
		regularWire(t, []uint64{1}, []byte("one")),
		regularWire(t, []uint64{2, 2}, []byte("two-two")),
		regularWire(t, []uint64{3, 3, 3}, []byte("three")),
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w := (g + i) % len(wires)
				pkt := AcquirePacket()
				if err := pkt.UnmarshalReuse(wires[w]); err != nil {
					t.Errorf("unmarshal: %v", err)
					Release(pkt)
					return
				}
				want := uint64(w + 1)
				for _, c := range pkt.Hdr.Caps {
					if c != want {
						t.Errorf("cap bleed: got %#x want %#x", c, want)
						Release(pkt)
						return
					}
				}
				Release(pkt)
			}
		}(g)
	}
	wg.Wait()
}

// TestUnmarshalReuseSteadyStateAllocs checks the decode path the
// forwarding benchmarks depend on: after warmup, re-decoding a
// header-only packet into the same Packet allocates nothing.
func TestUnmarshalReuseSteadyStateAllocs(t *testing.T) {
	wire := regularWire(t, []uint64{1, 2, 3}, nil)
	var pkt Packet
	if err := pkt.UnmarshalReuse(wire); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := pkt.UnmarshalReuse(wire); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state UnmarshalReuse allocates %.1f per op, want 0", allocs)
	}
}
