// Binary wire format for TVA packets. The outer header is a fixed
// 20-byte IPv4-like header; the shim header layout follows Fig. 5 of
// the paper (sizes in bits given there; see packet.go for the one
// documented deviation in the request list layout).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the shim header version carried in the top nibble of the
// first shim byte.
const Version = 1

// ProtoShim is the outer-header protocol number indicating that a TVA
// shim header follows (analogous to a new IP protocol number).
const ProtoShim Proto = 253

// Type-field flag bits (Fig. 5: 1xxx demoted, x1xx return info).
const (
	typeDemoted = 0x8
	typeReturn  = 0x4
	typeKind    = 0x3
)

// Return-info type byte values.
const (
	returnDemotion = 0x01
	returnGrant    = 0x02
	returnHops     = 0x04
)

// hopsFlag is the top bit of the request path-id count byte: set when
// the request carries a hop-stamp section (RequestHdr.WantHops). The
// path-id count is therefore capped at 127, far above any real path
// length.
const hopsFlag = 0x80

// Wire format errors.
var (
	ErrTruncated  = errors.New("packet: truncated")
	ErrBadVersion = errors.New("packet: bad shim version")
	ErrTooMany    = errors.New("packet: list longer than count field allows")
)

// Marshal appends the packet's wire representation to buf and returns
// the extended slice. The payload must already be a []byte (or nil);
// the simulator never marshals its in-memory payloads.
func (p *Packet) Marshal(buf []byte) ([]byte, error) {
	var payload []byte
	switch pl := p.Payload.(type) {
	case nil:
	case []byte:
		payload = pl
	default:
		return nil, fmt.Errorf("packet: cannot marshal payload of type %T", p.Payload)
	}
	total := OuterHdrLen + p.HdrWireSize() + len(payload)

	// Outer header: version(1) class(1) ttl(1) proto(1)
	// totalLen(4) src(4) dst(4) reserved(4).
	var outer [OuterHdrLen]byte
	outer[0] = Version
	outer[1] = byte(p.Class)
	outer[2] = p.TTL
	if p.Hdr != nil {
		outer[3] = byte(ProtoShim)
	} else {
		outer[3] = byte(p.Proto)
	}
	binary.BigEndian.PutUint32(outer[4:8], uint32(total))
	binary.BigEndian.PutUint32(outer[8:12], uint32(p.Src))
	binary.BigEndian.PutUint32(outer[12:16], uint32(p.Dst))
	buf = append(buf, outer[:]...)

	if p.Hdr != nil {
		var err error
		buf, err = p.Hdr.marshal(buf)
		if err != nil {
			return nil, err
		}
	}
	return append(buf, payload...), nil
}

func (h *CapHdr) marshal(buf []byte) ([]byte, error) {
	t := byte(h.Kind) & typeKind
	if h.Demoted {
		t |= typeDemoted
	}
	if h.Return != nil {
		t |= typeReturn
	}
	buf = append(buf, Version<<4|t, byte(h.Proto))
	if h.Demoted {
		buf = append(buf, h.DemoteReason, h.DemoteRouter)
	}

	switch h.Kind {
	case KindRequest:
		var err error
		buf, err = marshalRequest(buf, &h.Request)
		if err != nil {
			return nil, err
		}
	case KindNonceOnly:
		buf = appendNonce(buf, h.Nonce)
	case KindRegular, KindRenewal:
		if len(h.Caps) > MaxCaps {
			return nil, ErrTooMany
		}
		buf = appendNonce(buf, h.Nonce)
		buf = append(buf, byte(len(h.Caps)), h.Ptr) // count, ptr
		buf = appendNT(buf, h.NKB, h.TSec)
		for _, c := range h.Caps {
			buf = binary.BigEndian.AppendUint64(buf, c)
		}
		if h.Kind == KindRenewal {
			var err error
			buf, err = marshalRequest(buf, &h.Request)
			if err != nil {
				return nil, err
			}
		}
	}

	if h.Return != nil {
		rt := byte(0)
		if h.Return.DemotionNotice {
			rt |= returnDemotion
		}
		if h.Return.Grant != nil {
			rt |= returnGrant
		}
		if len(h.Return.Hops) > 0 {
			rt |= returnHops
		}
		buf = append(buf, rt)
		if h.Return.DemotionNotice {
			buf = append(buf, h.Return.DemoteReason, h.Return.DemoteRouter)
		}
		if g := h.Return.Grant; g != nil {
			if len(g.Caps) > MaxCaps {
				return nil, ErrTooMany
			}
			buf = append(buf, byte(len(g.Caps)))
			buf = appendNT(buf, g.NKB, g.TSec)
			for _, c := range g.Caps {
				buf = binary.BigEndian.AppendUint64(buf, c)
			}
		}
		if len(h.Return.Hops) > 0 {
			var err error
			if buf, err = marshalHops(buf, h.Return.Hops); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func marshalRequest(buf []byte, r *RequestHdr) ([]byte, error) {
	if len(r.PathIDs) > 127 || len(r.PreCaps) > MaxCaps {
		return nil, ErrTooMany
	}
	b0 := byte(len(r.PathIDs))
	if r.WantHops {
		b0 |= hopsFlag
	}
	buf = append(buf, b0, byte(len(r.PreCaps)))
	for _, id := range r.PathIDs {
		buf = binary.BigEndian.AppendUint16(buf, uint16(id))
	}
	for _, c := range r.PreCaps {
		buf = binary.BigEndian.AppendUint64(buf, c)
	}
	if r.WantHops {
		var err error
		if buf, err = marshalHops(buf, r.HopWaits); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func marshalHops(buf []byte, hops []HopStamp) ([]byte, error) {
	if len(hops) > 255 {
		return nil, ErrTooMany
	}
	buf = append(buf, byte(len(hops)))
	for _, h := range hops {
		buf = append(buf, h.Router)
		buf = binary.BigEndian.AppendUint32(buf, h.WaitUs)
	}
	return buf, nil
}

func appendNonce(buf []byte, nonce uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nonce&NonceMask)
	return append(buf, b[2:8]...)
}

// appendNT packs N (10 bits, KB) and T (6 bits, seconds) into 2 bytes.
func appendNT(buf []byte, nkb uint16, tsec uint8) []byte {
	v := (nkb&MaxNKB)<<6 | uint16(tsec&MaxTSeconds)
	return binary.BigEndian.AppendUint16(buf, v)
}

func splitNT(v uint16) (nkb uint16, tsec uint8) {
	return v >> 6 & MaxNKB, uint8(v & MaxTSeconds)
}

// Unmarshal parses a packet from wire bytes into a fresh Packet. The
// payload (if any) is copied into a fresh []byte stored in Payload.
func Unmarshal(data []byte) (*Packet, error) {
	p := new(Packet)
	if err := p.UnmarshalReuse(data); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalReuse parses a packet from wire bytes into p, reusing p's
// scratch shim header and its slice capacity from earlier decodes, so
// steady-state decoding of header-only packets allocates nothing.
//
// The decoded header aliases p's internal storage: it is valid only
// until the next UnmarshalReuse or NewHdr call on p (or p's release to
// the packet pool). On error p is left in an unspecified state and
// must be decoded again before use.
//
//tva:hotpath
func (p *Packet) UnmarshalReuse(data []byte) error {
	if len(data) < OuterHdrLen {
		return ErrTruncated
	}
	if data[0] != Version {
		return ErrBadVersion
	}
	total := int(binary.BigEndian.Uint32(data[4:8]))
	if total > len(data) || total < OuterHdrLen {
		return ErrTruncated
	}
	p.Class = Class(data[1])
	p.TTL = data[2]
	p.Proto = Proto(data[3])
	p.Src = Addr(binary.BigEndian.Uint32(data[8:12]))
	p.Dst = Addr(binary.BigEndian.Uint32(data[12:16]))
	p.Size = total
	p.Hdr = nil
	p.Payload = nil
	rest := data[OuterHdrLen:total]
	if p.Proto == ProtoShim {
		h := p.NewHdr()
		n, err := h.unmarshal(rest)
		if err != nil {
			p.Hdr = nil
			return err
		}
		p.Proto = h.Proto
		rest = rest[n:]
	}
	if len(rest) > 0 {
		//lint:ignore hotpath payload-carrying packets copy their payload by design; header-only decodes never reach this
		p.Payload = append([]byte(nil), rest...)
	}
	return nil
}

// unmarshal decodes a shim header into h, reusing h's slice capacity.
// h must already be reset.
func (h *CapHdr) unmarshal(data []byte) (int, error) {
	if len(data) < 2 {
		return 0, ErrTruncated
	}
	if data[0]>>4 != Version {
		return 0, ErrBadVersion
	}
	t := data[0] & 0x0f
	h.Kind = Kind(t & typeKind)
	h.Demoted = t&typeDemoted != 0
	h.Proto = Proto(data[1])
	off := 2
	if h.Demoted {
		if len(data) < off+2 {
			return 0, ErrTruncated
		}
		h.DemoteReason = data[off]
		h.DemoteRouter = data[off+1]
		off += 2
	}
	var err error
	switch h.Kind {
	case KindRequest:
		off, err = unmarshalRequest(data, off, &h.Request)
		if err != nil {
			return 0, err
		}
	case KindNonceOnly:
		if h.Nonce, off, err = readNonce(data, off); err != nil {
			return 0, err
		}
	case KindRegular, KindRenewal:
		if h.Nonce, off, err = readNonce(data, off); err != nil {
			return 0, err
		}
		if len(data) < off+4 {
			return 0, ErrTruncated
		}
		ncaps := int(data[off])
		h.Ptr = data[off+1]
		off += 2 // count, ptr
		h.NKB, h.TSec = splitNT(binary.BigEndian.Uint16(data[off : off+2]))
		off += 2
		if h.Caps, off, err = readCaps(h.Caps, data, off, ncaps); err != nil {
			return 0, err
		}
		if h.Kind == KindRenewal {
			off, err = unmarshalRequest(data, off, &h.Request)
			if err != nil {
				return 0, err
			}
		}
	}

	if t&typeReturn != 0 {
		if len(data) < off+1 {
			return 0, ErrTruncated
		}
		rt := data[off]
		off++
		// Reuse the header-owned return-info scratch (and the grant's
		// Caps capacity) so return-carrying decodes stay allocation-free
		// too; the reset literal clears any grant from a prior decode.
		ret := &h.scratchRet
		*ret = ReturnInfo{DemotionNotice: rt&returnDemotion != 0}
		if ret.DemotionNotice {
			if len(data) < off+2 {
				return 0, ErrTruncated
			}
			ret.DemoteReason = data[off]
			ret.DemoteRouter = data[off+1]
			off += 2
		}
		if rt&returnGrant != 0 {
			if len(data) < off+3 {
				return 0, ErrTruncated
			}
			g := &h.scratchGrant
			ncaps := int(data[off])
			off++
			g.NKB, g.TSec = splitNT(binary.BigEndian.Uint16(data[off : off+2]))
			off += 2
			if g.Caps, off, err = readCaps(g.Caps, data, off, ncaps); err != nil {
				return 0, err
			}
			ret.Grant = g
		}
		if rt&returnHops != 0 {
			if h.scratchHops, off, err = readHops(h.scratchHops, data, off); err != nil {
				return 0, err
			}
			ret.Hops = h.scratchHops
		}
		h.Return = ret
	}
	return off, nil
}

func unmarshalRequest(data []byte, off int, r *RequestHdr) (int, error) {
	if len(data) < off+2 {
		return 0, ErrTruncated
	}
	b0, ncaps := data[off], int(data[off+1])
	nids := int(b0 &^ hopsFlag)
	r.WantHops = b0&hopsFlag != 0
	off += 2
	if len(data) < off+2*nids+8*ncaps {
		return 0, ErrTruncated
	}
	if nids > 0 {
		r.PathIDs = r.PathIDs[:0]
		for i := 0; i < nids; i++ {
			r.PathIDs = append(r.PathIDs, PathID(binary.BigEndian.Uint16(data[off:off+2])))
			off += 2
		}
	}
	var err error
	if r.PreCaps, off, err = readCaps(r.PreCaps, data, off, ncaps); err != nil {
		return 0, err
	}
	if r.WantHops {
		r.HopWaits, off, err = readHops(r.HopWaits, data, off)
	}
	return off, err
}

// readHops decodes a counted hop-stamp list into dst's backing array,
// keeping capacity across decodes.
func readHops(dst []HopStamp, data []byte, off int) ([]HopStamp, int, error) {
	if len(data) < off+1 {
		return nil, 0, ErrTruncated
	}
	n := int(data[off])
	off++
	if len(data) < off+5*n {
		return nil, 0, ErrTruncated
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, HopStamp{
			Router: data[off],
			WaitUs: binary.BigEndian.Uint32(data[off+1 : off+5]),
		})
		off += 5
	}
	return dst, off, nil
}

func readNonce(data []byte, off int) (uint64, int, error) {
	if len(data) < off+6 {
		return 0, 0, ErrTruncated
	}
	var b [8]byte
	copy(b[2:], data[off:off+6])
	return binary.BigEndian.Uint64(b[:]), off + 6, nil
}

// readCaps decodes n capabilities into dst's backing array (keeping
// capacity across decodes); a nil dst with n == 0 stays nil.
func readCaps(dst []uint64, data []byte, off, n int) ([]uint64, int, error) {
	if len(data) < off+8*n {
		return nil, 0, ErrTruncated
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, binary.BigEndian.Uint64(data[off:off+8]))
		off += 8
	}
	return dst, off, nil
}
