package packet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom(192, 168, 0, 1)
	if got := a.String(); got != "192.168.0.1" {
		t.Errorf("Addr.String() = %q, want 192.168.0.1", got)
	}
	if AddrFrom(10, 0, 0, 1) == AddrFrom(11, 0, 0, 1) {
		t.Error("distinct addresses compare equal")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindRequest:   "request",
		KindRegular:   "regular",
		KindNonceOnly: "nonce-only",
		KindRenewal:   "renewal",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestWireSizeNonceOnly(t *testing.T) {
	h := &CapHdr{Kind: KindNonceOnly, Nonce: 12345}
	// common(2) + nonce(6)
	if got := h.WireSize(); got != 8 {
		t.Errorf("nonce-only WireSize = %d, want 8", got)
	}
}

func TestWireSizeRequest(t *testing.T) {
	h := &CapHdr{Kind: KindRequest}
	h.Request.PathIDs = []PathID{1, 2}
	h.Request.PreCaps = []uint64{10, 20, 30}
	// common(2) + counts(2) + 2*2 + 3*8
	if got := h.WireSize(); got != 2+2+4+24 {
		t.Errorf("request WireSize = %d, want %d", got, 2+2+4+24)
	}
}

func roundtrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	buf, err := p.Marshal(nil)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(buf) != p.Size && p.Size != 0 {
		// Size is advisory in the sim; Marshal computes the real value.
		t.Logf("note: p.Size=%d, wire=%d", p.Size, len(buf))
	}
	return q
}

func TestRoundtripLegacy(t *testing.T) {
	p := &Packet{
		Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8),
		TTL: 64, Proto: ProtoRaw, Payload: []byte("hello"),
	}
	q := roundtrip(t, p)
	if q.Src != p.Src || q.Dst != p.Dst || q.TTL != 64 || q.Hdr != nil {
		t.Errorf("legacy roundtrip mismatch: %+v", q)
	}
	if string(q.Payload.([]byte)) != "hello" {
		t.Errorf("payload mismatch: %v", q.Payload)
	}
}

func TestRoundtripRequest(t *testing.T) {
	p := &Packet{
		Src: 1, Dst: 2, TTL: 3, Proto: ProtoTCP,
		Hdr: &CapHdr{
			Kind:  KindRequest,
			Proto: ProtoTCP,
			Request: RequestHdr{
				PathIDs: []PathID{0xBEEF, 0x1234},
				PreCaps: []uint64{1 << 60, 42, 7},
			},
		},
	}
	q := roundtrip(t, p)
	if q.Hdr == nil || q.Hdr.Kind != KindRequest {
		t.Fatalf("kind mismatch: %+v", q.Hdr)
	}
	if !reflect.DeepEqual(q.Hdr.Request, p.Hdr.Request) {
		t.Errorf("request lists mismatch:\n got %+v\nwant %+v", q.Hdr.Request, p.Hdr.Request)
	}
	if q.Proto != ProtoTCP {
		t.Errorf("upper proto = %d, want TCP", q.Proto)
	}
}

func TestRoundtripRegularWithReturn(t *testing.T) {
	p := &Packet{
		Src: 9, Dst: 10, TTL: 64, Proto: ProtoTCP,
		Hdr: &CapHdr{
			Kind:  KindRegular,
			Proto: ProtoTCP,
			Nonce: 0x0000ABCDEF123456,
			NKB:   1000,
			TSec:  33,
			Ptr:   1,
			Caps:  []uint64{111, 222},
			Return: &ReturnInfo{
				DemotionNotice: true,
				Grant: &Grant{
					NKB: 32, TSec: 10,
					Caps: []uint64{5, 6, 7},
				},
			},
		},
		Payload: []byte{1, 2, 3},
	}
	q := roundtrip(t, p)
	h := q.Hdr
	if h.Kind != KindRegular || h.Nonce != p.Hdr.Nonce || h.NKB != 1000 || h.TSec != 33 || h.Ptr != 1 {
		t.Errorf("header mismatch: %+v", h)
	}
	if !reflect.DeepEqual(h.Caps, p.Hdr.Caps) {
		t.Errorf("caps mismatch: %v", h.Caps)
	}
	if h.Return == nil || !h.Return.DemotionNotice || h.Return.Grant == nil {
		t.Fatalf("return info lost: %+v", h.Return)
	}
	if h.Return.Grant.NKB != 32 || h.Return.Grant.TSec != 10 ||
		!reflect.DeepEqual(h.Return.Grant.Caps, p.Hdr.Return.Grant.Caps) {
		t.Errorf("grant mismatch: %+v", h.Return.Grant)
	}
}

func TestRoundtripRenewal(t *testing.T) {
	p := &Packet{
		Src: 1, Dst: 2, TTL: 64, Proto: ProtoTCP,
		Hdr: &CapHdr{
			Kind:  KindRenewal,
			Proto: ProtoTCP,
			Nonce: 99,
			NKB:   32,
			TSec:  10,
			Caps:  []uint64{1, 2},
			Request: RequestHdr{
				PathIDs: []PathID{7},
				PreCaps: []uint64{0xFFEE},
			},
		},
	}
	q := roundtrip(t, p)
	if q.Hdr.Kind != KindRenewal || !reflect.DeepEqual(q.Hdr.Request, p.Hdr.Request) ||
		!reflect.DeepEqual(q.Hdr.Caps, p.Hdr.Caps) {
		t.Errorf("renewal roundtrip mismatch: %+v", q.Hdr)
	}
}

func TestRoundtripDemoted(t *testing.T) {
	p := &Packet{
		Src: 1, Dst: 2, TTL: 1, Proto: ProtoRaw,
		Hdr: &CapHdr{
			Kind: KindNonceOnly, Proto: ProtoRaw, Nonce: 5,
			Demoted: true, DemoteReason: 3, DemoteRouter: 7,
		},
	}
	q := roundtrip(t, p)
	if !q.Hdr.Demoted {
		t.Error("demoted bit lost on the wire")
	}
	if q.Hdr.DemoteReason != 3 || q.Hdr.DemoteRouter != 7 {
		t.Errorf("demotion cause lost on the wire: reason=%d router=%d",
			q.Hdr.DemoteReason, q.Hdr.DemoteRouter)
	}
}

func TestNonceMasked48Bits(t *testing.T) {
	p := &Packet{
		Src: 1, Dst: 2, Proto: ProtoRaw,
		Hdr: &CapHdr{Kind: KindNonceOnly, Proto: ProtoRaw, Nonce: ^uint64(0)},
	}
	q := roundtrip(t, p)
	if q.Hdr.Nonce != NonceMask {
		t.Errorf("nonce = %x, want %x (48 bits)", q.Hdr.Nonce, NonceMask)
	}
}

func TestNTFieldBounds(t *testing.T) {
	// N is 10 bits and T is 6: values beyond the field width must not
	// bleed into each other.
	p := &Packet{
		Src: 1, Dst: 2, Proto: ProtoRaw,
		Hdr: &CapHdr{Kind: KindRegular, Proto: ProtoRaw, NKB: MaxNKB, TSec: MaxTSeconds, Caps: []uint64{1}},
	}
	q := roundtrip(t, p)
	if q.Hdr.NKB != MaxNKB || q.Hdr.TSec != MaxTSeconds {
		t.Errorf("N/T roundtrip: got %d/%d want %d/%d", q.Hdr.NKB, q.Hdr.TSec, MaxNKB, MaxTSeconds)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short input should fail")
	}
	p := &Packet{Src: 1, Dst: 2, Proto: ProtoRaw, Hdr: &CapHdr{Kind: KindRegular, Proto: ProtoRaw, Caps: []uint64{1, 2, 3}}}
	buf, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			// Cuts inside the payload region are legal only if the
			// length field still fits; here there is no payload so
			// every cut must error.
			t.Errorf("truncated at %d should fail", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 9 // outer version
	if _, err := Unmarshal(bad); err != ErrBadVersion {
		t.Errorf("bad version: got %v", err)
	}
}

func TestMarshalRejectsOversizedLists(t *testing.T) {
	h := &CapHdr{Kind: KindRegular, Caps: make([]uint64, MaxCaps+1)}
	p := &Packet{Hdr: h}
	if _, err := p.Marshal(nil); err != ErrTooMany {
		t.Errorf("oversized caps: got %v, want ErrTooMany", err)
	}
}

func TestMarshalRejectsOpaquePayload(t *testing.T) {
	p := &Packet{Payload: 42}
	if _, err := p.Marshal(nil); err == nil {
		t.Error("non-[]byte payload should not marshal")
	}
}

// randomHdr builds a random but valid header for property tests.
func randomHdr(rng *rand.Rand) *CapHdr {
	h := &CapHdr{
		Kind:    Kind(rng.Intn(4)),
		Demoted: rng.Intn(2) == 0,
		Proto:   Proto(rng.Intn(256)),
		Nonce:   rng.Uint64() & NonceMask,
		NKB:     uint16(rng.Intn(MaxNKB + 1)),
		TSec:    uint8(rng.Intn(MaxTSeconds + 1)),
	}
	if h.Demoted {
		h.DemoteReason = uint8(rng.Intn(256))
		h.DemoteRouter = uint8(rng.Intn(256))
	}
	fillReq := func() {
		for i := 0; i < rng.Intn(4); i++ {
			h.Request.PathIDs = append(h.Request.PathIDs, PathID(rng.Uint32()))
		}
		for i := 0; i < rng.Intn(5); i++ {
			h.Request.PreCaps = append(h.Request.PreCaps, rng.Uint64())
		}
	}
	switch h.Kind {
	case KindRequest:
		fillReq()
		h.Nonce, h.NKB, h.TSec = 0, 0, 0
	case KindNonceOnly:
		h.NKB, h.TSec = 0, 0
	case KindRegular, KindRenewal:
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			h.Caps = append(h.Caps, rng.Uint64())
		}
		h.Ptr = uint8(rng.Intn(n))
		if h.Kind == KindRenewal {
			fillReq()
		}
	}
	if rng.Intn(2) == 0 {
		ret := &ReturnInfo{DemotionNotice: rng.Intn(2) == 0}
		if ret.DemotionNotice {
			ret.DemoteReason = uint8(rng.Intn(256))
			ret.DemoteRouter = uint8(rng.Intn(256))
		}
		if rng.Intn(2) == 0 {
			g := &Grant{NKB: uint16(rng.Intn(MaxNKB + 1)), TSec: uint8(rng.Intn(MaxTSeconds + 1))}
			for i := 0; i < rng.Intn(4); i++ {
				g.Caps = append(g.Caps, rng.Uint64())
			}
			ret.Grant = g
		}
		if ret.DemotionNotice || ret.Grant != nil {
			h.Return = ret
		}
	}
	return h
}

// TestPropertyRoundtrip: marshal∘unmarshal is identity and WireSize
// matches the marshaled length, across random headers.
func TestPropertyRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		h := randomHdr(rng)
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		p := &Packet{
			Src:   Addr(rng.Uint32()),
			Dst:   Addr(rng.Uint32()),
			TTL:   uint8(rng.Intn(256)),
			Class: Class(rng.Intn(3)),
			Proto: h.Proto,
			Hdr:   h,
		}
		if len(payload) > 0 {
			p.Payload = payload
		}
		buf, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("iter %d: Marshal: %v (hdr %+v)", i, err, h)
		}
		if want := OuterHdrLen + h.WireSize() + len(payload); len(buf) != want {
			t.Fatalf("iter %d: wire length %d != WireSize sum %d", i, len(buf), want)
		}
		q, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("iter %d: Unmarshal: %v", i, err)
		}
		normalize := func(h *CapHdr) *CapHdr {
			c := h.Clone()
			if len(c.Request.PathIDs) == 0 {
				c.Request.PathIDs = nil
			}
			if len(c.Request.PreCaps) == 0 {
				c.Request.PreCaps = nil
			}
			if len(c.Caps) == 0 {
				c.Caps = nil
			}
			return c
		}
		if !reflect.DeepEqual(normalize(q.Hdr), normalize(p.Hdr)) {
			t.Fatalf("iter %d: header mismatch\n got %+v\nwant %+v", i, q.Hdr, p.Hdr)
		}
		if q.Src != p.Src || q.Dst != p.Dst || q.TTL != p.TTL || q.Class != p.Class {
			t.Fatalf("iter %d: outer mismatch", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{
		Src: 1, Dst: 2,
		Hdr: &CapHdr{
			Kind: KindRegular, Caps: []uint64{1, 2},
			Return: &ReturnInfo{Grant: &Grant{Caps: []uint64{9}}},
		},
	}
	q := p.Clone()
	q.Hdr.Caps[0] = 99
	q.Hdr.Return.Grant.Caps[0] = 98
	if p.Hdr.Caps[0] == 99 || p.Hdr.Return.Grant.Caps[0] == 98 {
		t.Error("Clone shares slices with the original")
	}
}

func TestPropertyQuickNT(t *testing.T) {
	f := func(nkb uint16, tsec uint8) bool {
		nkb %= MaxNKB + 1
		tsec %= MaxTSeconds + 1
		v := (nkb&MaxNKB)<<6 | uint16(tsec&MaxTSeconds)
		gotN, gotT := splitNT(v)
		return gotN == nkb && gotT == tsec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalRobustAgainstGarbage feeds random and bit-flipped bytes
// to the wire parser: it must never panic and must either error or
// return a structurally valid packet (an attacker controls every byte
// a router parses).
func TestUnmarshalRobustAgainstGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		if len(buf) > 0 && rng.Intn(2) == 0 {
			buf[0] = Version // exercise deeper paths
		}
		p, err := Unmarshal(buf)
		if err != nil {
			continue
		}
		if p.Size > len(buf) {
			t.Fatalf("iter %d: parsed Size %d beyond input %d", i, p.Size, len(buf))
		}
	}
	// Bit-flip corruption of valid packets.
	valid := &Packet{
		Src: 1, Dst: 2, TTL: 3, Proto: ProtoTCP,
		Hdr: &CapHdr{
			Kind: KindRegular, Proto: ProtoTCP, Nonce: 7, NKB: 32, TSec: 10,
			Caps:   []uint64{1, 2},
			Return: &ReturnInfo{Grant: &Grant{NKB: 4, TSec: 5, Caps: []uint64{9}}},
		},
	}
	base, err := valid.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		buf := append([]byte(nil), base...)
		for flips := 0; flips <= rng.Intn(4); flips++ {
			pos := rng.Intn(len(buf))
			buf[pos] ^= 1 << uint(rng.Intn(8))
		}
		Unmarshal(buf) // must not panic
	}
}
