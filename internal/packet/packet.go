// Package packet defines the TVA packet model: an IPv4-like outer
// header plus the capability shim header of Fig. 5 (request, regular
// with capabilities, regular with nonce only, renewal; demotion and
// return-info bits; return info carrying either a demotion notification
// or a capability grant).
//
// The same structs serve two consumers: the discrete-event simulator
// passes *Packet values around directly (sizes are computed from
// WireSize so queueing behaviour matches the wire), and the userspace
// overlay marshals them to bytes with Marshal/Unmarshal.
package packet

import (
	"fmt"

	"tva/internal/tvatime"
)

// Addr is a 32-bit network address, formatted like IPv4 dotted quad.
type Addr uint32

// String implements fmt.Stringer.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// AddrFrom builds an Addr from four octets.
func AddrFrom(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// Proto identifies the payload above the shim (or above IP for legacy
// packets).
type Proto uint8

// Upper protocols used in this reproduction.
const (
	ProtoRaw     Proto = 0 // opaque payload (attack traffic, overlay data)
	ProtoTCP     Proto = 6
	ProtoControl Proto = 252 // bare shim control carrier (return info only)
)

// Kind is the two-bit packet kind from the common header type field.
type Kind uint8

// Packet kinds (Fig. 5, low two bits of the type field).
const (
	KindRequest   Kind = 0 // xx00: request
	KindRegular   Kind = 1 // xx01: regular with capabilities
	KindNonceOnly Kind = 2 // xx10: regular with nonce only
	KindRenewal   Kind = 3 // xx11: renewal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindRegular:
		return "regular"
	case KindNonceOnly:
		return "nonce-only"
	case KindRenewal:
		return "renewal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Class is the forwarding class a router assigns to a packet after
// capability processing (Fig. 2): rate-limited requests, preferentially
// forwarded regular packets, and low-priority legacy traffic (which
// includes demoted packets).
type Class uint8

// Forwarding classes.
const (
	ClassLegacy Class = iota
	ClassRequest
	ClassRegular
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassLegacy:
		return "legacy"
	case ClassRequest:
		return "request"
	case ClassRegular:
		return "regular"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// PathID is the 16-bit trust-boundary tag routers stamp on requests
// (§3.2); the most recent tag identifies the request fair-queue.
type PathID uint16

// Capability sizes and limits from Fig. 3 and Fig. 5.
const (
	// MaxCaps bounds the number of per-router capability slots a
	// packet can carry (8-bit count field).
	MaxCaps = 255
	// MaxN is the largest byte authorization expressible in the 10-bit
	// N field, in KB units.
	MaxNKB = 1<<10 - 1
	// MaxT is the largest validity period expressible in the 6-bit T
	// field, in seconds. The modulo-256 router timestamp requires
	// T <= 127 for unambiguous comparison; 63 satisfies that.
	MaxTSeconds = 1<<6 - 1
	// NonceMask keeps the low 48 bits, the flow nonce width.
	NonceMask = uint64(1)<<48 - 1
)

// HopStamp is one router's queue-wait report: the router's ID and its
// current output-queue wait estimate in microseconds. Routers append
// one per hop to requests that opt in (RequestHdr.WantHops), and the
// destination echoes the list in return info, giving the sender a
// per-hop latency breakdown of the forward path (tvaping prints it).
type HopStamp struct {
	Router uint8
	WaitUs uint32
}

// RequestHdr is the variable part of a request packet: the path-id and
// pre-capability lists routers fill in on the way to the destination.
// Fig. 5 interleaves (path-id, blank capability) pairs; we keep two
// counted lists because only trust-boundary routers add path-ids while
// every router adds a pre-capability (see DESIGN.md §2).
type RequestHdr struct {
	PathIDs []PathID
	PreCaps []uint64

	// WantHops asks path routers to stamp HopStamps alongside their
	// pre-capabilities. It rides the top bit of the path-id count byte,
	// so requests that do not opt in are wire-identical to the pre-hop
	// format (the simulator's byte accounting is unchanged).
	WantHops bool
	HopWaits []HopStamp
}

// Grant is a destination's authorization: the right to send N bytes
// within T seconds using the per-router capabilities in Caps (§3.5).
type Grant struct {
	NKB  uint16 // authorized bytes, KB units (10 bits on the wire)
	TSec uint8  // validity period, seconds (6 bits on the wire)
	Caps []uint64
}

// N returns the authorized byte count.
func (g Grant) N() int64 { return int64(g.NKB) * 1024 }

// ReturnInfo travels in the reverse direction piggybacked on a packet
// when the return bit of the common header is set: a demotion
// notification, a capability grant, or both.
type ReturnInfo struct {
	DemotionNotice bool
	// DemoteReason/DemoteRouter echo the demoted packet's cause bytes
	// back to the sender (valid only when DemotionNotice is set).
	// DemoteReason is a telemetry.DropReason value kept as a raw byte
	// so packet does not depend on telemetry.
	DemoteReason uint8
	DemoteRouter uint8
	Grant        *Grant
	// Hops echoes the hop stamps collected by a WantHops request back
	// to its sender (empty when the request carried none).
	Hops []HopStamp
}

// CapHdr is the TVA shim header carried by all non-legacy packets.
type CapHdr struct {
	Kind    Kind
	Demoted bool
	// DemoteReason/DemoteRouter are stamped by the router that demotes
	// a packet (§3.8): which check failed (a telemetry.DropReason value
	// as a raw byte) and which router it was. They ride the last two
	// bytes of the demoted wire encoding so the destination can echo
	// them in return info; zero when Demoted is false.
	DemoteReason uint8
	DemoteRouter uint8
	Proto        Proto // upper protocol

	// Request packets (and the renewal part of renewal packets).
	Request RequestHdr

	// Regular, nonce-only and renewal packets.
	Nonce uint64 // 48-bit flow nonce
	NKB   uint16
	TSec  uint8
	Caps  []uint64
	// Ptr is the capability pointer (Fig. 5): the index of the next
	// router's capability in Caps. The sender zeroes it; each
	// capability router on the path advances it.
	Ptr uint8

	// Optional reverse-direction information.
	Return *ReturnInfo

	// scratchRet/scratchGrant back the Return pointer produced by
	// unmarshal: decoding return info reuses them (and scratchGrant's
	// Caps capacity) instead of allocating per packet, the same idiom
	// as the packet-owned scratch header itself. They are valid only
	// until the next decode into this header; Clone detaches them.
	// scratchHops is the same treatment for the echoed hop-stamp list.
	scratchRet   ReturnInfo
	scratchGrant Grant
	scratchHops  []HopStamp
}

// Packet is one packet in flight. Size is the total wire size in bytes
// (outer header + shim + payload) and is what the simulator charges
// against link bandwidth and capability byte counts.
type Packet struct {
	Src, Dst Addr
	TTL      uint8
	Proto    Proto // ProtoShim if Hdr != nil, else the legacy protocol
	Size     int

	// Hdr is the capability shim header; nil for pure legacy packets.
	Hdr *CapHdr

	// Class is the forwarding class assigned by the most recent
	// router's capability processing; hosts leave it at the zero
	// value.
	Class Class

	// Payload carries the upper-layer content: a marshaled byte slice
	// in the overlay, or an in-memory object (e.g. a TCP segment) in
	// the simulator. It may be nil for generated flood traffic whose
	// content does not matter.
	Payload any

	// SentAt is stamped by the sending host shim (virtual time) and
	// EnqueuedAt by each interface at Enqueue; telemetry histograms
	// read them at delivery/dequeue. Neither is on the wire.
	SentAt     tvatime.Time
	EnqueuedAt tvatime.Time

	// TraceID is the packet's flight-recorder identity: assigned (from
	// a monotonic counter) the first time the packet is injected into a
	// traced simulation, 0 when untraced. Clones (impairment
	// duplication) share their original's ID. Not on the wire; wiped by
	// the pool reset like every other field.
	TraceID uint64

	// scratch is the packet-owned reusable shim header behind NewHdr
	// and UnmarshalReuse; its slice capacity survives resets so the
	// hot path does not reallocate per packet. pooled marks packets
	// owned by the package pool (see pool.go).
	scratch *CapHdr
	pooled  bool
}

// OuterHdrLen is the size of the IPv4-like outer header.
const OuterHdrLen = 20

// HdrWireSize returns the marshaled size of the shim header in bytes,
// or 0 if the packet is legacy.
func (p *Packet) HdrWireSize() int {
	if p.Hdr == nil {
		return 0
	}
	return p.Hdr.WireSize()
}

// WireSize returns the marshaled size of the shim header.
func (h *CapHdr) WireSize() int {
	// Common header: 2 bytes (version|type, upper protocol), plus the
	// demotion cause bytes when the demoted bit is set.
	n := 2
	if h.Demoted {
		n += 2 // demote reason, demoting router
	}
	switch h.Kind {
	case KindRequest:
		n += requestWireSize(&h.Request)
	case KindNonceOnly:
		n += 6 // 48-bit nonce
	case KindRegular, KindRenewal:
		n += 6 + 2 + 2 + 8*len(h.Caps) // nonce, counts, N|T, caps
		if h.Kind == KindRenewal {
			n += requestWireSize(&h.Request)
		}
	}
	if h.Return != nil {
		n++ // return type byte
		if h.Return.DemotionNotice {
			n += 2 // echoed demote reason, demoting router
		}
		if h.Return.Grant != nil {
			n += 1 + 2 + 8*len(h.Return.Grant.Caps) // count, N|T, caps
		}
		if len(h.Return.Hops) > 0 {
			n += 1 + 5*len(h.Return.Hops) // count, (router, wait_us) stamps
		}
	}
	return n
}

func requestWireSize(r *RequestHdr) int {
	n := 2 + 2*len(r.PathIDs) + 8*len(r.PreCaps)
	if r.WantHops {
		n += 1 + 5*len(r.HopWaits) // count, (router, wait_us) stamps
	}
	return n
}

// NewHdr resets and attaches the packet's reusable shim header,
// allocating it on first use. The header is owned by the packet: a
// pooled packet recycles it on release, so callers must not retain the
// header past the packet's lifetime.
func (p *Packet) NewHdr() *CapHdr {
	if p.scratch == nil {
		//lint:ignore hotpath one-time allocation per packet; the header is recycled across every later reset and decode
		p.scratch = new(CapHdr)
	}
	p.scratch.Reset()
	p.Hdr = p.scratch
	return p.scratch
}

// Reset clears the header for reuse, keeping allocated slice capacity.
func (h *CapHdr) Reset() {
	h.Kind = 0
	h.Demoted = false
	h.DemoteReason = 0
	h.DemoteRouter = 0
	h.Proto = 0
	h.Request.PathIDs = h.Request.PathIDs[:0]
	h.Request.PreCaps = h.Request.PreCaps[:0]
	h.Request.WantHops = false
	h.Request.HopWaits = h.Request.HopWaits[:0]
	h.Nonce = 0
	h.NKB = 0
	h.TSec = 0
	h.Caps = h.Caps[:0]
	h.Ptr = 0
	h.Return = nil
}

// Clone returns a deep copy of the packet (excluding Payload, which is
// shared: payloads are immutable once sent). The copy owns no scratch
// header and does not belong to the packet pool.
func (p *Packet) Clone() *Packet {
	q := *p
	q.scratch = nil
	q.pooled = false
	if p.Hdr != nil {
		q.Hdr = p.Hdr.Clone()
	}
	return &q
}

// Clone returns a deep copy of the header.
func (h *CapHdr) Clone() *CapHdr {
	g := *h
	// Detach the decode scratch: the copied slice headers would alias
	// h's backing arrays, which the next decode into h overwrites.
	g.scratchRet = ReturnInfo{}
	g.scratchGrant = Grant{}
	g.scratchHops = nil
	g.Request.PathIDs = append([]PathID(nil), h.Request.PathIDs...)
	g.Request.PreCaps = append([]uint64(nil), h.Request.PreCaps...)
	g.Request.HopWaits = append([]HopStamp(nil), h.Request.HopWaits...)
	g.Caps = append([]uint64(nil), h.Caps...)
	if h.Return != nil {
		r := *h.Return
		if h.Return.Grant != nil {
			gr := *h.Return.Grant
			gr.Caps = append([]uint64(nil), h.Return.Grant.Caps...)
			r.Grant = &gr
		}
		r.Hops = append([]HopStamp(nil), h.Return.Hops...)
		g.Return = &r
	}
	return &g
}

// String implements fmt.Stringer for debugging output.
func (p *Packet) String() string {
	kind := "legacy"
	if p.Hdr != nil {
		kind = p.Hdr.Kind.String()
		if p.Hdr.Demoted {
			kind += "/demoted"
		}
	}
	return fmt.Sprintf("%s %s->%s %dB", kind, p.Src, p.Dst, p.Size)
}
