package packet

import "testing"

func TestBatchAppendTakeReset(t *testing.T) {
	b := NewBatch(4)
	if b.Len() != 0 || b.Cap() != 4 || b.Full() {
		t.Fatalf("fresh batch: len=%d cap=%d full=%v", b.Len(), b.Cap(), b.Full())
	}
	p1, p2 := &Packet{Src: 1}, &Packet{Src: 2}
	b.Append(p1)
	b.Append(p2)
	if b.Len() != 2 {
		t.Fatalf("len after two appends = %d", b.Len())
	}
	b.SetClass(1, ClassRegular)
	if b.Class(0) != ClassLegacy || b.Class(1) != ClassRegular {
		t.Fatalf("classes = %v %v", b.Class(0), b.Class(1))
	}
	if b.At(0) != p1 {
		t.Fatal("At(0) != p1")
	}
	if got := b.Take(0); got != p1 {
		t.Fatal("Take(0) != p1")
	}
	if b.At(0) != nil {
		t.Fatal("slot not nil after Take")
	}
	if b.Len() != 2 {
		t.Fatal("Take must not change Len")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := AcquireBatch()
	if b.Cap() < DefaultBatchCap {
		t.Fatalf("pooled batch cap = %d, want >= %d", b.Cap(), DefaultBatchCap)
	}
	b.Append(&Packet{})
	ReleaseBatch(b)
	b2 := AcquireBatch()
	if b2.Len() != 0 {
		t.Fatal("recycled batch not empty")
	}
	ReleaseBatch(b2)
	// No-ops must be safe.
	ReleaseBatch(nil)
	ReleaseBatch(&Batch{})
}

// TestBatchReleaseAll verifies ReleaseAll returns pooled packets to the
// packet pool exactly once: Live() drops back to its baseline and
// slots already taken are skipped.
func TestBatchReleaseAll(t *testing.T) {
	base := Live()
	b := AcquireBatch()
	for i := 0; i < 3; i++ {
		b.Append(AcquirePacket())
	}
	taken := b.Take(1) // now owned by us, not the batch
	b.ReleaseAll()
	if got := Live() - base; got != 1 {
		t.Fatalf("live after ReleaseAll = %d, want 1 (the taken packet)", got)
	}
	Release(taken)
	if got := Live() - base; got != 0 {
		t.Fatalf("live after releasing taken = %d, want 0", got)
	}
}

// TestBatchSteadyStateNoAllocs pins the pool contract: acquiring,
// filling, and releasing a batch at steady state allocates nothing.
func TestBatchSteadyStateNoAllocs(t *testing.T) {
	pkts := make([]*Packet, DefaultBatchCap)
	for i := range pkts {
		pkts[i] = &Packet{}
	}
	// Warm the pools.
	for i := 0; i < 4; i++ {
		b := AcquireBatch()
		for _, p := range pkts {
			b.Append(p)
		}
		ReleaseBatch(b)
	}
	avg := testing.AllocsPerRun(100, func() {
		b := AcquireBatch()
		for _, p := range pkts {
			b.Append(p)
			b.SetClass(b.Len()-1, ClassRegular)
		}
		ReleaseBatch(b)
	})
	if avg != 0 {
		t.Fatalf("steady-state batch cycle allocates %.1f/op, want 0", avg)
	}
}
