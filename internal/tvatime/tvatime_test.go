package tvatime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestConversions(t *testing.T) {
	tm := FromSeconds(1.5)
	if tm.Seconds() != 1 {
		t.Errorf("Seconds = %d, want 1 (truncated)", tm.Seconds())
	}
	if tm.SecondsF() != 1.5 {
		t.Errorf("SecondsF = %f, want 1.5", tm.SecondsF())
	}
	if tm.Add(500*Millisecond) != FromSeconds(2) {
		t.Error("Add wrong")
	}
	if FromSeconds(3).Sub(FromSeconds(1)) != 2*Second {
		t.Error("Sub wrong")
	}
}

func TestBeforeAfter(t *testing.T) {
	a, b := FromSeconds(1), FromSeconds(2)
	if !a.Before(b) || a.After(b) || b.Before(a) || !b.After(a) {
		t.Error("ordering inconsistent")
	}
	if a.Before(a) || a.After(a) {
		t.Error("time is before/after itself")
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(base int64, d int32) bool {
		tm := Time(base)
		dd := Duration(d)
		return tm.Add(dd).Sub(tm) == dd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockFunc(t *testing.T) {
	var c Clock = ClockFunc(func() Time { return 42 })
	if c.Now() != 42 {
		t.Error("ClockFunc broken")
	}
}

func TestWallClockMonotoneEnough(t *testing.T) {
	var w WallClock
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if !b.After(a) {
		t.Error("wall clock did not advance")
	}
}
