// Package tvatime defines the time representation shared by the TVA
// protocol engine, the discrete-event simulator, and the real-time
// overlay. Times are nanoseconds relative to an arbitrary epoch (the
// simulation start, or the Unix epoch for the overlay), which lets the
// same protocol code run against either a virtual or a wall clock.
package tvatime

import "time"

// Time is an instant, in nanoseconds since an arbitrary epoch.
type Time int64

// Duration is a span of time in nanoseconds. It is layout-compatible
// with time.Duration.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as whole seconds since the epoch, truncated.
func (t Time) Seconds() int64 { return int64(t) / int64(Second) }

// SecondsF returns t as fractional seconds since the epoch.
func (t Time) SecondsF() float64 { return float64(t) / float64(Second) }

// FromSeconds converts fractional seconds since the epoch to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Clock supplies the current time. The simulator provides a virtual
// clock; the overlay provides a wall clock.
type Clock interface {
	Now() Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() Time

// Now implements Clock.
func (f ClockFunc) Now() Time { return f() }

// WallClock is a Clock backed by the real time.Now, measured from the
// Unix epoch.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() Time { return Time(time.Now().UnixNano()) }
