// The atomicfield analyzer: once a variable is touched through
// sync/atomic anywhere in the program, every other access must be
// atomic too — a single plain read of a counter that writers update
// with atomic.AddUint64 is a data race the memory model gives no
// meaning to, and one -race never sees unless the interleaving lands.
//
// The check is program-wide in its first pass (an atomic store in
// package A taints the field for a reader in package B; type identity
// is shared across the loaded program) and reports in the requested
// packages:
//
//   - any selector or identifier use of a tainted variable outside a
//     sync/atomic call's address argument;
//   - any 64-bit tainted struct field whose offset under 32-bit (gc,
//     386) layout is not 8-aligned — sync/atomic documents that such
//     fields crash on 32-bit targets unless the struct keeps them
//     8-aligned by construction. Fields of type atomic.Int64/Uint64
//     are exempt: the runtime align64-tags them.
//
// The typed atomic.Uint64-style instruments (internal/metrics) need no
// analysis — their payload is unexported, so non-atomic access does
// not compile.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// AtomicField is the atomicfield analyzer.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "forbid mixed atomic/non-atomic access to a variable and misaligned 64-bit atomic struct fields",
	Run:  runAtomicField,
}

func runAtomicField(prog *Program, pkgs []*Package) []Finding {
	// Pass 1 (whole program): every variable whose address feeds a
	// sync/atomic call, and the exact AST nodes sanctioned by those
	// calls.
	tainted := map[*types.Var]token.Position{} // var -> one atomic use site
	sanctioned := map[ast.Node]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcFor(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				operand := ast.Unparen(addr.X)
				if v := varFor(pkg.Info, operand); v != nil {
					if _, seen := tainted[v]; !seen {
						tainted[v] = prog.Fset.Position(call.Pos())
					}
					sanctioned[operand] = true
				}
				return true
			})
		}
	}
	if len(tainted) == 0 {
		return nil
	}

	// Pass 2 (requested packages): non-atomic uses and 64-bit layout.
	var findings []Finding
	report := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{
			Pos:     prog.Fset.Position(pos),
			Check:   "atomicfield",
			Message: msg,
		})
	}
	// Offsets under the 32-bit layout: if a 64-bit atomic field is
	// 8-aligned there, it is 8-aligned everywhere.
	sizes32 := types.SizesFor("gc", "386")
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if v := varFor(pkg.Info, n); v != nil && !sanctioned[n] {
						if pos, ok := tainted[v]; ok {
							report(n.Pos(), "non-atomic access to "+v.Name()+", which is accessed via sync/atomic at "+pos.String())
						}
					}
				case *ast.Ident:
					// Package-level vars used bare. Declaration sites and
					// selector Sel idents are excluded (Defs / the
					// SelectorExpr case handle those).
					v, ok := pkg.Info.Uses[n].(*types.Var)
					if !ok || v.IsField() || sanctioned[n] {
						return true
					}
					if pos, ok := tainted[v]; ok {
						report(n.Pos(), "non-atomic access to "+v.Name()+", which is accessed via sync/atomic at "+pos.String())
					}
				case *ast.TypeSpec:
					checkAtomicLayout(prog, pkg, n, tainted, sizes32, report)
				}
				return true
			})
		}
	}
	return findings
}

// varFor resolves a selector or identifier to the variable it reads or
// writes, when that variable could be the target of an atomic op.
func varFor(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// checkAtomicLayout flags tainted 64-bit fields that a 32-bit layout
// places off 8-byte alignment.
func checkAtomicLayout(prog *Program, pkg *Package, spec *ast.TypeSpec, tainted map[*types.Var]token.Position, sizes types.Sizes, report func(token.Pos, string)) {
	obj, ok := pkg.Info.Defs[spec.Name]
	if !ok || obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := sizes.Offsetsof(fields)
	for i, fv := range fields {
		if _, isTainted := tainted[fv]; !isTainted {
			continue
		}
		b, ok := fv.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		switch b.Kind() {
		case types.Int64, types.Uint64:
		default:
			continue
		}
		if offsets[i]%8 != 0 {
			// Anchor at the field's declaration inside this spec.
			pos := fieldPos(spec, fv.Name())
			report(pos, "64-bit atomic field "+fv.Name()+" sits at 32-bit offset "+strconv.FormatInt(offsets[i], 10)+", not 8-aligned; move it to the front of "+spec.Name.Name+" or use atomic.Uint64/Int64")
		}
	}
}

// fieldPos finds the named field's position within a struct type spec.
func fieldPos(spec *ast.TypeSpec, name string) token.Pos {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return spec.Pos()
	}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return n.Pos()
			}
		}
	}
	return spec.Pos()
}
