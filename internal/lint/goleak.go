// The goleak analyzer: every `go` statement must come with evidence
// that the goroutine can finish. A looping goroutine with no exit
// signal outlives its owner, pins its captures, and — in this repo —
// keeps ticking a sealed metrics registry or holding a socket after
// Close. Accepted evidence, scanned over the spawned body (func
// literal, or the declaration of a directly named module function):
//
//   - no loop at all: a straight-line body terminates by itself;
//   - a sync.WaitGroup.Done call (typically deferred) — someone joins
//     the goroutine, so its lifetime is managed;
//   - a receive from, or range over, a plausible completion channel: a
//     done/stop channel, ctx.Done(), or a data channel the owner
//     closes. Timer sources prove nothing and do not count: a channel
//     obtained directly from time.Tick or time.After, or the C field
//     of a time.Ticker/time.Timer, only ever says "keep going".
//
// `for range time.Tick(d)` — the exact pattern this repo's router
// daemon used — is therefore a finding, and select { <-t.C / <-stop }
// is the fix. Goroutines that genuinely live for the whole process
// carry //lint:ignore goleak <reason>.
//
// This is a shutdown-edge existence check, not a liveness proof: a
// select on a done channel that is never closed still passes. The
// analyzer pins the convention; the race job exercises it.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak is the goleak analyzer.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "require every go statement to have a provable shutdown edge (done-channel receive, WaitGroup, or a loop-free body)",
	Run:  runGoLeak,
}

func runGoLeak(prog *Program, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				report := func(msg string) {
					findings = append(findings, Finding{
						Pos:     prog.Fset.Position(g.Pos()),
						Check:   "goleak",
						Message: msg,
					})
				}
				body, bodyPkg := goBody(prog, pkg, g.Call)
				if body == nil {
					report("cannot resolve the goroutine body to prove a shutdown edge; spawn a func literal or a module function, or //lint:ignore goleak <reason>")
					return true
				}
				if !provesShutdown(prog, bodyPkg, body) {
					report("goroutine loops with no shutdown edge (no done-channel receive, no WaitGroup.Done; timer channels do not count); select on a stop channel or //lint:ignore goleak <reason>")
				}
				return true
			})
		}
	}
	return findings
}

// goBody resolves the spawned call to the function body that will run:
// the literal itself, or the declaration of a statically named module
// function.
func goBody(prog *Program, pkg *Package, call *ast.CallExpr) (*ast.BlockStmt, *Package) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pkg
	}
	if fn := funcFor(pkg.Info, call); fn != nil && prog.InModule(fn.Pkg()) {
		if fd, ok := prog.FuncDecls[fn]; ok && fd.Decl.Body != nil {
			return fd.Decl.Body, fd.Pkg
		}
	}
	return nil, nil
}

// provesShutdown scans body (nested literals included — a shutdown
// edge anywhere in the spawned tree counts) for the accepted evidence.
func provesShutdown(prog *Program, pkg *Package, body *ast.BlockStmt) bool {
	hasLoop, hasEdge := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			if isChanExpr(pkg, n.X) && !timerChan(pkg, n.X) {
				hasEdge = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !timerChan(pkg, n.X) {
				hasEdge = true
			}
		case *ast.CallExpr:
			if fn := funcFor(pkg.Info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Done" && recvIsSyncType(fn, "WaitGroup") {
				hasEdge = true
			}
		}
		return true
	})
	return !hasLoop || hasEdge
}

// isChanExpr reports whether e has channel type.
func isChanExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// timerChan reports whether e is a channel that only says "keep
// going": the result of time.Tick / time.After, or the C field of a
// time.Ticker / time.Timer.
func timerChan(pkg *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := funcFor(pkg.Info, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			return fn.Name() == "Tick" || fn.Name() == "After"
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
			return namedType(tv.Type, "time", "Ticker") || namedType(tv.Type, "time", "Timer")
		}
	}
	return false
}
