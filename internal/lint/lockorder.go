// The lockorder analyzer: lock discipline for the concurrent packages
// (the overlay router/host/shard engine and the lock-free-adjacent
// metrics plumbing) that `-race` can only probe probabilistically.
//
// Three rules, all checked per function body (a func literal is its
// own scope — goroutine bodies pair their own locks):
//
//   - pairing: a mutex Lock (or RLock) must have a matching Unlock
//     (RUnlock) somewhere in the same scope — a plain call on some
//     path, or a defer. A scope that acquires and provably never
//     releases is a finding. The overlay's unlock-inside-select-case
//     idiom passes: any matching release in the scope counts.
//   - ordering: whenever two distinct mutexes are held nested inside
//     one scope, the acquisition edge (held → acquired) joins a
//     program-wide graph; an edge whose reverse is reachable is an
//     inversion (two goroutines taking the locks in opposite order
//     deadlock). Re-locking the same mutex expression while it is
//     held is reported as a self-deadlock.
//   - hot-path blocking: a //tva:hotpath function must not block
//     while holding a lock — no channel send or receive, no select
//     without a default, no time.Sleep, no WaitGroup.Wait. (Cond.Wait
//     is exempt: it releases the lock it waits on.)
//
// The walk is a linear abstract interpretation: branches run with a
// copy of the held set and the straight-line continuation keeps the
// entry state, so conditional unlocks never poison the suffix.
// Interprocedural nesting (f locks A, calls g which locks B) is out of
// scope — annotate with //lint:ignore where a genuine handoff exists.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder is the lockorder analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce Lock/Unlock pairing per scope, a consistent global lock order, and no blocking while a //tva:hotpath function holds a lock",
	Run:  runLockOrder,
}

// lockEdge is one held→acquired nesting observation.
type lockEdge struct{ from, to string }

// heldLock is one mutex on the abstract lock stack. key identifies the
// mutex by declaration (type.field or package var) for cross-function
// ordering; ekey identifies the concrete expression so two instances
// of the same type never look like a recursive acquire.
type heldLock struct {
	key  string
	ekey string
	pos  token.Pos
}

func runLockOrder(prog *Program, pkgs []*Package) []Finding {
	w := &lockWalker{
		prog:  prog,
		edges: map[lockEdge]token.Pos{},
	}
	for _, pkg := range pkgs {
		w.pkg = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w.runScope(fd.Body, funcDisplayName(fd), hasHotPathMarker(fd))
			}
			// Every func literal is its own pairing scope: goroutine and
			// defer bodies acquire and release on their own timeline.
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.runScope(lit.Body, "func literal", false)
				}
				return true
			})
		}
	}

	// Ordering: report every edge whose reverse is reachable — each
	// acquisition site participating in a cycle gets its own finding.
	for e, pos := range w.edges {
		if w.reaches(e.to, e.from) {
			w.findings = append(w.findings, Finding{
				Pos:   prog.Fset.Position(pos),
				Check: "lockorder",
				Message: fmt.Sprintf("inconsistent lock order: %s acquired while holding %s, but elsewhere %s is acquired (possibly transitively) while holding %s",
					e.to, e.from, e.from, e.to),
			})
		}
	}
	return w.findings
}

type lockWalker struct {
	prog     *Program
	pkg      *Package
	findings []Finding

	edges map[lockEdge]token.Pos // global held→acquired graph

	// Per-scope state, reset by runScope. acquired/released are keyed
	// by lock key plus mode ("/w" or "/r") so RLock demands RUnlock.
	hot      bool
	scope    string
	acquired map[string]acquireSite
	released map[string]bool
}

type acquireSite struct {
	pos  token.Pos
	disp string
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	w.findings = append(w.findings, Finding{
		Pos:     w.prog.Fset.Position(pos),
		Check:   "lockorder",
		Message: fmt.Sprintf(format, args...),
	})
}

// runScope walks one function (or func literal) body and then checks
// acquire/release pairing for everything it locked.
func (w *lockWalker) runScope(body *ast.BlockStmt, name string, hot bool) {
	w.hot = hot
	w.scope = name
	w.acquired = map[string]acquireSite{}
	w.released = map[string]bool{}
	w.walkStmts(body.List, nil)
	for mode, site := range w.acquired {
		if !w.released[mode] {
			verb := "Unlock"
			if strings.HasSuffix(mode, "/r") {
				verb = "RUnlock"
			}
			w.report(site.pos, "%s is locked in %s with no matching %s (plain or deferred) anywhere in the function",
				site.disp, name, verb)
		}
	}
}

// walkStmts interprets a statement list linearly. Branch bodies run on
// a copy of held; the continuation keeps the entry state.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
	}
	return held
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, ekey, method, ok := w.mutexCall(call); ok {
				return w.mutexOp(call.Pos(), key, ekey, method, held)
			}
		}
		w.blockingScan(s, held)
	case *ast.DeferStmt:
		w.deferredReleases(s.Call)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.walkStmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		if w.hot && len(held) > 0 {
			if tv, ok := w.pkg.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.report(s.Pos(), "channel range while %s holds %s on the hot path", w.scope, heldNames(held))
				}
			}
		}
		w.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		if w.hot && len(held) > 0 && !selectHasDefault(s) {
			w.report(s.Pos(), "select with no default blocks while %s holds %s on the hot path", w.scope, heldNames(held))
		}
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CommClause).Body, cloneHeld(held))
		}
	case *ast.SendStmt:
		if w.hot && len(held) > 0 {
			w.report(s.Pos(), "channel send while %s holds %s on the hot path", w.scope, heldNames(held))
		}
	case *ast.GoStmt:
		// The goroutine body is its own scope (enumerated separately).
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	default:
		w.blockingScan(s, held)
	}
	return held
}

// mutexOp applies one Lock/Unlock-family call to the abstract state.
func (w *lockWalker) mutexOp(pos token.Pos, key, ekey, method string, held []heldLock) []heldLock {
	disp := key
	switch method {
	case "Lock", "RLock":
		for _, h := range held {
			if h.key != key {
				// Distinct mutexes nested: record the ordering edge.
				if _, seen := w.edges[lockEdge{h.key, key}]; !seen {
					w.edges[lockEdge{h.key, key}] = pos
				}
			} else if h.ekey == ekey {
				w.report(pos, "%s.%s while %s already holds %s (self-deadlock)", disp, method, w.scope, disp)
			}
			// Same key, different expression: two instances of one
			// type — unordered by this analysis, deliberately silent.
		}
		w.acquireOnce(pairKey(key, method), pos, disp)
		return append(held, heldLock{key: key, ekey: ekey, pos: pos})
	case "Unlock", "RUnlock":
		w.released[pairKey(key, method)] = true
		// Pop the most recent matching hold (best effort).
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key {
				return append(held[:i:i], held[i+1:]...)
			}
		}
	}
	return held
}

func (w *lockWalker) acquireOnce(mode string, pos token.Pos, disp string) {
	if _, ok := w.acquired[mode]; !ok {
		w.acquired[mode] = acquireSite{pos: pos, disp: disp}
	}
}

// pairKey folds Lock/Unlock and RLock/RUnlock onto a shared key+mode.
func pairKey(key, method string) string {
	if strings.HasPrefix(method, "R") {
		return key + "/r"
	}
	return key + "/w"
}

// deferredReleases credits `defer mu.Unlock()` and unlocks inside a
// deferred func literal to the enclosing scope's release set.
func (w *lockWalker) deferredReleases(call *ast.CallExpr) {
	if key, _, method, ok := w.mutexCall(call); ok {
		if method == "Unlock" || method == "RUnlock" {
			w.released[pairKey(key, method)] = true
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if key, _, method, ok := w.mutexCall(c); ok && (method == "Unlock" || method == "RUnlock") {
					w.released[pairKey(key, method)] = true
				}
			}
			return true
		})
	}
}

// blockingScan flags blocking operations nested in a simple statement
// while a hot-path function holds a lock. Func literals are skipped —
// their bodies run on another goroutine's timeline.
func (w *lockWalker) blockingScan(s ast.Stmt, held []heldLock) {
	if !w.hot || len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), "channel receive while %s holds %s on the hot path", w.scope, heldNames(held))
			}
		case *ast.CallExpr:
			if fn := funcFor(w.pkg.Info, n); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					w.report(n.Pos(), "time.Sleep while %s holds %s on the hot path", w.scope, heldNames(held))
				case fn.Pkg().Path() == "sync" && fn.Name() == "Wait" && recvIsSyncType(fn, "WaitGroup"):
					w.report(n.Pos(), "WaitGroup.Wait while %s holds %s on the hot path", w.scope, heldNames(held))
				}
			}
		}
		return true
	})
}

// mutexCall resolves call to a sync.Mutex / sync.RWMutex method and a
// stable identity for the mutex it targets.
func (w *lockWalker) mutexCall(call *ast.CallExpr) (key, ekey, method string, ok bool) {
	fn := funcFor(w.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	if !recvIsSyncType(fn, "Mutex") && !recvIsSyncType(fn, "RWMutex") {
		return "", "", "", false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", "", false
	}
	recv := ast.Unparen(sel.X)
	return w.lockKey(recv), exprKey(recv), fn.Name(), true
}

// recvIsSyncType reports whether fn's receiver is sync.<name> (by
// value or pointer).
func recvIsSyncType(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedType(sig.Recv().Type(), "sync", name)
}

// lockKey renders a declaration-level identity for a mutex expression:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level
// mutexes, the bare expression otherwise (function locals).
func (w *lockWalker) lockKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := w.pkg.Info.Types[ast.Unparen(e.X)]; ok {
			t := tv.Type
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
	case *ast.Ident:
		var obj types.Object
		if o, ok := w.pkg.Info.Uses[e]; ok {
			obj = o
		} else if o, ok := w.pkg.Info.Defs[e]; ok {
			obj = o
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + e.Name
		}
		// Embedded-mutex method call (x.Lock() with x the struct):
		// fall through to the expression itself.
	}
	return exprKey(e)
}

// reaches reports whether `to` is reachable from `from` in the edge
// graph (BFS; the graph is tiny).
func (w *lockWalker) reaches(from, to string) bool {
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for e := range w.edges {
			if e.from == cur && !seen[e.to] {
				if e.to == to {
					return true
				}
				seen[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return false
}

func heldNames(held []heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.key
	}
	return strings.Join(names, ", ")
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// hasHotPathMarker reports whether fd's doc comment carries
// //tva:hotpath (shared with the hotpath analyzer's root scan).
func hasHotPathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, HotPathMarker) {
			return true
		}
	}
	return false
}
