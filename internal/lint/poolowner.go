// The poolowner analyzer: packet.AcquirePacket transfers ownership,
// and the pool's contract (pool.go) is that every acquired packet
// reaches *exactly one* terminal consumption per return path — a
// packet.Release, or a handoff that transfers ownership onward (being
// passed to a call, returned, or stored into a structure). A leaked
// packet quietly re-enables the per-packet allocation PR 1 removed; a
// double release poisons the pool with a packet someone still holds.
//
// packet.AcquireBatch follows the same contract with ReleaseBatch (or
// its terminal-consumer form, the ReleaseAll method) as the release,
// so batch containers are tracked exactly like packets.
//
// The analysis is intraprocedural and branch-sensitive but not
// path-sensitive: it tracks each variable initialized directly from
// packet.AcquirePacket() or packet.AcquireBatch() through the function
// body, merging states at control-flow joins. States per variable are
// sets over {owned, handed, released}:
//
//   - Release(p) with released already possible  -> possible double release
//   - any other use of p after a certain release -> use after release
//   - a return path where p is still exactly owned, with no deferred
//     Release -> leak
//
// Handoffs are deliberately generous — any call taking p may consume
// it, and a conditional enqueue that returns false leaves the caller
// to release, so handed-then-released is legal. The check therefore
// catches structural mistakes (forgotten consumption, two Releases),
// not every possible protocol violation.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolOwner is the poolowner analyzer.
var PoolOwner = &Analyzer{
	Name: "poolowner",
	Doc:  "pooled *packet.Packet and *packet.Batch values must reach exactly one release/handoff on every return path",
	Run:  runPoolOwner,
}

// Ownership state bits.
const (
	stOwned uint8 = 1 << iota
	stHanded
	stReleased
)

func runPoolOwner(prog *Program, pkgs []*Package) []Finding {
	packetPath := prog.Module + "/internal/packet"
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a := &ownerAnalysis{
					prog:       prog,
					pkg:        pkg,
					packetPath: packetPath,
					acquired:   map[*types.Var]token.Position{},
				}
				a.findings = &findings
				env := ownerEnv{}
				term := a.exec(fd.Body, env)
				if !term.terminated {
					a.checkExit(term.env, fd.Body.End(), nil)
				}
			}
		}
	}
	return findings
}

// ownerEnv maps tracked variables to their possible-state bitmask.
type ownerEnv map[*types.Var]uint8

func (e ownerEnv) clone() ownerEnv {
	c := make(ownerEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// merge unions two environments (nil = unreachable).
func merge(a, b ownerEnv) ownerEnv {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

type execResult struct {
	env        ownerEnv
	terminated bool // all paths return/panic before falling through
}

type ownerAnalysis struct {
	prog       *Program
	pkg        *Package
	packetPath string
	acquired   map[*types.Var]token.Position
	deferred   map[*types.Var]bool // vars with a deferred Release
	findings   *[]Finding
}

func (a *ownerAnalysis) report(pos token.Pos, msg string) {
	*a.findings = append(*a.findings, Finding{
		Pos:     a.prog.Fset.Position(pos),
		Check:   "poolowner",
		Message: msg,
	})
}

// checkExit flags owned packets at a return site. results are the
// returned expressions (a returned packet is a handoff).
func (a *ownerAnalysis) checkExit(env ownerEnv, pos token.Pos, results []ast.Expr) {
	for v, st := range env {
		if st != stOwned || a.deferred[v] {
			continue
		}
		returned := false
		for _, r := range results {
			if a.usesVar(r, v) {
				returned = true
				break
			}
		}
		if returned {
			continue
		}
		acq := a.acquired[v]
		a.report(pos, "pooled packet "+v.Name()+" (acquired at line "+itoa(acq.Line)+") leaks on this return path: no Release or handoff")
	}
}

// exec interprets stmt under env, returning the fall-through result.
func (a *ownerAnalysis) exec(stmt ast.Stmt, env ownerEnv) execResult {
	if env == nil {
		return execResult{nil, true}
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		cur := env
		for _, st := range s.List {
			r := a.exec(st, cur)
			if r.terminated {
				return execResult{nil, true}
			}
			cur = r.env
		}
		return execResult{cur, false}

	case *ast.AssignStmt:
		return execResult{a.execAssign(s, env), false}

	case *ast.DeclStmt:
		a.scanUses(s, env)
		return execResult{env, false}

	case *ast.ExprStmt:
		return execResult{a.execExpr(s.X, env), false}

	case *ast.DeferStmt:
		if v := a.releaseTarget(s.Call, env); v != nil {
			if a.deferred == nil {
				a.deferred = map[*types.Var]bool{}
			}
			a.deferred[v] = true
			return execResult{env, false}
		}
		return execResult{a.execExpr(s.Call, env), false}

	case *ast.ReturnStmt:
		env = a.handleUses(s.Results, env)
		a.checkExit(env, s.Pos(), s.Results)
		return execResult{nil, true}

	case *ast.IfStmt:
		if s.Init != nil {
			r := a.exec(s.Init, env)
			env = r.env
		}
		env = a.execCond(s.Cond, env)
		thenR := a.exec(s.Body, env.clone())
		var elseR execResult
		if s.Else != nil {
			elseR = a.exec(s.Else, env.clone())
		} else {
			elseR = execResult{env, false}
		}
		switch {
		case thenR.terminated && elseR.terminated:
			return execResult{nil, true}
		case thenR.terminated:
			return execResult{elseR.env, false}
		case elseR.terminated:
			return execResult{thenR.env, false}
		default:
			return execResult{merge(thenR.env, elseR.env), false}
		}

	case *ast.ForStmt:
		if s.Init != nil {
			env = a.exec(s.Init, env).env
		}
		if s.Cond != nil {
			env = a.execCond(s.Cond, env)
		}
		body := a.exec(s.Body, env.clone())
		if s.Post != nil && body.env != nil {
			body.env = a.exec(s.Post, body.env).env
		}
		// One symbolic iteration: states after zero or one pass.
		return execResult{merge(env, body.env), false}

	case *ast.RangeStmt:
		env = a.execCond(s.X, env)
		body := a.exec(s.Body, env.clone())
		return execResult{merge(env, body.env), false}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return a.execBranches(s, env)

	case *ast.LabeledStmt:
		return a.exec(s.Stmt, env)

	case *ast.GoStmt:
		return execResult{a.execExpr(s.Call, env), false}

	case *ast.SendStmt:
		env = a.execExpr(s.Value, env)
		// A packet sent on a channel is handed to the receiver.
		for v := range env {
			if a.usesVar(s.Value, v) {
				env = a.markHanded(env, v, s.Pos())
			}
		}
		return execResult{env, false}

	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path. The loop
		// approximation merges body entry and exit states, so ending
		// the path here avoids false "already released" merges from
		// `Release(p); continue` arms. (A leak reachable only through
		// a break is missed; the check is deliberately conservative.)
		return execResult{nil, true}

	case *ast.IncDecStmt, *ast.EmptyStmt:
		return execResult{env, false}

	default:
		a.scanUses(stmt, env)
		return execResult{env, false}
	}
}

// execBranches interprets switch/select conservatively: every arm from
// the same entry env, merged (plus the fall-through for switches
// without default).
func (a *ownerAnalysis) execBranches(stmt ast.Stmt, env ownerEnv) execResult {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			env = a.exec(s.Init, env).env
		}
		if s.Tag != nil {
			env = a.execCond(s.Tag, env)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env = a.exec(s.Init, env).env
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out ownerEnv
	allTerminated := true
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			env = a.handleUses(c.List, env)
			stmts = c.Body
		case *ast.CommClause:
			hasDefault = hasDefault || c.Comm == nil
			stmts = c.Body
		}
		r := a.exec(&ast.BlockStmt{List: stmts}, env.clone())
		if !r.terminated {
			out = merge(out, r.env)
			allTerminated = false
		}
	}
	if !hasDefault {
		out = merge(out, env)
		allTerminated = false
	}
	if allTerminated && len(body.List) > 0 {
		return execResult{nil, true}
	}
	return execResult{merge(out, nil), false}
}

// execAssign handles acquisitions, re-acquisitions, handoffs via
// storage, and overwrites.
func (a *ownerAnalysis) execAssign(s *ast.AssignStmt, env ownerEnv) ownerEnv {
	// Right side first: uses of tracked vars in RHS are handoffs when
	// stored, and acquisitions introduce tracking.
	for i, rhs := range s.Rhs {
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if isCall && a.isAcquire(call) && len(s.Lhs) == len(s.Rhs) {
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok {
				if v := a.objOf(id); v != nil {
					if env[v] == stOwned {
						a.report(s.Pos(), "pooled packet "+v.Name()+" reacquired while still owned: previous packet leaks")
					}
					env = env.clone()
					env[v] = stOwned
					a.acquired[v] = a.prog.Fset.Position(call.Pos())
					continue
				}
			}
			continue
		}
		env = a.execExpr(rhs, env)
	}
	// Storing a tracked var through a non-trivial lvalue is a handoff;
	// overwriting a tracked var that is still owned is a leak.
	for i, lhs := range s.Lhs {
		lhs = ast.Unparen(lhs)
		if len(s.Rhs) == len(s.Lhs) {
			if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok && a.isAcquire(call) {
				continue // handled above
			}
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if v := a.objOf(id); v != nil {
				if _, tracked := env[v]; tracked && env[v] == stOwned {
					a.report(s.Pos(), "pooled packet "+v.Name()+" overwritten while still owned: packet leaks")
				}
				if _, tracked := env[v]; tracked {
					env = env.clone()
					delete(env, v) // var now holds something else
				}
			}
			continue
		}
		// p stored into a field/element/pointer: ownership moves with it.
		for v := range env {
			if a.usesVar(s.Rhs[minInt(i, len(s.Rhs)-1)], v) {
				env = a.markHanded(env, v, s.Pos())
			}
		}
	}
	return env
}

// execExpr scans an expression for Release calls, handoffs, and uses
// after release.
func (a *ownerAnalysis) execExpr(e ast.Expr, env ownerEnv) ownerEnv {
	if e == nil {
		return env
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok {
			// A packet stored into a literal moves with the value.
			for _, el := range lit.Elts {
				for v := range env {
					if a.usesVar(el, v) {
						env = a.markHanded(env, v, el.Pos())
					}
				}
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := a.releaseTarget(call, env); v != nil {
			st := env[v]
			if st&stReleased != 0 {
				a.report(call.Pos(), "pooled packet "+v.Name()+" may already be released: possible double release poisons the pool")
			}
			env = env.clone()
			env[v] = stReleased
			return false
		}
		// Any other call taking a tracked var is a (potential) handoff.
		for _, arg := range call.Args {
			for v := range env {
				if a.usesVar(arg, v) {
					env = a.markHanded(env, v, call.Pos())
				}
			}
		}
		return true
	})
	return env
}

// execCond scans a condition/expression context where tracked vars may
// appear in calls.
func (a *ownerAnalysis) execCond(e ast.Expr, env ownerEnv) ownerEnv {
	return a.execExpr(e, env)
}

// handleUses runs execExpr over a list of expressions.
func (a *ownerAnalysis) handleUses(exprs []ast.Expr, env ownerEnv) ownerEnv {
	for _, e := range exprs {
		env = a.execExpr(e, env)
	}
	return env
}

// scanUses applies execExpr to every expression under an opaque
// statement the interpreter does not model specially.
func (a *ownerAnalysis) scanUses(n ast.Node, env ownerEnv) {
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok {
			env = a.execExpr(e, env)
			return false
		}
		return true
	})
}

// markHanded transitions v on a handoff, flagging use-after-release.
func (a *ownerAnalysis) markHanded(env ownerEnv, v *types.Var, pos token.Pos) ownerEnv {
	st := env[v]
	if st == stReleased {
		a.report(pos, "pooled packet "+v.Name()+" used after Release: the pool may already have recycled it")
	}
	env = env.clone()
	env[v] = stHanded
	return env
}

// isAcquire reports whether call takes a value out of a packet pool:
// packet.AcquirePacket() or packet.AcquireBatch(). Both follow the
// same ownership contract, so both introduce tracking.
func (a *ownerAnalysis) isAcquire(call *ast.CallExpr) bool {
	fn := funcFor(a.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != a.packetPath {
		return false
	}
	return fn.Name() == "AcquirePacket" || fn.Name() == "AcquireBatch"
}

// releaseTarget returns the tracked variable terminally consumed by
// call: packet.Release(v), packet.ReleaseBatch(v), or the method form
// v.ReleaseAll() for a tracked v. ReleaseAll counts as the batch's
// release (it ends with ReleaseBatch), so a later ReleaseBatch on the
// same variable is a double release.
func (a *ownerAnalysis) releaseTarget(call *ast.CallExpr, env ownerEnv) *types.Var {
	fn := funcFor(a.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != a.packetPath {
		return nil
	}
	var target ast.Expr
	switch fn.Name() {
	case "Release", "ReleaseBatch":
		if len(call.Args) != 1 {
			return nil
		}
		target = call.Args[0]
	case "ReleaseAll":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		target = sel.X
	default:
		return nil
	}
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return nil
	}
	v := a.objOf(id)
	if v == nil {
		return nil
	}
	if _, tracked := env[v]; !tracked {
		return nil
	}
	return v
}

// objOf resolves an identifier to its variable object.
func (a *ownerAnalysis) objOf(id *ast.Ident) *types.Var {
	if v, ok := a.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := a.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// usesVar reports whether expression e references v.
func (a *ownerAnalysis) usesVar(e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && a.objOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
