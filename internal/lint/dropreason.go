// The dropreason analyzer: PR 2's drop accounting — and the
// drops-sum==bottleneck invariant tvasim verifies — is only
// trustworthy if every discard names its cause. Two rules keep the
// taxonomy closed:
//
//   - no call may pass a constant-zero telemetry.DropReason
//     (DropNone, the explicit "no reason yet" zero value) into any
//     function or method: a drop site that cannot name its reason is
//     an unattributed drop;
//   - every switch over a DropReason must either carry a default arm
//     or enumerate every reason, so adding a reason to the taxonomy
//     forces every consumer to decide what it means.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DropReasonCheck is the dropreason analyzer.
var DropReasonCheck = &Analyzer{
	Name: "dropreason",
	Doc:  "forbid zero-value telemetry.DropReason arguments and non-exhaustive DropReason switches",
	Run:  runDropReason,
}

func runDropReason(prog *Program, pkgs []*Package) []Finding {
	telemetryPath := prog.Module + "/internal/telemetry"
	var findings []Finding
	for _, pkg := range pkgs {
		report := func(pos token.Pos, msg string) {
			findings = append(findings, Finding{
				Pos:     prog.Fset.Position(pos),
				Check:   "dropreason",
				Message: msg,
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDropArgs(pkg, telemetryPath, n, report)
				case *ast.SwitchStmt:
					checkDropSwitch(prog, pkg, telemetryPath, n, report)
				}
				return true
			})
		}
	}
	return findings
}

// checkDropArgs flags constant-zero DropReason arguments. The check is
// value-based, not spelling-based: DropNone, 0, and
// telemetry.DropReason(0) are all the same unattributed drop.
func checkDropArgs(pkg *Package, telemetryPath string, call *ast.CallExpr, report func(token.Pos, string)) {
	if isConversion(pkg.Info, call) {
		return
	}
	for _, arg := range call.Args {
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.Type == nil || tv.Value == nil {
			continue
		}
		if !namedType(tv.Type, telemetryPath, "DropReason") {
			continue
		}
		if v, ok := constant.Uint64Val(tv.Value); ok && v == 0 {
			report(arg.Pos(), "zero-value telemetry.DropReason passed to a call: every drop/demote/reject site must name a concrete reason")
		}
	}
}

// checkDropSwitch enforces exhaustiveness for switches over DropReason.
func checkDropSwitch(prog *Program, pkg *Package, telemetryPath string, sw *ast.SwitchStmt, report func(token.Pos, string)) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pkg.Info.Types[sw.Tag]
	if !ok || tv.Type == nil || !namedType(tv.Type, telemetryPath, "DropReason") {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default arm: exhaustive by construction
		}
		for _, e := range cc.List {
			if v, ok := pkg.Info.Types[e]; ok && v.Value != nil {
				covered[constant.ToInt(v.Value).ExactString()] = true
			}
		}
	}
	var missing []string
	for _, c := range dropReasonConstants(prog, telemetryPath) {
		if !covered[constant.ToInt(c.Val()).ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		report(sw.Pos(), "switch on telemetry.DropReason is not exhaustive and has no default: missing "+strings.Join(missing, ", "))
	}
}

// dropReasonConstants enumerates the declared DropReason constants
// from the telemetry package, in declaration (value) order.
func dropReasonConstants(prog *Program, telemetryPath string) []*types.Const {
	tpkg, ok := prog.ByPath[telemetryPath]
	if !ok {
		// The telemetry package may be absent from a narrow fixture
		// load; try any loaded package's imports.
		for _, pkg := range prog.Packages {
			for _, imp := range pkg.Types.Imports() {
				if imp.Path() == telemetryPath {
					return scopeDropReasons(imp.Scope(), telemetryPath)
				}
			}
		}
		return nil
	}
	return scopeDropReasons(tpkg.Types.Scope(), telemetryPath)
}

func scopeDropReasons(scope *types.Scope, telemetryPath string) []*types.Const {
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !namedType(c.Type(), telemetryPath, "DropReason") {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := constant.Uint64Val(constant.ToInt(out[i].Val()))
		b, _ := constant.Uint64Val(constant.ToInt(out[j].Val()))
		return a < b
	})
	return out
}
