// Package poolowner seeds the three pool-ownership mistakes the
// poolowner analyzer catches — a leak, a double release, and a use
// after release — next to the legal patterns (return handoff,
// conditional enqueue with a release on the failure arm). Batch
// containers follow the same contract through AcquireBatch /
// ReleaseBatch / ReleaseAll, so the same cases are seeded for them.
package poolowner

import "tva/internal/packet"

func Leak() {
	p := packet.AcquirePacket()
	p.Size = 1
} // want "leaks on this return path"

func DoubleRelease() {
	p := packet.AcquirePacket()
	packet.Release(p)
	packet.Release(p) // want "double release"
}

func UseAfterRelease() {
	p := packet.AcquirePacket()
	packet.Release(p)
	consume(p) // want "used after Release"
}

// ReturnHandoff transfers ownership to the caller: legal.
func ReturnHandoff() *packet.Packet {
	p := packet.AcquirePacket()
	p.Size = 1
	return p
}

// CallHandoff passes ownership into the callee, and releasing after a
// failed conditional handoff is the documented enqueue contract: legal.
func CallHandoff(ok bool) {
	p := packet.AcquirePacket()
	if !tryConsume(p, ok) {
		packet.Release(p)
	}
}

// DropPoint releases on every path: legal.
func DropPoint(keep bool) {
	p := packet.AcquirePacket()
	if keep {
		consume(p)
		return
	}
	packet.Release(p)
}

func BatchLeak() {
	b := packet.AcquireBatch()
	b.Reset()
} // want "leaks on this return path"

func BatchDoubleRelease() {
	b := packet.AcquireBatch()
	b.ReleaseAll()
	packet.ReleaseBatch(b) // want "double release"
}

func BatchUseAfterRelease() {
	b := packet.AcquireBatch()
	b.ReleaseAll()
	consumeBatch(b) // want "used after Release"
}

// BatchTerminal consumes remaining slots and the container in one
// call: legal.
func BatchTerminal() {
	b := packet.AcquireBatch()
	p := packet.AcquirePacket()
	b.Append(p)
	b.ReleaseAll()
}

// BatchContainerOnly hands the slots onward and releases only the
// container: legal (the enqueue owns the packets now).
func BatchContainerOnly(ok bool) {
	b := packet.AcquireBatch()
	if !tryConsumeBatch(b, ok) {
		b.ReleaseAll()
		return
	}
	packet.ReleaseBatch(b)
}

func consume(p *packet.Packet) {}

func tryConsume(p *packet.Packet, ok bool) bool { return ok }

func consumeBatch(b *packet.Batch) {}

func tryConsumeBatch(b *packet.Batch, ok bool) bool { return ok }
