// Package ignoretest exercises the //lint:ignore escape hatch: a
// justified directive suppresses the finding on its line, while a
// directive naming an unknown check or missing its reason is itself a
// finding. TestIgnoreDirectives asserts the outcomes explicitly
// (the malformed directives cannot carry want comments — the trailing
// text would become their "reason").
package ignoretest

import "tva/internal/telemetry"

func Suppressed(c *telemetry.DropCounters) {
	//lint:ignore dropreason fixture: exercising the suppression mechanism
	c.Inc(telemetry.DropNone)
}

func SuppressedTrailing(c *telemetry.DropCounters) {
	c.Inc(telemetry.DropNone) //lint:ignore dropreason fixture: trailing form of the directive
}

func Unsuppressed(c *telemetry.DropCounters) {
	c.Inc(telemetry.DropNone)
}

//lint:ignore notacheck reason enough
func Unknown() {}

//lint:ignore dropreason
func Reasonless() {}
