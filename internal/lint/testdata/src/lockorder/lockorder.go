// Fixture for the lockorder analyzer: pairing, ordering, and
// hot-path blocking, plus the legal idioms next to each violation.
package lockorder

import (
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	mu2  sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	done chan struct{}
	n    int
}

// Good: the canonical defer pairing.
func (s *S) goodDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Good: unlock on every branch (the overlay's select-case idiom —
// any release in the scope satisfies pairing).
func (s *S) goodBranch(b bool) {
	s.mu.Lock()
	if b {
		s.n++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// Good: release inside a deferred func literal.
func (s *S) goodDeferredLit() {
	s.mu.Lock()
	defer func() {
		s.n--
		s.mu.Unlock()
	}()
	s.n++
}

// Good: a goroutine body pairs its own locks in its own scope.
func (s *S) goodSpawn() {
	go func() {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
}

// Bad: locked and never released.
func (s *S) leak() {
	s.mu.Lock() // want "no matching Unlock"
	s.n++
}

// Bad: RLock must pair with RUnlock, not Unlock.
func (s *S) wrongMode() {
	s.rw.RLock() // want "no matching RUnlock"
	s.rw.Unlock()
}

// Bad: re-acquiring the same mutex while it is held.
func (s *S) recursive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "self-deadlock"
	s.mu.Unlock()
}

// These two establish opposite nesting orders: each acquisition that
// completes a cycle is a finding.
func (s *S) lockAB() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu2.Lock() // want "inconsistent lock order"
	defer s.mu2.Unlock()
	s.n++
}

func (s *S) lockBA() {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	s.mu.Lock() // want "inconsistent lock order"
	defer s.mu.Unlock()
	s.n++
}

// Good: a conditional unlock does not poison the straight-line
// continuation (the walker keeps the entry state after the branch).
func (s *S) goodCond(b bool) {
	s.mu.Lock()
	if b {
		s.n = 0
	}
	s.mu.Unlock()
}

//tva:hotpath
func (s *S) hotSend() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while"
	s.mu.Unlock()
}

//tva:hotpath
func (s *S) hotRecv() {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while"
	s.n = v
	s.mu.Unlock()
}

//tva:hotpath
func (s *S) hotSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while"
}

//tva:hotpath
func (s *S) hotSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select with no default"
	case <-s.done:
	case s.ch <- 1:
	}
}

//tva:hotpath
// Good: a select with a default never blocks, and sends after the
// unlock are the caller's problem.
func (s *S) hotNonBlocking() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
	s.ch <- 2
}

// Suppressed: the lock is handed to a goroutine that releases it
// (a pattern the per-scope rule cannot see).
func (s *S) suppressed() {
	//lint:ignore lockorder lock intentionally released by the spawned goroutine
	s.mu.Lock()
	go func() {
		s.n++
		s.mu.Unlock()
	}()
}
