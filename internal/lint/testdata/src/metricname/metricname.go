// Fixture for the metricname analyzer's literal and registration
// rules (loaded under an enforced cmd/ import path; the plane-coverage
// rule is exercised by the metricoverlay/metricsim fixtures).
package metricname

import "tva/internal/metrics"

// A local constant is still drift: it can disagree with names.go.
const localSeries = "tva_local_series" // want "series-name string literal"

func register(r *metrics.Registry, g *metrics.Gauge, dynamic string) {
	// Good: the shared constant.
	_ = r.GaugeVar(metrics.NameHealthState, nil, "shared constant", g)

	_ = r.GaugeVar("tva_rogue_series", nil, "literal name", g) // want "internal/metrics constant"

	_ = r.GaugeVar(localSeries, nil, "local constant", g) // want "internal/metrics constant"

	_ = r.GaugeVar(dynamic, nil, "runtime name", g) // want "not a compile-time constant"
}

func consumers() []string {
	return []string{
		// Good: derived series names build on the constants.
		metrics.NameRouterReceived + ":rate",
		// Good: the bare prefix is not a series name.
		"tva_",
		"tva_stray_series_name", // want "series-name string literal"
	}
}

func suppressed() string {
	//lint:ignore metricname exposition doc example, not a registered series
	return "tva_doc_example_series"
}
