// Package hotpath seeds one violation of every construct the hotpath
// analyzer forbids, plus the allowed idioms, so lint_test can prove
// the analyzer catches each one (and only them). The `want` comments
// are matched by line against the analyzer's findings.
package hotpath

import (
	"fmt"
	"time"

	"tva/internal/metrics"
)

var sink, src []int

// The streaming-metrics instruments: calling them from Hot makes the
// analyzer traverse their module bodies, proving Record/Set/Observe
// are allocation-free entry points (no want comments — no findings).
var (
	pktCtr  metrics.Counter
	level   metrics.Gauge
	waitSkt metrics.Sketch
)

type pair struct{ a, b int }

//tva:hotpath
func Hot(n int, buf []byte) []byte {
	fmt.Println(n)               // want "calls fmt.Println"
	_ = time.Now()               // want "calls time.Now"
	_ = make([]int, n)           // want "make([]int) allocates"
	_ = map[int]int{1: 1}        // want "map literal allocates"
	_ = []int{n}                 // want "slice literal allocates"
	_ = &pair{n, n}              // want "&composite literal escapes"
	f := func() int { return n } // want "closure allocation"
	_ = f
	sink = append(src, n) // want "append into escaping destination"
	helper(pick(n))
	pktCtr.Record(1)
	level.Set(1.5)
	waitSkt.Observe(int64(n))

	// Allowed idioms: appending into a local slice variable, and the
	// capacity-recycling self-append (even through a global or field).
	buf = append(buf, 1)
	sink = append(sink, n)
	var h holder
	h.items = append(h.items, n)
	return buf
}

type holder struct{ items []int }

// helper is reached transitively from Hot, so its finding carries the
// "reachable from" suffix.
func helper(s string) {
	_ = s + "!" // want "string concatenation allocates"
}

func pick(n int) string {
	if n > 0 {
		return "+"
	}
	return "-"
}

// Cold is not annotated and not called from Hot: nothing in it may be
// reported.
func Cold() string {
	return fmt.Sprintf("%d", len(sink))
}
