// Package dropreason seeds unattributed-drop and non-exhaustive-switch
// violations for the dropreason analyzer.
package dropreason

import "tva/internal/telemetry"

func Bad(c *telemetry.DropCounters) {
	c.Inc(telemetry.DropNone) // want "zero-value telemetry.DropReason"
	c.Inc(0)                  // want "zero-value telemetry.DropReason"

	// Allowed: a concrete reason, and a bare conversion (not a call
	// argument).
	c.Inc(telemetry.DropCapInvalid)
	_ = telemetry.DropReason(0)
}

func Name(r telemetry.DropReason) string {
	switch r { // want "not exhaustive"
	case telemetry.DropCapInvalid:
		return "cap"
	}
	return ""
}

// A default arm makes the switch exhaustive by construction.
func NameOK(r telemetry.DropReason) string {
	switch r {
	case telemetry.DropCapInvalid:
		return "cap"
	default:
		return "other"
	}
}
