// Package determinism seeds the three violation classes the
// determinism analyzer forbids in simulator-facing packages. The test
// harness registers it under a simulator-facing import path
// (tva/internal/netsim) so the analyzer's package filter applies.
package determinism

import (
	"math/rand"
	"time"

	"tva/internal/tvatime"
)

var order []int

func Bad(m map[int]int) {
	_ = time.Now()   // want "calls time.Now"
	_ = rand.Intn(4) // want "global math/rand"
	for k := range m { // want "map iteration order leaks"
		order = append(order, k)
	}
}

func Wall() tvatime.Clock {
	return tvatime.WallClock{} // want "tvatime.WallClock"
}

// Seeded generators and order-independent aggregation are allowed.
func Good(m map[int]int) int {
	r := rand.New(rand.NewSource(1))
	sum := r.Intn(4)
	for _, v := range m {
		sum += v
	}
	return sum
}
