// Fixture for the metricname plane-coverage rule, loaded under the
// overlay plane's import path: registers every series in
// metrics.OverlaySeries (so nothing is missing) plus one sim-only
// series the overlay list does not declare (the "undeclared
// registration" finding, asserted by TestMetricNameCrossPlane).
package metricoverlay

import "tva/internal/metrics"

func registerAll(r *metrics.Registry, fn func() float64) {
	_ = r.Counter(metrics.NameRouterReceived, nil, "", fn)
	_ = r.Counter(metrics.NameRouterForwarded, nil, "", fn)
	_ = r.Counter(metrics.NameRouterUnroutable, nil, "", fn)
	_ = r.Counter(metrics.NameRouterMalformed, nil, "", fn)
	_ = r.Counter(metrics.NameSchedDrops, nil, "", fn)
	_ = r.Counter(metrics.NameDemotions, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowCacheEntries, nil, "", fn)
	_ = r.Gauge(metrics.NameQueueWaitEWMA, nil, "", fn)
	_ = r.Gauge(metrics.NameRxBurstFill, nil, "", fn)
	_ = r.Gauge(metrics.NameTxBurstFill, nil, "", fn)
	_ = r.Gauge(metrics.NameQueuePkts, nil, "", fn)
	_ = r.Gauge(metrics.NameRegularQueues, nil, "", fn)
	_ = r.Gauge(metrics.NameTokenBucket, nil, "", fn)
	_ = r.Counter(metrics.NamePortSent, nil, "", fn)
	_ = r.Counter(metrics.NamePortDropped, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowTrackedSenders, nil, "", fn)
	_ = r.Counter(metrics.NameFlowBytes, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowTopShare, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowFairnessJain, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowMaxMinRatio, nil, "", fn)
	_ = r.Gauge(metrics.NameHealthState, nil, "", fn)
	_ = r.Counter(metrics.NameHealthTransitions, nil, "", fn)
	_ = r.Counter(metrics.NameGoodputBytes, nil, "", fn) // undeclared in OverlaySeries

	var s metrics.Sketch
	_ = r.SketchQuantiles(metrics.NameQueueWait, nil, "", &s, 0.5, 0.99)
}
