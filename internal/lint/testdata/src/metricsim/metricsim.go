// Fixture for the metricname plane-coverage rule, loaded under the
// simulator plane's import path: registers only the SharedSeries
// names, so every sim-only series in metrics.SimSeries is a
// missing-series finding (asserted by TestMetricNameCrossPlane
// against the real exported lists).
package metricsim

import "tva/internal/metrics"

func registerShared(r *metrics.Registry, fn func() float64) {
	_ = r.Gauge(metrics.NameQueuePkts, nil, "", fn)
	_ = r.Gauge(metrics.NameRegularQueues, nil, "", fn)
	_ = r.Gauge(metrics.NameTokenBucket, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowCacheEntries, nil, "", fn)
	_ = r.Counter(metrics.NameSchedDrops, nil, "", fn)
	_ = r.Counter(metrics.NameDemotions, nil, "", fn)
	_ = r.Gauge(metrics.NameTxBurstFill, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowTrackedSenders, nil, "", fn)
	_ = r.Counter(metrics.NameFlowBytes, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowTopShare, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowFairnessJain, nil, "", fn)
	_ = r.Gauge(metrics.NameFlowMaxMinRatio, nil, "", fn)
	_ = r.Gauge(metrics.NameHealthState, nil, "", fn)
	_ = r.Counter(metrics.NameHealthTransitions, nil, "", fn)

	var s metrics.Sketch
	_ = r.SketchQuantiles(metrics.NameQueueWait, nil, "", &s, 0.5, 0.99)
}
