// Fixture for the atomicfield analyzer: mixed atomic/plain access and
// 32-bit alignment of 64-bit atomic fields, next to the legal shapes.
package atomicfield

import "sync/atomic"

// Good: 64-bit atomic field first in the struct, so it is 8-aligned
// even under 32-bit layout, and every access goes through sync/atomic.
type Good struct {
	hits uint64
	gen  uint32
}

func (g *Good) Inc() { atomic.AddUint64(&g.hits, 1) }

func (g *Good) Snapshot() uint64 { return atomic.LoadUint64(&g.hits) }

// Plain field: never touched atomically, free to use directly.
func (g *Good) Gen() uint32 { return g.gen }

// Bad layout: a uint32 pushes the atomic counter to offset 4 under
// 32-bit rules.
type Packed struct {
	gen  uint32
	hits uint64 // want "not 8-aligned"
}

func (p *Packed) Inc() { atomic.AddUint64(&p.hits, 1) }

// Bad: the same field read and written without sync/atomic.
func (p *Packed) Racy() uint64 {
	p.hits = 0    // want "non-atomic access to hits"
	return p.hits // want "non-atomic access to hits"
}

// Package-level atomic counter.
var total uint64

func AddTotal(n uint64) { atomic.AddUint64(&total, n) }

func ReadTotal() uint64 {
	return total // want "non-atomic access to total"
}

// Good: the typed instruments carry their own alignment guarantee and
// an unexported payload, so neither rule applies.
type Typed struct {
	gen  uint32
	hits atomic.Uint64
}

func (t *Typed) Inc() { t.hits.Add(1) }

// Suppressed: a reader that runs strictly after all writers joined.
func Drain(p *Packed) uint64 {
	//lint:ignore atomicfield read happens after the worker pool is joined
	return p.hits
}
