// Fixture for the goleak analyzer: goroutines with and without a
// provable shutdown edge.
package goleak

import (
	"sync"
	"time"
)

type W struct {
	done chan struct{}
	in   chan int
	wg   sync.WaitGroup
	n    int
}

// Good: ticker loop with a stop-channel select — the shape tvarouter's
// sampler uses.
func (w *W) GoodTicker() {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.n++
			case <-w.done:
				return
			}
		}
	}()
}

// Good: ranging an owned channel; the sender closes it.
func (w *W) GoodRange() {
	go func() {
		for v := range w.in {
			w.n += v
		}
	}()
}

// Good: WaitGroup-joined worker.
func (w *W) GoodWG() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for i := 0; i < 8; i++ {
			w.n++
		}
	}()
}

// Good: no loop — the body terminates by construction.
func (w *W) GoodOnce() {
	go func() {
		w.n = len(w.in)
	}()
}

// Bad: the channel from time.Tick never closes, so the range never
// ends.
func (w *W) BadTick() {
	go func() { // want "no shutdown edge"
		for range time.Tick(time.Second) {
			w.n++
		}
	}()
}

// Bad: a bare ticker receive is not an exit signal.
func (w *W) BadTickerOnly() {
	t := time.NewTicker(time.Second)
	go func() { // want "no shutdown edge"
		for {
			<-t.C
			w.n++
		}
	}()
}

// Bad: spin loop.
func (w *W) BadSpin() {
	go func() { // want "no shutdown edge"
		for {
			w.n++
		}
	}()
}

// loop is the body behind BadNamed: the analyzer follows directly
// named module functions.
func (w *W) loop() {
	for range time.Tick(time.Second) {
		w.n++
	}
}

func (w *W) BadNamed() {
	go w.loop() // want "no shutdown edge"
}

// Bad: a function value cannot be resolved to a body.
func Run(f func()) {
	go f() // want "cannot resolve"
}

// Suppressed: a process-lifetime daemon, with the reason on record.
func (w *W) Daemon() {
	//lint:ignore goleak exposition server lives for the process lifetime
	go func() {
		for {
			w.n++
		}
	}()
}
