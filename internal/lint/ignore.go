// //lint:ignore directives: the escape hatch for findings that are
// deliberate (a first-use allocation behind a nil check, a payload
// copy that is the documented cost of payload-carrying packets). A
// directive names the check it silences and must say why:
//
//	//lint:ignore hotpath scratch header is allocated once, then recycled
//
// It applies to findings on its own line and on the line directly
// below it (so it can trail the flagged expression or sit above it).
// An ignore without a reason, or naming an unknown check, is reported
// as a finding itself — silencing the linter silently is exactly the
// kind of convention this package exists to end.
package lint

import (
	"go/token"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// ignoreSet indexes directives by file and line.
type ignoreSet struct {
	// byLine maps filename -> line -> checks ignored on that line.
	byLine    map[string]map[int][]string
	malformed []Finding
}

// collectIgnores scans the comments of every file in pkgs.
func collectIgnores(prog *Program, pkgs []*Package) *ignoreSet {
	s := &ignoreSet{byLine: map[string]map[int][]string{}}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						s.malformed = append(s.malformed, Finding{
							Pos: pos, Check: "ignore",
							Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"",
						})
						continue
					case !known[fields[0]]:
						s.malformed = append(s.malformed, Finding{
							Pos: pos, Check: "ignore",
							Message: "//lint:ignore names unknown check " + quote(fields[0]),
						})
						continue
					case len(fields) < 2:
						s.malformed = append(s.malformed, Finding{
							Pos: pos, Check: "ignore",
							Message: "//lint:ignore " + fields[0] + " needs a reason",
						})
						continue
					}
					s.add(pos, fields[0])
				}
			}
		}
	}
	return s
}

func (s *ignoreSet) add(pos token.Position, check string) {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int][]string{}
		s.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], check)
}

// suppress reports whether f is covered by a directive on its line or
// the line above.
func (s *ignoreSet) suppress(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, check := range lines[line] {
			if check == f.Check {
				return true
			}
		}
	}
	return false
}

// quote wraps s in double quotes for messages.
func quote(s string) string { return "\"" + s + "\"" }
