// Fixture tests: each analyzer runs over a seeded testdata package and
// its findings are matched, line by line, against `// want "substr"`
// comments in the fixture source. Every fixture also contains the
// corresponding legal idioms, so the tests prove both directions:
// violations are caught, allowed patterns are not.
package lint_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"tva/internal/lint"
	"tva/internal/metrics"
)

var (
	progOnce sync.Once
	prog     *lint.Program
	progErr  error

	fixtureMu sync.Mutex
	fixtures  = map[string]*lint.Package{}
)

// loadProg loads (once per test binary) the module packages the
// fixtures import, so fixture types share identity with the real
// telemetry.DropReason and packet.Packet.
func loadProg(t *testing.T) *lint.Program {
	t.Helper()
	progOnce.Do(func() {
		prog, progErr = lint.Load("../..", "./internal/telemetry", "./internal/packet", "./internal/metrics")
	})
	if progErr != nil {
		t.Fatalf("loading module packages: %v", progErr)
	}
	return prog
}

// loadFixture registers a testdata package (invisible to go list)
// under importPath in the shared program.
func loadFixture(t *testing.T, p *lint.Program, dir, importPath string) *lint.Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if pkg, ok := fixtures[importPath]; ok {
		return pkg
	}
	pkg, err := p.AddDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	fixtures[importPath] = pkg
	return pkg
}

// runFixture applies one analyzer to one fixture package and matches
// the findings against the fixture's want comments.
func runFixture(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	p := loadProg(t)
	pkg := loadFixture(t, p, dir, importPath)
	findings := lint.Run(p, []*lint.Package{pkg}, []*lint.Analyzer{a})

	type want struct {
		substr  string
		matched bool
	}
	wants := map[int][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				sub, err := strconv.Unquote(strings.TrimSpace(strings.TrimPrefix(text, "want ")))
				if err != nil {
					t.Fatalf("bad want comment %q: %v", c.Text, err)
				}
				line := p.Fset.Position(c.Pos()).Line
				wants[line] = append(wants[line], &want{substr: sub})
			}
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants[f.Pos.Line] {
			if !w.matched && strings.Contains(f.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s/%d: expected a finding containing %q, got none", dir, line, w.substr)
			}
		}
	}
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, lint.HotPath, "testdata/src/hotpath", loadProg(t).Module+"/fixture/hotpath")
}

func TestDeterminismFixture(t *testing.T) {
	// Registered under a simulator-facing import path so the
	// analyzer's package filter covers it.
	runFixture(t, lint.Determinism, "testdata/src/determinism", loadProg(t).Module+"/internal/netsim")
}

func TestDropReasonFixture(t *testing.T) {
	runFixture(t, lint.DropReasonCheck, "testdata/src/dropreason", loadProg(t).Module+"/fixture/dropreason")
}

func TestPoolOwnerFixture(t *testing.T) {
	runFixture(t, lint.PoolOwner, "testdata/src/poolowner", loadProg(t).Module+"/fixture/poolowner")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, lint.LockOrder, "testdata/src/lockorder", loadProg(t).Module+"/fixture/lockorder")
}

func TestAtomicFieldFixture(t *testing.T) {
	runFixture(t, lint.AtomicField, "testdata/src/atomicfield", loadProg(t).Module+"/fixture/atomicfield")
}

func TestGoLeakFixture(t *testing.T) {
	runFixture(t, lint.GoLeak, "testdata/src/goleak", loadProg(t).Module+"/fixture/goleak")
}

func TestMetricNameFixture(t *testing.T) {
	// Registered under an enforced cmd/ import path so the analyzer's
	// package filter covers it.
	runFixture(t, lint.MetricName, "testdata/src/metricname", loadProg(t).Module+"/cmd/tvatop")
}

// TestMetricNameCrossPlane pins the plane-coverage rule against the
// real exported lists: a plane fixture that registers only the shared
// contract must be missing exactly the sim-only series, and an overlay
// fixture registering a sim-only series must be told the overlay list
// does not declare it.
func TestMetricNameCrossPlane(t *testing.T) {
	p := loadProg(t)

	overlayPkg := loadFixture(t, p, "testdata/src/metricoverlay", p.Module+"/internal/overlay")
	got := lint.Run(p, []*lint.Package{overlayPkg}, []*lint.Analyzer{lint.MetricName})
	if len(got) != 1 || !strings.Contains(got[0].Message, strconv.Quote(metrics.NameGoodputBytes)) ||
		!strings.Contains(got[0].Message, "does not declare") {
		for _, f := range got {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("overlay fixture: want exactly one undeclared-registration finding for %s, got %d findings",
			metrics.NameGoodputBytes, len(got))
	}

	shared := map[string]bool{}
	for _, name := range metrics.SharedSeries {
		shared[name] = true
	}
	wantMissing := map[string]bool{}
	for _, name := range metrics.SimSeries {
		if !shared[name] {
			wantMissing[name] = true
		}
	}
	if len(wantMissing) == 0 {
		t.Fatal("metrics.SimSeries has no sim-only series; fixture premise broken")
	}

	simPkg := loadFixture(t, p, "testdata/src/metricsim", p.Module+"/internal/exp")
	got = lint.Run(p, []*lint.Package{simPkg}, []*lint.Analyzer{lint.MetricName})
	if len(got) != len(wantMissing) {
		for _, f := range got {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("sim fixture: got %d findings, want %d (SimSeries minus SharedSeries)", len(got), len(wantMissing))
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "not registered") {
			t.Errorf("sim fixture: finding is not a missing-series report: %s", f)
			continue
		}
		matched := ""
		for name := range wantMissing {
			if strings.Contains(f.Message, strconv.Quote(name)) {
				matched = name
				break
			}
		}
		if matched == "" {
			t.Errorf("sim fixture: finding names an unexpected series: %s", f)
			continue
		}
		delete(wantMissing, matched)
	}
	for name := range wantMissing {
		t.Errorf("sim fixture: no finding reported missing series %q", name)
	}
}

// TestIgnoreDirectives asserts suppression and malformed-directive
// reporting explicitly: the malformed directives cannot carry want
// comments, because trailing text would become their reason.
func TestIgnoreDirectives(t *testing.T) {
	p := loadProg(t)
	pkg := loadFixture(t, p, "testdata/src/ignoretest", p.Module+"/fixture/ignoretest")
	findings := lint.Run(p, []*lint.Package{pkg}, []*lint.Analyzer{lint.DropReasonCheck})

	expect := []struct{ check, substr string }{
		{"dropreason", "zero-value telemetry.DropReason"}, // the unsuppressed call
		{"ignore", `unknown check "notacheck"`},
		{"ignore", "needs a reason"},
	}
	if len(findings) != len(expect) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(expect))
	}
	for i, e := range expect {
		if findings[i].Check != e.check || !strings.Contains(findings[i].Message, e.substr) {
			t.Errorf("finding %d = %s; want check %q containing %q", i, findings[i], e.check, e.substr)
		}
	}
}
