// The determinism analyzer: simulator results are only citable when a
// run is a pure function of its seed (the experiment engine's RunMany
// depends on this to fan runs out across goroutines and still produce
// identical sweeps). In the simulator-facing packages —
// internal/netsim, internal/exp, and internal/core — three things
// break that property:
//
//   - wall clocks: time.Now/Since/Until (and timer constructors), or
//     a tvatime.WallClock smuggled in as the Clock;
//   - the global math/rand functions, which share process-wide state
//     across runs (a *rand.Rand seeded per simulation is fine);
//   - ranging over a map when the body's effects depend on iteration
//     order: calling functions, appending, sending, writing through
//     fields/elements, or returning/breaking out. Pure aggregation
//     into locals (sums, counts, max-tracking assignments to local
//     scalars) is order-independent and allowed; anything else should
//     iterate over sorted keys instead.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism is the determinism analyzer.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global math/rand, and order-dependent map iteration in simulator-facing packages",
	Run:  runDeterminism,
}

// deterministicPkgs lists the module-relative import paths the checker
// covers. internal/core is included wholesale: the router and shim are
// driven by both the simulator and the overlay, so *all* of core must
// stay replayable (the overlay passes wall clocks in from outside).
var deterministicPkgs = []string{
	"internal/netsim",
	"internal/exp",
	"internal/core",
}

func runDeterminism(prog *Program, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		if !deterministicPkg(prog, pkg) {
			continue
		}
		report := func(pos token.Pos, msg string) {
			findings = append(findings, Finding{
				Pos:     prog.Fset.Position(pos),
				Check:   "determinism",
				Message: msg,
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDetCall(pkg, n, report)
				case *ast.SelectorExpr:
					// A WallClock value anywhere in simulator-facing code
					// is a wall clock about to be plumbed somewhere.
					if obj, ok := pkg.Info.Uses[n.Sel].(*types.TypeName); ok &&
						obj.Pkg() != nil && obj.Pkg().Path() == prog.Module+"/internal/tvatime" &&
						obj.Name() == "WallClock" {
						report(n.Pos(), "uses tvatime.WallClock in simulator-facing code; take a tvatime.Clock from the simulation instead")
					}
				case *ast.RangeStmt:
					checkMapRange(pkg, n, report)
				}
				return true
			})
		}
	}
	return findings
}

func deterministicPkg(prog *Program, pkg *Package) bool {
	for _, rel := range deterministicPkgs {
		if pkg.Path == prog.Module+"/"+rel {
			return true
		}
	}
	return false
}

// checkDetCall flags wall-clock reads and global math/rand use.
func checkDetCall(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := funcFor(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until", "After", "Tick", "Sleep", "NewTimer", "NewTicker", "AfterFunc":
			report(call.Pos(), "calls time."+fn.Name()+": wall-clock time breaks simulation determinism; use the simulation's tvatime.Clock")
		}
	case "math/rand", "math/rand/v2":
		// Methods on a seeded *rand.Rand are deterministic; the
		// package-level functions share global state across runs.
		// Constructors are how you get the seeded generator.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		report(call.Pos(), "calls global math/rand."+fn.Name()+": shared RNG state breaks per-seed determinism; use the simulation's *rand.Rand")
	}
}

// checkMapRange flags map iteration whose body is order-sensitive.
func checkMapRange(pkg *Package, rng *ast.RangeStmt, report func(token.Pos, string)) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if why := orderSensitive(pkg, rng.Body); why != "" {
		report(rng.Pos(), "map iteration order leaks into results ("+why+"); iterate over sorted keys instead")
	}
}

// orderSensitive reports the first order-dependent effect in a map
// range body, or "".
func orderSensitive(pkg *Package, body *ast.BlockStmt) (why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinFor(pkg.Info, n) {
			case "delete", "len", "cap", "min", "max":
				return true // order-independent builtins
			case "append":
				why = "append observes iteration order"
				return false
			}
			if isConversion(pkg.Info, n) {
				return true
			}
			why = "calls a function from inside the loop"
			return false
		case *ast.SendStmt:
			why = "sends on a channel"
			return false
		case *ast.ReturnStmt:
			why = "returns from inside the loop"
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				why = "exits the loop early"
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if target := escapingLvalue(pkg, ast.Unparen(lhs)); target != "" {
					why = "writes through " + target
					return false
				}
			}
		case *ast.IncDecStmt:
			// x++ / x-- commute across iterations; allowed.
			return true
		}
		return true
	})
	return why
}

// escapingLvalue names an assignment target that order can leak
// through: a field, an element, a dereference, or a package-level
// variable. Plain local identifiers return "".
func escapingLvalue(pkg *Package, lhs ast.Expr) string {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return ""
		}
		var obj types.Object
		if d := pkg.Info.Defs[lhs]; d != nil {
			obj = d
		} else {
			obj = pkg.Info.Uses[lhs]
		}
		if obj != nil && obj.Parent() == pkg.Types.Scope() {
			return "package-level variable " + lhs.Name
		}
		return ""
	case *ast.SelectorExpr:
		return "field " + exprKey(lhs)
	case *ast.IndexExpr:
		// Writing m2[k] = v keyed by the iteration variable is
		// order-independent; writing s[i] with i from outside is not.
		// Distinguishing precisely needs dataflow; treat index writes
		// keyed by the range key as safe and everything else as not.
		if tv, ok := pkg.Info.Types[lhs.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return ""
			}
		}
		return "element " + exprKey(lhs)
	case *ast.StarExpr:
		return "pointer target " + exprKey(lhs)
	}
	return ""
}
