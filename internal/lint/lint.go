// Package lint is the repository's custom static-analysis framework:
// a stdlib-only (go/parser + go/types, no golang.org/x/tools) driver
// plus the eight analyzers that machine-check the invariants the rest
// of the tree merely promises in comments:
//
//   - hotpath: functions annotated //tva:hotpath, and everything they
//     statically call within the module, must stay allocation-free
//     (the static twin of the tvabench bench-guard);
//   - determinism: simulator-facing code may not read wall clocks, use
//     the global math/rand, or iterate maps where order leaks into
//     results;
//   - dropreason: drop/demote/reject sites must name a concrete
//     telemetry.DropReason, and switches over DropReason must be
//     exhaustive;
//   - poolowner: a pooled *packet.Packet must reach exactly one
//     Release or ownership handoff on every return path;
//   - lockorder: mutex Lock/Unlock pairing per scope, a consistent
//     global acquisition order, and no blocking operation while a
//     //tva:hotpath function holds a lock;
//   - atomicfield: a variable touched through sync/atomic anywhere is
//     never accessed non-atomically elsewhere, and 64-bit atomic
//     fields stay 8-aligned under 32-bit struct layout;
//   - goleak: every go statement carries a provable shutdown edge
//     (done-channel receive, WaitGroup, or a loop-free body);
//   - metricname: metric series names come from the internal/metrics
//     constants, and each data plane registers exactly the series its
//     declared list promises.
//
// Findings can be suppressed one at a time with
//
//	//lint:ignore <check> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a bare ignore is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Finding is one rule violation at one position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats a finding the way compilers do, so editors can jump
// to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// An Analyzer is one named check. Run receives the whole program plus
// the subset of packages to report on; analyzers may traverse beyond
// that subset (hotpath follows calls wherever they lead) but should
// anchor findings in the requested packages when they can.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, pkgs []*Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPath, Determinism, DropReasonCheck, PoolOwner, LockOrder, AtomicField, GoLeak, MetricName}
}

// ByName returns the named analyzers, or an error naming the first
// unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
	}
	return out, nil
}

// Run applies the analyzers to pkgs (nil means every package in prog),
// filters findings through //lint:ignore directives, reports malformed
// directives, and returns everything sorted by position.
func Run(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Finding {
	if pkgs == nil {
		pkgs = prog.Packages
	}
	ignores := collectIgnores(prog, pkgs)
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(prog, pkgs) {
			if !ignores.suppress(f) {
				out = append(out, f)
			}
		}
	}
	out = append(out, ignores.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// funcFor resolves a call expression to the invoked *types.Func, or
// nil when the callee is not a statically known function or method
// (builtins, conversions, calls through function values).
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// builtinFor resolves a call to the builtin it invokes ("append",
// "make", ...), or "".
func builtinFor(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// namedType reports whether t (or its pointer elem) is the named type
// pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
