// The metricname analyzer: the sim-vs-real story (ROADMAP item 5)
// only holds if both data planes emit the same series under the same
// names, and every consumer — tvatop, scripts/metrics_smoke.sh, the
// bench harness — asks for names that actually exist. All of those
// names live in internal/metrics/names.go; this analyzer makes the
// contract mechanical in the metric-facing packages (internal/overlay,
// internal/exp, cmd/tvatop, cmd/tvarouter):
//
//   - no stray series-name string literals ("tva_..."): every name is
//     spelled as an internal/metrics Name* constant, so a rename is a
//     compile error everywhere at once;
//   - a Registry registration (Counter, Gauge, CounterVar, GaugeVar,
//     SketchQuantiles) must take its name from an internal/metrics
//     constant — a literal or a package-local constant reintroduces
//     drift one hop away;
//   - plane coverage: internal/overlay must register everything in
//     metrics.OverlaySeries and internal/exp everything in
//     metrics.SimSeries (each a superset of SharedSeries, the
//     both-planes contract), and must not register a constant-named
//     series those lists do not declare. Missing-series findings
//     anchor at the plane package's package clause; undeclared
//     registrations anchor at the registration call.
//
// Together with `tvatop -require-set`, which resolves its required
// list from the same constants, a series can no longer exist in one
// plane, be required by a script, and be missing from the other.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricName is the metricname analyzer.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "require series names to come from internal/metrics constants and both data planes to register their declared series lists",
	Run:  runMetricName,
}

// metricNamePkgs lists the module-relative packages the analyzer
// enforces; planes additionally name the declared list they must
// cover.
var (
	metricNamePkgs  = []string{"internal/overlay", "internal/exp", "cmd/tvatop", "cmd/tvarouter"}
	metricPlaneList = map[string]string{
		"internal/overlay": "OverlaySeries",
		"internal/exp":     "SimSeries",
	}
	// registryMethods are the Registry calls whose first argument is a
	// series name.
	registryMethods = map[string]bool{
		"Counter": true, "Gauge": true, "CounterVar": true,
		"GaugeVar": true, "SketchQuantiles": true,
	}
	seriesLiteral = regexp.MustCompile(`^tva_[a-z0-9_]+$`)
)

func runMetricName(prog *Program, pkgs []*Package) []Finding {
	metricsPath := prog.Module + "/internal/metrics"
	lists := metricLists(prog.ByPath[metricsPath])

	var findings []Finding
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, Finding{
			Pos:     prog.Fset.Position(pos),
			Check:   "metricname",
			Message: fmt.Sprintf(format, args...),
		})
	}

	for _, pkg := range pkgs {
		rel, enforced := metricNameRel(prog, pkg)
		if !enforced {
			continue
		}

		// Registrations first: their name arguments are exempt from the
		// literal rule (the registration rule owns them).
		registered := map[string]token.Pos{} // series name -> first registration
		handled := map[ast.Node]bool{}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := funcFor(pkg.Info, call)
				if fn == nil || !registryMethods[fn.Name()] || !recvIsRegistry(fn, metricsPath) {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				handled[arg] = true
				tv, ok := pkg.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					report(arg.Pos(), "series name passed to Registry.%s is not a compile-time constant; use an internal/metrics constant", fn.Name())
					return true
				}
				name := constant.StringVal(tv.Value)
				if _, ok := registered[name]; !ok {
					registered[name] = call.Pos()
				}
				if !constFromPkg(pkg.Info, arg, metricsPath) {
					report(arg.Pos(), "Registry.%s must name its series with an internal/metrics constant, not %s", fn.Name(), strconv.Quote(name))
				}
				return true
			})
		}

		// Stray literals.
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING || handled[ast.Node(lit)] {
					return true
				}
				if s, err := strconv.Unquote(lit.Value); err == nil && seriesLiteral.MatchString(s) {
					report(lit.Pos(), "series-name string literal %s; spell it as the internal/metrics Name* constant", lit.Value)
				}
				return true
			})
		}

		// Plane coverage against the declared lists.
		listName, isPlane := metricPlaneList[rel]
		if !isPlane || lists == nil {
			continue
		}
		declared := map[string]string{} // name -> list that declares it
		for _, entry := range [2]string{listName, "SharedSeries"} {
			for _, name := range lists[entry] {
				if _, ok := declared[name]; !ok {
					declared[name] = entry
				}
			}
		}
		var missing []string
		for name, from := range declared {
			if _, ok := registered[name]; !ok {
				missing = append(missing, name+"\x00"+from)
			}
		}
		sort.Strings(missing)
		for _, m := range missing {
			name, from, _ := strings.Cut(m, "\x00")
			report(pkg.Files[0].Package, "series %s (metrics.%s) is not registered by %s", strconv.Quote(name), from, pkg.Path)
		}
		for name, pos := range registered {
			if _, ok := declared[name]; ok {
				continue
			}
			if contains(lists["BenchSeries"], name) {
				continue // bench-harness series share the plane package
			}
			report(pos, "registers %s, which metrics.%s does not declare; add it to internal/metrics/names.go or drop the registration", strconv.Quote(name), listName)
		}
	}
	return findings
}

// metricNameRel matches pkg against the enforced package list and
// returns its module-relative path.
func metricNameRel(prog *Program, pkg *Package) (string, bool) {
	for _, rel := range metricNamePkgs {
		if pkg.Path == prog.Module+"/"+rel {
			return rel, true
		}
	}
	return "", false
}

// recvIsRegistry reports whether fn is a method on metrics.Registry.
func recvIsRegistry(fn *types.Func, metricsPath string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedType(sig.Recv().Type(), metricsPath, "Registry")
}

// constFromPkg reports whether e resolves to a constant declared in
// the package at path.
func constFromPkg(info *types.Info, e ast.Expr, path string) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == path
}

// metricLists evaluates the Series slice declarations in the loaded
// internal/metrics package: list name -> constant-folded element
// values. Returns nil when the package (or any list element) cannot be
// resolved, in which case plane coverage is skipped.
func metricLists(pkg *Package) map[string][]string {
	if pkg == nil {
		return nil
	}
	lists := map[string][]string{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				name := vs.Names[0].Name
				if name != "SharedSeries" && name != "OverlaySeries" && name != "SimSeries" && name != "BenchSeries" {
					continue
				}
				cl, ok := ast.Unparen(vs.Values[0]).(*ast.CompositeLit)
				if !ok {
					return nil
				}
				for _, elt := range cl.Elts {
					tv, ok := pkg.Info.Types[elt]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						return nil
					}
					lists[name] = append(lists[name], constant.StringVal(tv.Value))
				}
			}
		}
	}
	if len(lists) == 0 {
		return nil
	}
	return lists
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
