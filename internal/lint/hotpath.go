// The hotpath analyzer: the static twin of `make bench-guard`.
//
// The bench guard pins Table 1 allocs/op after the fact; this check
// explains *why* the number stays zero, by proving no construct that
// allocates (or formats, or reads the wall clock) is reachable from an
// annotated entry point. A function opts in with
//
//	//tva:hotpath
//
// in its doc comment. The analyzer walks every function it statically
// calls within the module (interface dispatch and function values are
// not followed — annotate implementations separately) and flags:
//
//   - calls into fmt (formatting allocates and reflects);
//   - time.Now / time.Since / time.Until (wall clock on a simulated
//     data path is also a determinism bug);
//   - non-constant string concatenation;
//   - map and slice composite literals, make of map/slice/chan, new,
//     and &T{...} (heap allocations);
//   - closures (the closure and its captures escape);
//   - append whose destination escapes (a field, an element, a
//     global), unless it is the self-append idiom `x.f = append(x.f,
//     ...)` that recycles capacity and is amortized allocation-free.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathMarker is the doc-comment annotation that marks a function as
// part of the allocation-free forwarding path.
const HotPathMarker = "//tva:hotpath"

// HotPath is the hotpath analyzer.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocations, fmt, and wall clocks in //tva:hotpath functions and their module callees",
	Run:  runHotPath,
}

// hotWork is one function pending a hot-path scan, tagged with the
// annotated root it was reached from.
type hotWork struct {
	fd   *FuncDecl
	root string
}

func runHotPath(prog *Program, pkgs []*Package) []Finding {
	// Roots: annotated declarations in the requested packages.
	var work []hotWork
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(c.Text, HotPathMarker) {
						work = append(work, hotWork{&FuncDecl{Pkg: pkg, Decl: fd}, funcDisplayName(fd)})
						break
					}
				}
			}
		}
	}

	seen := map[*ast.FuncDecl]bool{}
	var findings []Finding
	for len(work) > 0 {
		item := work[0]
		work = work[1:]
		if seen[item.fd.Decl] {
			continue
		}
		seen[item.fd.Decl] = true
		pkg := item.fd.Pkg
		suffix := ""
		if name := funcDisplayName(item.fd.Decl); name != item.root {
			suffix = " (in " + name + ", reachable from //tva:hotpath " + item.root + ")"
		}
		report := func(pos token.Pos, msg string) {
			findings = append(findings, Finding{
				Pos:     prog.Fset.Position(pos),
				Check:   "hotpath",
				Message: msg + suffix,
			})
		}
		if item.fd.Decl.Body == nil {
			continue
		}
		ast.Inspect(item.fd.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				report(n.Pos(), "closure allocation on the hot path")
				return false // the closure body runs elsewhere
			case *ast.CallExpr:
				if fn := funcFor(pkg.Info, n); fn != nil {
					checkHotCall(prog, n, fn, report, &work, item.root)
				} else if b := builtinFor(pkg.Info, n); b == "make" {
					switch pkg.Info.Types[n].Type.Underlying().(type) {
					case *types.Map, *types.Slice, *types.Chan:
						report(n.Pos(), "make("+types.TypeString(pkg.Info.Types[n].Type, types.RelativeTo(pkg.Types))+") allocates on the hot path")
					}
				} else if b == "new" {
					report(n.Pos(), "new(...) allocates on the hot path")
				}
			case *ast.CompositeLit:
				switch pkg.Info.Types[n].Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates on the hot path")
				case *types.Slice:
					report(n.Pos(), "slice literal allocates on the hot path")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						report(n.Pos(), "&composite literal escapes to the heap on the hot path")
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isNonConstString(pkg.Info, n) {
					report(n.Pos(), "string concatenation allocates on the hot path")
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isNonConstString(pkg.Info, n.Lhs[0]) {
					report(n.Pos(), "string concatenation allocates on the hot path")
				}
				checkAppends(pkg, n, report)
			}
			return true
		})
	}
	return findings
}

// checkHotCall flags forbidden callees and enqueues module callees for
// traversal.
func checkHotCall(prog *Program, call *ast.CallExpr, fn *types.Func, report func(token.Pos, string), work *[]hotWork, root string) {
	if p := fn.Pkg(); p != nil {
		switch p.Path() {
		case "fmt":
			report(call.Pos(), "calls fmt."+fn.Name()+" (formatting allocates)")
			return
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				report(call.Pos(), "calls time."+fn.Name()+" (wall clock on the hot path)")
				return
			}
		}
	}
	if prog.InModule(fn.Pkg()) {
		if fd, ok := prog.FuncDecls[fn]; ok {
			*work = append(*work, hotWork{fd, root})
		}
	}
}

// checkAppends flags appends whose destination escapes the local
// frame. `x = append(x, ...)` with a matching non-local destination is
// the capacity-recycling idiom and is allowed; `p.f = append(other,
// ...)` and appends assigned to fields/elements/globals are not.
func checkAppends(pkg *Package, assign *ast.AssignStmt, report func(token.Pos, string)) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || builtinFor(pkg.Info, call) != "append" || len(call.Args) == 0 {
			continue
		}
		lhs := ast.Unparen(assign.Lhs[i])
		if id, ok := lhs.(*ast.Ident); ok {
			// Appending into a function-local slice variable: growth is
			// amortized into the variable's own capacity. Package-level
			// destinations still escape.
			if obj := pkg.Info.Defs[id]; obj != nil && obj.Parent() != pkg.Types.Scope() {
				continue
			}
			if obj, ok := pkg.Info.Uses[id].(*types.Var); ok && obj.Parent() != pkg.Types.Scope() {
				continue
			}
		}
		if exprKey(lhs) == exprKey(ast.Unparen(call.Args[0])) {
			continue // self-append: x.f = append(x.f, ...) recycles capacity
		}
		report(call.Pos(), "append into escaping destination on the hot path (self-append `x = append(x, ...)` is the allowed idiom)")
	}
}

// isNonConstString reports whether e has string type and is not a
// compile-time constant (constant concatenation folds away).
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// exprKey renders a canonical string for simple lvalue expressions so
// self-appends can be recognized structurally.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(ast.Unparen(e.X)) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(ast.Unparen(e.X)) + "[" + exprKey(ast.Unparen(e.Index)) + "]"
	case *ast.StarExpr:
		return "*" + exprKey(ast.Unparen(e.X))
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}

// funcDisplayName renders pkg-relative names like "(*Router).Process".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	return "(" + typeExprString(recv) + ")." + fd.Name.Name
}

func typeExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeExprString(e.X)
	case *ast.IndexExpr:
		return typeExprString(e.X)
	default:
		return "?"
	}
}
