// Package loading and type checking. The module has zero external
// dependencies and lint must not grow one, so instead of
// golang.org/x/tools/go/packages the loader shells out to `go list
// -deps -json` (dependency-first order, module packages only), parses
// each package with go/parser, and type-checks with go/types. Imports
// of module packages resolve from the loader's own cache — so type
// identities (telemetry.DropReason, packet.Packet) are shared across
// the whole program — and standard-library imports fall back to the
// stdlib source importer.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked module package with its syntax.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded module slice: every requested package plus its
// module-internal dependency closure, type-checked against one shared
// FileSet, with an index from function objects to their declarations
// so analyzers can traverse calls across package boundaries.
type Program struct {
	Fset      *token.FileSet
	Module    string // module path from go.mod ("tva")
	Packages  []*Package
	ByPath    map[string]*Package
	FuncDecls map[*types.Func]*FuncDecl

	std types.ImporterFrom
}

// FuncDecl locates one function declaration.
type FuncDecl struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
}

// Load lists patterns (e.g. "./...") from the module rooted at dir and
// returns the type-checked program. Test files are not loaded: the
// invariants guard the shipped data path, and _test.go files may form
// external test packages the simple loader cannot model.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := goList(dir, "list", "-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, fmt.Errorf("lint: resolving module path: %w", err)
	}
	module := strings.TrimSpace(string(mod))

	args := append([]string{"list", "-deps", "-json=Dir,ImportPath,Standard,GoFiles"}, patterns...)
	out, err := goList(dir, args...)
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w", err)
	}

	prog := &Program{
		Fset:      token.NewFileSet(),
		Module:    module,
		ByPath:    map[string]*Package{},
		FuncDecls: map[*types.Func]*FuncDecl{},
	}
	// The source importer type-checks standard-library dependencies
	// from source; cgo would defeat it, and the pure-Go variants are
	// what a static analyzer should see anyway. ForCompiler captures
	// build.Default, so the flag must be set on the global context.
	build.Default.CgoEnabled = false
	prog.std = importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Standard || lp.ImportPath == "unsafe" {
			continue
		}
		// -deps emits dependencies before dependents, so every import
		// of a module package is already in ByPath when we need it.
		if _, err := prog.load(lp.ImportPath, lp.Dir, lp.GoFiles); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// AddDir parses every .go file in dir as one extra package (used by
// fixture tests: testdata packages are invisible to go list) and
// type-checks it against the already-loaded program.
func (p *Program) AddDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	return p.load(importPath, dir, files)
}

// load parses and type-checks one package and registers it.
func (p *Program) load(importPath, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{
		Path: importPath,
		Dir:  dir,
		Info: &types.Info{
			Types:  map[ast.Expr]types.TypeAndValue{},
			Defs:   map[*ast.Ident]types.Object{},
			Uses:   map[*ast.Ident]types.Object{},
			Scopes: map[ast.Node]*types.Scope{},
		},
	}
	for _, name := range fileNames {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	var typeErr error
	conf := types.Config{
		Importer: (*progImporter)(p),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, p.Fset, pkg.Files, pkg.Info)
	if typeErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	p.Packages = append(p.Packages, pkg)
	p.ByPath[importPath] = pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				p.FuncDecls[fn] = &FuncDecl{Pkg: pkg, Decl: fd}
			}
		}
	}
	return pkg, nil
}

// InModule reports whether pkg (a types package) belongs to this
// module.
func (p *Program) InModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == p.Module || strings.HasPrefix(pkg.Path(), p.Module+"/")
}

// progImporter serves module packages from the program's cache and
// everything else from the stdlib source importer.
type progImporter Program

func (pi *progImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := pi.ByPath[path]; ok {
		return pkg.Types, nil
	}
	if path == pi.Module || strings.HasPrefix(path, pi.Module+"/") {
		return nil, fmt.Errorf("lint: module package %s not loaded (go list order violated?)", path)
	}
	return pi.std.ImportFrom(path, dir, mode)
}

// goList runs the go tool in dir with cgo disabled.
func goList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
