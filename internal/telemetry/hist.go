package telemetry

import (
	"math"
	"math/bits"

	"tva/internal/tvatime"
)

// histBuckets is one bucket per bit position of an int64 nanosecond
// duration, plus a zero bucket: bucket 0 holds d <= 0, bucket i holds
// 2^(i-1) <= d < 2^i. 64 buckets cover every representable duration,
// so Observe never branches on range.
const histBuckets = 64

// Histogram is a fixed-bucket power-of-two (HDR-style) histogram of
// durations, used for queueing delay and end-to-end latency recorded
// in virtual time. Observe is one bits.Len64 plus two array
// increments — no allocation, no floating point — so it can sit on
// the dequeue path of every interface. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64 // total observed nanoseconds
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d tvatime.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketLower returns the inclusive lower bound of bucket i in
// nanoseconds (0 for the zero bucket).
func BucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one duration.
func (h *Histogram) Observe(d tvatime.Duration) {
	h.counts[bucketOf(d)%histBuckets]++
	h.count++
	h.sum += int64(d)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() tvatime.Duration { return tvatime.Duration(h.sum) }

// Mean returns the average observed duration (0 if empty).
func (h *Histogram) Mean() tvatime.Duration {
	if h.count == 0 {
		return 0
	}
	return tvatime.Duration(h.sum / int64(h.count))
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= histBuckets {
		return 0
	}
	return h.counts[i]
}

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return histBuckets }

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1):
// the upper edge of the bucket containing that rank. Power-of-two
// buckets make this exact to within a factor of two, which is all the
// time-series plots need.
func (h *Histogram) Quantile(q float64) tvatime.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, n := range h.counts {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			if i == histBuckets-1 {
				break // upper edge would overflow; clamp to max
			}
			return tvatime.Duration(int64(1) << i) // upper edge
		}
	}
	return tvatime.Duration(math.MaxInt64)
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
}
