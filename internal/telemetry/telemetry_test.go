package telemetry

import (
	"strings"
	"testing"

	"tva/internal/tvatime"
)

func TestDropReasonNames(t *testing.T) {
	seen := map[string]bool{}
	for r := DropReason(0); int(r) < NumDropReasons; r++ {
		name := r.String()
		if name == "" || name == "unknown" {
			t.Fatalf("reason %d has no name", r)
		}
		if seen[name] {
			t.Fatalf("duplicate reason name %q", name)
		}
		seen[name] = true
	}
	if DropReason(200).String() != "unknown" {
		t.Fatalf("out-of-range reason should stringify as unknown")
	}
}

func TestDropCounters(t *testing.T) {
	var c DropCounters
	c.Inc(DropCapExpired)
	c.Inc(DropCapExpired)
	c.Add(DropFilter, 3)
	if got := c.Get(DropCapExpired); got != 2 {
		t.Fatalf("Get(cap-expired) = %d, want 2", got)
	}
	if got := c.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	var d DropCounters
	d.Inc(DropCapInvalid)
	d.Merge(&c)
	if got := d.Total(); got != 6 {
		t.Fatalf("merged Total = %d, want 6", got)
	}
}

// TestHistogramBucketBoundaries pins the power-of-two bucket edges:
// bucket 0 holds d <= 0, bucket i holds [2^(i-1), 2^i).
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      tvatime.Duration
		bucket int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{tvatime.Duration(1 << 62), 63},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.d)
		if got := h.Bucket(tc.bucket); got != 1 {
			// Find where it actually landed for the failure message.
			landed := -1
			for i := 0; i < h.NumBuckets(); i++ {
				if h.Bucket(i) == 1 {
					landed = i
				}
			}
			t.Errorf("Observe(%d): landed in bucket %d, want %d", tc.d, landed, tc.bucket)
		}
		if tc.bucket > 0 && tc.bucket < 63 {
			lo := BucketLower(tc.bucket)
			if int64(tc.d) < lo || int64(tc.d) >= lo*2 {
				t.Errorf("bucket %d bounds [%d,%d) exclude sample %d", tc.bucket, lo, lo*2, tc.d)
			}
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, d := range []tvatime.Duration{10, 20, 30, 40} {
		h.Observe(d)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Mean() != 25 {
		t.Fatalf("count/sum/mean = %d/%d/%d, want 4/100/25", h.Count(), h.Sum(), h.Mean())
	}
	// All samples fall in [8,64); the median upper bound must too.
	if q := h.Quantile(0.5); q < 16 || q > 64 {
		t.Fatalf("Quantile(0.5) = %d, want within (16,64]", q)
	}
	var h2 Histogram
	h2.Observe(1000)
	h2.Merge(&h)
	if h2.Count() != 5 || h2.Sum() != 1100 {
		t.Fatalf("after merge count/sum = %d/%d, want 5/1100", h2.Count(), h2.Sum())
	}
}

func TestSamplerRing(t *testing.T) {
	s := NewSampler(3)
	var x float64
	s.AddGauge("x", func() float64 { return x })
	for i := 1; i <= 5; i++ {
		x = float64(i)
		s.Sample(tvatime.Time(i))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capacity)", s.Len())
	}
	// Oldest two rows were overwritten; held rows are samples 3,4,5.
	for i := 0; i < 3; i++ {
		tm, row := s.Row(i)
		if int64(tm) != int64(i+3) || row[0] != float64(i+3) {
			t.Fatalf("row %d = (t=%d, x=%v), want (t=%d, x=%d)", i, tm, row[0], i+3, i+3)
		}
	}
}

func TestSamplerOutputDeterministic(t *testing.T) {
	build := func() string {
		s := NewSampler(16)
		v := 0.0
		s.AddGauge("count", func() float64 { v++; return v })
		s.AddGauge("frac", func() float64 { return v / 3 })
		for i := 0; i < 4; i++ {
			s.Sample(tvatime.Time(i) * tvatime.Time(tvatime.Second))
		}
		var sb strings.Builder
		if err := s.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("sampler output not byte-identical across runs:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"columns":["t_sec","count","frac"]`) {
		t.Fatalf("JSON header missing columns: %s", a)
	}
	if !strings.Contains(a, "t_sec,count,frac") {
		t.Fatalf("CSV header missing: %s", a)
	}
}

func TestRingTracerBounded(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Time: tvatime.Time(i), Kind: EventDrop, Reason: DropFilter})
	}
	if tr.Len() != 4 || tr.Total() != 10 {
		t.Fatalf("Len/Total = %d/%d, want 4/10", tr.Len(), tr.Total())
	}
	for i := 0; i < 4; i++ {
		if got := tr.Event(i).Time; int64(got) != int64(i+6) {
			t.Fatalf("event %d time = %d, want %d (oldest-first)", i, got, i+6)
		}
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reason=filter") {
		t.Fatalf("trace text missing drop reason: %s", sb.String())
	}
}

// TestTracerRecordNoAlloc pins the hot-path property: recording into a
// ring tracer does not allocate.
func TestTracerRecordNoAlloc(t *testing.T) {
	tr := NewRingTracer(128)
	ev := Event{Time: 1, Kind: EventEnqueue, Router: 3, Src: 1, Dst: 2, Size: 1500}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("RingTracer.Record allocates %v/op, want 0", allocs)
	}
}
