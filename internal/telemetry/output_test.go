package telemetry

import (
	"fmt"
	"strings"
	"testing"

	"tva/internal/tvatime"
)

// TestSamplerWriteCSV pins the exact CSV shape: header of t_sec plus
// gauge names in registration order, one row per sample, integer gauge
// values without a decimal point, times with fixed six-digit precision.
func TestSamplerWriteCSV(t *testing.T) {
	s := NewSampler(8)
	var a, b float64
	s.AddGauge("backlog_pkts", func() float64 { return a })
	s.AddGauge("token_bytes", func() float64 { return b })

	a, b = 3, 1562.5
	s.Sample(tvatime.Time(250 * tvatime.Millisecond))
	a, b = 0, 0
	s.Sample(tvatime.Time(500 * tvatime.Millisecond))

	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_sec,backlog_pkts,token_bytes\n" +
		"0.250000,3,1562.5\n" +
		"0.500000,0,0\n"
	if buf.String() != want {
		t.Fatalf("CSV mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestSamplerWriteJSON pins the exact hand-rendered JSON layout.
func TestSamplerWriteJSON(t *testing.T) {
	s := NewSampler(8)
	v := 7.0
	s.AddGauge("queued", func() float64 { return v })
	s.Sample(tvatime.Time(1 * tvatime.Second))
	v = 2.25
	s.Sample(tvatime.Time(2 * tvatime.Second))

	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"columns":["t_sec","queued"],` + "\n" +
		` "rows":[` + "\n" +
		"  [1.000000,7],\n" +
		"  [2.000000,2.25]\n" +
		" ]}\n"
	if buf.String() != want {
		t.Fatalf("JSON mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestSamplerWraparound fills the ring past capacity and checks that
// both Row and the writers keep only the newest rows, oldest first.
func TestSamplerWraparound(t *testing.T) {
	s := NewSampler(3)
	var v float64
	s.AddGauge("v", func() float64 { return v })
	for i := 1; i <= 5; i++ {
		v = float64(i * 10)
		s.Sample(tvatime.Time(i) * tvatime.Time(tvatime.Second))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i, want := range []float64{30, 40, 50} {
		tm, row := s.Row(i)
		if row[0] != want {
			t.Fatalf("Row(%d) = %v, want %v", i, row[0], want)
		}
		if tm != tvatime.Time(i+3)*tvatime.Time(tvatime.Second) {
			t.Fatalf("Row(%d) time = %v", i, tm)
		}
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_sec,v\n3.000000,30\n4.000000,40\n5.000000,50\n"
	if buf.String() != want {
		t.Fatalf("wraparound CSV:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestSamplerAddGaugeAfterSampleErrors(t *testing.T) {
	s := NewSampler(2)
	if err := s.AddGauge("x", func() float64 { return 0 }); err != nil {
		t.Fatalf("pre-seal AddGauge: %v", err)
	}
	s.Sample(0)
	err := s.AddGauge("y", func() float64 { return 0 })
	if err == nil {
		t.Fatal("AddGauge after Sample did not error")
	}
	if !strings.Contains(err.Error(), `"y"`) {
		t.Fatalf("error should name the rejected gauge: %v", err)
	}
	// The failed registration must not have grown the gauge set: a
	// later Sample would index rows sized for the sealed set.
	if len(s.Names()) != 1 {
		t.Fatalf("names after rejected AddGauge = %v", s.Names())
	}
	s.Sample(1)
	if s.Len() != 2 {
		t.Fatalf("sampler unusable after rejected AddGauge: len=%d", s.Len())
	}
}

// TestRingTracerWriteTextWraparound overflows the ring and checks that
// WriteText emits the surviving events oldest first, with the drop
// reason appended only on drop lines.
func TestRingTracerWriteTextWraparound(t *testing.T) {
	tr := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		ev := Event{
			Time:   tvatime.Time(i) * tvatime.Time(tvatime.Millisecond),
			Kind:   EventKind(i % 5),
			Router: i,
			Src:    100 + uint32(i),
			Dst:    200,
			Class:  2,
			Size:   1000 + i,
		}
		if ev.Kind == EventDrop {
			ev.Reason = DropInboxOverflow
		}
		tr.Record(ev)
	}
	if tr.Len() != 3 || tr.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3/5", tr.Len(), tr.Total())
	}

	var buf strings.Builder
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("0.002000 %-8s router=2 src=102 dst=200 class=2 size=1002\n", EventDequeue) +
		fmt.Sprintf("0.003000 %-8s router=3 src=103 dst=200 class=2 size=1003 reason=%s\n", EventDrop, DropInboxOverflow) +
		fmt.Sprintf("0.004000 %-8s router=4 src=104 dst=200 class=2 size=1004\n", EventDeliver)
	if buf.String() != want {
		t.Fatalf("WriteText mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRingTracerEventBounds checks the oldest-first indexing before
// and after overflow.
func TestRingTracerEventBounds(t *testing.T) {
	tr := NewRingTracer(2)
	tr.Record(Event{Router: 1})
	if got := tr.Event(0).Router; got != 1 {
		t.Fatalf("Event(0).Router = %d, want 1", got)
	}
	tr.Record(Event{Router: 2})
	tr.Record(Event{Router: 3})
	if tr.Event(0).Router != 2 || tr.Event(1).Router != 3 {
		t.Fatal("post-overflow order wrong: want oldest=2, newest=3")
	}
	if tr.Event(-1) != (Event{}) || tr.Event(2) != (Event{}) {
		t.Fatal("out-of-range Event should return zero value")
	}
}
