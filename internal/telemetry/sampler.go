package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"tva/internal/tvatime"
)

// Sampler snapshots a fixed set of named gauges into preallocated ring
// buffers on a virtual-time interval. Gauges are registered once (in a
// deterministic order — registration order is the column order of the
// output), then Sample(now) reads every gauge with a plain function
// call and stores the row with array writes. When the ring fills, the
// oldest rows are overwritten, so a sampler holds the most recent
// Capacity rows of the run.
//
// All output formatting is fixed (strconv with explicit precision), so
// two runs of the same configuration produce byte-identical series
// regardless of worker count or host.
type Sampler struct {
	names  []string
	gauges []func() float64

	cap    int
	times  []tvatime.Time // ring, len == cap once allocated
	values []float64      // ring, row i at values[i*len(names):]
	next   int            // next ring slot to write
	total  int            // rows ever written
	sealed bool           // first Sample seals the gauge set
}

// NewSampler returns a sampler holding at most capacity rows.
func NewSampler(capacity int) *Sampler {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Sampler{cap: capacity}
}

// AddGauge registers a named gauge. Registration order fixes the
// output column order. The first Sample seals the gauge set (the ring
// is sized from it), so a late AddGauge returns an error and leaves
// the sampler unchanged.
func (s *Sampler) AddGauge(name string, fn func() float64) error {
	if s.sealed {
		return fmt.Errorf("telemetry: AddGauge(%q) after first Sample", name)
	}
	s.names = append(s.names, name)
	s.gauges = append(s.gauges, fn)
	return nil
}

// Sample reads every gauge and records one row stamped now.
func (s *Sampler) Sample(now tvatime.Time) {
	if !s.sealed {
		s.sealed = true
		s.times = make([]tvatime.Time, s.cap)
		s.values = make([]float64, s.cap*len(s.gauges))
	}
	i := s.next
	s.times[i] = now
	row := s.values[i*len(s.gauges) : (i+1)*len(s.gauges)]
	for j, fn := range s.gauges {
		row[j] = fn()
	}
	s.next = (s.next + 1) % s.cap
	s.total++
}

// Names returns the gauge names in column order.
func (s *Sampler) Names() []string { return s.names }

// Len returns the number of rows currently held.
func (s *Sampler) Len() int {
	if s.total < s.cap {
		return s.total
	}
	return s.cap
}

// Row returns the i-th held row (0 = oldest) as its timestamp and
// values slice. The slice aliases the ring; do not retain it across
// another Sample.
func (s *Sampler) Row(i int) (tvatime.Time, []float64) {
	n := s.Len()
	if i < 0 || i >= n {
		return 0, nil
	}
	start := 0
	if s.total > s.cap {
		start = s.next
	}
	k := (start + i) % s.cap
	return s.times[k], s.values[k*len(s.gauges) : (k+1)*len(s.gauges)]
}

// formatValue renders a gauge value deterministically: integers (the
// common case — counters, queue depths) without a decimal point,
// everything else with 'g' formatting.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV emits the held rows as CSV: a header of t_sec plus gauge
// names, then one row per sample with time in seconds.
func (s *Sampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "t_sec")
	for _, n := range s.names {
		fmt.Fprint(bw, ",", n)
	}
	fmt.Fprintln(bw)
	for i := 0; i < s.Len(); i++ {
		t, row := s.Row(i)
		fmt.Fprint(bw, strconv.FormatFloat(t.Sub(0).Seconds(), 'f', 6, 64))
		for _, v := range row {
			fmt.Fprint(bw, ",", formatValue(v))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteJSON emits the held rows as a single JSON object:
//
//	{"columns": ["t_sec", ...], "rows": [[t, v, ...], ...]}
//
// hand-rendered with fixed formatting so output is byte-stable.
func (s *Sampler) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, `{"columns":["t_sec"`)
	for _, n := range s.names {
		fmt.Fprintf(bw, ",%q", n)
	}
	fmt.Fprint(bw, "],\n \"rows\":[")
	for i := 0; i < s.Len(); i++ {
		t, row := s.Row(i)
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprint(bw, "\n  [", strconv.FormatFloat(t.Sub(0).Seconds(), 'f', 6, 64))
		for _, v := range row {
			fmt.Fprint(bw, ",", formatValue(v))
		}
		fmt.Fprint(bw, "]")
	}
	fmt.Fprintln(bw, "\n ]}")
	return bw.Flush()
}
