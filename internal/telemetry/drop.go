// Package telemetry is the repository's zero-allocation observability
// layer: a shared drop-reason taxonomy, power-of-two histograms for
// delay distributions, a virtual-time gauge sampler, and an optional
// per-packet tracer. Everything on the data path is a plain array
// increment behind at most one branch, so the forwarding hot path
// stays allocation-free with metrics enabled.
//
// The package sits below every data-path package: it may import only
// the standard library and tvatime, never packet/sched/core, so all of
// those can depend on it without cycles.
package telemetry

// DropReason says why a packet died. Every drop site in the router
// pipeline attributes exactly one reason; the set is the union of the
// causes the paper's evaluation distinguishes (Figs. 8-12): capability
// checks (§3.4), demotion (§3.8), the request-channel rate limit and
// per-path request queues (§3.2), per-destination regular queues and
// the flow-cache bound (§3.6, §3.9), the legacy FIFO, host inbox
// overflow in the overlay, and pushback's rate-limit filters.
type DropReason uint8

const (
	// DropNone is the explicit "no reason attributed" zero value. It
	// exists so that a DropReason a programmer forgot to set is
	// distinguishable from the first real reason (cap-invalid was the
	// zero value before PR 3, so an unattributed drop silently counted
	// as a capability failure). It is never a legal argument to a
	// drop-accounting call: the dropreason analyzer (internal/lint)
	// flags any constant-zero DropReason passed to a function.
	DropNone DropReason = iota
	// DropCapInvalid: the capability list failed validation — bad
	// pre-capability MAC, wrong interface secret, malformed pointer.
	DropCapInvalid
	// DropCapExpired: the capability was once valid but its
	// authorization is used up — the expiry passed or the byte budget
	// (N bytes in T seconds, §3.4) is exhausted.
	DropCapExpired
	// DropDemoted: a packet demoted to legacy (§3.8) was dropped from
	// the shared legacy FIFO.
	DropDemoted
	// DropRequestRateLimited: the request-channel token bucket was the
	// bottleneck — a request already selected by DRR could not be sent
	// within its rate ceiling and the backlog behind it overflowed.
	DropRequestRateLimited
	// DropRequestQueueFull: a per-path-identifier request queue (or the
	// request queue-count bound) overflowed.
	DropRequestQueueFull
	// DropRegularQueueFull: a per-destination regular queue overflowed
	// its byte cap.
	DropRegularQueueFull
	// DropLegacyQueueFull: the shared legacy FIFO overflowed with a
	// packet that was legacy to begin with (never demoted).
	DropLegacyQueueFull
	// DropFlowCachePressure: the flow cache (or the per-destination
	// queue bound derived from it, §3.9) had no room, so a packet that
	// should have regular service could not get it.
	DropFlowCachePressure
	// DropInboxOverflow: an overlay host's inbound ring was full.
	DropInboxOverflow
	// DropFilter: a pushback rate-limit filter discarded the packet.
	DropFilter
	// DropLinkLoss: the packet was lost on the wire by a lossy-link
	// impairment model (random loss or duplication-free corruption).
	DropLinkLoss
	// DropLinkDown: the packet was transmitted into (or in flight
	// across) a link that is inside a scheduled down window.
	DropLinkDown
	// DropRouterRestart: the packet was sitting in a router's output
	// queue when the router crashed; the restart flush released it.
	DropRouterRestart

	// NumDropReasons sizes per-router counter arrays.
	NumDropReasons = int(DropRouterRestart) + 1
)

var dropReasonNames = [NumDropReasons]string{
	DropNone:               "none",
	DropCapInvalid:         "cap-invalid",
	DropCapExpired:         "cap-expired",
	DropDemoted:            "demoted",
	DropRequestRateLimited: "request-rate-limited",
	DropRequestQueueFull:   "request-queue-full",
	DropRegularQueueFull:   "regular-queue-full",
	DropLegacyQueueFull:    "legacy-queue-full",
	DropFlowCachePressure:  "flowcache-pressure",
	DropInboxOverflow:      "inbox-overflow",
	DropFilter:             "filter",
	DropLinkLoss:           "link-loss",
	DropLinkDown:           "link-down",
	DropRouterRestart:      "router-restart",
}

// String returns the stable kebab-case name used in JSON/CSV output.
func (r DropReason) String() string {
	if int(r) < NumDropReasons {
		return dropReasonNames[r]
	}
	return "unknown"
}

// DropCounters is a per-router fixed-size counter array, one slot per
// reason. The zero value is ready to use; incrementing is a single
// array store, so it is safe on the allocation-free hot path. It is
// not synchronized — each router/scheduler owns its array and callers
// needing cross-goroutine reads hold their own lock.
type DropCounters [NumDropReasons]uint64

// Inc attributes one dropped packet to reason r.
func (c *DropCounters) Inc(r DropReason) { c[r]++ }

// Add attributes n dropped packets to reason r.
func (c *DropCounters) Add(r DropReason, n uint64) { c[r] += n }

// Get returns the count for reason r.
func (c *DropCounters) Get(r DropReason) uint64 { return c[r] }

// Total returns the sum over all reasons.
func (c *DropCounters) Total() uint64 {
	var t uint64
	for _, n := range c {
		t += n
	}
	return t
}

// Merge adds other's counts into c.
func (c *DropCounters) Merge(other *DropCounters) {
	for i := range c {
		c[i] += other[i]
	}
}
