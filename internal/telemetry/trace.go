package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"tva/internal/tvatime"
)

// EventKind labels a per-packet trace event.
type EventKind uint8

const (
	// EventClassify: a router finished capability processing and
	// assigned the packet a class.
	EventClassify EventKind = iota
	// EventEnqueue: the packet entered a link output queue.
	EventEnqueue
	// EventDequeue: the packet left a link output queue for the wire.
	EventDequeue
	// EventDrop: the packet was discarded (Reason is valid).
	EventDrop
	// EventDeliver: the packet reached its destination host.
	EventDeliver
)

var eventKindNames = [...]string{"classify", "enqueue", "dequeue", "drop", "deliver"}

// String returns the event kind's name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one per-packet trace record. It is a flat value struct so
// recording copies it into a preallocated ring without allocating.
type Event struct {
	Time   tvatime.Time
	Kind   EventKind
	Router int    // router/interface id, -1 if not applicable
	Src    uint32 // packet source address
	Dst    uint32 // packet destination address
	Class  uint8  // packet.Class at event time
	Reason DropReason
	Size   int
}

// Tracer receives per-packet events. Implementations must not retain
// references into the event (it is a value) and must not allocate on
// Record if they sit on the hot path. A nil Tracer field is the
// disabled state; every call site guards with a single nil check.
type Tracer interface {
	Record(ev Event)
}

// RingTracer keeps the most recent capacity events in a preallocated
// ring. Record is two array stores; when full it overwrites the
// oldest event.
type RingTracer struct {
	events []Event
	next   int
	total  int
}

// NewRingTracer returns a tracer holding at most capacity events.
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &RingTracer{events: make([]Event, capacity)}
}

// Record implements Tracer.
func (t *RingTracer) Record(ev Event) {
	t.events[t.next] = ev
	t.next = (t.next + 1) % len(t.events)
	t.total++
}

// Len returns the number of events held.
func (t *RingTracer) Len() int {
	if t.total < len(t.events) {
		return t.total
	}
	return len(t.events)
}

// Total returns the number of events ever recorded (held + overwritten).
func (t *RingTracer) Total() int { return t.total }

// Event returns the i-th held event (0 = oldest).
func (t *RingTracer) Event(i int) Event {
	n := t.Len()
	if i < 0 || i >= n {
		return Event{}
	}
	start := 0
	if t.total > len(t.events) {
		start = t.next
	}
	return t.events[(start+i)%len(t.events)]
}

// WriteText dumps the held events, oldest first, one line each.
func (t *RingTracer) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.Len(); i++ {
		ev := t.Event(i)
		fmt.Fprintf(bw, "%.6f %-8s router=%d src=%d dst=%d class=%d size=%d",
			ev.Time.Sub(0).Seconds(), ev.Kind, ev.Router, ev.Src, ev.Dst, ev.Class, ev.Size)
		if ev.Kind == EventDrop {
			fmt.Fprintf(bw, " reason=%s", ev.Reason)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
