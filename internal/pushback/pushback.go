// Package pushback implements the Pushback baseline (Mahajan et al.,
// "Controlling High Bandwidth Aggregates in the Network"; Ioannidis &
// Bellovin's router defense), as the paper uses it in §5: a router
// detects sustained congestion at an output link, identifies the
// destination-based aggregate responsible for most drops, rate-limits
// that aggregate, and recursively pushes filters to the upstream links
// that contribute most of it.
//
// The filter allocation across contributing input links is max-min
// (water-filling): links sending less than their share of the
// aggregate limit are untouched, heavy contributors are clipped. That
// is why pushback isolates well while attackers are few and heavy, and
// poorly once the flood arrives in many small pieces indistinguishable
// from legitimate traffic — the behaviour Fig. 8 shows.
//
// Inter-router propagation uses direct method calls standing in for
// pushback's control messages (DESIGN.md §2).
package pushback

import (
	"sort"

	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// Config tunes the pushback control loop.
type Config struct {
	// Interval is the detection/refresh period (default 500ms).
	Interval tvatime.Duration
	// DropRateThreshold triggers aggregate detection (default 0.05).
	DropRateThreshold float64
	// TargetUtilization is the fraction of the congested link's
	// capacity total arrivals are limited toward (default 0.95).
	TargetUtilization float64
	// ReleaseAfter is how many consecutive calm intervals release a
	// filter (default 4).
	ReleaseAfter int
	// MaxDepth bounds upstream propagation (default 2).
	MaxDepth int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * tvatime.Millisecond
	}
	if c.DropRateThreshold <= 0 {
		c.DropRateThreshold = 0.05
	}
	if c.TargetUtilization <= 0 {
		c.TargetUtilization = 0.95
	}
	if c.ReleaseAfter <= 0 {
		c.ReleaseAfter = 4
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 2
	}
	return c
}

// linkID identifies an input link (an interface index on this router).
type linkID int

type aggKey struct {
	in  linkID
	dst packet.Addr
}

// filter rate-limits one (input link, destination aggregate) pair with
// a token bucket refilled by the control loop's allocation.
type filter struct {
	rateBps float64 // bytes/sec
	tokens  float64
	last    tvatime.Time
	calm    int // consecutive intervals under the limit
}

func (f *filter) allow(size int, now tvatime.Time) bool {
	if now.After(f.last) {
		f.tokens += f.rateBps * now.Sub(f.last).Seconds()
		if burst := f.rateBps * 0.1; f.tokens > burst+3000 {
			f.tokens = burst + 3000
		}
		f.last = now
	}
	if f.tokens >= float64(size) {
		f.tokens -= float64(size)
		return true
	}
	return false
}

// Stats counts pushback activity.
type Stats struct {
	FiltersActive   int
	Activations     uint64
	Releases        uint64
	PushedUpstream  uint64
	AggregatesFound uint64
}

// Router is one pushback router's control state. The owning node calls
// Arrival for every received packet (and honours its verdict), reports
// output-queue drops via RecordDrop, and ticks the control loop with
// Tick every Config.Interval.
type Router struct {
	cfg Config

	// arrivals accumulates bytes per (input link, destination) within
	// the current interval.
	arrivals map[aggKey]float64
	// drops accumulates output-queue drop bytes per destination within
	// the current interval.
	drops     map[packet.Addr]float64
	sentBytes float64
	dropBytes float64
	outBps    int64 // congested output capacity (bits/sec)
	filters   map[aggKey]*filter
	upstream  map[linkID]*Router // neighbouring pushback routers
	lastSweep tvatime.Time
	interval  tvatime.Duration
	Stats     Stats
	// Drops attributes packets discarded by rate-limit filters.
	Drops telemetry.DropCounters
}

// FilterDrops returns the packets discarded by rate-limit filters.
func (r *Router) FilterDrops() uint64 { return r.Drops.Get(telemetry.DropFilter) }

// NewRouter returns a pushback router watching one congested output
// link of capacity outBps.
func NewRouter(outBps int64, cfg Config) *Router {
	cfg = cfg.withDefaults()
	return &Router{
		cfg:      cfg,
		arrivals: make(map[aggKey]float64),
		drops:    make(map[packet.Addr]float64),
		outBps:   outBps,
		filters:  make(map[aggKey]*filter),
		upstream: make(map[linkID]*Router),
		interval: cfg.Interval,
	}
}

// SetUpstream registers a neighbouring pushback router reachable via
// the given input link, enabling recursive propagation.
func (r *Router) SetUpstream(in int, up *Router) { r.upstream[linkID(in)] = up }

// Interval returns the control period (the owner schedules Tick).
func (r *Router) Interval() tvatime.Duration { return r.interval }

// Arrival records an incoming packet and applies any filter for its
// (input link, destination). It reports whether to forward the packet.
func (r *Router) Arrival(pkt *packet.Packet, in int, now tvatime.Time) bool {
	key := aggKey{linkID(in), pkt.Dst}
	r.arrivals[key] += float64(pkt.Size)
	if f := r.filters[key]; f != nil && !f.allow(pkt.Size, now) {
		r.Drops.Inc(telemetry.DropFilter)
		return false
	}
	return true
}

// RecordDrop records an output-queue drop (wired to the congested
// interface's OnDrop).
func (r *Router) RecordDrop(pkt *packet.Packet) {
	r.drops[pkt.Dst] += float64(pkt.Size)
	r.dropBytes += float64(pkt.Size)
}

// RecordSent records bytes transmitted on the congested output within
// the interval (the owner samples the interface's counters).
func (r *Router) RecordSent(bytes uint64) { r.sentBytes += float64(bytes) }

// Tick runs one control interval: detect congestion, pick the
// aggregate, allocate per-link limits max-min, refresh or release
// filters, and recurse upstream.
func (r *Router) Tick(now tvatime.Time) {
	defer r.resetInterval()

	total := r.sentBytes + r.dropBytes
	dropRate := 0.0
	if total > 0 {
		dropRate = r.dropBytes / total
	}

	if dropRate > r.cfg.DropRateThreshold {
		dst, ok := r.worstAggregate()
		if ok {
			r.Stats.AggregatesFound++
			r.limitAggregate(dst, now, r.cfg.MaxDepth)
		}
	}

	r.reviewFilters(now)
	r.Stats.FiltersActive = len(r.filters)
}

// worstAggregate returns the destination with the most dropped bytes.
func (r *Router) worstAggregate() (packet.Addr, bool) {
	var best packet.Addr
	var bestBytes float64
	for dst, b := range r.drops {
		if b > bestBytes {
			best, bestBytes = dst, b
		}
	}
	return best, bestBytes > 0
}

// limitAggregate computes the aggregate's allowed rate and installs
// per-input-link filters at their max-min shares.
func (r *Router) limitAggregate(dst packet.Addr, now tvatime.Time, depth int) {
	secs := r.interval.Seconds()
	var aggRate, otherRate float64 // bytes/sec
	contrib := make(map[linkID]float64)
	for key, bytes := range r.arrivals {
		rate := bytes / secs
		if key.dst == dst {
			aggRate += rate
			contrib[key.in] += rate
		} else {
			otherRate += rate
		}
	}
	if aggRate <= 0 {
		return
	}
	capacityBps := float64(r.outBps) / 8 * r.cfg.TargetUtilization
	limit := capacityBps - otherRate
	if limit < capacityBps*0.05 {
		limit = capacityBps * 0.05 // never choke the aggregate entirely
	}
	if aggRate <= limit {
		return // aggregate fits; congestion is elsewhere
	}

	shares := waterfill(contrib, limit)
	for in, share := range shares {
		key := aggKey{in, dst}
		f := r.filters[key]
		if f == nil {
			f = &filter{last: now}
			r.filters[key] = f
			r.Stats.Activations++
		}
		f.rateBps = share
		f.calm = 0
		if up := r.upstream[in]; up != nil && depth > 1 {
			// Ask the upstream router to hold the aggregate to this
			// link's share before it even arrives here.
			r.Stats.PushedUpstream++
			up.AcceptLimit(dst, share, now, depth-1)
		}
	}
}

// AcceptLimit handles a pushback request from downstream: limit the
// aggregate toward dst to rateBps (bytes/sec) across this router's
// inputs, max-min by contribution.
func (r *Router) AcceptLimit(dst packet.Addr, rateBps float64, now tvatime.Time, depth int) {
	secs := r.interval.Seconds()
	contrib := make(map[linkID]float64)
	for key, bytes := range r.arrivals {
		if key.dst == dst {
			contrib[key.in] += bytes / secs
		}
	}
	if len(contrib) == 0 {
		return
	}
	shares := waterfill(contrib, rateBps)
	for in, share := range shares {
		key := aggKey{in, dst}
		f := r.filters[key]
		if f == nil {
			f = &filter{last: now}
			r.filters[key] = f
			r.Stats.Activations++
		}
		f.rateBps = share
		f.calm = 0
		if up := r.upstream[in]; up != nil && depth > 1 {
			r.Stats.PushedUpstream++
			up.AcceptLimit(dst, share, now, depth-1)
		}
	}
}

// reviewFilters releases filters whose aggregate arrivals stayed under
// the limit for ReleaseAfter consecutive intervals.
func (r *Router) reviewFilters(now tvatime.Time) {
	secs := r.interval.Seconds()
	for key, f := range r.filters {
		arrRate := r.arrivals[key] / secs
		if arrRate <= f.rateBps {
			f.calm++
			if f.calm >= r.cfg.ReleaseAfter {
				delete(r.filters, key)
				r.Stats.Releases++
			}
		} else {
			f.calm = 0
		}
	}
}

func (r *Router) resetInterval() {
	clear(r.arrivals)
	clear(r.drops)
	r.sentBytes = 0
	r.dropBytes = 0
}

// waterfill allocates capacity across demands max-min: every demand at
// or below the fair water level is fully satisfied; the rest are
// clipped to the level.
func waterfill(demands map[linkID]float64, capacity float64) map[linkID]float64 {
	if len(demands) == 0 {
		return nil
	}
	type dl struct {
		id linkID
		d  float64
	}
	list := make([]dl, 0, len(demands))
	var totalDemand float64
	for id, d := range demands {
		list = append(list, dl{id, d})
		totalDemand += d
	}
	out := make(map[linkID]float64, len(list))
	if totalDemand <= capacity {
		for _, e := range list {
			out[e.id] = e.d
		}
		return out
	}
	sort.Slice(list, func(i, j int) bool { return list[i].d < list[j].d })
	remaining := capacity
	for i, e := range list {
		level := remaining / float64(len(list)-i)
		if e.d <= level {
			out[e.id] = e.d
			remaining -= e.d
		} else {
			out[e.id] = level
			remaining -= level
		}
	}
	return out
}
