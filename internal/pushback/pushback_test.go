package pushback

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

func at(sec float64) tvatime.Time { return tvatime.FromSeconds(sec) }

func TestWaterfillUnderload(t *testing.T) {
	d := map[linkID]float64{1: 10, 2: 20}
	out := waterfill(d, 100)
	if out[1] != 10 || out[2] != 20 {
		t.Errorf("underload must satisfy all demands: %v", out)
	}
}

func TestWaterfillMaxMin(t *testing.T) {
	// Demands 5, 50, 50 with capacity 60: small demand satisfied, the
	// two heavy ones split the rest equally.
	d := map[linkID]float64{1: 5, 2: 50, 3: 50}
	out := waterfill(d, 60)
	if out[1] != 5 {
		t.Errorf("small demand clipped: %v", out)
	}
	if math.Abs(out[2]-27.5) > 0.01 || math.Abs(out[3]-27.5) > 0.01 {
		t.Errorf("heavy demands not levelled: %v", out)
	}
}

func TestWaterfillProperties(t *testing.T) {
	f := func(seed int64, capRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		d := map[linkID]float64{}
		var total float64
		for i := 0; i < n; i++ {
			v := rng.Float64() * 100
			d[linkID(i)] = v
			total += v
		}
		capacity := float64(capRaw%1000) + 1
		out := waterfill(d, capacity)
		var sum float64
		for id, share := range out {
			if share > d[id]+1e-9 {
				return false // never allocate more than demand
			}
			sum += share
		}
		limit := math.Min(capacity, total)
		return sum <= limit+1e-6 && sum >= limit-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mkPkt(in int, dst packet.Addr, size int) *packet.Packet {
	return &packet.Packet{Src: packet.Addr(in + 1000), Dst: dst, Size: size}
}

// driveInterval simulates one control interval of traffic: rates is
// bytes/interval per (link, dst); overload drops at the output are
// reported for the victim dst proportionally.
func driveInterval(r *Router, now tvatime.Time, arrivals map[aggKey]int, outCapBytes int) (forwarded int) {
	total := 0
	for key, bytes := range arrivals {
		sent := 0
		for sent < bytes {
			pkt := mkPkt(int(key.in), key.dst, 1000)
			if r.Arrival(pkt, int(key.in), now) {
				if total < outCapBytes {
					total += 1000
					forwarded += 1000
					r.RecordSent(1000)
				} else {
					r.RecordDrop(pkt)
				}
			}
			sent += 1000
		}
	}
	return forwarded
}

func TestDetectionInstallsFilters(t *testing.T) {
	// 10 Mb/s output = 625 KB per 500ms interval. One heavy aggregate
	// (dst 9) from links 1..4 at 400 KB/interval each, plus a light
	// flow (dst 5) at 50 KB/interval.
	r := NewRouter(10_000_000, Config{})
	now := at(0)
	arrivals := map[aggKey]int{
		{1, 9}: 400_000, {2, 9}: 400_000, {3, 9}: 400_000, {4, 9}: 400_000,
		{5, 5}: 50_000,
	}
	driveInterval(r, now, arrivals, 625_000)
	r.Tick(now.Add(r.Interval()))
	if r.Stats.FiltersActive == 0 {
		t.Fatal("no filters installed despite heavy drops")
	}
	if r.Stats.AggregatesFound != 1 {
		t.Errorf("AggregatesFound = %d, want 1", r.Stats.AggregatesFound)
	}
	// Filters must target the heavy aggregate's links, not the light flow.
	if _, bad := r.filters[aggKey{5, 5}]; bad {
		t.Error("light innocent flow was filtered")
	}
	for _, in := range []linkID{1, 2, 3, 4} {
		if _, ok := r.filters[aggKey{in, 9}]; !ok {
			t.Errorf("heavy link %d not filtered", in)
		}
	}
}

func TestFiltersThrottleAggregate(t *testing.T) {
	r := NewRouter(10_000_000, Config{})
	now := at(0)
	arrivals := map[aggKey]int{
		{1, 9}: 800_000, {2, 9}: 800_000,
	}
	driveInterval(r, now, arrivals, 625_000)
	now = now.Add(r.Interval())
	r.Tick(now)
	// Next interval: the filters limit what even reaches the queue.
	passed := 0
	for i := 0; i < 800; i++ {
		if r.Arrival(mkPkt(1, 9, 1000), 1, now.Add(tvatime.Duration(i)*tvatime.Millisecond/2)) {
			passed++
		}
	}
	if passed > 450 {
		t.Errorf("filter passed %d of 800 KB; limit should bind near the link share", passed)
	}
	if r.FilterDrops() == 0 {
		t.Error("no filter drops recorded")
	}
}

func TestFiltersReleaseWhenCalm(t *testing.T) {
	r := NewRouter(10_000_000, Config{ReleaseAfter: 2})
	now := at(0)
	arrivals := map[aggKey]int{{1, 9}: 1_200_000}
	driveInterval(r, now, arrivals, 625_000)
	now = now.Add(r.Interval())
	r.Tick(now)
	if r.Stats.FiltersActive == 0 {
		t.Fatal("setup: no filter installed")
	}
	// Attack stops: a few calm intervals release the filter.
	for i := 0; i < 3; i++ {
		now = now.Add(r.Interval())
		r.Tick(now)
	}
	if r.Stats.FiltersActive != 0 {
		t.Errorf("filters not released after calm: %d", r.Stats.FiltersActive)
	}
	if r.Stats.Releases == 0 {
		t.Error("Releases not counted")
	}
}

func TestMaxMinSparesLightContributors(t *testing.T) {
	// Links 1-2 are heavy (attackers); link 3 contributes little
	// legitimate traffic to the same destination. After filtering,
	// link 3's share must cover its demand.
	r := NewRouter(10_000_000, Config{})
	now := at(0)
	arrivals := map[aggKey]int{
		{1, 9}: 900_000, {2, 9}: 900_000, {3, 9}: 30_000,
	}
	driveInterval(r, now, arrivals, 625_000)
	r.Tick(now.Add(r.Interval()))
	light, ok := r.filters[aggKey{3, 9}]
	if ok && light.rateBps < 30_000/r.Interval().Seconds() {
		t.Errorf("light link clipped below its demand: %.0f B/s", light.rateBps)
	}
	h1 := r.filters[aggKey{1, 9}]
	h2 := r.filters[aggKey{2, 9}]
	if h1 == nil || h2 == nil {
		t.Fatal("heavy links not filtered")
	}
	if math.Abs(h1.rateBps-h2.rateBps) > 1 {
		t.Errorf("equal heavy contributors got unequal shares: %.0f vs %.0f", h1.rateBps, h2.rateBps)
	}
}

func TestUpstreamPropagation(t *testing.T) {
	up := NewRouter(10_000_000, Config{})
	down := NewRouter(10_000_000, Config{})
	down.SetUpstream(1, up)
	now := at(0)

	// Give the upstream router arrival history so it can split the
	// pushed limit across its own inputs.
	for i := 0; i < 500; i++ {
		up.Arrival(mkPkt(7, 9, 1000), 7, now)
	}
	// Congest the downstream router via input link 1.
	arrivals := map[aggKey]int{{1, 9}: 1_500_000}
	driveInterval(down, now, arrivals, 625_000)
	down.Tick(now.Add(down.Interval()))
	if down.Stats.PushedUpstream == 0 {
		t.Fatal("no pushback sent upstream")
	}
	if up.Stats.FiltersActive == 0 {
		up.Tick(now.Add(up.Interval()))
	}
	if _, ok := up.filters[aggKey{7, 9}]; !ok {
		t.Error("upstream router did not install the pushed filter")
	}
}

func TestNoFalsePositiveWithoutCongestion(t *testing.T) {
	r := NewRouter(10_000_000, Config{})
	now := at(0)
	arrivals := map[aggKey]int{{1, 9}: 100_000, {2, 5}: 100_000}
	driveInterval(r, now, arrivals, 625_000)
	r.Tick(now.Add(r.Interval()))
	if r.Stats.FiltersActive != 0 {
		t.Errorf("filters installed without congestion: %d", r.Stats.FiltersActive)
	}
}
