package flowcache

import (
	"math/rand"
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

func at(sec float64) tvatime.Time { return tvatime.FromSeconds(sec) }

func key(i int) Key { return Key{Src: packet.Addr(i), Dst: 1} }

func TestCreateLookupCharge(t *testing.T) {
	c := New(10)
	e := c.Create(key(1), 42, 43, 32*1024, 10, at(10), 1000, at(0))
	if e == nil {
		t.Fatal("Create failed")
	}
	if got := c.Lookup(packet.Addr(1), 1); got != e {
		t.Fatal("Lookup did not find the entry")
	}
	if e.Bytes != 1000 {
		t.Errorf("first packet not charged: %d", e.Bytes)
	}
	if !c.Charge(e, 2000, at(0.1)) {
		t.Error("Charge within N failed")
	}
	if e.Bytes != 3000 {
		t.Errorf("Bytes = %d, want 3000", e.Bytes)
	}
}

func TestByteLimitEnforced(t *testing.T) {
	c := New(10)
	n := int64(10_000)
	e := c.Create(key(1), 1, 2, n, 10, at(10), 4000, at(0))
	if e == nil {
		t.Fatal("Create failed")
	}
	if !c.Charge(e, 4000, at(0.1)) {
		t.Error("charge to 8000/10000 should pass")
	}
	if c.Charge(e, 4000, at(0.2)) {
		t.Error("charge beyond N should fail")
	}
	// A smaller packet that still fits must pass (no sticky failure).
	if !c.Charge(e, 2000, at(0.3)) {
		t.Error("charge back within N should pass")
	}
}

func TestExpiryEnforced(t *testing.T) {
	c := New(10)
	e := c.Create(key(1), 1, 2, 1<<20, 5, at(5), 100, at(0))
	if e == nil {
		t.Fatal("Create failed")
	}
	if !c.Charge(e, 100, at(4.9)) {
		t.Error("charge before expiry failed")
	}
	if c.Charge(e, 100, at(5.1)) {
		t.Error("charge after expiry succeeded")
	}
}

func TestCreateRejectsOversizedFirstPacket(t *testing.T) {
	c := New(10)
	if c.Create(key(1), 1, 2, 500, 10, at(10), 1000, at(0)) != nil {
		t.Error("first packet larger than N should not create state")
	}
}

func TestEvictionAdmitsNewFlows(t *testing.T) {
	c := New(2)
	// Two slow flows whose ttl expires almost immediately:
	// ttl delta = L*T/N = 100*10/1MB ≈ 1ms.
	c.Create(key(1), 1, 1, 1<<20, 10, at(10), 100, at(0))
	c.Create(key(2), 2, 2, 1<<20, 10, at(10), 100, at(0))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// At t=1s both ttls are long past: a third flow must evict one.
	if c.Create(key(3), 3, 3, 1<<20, 10, at(10), 100, at(1)) == nil {
		t.Fatal("Create with expired entries available failed")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (bounded)", c.Len())
	}
	if c.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Evictions)
	}
}

func TestAdmitFailsWhenAllLive(t *testing.T) {
	c := New(2)
	// Fast flows: ttl delta = 1000*10/10KB = 1s each, still live.
	c.Create(key(1), 1, 1, 10*1024, 10, at(10), 1000, at(0))
	c.Create(key(2), 2, 2, 10*1024, 10, at(10), 1000, at(0))
	if c.Create(key(3), 3, 3, 10*1024, 10, at(10), 1000, at(0.5)) != nil {
		t.Error("Create should fail when the cache is full of live entries")
	}
	if c.AdmitFailures != 1 {
		t.Errorf("AdmitFailures = %d, want 1", c.AdmitFailures)
	}
}

func TestReplaceInstallsRenewal(t *testing.T) {
	c := New(4)
	e := c.Create(key(1), 1, 100, 1000, 10, at(10), 900, at(0))
	if e == nil {
		t.Fatal("Create failed")
	}
	// Nearly exhausted; renewal replaces the authorization.
	if !c.Replace(e, 2, 200, 32*1024, 10, at(20), 500, at(1)) {
		t.Fatal("Replace failed")
	}
	if e.Nonce != 2 || e.Cap != 200 || e.N != 32*1024 || e.Bytes != 500 {
		t.Errorf("Replace did not reset entry: %+v", e)
	}
	if !c.Charge(e, 1000, at(1.1)) {
		t.Error("charge under renewed N failed")
	}
}

func TestCreateOverExisting(t *testing.T) {
	c := New(4)
	c.Create(key(1), 1, 1, 1000, 10, at(10), 100, at(0))
	e := c.Create(key(1), 2, 2, 2000, 10, at(10), 100, at(0.5))
	if e == nil || e.Nonce != 2 {
		t.Fatal("Create over an existing key should replace it")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestBound(t *testing.T) {
	// §3.6 example: gigabit link, (N/T)min = 4KB/10s → 312,500 records.
	got := Bound(1_000_000_000, 4096, 10)
	if got < 300_000 || got > 320_000 {
		t.Errorf("Bound(1Gbps, 4KB/10s) = %d, want ≈312500", got)
	}
}

// TestByteBoundTheorem verifies §3.6's central claim: no matter how the
// router manages (evicts/recreates) state, one capability forwards at
// most 2N bytes before it expires — and exactly at most N if its state
// is never reclaimed.
func TestByteBoundTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nBytes = 32 * 1024
	const tsec = 10

	for trial := 0; trial < 200; trial++ {
		c := New(1) // maximum memory pressure: a single slot
		var forwarded int64
		expireAt := at(tsec)
		now := at(0)
		for now.Before(expireAt) {
			l := 200 + rng.Intn(1400)
			e := c.Lookup(1, 2)
			ok := false
			if e != nil {
				ok = c.Charge(e, l, now)
			} else {
				// Adversarial competing flow may have taken the slot;
				// try to (re)create ours, evicting if allowed.
				ok = c.Create(Key{1, 2}, 7, 7, nBytes, tsec, expireAt, l, now) != nil
			}
			if ok {
				forwarded += int64(l)
			}
			// Adversary: sometimes steal the slot with another flow
			// (only possible when our ttl has expired).
			if rng.Intn(3) == 0 {
				c.Create(Key{9, 9}, 8, 8, nBytes, tsec, expireAt, l, now)
			}
			now = now.Add(tvatime.Duration(rng.Intn(40)) * tvatime.Millisecond)
		}
		if forwarded > 2*nBytes {
			t.Fatalf("trial %d: forwarded %d > 2N = %d", trial, forwarded, 2*nBytes)
		}
	}
}

// TestByteBoundNoPressure: without eviction the limit is exactly N.
func TestByteBoundNoPressure(t *testing.T) {
	c := New(100)
	const nBytes = 32 * 1024
	expire := at(10)
	var forwarded int64
	now := at(0)
	e := c.Create(Key{1, 2}, 7, 7, nBytes, 10, expire, 1000, now)
	forwarded += 1000
	for i := 0; i < 1000; i++ {
		now = now.Add(tvatime.Millisecond)
		if c.Charge(e, 1000, now) {
			forwarded += 1000
		}
	}
	if forwarded > nBytes {
		t.Errorf("forwarded %d > N = %d without memory pressure", forwarded, nBytes)
	}
}

// TestStateBound verifies the state theorem: a link of capacity C can
// sustain at most C/(N/T)min flows with live ttl, so a cache sized by
// Bound never refuses admission for legitimate traffic patterns.
func TestStateBound(t *testing.T) {
	const linkBps = 10_000_000 // 10 Mb/s
	const minN, minT = 4096, 10
	bound := Bound(linkBps, minN, minT)
	c := New(bound)

	// Worst case: attackers open as many minimum-rate flows as the
	// link can carry, each sending one min-size packet then idling.
	rng := rand.New(rand.NewSource(1))
	now := at(0)
	bytesPerSec := linkBps / 8
	flow := 0
	for sec := 0; sec < 30; sec++ {
		budget := bytesPerSec
		for budget > 0 {
			l := 40
			budget -= l
			flow++
			if c.Create(Key{packet.Addr(flow), 2}, 1, 1, minN, minT, now.Add(minT*tvatime.Second), l, now) == nil {
				// Admission failure is only legal if the cache is at
				// its bound with live entries — which cannot happen
				// when arrivals respect link capacity (the theorem).
				t.Fatalf("admission failed at flow %d, cache %d/%d", flow, c.Len(), c.Max())
			}
			now = now.Add(tvatime.Duration(int64(l) * 8 * int64(tvatime.Second) / linkBps))
			_ = rng
		}
	}
	if c.Len() > bound {
		t.Errorf("cache grew past bound: %d > %d", c.Len(), bound)
	}
}

func BenchmarkLookupCharge(b *testing.B) {
	c := New(1 << 16)
	now := at(0)
	e := c.Create(Key{1, 2}, 1, 1, 1<<30, 10, at(10), 1000, now)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := c.Lookup(1, 2); got != e {
			b.Fatal("lookup failed")
		}
		c.Charge(e, 0, now)
	}
}
