// Package flowcache implements TVA's bounded router state (paper §3.6).
//
// A router keeps a cache entry only for flows (sender, destination
// pairs) with valid capabilities that send faster than N/T. Each entry
// carries a time-to-live measured in "time equivalents" of the bytes
// charged to it: creating or charging an entry with an L-byte packet
// extends its ttl by L*T/N. An entry whose ttl has passed may be
// reclaimed to admit a new flow. This bounds the bytes sent with one
// capability to at most 2N no matter how the cache is managed, and
// bounds the number of live entries to C/(N/T)min for an input link of
// capacity C (see the theorem in §3.6; TestByteBound* verify it).
//
// Eviction order is tracked with a lazy min-heap: charging a flow only
// advances its TTLExpire (a monotonic increase), so the heap key is
// allowed to go stale and is repaired when the entry surfaces at the
// top. That keeps the per-packet fast path (Lookup+Charge) free of
// heap operations — the property behind Table 1's very cheap
// "regular packet with cached entry" row.
package flowcache

import (
	"container/heap"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

// Key identifies a flow: TVA defines flows on a sender-to-destination
// IP address basis (§3.5).
type Key struct {
	Src, Dst packet.Addr
}

// Entry is the per-flow state of §4.3: the validated capability, the
// flow nonce, the authorization (N, T as an absolute expiry), and the
// byte count and ttl of the bounded-state algorithm.
type Entry struct {
	Key   Key
	Nonce uint64
	// Cap is this router's own capability value for the flow, kept so
	// a renewal packet presenting new capabilities can be told apart
	// from a replay of the old one.
	Cap    uint64
	N      int64        // authorized bytes
	TSec   uint8        // authorized period, seconds
	Expiry tvatime.Time // first instant the capability is invalid (exclusive bound)

	Bytes     int64        // bytes charged so far
	TTLExpire tvatime.Time // absolute time the ttl reaches zero

	// heapKey is the (possibly stale, always <= TTLExpire) key the
	// entry was last ordered by; dead marks entries removed from the
	// map but not yet drained from the heap.
	heapKey tvatime.Time
	dead    bool
	// freeNext links reclaimed entries into the cache's free list.
	freeNext *Entry
}

// Cache is a fixed-capacity flow cache. It is not safe for concurrent
// use; routers own one per forwarding context and serialize access.
type Cache struct {
	max     int
	entries map[Key]*Entry
	byTTL   ttlHeap
	// free holds reclaimed entries (linked through freeNext) for Create
	// to reuse, so steady-state flow churn allocates no Entry values.
	// Reclaimed entries are recycled, which is why Lookup results must
	// not be retained across cache mutations (routers hold them only
	// within a single packet's processing).
	free *Entry

	// Stats.
	Creates, Hits, Misses, Evictions, AdmitFailures uint64
}

// New returns a cache that holds at most max entries. The paper sizes
// max at C/(N/T)min for link capacity C; Bound computes that.
func New(max int) *Cache {
	if max <= 0 {
		max = 1
	}
	return &Cache{
		max:     max,
		entries: make(map[Key]*Entry, max),
	}
}

// Bound returns the entry count needed so that a link of linkBps can
// never exhaust the cache, given the architectural minimum sending
// rate (N/T)min expressed as minN bytes per minT seconds (§3.6: e.g.
// 4 KB / 10 s on a gigabit link needs 312,500 records).
func Bound(linkBps int64, minN int64, minTSec int64) int {
	bytesPerSec := linkBps / 8
	minRate := minN / minTSec
	if minRate <= 0 {
		minRate = 1
	}
	n := bytesPerSec / minRate
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Len returns the number of live entries.
func (c *Cache) Len() int { return len(c.entries) }

// Max returns the capacity.
func (c *Cache) Max() int { return c.max }

// Lookup finds the entry for a flow, or nil.
func (c *Cache) Lookup(src, dst packet.Addr) *Entry {
	e := c.entries[Key{src, dst}]
	if e != nil {
		c.Hits++
	} else {
		c.Misses++
	}
	return e
}

// Revisit counts a lookup that the caller satisfied from an entry (or
// a miss) it resolved earlier in the same processing burst, without
// re-probing the map. The batched forwarding path memoizes the last
// flow's resolution for packet trains; Revisit keeps the Hits/Misses
// accounting identical to the map probe it replaced. hit reports
// whether the memoized resolution was an entry.
//
//tva:hotpath
func (c *Cache) Revisit(hit bool) {
	if hit {
		c.Hits++
	} else {
		c.Misses++
	}
}

// ttlDelta converts a packet length to its time-equivalent under the
// entry's rate N/T: L * T / N (§3.6).
func ttlDelta(l int, n int64, tsec uint8) tvatime.Duration {
	if n <= 0 {
		return 0
	}
	return tvatime.Duration(int64(l) * int64(tsec) * int64(tvatime.Second) / n)
}

// Create admits a new flow, evicting an expired-ttl entry if the cache
// is full. The first packet (length l) is charged. It returns nil if
// the cache is full of entries whose ttl has not yet reached zero
// (which cannot happen when the cache is sized with Bound) or if the
// first packet alone exceeds the authorization.
func (c *Cache) Create(key Key, nonce, cap uint64, n int64, tsec uint8, expiry tvatime.Time, l int, now tvatime.Time) *Entry {
	if int64(l) > n || !now.Before(expiry) {
		return nil
	}
	if old := c.entries[key]; old != nil {
		c.remove(old)
	}
	if len(c.entries) >= c.max && !c.evictExpired(now) {
		c.AdmitFailures++
		return nil
	}
	e := c.newEntry()
	*e = Entry{
		Key:       key,
		Nonce:     nonce,
		Cap:       cap,
		N:         n,
		TSec:      tsec,
		Expiry:    expiry,
		Bytes:     int64(l),
		TTLExpire: now.Add(ttlDelta(l, n, tsec)),
	}
	c.entries[key] = e
	e.heapKey = e.TTLExpire
	heap.Push(&c.byTTL, e)
	c.Creates++
	c.maybeCompact()
	return e
}

// Charge accounts an l-byte packet against an existing entry: it
// verifies the byte limit and expiry (§3.5's two router checks) and on
// success extends the ttl by the packet's time equivalent. It reports
// whether the packet is authorized. Charge never touches the heap
// (the key goes stale; eviction repairs it), keeping the hot path
// O(1).
func (c *Cache) Charge(e *Entry, l int, now tvatime.Time) bool {
	if !now.Before(e.Expiry) || e.Bytes+int64(l) > e.N {
		return false
	}
	e.Bytes += int64(l)
	e.TTLExpire = e.TTLExpire.Add(ttlDelta(l, e.N, e.TSec))
	if e.TTLExpire < now {
		// The ttl only accumulates while the flow is backlogged; an
		// idle flow's ttl restarts from now (decrements stop at zero).
		e.TTLExpire = now.Add(ttlDelta(l, e.N, e.TSec))
	}
	return true
}

// Replace installs a renewed capability in an existing entry (§4.3:
// "this could be the first packet with a renewed capability, and so the
// capability is checked and if valid, replaced in the cache entry").
// The byte count restarts under the new authorization with the packet
// charged.
func (c *Cache) Replace(e *Entry, nonce, cap uint64, n int64, tsec uint8, expiry tvatime.Time, l int, now tvatime.Time) bool {
	if int64(l) > n || !now.Before(expiry) {
		return false
	}
	e.Nonce = nonce
	e.Cap = cap
	e.N = n
	e.TSec = tsec
	e.Expiry = expiry
	e.Bytes = int64(l)
	if newTTL := now.Add(ttlDelta(l, n, tsec)); newTTL > e.TTLExpire {
		// Keep TTLExpire monotonic so the lazy heap key stays a lower
		// bound; a shorter renewed ttl only delays reclaimability,
		// which is always permitted (§3.6: reclaiming is optional).
		e.TTLExpire = newTTL
	}
	return true
}

// Flush drops every entry — the crash/restart model of §3.6: router
// flow state is soft, so a rebooted router comes up with an empty
// cache and flows revalidate with the capabilities they carry (or
// re-request). Reclaimed entries go to the free list; statistics
// survive the flush (they describe the process, not the boot).
func (c *Cache) Flush() {
	for _, e := range c.byTTL {
		c.freePut(e)
	}
	c.byTTL = c.byTTL[:0]
	clear(c.entries)
}

// evictExpired reclaims the entry with the earliest ttl if that ttl
// has passed, making room for a new flow. Stale heap keys (from
// charges) are repaired as they surface; dead entries are drained.
// It reports whether it evicted.
func (c *Cache) evictExpired(now tvatime.Time) bool {
	for len(c.byTTL) > 0 {
		top := c.byTTL[0]
		if top.dead {
			heap.Pop(&c.byTTL)
			c.freePut(top)
			continue
		}
		if top.heapKey != top.TTLExpire {
			// The entry was charged since it was ordered; re-sink it
			// under its current key.
			top.heapKey = top.TTLExpire
			heap.Fix(&c.byTTL, 0)
			continue
		}
		if top.TTLExpire.After(now) {
			// The minimum lower bound is still live, so every entry
			// is live: nothing is reclaimable.
			return false
		}
		heap.Pop(&c.byTTL)
		delete(c.entries, top.Key)
		c.freePut(top)
		c.Evictions++
		return true
	}
	return false
}

// remove detaches an entry from the map; its heap node is drained
// lazily.
func (c *Cache) remove(e *Entry) {
	delete(c.entries, e.Key)
	e.dead = true
}

// maybeCompact rebuilds the heap when dead nodes dominate, bounding
// memory at O(live entries).
func (c *Cache) maybeCompact() {
	if len(c.byTTL) <= 2*len(c.entries)+64 {
		return
	}
	live := c.byTTL[:0]
	for _, e := range c.byTTL {
		if !e.dead {
			e.heapKey = e.TTLExpire
			live = append(live, e)
		} else {
			c.freePut(e)
		}
	}
	c.byTTL = live
	heap.Init(&c.byTTL)
}

// newEntry pops a recycled entry off the free list, falling back to an
// allocation when the list is empty (at most once per peak concurrent
// flow count).
func (c *Cache) newEntry() *Entry {
	if e := c.free; e != nil {
		c.free = e.freeNext
		return e
	}
	//lint:ignore hotpath allocates only on a free-list miss; steady-state flow churn reuses reclaimed entries
	return &Entry{}
}

// freePut pushes a reclaimed entry onto the free list for newEntry.
func (c *Cache) freePut(e *Entry) {
	e.freeNext = c.free
	c.free = e
}

// ttlHeap is a min-heap of entries by heapKey.
type ttlHeap []*Entry

func (h ttlHeap) Len() int           { return len(h) }
func (h ttlHeap) Less(i, j int) bool { return h[i].heapKey < h[j].heapKey }
func (h ttlHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ttlHeap) Push(x any)        { *h = append(*h, x.(*Entry)) }
func (h *ttlHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
