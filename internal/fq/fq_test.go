package fq

import (
	"testing"

	"tva/internal/packet"
	"tva/internal/tvatime"
)

func pkt(size int) *packet.Packet { return &packet.Packet{Size: size} }

func TestDRRFairnessEqualSizes(t *testing.T) {
	// Two equally backlogged flows with equal packet sizes are served
	// within one packet of each other at every point in the drain.
	d := NewDRR(1500, 0, 1<<20)
	for i := 0; i < 100; i++ {
		d.Enqueue(1, taggedPkt(1, 1000))
		d.Enqueue(2, taggedPkt(2, 1000))
	}
	served := map[uint8]int{}
	for i := 0; i < 200; i++ {
		p := d.Dequeue()
		if p == nil {
			t.Fatal("premature empty")
		}
		served[p.TTL]++
		// Deficits carry across rounds, so service may burst by up to
		// ~quantum/size packets, but never diverge further.
		if d := served[1] - served[2]; d < -3 || d > 3 {
			t.Fatalf("service diverged at step %d: %v", i, served)
		}
	}
	if served[1] != served[2] {
		t.Errorf("final shares unequal: %v", served)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0", d.Len())
	}
}

func taggedPkt(flow uint8, size int) *packet.Packet {
	return &packet.Packet{TTL: flow, Size: size}
}

func TestDRRByteFairnessUnequalSizes(t *testing.T) {
	// Flow 1 sends 1500B packets, flow 2 sends 300B packets. Byte-fair
	// service means flow 2 dequeues ~5x as many packets.
	d := NewDRR(1500, 0, 1<<20)
	for i := 0; i < 200; i++ {
		d.Enqueue(1, taggedPkt(1, 1500))
	}
	for i := 0; i < 1000; i++ {
		d.Enqueue(2, taggedPkt(2, 300))
	}
	bytes := map[uint8]int{}
	served := 0
	for served < 150*1500 {
		p := d.Dequeue()
		if p == nil {
			break
		}
		bytes[p.TTL] += p.Size
		served += p.Size
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("byte shares not fair: flow1=%d flow2=%d (ratio %.2f)", bytes[1], bytes[2], ratio)
	}
}

func TestDRRNewFlowNotStarved(t *testing.T) {
	// A new flow's first packet must be served within roughly one
	// round of the existing backlogged flows.
	d := NewDRR(100, 0, 1<<20)
	for f := uint64(1); f <= 10; f++ {
		for i := 0; i < 50; i++ {
			d.Enqueue(f, taggedPkt(uint8(f), 100))
		}
	}
	d.Enqueue(99, taggedPkt(99, 100))
	for i := 0; i < 25; i++ {
		if d.Dequeue().TTL == 99 {
			return
		}
	}
	t.Error("new flow not served within ~2 rounds of 10 flows")
}

func TestDRRPerQueueCap(t *testing.T) {
	d := NewDRR(1500, 0, 2500)
	if d.Enqueue(1, pkt(1000)) != EnqOK || d.Enqueue(1, pkt(1000)) != EnqOK {
		t.Fatal("enqueue under cap failed")
	}
	if got := d.Enqueue(1, pkt(1000)); got != EnqDropQueueFull {
		t.Errorf("enqueue over per-queue cap = %v, want EnqDropQueueFull", got)
	}
	// Another flow is unaffected.
	if d.Enqueue(2, pkt(1000)) != EnqOK {
		t.Error("other flow should not be capped")
	}
}

func TestDRRMaxQueues(t *testing.T) {
	d := NewDRR(1500, 2, 1<<20)
	d.Enqueue(1, pkt(100))
	d.Enqueue(2, pkt(100))
	if got := d.Enqueue(3, pkt(100)); got != EnqDropNoQueue {
		t.Errorf("third queue enqueue = %v, want EnqDropNoQueue", got)
	}
	// Draining queue 1 frees a slot.
	d.Dequeue()
	d.Dequeue()
	if d.Enqueue(3, pkt(100)) != EnqOK {
		t.Error("queue slot not reclaimed after drain")
	}
}

func TestDRRDrainInterleavedWithEnqueue(t *testing.T) {
	d := NewDRR(1500, 0, 1<<20)
	total := 0
	for i := 0; i < 50; i++ {
		d.Enqueue(uint64(i%3), pkt(500))
		total++
		if i%2 == 1 {
			if d.Dequeue() != nil {
				total--
			}
		}
	}
	for d.Dequeue() != nil {
		total--
	}
	if total != 0 {
		t.Errorf("leaked %d packets", total)
	}
	if d.Len() != 0 || d.Bytes() != 0 || d.NumQueues() != 0 {
		t.Errorf("not empty after drain: len=%d bytes=%d queues=%d", d.Len(), d.Bytes(), d.NumQueues())
	}
}

func TestDRREmptyDequeue(t *testing.T) {
	d := NewDRR(1500, 0, 0)
	if d.Dequeue() != nil {
		t.Error("empty DRR returned a packet")
	}
}

func TestFIFOOrderAndDrops(t *testing.T) {
	f := NewFIFO(2500)
	a, b, c := pkt(1000), pkt(1000), pkt(1000)
	if !f.Enqueue(a) || !f.Enqueue(b) {
		t.Fatal("enqueue failed")
	}
	if f.Enqueue(c) {
		t.Error("over-capacity enqueue succeeded")
	}
	if f.Dequeue() != a || f.Dequeue() != b || f.Dequeue() != nil {
		t.Error("FIFO order violated")
	}
	if f.Bytes() != 0 || f.Len() != 0 {
		t.Error("FIFO not empty after drain")
	}
}

func TestFIFOCountCap(t *testing.T) {
	f := NewFIFOCount(2)
	if !f.Enqueue(pkt(10_000)) || !f.Enqueue(pkt(1)) {
		t.Fatal("packet-count FIFO should ignore sizes")
	}
	if f.Enqueue(pkt(1)) {
		t.Error("third packet should drop")
	}
}

func TestTokenBucketRate(t *testing.T) {
	// 8000 bits/s = 1000 bytes/s with 500B burst.
	tb := NewTokenBucket(8000, 500)
	now := tvatime.Time(0)
	if !tb.Allow(500, now) {
		t.Fatal("initial burst should be allowed")
	}
	if tb.Allow(100, now) {
		t.Error("bucket should be empty")
	}
	// After 100ms, 100 bytes accrue.
	now = now.Add(100 * tvatime.Millisecond)
	if !tb.Allow(100, now) {
		t.Error("100B after 100ms should be allowed")
	}
	if tb.Allow(1, now) {
		t.Error("bucket should be drained again")
	}
}

func TestTokenBucketWhen(t *testing.T) {
	tb := NewTokenBucket(8000, 500) // 1000 B/s
	now := tvatime.Time(0)
	tb.Allow(500, now)
	when := tb.When(200, now)
	want := now.Add(200 * tvatime.Millisecond)
	diff := when.Sub(want)
	if diff < -tvatime.Millisecond || diff > tvatime.Millisecond {
		t.Errorf("When = %v, want ≈%v", when, want)
	}
	// When must not consume.
	if tb.When(200, now) != when {
		t.Error("When consumed tokens")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	tb := NewTokenBucket(8000, 500)
	now := tvatime.Time(0)
	tb.Allow(500, now)
	// A long idle period must not accumulate more than the burst.
	now = now.Add(time100())
	if tb.Allow(501, now) {
		t.Error("accrued more than the burst")
	}
	if !tb.Allow(500, now) {
		t.Error("burst should be available after long idle")
	}
}

func time100() tvatime.Duration { return 100 * tvatime.Second }

func TestTokenBucketLevel(t *testing.T) {
	tb := NewTokenBucket(8000, 500) // 1000 B/s
	now := tvatime.Time(0)
	if lvl := tb.Level(now); lvl != 500 {
		t.Fatalf("initial Level = %v, want 500 (full burst)", lvl)
	}
	tb.Allow(500, now)
	if lvl := tb.Level(now); lvl != 0 {
		t.Fatalf("Level after drain = %v, want 0", lvl)
	}
	now = now.Add(100 * tvatime.Millisecond)
	if lvl := tb.Level(now); lvl < 99 || lvl > 101 {
		t.Fatalf("Level after 100ms = %v, want ~100", lvl)
	}
}

func BenchmarkDRREnqueueDequeue(b *testing.B) {
	d := NewDRR(1500, 0, 1<<30)
	p := pkt(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Enqueue(uint64(i%64), p)
		d.Dequeue()
	}
}
