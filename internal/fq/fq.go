// Package fq provides the queueing primitives TVA routers compose into
// the link scheduler of Fig. 2: a deficit-round-robin fair queue (used
// per path identifier for requests and per destination for regular
// traffic), a token bucket (the request-channel rate limit), and a
// drop-tail FIFO (legacy traffic, and the entire legacy Internet
// baseline).
package fq

import (
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// DRR is a deficit-round-robin fair queue over dynamically created
// per-key flows. Keys are opaque 64-bit values (a path identifier or a
// destination address). The number of simultaneous queues is bounded
// by MaxQueues; the paper bounds request queues by the 16-bit tag space
// and regular queues by the flow-cache size (§3.2, §3.9).
type DRR struct {
	quantum   int // bytes added per round; >= max packet size for O(1)
	maxQueues int
	perQBytes int // per-queue byte cap

	queues map[uint64]*flowq
	// Active ring (doubly linked); head is the next queue to serve.
	head *flowq
	// free holds retired flowqs (linked through next) for reuse, so
	// flow churn does not allocate a queue per new key.
	free *flowq

	bytes int
	pkts  int
}

// EnqueueResult says what DRR.Enqueue did with a packet. Drop
// accounting lives with the scheduler that owns the DRR (it knows the
// traffic class and so the telemetry.DropReason); the DRR only reports
// which bound was hit.
type EnqueueResult uint8

const (
	// EnqOK: the packet was queued.
	EnqOK EnqueueResult = iota
	// EnqDropQueueFull: the per-queue byte cap would be exceeded.
	EnqDropQueueFull
	// EnqDropNoQueue: the queue-count bound prevents creating a queue
	// for a new key (tag space for requests, flow-cache bound for
	// regular traffic).
	EnqDropNoQueue
)

// flowq buffers one key's packets as a sliding window over pkts:
// [head:len) are queued. Dequeue advances head instead of reslicing
// from the front, so the backing array's capacity is reused once the
// queue drains instead of being reallocated on the next burst.
type flowq struct {
	key        uint64
	pkts       []*packet.Packet
	head       int
	byteCount  int
	deficit    int
	next, prev *flowq
}

func (q *flowq) len() int { return len(q.pkts) - q.head }

func (q *flowq) push(pkt *packet.Packet) {
	if q.head > 0 && len(q.pkts) == cap(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	q.pkts = append(q.pkts, pkt)
}

func (q *flowq) popFront() *packet.Packet {
	pkt := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return pkt
}

// NewDRR returns a DRR scheduler. quantum should be at least the MTU;
// maxQueues bounds queue-state (0 means unlimited); perQueueBytes caps
// each queue's backlog.
func NewDRR(quantum, maxQueues, perQueueBytes int) *DRR {
	if quantum <= 0 {
		quantum = 1500
	}
	if perQueueBytes <= 0 {
		perQueueBytes = 64 * 1024
	}
	return &DRR{
		quantum:   quantum,
		maxQueues: maxQueues,
		perQBytes: perQueueBytes,
		queues:    make(map[uint64]*flowq),
	}
}

// Len returns the number of queued packets.
func (d *DRR) Len() int { return d.pkts }

// Bytes returns the number of queued bytes.
func (d *DRR) Bytes() int { return d.bytes }

// NumQueues returns the number of live per-key queues.
func (d *DRR) NumQueues() int { return len(d.queues) }

// Enqueue adds pkt to key's queue, creating the queue if needed, and
// reports which bound (if any) dropped the packet.
//
//tva:hotpath
func (d *DRR) Enqueue(key uint64, pkt *packet.Packet) EnqueueResult {
	q := d.queues[key]
	if q == nil {
		if d.maxQueues > 0 && len(d.queues) >= d.maxQueues {
			return EnqDropNoQueue
		}
		q = d.newFlowq(key)
		d.queues[key] = q
	}
	if q.byteCount+pkt.Size > d.perQBytes {
		return EnqDropQueueFull
	}
	q.push(pkt)
	q.byteCount += pkt.Size
	d.bytes += pkt.Size
	d.pkts++
	if q.next == nil { // not in the active ring
		d.ringPush(q)
	}
	return EnqOK
}

// EnqueueBulk adds a run of packets for one key in order, with
// accept/drop decisions identical to calling Enqueue per packet. The
// fixed costs are paid once per run instead of once per packet: one
// map probe, one ring insertion, one slot-array reservation, and one
// update of the aggregate byte/packet bookkeeping. Refused packets are
// handed to drop with the bound that refused them (drop may be nil).
// It returns the number accepted. Nil slots (batch Take) are skipped.
//
//tva:hotpath
func (d *DRR) EnqueueBulk(key uint64, pkts []*packet.Packet, drop func(*packet.Packet, EnqueueResult)) int {
	q := d.queues[key]
	if q == nil {
		if d.maxQueues > 0 && len(d.queues) >= d.maxQueues {
			if drop != nil {
				for _, pkt := range pkts {
					if pkt != nil {
						drop(pkt, EnqDropNoQueue)
					}
				}
			}
			return 0
		}
		q = d.newFlowq(key)
		d.queues[key] = q
	}
	q.reserve(len(pkts))
	accepted, bytes := 0, 0
	for _, pkt := range pkts {
		if pkt == nil {
			continue
		}
		// The per-packet byte-cap check must see the bytes already
		// accepted from this run, or bulk and looped admission diverge.
		if q.byteCount+bytes+pkt.Size > d.perQBytes {
			if drop != nil {
				drop(pkt, EnqDropQueueFull)
			}
			continue
		}
		q.pkts = append(q.pkts, pkt)
		bytes += pkt.Size
		accepted++
	}
	q.byteCount += bytes
	d.bytes += bytes
	d.pkts += accepted
	if accepted > 0 && q.next == nil { // not in the active ring
		d.ringPush(q)
	}
	return accepted
}

// DequeueBulk fills dst with up to len(dst) packets in exactly the
// order repeated Dequeue calls would produce, but serves each queue's
// deficit-covered run with one bulk ring copy and one bookkeeping
// update. It returns the number of packets written.
//
//tva:hotpath
func (d *DRR) DequeueBulk(dst []*packet.Packet) int {
	n := 0
	for n < len(dst) && d.head != nil {
		q := d.head
		// Maximal run the queue's deficit covers (cumulative, exactly
		// the per-packet deficit walk).
		run, bytes := 0, 0
		for n+run < len(dst) && q.head+run < len(q.pkts) {
			sz := q.pkts[q.head+run].Size
			if bytes+sz > q.deficit {
				break
			}
			bytes += sz
			run++
		}
		if run > 0 {
			copy(dst[n:n+run], q.pkts[q.head:q.head+run])
			for i := 0; i < run; i++ {
				q.pkts[q.head+i] = nil
			}
			q.head += run
			if q.head == len(q.pkts) {
				q.pkts = q.pkts[:0]
				q.head = 0
			}
			q.deficit -= bytes
			q.byteCount -= bytes
			d.bytes -= bytes
			d.pkts -= run
			n += run
		}
		switch {
		case q.len() == 0:
			// Queue drained: retire it, as the per-packet path does when
			// the last packet leaves.
			q.deficit = 0
			d.ringRemove(q)
			delete(d.queues, q.key)
			q.next = d.free
			d.free = q
		case n == len(dst):
			// dst is full; the queue keeps its deficit and stays at the
			// ring head so the next call resumes exactly here.
		default:
			// Deficit exhausted: top up and rotate.
			q.deficit += d.quantum
			d.head = q.next
		}
	}
	return n
}

// reserve prepares the slot array to absorb n more packets with at
// most one compaction-or-grow, mirroring push's lazy compaction.
func (q *flowq) reserve(n int) {
	if q.head > 0 && len(q.pkts)+n > cap(q.pkts) {
		m := copy(q.pkts, q.pkts[q.head:])
		for i := m; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:m]
		q.head = 0
	}
}

// newFlowq reuses a retired flowq from the free list, or allocates.
func (d *DRR) newFlowq(key uint64) *flowq {
	if q := d.free; q != nil {
		d.free = q.next
		q.next = nil
		q.key = key
		return q
	}
	//lint:ignore hotpath allocates only on a free-list miss; steady-state flow churn reuses retired flowqs
	return &flowq{key: key}
}

// Dequeue returns the next packet under deficit round robin, or nil if
// empty. Each visit to a queue whose deficit cannot cover its head
// packet tops the deficit up by one quantum and rotates, so with
// quantum >= MTU every queue sends at most one packet per round and
// long-run throughput is proportional to rounds (fair in bytes).
//
//tva:hotpath
func (d *DRR) Dequeue() *packet.Packet {
	for d.head != nil {
		q := d.head
		pkt := q.pkts[q.head]
		if q.deficit >= pkt.Size {
			q.deficit -= pkt.Size
			q.popFront()
			q.byteCount -= pkt.Size
			d.bytes -= pkt.Size
			d.pkts--
			if q.len() == 0 {
				q.deficit = 0
				d.ringRemove(q)
				delete(d.queues, q.key)
				q.next = d.free // retire to the free list
				d.free = q
			}
			return pkt
		}
		q.deficit += d.quantum
		d.head = q.next // rotate
	}
	return nil
}

// Flush drains every queue, handing each packet to release (the
// caller's drop-accounting + pool-release path), and retires the
// emptied flowqs to the free list. Used by router restart and
// link-teardown paths; not on the hot path.
func (d *DRR) Flush(release func(*packet.Packet)) {
	for d.head != nil {
		q := d.head
		for q.len() > 0 {
			release(q.popFront())
		}
		q.byteCount = 0
		q.deficit = 0
		d.ringRemove(q)
		delete(d.queues, q.key)
		q.next = d.free
		d.free = q
	}
	d.bytes = 0
	d.pkts = 0
}

func (d *DRR) ringPush(q *flowq) {
	if d.head == nil {
		q.next, q.prev = q, q
		d.head = q
		return
	}
	tail := d.head.prev
	tail.next = q
	q.prev = tail
	q.next = d.head
	d.head.prev = q
}

func (d *DRR) ringRemove(q *flowq) {
	if q.next == q {
		d.head = nil
	} else {
		q.prev.next = q.next
		q.next.prev = q.prev
		if d.head == q {
			d.head = q.next
		}
	}
	q.next, q.prev = nil, nil
}

// FIFO is a drop-tail queue bounded in bytes, packets, or both. Like
// flowq it keeps queued packets in pkts[head:] and advances head on
// dequeue, reusing the backing array instead of reallocating per burst.
type FIFO struct {
	pkts     []*packet.Packet
	head     int
	byteCap  int // 0 = unlimited
	pktCap   int // 0 = unlimited
	curBytes int
}

// NewFIFO returns a FIFO holding at most capBytes of packets.
func NewFIFO(capBytes int) *FIFO {
	if capBytes <= 0 {
		capBytes = 64 * 1024
	}
	return &FIFO{byteCap: capBytes}
}

// NewFIFOCount returns a FIFO holding at most capPkts packets,
// regardless of size — the classic ns-2 drop-tail queue, under which
// per-packet loss is uniform across packet sizes.
func NewFIFOCount(capPkts int) *FIFO {
	if capPkts <= 0 {
		capPkts = 50
	}
	return &FIFO{pktCap: capPkts}
}

// Len returns the queued packet count.
func (f *FIFO) Len() int { return len(f.pkts) - f.head }

// Bytes returns the queued byte count.
func (f *FIFO) Bytes() int { return f.curBytes }

// Enqueue appends pkt, reporting false on a tail drop. The caller
// attributes the drop (the FIFO doesn't know the traffic class).
//
//tva:hotpath
func (f *FIFO) Enqueue(pkt *packet.Packet) bool {
	if (f.byteCap > 0 && f.curBytes+pkt.Size > f.byteCap) ||
		(f.pktCap > 0 && f.Len() >= f.pktCap) {
		return false
	}
	if f.head > 0 && len(f.pkts) == cap(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		for i := n; i < len(f.pkts); i++ {
			f.pkts[i] = nil
		}
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	f.pkts = append(f.pkts, pkt)
	f.curBytes += pkt.Size
	return true
}

// Dequeue pops the head packet, or nil if empty.
//
//tva:hotpath
func (f *FIFO) Dequeue() *packet.Packet {
	if f.Len() == 0 {
		return nil
	}
	pkt := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	if f.head == len(f.pkts) {
		f.pkts = f.pkts[:0]
		f.head = 0
	}
	f.curBytes -= pkt.Size
	return pkt
}

// EnqueueBulk appends a run of packets in order, with tail-drop
// decisions identical to per-packet Enqueue but one compaction-or-grow
// decision for the whole run. Refused packets are handed to drop
// (which may be nil); nil slots are skipped. Returns the number
// accepted.
//
//tva:hotpath
func (f *FIFO) EnqueueBulk(pkts []*packet.Packet, drop func(*packet.Packet)) int {
	if f.head > 0 && len(f.pkts)+len(pkts) > cap(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		for i := n; i < len(f.pkts); i++ {
			f.pkts[i] = nil
		}
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	accepted := 0
	for _, pkt := range pkts {
		if pkt == nil {
			continue
		}
		if (f.byteCap > 0 && f.curBytes+pkt.Size > f.byteCap) ||
			(f.pktCap > 0 && f.Len() >= f.pktCap) {
			if drop != nil {
				drop(pkt)
			}
			continue
		}
		f.pkts = append(f.pkts, pkt)
		f.curBytes += pkt.Size
		accepted++
	}
	return accepted
}

// DequeueBulk fills dst with up to len(dst) packets in FIFO order with
// one ring copy and one head advance. Returns the number written.
//
//tva:hotpath
func (f *FIFO) DequeueBulk(dst []*packet.Packet) int {
	n := f.Len()
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return 0
	}
	copy(dst, f.pkts[f.head:f.head+n])
	bytes := 0
	for i := 0; i < n; i++ {
		bytes += dst[i].Size
		f.pkts[f.head+i] = nil
	}
	f.head += n
	if f.head == len(f.pkts) {
		f.pkts = f.pkts[:0]
		f.head = 0
	}
	f.curBytes -= bytes
	return n
}

// Flush drains the FIFO, handing each packet to release.
func (f *FIFO) Flush(release func(*packet.Packet)) {
	for {
		pkt := f.Dequeue()
		if pkt == nil {
			return
		}
		release(pkt)
	}
}

// TokenBucket rate-limits a traffic class to rate bytes/second with a
// burst allowance. Tokens accrue continuously from the last update.
type TokenBucket struct {
	rateBps float64 // bytes per second
	burst   float64 // bytes
	tokens  float64
	last    tvatime.Time
}

// NewTokenBucket returns a bucket filling at rate bits/second with the
// given burst in bytes, initially full.
func NewTokenBucket(rateBitsPerSec int64, burstBytes int) *TokenBucket {
	b := float64(burstBytes)
	return &TokenBucket{rateBps: float64(rateBitsPerSec) / 8, burst: b, tokens: b}
}

func (t *TokenBucket) refill(now tvatime.Time) {
	if now.After(t.last) {
		t.tokens += t.rateBps * now.Sub(t.last).Seconds()
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
		t.last = now
	}
}

// Level returns the current token level in bytes as of now, without
// consuming anything. Gauge for the telemetry sampler.
func (t *TokenBucket) Level(now tvatime.Time) float64 {
	t.refill(now)
	return t.tokens
}

// Allow consumes n bytes of tokens if available and reports success.
func (t *TokenBucket) Allow(n int, now tvatime.Time) bool {
	t.refill(now)
	if t.tokens >= float64(n) {
		t.tokens -= float64(n)
		return true
	}
	return false
}

// When returns the earliest time at which n bytes of tokens will be
// available (now if already available). It does not consume.
func (t *TokenBucket) When(n int, now tvatime.Time) tvatime.Time {
	t.refill(now)
	deficit := float64(n) - t.tokens
	if deficit <= 0 {
		return now
	}
	if t.rateBps <= 0 {
		return now.Add(tvatime.Minute) // effectively never; poll slowly
	}
	return now.Add(tvatime.Duration(deficit / t.rateBps * float64(tvatime.Second)))
}
