package fq

import (
	"math/rand"
	"testing"

	"tva/internal/packet"
)

// TestDRRBulkEquivalence drives a randomized mixed workload through a
// bulk-operated DRR and a per-packet one and requires identical
// admission decisions, service order, and bookkeeping.
func TestDRRBulkEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	single := NewDRR(1500, 4, 4096)
	bulk := NewDRR(1500, 4, 4096)

	mkRun := func() (uint64, []*packet.Packet) {
		key := uint64(rng.Intn(6)) // more keys than maxQueues → EnqDropNoQueue
		n := 1 + rng.Intn(5)
		pkts := make([]*packet.Packet, n)
		for i := range pkts {
			pkts[i] = &packet.Packet{Src: packet.Addr(key), Dst: packet.Addr(i), Size: 100 + rng.Intn(1400)}
		}
		return key, pkts
	}

	for round := 0; round < 50; round++ {
		key, pkts := mkRun()
		var wantDrops, gotDrops []*packet.Packet
		wantAcc := 0
		for _, p := range pkts {
			// Clone so each DRR owns distinct packet values; Size is the
			// only field admission reads.
			c := *p
			if single.Enqueue(key, &c) == EnqOK {
				wantAcc++
			} else {
				wantDrops = append(wantDrops, &c)
			}
		}
		gotAcc := bulk.EnqueueBulk(key, pkts, func(p *packet.Packet, _ EnqueueResult) {
			gotDrops = append(gotDrops, p)
		})
		if wantAcc != gotAcc || len(wantDrops) != len(gotDrops) {
			t.Fatalf("round %d: accepted %d vs %d, drops %d vs %d", round, wantAcc, gotAcc, len(wantDrops), len(gotDrops))
		}
		if single.Len() != bulk.Len() || single.Bytes() != bulk.Bytes() || single.NumQueues() != bulk.NumQueues() {
			t.Fatalf("round %d: bookkeeping diverges: len %d/%d bytes %d/%d queues %d/%d",
				round, single.Len(), bulk.Len(), single.Bytes(), bulk.Bytes(), single.NumQueues(), bulk.NumQueues())
		}

		// Drain a random amount through both and compare order.
		k := rng.Intn(8)
		dst := make([]*packet.Packet, k)
		got := bulk.DequeueBulk(dst)
		for i := 0; i < got; i++ {
			want := single.Dequeue()
			if want == nil {
				t.Fatalf("round %d: bulk produced %d-th packet, single is empty", round, i)
			}
			if want.Size != dst[i].Size || want.Src != dst[i].Src || want.Dst != dst[i].Dst {
				t.Fatalf("round %d pos %d: bulk %+v != single %+v", round, i, dst[i], want)
			}
		}
		if got < k {
			if extra := single.Dequeue(); extra != nil {
				t.Fatalf("round %d: bulk drained at %d but single still has %+v", round, got, extra)
			}
		}
		if single.Len() != bulk.Len() || single.Bytes() != bulk.Bytes() {
			t.Fatalf("round %d after drain: len %d/%d bytes %d/%d", round, single.Len(), bulk.Len(), single.Bytes(), bulk.Bytes())
		}
	}
}

// TestFIFOBulkEquivalence does the same for the drop-tail FIFO, under
// both byte and packet caps.
func TestFIFOBulkEquivalence(t *testing.T) {
	for name, mk := range map[string]func() *FIFO{
		"bytes": func() *FIFO { return NewFIFO(4096) },
		"pkts":  func() *FIFO { return NewFIFOCount(7) },
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			single, bulk := mk(), mk()
			for round := 0; round < 60; round++ {
				n := 1 + rng.Intn(6)
				pkts := make([]*packet.Packet, n)
				wantAcc, wantDrop := 0, 0
				for i := range pkts {
					pkts[i] = &packet.Packet{Src: packet.Addr(round), Dst: packet.Addr(i), Size: 100 + rng.Intn(1200)}
					c := *pkts[i]
					if single.Enqueue(&c) {
						wantAcc++
					} else {
						wantDrop++
					}
				}
				gotDrop := 0
				gotAcc := bulk.EnqueueBulk(pkts, func(*packet.Packet) { gotDrop++ })
				if wantAcc != gotAcc || wantDrop != gotDrop {
					t.Fatalf("round %d: accepted %d/%d drops %d/%d", round, wantAcc, gotAcc, wantDrop, gotDrop)
				}
				dst := make([]*packet.Packet, rng.Intn(6))
				got := bulk.DequeueBulk(dst)
				for i := 0; i < got; i++ {
					want := single.Dequeue()
					if want == nil || want.Size != dst[i].Size || want.Dst != dst[i].Dst {
						t.Fatalf("round %d pos %d: bulk %+v != single %+v", round, i, dst[i], want)
					}
				}
				if single.Len() != bulk.Len() || single.Bytes() != bulk.Bytes() {
					t.Fatalf("round %d: len %d/%d bytes %d/%d", round, single.Len(), bulk.Len(), single.Bytes(), bulk.Bytes())
				}
			}
		})
	}
}

// TestBulkStateMachineEdges pins the DequeueBulk resume semantics: a
// full dst leaves the served queue at the ring head with its deficit,
// and a drained queue retires to the free list.
func TestBulkStateMachineEdges(t *testing.T) {
	d := NewDRR(1500, 0, 1<<20)
	for i := 0; i < 3; i++ {
		d.EnqueueBulk(1, []*packet.Packet{{Dst: 1, Size: 1000}}, nil)
		d.EnqueueBulk(2, []*packet.Packet{{Dst: 2, Size: 1000}}, nil)
	}
	dst := make([]*packet.Packet, 1)
	// One-slot drains must follow the per-packet DRR walk exactly,
	// including the deficit carry-over that lets a queue send twice in
	// a row once its accumulated deficit covers two packets.
	var order []packet.Addr
	for d.Len() > 0 {
		n := d.DequeueBulk(dst)
		if n != 1 {
			t.Fatalf("DequeueBulk = %d, want 1", n)
		}
		order = append(order, dst[0].Dst)
	}
	want := []packet.Addr{1, 2, 1, 1, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
	if d.NumQueues() != 0 {
		t.Fatalf("queues not retired: %d", d.NumQueues())
	}
}
