//go:build !linux || !amd64

// Portable stand-in for the linux/amd64 recvmmsg/sendmmsg path: the
// same batchConn surface backed by one syscall per datagram, so the
// batched forwarding code runs unchanged everywhere — it just stops
// amortizing the socket crossings.
package overlay

import "net"

// batchIOSupported reports whether recvBatch can return more than one
// datagram per call on this platform.
const batchIOSupported = false

// batchConn carries only the receive buffer; every call degenerates to
// the connection's per-datagram methods.
type batchConn struct {
	conn *net.UDPConn
	bufs [][]byte
	ns   []int
}

func newBatchConn(conn *net.UDPConn, n int) (*batchConn, error) {
	b := &batchConn{conn: conn, bufs: make([][]byte, n), ns: make([]int, n)}
	for i := range b.bufs {
		b.bufs[i] = make([]byte, maxDatagram)
	}
	return b, nil
}

// recvBatch reads exactly one datagram (blocking); bursts never grow
// past one without recvmmsg.
func (b *batchConn) recvBatch() (int, error) {
	n, _, err := b.conn.ReadFromUDP(b.bufs[0])
	if err != nil {
		return 0, err
	}
	b.ns[0] = n
	return 1, nil
}

// buf returns the i-th received payload after recvBatch.
func (b *batchConn) buf(i int) []byte { return b.bufs[i][:b.ns[i]] }

// sendBatch writes each packet with its own syscall.
func (b *batchConn) sendBatch(pkts [][]byte, to *net.UDPAddr) (int, error) {
	for i, p := range pkts {
		if _, err := b.conn.WriteToUDP(p, to); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}
