// Forwarding-capacity harness for Table 1 and Fig. 12 of the paper:
// pregenerated workloads of each packet type driven through the full
// userspace forwarding path (unmarshal → capability processing →
// marshal), either per-op (Table 1 benchmarks) or as a paced
// producer/consumer pipeline measuring peak output rate versus offered
// input rate (Fig. 12).
package overlay

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/flowstats"
	"tva/internal/metrics"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// PacketKind enumerates the workload types of Table 1 / Fig. 12.
type PacketKind int

// Workload kinds, in Table 1's order.
const (
	KindLegacyIP PacketKind = iota
	KindRequestPkt
	KindRegularWithEntry
	KindRegularNoEntry
	KindRenewalWithEntry
	KindRenewalNoEntry
)

// String implements fmt.Stringer.
func (k PacketKind) String() string {
	switch k {
	case KindLegacyIP:
		return "legacy IP"
	case KindRequestPkt:
		return "request"
	case KindRegularWithEntry:
		return "regular w/ entry"
	case KindRegularNoEntry:
		return "regular w/o entry"
	case KindRenewalWithEntry:
		return "renewal w/ entry"
	case KindRenewalNoEntry:
		return "renewal w/o entry"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists all workload kinds in Table 1's order.
var Kinds = []PacketKind{
	KindLegacyIP, KindRequestPkt, KindRegularWithEntry,
	KindRegularNoEntry, KindRenewalWithEntry, KindRenewalNoEntry,
}

// Workload is a pregenerated stream of marshaled packets of one kind,
// paired with the router they validate against. "With entry" kinds
// cycle over flows whose cache entries were seeded at build time;
// "no entry" kinds cycle over more flows than the (small) cache holds,
// so the entry is always gone again by the time a flow comes around.
type Workload struct {
	Kind   PacketKind
	Router *core.Router

	pkts    [][]byte
	batches [][][]byte // pkts grouped for the Fig. 12 pipeline
	seeds   [][]byte   // cache-seeding regulars for "with entry" kinds
	suite   capability.Suite
	i       int
	buf     []byte
	scratch packet.Packet // reusable decode target for ForwardOne
}

// workload sizing: hit kinds spread byte-count across enough flows
// that no authorization exhausts mid-run; miss kinds exceed the cache.
const (
	hitFlows  = 1 << 11
	missFlows = 1 << 16
	missCache = 256
)

// grant parameters: the largest expressible authorization, so Table 1
// loops never exhaust an entry.
const (
	wlNKB  = packet.MaxNKB
	wlTSec = packet.MaxTSeconds
)

// NewWorkload builds a workload of the given kind under the hash
// suite (capability.Crypto reproduces the paper's AES+SHA1 path).
func NewWorkload(kind PacketKind, suite capability.Suite) *Workload {
	w := &Workload{Kind: kind, suite: suite, buf: make([]byte, 0, 512)}
	cacheSize := hitFlows * 2
	if kind == KindRegularNoEntry || kind == KindRenewalNoEntry {
		cacheSize = missCache
	}
	w.Router = core.NewRouter(core.RouterConfig{
		Suite:         suite,
		CacheEntries:  cacheSize,
		TrustBoundary: true,
	})
	now := tvatime.WallClock{}.Now()
	rng := rand.New(rand.NewSource(99))
	dst := packet.Addr(1)

	marshal := func(p *packet.Packet) []byte {
		data, err := p.Marshal(nil)
		if err != nil {
			panic("overlay: workload marshal: " + err.Error())
		}
		return data
	}
	capFor := func(src packet.Addr) uint64 {
		pre := w.Router.Authority().PreCap(src, dst, now)
		return suite.MakeCap(pre, wlNKB, wlTSec)
	}

	switch kind {
	case KindLegacyIP:
		p := &packet.Packet{Src: 2, Dst: dst, TTL: 64, Proto: packet.ProtoRaw}
		p.Size = packet.OuterHdrLen
		w.pkts = [][]byte{marshal(p)}

	case KindRequestPkt:
		h := &packet.CapHdr{Kind: packet.KindRequest, Proto: packet.ProtoRaw}
		p := &packet.Packet{Src: 2, Dst: dst, TTL: 64, Proto: packet.ProtoRaw, Hdr: h}
		p.Size = packet.OuterHdrLen + h.WireSize()
		w.pkts = [][]byte{marshal(p)}

	case KindRegularWithEntry, KindRenewalWithEntry:
		kindWire := packet.KindNonceOnly
		if kind == KindRenewalWithEntry {
			kindWire = packet.KindRenewal
		}
		w.pkts = make([][]byte, hitFlows)
		for i := range w.pkts {
			src := packet.Addr(1000 + i)
			cap := capFor(src)
			nonce := rng.Uint64() & packet.NonceMask
			// Seed the cache entry with a first regular packet.
			seedHdr := &packet.CapHdr{Kind: packet.KindRegular, Proto: packet.ProtoRaw,
				Nonce: nonce, NKB: wlNKB, TSec: wlTSec, Caps: []uint64{cap}}
			seed := &packet.Packet{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
				Hdr: seedHdr, Size: packet.OuterHdrLen + seedHdr.WireSize()}
			// Keep the seed's wire form: MeasureForwardingBatch replays
			// it to warm any router sharing this workload's authority.
			w.seeds = append(w.seeds, marshal(seed))
			if got := w.Router.Process(seed, 0, now); got != packet.ClassRegular {
				panic("overlay: workload seed not accepted: " + got.String())
			}
			h := &packet.CapHdr{Kind: kindWire, Proto: packet.ProtoRaw, Nonce: nonce}
			if kindWire == packet.KindRenewal {
				h.NKB, h.TSec = wlNKB, wlTSec
				h.Caps = []uint64{cap}
			}
			p := &packet.Packet{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
				Hdr: h, Size: packet.OuterHdrLen + h.WireSize()}
			w.pkts[i] = marshal(p)
		}

	case KindRegularNoEntry, KindRenewalNoEntry:
		kindWire := packet.KindRegular
		if kind == KindRenewalNoEntry {
			kindWire = packet.KindRenewal
		}
		w.pkts = make([][]byte, missFlows)
		for i := range w.pkts {
			src := packet.Addr(1_000_000 + i)
			h := &packet.CapHdr{Kind: kindWire, Proto: packet.ProtoRaw,
				Nonce: rng.Uint64() & packet.NonceMask,
				NKB:   wlNKB, TSec: wlTSec, Caps: []uint64{capFor(src)}}
			p := &packet.Packet{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
				Hdr: h, Size: packet.OuterHdrLen + h.WireSize()}
			w.pkts[i] = marshal(p)
		}
	}
	// Group the workload into fixed-size batches (cycling as needed)
	// so the Fig. 12 ring always amortizes channel overhead over 64
	// packets regardless of workload cycle length.
	const batchSize = 64
	nBatches := (len(w.pkts) + batchSize - 1) / batchSize
	k := 0
	for b := 0; b < nBatches; b++ {
		batch := make([][]byte, batchSize)
		for j := range batch {
			batch[j] = w.pkts[k]
			k++
			if k == len(w.pkts) {
				k = 0
			}
		}
		w.batches = append(w.batches, batch)
	}
	return w
}

// ForwardOne runs the full forwarding path for the next workload
// packet and reports whether it kept its class (i.e. was not demoted).
func (w *Workload) ForwardOne(now tvatime.Time) bool {
	raw := w.pkts[w.i]
	w.i++
	if w.i == len(w.pkts) {
		w.i = 0
	}
	pkt := &w.scratch
	if err := pkt.UnmarshalReuse(raw); err != nil {
		return false
	}
	pkt.TTL--
	class := w.Router.Process(pkt, 0, now)
	out, err := pkt.Marshal(w.buf[:0])
	if err != nil {
		return false
	}
	w.buf = out[:0]
	return !(pkt.Hdr != nil && pkt.Hdr.Demoted) || class == packet.ClassRequest
}

// Len returns the workload's cycle length.
func (w *Workload) Len() int { return len(w.pkts) }

// BenchTickEvery spaces registry samples through a Table 1 loop: often
// enough that Tick's cost is part of the measured steady state, rare
// enough that per-packet numbers stay per-packet.
const BenchTickEvery = 1024

// BenchMetrics threads the streaming observability layer through a
// Table 1 loop: every forwarded packet lands two counter hits, one
// sketch observation, and a per-sender flowstats touch (heavy-hitter
// table + count-min sketch, attached to the workload router exactly
// as the exp harness and overlay attach theirs), and a live registry
// is sampled on a virtual clock every BenchTickEvery packets. The
// bench guard runs Table 1 with this harness attached, so its
// 0 allocs/op rows prove the metrics instruments ride the forwarding
// path for free — the dynamic twin of the //tva:hotpath annotations
// on Record/Set/Observe.
type BenchMetrics struct {
	Reg *metrics.Registry

	forwarded metrics.Counter
	demoted   metrics.Counter
	wire      metrics.Sketch
	now       tvatime.Time
}

// NewBenchMetrics builds and seals a registry over w's router. The
// first Tick happens here, so every later Tick is allocation-free.
func NewBenchMetrics(w *Workload) *BenchMetrics {
	m := &BenchMetrics{Reg: metrics.New(64), now: tvatime.FromSeconds(1)}
	must := func(err error) {
		if err != nil {
			panic("overlay: bench metrics: " + err.Error())
		}
	}
	must(m.Reg.CounterVar(metrics.NameBenchForwarded, nil,
		"Packets pushed through the Table 1 forwarding loop.", &m.forwarded))
	must(m.Reg.CounterVar(metrics.NameBenchDemoted, nil,
		"Forwarded packets that lost their class.", &m.demoted))
	must(m.Reg.SketchQuantiles(metrics.NameBenchWireBytes, nil,
		"Wire size of forwarded packets.", &m.wire, 0.5, 0.99))
	cache := w.Router.Cache()
	must(m.Reg.Gauge(metrics.NameFlowCacheEntries, nil,
		"Live flow-cache entries at the bench router.",
		func() float64 { return float64(cache.Len()) }))
	// Per-sender accounting on the measured path: the router observes
	// every processed packet into this collector, so Table 1 numbers
	// include the flowstats cost (and the alloc guard proves it's 0).
	flows := flowstats.New(flowstats.DefaultTopK, flowstats.DefaultSketchWidth)
	w.Router.Flows = flows
	must(m.Reg.Gauge(metrics.NameFlowTrackedSenders, nil,
		"Heavy-hitter table entries at the bench router.",
		func() float64 { return float64(flows.Tracked()) }))
	must(m.Reg.Counter(metrics.NameFlowBytes, nil,
		"Total bytes observed by the bench router's flow accounting.",
		func() float64 { return float64(flows.TotalBytes()) }))
	m.Reg.Tick(m.now)
	return m
}

// Observe records one forwarding operation into the instruments.
//
//tva:hotpath
func (m *BenchMetrics) Observe(kept bool, wireBytes int64) {
	m.forwarded.Record(1)
	if !kept {
		m.demoted.Record(1)
	}
	m.wire.Observe(wireBytes)
}

// Tick advances the virtual clock one interval and samples the
// registry — rates, EWMAs, and the gauge closure included.
func (m *BenchMetrics) Tick() {
	m.now = m.now.Add(tvatime.Millisecond)
	m.Reg.Tick(m.now)
}

// ForwardOneObserved is ForwardOne with the streaming instruments on
// the path, for instrumented Table 1 runs.
func (w *Workload) ForwardOneObserved(now tvatime.Time, m *BenchMetrics) bool {
	wire := int64(len(w.pkts[w.i]))
	kept := w.ForwardOne(now)
	m.Observe(kept, wire)
	return kept
}

// MeasureForwarding offers inputPPS of the workload's packets to a
// single forwarding goroutine through a bounded ring (drop-on-full,
// like a NIC) for dur, and returns the measured output rate in
// packets/second — one point of Fig. 12.
func MeasureForwarding(w *Workload, inputPPS int, dur time.Duration) (outputPPS float64) {
	// Packets travel in pregenerated batches so ring overhead stays
	// far below per-packet processing cost (a NIC's descriptor ring
	// amortizes the same way).
	ring := make(chan [][]byte, 64)
	done := make(chan struct{})
	var forwarded int64

	go func() {
		defer close(done)
		clock := tvatime.WallClock{}
		now := clock.Now()
		n := 0
		var scratch packet.Packet
		buf := make([]byte, 0, 512)
		for batch := range ring {
			for _, raw := range batch {
				pkt := &scratch
				if err := pkt.UnmarshalReuse(raw); err != nil {
					continue
				}
				pkt.TTL--
				w.Router.Process(pkt, 0, now)
				if out, err := pkt.Marshal(buf[:0]); err == nil {
					buf = out[:0]
					forwarded++
				}
			}
			if n++; n%64 == 0 {
				now = clock.Now() // refresh the clock off the hot path
			}
		}
	}()

	// Paced producer: a 1 ms tick approximates a NIC delivering at the
	// offered rate, full ring = input drop.
	const tick = time.Millisecond
	batchLen := len(w.batches[0])
	perTick := float64(inputPPS) / 1000 / float64(batchLen)
	start := time.Now()
	next := start
	i := 0
	var owed float64
	for time.Since(start) < dur {
		owed += perTick
		for ; owed >= 1; owed-- {
			select {
			case ring <- w.batches[i]:
			default: // ring full: input drop
			}
			i++
			if i == len(w.batches) {
				i = 0
			}
		}
		next = next.Add(tick)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(ring)
	<-done
	elapsed := time.Since(start).Seconds()
	return float64(forwarded) / elapsed
}

// BatchSizes are the burst widths of the batched-forwarding series
// (the fig12_batch section of BENCH_*.json snapshots).
var BatchSizes = []int{1, 8, 32, 128}

// MeasureForwardingBatch measures the production overlay data path end
// to end over real UDP on loopback: a driver socket offers workload
// packets to a full overlay.Router built with RouterConfig.Batch set
// to batchSize, routed straight back to the driver. batchSize 1 runs
// the legacy per-datagram path (one read syscall, one scheduler
// crossing, one write syscall, and a cross-goroutine handoff per
// packet); larger sizes run receiveLoopBatched → enqueueBatch →
// portLoopBatched with recvmmsg/sendmmsg, so the ratio between sizes
// is exactly what this batching buys on this machine. The driver keeps
// a window of batchSize packets in flight (a NIC ring of that depth),
// refilling as forwarded packets land, and returns the sustained rate
// in packets/second. A non-nil error means the window stalled (a
// packet was dropped) and the number is a lower bound; callers retry.
func MeasureForwardingBatch(w *Workload, batchSize int, dur time.Duration) (outputPPS float64, err error) {
	r, err := NewRouter(RouterConfig{
		Listen: "127.0.0.1:0",
		Core: core.RouterConfig{
			Suite:         w.suite,
			CacheEntries:  hitFlows * 2,
			TrustBoundary: true,
			// Sharing the workload's authority makes its pregenerated
			// capabilities (and cache-seeding regulars) valid here.
			Authority: w.Router.Authority(),
		},
		Batch: batchSize,
	})
	if err != nil {
		return 0, err
	}
	defer r.Close()
	dconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer dconn.Close()
	dbc, err := newBatchConn(dconn, batchSize)
	if err != nil {
		return 0, err
	}
	rAddr := r.Addr()
	if err := r.AddRoute(packet.Addr(1), dconn.LocalAddr().String()); err != nil {
		return 0, err
	}
	recv := func() (int, error) {
		dconn.SetReadDeadline(time.Now().Add(2 * time.Second))
		return dbc.recvBatch()
	}

	// Warm the router's flow cache so "with entry" kinds hit, exactly
	// as the workload's own router was seeded at build time.
	for i := 0; i < len(w.seeds); i += batchSize {
		end := i + batchSize
		if end > len(w.seeds) {
			end = len(w.seeds)
		}
		if _, serr := dbc.sendBatch(w.seeds[i:end], rAddr); serr != nil {
			return 0, serr
		}
		for need := end - i; need > 0; {
			n, rerr := recv()
			if rerr != nil {
				return 0, fmt.Errorf("cache seeding stalled: %w", rerr)
			}
			need -= n
		}
	}

	burst := make([][]byte, batchSize)
	idx := 0
	refill := func(k int) error {
		for i := 0; i < k; i++ {
			burst[i] = w.pkts[idx]
			idx++
			if idx == len(w.pkts) {
				idx = 0
			}
		}
		_, serr := dbc.sendBatch(burst[:k], rAddr)
		return serr
	}
	var forwarded int64
	start := time.Now()
	if err = refill(batchSize); err == nil {
		for time.Since(start) < dur {
			n, rerr := recv()
			if rerr != nil {
				err = fmt.Errorf("window stalled after %d packets: %w", forwarded, rerr)
				break
			}
			forwarded += int64(n)
			if err = refill(n); err != nil {
				break
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(forwarded) / elapsed, err
}
