// Per-flow shard workers: the overlay's answer to multi-queue line
// cards. A burst read off the socket is scattered across N workers by
// a hash of the flow key (the same src/dst pair that keys the flow
// cache, so each flow's soft state lives wholly in one shard), every
// worker runs the shared capability-processing engine over its slots,
// and the gather is free: results land in the burst's original slot
// order, so forwarding stays deterministic and in arrival order no
// matter how the workers interleave.
//
// Shard replicas share one capability.Authority (internally locked)
// and one pathid.Tagger (immutable after construction), so all shards
// mint and validate identical capabilities; caches, stats, and
// demotion counters are per-shard and aggregated on read.
package overlay

import (
	"sync"

	"tva/internal/core"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// shardJob is one worker's slice of a burst: process the batch's
// slots at idxs and report done.
type shardJob struct {
	b    *packet.Batch
	idxs []int
	now  tvatime.Time
	wg   *sync.WaitGroup
}

type shardWorker struct {
	// mu guards the replica's plain counters (Stats, Demotions, flow
	// cache): held around ProcessBatch on the worker goroutine and by
	// aggregate readers (stats, demotions, FlowCacheEntries).
	mu   sync.Mutex
	core *core.Router
	in   chan shardJob
}

// shardEngine scatters bursts across workers and waits for the
// gather. It is driven by the single receive goroutine; the only
// concurrency is inside process().
type shardEngine struct {
	workers []*shardWorker
	idxs    [][]int // per-shard slot index scratch, reused per burst
	wg      sync.WaitGroup
	run     sync.WaitGroup // worker goroutine lifetime
}

// flowShard hashes a flow key onto a shard. The mix must depend only
// on (src, dst) so every packet of a flow — requests, regular, and
// renewals — meets the same flow cache.
func flowShard(src, dst packet.Addr, n int) int {
	h := uint64(src)<<32 | uint64(dst)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// newShardEngine builds n workers; mk constructs each shard's router
// replica (the caller wires the shared authority and tagger into it).
func newShardEngine(n int, mk func() *core.Router) *shardEngine {
	e := &shardEngine{
		workers: make([]*shardWorker, n),
		idxs:    make([][]int, n),
	}
	for i := range e.workers {
		w := &shardWorker{core: mk(), in: make(chan shardJob)}
		e.workers[i] = w
		e.run.Add(1)
		go func() {
			defer e.run.Done()
			// scratch borrows slot references for the worker's batched
			// engine call; Reset (not ReleaseAll) hands them straight
			// back — the burst batch keeps ownership throughout.
			scratch := packet.NewBatch(packet.DefaultBatchCap)
			for job := range w.in {
				for _, idx := range job.idxs {
					scratch.Append(job.b.At(idx))
				}
				w.mu.Lock()
				w.core.ProcessBatch(scratch, 0, job.now)
				w.mu.Unlock()
				for j, idx := range job.idxs {
					job.b.SetClass(idx, scratch.Class(j))
				}
				scratch.Reset()
				job.wg.Done()
			}
		}()
	}
	return e
}

// process classifies every slot of b, exactly as one core.Router
// ProcessBatch call would, but fanned across the shard workers.
func (e *shardEngine) process(b *packet.Batch, now tvatime.Time) {
	for i := range e.idxs {
		e.idxs[i] = e.idxs[i][:0]
	}
	n := len(e.workers)
	for i, pkt := range b.Pkts() {
		if pkt == nil {
			continue
		}
		s := flowShard(pkt.Src, pkt.Dst, n)
		e.idxs[s] = append(e.idxs[s], i)
	}
	for s, idxs := range e.idxs {
		if len(idxs) == 0 {
			continue
		}
		e.wg.Add(1)
		e.workers[s].in <- shardJob{b: b, idxs: idxs, now: now, wg: &e.wg}
	}
	e.wg.Wait()
}

// close shuts the workers down and waits for them.
func (e *shardEngine) close() {
	for _, w := range e.workers {
		close(w.in)
	}
	e.run.Wait()
}

// stats sums the shard routers' counters.
func (e *shardEngine) stats() core.RouterStats {
	var total core.RouterStats
	for _, w := range e.workers {
		w.mu.Lock()
		s := w.core.Stats
		w.mu.Unlock()
		total.Requests += s.Requests
		total.RegularHit += s.RegularHit
		total.RegularMiss += s.RegularMiss
		total.Renewals += s.Renewals
		total.Replaced += s.Replaced
		total.Demoted += s.Demoted
		total.Legacy += s.Legacy
	}
	return total
}

// demotions merges the shard routers' demotion attribution.
func (e *shardEngine) demotions() telemetry.DropCounters {
	var total telemetry.DropCounters
	for _, w := range e.workers {
		w.mu.Lock()
		total.Merge(&w.core.Demotions)
		w.mu.Unlock()
	}
	return total
}
