// In-process loopback topology: a chain of overlay routers and host
// proxies on 127.0.0.1, built for CI and the sim-vs-real
// cross-validation harness (internal/xcheck). Everything runs in one
// process over the loopback interface — no privileges, no containers —
// yet exercises the real UDP sockets, the real port goroutines, and
// the real schedulers, so agreement with the simulator is evidence
// about the deployment path, not a mock of it.
package overlay

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/metrics"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// TopoConfig configures an in-process router chain.
type TopoConfig struct {
	// Routers is the chain length (default 2). Router i forwards toward
	// router i+1 for hosts attached further right, and toward i-1 for
	// hosts attached further left.
	Routers int
	// LinkBps paces every port (router-to-router and router-to-host).
	LinkBps int64
	// RequestFraction is the request-channel share (default 5%).
	RequestFraction float64
	// Suite selects capability hashing for the routers (zero value:
	// the core package's default, crypto).
	Suite capability.Suite
	// CacheEntries sizes each router's flow cache (default 4096, the
	// simulator harness's setting).
	CacheEntries int
	// Batch/Shards select the batched socket path per router (see
	// RouterConfig); the loopback default is the per-datagram path.
	Batch, Shards int
	// SpanCapacity, if positive, attaches a shared packet-lifecycle
	// flight recorder across all routers: each router assigns fresh
	// trace IDs at its ingress and records enqueue/dequeue/tx edges at
	// its ports, giving per-hop span fragments for wait aggregation.
	SpanCapacity int
}

// Topology is a running chain of loopback routers plus the hosts
// attached to them.
type Topology struct {
	cfg     TopoConfig
	routers []*Router
	spans   *SpanSink
	clock   tvatime.Clock

	mu      sync.Mutex
	hosts   []*Host
	metrics []*RouterMetrics

	// tickMu serializes registry/detector ticks between the optional
	// ticker goroutine and manual Tick calls (the detector is not
	// concurrency-safe).
	tickMu sync.Mutex

	stop      chan struct{}
	stopOnce  sync.Once
	tickersWG sync.WaitGroup
}

// NewTopology binds and starts the router chain.
func NewTopology(cfg TopoConfig) (*Topology, error) {
	if cfg.Routers <= 0 {
		cfg.Routers = 2
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 4096
	}
	t := &Topology{
		cfg:   cfg,
		clock: tvatime.WallClock{},
		stop:  make(chan struct{}),
	}
	if cfg.SpanCapacity > 0 {
		t.spans = NewSpanSink(trace.NewRecorder(cfg.SpanCapacity))
	}
	for i := 0; i < cfg.Routers; i++ {
		r, err := NewRouter(RouterConfig{
			Listen: "127.0.0.1:0",
			Core: core.RouterConfig{
				ID:            uint8(i + 1),
				Suite:         cfg.Suite,
				CacheEntries:  cfg.CacheEntries,
				TrustBoundary: true,
			},
			LinkBps:         cfg.LinkBps,
			RequestFraction: cfg.RequestFraction,
			Batch:           cfg.Batch,
			Shards:          cfg.Shards,
			Spans:           t.spans,
		})
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("overlay: topology router %d: %w", i, err)
		}
		t.routers = append(t.routers, r)
	}
	return t, nil
}

// Routers returns the chain length.
func (t *Topology) Routers() int { return len(t.routers) }

// Router returns the i-th router of the chain.
func (t *Topology) Router(i int) *Router { return t.routers[i] }

// Spans returns the shared span sink (nil unless SpanCapacity > 0).
func (t *Topology) Spans() *SpanSink { return t.spans }

// AddHost binds a host proxy, attaches it to router `at` (its
// gateway), and installs chain routes for its address on every router:
// routers left of `at` forward toward their right neighbour, routers
// right of it toward their left neighbour, and router `at` delivers to
// the host's socket.
func (t *Topology) AddHost(addr packet.Addr, at int, policy core.Policy, shim core.ShimConfig) (*Host, error) {
	if at < 0 || at >= len(t.routers) {
		return nil, fmt.Errorf("overlay: AddHost at router %d of %d", at, len(t.routers))
	}
	h, err := NewHost(HostConfig{
		Addr:    addr,
		Listen:  "127.0.0.1:0",
		Gateway: t.routers[at].Addr().String(),
		Policy:  policy,
		Shim:    shim,
	})
	if err != nil {
		return nil, err
	}
	if err := t.routeTo(addr, at, h.UDPAddr().String()); err != nil {
		h.Close()
		return nil, err
	}
	t.mu.Lock()
	t.hosts = append(t.hosts, h)
	t.mu.Unlock()
	return h, nil
}

// routeTo installs the chain routes for one destination address whose
// delivery point is the given UDP address behind router `at`.
func (t *Topology) routeTo(addr packet.Addr, at int, via string) error {
	for i, r := range t.routers {
		next := via
		switch {
		case i < at:
			next = t.routers[i+1].Addr().String()
		case i > at:
			next = t.routers[i-1].Addr().String()
		}
		if err := r.AddRoute(addr, next); err != nil {
			return err
		}
	}
	return nil
}

// LinkWaitSketch returns the queue-wait sketch of router i's port
// toward router i+1 — the forward direction of chain link i. Nil until
// a route crossing that link has been installed (ports are created
// lazily).
func (t *Topology) LinkWaitSketch(i int) *metrics.Sketch {
	if i < 0 || i+1 >= len(t.routers) {
		return nil
	}
	return t.routers[i].PortWaitSketch(t.routers[i+1].Addr().String())
}

// LinkSchedDrops returns the reason-attributed drops of router i's
// port toward router i+1 (forward direction of chain link i).
func (t *Topology) LinkSchedDrops(i int) telemetry.DropCounters {
	if i < 0 || i+1 >= len(t.routers) {
		return telemetry.DropCounters{}
	}
	return t.routers[i].PortSchedDrops(t.routers[i+1].Addr().String())
}

// StartMetrics builds each router's streaming registry (call it after
// every AddHost, so per-port series cover the ports that exist) and,
// when interval > 0, starts one wall-clock ticker goroutine driving
// all of them. The goroutine exits on Close (stop-channel pattern).
func (t *Topology) StartMetrics(window int, health metrics.DetectorConfig, interval time.Duration) ([]*RouterMetrics, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metrics != nil {
		return nil, errors.New("overlay: topology metrics already started")
	}
	ms := make([]*RouterMetrics, len(t.routers))
	for i, r := range t.routers {
		ms[i] = r.Metrics(window, health)
	}
	t.metrics = ms
	if interval > 0 {
		t.tickersWG.Add(1)
		go func() {
			defer t.tickersWG.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-tick.C:
					t.Tick()
				}
			}
		}()
	}
	return ms, nil
}

// Metrics returns router i's registry/detector bundle (nil before
// StartMetrics).
func (t *Topology) Metrics(i int) *RouterMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metrics == nil {
		return nil
	}
	return t.metrics[i]
}

// Tick samples every router's registry and health detector once at the
// current wall time. Serialized against the ticker goroutine, so a
// caller may take a final deterministic sample before scraping.
func (t *Topology) Tick() {
	t.mu.Lock()
	ms := t.metrics
	t.mu.Unlock()
	if ms == nil {
		return
	}
	now := t.clock.Now()
	t.tickMu.Lock()
	defer t.tickMu.Unlock()
	for _, m := range ms {
		m.Tick(now)
	}
}

// Close stops the ticker, then shuts hosts and routers down and waits
// for their goroutines.
func (t *Topology) Close() error {
	t.stopOnce.Do(func() { close(t.stop) })
	t.tickersWG.Wait()
	var first error
	t.mu.Lock()
	hosts := t.hosts
	t.hosts = nil
	t.mu.Unlock()
	for _, h := range hosts {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, r := range t.routers {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
