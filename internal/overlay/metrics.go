package overlay

import (
	"sort"
	"sync"

	"tva/internal/flowstats"
	"tva/internal/metrics"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// RouterMetrics bundles a Router's streaming metrics registry with
// its attack-onset health detector. Build it once (after routes are
// installed — per-port series are registered for the ports that exist
// then), hand the Registry to an HTTP /metrics handler, and drive
// Tick from a wall-clock ticker. The series names match the ones the
// simulator's exp harness registers, so tvatop and offline tooling
// read both data planes identically.
type RouterMetrics struct {
	Registry *metrics.Registry
	Health   *metrics.Detector
	router   *Router

	// Flow-series state: Tick recomputes these once per interval from a
	// FlowSnapshot (the gauge closures must stay cheap — a registry
	// sample may not walk every owner's table), and any goroutine may
	// read them through the registry, hence the mutex. flowPrev carries
	// each tracked sender's last-window byte count for SampleFairness.
	flowMu       sync.Mutex
	flowPrev     map[flowstats.Key]uint64
	flowTracked  float64
	flowBytes    float64
	flowTopShare float64
	flowJain     float64
	flowRatio    float64
}

// Metrics builds the router's registry: forwarding totals, per-reason
// scheduler drops and demotions, flow-cache occupancy, queue-wait
// quantiles, burst fill, one labelled gauge set per neighbour port,
// and the health state. window is the number of retained tick rows.
// Every value has exactly one source of truth — the router's own
// counters — and the expvar diagnostics in tvarouter re-read the same
// registry, so /metrics and /debug/vars can never disagree.
func (r *Router) Metrics(window int, health metrics.DetectorConfig) *RouterMetrics {
	reg := metrics.New(window)
	det := metrics.NewDetector(health)
	m := &RouterMetrics{Registry: reg, Health: det, router: r}

	// Forwarding totals (overlay-plane series).
	mustReg(reg.Counter(metrics.NameRouterReceived, nil,
		"Datagrams received on the router socket.",
		func() float64 { return float64(r.Received.Load()) }))
	mustReg(reg.Counter(metrics.NameRouterForwarded, nil,
		"Packets routed toward a neighbour port.",
		func() float64 { return float64(r.Forwarded.Load()) }))
	mustReg(reg.Counter(metrics.NameRouterUnroutable, nil,
		"Packets with no route and no default port.",
		func() float64 { return float64(r.Unroutable.Load()) }))
	mustReg(reg.Counter(metrics.NameRouterMalformed, nil,
		"Datagrams that failed TVA header parsing.",
		func() float64 { return float64(r.Malformed.Load()) }))

	// Reason-attributed scheduler drops and demotions (shared-name
	// series; the simulator registers the same names).
	for i := 1; i < telemetry.NumDropReasons; i++ {
		reason := telemetry.DropReason(i)
		mustReg(reg.Counter(metrics.NameSchedDrops, metrics.L("reason", reason.String()),
			"Packets dropped by link schedulers, by attributed reason.",
			func() float64 { d := r.SchedDrops(); return float64(d.Get(reason)) }))
		mustReg(reg.Counter(metrics.NameDemotions, metrics.L("reason", reason.String()),
			"Packets demoted to legacy service, by attributed cause.",
			func() float64 { d := r.CoreDemotions(); return float64(d.Get(reason)) }))
	}

	mustReg(reg.Gauge(metrics.NameFlowCacheEntries, nil,
		"Live flow-cache entries across shard replicas.",
		func() float64 { return float64(r.FlowCacheEntries()) }))
	mustReg(reg.Gauge(metrics.NameQueueWaitEWMA, nil,
		"EWMA output-queue wait in microseconds (the hop-report value).",
		func() float64 { return float64(r.QueueWaitMicros()) }))
	mustReg(reg.SketchQuantiles(metrics.NameQueueWait, nil,
		"Output-queue wait quantiles in nanoseconds.",
		&r.waitSketch, 0.5, 0.99))
	mustReg(reg.Gauge(metrics.NameRxBurstFill, nil,
		"Mean datagrams per socket read burst.", r.RxBurstFill))
	mustReg(reg.Gauge(metrics.NameTxBurstFill, nil,
		"Mean datagrams per send burst across ports.", r.TxBurstFill))

	// Per-port scheduler gauges, labelled by neighbour address. Ports
	// created after this point (late AddRoute) are not re-registered:
	// the series set seals at the first Tick.
	r.mu.Lock()
	keys := make([]string, 0, len(r.ports))
	for k := range r.ports {
		keys = append(keys, k)
	}
	sort.Strings(keys) // stable column order regardless of map iteration
	ports := make([]*port, len(keys))
	for i, k := range keys {
		ports[i] = r.ports[k]
	}
	r.mu.Unlock()
	for i, k := range keys {
		k, p := k, ports[i]
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("port", k, "class", "request"),
			"Backlogged packets per port and class.",
			func() float64 { return float64(portBacklog(p, 0)) }))
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("port", k, "class", "regular"),
			"Backlogged packets per port and class.",
			func() float64 { return float64(portBacklog(p, 1)) }))
		mustReg(reg.Gauge(metrics.NameQueuePkts, metrics.L("port", k, "class", "legacy"),
			"Backlogged packets per port and class.",
			func() float64 { return float64(portBacklog(p, 2)) }))
		mustReg(reg.Gauge(metrics.NameRegularQueues, metrics.L("port", k),
			"Live per-destination fair queues.",
			func() float64 { return float64(portBacklog(p, 3)) }))
		mustReg(reg.Gauge(metrics.NameTokenBucket, metrics.L("port", k),
			"Request-channel token bucket level in bytes.",
			func() float64 { return portTokenLevel(p, r.clock) }))
		mustReg(reg.Counter(metrics.NamePortSent, metrics.L("port", k),
			"Datagrams transmitted toward the neighbour.",
			func() float64 { return float64(p.Sent.Load()) }))
		mustReg(reg.Counter(metrics.NamePortDropped, metrics.L("port", k),
			"Packets dropped at this port's scheduler.",
			func() float64 { return float64(p.Dropped.Load()) }))
	}

	// Per-sender flow accounting (shared-name series; per-sender detail
	// is the /flows JSON endpoint — an open-ended sender population
	// cannot be a labelled series once the registry seals).
	m.flowPrev = make(map[flowstats.Key]uint64)
	m.flowJain, m.flowRatio = 1, 1
	flowField := func(f *float64) func() float64 {
		return func() float64 {
			m.flowMu.Lock()
			defer m.flowMu.Unlock()
			return *f
		}
	}
	mustReg(reg.Gauge(metrics.NameFlowTrackedSenders, nil,
		"Heavy-hitter table entries after the cross-owner merge (at most top-K).",
		flowField(&m.flowTracked)))
	mustReg(reg.Counter(metrics.NameFlowBytes, nil,
		"Total bytes observed by the per-sender accounting engines.",
		flowField(&m.flowBytes)))
	mustReg(reg.Gauge(metrics.NameFlowTopShare, nil,
		"Top tracked sender's fraction of all observed bytes.",
		flowField(&m.flowTopShare)))
	mustReg(reg.Gauge(metrics.NameFlowFairnessJain, nil,
		"Jain's fairness index over tracked senders' per-window byte deltas.",
		flowField(&m.flowJain)))
	mustReg(reg.Gauge(metrics.NameFlowMaxMinRatio, nil,
		"Best/worst tracked-sender goodput ratio per window (1 = fair).",
		flowField(&m.flowRatio)))

	// Health (shared-name series).
	mustReg(reg.Gauge(metrics.NameHealthState, nil,
		"Attack-onset health: 0=healthy 1=degraded 2=under-attack 3=recovered.",
		det.StateValue))
	mustReg(reg.Counter(metrics.NameHealthTransitions, nil,
		"Health-state transitions since start.",
		func() float64 { return float64(len(det.Transitions()) + det.Overflow()) }))
	return m
}

// Tick advances the health detector on the current drop totals and
// request pressure, then samples every series. Call it from a single
// goroutine (the detector is not concurrency-safe; the registry is).
func (m *RouterMetrics) Tick(now tvatime.Time) {
	rows, total := m.router.FlowSnapshot()
	m.flowMu.Lock()
	m.flowTracked = float64(len(rows))
	m.flowBytes = float64(total)
	m.flowTopShare = 0
	if total > 0 && len(rows) > 0 {
		m.flowTopShare = float64(rows[0].Bytes) / float64(total)
	}
	m.flowJain, m.flowRatio = flowstats.SampleFairness(m.flowPrev, rows)
	m.flowMu.Unlock()

	d := m.router.SchedDrops()
	drops := d.Total()
	pressure := float64(m.router.RequestBacklog())
	m.Health.ObserveTick(now, float64(drops), pressure)
	m.Registry.Tick(now)
}

// mustReg panics on a registration error: RouterMetrics registers
// everything before the registry can seal, so an error here is a
// programming bug (duplicate series), not runtime input.
func mustReg(err error) {
	if err != nil {
		panic(err)
	}
}

// portBacklog reads one scheduler occupancy figure under the port
// lock: 0=request, 1=regular, 2=legacy backlog, 3=live fair queues.
// Non-TVA schedulers report their total length as regular.
func portBacklog(p *port, which int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	tva, ok := p.q.(*sched.TVA)
	if !ok {
		if which == 1 {
			return p.q.Len()
		}
		return 0
	}
	switch which {
	case 0:
		return tva.RequestBacklog()
	case 1:
		return tva.RegularBacklog()
	case 2:
		return tva.LegacyBacklog()
	default:
		return tva.RegularQueues()
	}
}

// portTokenLevel reads the request channel's token level at the
// current wall time.
func portTokenLevel(p *port, clock tvatime.Clock) float64 {
	now := clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if tva, ok := p.q.(*sched.TVA); ok {
		return tva.TokenLevel(now)
	}
	return 0
}
