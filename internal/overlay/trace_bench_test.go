package overlay

import (
	"testing"

	"tva/internal/capability"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// tracedWorkload is the Table 1 regular-with-entry workload with a span
// flight recorder attached to the router and a live trace ID on the
// scratch packet (UnmarshalReuse preserves TraceID, as the real
// forwarding path does: the ID rides the in-memory packet, not the
// wire), so every ForwardOne emits verdict spans into the recorder.
func tracedWorkload() *Workload {
	w := NewWorkload(KindRegularWithEntry, capability.Fast)
	rec := trace.NewRecorder(1 << 12)
	w.Router.Spans = rec
	w.scratch.TraceID = rec.NextID()
	return w
}

// TestTracedForwardingNoAllocs is the recorder-enabled counterpart of
// the Table 1 zero-alloc guarantee: span emission on the forwarding
// hot path must not allocate either.
func TestTracedForwardingNoAllocs(t *testing.T) {
	w := tracedWorkload()
	now := tvatime.WallClock{}.Now()
	allocs := testing.AllocsPerRun(2000, func() {
		w.ForwardOne(now)
	})
	if allocs != 0 {
		t.Fatalf("traced forwarding allocates %.1f/op, want 0", allocs)
	}
	if w.Router.Spans.Recorded() == 0 {
		t.Fatal("recorder attached but no spans recorded")
	}
}

// BenchmarkTracedForwarding measures the span-recording overhead on
// the regular-with-entry path (compare BenchmarkForwarding elsewhere
// for the nil-recorder baseline).
func BenchmarkTracedForwarding(b *testing.B) {
	w := tracedWorkload()
	now := tvatime.WallClock{}.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ForwardOne(now)
	}
}
