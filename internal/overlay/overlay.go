// Package overlay is the userspace deployment of TVA (paper §6 and
// §8): capability routers and host proxies running as ordinary
// processes over UDP, the "inline packet processing box" form of
// incremental deployment. A Router forwards TVA packets between
// UDP-addressed neighbours, running the same core.Router processing
// and Fig. 2 link scheduling as the simulator; a Host offers a
// capability-protected datagram service to applications.
//
// Concurrency model: one goroutine owns all protocol state (core is
// single-threaded by design); per-neighbour output goroutines pace
// transmissions at the configured link rate through the shared
// scheduler under a lock. This mirrors a router's line-card queues.
package overlay

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tva/internal/core"
	"tva/internal/flowstats"
	"tva/internal/metrics"
	"tva/internal/packet"
	"tva/internal/pathid"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// maxDatagram is the receive buffer size (payloads are bounded well
// below this).
const maxDatagram = 64 * 1024

// RouterConfig configures an overlay router.
type RouterConfig struct {
	// Listen is the UDP address to bind (e.g. "127.0.0.1:7000").
	Listen string
	// Core configures capability processing (suite, cache, trust
	// boundary). Zero value gives crypto hashing and defaults.
	Core core.RouterConfig
	// LinkBps paces each neighbour link; 0 means unpaced (as fast as
	// the socket allows).
	LinkBps int64
	// RequestFraction is the request-channel share (default 5%).
	RequestFraction float64
	// Batch is the socket burst size: how many datagrams one
	// recvmmsg/sendmmsg crossing may carry (clamped to
	// packet.DefaultBatchCap). 0 or 1 keeps the per-datagram path. On
	// platforms without mmsg syscalls reads degenerate to one datagram
	// per call but the batched forwarding path still runs.
	Batch int
	// Shards fans capability processing across this many flow-hashed
	// workers sharing one authority (see shard.go). 0 or 1 processes
	// on the receive goroutine. Requires Batch > 1 to matter: the
	// scatter unit is the receive burst.
	Shards int
	// Spans, if non-nil, records packet-lifecycle spans: every received
	// packet gets a fresh trace ID at this router's ingress and its
	// enqueue/dequeue/tx edges at the output ports are recorded through
	// the sink (which serializes access to the underlying unsynchronized
	// trace.Recorder). Trace IDs are not carried on the wire, so a
	// multi-router path yields one per-hop span fragment per router —
	// exactly what per-hop wait aggregation (trace.AggregateHops) needs.
	// Must be set before NewRouter; it cannot be attached later.
	Spans *SpanSink
}

// Router is a userspace TVA capability router.
type Router struct {
	conn  *net.UDPConn
	core  *core.Router
	clock tvatime.Clock
	cfg   RouterConfig

	// rx is the batched socket reader (nil on the per-datagram path);
	// shards is the flow-hashed processing fan-out (nil unsharded).
	rx     *batchConn
	shards *shardEngine

	// coreMu guards the unsharded engine's plain counters (Stats,
	// Demotions, flow cache): held by the receive goroutine around
	// Process/ProcessBatch and by snapshot readers (metrics gauges).
	// Sharded routers guard per worker instead (shardWorker.mu).
	coreMu sync.Mutex

	mu     sync.Mutex
	routes map[packet.Addr]*port
	ports  map[string]*port // keyed by neighbour UDP address
	def    *port

	closed  chan struct{}
	wg      sync.WaitGroup
	started time.Time

	// waitEWMA is the router-wide EWMA of output-queue wait in
	// microseconds, updated by the port goroutines and read (via
	// core.Router.HopWait) when stamping hop reports into requests.
	// waitSketch streams the same per-packet waits (in nanoseconds)
	// into the metrics layer's quantile sketch.
	waitEWMA   atomic.Uint32
	waitSketch metrics.Sketch

	// Stats, written by the receive goroutine and read concurrently by
	// the metrics registry, stats printers, and tests — atomics so a
	// live scrape never races the data path. RxBursts/RxBurstPkts
	// count socket read bursts and the datagrams they carried; their
	// ratio is the ingress fill level (RxBurstFill).
	Received, Forwarded, Unroutable, Malformed atomic.Uint64
	RxBursts, RxBurstPkts                      atomic.Uint64
}

// port is one neighbour link: an output scheduler paced at the link
// rate by its own goroutine.
type port struct {
	to   *net.UDPAddr
	bps  int64
	mu   sync.Mutex
	cond *sync.Cond
	q    sched.Scheduler

	// waitSketch streams this port's per-packet output-queue waits
	// (nanoseconds). The router-wide sketch mixes every port's traffic;
	// the per-port one lets cross-plane comparison read the congested
	// link in isolation, the way the simulator's bottleneck sketch does.
	waitSketch metrics.Sketch

	// spans/hop: packet-lifecycle recording for this port's queue
	// (nil/NoHop when RouterConfig.Spans is unset).
	spans *SpanSink
	hop   uint16

	// Sent/Dropped and the burst counters are written by the port
	// goroutine and read concurrently by diagnostics — atomics for the
	// same reason as the Router totals. TxBursts/TxBurstPkts count
	// egress send bursts and the datagrams they carried.
	Sent, Dropped         atomic.Uint64
	TxBursts, TxBurstPkts atomic.Uint64

	// nextTx is when the emulated link next frees up; only the port's
	// own output goroutine touches it (see pace).
	nextTx tvatime.Time
}

// paceCredit bounds how far behind its emulated transmit schedule a
// port may fall before catch-up credit stops accruing: sleep overshoot
// within this window is repaid by back-to-back sends, so the effective
// link rate converges to bps instead of drifting below it, while an
// idle link cannot bank credit for an unbounded burst later.
const paceCredit = 5 * time.Millisecond

// pace blocks until the emulated link has finished serializing
// wireBytes. Credit-based: the deadline advances from the previous
// deadline, not from "now", so timer overshoot on one packet is repaid
// on the next instead of compounding into a lower effective rate.
func (p *port) pace(clock tvatime.Clock, wireBytes int) {
	if p.bps <= 0 || wireBytes <= 0 {
		return
	}
	now := clock.Now()
	if floor := now.Add(-paceCredit); p.nextTx.Before(floor) {
		p.nextTx = floor
	}
	p.nextTx = p.nextTx.Add(time.Duration(int64(wireBytes) * 8 * int64(time.Second) / p.bps))
	if d := p.nextTx.Sub(now); d > 0 {
		time.Sleep(d)
	}
}

// span records one lifecycle edge for pkt at this port. A nil check
// and, when recording, one mutex crossing — the overlay is not the
// zero-alloc hot path, so clarity wins here.
func (p *port) span(pkt *packet.Packet, edge trace.Edge, now tvatime.Time) {
	if p.spans == nil || pkt.TraceID == 0 {
		return
	}
	p.spans.Record(trace.Span{
		ID:   pkt.TraceID,
		Time: now,
		Src:  uint32(pkt.Src), Dst: uint32(pkt.Dst),
		Size: uint32(pkt.Size),
		Hop:  p.hop,
		Edge: edge, Class: uint8(pkt.Class),
	})
}

// NewRouter binds the router's socket and starts its receive loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("overlay: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen: %w", err)
	}
	if cfg.RequestFraction <= 0 {
		cfg.RequestFraction = 0.05
	}
	if cfg.Batch > packet.DefaultBatchCap {
		cfg.Batch = packet.DefaultBatchCap
	}
	// Shard replicas must share the path-identifier tagger, so pin it
	// before any router replica is built (core would otherwise mint a
	// private one per replica and tags would disagree across shards).
	if cfg.Core.TrustBoundary && cfg.Core.Tagger == nil {
		cfg.Core.Tagger = pathid.New()
	}
	r := &Router{
		conn:    conn,
		core:    core.NewRouter(cfg.Core),
		clock:   tvatime.WallClock{},
		cfg:     cfg,
		routes:  make(map[packet.Addr]*port),
		ports:   make(map[string]*port),
		closed:  make(chan struct{}),
		started: time.Now(),
	}
	// Hop-wait attribution: requests that opt in (WantHops) get stamped
	// with this router's current queue-wait estimate, which travels back
	// to the sender in return information (tvaping shows it per hop).
	r.core.HopWait = r.waitEWMA.Load
	// Per-sender accounting: one collector per state owner, guarded by
	// that owner's existing lock (coreMu here, shardWorker.mu per shard,
	// port.mu per port scheduler); FlowSnapshot merges them.
	r.core.Flows = flowstats.New(flowstats.DefaultTopK, flowstats.DefaultSketchWidth)
	if cfg.Shards > 1 && cfg.Batch > 1 {
		sub := cfg.Core
		sub.Authority = r.core.Authority()
		r.shards = newShardEngine(cfg.Shards, func() *core.Router {
			w := core.NewRouter(sub)
			w.HopWait = r.waitEWMA.Load
			w.Flows = flowstats.New(flowstats.DefaultTopK, flowstats.DefaultSketchWidth)
			return w
		})
	}
	r.wg.Add(1)
	if cfg.Batch > 1 {
		rx, err := newBatchConn(conn, cfg.Batch)
		if err != nil {
			conn.Close()
			if r.shards != nil {
				r.shards.close()
			}
			return nil, fmt.Errorf("overlay: batch io: %w", err)
		}
		r.rx = rx
		go r.receiveLoopBatched()
	} else {
		go r.receiveLoop()
	}
	return r, nil
}

// RxBurstFill returns the mean datagrams per socket read burst (1.0
// when unbatched or idle; approaches the batch size under load).
func (r *Router) RxBurstFill() float64 {
	if r.RxBursts.Load() == 0 {
		return 0
	}
	return float64(r.RxBurstPkts.Load()) / float64(r.RxBursts.Load())
}

// TxBurstFill returns the mean datagrams per send burst across all
// ports.
func (r *Router) TxBurstFill() float64 {
	var bursts, pkts uint64
	r.mu.Lock()
	for _, p := range r.ports {
		bursts += p.TxBursts.Load()
		pkts += p.TxBurstPkts.Load()
	}
	r.mu.Unlock()
	if bursts == 0 {
		return 0
	}
	return float64(pkts) / float64(bursts)
}

// CoreStats aggregates processing outcomes across shard replicas (or
// returns the single engine's counters when unsharded).
func (r *Router) CoreStats() core.RouterStats {
	if r.shards != nil {
		return r.shards.stats()
	}
	r.coreMu.Lock()
	defer r.coreMu.Unlock()
	return r.core.Stats
}

// CoreDemotions aggregates demotion attribution across shard replicas.
func (r *Router) CoreDemotions() telemetry.DropCounters {
	if r.shards != nil {
		return r.shards.demotions()
	}
	r.coreMu.Lock()
	defer r.coreMu.Unlock()
	return r.core.Demotions
}

// FlowCacheEntries sums live flow-cache entries across shard replicas.
func (r *Router) FlowCacheEntries() int {
	if r.shards == nil {
		r.coreMu.Lock()
		defer r.coreMu.Unlock()
		return r.core.Cache().Len()
	}
	n := 0
	for _, w := range r.shards.workers {
		w.mu.Lock()
		n += w.core.Cache().Len()
		w.mu.Unlock()
	}
	return n
}

// FlowSnapshot merges every owner's per-sender table — the capability
// engine (or its shard replicas) and each port scheduler's drop
// accounting — into one top-K view, plus the total bytes the engines
// observed. MergeSamples keys the fold and fixes the final order
// (bytes descending, key ascending), so the result is deterministic
// regardless of shard count, port map iteration, or merge order: the
// same traffic always yields the same rows.
func (r *Router) FlowSnapshot() ([]flowstats.Sample, uint64) {
	var samples []flowstats.Sample
	var total uint64
	if r.shards != nil {
		for _, w := range r.shards.workers {
			w.mu.Lock()
			samples = w.core.Flows.AppendSamples(samples)
			total += w.core.Flows.TotalBytes()
			w.mu.Unlock()
		}
	} else {
		r.coreMu.Lock()
		samples = r.core.Flows.AppendSamples(samples)
		total = r.core.Flows.TotalBytes()
		r.coreMu.Unlock()
	}
	r.mu.Lock()
	ports := make([]*port, 0, len(r.ports))
	for _, p := range r.ports {
		ports = append(ports, p)
	}
	r.mu.Unlock()
	for _, p := range ports {
		p.mu.Lock()
		if tva, ok := p.q.(*sched.TVA); ok {
			samples = tva.Flows.AppendSamples(samples)
		}
		p.mu.Unlock()
	}
	return flowstats.MergeSamples(samples, flowstats.DefaultTopK), total
}

// QueueWaitMicros returns the router's EWMA output-queue wait in
// microseconds (the value stamped into hop reports).
func (r *Router) QueueWaitMicros() uint32 { return r.waitEWMA.Load() }

// WaitSketch exposes the quantile sketch of per-packet output-queue
// waits (nanoseconds), the overlay's source for the shared
// tva_queue_wait_ns series.
func (r *Router) WaitSketch() *metrics.Sketch { return &r.waitSketch }

// PortWaitSketch returns the per-port wait sketch for the port toward
// the given neighbour UDP address, or nil if no such port exists. The
// cross-plane harness reads the congested link's port here, so its
// distribution lines up with the simulator's bottleneck sketch instead
// of mixing in reverse-direction ports.
func (r *Router) PortWaitSketch(neighbor string) *metrics.Sketch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.ports[neighbor]; ok {
		return &p.waitSketch
	}
	return nil
}

// PortSchedDrops returns the reason-attributed drop counts of the
// scheduler on the port toward neighbor (zero counters when the port
// does not exist or its scheduler does not attribute drops).
func (r *Router) PortSchedDrops(neighbor string) telemetry.DropCounters {
	r.mu.Lock()
	p := r.ports[neighbor]
	r.mu.Unlock()
	var out telemetry.DropCounters
	if p == nil {
		return out
	}
	p.mu.Lock()
	if rc, ok := p.q.(sched.ReasonCounter); ok {
		out.Merge(rc.DropReasons())
	}
	p.mu.Unlock()
	return out
}

// RequestBacklog sums backlogged request-class packets across all
// ports — the request-channel pressure signal the health detector
// watches (a request flood backs this up before anything overflows).
func (r *Router) RequestBacklog() int {
	r.mu.Lock()
	ports := make([]*port, 0, len(r.ports))
	for _, p := range r.ports {
		ports = append(ports, p)
	}
	r.mu.Unlock()
	n := 0
	for _, p := range ports {
		p.mu.Lock()
		if tva, ok := p.q.(*sched.TVA); ok {
			n += tva.RequestBacklog()
		}
		p.mu.Unlock()
	}
	return n
}

// observeWait folds one packet's measured queue wait into the EWMA
// (gain 1/8, matching TCP's RTT smoothing) and streams it into the
// router-wide and per-port wait sketches.
func (r *Router) observeWait(p *port, d time.Duration) {
	r.waitSketch.Observe(int64(d))
	p.waitSketch.Observe(int64(d))
	us := uint32(d / time.Microsecond)
	for {
		old := r.waitEWMA.Load()
		next := old - old/8 + us/8
		if old == 0 {
			next = us
		}
		if r.waitEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// Addr returns the bound UDP address.
func (r *Router) Addr() *net.UDPAddr { return r.conn.LocalAddr().(*net.UDPAddr) }

// linkSched builds the Fig. 2 scheduler for one neighbour.
func (r *Router) linkSched() sched.Scheduler {
	bps := r.cfg.LinkBps
	if bps <= 0 {
		bps = 1_000_000_000 // effectively unpaced; still classful
	}
	return sched.NewTVA(sched.TVAConfig{
		LinkBps:         bps,
		RequestFraction: r.cfg.RequestFraction,
	})
}

// portFor returns (creating if needed) the port toward a neighbour.
func (r *Router) portFor(to *net.UDPAddr) *port {
	key := to.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.ports[key]; ok {
		return p
	}
	p := &port{to: to, bps: r.cfg.LinkBps, q: r.linkSched(), hop: trace.NoHop}
	if tva, ok := p.q.(*sched.TVA); ok {
		// Drop attribution feeds the same per-sender tables; the
		// collector is owned by this port's scheduler under p.mu.
		tva.Flows = flowstats.New(flowstats.DefaultTopK, flowstats.DefaultSketchWidth)
	}
	p.cond = sync.NewCond(&p.mu)
	if r.cfg.Spans != nil {
		p.spans = r.cfg.Spans
		p.hop = r.cfg.Spans.RegisterHop(r.Addr().String() + "->" + key)
	}
	r.ports[key] = p
	r.wg.Add(1)
	if bs, ok := p.q.(sched.BatchScheduler); ok && r.cfg.Batch > 1 {
		if tx, err := newBatchConn(r.conn, r.cfg.Batch); err == nil {
			go r.portLoopBatched(p, bs, tx)
			return p
		}
	}
	go r.portLoop(p)
	return p
}

// AddRoute installs a route: packets for dst leave toward the
// neighbour at via.
func (r *Router) AddRoute(dst packet.Addr, via string) error {
	to, err := net.ResolveUDPAddr("udp", via)
	if err != nil {
		return fmt.Errorf("overlay: route via %q: %w", via, err)
	}
	p := r.portFor(to)
	r.mu.Lock()
	r.routes[dst] = p
	r.mu.Unlock()
	return nil
}

// SetDefaultRoute installs the default next hop.
func (r *Router) SetDefaultRoute(via string) error {
	to, err := net.ResolveUDPAddr("udp", via)
	if err != nil {
		return fmt.Errorf("overlay: default via %q: %w", via, err)
	}
	p := r.portFor(to)
	r.mu.Lock()
	r.def = p
	r.mu.Unlock()
	return nil
}

// Core exposes the router's protocol engine (for diagnostics
// endpoints; its counters are owned by the receive goroutine, so reads
// are approximate while traffic flows).
func (r *Router) Core() *core.Router { return r.core }

// SchedDrops sums per-reason drop counts across all port schedulers.
func (r *Router) SchedDrops() telemetry.DropCounters {
	var total telemetry.DropCounters
	r.mu.Lock()
	ports := make([]*port, 0, len(r.ports))
	for _, p := range r.ports {
		ports = append(ports, p)
	}
	r.mu.Unlock()
	for _, p := range ports {
		p.mu.Lock()
		if rc, ok := p.q.(sched.ReasonCounter); ok {
			total.Merge(rc.DropReasons())
		}
		p.mu.Unlock()
	}
	return total
}

// PortGauges is one neighbour link's scheduler occupancy snapshot.
type PortGauges struct {
	Neighbor      string
	RequestPkts   int
	RegularPkts   int
	LegacyPkts    int
	RegularQueues int
	TokenBytes    float64
	Sent, Dropped uint64
}

// Gauges snapshots every port's scheduler occupancy, sorted by
// neighbour address for stable output. Diagnostics only — it takes
// each port's lock briefly.
func (r *Router) Gauges() []PortGauges {
	now := r.clock.Now()
	r.mu.Lock()
	keys := make([]string, 0, len(r.ports))
	for k := range r.ports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ports := make([]*port, len(keys))
	for i, k := range keys {
		ports[i] = r.ports[k]
	}
	r.mu.Unlock()

	out := make([]PortGauges, len(ports))
	for i, p := range ports {
		p.mu.Lock()
		g := PortGauges{Neighbor: keys[i], Sent: p.Sent.Load(), Dropped: p.Dropped.Load()}
		if tva, ok := p.q.(*sched.TVA); ok {
			g.RequestPkts = tva.RequestBacklog()
			g.RegularPkts = tva.RegularBacklog()
			g.LegacyPkts = tva.LegacyBacklog()
			g.RegularQueues = tva.RegularQueues()
			g.TokenBytes = tva.TokenLevel(now)
		} else {
			g.RegularPkts = p.q.Len()
		}
		p.mu.Unlock()
		out[i] = g
	}
	return out
}

func (r *Router) route(dst packet.Addr) *port {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.routes[dst]; ok {
		return p
	}
	return r.def
}

// Close shuts the router down and waits for its goroutines.
func (r *Router) Close() error {
	select {
	case <-r.closed:
		return nil
	default:
	}
	close(r.closed)
	err := r.conn.Close()
	r.mu.Lock()
	for _, p := range r.ports {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	r.mu.Unlock()
	r.wg.Wait()
	if r.shards != nil {
		// After wg.Wait the receive goroutine is gone, so no more jobs
		// can be scattered; the workers can drain and exit.
		r.shards.close()
	}
	return err
}

// receiveLoop is the single goroutine that owns capability state.
func (r *Router) receiveLoop() {
	defer r.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		r.Received.Add(1)
		pkt := packet.AcquirePacket()
		if err := pkt.UnmarshalReuse(buf[:n]); err != nil {
			r.Malformed.Add(1)
			packet.Release(pkt)
			continue
		}
		if pkt.TTL == 0 {
			packet.Release(pkt)
			continue
		}
		pkt.TTL--
		if r.cfg.Spans != nil {
			// Fresh ID per router: trace IDs are in-memory only, never
			// on the wire, so each router contributes its own per-hop
			// span fragment to the shared recorder.
			pkt.TraceID = r.cfg.Spans.NextID()
		}
		// Interface index 0: the overlay's single socket is one
		// ingress; deployments with multiple trust boundaries run one
		// router process per boundary.
		r.coreMu.Lock()
		r.core.Process(pkt, 0, r.clock.Now())
		r.coreMu.Unlock()
		out := r.route(pkt.Dst)
		if out == nil {
			r.Unroutable.Add(1)
			packet.Release(pkt)
			continue
		}
		r.Forwarded.Add(1)
		out.enqueue(pkt, r.clock.Now())
	}
}

// receiveLoopBatched is the burst form of receiveLoop: one recvmmsg
// fills a burst, one ProcessBatch (or a shard scatter) classifies it,
// and packets leave toward their ports in arrival order with one
// scheduler crossing per same-port run.
func (r *Router) receiveLoopBatched() {
	defer r.wg.Done()
	run := packet.NewBatch(r.cfg.Batch) // same-port run scratch
	for {
		n, err := r.rx.recvBatch()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		b := packet.AcquireBatch()
		for i := 0; i < n; i++ {
			r.Received.Add(1)
			pkt := packet.AcquirePacket()
			if err := pkt.UnmarshalReuse(r.rx.buf(i)); err != nil {
				r.Malformed.Add(1)
				packet.Release(pkt)
				continue
			}
			if pkt.TTL == 0 {
				packet.Release(pkt)
				continue
			}
			pkt.TTL--
			if r.cfg.Spans != nil {
				pkt.TraceID = r.cfg.Spans.NextID()
			}
			b.Append(pkt)
		}
		if b.Len() == 0 {
			packet.ReleaseBatch(b)
			continue
		}
		r.RxBursts.Add(1)
		r.RxBurstPkts.Add(uint64(b.Len()))
		now := r.clock.Now()
		if r.shards != nil {
			r.shards.process(b, now)
		} else {
			r.coreMu.Lock()
			r.core.ProcessBatch(b, 0, now)
			r.coreMu.Unlock()
		}
		// Forward in arrival order, flushing maximal same-port runs so
		// each run costs one port lock and one scheduler batch call.
		var cur *port
		for i, pkt := range b.Pkts() {
			if pkt == nil {
				continue
			}
			out := r.route(pkt.Dst)
			if out == nil {
				r.Unroutable.Add(1)
				packet.Release(b.Take(i))
				continue
			}
			r.Forwarded.Add(1)
			if out != cur {
				if cur != nil && run.Len() > 0 {
					cur.enqueueBatch(run, now)
				}
				cur = out
			}
			run.Append(b.Take(i))
		}
		if cur != nil && run.Len() > 0 {
			cur.enqueueBatch(run, now)
		}
		packet.ReleaseBatch(b)
	}
}

func (p *port) enqueue(pkt *packet.Packet, now tvatime.Time) {
	pkt.EnqueuedAt = now
	p.span(pkt, trace.EdgeEnqueue, now)
	p.mu.Lock()
	if !p.q.Enqueue(pkt, now) {
		p.Dropped.Add(1)
		p.mu.Unlock()
		packet.Release(pkt)
		return
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// enqueueBatch admits one same-port run under a single lock
// acquisition: one BatchScheduler crossing when the port's scheduler
// supports it, a tight per-packet loop otherwise. The run batch is
// consumed (reset) either way.
func (p *port) enqueueBatch(b *packet.Batch, now tvatime.Time) {
	for _, pkt := range b.Pkts() {
		if pkt != nil {
			pkt.EnqueuedAt = now
			p.span(pkt, trace.EdgeEnqueue, now)
		}
	}
	p.mu.Lock()
	if bs, ok := p.q.(sched.BatchScheduler); ok {
		dropped := 0
		accepted := bs.EnqueueBatch(b, now, func(pkt *packet.Packet) {
			dropped++
			packet.Release(pkt)
		})
		p.Dropped.Add(uint64(dropped))
		if accepted > 0 {
			p.cond.Signal()
		}
		p.mu.Unlock()
		return
	}
	accepted := 0
	for i, pkt := range b.Pkts() {
		if pkt == nil {
			continue
		}
		if p.q.Enqueue(pkt, now) {
			accepted++
		} else {
			p.Dropped.Add(1)
			packet.Release(pkt)
		}
		b.Take(i)
	}
	if accepted > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
	b.Reset()
}

// portLoopBatched drains one neighbour's scheduler a burst at a time:
// one DequeueBatch under the lock, then marshal and one sendmmsg off
// it, with pacing applied to the burst's total wire bytes.
func (r *Router) portLoopBatched(p *port, bs sched.BatchScheduler, tx *batchConn) {
	defer r.wg.Done()
	burst := r.cfg.Batch
	pkts := make([]*packet.Packet, burst)
	out := make([][]byte, 0, burst)
	txs := make([]trace.Span, 0, burst)
	backing := make([][]byte, burst)
	for i := range backing {
		backing[i] = make([]byte, 0, 2048)
	}
	for {
		p.mu.Lock()
		var n int
		for {
			select {
			case <-r.closed:
				p.mu.Unlock()
				return
			default:
			}
			var retry tvatime.Time
			n, retry = bs.DequeueBatch(pkts, r.clock.Now())
			if n > 0 {
				break
			}
			if retry > 0 {
				d := time.Duration(retry - r.clock.Now())
				if d < time.Millisecond {
					d = time.Millisecond
				}
				timer := time.AfterFunc(d, func() {
					p.mu.Lock()
					p.cond.Broadcast()
					p.mu.Unlock()
				})
				p.cond.Wait()
				timer.Stop()
				continue
			}
			p.cond.Wait()
		}
		p.mu.Unlock()

		now := r.clock.Now()
		out = out[:0]
		txs = txs[:0]
		wireBytes := 0
		for i := 0; i < n; i++ {
			pkt := pkts[i]
			pkts[i] = nil
			if pkt.EnqueuedAt > 0 {
				if w := now.Sub(pkt.EnqueuedAt); w >= 0 {
					r.observeWait(p, w)
				}
			}
			p.span(pkt, trace.EdgeDequeue, now)
			if p.spans != nil && pkt.TraceID != 0 {
				txs = append(txs, trace.Span{
					ID: pkt.TraceID, Src: uint32(pkt.Src), Dst: uint32(pkt.Dst),
					Size: uint32(pkt.Size), Hop: p.hop,
					Edge: trace.EdgeTx, Class: uint8(pkt.Class),
				})
			}
			data, err := pkt.Marshal(backing[i][:0])
			packet.Release(pkt)
			if err != nil {
				continue
			}
			backing[i] = data[:0]
			out = append(out, data)
			wireBytes += len(data)
		}
		if len(out) > 0 {
			sent, _ := tx.sendBatch(out, p.to)
			p.Sent.Add(uint64(sent))
			p.TxBursts.Add(1)
			p.TxBurstPkts.Add(uint64(len(out)))
			if p.spans != nil && len(txs) > 0 {
				done := r.clock.Now()
				for i := range txs {
					txs[i].Time = done
					p.spans.Record(txs[i])
				}
			}
		}
		p.pace(r.clock, wireBytes)
	}
}

// portLoop drains one neighbour's scheduler, pacing at the link rate.
func (r *Router) portLoop(p *port) {
	defer r.wg.Done()
	buf := make([]byte, 0, maxDatagram)
	for {
		p.mu.Lock()
		var pkt *packet.Packet
		for {
			select {
			case <-r.closed:
				p.mu.Unlock()
				return
			default:
			}
			var retry tvatime.Time
			pkt, retry = p.q.Dequeue(r.clock.Now())
			if pkt != nil {
				break
			}
			if retry > 0 {
				// Rate-limited backlog: wake up when tokens accrue.
				d := time.Duration(retry - r.clock.Now())
				if d < time.Millisecond {
					d = time.Millisecond
				}
				timer := time.AfterFunc(d, func() {
					p.mu.Lock()
					p.cond.Broadcast()
					p.mu.Unlock()
				})
				p.cond.Wait()
				timer.Stop()
				continue
			}
			p.cond.Wait()
		}
		p.mu.Unlock()

		now := r.clock.Now()
		if pkt.EnqueuedAt > 0 {
			if w := now.Sub(pkt.EnqueuedAt); w >= 0 {
				r.observeWait(p, w)
			}
		}
		p.span(pkt, trace.EdgeDequeue, now)
		wantTx := p.spans != nil && pkt.TraceID != 0
		var txSpan trace.Span
		if wantTx {
			txSpan = trace.Span{
				ID: pkt.TraceID, Src: uint32(pkt.Src), Dst: uint32(pkt.Dst),
				Size: uint32(pkt.Size), Hop: p.hop,
				Edge: trace.EdgeTx, Class: uint8(pkt.Class),
			}
		}
		data, err := pkt.Marshal(buf[:0])
		packet.Release(pkt)
		if err != nil {
			continue
		}
		buf = data[:0]
		if _, err := r.conn.WriteToUDP(data, p.to); err == nil {
			p.Sent.Add(1)
			if wantTx {
				txSpan.Time = r.clock.Now()
				p.spans.Record(txSpan)
			}
		}
		p.pace(r.clock, len(data))
	}
}
