// Package overlay is the userspace deployment of TVA (paper §6 and
// §8): capability routers and host proxies running as ordinary
// processes over UDP, the "inline packet processing box" form of
// incremental deployment. A Router forwards TVA packets between
// UDP-addressed neighbours, running the same core.Router processing
// and Fig. 2 link scheduling as the simulator; a Host offers a
// capability-protected datagram service to applications.
//
// Concurrency model: one goroutine owns all protocol state (core is
// single-threaded by design); per-neighbour output goroutines pace
// transmissions at the configured link rate through the shared
// scheduler under a lock. This mirrors a router's line-card queues.
package overlay

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tva/internal/core"
	"tva/internal/packet"
	"tva/internal/sched"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// maxDatagram is the receive buffer size (payloads are bounded well
// below this).
const maxDatagram = 64 * 1024

// RouterConfig configures an overlay router.
type RouterConfig struct {
	// Listen is the UDP address to bind (e.g. "127.0.0.1:7000").
	Listen string
	// Core configures capability processing (suite, cache, trust
	// boundary). Zero value gives crypto hashing and defaults.
	Core core.RouterConfig
	// LinkBps paces each neighbour link; 0 means unpaced (as fast as
	// the socket allows).
	LinkBps int64
	// RequestFraction is the request-channel share (default 5%).
	RequestFraction float64
}

// Router is a userspace TVA capability router.
type Router struct {
	conn  *net.UDPConn
	core  *core.Router
	clock tvatime.Clock
	cfg   RouterConfig

	mu     sync.Mutex
	routes map[packet.Addr]*port
	ports  map[string]*port // keyed by neighbour UDP address
	def    *port

	closed  chan struct{}
	wg      sync.WaitGroup
	started time.Time

	// waitEWMA is the router-wide EWMA of output-queue wait in
	// microseconds, updated by the port goroutines and read (via
	// core.Router.HopWait) when stamping hop reports into requests.
	waitEWMA atomic.Uint32

	// Stats (owned by the receive goroutine).
	Received, Forwarded, Unroutable, Malformed uint64
}

// port is one neighbour link: an output scheduler paced at the link
// rate by its own goroutine.
type port struct {
	to   *net.UDPAddr
	bps  int64
	mu   sync.Mutex
	cond *sync.Cond
	q    sched.Scheduler

	Sent, Dropped uint64
}

// NewRouter binds the router's socket and starts its receive loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("overlay: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen: %w", err)
	}
	if cfg.RequestFraction <= 0 {
		cfg.RequestFraction = 0.05
	}
	r := &Router{
		conn:    conn,
		core:    core.NewRouter(cfg.Core),
		clock:   tvatime.WallClock{},
		cfg:     cfg,
		routes:  make(map[packet.Addr]*port),
		ports:   make(map[string]*port),
		closed:  make(chan struct{}),
		started: time.Now(),
	}
	// Hop-wait attribution: requests that opt in (WantHops) get stamped
	// with this router's current queue-wait estimate, which travels back
	// to the sender in return information (tvaping shows it per hop).
	r.core.HopWait = r.waitEWMA.Load
	r.wg.Add(1)
	go r.receiveLoop()
	return r, nil
}

// QueueWaitMicros returns the router's EWMA output-queue wait in
// microseconds (the value stamped into hop reports).
func (r *Router) QueueWaitMicros() uint32 { return r.waitEWMA.Load() }

// observeWait folds one packet's measured queue wait into the EWMA
// (gain 1/8, matching TCP's RTT smoothing).
func (r *Router) observeWait(d time.Duration) {
	us := uint32(d / time.Microsecond)
	for {
		old := r.waitEWMA.Load()
		next := old - old/8 + us/8
		if old == 0 {
			next = us
		}
		if r.waitEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// Addr returns the bound UDP address.
func (r *Router) Addr() *net.UDPAddr { return r.conn.LocalAddr().(*net.UDPAddr) }

// linkSched builds the Fig. 2 scheduler for one neighbour.
func (r *Router) linkSched() sched.Scheduler {
	bps := r.cfg.LinkBps
	if bps <= 0 {
		bps = 1_000_000_000 // effectively unpaced; still classful
	}
	return sched.NewTVA(sched.TVAConfig{
		LinkBps:         bps,
		RequestFraction: r.cfg.RequestFraction,
	})
}

// portFor returns (creating if needed) the port toward a neighbour.
func (r *Router) portFor(to *net.UDPAddr) *port {
	key := to.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.ports[key]; ok {
		return p
	}
	p := &port{to: to, bps: r.cfg.LinkBps, q: r.linkSched()}
	p.cond = sync.NewCond(&p.mu)
	r.ports[key] = p
	r.wg.Add(1)
	go r.portLoop(p)
	return p
}

// AddRoute installs a route: packets for dst leave toward the
// neighbour at via.
func (r *Router) AddRoute(dst packet.Addr, via string) error {
	to, err := net.ResolveUDPAddr("udp", via)
	if err != nil {
		return fmt.Errorf("overlay: route via %q: %w", via, err)
	}
	p := r.portFor(to)
	r.mu.Lock()
	r.routes[dst] = p
	r.mu.Unlock()
	return nil
}

// SetDefaultRoute installs the default next hop.
func (r *Router) SetDefaultRoute(via string) error {
	to, err := net.ResolveUDPAddr("udp", via)
	if err != nil {
		return fmt.Errorf("overlay: default via %q: %w", via, err)
	}
	p := r.portFor(to)
	r.mu.Lock()
	r.def = p
	r.mu.Unlock()
	return nil
}

// Core exposes the router's protocol engine (for diagnostics
// endpoints; its counters are owned by the receive goroutine, so reads
// are approximate while traffic flows).
func (r *Router) Core() *core.Router { return r.core }

// SchedDrops sums per-reason drop counts across all port schedulers.
func (r *Router) SchedDrops() telemetry.DropCounters {
	var total telemetry.DropCounters
	r.mu.Lock()
	ports := make([]*port, 0, len(r.ports))
	for _, p := range r.ports {
		ports = append(ports, p)
	}
	r.mu.Unlock()
	for _, p := range ports {
		p.mu.Lock()
		if rc, ok := p.q.(sched.ReasonCounter); ok {
			total.Merge(rc.DropReasons())
		}
		p.mu.Unlock()
	}
	return total
}

// PortGauges is one neighbour link's scheduler occupancy snapshot.
type PortGauges struct {
	Neighbor      string
	RequestPkts   int
	RegularPkts   int
	LegacyPkts    int
	RegularQueues int
	TokenBytes    float64
	Sent, Dropped uint64
}

// Gauges snapshots every port's scheduler occupancy, sorted by
// neighbour address for stable output. Diagnostics only — it takes
// each port's lock briefly.
func (r *Router) Gauges() []PortGauges {
	now := r.clock.Now()
	r.mu.Lock()
	keys := make([]string, 0, len(r.ports))
	for k := range r.ports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ports := make([]*port, len(keys))
	for i, k := range keys {
		ports[i] = r.ports[k]
	}
	r.mu.Unlock()

	out := make([]PortGauges, len(ports))
	for i, p := range ports {
		p.mu.Lock()
		g := PortGauges{Neighbor: keys[i], Sent: p.Sent, Dropped: p.Dropped}
		if tva, ok := p.q.(*sched.TVA); ok {
			g.RequestPkts = tva.RequestBacklog()
			g.RegularPkts = tva.RegularBacklog()
			g.LegacyPkts = tva.LegacyBacklog()
			g.RegularQueues = tva.RegularQueues()
			g.TokenBytes = tva.TokenLevel(now)
		} else {
			g.RegularPkts = p.q.Len()
		}
		p.mu.Unlock()
		out[i] = g
	}
	return out
}

func (r *Router) route(dst packet.Addr) *port {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.routes[dst]; ok {
		return p
	}
	return r.def
}

// Close shuts the router down and waits for its goroutines.
func (r *Router) Close() error {
	select {
	case <-r.closed:
		return nil
	default:
	}
	close(r.closed)
	err := r.conn.Close()
	r.mu.Lock()
	for _, p := range r.ports {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	r.mu.Unlock()
	r.wg.Wait()
	return err
}

// receiveLoop is the single goroutine that owns capability state.
func (r *Router) receiveLoop() {
	defer r.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		r.Received++
		pkt := packet.AcquirePacket()
		if err := pkt.UnmarshalReuse(buf[:n]); err != nil {
			r.Malformed++
			packet.Release(pkt)
			continue
		}
		if pkt.TTL == 0 {
			packet.Release(pkt)
			continue
		}
		pkt.TTL--
		// Interface index 0: the overlay's single socket is one
		// ingress; deployments with multiple trust boundaries run one
		// router process per boundary.
		r.core.Process(pkt, 0, r.clock.Now())
		out := r.route(pkt.Dst)
		if out == nil {
			r.Unroutable++
			packet.Release(pkt)
			continue
		}
		r.Forwarded++
		out.enqueue(pkt, r.clock.Now())
	}
}

func (p *port) enqueue(pkt *packet.Packet, now tvatime.Time) {
	pkt.EnqueuedAt = now
	p.mu.Lock()
	if !p.q.Enqueue(pkt, now) {
		p.Dropped++
		p.mu.Unlock()
		packet.Release(pkt)
		return
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// portLoop drains one neighbour's scheduler, pacing at the link rate.
func (r *Router) portLoop(p *port) {
	defer r.wg.Done()
	buf := make([]byte, 0, maxDatagram)
	for {
		p.mu.Lock()
		var pkt *packet.Packet
		for {
			select {
			case <-r.closed:
				p.mu.Unlock()
				return
			default:
			}
			var retry tvatime.Time
			pkt, retry = p.q.Dequeue(r.clock.Now())
			if pkt != nil {
				break
			}
			if retry > 0 {
				// Rate-limited backlog: wake up when tokens accrue.
				d := time.Duration(retry - r.clock.Now())
				if d < time.Millisecond {
					d = time.Millisecond
				}
				timer := time.AfterFunc(d, func() {
					p.mu.Lock()
					p.cond.Broadcast()
					p.mu.Unlock()
				})
				p.cond.Wait()
				timer.Stop()
				continue
			}
			p.cond.Wait()
		}
		p.mu.Unlock()

		if pkt.EnqueuedAt > 0 {
			if w := r.clock.Now().Sub(pkt.EnqueuedAt); w >= 0 {
				r.observeWait(w)
			}
		}
		data, err := pkt.Marshal(buf[:0])
		packet.Release(pkt)
		if err != nil {
			continue
		}
		buf = data[:0]
		if _, err := r.conn.WriteToUDP(data, p.to); err == nil {
			p.Sent++
		}
		if p.bps > 0 {
			time.Sleep(time.Duration(int64(len(data)) * 8 * int64(time.Second) / p.bps))
		}
	}
}
