package overlay

import (
	"testing"

	"tva/internal/capability"
	"tva/internal/tvatime"
)

// TestBenchMetricsNoAllocs is the runtime proof behind the bench
// guard's promise: forwarding a packet with the streaming instruments
// attached — counter, sketch, and a periodic registry Tick — does not
// allocate. The static twin is the //tva:hotpath annotation on
// BenchMetrics.Observe, checked by the lint fixture.
func TestBenchMetricsNoAllocs(t *testing.T) {
	w := NewWorkload(KindRegularWithEntry, capability.Fast)
	m := NewBenchMetrics(w)
	now := tvatime.WallClock{}.Now()
	// Warm the path: any lazy growth (marshal buffer, cache churn)
	// settles before counting, same as the steady-state bench loops.
	for i := 0; i < 4096; i++ {
		w.ForwardOneObserved(now, m)
	}
	m.Tick()

	if allocs := testing.AllocsPerRun(2000, func() {
		w.ForwardOneObserved(now, m)
	}); allocs != 0 {
		t.Errorf("ForwardOneObserved allocates %.1f per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		m.Tick()
	}); allocs != 0 {
		t.Errorf("BenchMetrics.Tick allocates %.1f per op, want 0", allocs)
	}
	if got := m.forwarded.Value(); got == 0 {
		t.Fatal("instruments recorded nothing")
	}
	if m.wire.Count() != m.forwarded.Value() {
		t.Errorf("sketch count %d != forwarded %d", m.wire.Count(), m.forwarded.Value())
	}
}
