//go:build linux && amd64

// recvmmsg/sendmmsg batched datagram I/O: one syscall moves a whole
// burst between the socket and the forwarding path. Raw syscall
// numbers are used (x/net is unavailable here); the build tag pins the
// ABI this file assumes, and mmsg_fallback.go serves everything else
// with per-datagram reads.
package overlay

import (
	"net"
	"os"
	"syscall"
	"unsafe"
)

const (
	sysRecvmmsg = 299 // linux/amd64
	sysSendmmsg = 307 // linux/amd64

	// batchIOSupported reports whether recvBatch can return more than
	// one datagram per call on this platform.
	batchIOSupported = true
)

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// received length. syscall.Msghdr is 56 bytes on linux/amd64, so the
// trailing pad keeps 8-byte stride alignment across the array.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   uint32
}

// batchConn owns the scatter-gather state for bursts on one UDP
// socket: fixed header/iovec arrays sized at the batch cap, reused for
// every call so the steady state allocates nothing.
type batchConn struct {
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec
	bufs [][]byte
}

// newBatchConn prepares burst I/O of up to n datagrams of maxDatagram
// bytes each on conn.
func newBatchConn(conn *net.UDPConn, n int) (*batchConn, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &batchConn{
		rc:   rc,
		hdrs: make([]mmsghdr, n),
		iovs: make([]syscall.Iovec, n),
		bufs: make([][]byte, n),
	}
	for i := range b.bufs {
		b.bufs[i] = make([]byte, maxDatagram)
	}
	return b, nil
}

// recvBatch blocks until at least one datagram is readable, then
// drains as many as are ready (up to the batch cap) with one recvmmsg.
// It returns the count; buf(i)/size(i) address the i-th payload.
func (b *batchConn) recvBatch() (int, error) {
	for i := range b.hdrs {
		b.iovs[i] = syscall.Iovec{Base: &b.bufs[i][0], Len: uint64(len(b.bufs[i]))}
		b.hdrs[i].hdr = syscall.Msghdr{Iov: &b.iovs[i], Iovlen: 1}
		b.hdrs[i].len = 0
	}
	var (
		n    int
		serr error
	)
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(len(b.hdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN {
			return false // netpoller waits for readability, then retries
		}
		if errno != 0 {
			serr = os.NewSyscallError("recvmmsg", errno)
			return true
		}
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, serr
}

// buf returns the i-th received payload after recvBatch.
func (b *batchConn) buf(i int) []byte { return b.bufs[i][:b.hdrs[i].len] }

// sockaddrFor builds the raw sockaddr bytes for a UDP destination.
func sockaddrFor(to *net.UDPAddr) ([]byte, uint32, error) {
	if ip4 := to.IP.To4(); ip4 != nil {
		var sa syscall.RawSockaddrInet4
		sa.Family = syscall.AF_INET
		sa.Port = uint16(to.Port>>8) | uint16(to.Port&0xff)<<8 // network byte order
		copy(sa.Addr[:], ip4)
		raw := make([]byte, syscall.SizeofSockaddrInet4)
		copy(raw, (*(*[syscall.SizeofSockaddrInet4]byte)(unsafe.Pointer(&sa)))[:])
		return raw, syscall.SizeofSockaddrInet4, nil
	}
	var sa syscall.RawSockaddrInet6
	sa.Family = syscall.AF_INET6
	sa.Port = uint16(to.Port>>8) | uint16(to.Port&0xff)<<8
	copy(sa.Addr[:], to.IP.To16())
	raw := make([]byte, syscall.SizeofSockaddrInet6)
	copy(raw, (*(*[syscall.SizeofSockaddrInet6]byte)(unsafe.Pointer(&sa)))[:])
	return raw, syscall.SizeofSockaddrInet6, nil
}

// sendBatch transmits pkts to one destination with as few sendmmsg
// calls as possible (normally one). All packets of a port burst share
// the next hop, so a single sockaddr serves every header. It returns
// how many datagrams were handed to the kernel.
func (b *batchConn) sendBatch(pkts [][]byte, to *net.UDPAddr) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	raw, rawLen, err := sockaddrFor(to)
	if err != nil {
		return 0, err
	}
	name := &raw[0]
	n := len(pkts)
	if n > len(b.hdrs) {
		n = len(b.hdrs)
	}
	for i := 0; i < n; i++ {
		b.iovs[i] = syscall.Iovec{Base: &pkts[i][0], Len: uint64(len(pkts[i]))}
		b.hdrs[i].hdr = syscall.Msghdr{
			Name:    name,
			Namelen: rawLen,
			Iov:     &b.iovs[i],
			Iovlen:  1,
		}
		b.hdrs[i].len = 0
	}
	sent := 0
	var serr error
	err = b.rc.Write(func(fd uintptr) bool {
		for sent < n {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.hdrs[sent])), uintptr(n-sent),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for writability, resume where we left off
			}
			if errno != 0 {
				serr = os.NewSyscallError("sendmmsg", errno)
				return true
			}
			sent += int(r1)
		}
		return true
	})
	if err != nil {
		return sent, err
	}
	return sent, serr
}
