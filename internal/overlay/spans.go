// SpanSink: packet-lifecycle tracing for the concurrent overlay.
// trace.Recorder is deliberately unsynchronized (the discrete-event
// simulator is single-goroutine and its per-call Seq counter is what
// makes same-seed dumps byte-identical); the overlay's receive and
// port goroutines record concurrently, so they go through this
// mutex-serialized sink instead. One sink can be shared by every
// router of an in-process topology, producing a single causally
// ordered recorder for the whole deployment.
package overlay

import (
	"sync"

	"tva/internal/trace"
)

// SpanSink serializes span recording from concurrent overlay
// goroutines into one trace.Recorder.
type SpanSink struct {
	mu  sync.Mutex
	rec *trace.Recorder
}

// NewSpanSink wraps rec. capacity <= 0 on the recorder side follows
// trace.NewRecorder's defaulting; the sink itself holds no spans.
func NewSpanSink(rec *trace.Recorder) *SpanSink {
	return &SpanSink{rec: rec}
}

// NextID issues the next monotonic trace ID.
func (s *SpanSink) NextID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.NextID()
}

// Record appends one span.
func (s *SpanSink) Record(sp trace.Span) {
	s.mu.Lock()
	s.rec.Record(sp)
	s.mu.Unlock()
}

// RegisterHop interns a hop name and returns its span Hop id.
func (s *SpanSink) RegisterHop(name string) uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.RegisterHop(name)
}

// HopName resolves a hop id to its registered name, serialized against
// concurrent registration.
func (s *SpanSink) HopName(h uint16) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.HopName(h)
}

// Recorder returns the underlying recorder. Safe to read (Snapshot,
// HopName) once the routers feeding the sink have been closed; while
// they run, reads race recording and must go through the sink's
// methods instead.
func (s *SpanSink) Recorder() *trace.Recorder { return s.rec }

// Snapshot returns the retained spans in causal order, serialized
// against concurrent recording (usable while routers are live).
func (s *SpanSink) Snapshot() []trace.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Snapshot()
}
