package overlay

import (
	"fmt"
	"net"
	"testing"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// TestBatchConnRoundTrip drives the raw burst I/O layer: a burst of
// datagrams sent with sendBatch must all arrive, in order, through
// recvBatch (possibly split across calls — recvmmsg returns what is
// ready, and the fallback returns one per call).
func TestBatchConnRoundTrip(t *testing.T) {
	mk := func() (*net.UDPConn, *batchConn) {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		bc, err := newBatchConn(conn, 8)
		if err != nil {
			t.Fatal(err)
		}
		return conn, bc
	}
	aConn, a := mk()
	bConn, b := mk()
	_ = aConn

	const total = 5
	pkts := make([][]byte, total)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("datagram-%d", i))
	}
	sent, err := a.sendBatch(pkts, bConn.LocalAddr().(*net.UDPAddr))
	if err != nil || sent != total {
		t.Fatalf("sendBatch sent %d, err %v", sent, err)
	}

	bConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := 0
	for got < total {
		n, err := b.recvBatch()
		if err != nil {
			t.Fatalf("recvBatch after %d: %v", got, err)
		}
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("datagram-%d", got)
			if string(b.buf(i)) != want {
				t.Fatalf("datagram %d = %q, want %q", got, b.buf(i), want)
			}
			got++
		}
	}
}

// batchNet is testNet with the batched data path and shard workers on.
func batchNet(t *testing.T, batch, shards int) (*Router, *Host, *Host) {
	t.Helper()
	r, err := NewRouter(RouterConfig{
		Listen: "127.0.0.1:0",
		Core:   core.RouterConfig{Suite: capability.Crypto, TrustBoundary: true},
		Batch:  batch,
		Shards: shards,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	mkHost := func(addr packet.Addr, policy core.Policy) *Host {
		h, err := NewHost(HostConfig{
			Addr:    addr,
			Listen:  "127.0.0.1:0",
			Gateway: r.Addr().String(),
			Policy:  policy,
			Shim:    core.ShimConfig{Suite: capability.Crypto, AutoReturn: true},
		})
		if err != nil {
			t.Fatalf("host: %v", err)
		}
		t.Cleanup(func() { h.Close() })
		if err := r.AddRoute(addr, h.UDPAddr().String()); err != nil {
			t.Fatalf("route: %v", err)
		}
		return h
	}
	alice := mkHost(packet.AddrFrom(10, 0, 0, 1), core.NewClientPolicy())
	bob := mkHost(packet.AddrFrom(10, 0, 0, 2), core.NewServerPolicy())
	return r, alice, bob
}

// TestOverlayBatchedHandshake runs the full capability handshake and
// protected transfer through the batched+sharded data path: behavior
// must match the per-datagram router exactly.
func TestOverlayBatchedHandshake(t *testing.T) {
	r, alice, bob := batchNet(t, 8, 2)

	if err := alice.Send(bob.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg := recvWithin(t, bob, 2*time.Second)
	if string(msg.Payload) != "hello" || msg.Src != alice.Addr() {
		t.Fatalf("got %+v", msg)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !alice.HasCaps(bob.Addr()) {
		if time.Now().After(deadline) {
			t.Fatal("alice never obtained capabilities")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		if err := alice.Send(bob.Addr(), []byte("again")); err != nil {
			t.Fatal(err)
		}
		msg = recvWithin(t, bob, 2*time.Second)
		if string(msg.Payload) != "again" {
			t.Fatalf("message %d corrupted: %q", i, msg.Payload)
		}
	}
	r.Close()
	if r.Received.Load() == 0 || r.Forwarded.Load() == 0 {
		t.Errorf("router stats empty: recv=%d fwd=%d", r.Received.Load(), r.Forwarded.Load())
	}
	if r.RxBursts.Load() == 0 || r.RxBurstPkts.Load() < r.RxBursts.Load() {
		t.Errorf("burst accounting wrong: bursts=%d pkts=%d", r.RxBursts.Load(), r.RxBurstPkts.Load())
	}
	if st := r.CoreStats(); st.Requests == 0 {
		t.Errorf("sharded stats saw no requests: %+v", st)
	}
}

// TestOverlayBatchedRefused mirrors TestOverlayRefusedSenderDemoted on
// the batched path: policy outcomes must not change with batching.
func TestOverlayBatchedRefused(t *testing.T) {
	r, err := NewRouter(RouterConfig{
		Listen: "127.0.0.1:0",
		Core:   core.RouterConfig{Suite: capability.Crypto, TrustBoundary: true},
		Batch:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	mkHost := func(addr packet.Addr, policy core.Policy) *Host {
		h, err := NewHost(HostConfig{
			Addr: addr, Listen: "127.0.0.1:0", Gateway: r.Addr().String(),
			Policy: policy, Shim: core.ShimConfig{Suite: capability.Crypto, AutoReturn: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		if err := r.AddRoute(addr, h.UDPAddr().String()); err != nil {
			t.Fatal(err)
		}
		return h
	}
	alice := mkHost(packet.AddrFrom(10, 0, 0, 1), core.NewClientPolicy())
	bob := mkHost(packet.AddrFrom(10, 0, 0, 2), core.RefuseAllPolicy{})
	for i := 0; i < 3; i++ {
		if err := alice.Send(bob.Addr(), []byte("knock")); err != nil {
			t.Fatal(err)
		}
		recvWithin(t, bob, 2*time.Second)
	}
	if alice.HasCaps(bob.Addr()) {
		t.Error("refused sender believes it is authorized")
	}
}

// shardWorkload builds a deterministic stream of mixed packets (fresh
// requests and capability-carrying regular packets across many flows)
// for the shard equivalence tests.
func shardWorkload(auth *capability.Authority, n int, now tvatime.Time) []*packet.Packet {
	pkts := make([]*packet.Packet, n)
	dst := packet.Addr(1)
	for i := range pkts {
		src := packet.Addr(1000 + i%97)
		if i%3 == 0 {
			h := &packet.CapHdr{Kind: packet.KindRequest, Proto: packet.ProtoRaw}
			pkts[i] = &packet.Packet{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
				Hdr: h, Size: packet.OuterHdrLen + h.WireSize()}
			continue
		}
		pre := auth.PreCap(src, dst, now)
		cap := capability.Fast.MakeCap(pre, packet.MaxNKB, packet.MaxTSeconds)
		h := &packet.CapHdr{Kind: packet.KindRegular, Proto: packet.ProtoRaw,
			Nonce: (uint64(i)*2654435761 + 1) & packet.NonceMask, NKB: packet.MaxNKB, TSec: packet.MaxTSeconds,
			Caps: []uint64{cap}}
		pkts[i] = &packet.Packet{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoRaw,
			Hdr: h, Size: packet.OuterHdrLen + h.WireSize()}
	}
	return pkts
}

// runSharded pushes the workload through a shard engine in bursts of
// burstLen and returns the class sequence.
func runSharded(t *testing.T, shards int, pkts []*packet.Packet, now tvatime.Time, auth *capability.Authority) []packet.Class {
	t.Helper()
	base := core.RouterConfig{Suite: capability.Fast, Authority: auth}
	e := newShardEngine(shards, func() *core.Router { return core.NewRouter(base) })
	defer e.close()
	classes := make([]packet.Class, 0, len(pkts))
	const burstLen = 16
	b := packet.NewBatch(burstLen)
	for i := 0; i < len(pkts); i += burstLen {
		end := i + burstLen
		if end > len(pkts) {
			end = len(pkts)
		}
		for _, p := range pkts[i:end] {
			c := *p
			h := *p.Hdr
			c.Hdr = &h
			b.Append(&c)
		}
		e.process(b, now)
		for j := 0; j < b.Len(); j++ {
			classes = append(classes, b.Class(j))
		}
		b.Reset()
	}
	return classes
}

// TestShardedProcessEquivalence checks the scatter/gather engine
// classifies exactly as one unsharded router would (caches are
// per-shard but flows hash wholly onto one shard, so no flow observes
// a difference), and that the sharded run is deterministic.
func TestShardedProcessEquivalence(t *testing.T) {
	suite := capability.Fast
	auth := capability.NewAuthority(suite, 0)
	now := tvatime.FromSeconds(1)
	pkts := shardWorkload(auth, 400, now)

	single := core.NewRouter(core.RouterConfig{Suite: suite, Authority: auth})
	want := make([]packet.Class, len(pkts))
	for i, p := range pkts {
		c := *p
		h := *p.Hdr
		c.Hdr = &h
		want[i] = single.Process(&c, 0, now)
	}

	got := runSharded(t, 4, pkts, now, auth)
	again := runSharded(t, 4, pkts, now, auth)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d: sharded class %v, single %v", i, got[i], want[i])
		}
		if again[i] != got[i] {
			t.Fatalf("packet %d: sharded run not deterministic: %v vs %v", i, again[i], got[i])
		}
	}
}
