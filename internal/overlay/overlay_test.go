package overlay

import (
	"testing"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// testNet builds router←→{alice, bob} on loopback and returns a
// cleanup-registered trio.
func testNet(t *testing.T, aPolicy, bPolicy core.Policy) (*Router, *Host, *Host) {
	t.Helper()
	r, err := NewRouter(RouterConfig{
		Listen: "127.0.0.1:0",
		Core:   core.RouterConfig{Suite: capability.Crypto, TrustBoundary: true},
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	mkHost := func(addr packet.Addr, policy core.Policy) *Host {
		h, err := NewHost(HostConfig{
			Addr:    addr,
			Listen:  "127.0.0.1:0",
			Gateway: r.Addr().String(),
			Policy:  policy,
			Shim:    core.ShimConfig{Suite: capability.Crypto, AutoReturn: true},
		})
		if err != nil {
			t.Fatalf("host: %v", err)
		}
		t.Cleanup(func() { h.Close() })
		if err := r.AddRoute(addr, h.UDPAddr().String()); err != nil {
			t.Fatalf("route: %v", err)
		}
		return h
	}
	alice := mkHost(packet.AddrFrom(10, 0, 0, 1), aPolicy)
	bob := mkHost(packet.AddrFrom(10, 0, 0, 2), bPolicy)
	return r, alice, bob
}

func recvWithin(t *testing.T, h *Host, d time.Duration) Message {
	t.Helper()
	select {
	case m := <-h.Inbox:
		return m
	case <-time.After(d):
		t.Fatal("timed out waiting for a message")
		return Message{}
	}
}

func TestOverlayHandshakeAndDelivery(t *testing.T) {
	_, alice, bob := testNet(t, core.NewClientPolicy(), core.NewServerPolicy())

	if err := alice.Send(bob.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg := recvWithin(t, bob, 2*time.Second)
	if string(msg.Payload) != "hello" || msg.Src != alice.Addr() {
		t.Fatalf("got %+v", msg)
	}

	// The grant should have arrived back at alice (carrier or
	// piggyback); subsequent sends are capability-protected.
	deadline := time.Now().Add(2 * time.Second)
	for !alice.HasCaps(bob.Addr()) {
		if time.Now().After(deadline) {
			t.Fatal("alice never obtained capabilities")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := alice.Send(bob.Addr(), []byte("again")); err != nil {
		t.Fatal(err)
	}
	msg = recvWithin(t, bob, 2*time.Second)
	if string(msg.Payload) != "again" {
		t.Fatalf("second message corrupted: %q", msg.Payload)
	}
	st := alice.Stats()
	if st.RequestsSent == 0 || st.GrantsReceived == 0 {
		t.Errorf("handshake stats wrong: %+v", st)
	}
}

func TestOverlayBidirectional(t *testing.T) {
	_, alice, bob := testNet(t, core.NewServerPolicy(), core.NewServerPolicy())
	if err := alice.Send(bob.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, bob, 2*time.Second)
	if err := bob.Send(alice.Addr(), []byte("pong")); err != nil {
		t.Fatal(err)
	}
	msg := recvWithin(t, alice, 2*time.Second)
	if string(msg.Payload) != "pong" {
		t.Fatalf("got %q", msg.Payload)
	}
}

func TestOverlayRefusedSenderDemoted(t *testing.T) {
	// Bob refuses everyone; alice's packets stay requests/legacy but
	// still arrive (low priority) on an idle network.
	_, alice, bob := testNet(t, core.NewClientPolicy(), core.RefuseAllPolicy{})
	for i := 0; i < 3; i++ {
		if err := alice.Send(bob.Addr(), []byte("knock")); err != nil {
			t.Fatal(err)
		}
		recvWithin(t, bob, 2*time.Second)
	}
	if alice.HasCaps(bob.Addr()) {
		t.Error("refused sender believes it is authorized")
	}
}

func TestOverlayRouterStats(t *testing.T) {
	r, alice, bob := testNet(t, core.NewClientPolicy(), core.NewServerPolicy())
	alice.Send(bob.Addr(), []byte("x"))
	recvWithin(t, bob, 2*time.Second)
	r.Close()
	if r.Received.Load() == 0 || r.Forwarded.Load() == 0 {
		t.Errorf("router stats empty: recv=%d fwd=%d", r.Received.Load(), r.Forwarded.Load())
	}
}

func TestOverlayUnroutableCounted(t *testing.T) {
	r, alice, bob := testNet(t, core.NewClientPolicy(), core.NewServerPolicy())
	_ = bob
	alice.Send(packet.AddrFrom(99, 9, 9, 9), []byte("void"))
	time.Sleep(200 * time.Millisecond)
	r.Close()
	if r.Unroutable.Load() == 0 {
		t.Error("unroutable packet not counted")
	}
}

func TestOverlayCloseIdempotent(t *testing.T) {
	r, alice, _ := testNet(t, core.NewClientPolicy(), core.NewServerPolicy())
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	alice.Close()
	if err := alice.Send(1, []byte("x")); err == nil {
		t.Error("Send after Close should error")
	}
}

func TestWorkloadKindsForward(t *testing.T) {
	for _, kind := range Kinds {
		w := NewWorkload(kind, capability.Fast)
		// Capture time after the build: capabilities must never be
		// validated against a clock earlier than their mint time.
		now := tvatime.WallClock{}.Now()
		for i := 0; i < 100; i++ {
			if !w.ForwardOne(now) {
				t.Errorf("%v: packet %d demoted/dropped in its own workload", kind, i)
				break
			}
		}
	}
}

func TestWorkloadMissStaysMiss(t *testing.T) {
	// The no-entry workload must keep exercising the validation path:
	// router misses should keep pace with processed packets.
	w := NewWorkload(KindRegularNoEntry, capability.Fast)
	now := tvatime.WallClock{}.Now()
	const n = 5000
	for i := 0; i < n; i++ {
		w.ForwardOne(now)
	}
	if hits := w.Router.Stats.RegularHit; hits > n/100 {
		t.Errorf("no-entry workload produced %d cache hits of %d", hits, n)
	}
	if miss := w.Router.Stats.RegularMiss; miss < n*9/10 {
		t.Errorf("no-entry workload validated only %d of %d", miss, n)
	}
}

func TestWorkloadHitStaysHit(t *testing.T) {
	w := NewWorkload(KindRegularWithEntry, capability.Fast)
	now := tvatime.WallClock{}.Now()
	const n = 5000
	for i := 0; i < n; i++ {
		w.ForwardOne(now)
	}
	if hits := w.Router.Stats.RegularHit; hits < n {
		t.Errorf("with-entry workload hit only %d of %d", hits, n)
	}
}

func TestMeasureForwardingReportsRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	w := NewWorkload(KindRegularWithEntry, capability.Fast)
	out := MeasureForwarding(w, 20_000, 200*time.Millisecond)
	if out < 5_000 {
		t.Errorf("output rate %.0f pps; expected at least 5k on any hardware", out)
	}
	if out > 25_000 {
		t.Errorf("output rate %.0f pps exceeds offered 20k input", out)
	}
}
