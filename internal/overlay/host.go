// Host proxy: the upgraded-host side of incremental deployment (§8),
// offering applications a capability-protected datagram service. The
// proxy owns a core.Shim, bootstraps and renews capabilities
// transparently, and answers inbound requests per its policy.
package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"tva/internal/core"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// HostConfig configures an overlay host proxy.
type HostConfig struct {
	// Addr is the host's TVA address.
	Addr packet.Addr
	// Listen is the UDP address to bind.
	Listen string
	// Gateway is the first-hop router's UDP address.
	Gateway string
	// Policy authorizes inbound senders (nil refuses everyone).
	Policy core.Policy
	// Shim tunes the capability layer; zero value uses defaults with
	// the crypto suite.
	Shim core.ShimConfig
}

// Message is one delivered datagram.
type Message struct {
	Src     packet.Addr
	Payload []byte
	Demoted bool
}

// Host is a userspace TVA end system.
type Host struct {
	conn    *net.UDPConn
	gateway *net.UDPAddr
	shim    *core.Shim
	addr    packet.Addr

	// ops serializes all shim access onto the event loop goroutine.
	ops    chan func()
	closed chan struct{}
	wg     sync.WaitGroup

	// Inbox receives delivered messages. It is buffered; slow
	// consumers drop (counted in Dropped under inbox-overflow).
	Inbox chan Message
	mu    sync.Mutex
	drops telemetry.DropCounters
}

// NewHost binds the proxy and starts its loops.
func NewHost(cfg HostConfig) (*Host, error) {
	if cfg.Addr == 0 {
		return nil, errors.New("overlay: host needs a TVA address")
	}
	gw, err := net.ResolveUDPAddr("udp", cfg.Gateway)
	if err != nil {
		return nil, fmt.Errorf("overlay: gateway %q: %w", cfg.Gateway, err)
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen: %w", err)
	}
	h := &Host{
		conn:    conn,
		gateway: gw,
		addr:    cfg.Addr,
		ops:     make(chan func(), 256),
		closed:  make(chan struct{}),
		Inbox:   make(chan Message, 1024),
	}
	shimCfg := cfg.Shim
	h.shim = core.NewShim(cfg.Addr, cfg.Policy, tvatime.WallClock{},
		rand.New(rand.NewSource(time.Now().UnixNano())), shimCfg)
	h.shim.Output = h.transmit
	h.shim.Deliver = h.deliver
	h.wg.Add(2)
	go h.receiveLoop()
	go h.eventLoop()
	return h, nil
}

// Addr returns the host's TVA address.
func (h *Host) Addr() packet.Addr { return h.addr }

// UDPAddr returns the bound UDP address.
func (h *Host) UDPAddr() *net.UDPAddr { return h.conn.LocalAddr().(*net.UDPAddr) }

// Dropped reports inbox overflow drops.
func (h *Host) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.drops.Get(telemetry.DropInboxOverflow)
}

// DropReasons returns a snapshot of the host's per-reason drop counts.
func (h *Host) DropReasons() telemetry.DropCounters {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.drops
}

// transmit marshals and sends a shim packet to the gateway. Runs on
// the event loop goroutine. The marshaled bytes are the packet's wire
// life; the in-memory form goes back to the pool here.
func (h *Host) transmit(pkt *packet.Packet) {
	data, err := pkt.Marshal(nil)
	packet.Release(pkt)
	if err != nil {
		return
	}
	h.conn.WriteToUDP(data, h.gateway)
}

// deliver hands a payload to the inbox. Runs on the event loop.
func (h *Host) deliver(src packet.Addr, proto packet.Proto, payload any, size int, demoted bool) {
	data, _ := payload.([]byte)
	msg := Message{Src: src, Payload: data, Demoted: demoted}
	select {
	case h.Inbox <- msg:
	default:
		h.mu.Lock()
		h.drops.Inc(telemetry.DropInboxOverflow)
		h.mu.Unlock()
	}
}

// Send transmits payload to dst through the capability layer: the
// first packets carry a request piggybacked, later ones capabilities
// or the flow nonce; renewal is automatic.
func (h *Host) Send(dst packet.Addr, payload []byte) error {
	select {
	case <-h.closed:
		return net.ErrClosed
	default:
	}
	cp := append([]byte(nil), payload...)
	select {
	case h.ops <- func() { h.shim.Send(dst, packet.ProtoRaw, cp, len(cp)) }:
		return nil
	case <-h.closed:
		return net.ErrClosed
	}
}

// HasCaps reports whether the host currently holds capabilities toward
// dst (for diagnostics and tests).
func (h *Host) HasCaps(dst packet.Addr) bool {
	res := make(chan bool, 1)
	select {
	case h.ops <- func() { res <- h.shim.HasCaps(dst) }:
		return <-res
	case <-h.closed:
		return false
	}
}

// LastDemotion reports the most recent demotion evidence involving
// peer: the demoting router's id and reason, carried back in return
// information (§3.8). Diagnostics use it to explain capability-path
// failures instead of reporting a bare timeout.
func (h *Host) LastDemotion(peer packet.Addr) (core.Demotion, bool) {
	type answer struct {
		d  core.Demotion
		ok bool
	}
	res := make(chan answer, 1)
	select {
	case h.ops <- func() {
		d, ok := h.shim.LastDemotion(peer)
		res <- answer{d, ok}
	}:
		a := <-res
		return a.d, a.ok
	case <-h.closed:
		return core.Demotion{}, false
	}
}

// HopReport returns the most recent per-hop queue-wait report for the
// path toward peer: one (router id, wait µs) stamp per capability
// router the request traversed, carried back in return information.
// Empty unless the shim was configured with CollectHops.
func (h *Host) HopReport(peer packet.Addr) []packet.HopStamp {
	res := make(chan []packet.HopStamp, 1)
	select {
	case h.ops <- func() {
		res <- append([]packet.HopStamp(nil), h.shim.LastHopReport(peer)...)
	}:
		return <-res
	case <-h.closed:
		return nil
	}
}

// Stats snapshots the shim's counters.
func (h *Host) Stats() core.ShimStats {
	res := make(chan core.ShimStats, 1)
	select {
	case h.ops <- func() { res <- h.shim.Stats }:
		return <-res
	case <-h.closed:
		return core.ShimStats{}
	}
}

// Close shuts the proxy down.
func (h *Host) Close() error {
	select {
	case <-h.closed:
		return nil
	default:
	}
	close(h.closed)
	err := h.conn.Close()
	h.wg.Wait()
	return err
}

// receiveLoop reads datagrams and forwards them onto the event loop.
func (h *Host) receiveLoop() {
	defer h.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := h.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-h.closed:
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-h.closed:
				return
			default:
				continue
			}
		}
		pkt, err := packet.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		select {
		case h.ops <- func() { h.shim.Receive(pkt) }:
		case <-h.closed:
			return
		}
	}
}

// eventLoop owns the shim.
func (h *Host) eventLoop() {
	defer h.wg.Done()
	for {
		select {
		case op := <-h.ops:
			op()
		case <-h.closed:
			// Drain what's queued so Close is not racy with Send.
			for {
				select {
				case op := <-h.ops:
					op()
				default:
					return
				}
			}
		}
	}
}
