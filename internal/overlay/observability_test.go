package overlay

import (
	"bytes"
	"testing"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/metrics"
	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/tvatime"
)

// mixedWorkload extends shardWorkload with invalid-capability packets
// so the runs exercise the demotion counters, not just classification.
func mixedWorkload(auth *capability.Authority, n int, now tvatime.Time) []*packet.Packet {
	pkts := shardWorkload(auth, n, now)
	for i, p := range pkts {
		if i%5 == 1 && p.Hdr.Kind == packet.KindRegular {
			p.Hdr.Caps = []uint64{uint64(i)*2654435761 + 17} // forged
		}
	}
	return pkts
}

func clonePkt(p *packet.Packet) *packet.Packet {
	c := *p
	h := *p.Hdr
	h.Caps = append([]uint64(nil), p.Hdr.Caps...)
	c.Hdr = &h
	return &c
}

// TestBatchObservabilityEquivalence pins the observability half of the
// ProcessBatch contract: a batched run must leave byte-identical
// stats and per-reason demotion counters to the same packets pushed
// one Process call at a time. A drop-reason counter that moved would
// mean the batch path attributes differently than the scalar path.
func TestBatchObservabilityEquivalence(t *testing.T) {
	suite := capability.Fast
	auth := capability.NewAuthority(suite, 0)
	now := tvatime.FromSeconds(1)
	pkts := mixedWorkload(auth, 500, now)

	scalar := core.NewRouter(core.RouterConfig{Suite: suite, Authority: auth})
	for _, p := range pkts {
		scalar.Process(clonePkt(p), 0, now)
	}

	batched := core.NewRouter(core.RouterConfig{Suite: suite, Authority: auth})
	const burstLen = 32
	b := packet.NewBatch(burstLen)
	for i := 0; i < len(pkts); i += burstLen {
		end := i + burstLen
		if end > len(pkts) {
			end = len(pkts)
		}
		for _, p := range pkts[i:end] {
			b.Append(clonePkt(p))
		}
		batched.ProcessBatch(b, 0, now)
		b.Reset()
	}

	if scalar.Stats != batched.Stats {
		t.Errorf("stats diverge: scalar %+v, batched %+v", scalar.Stats, batched.Stats)
	}
	if scalar.Demotions != batched.Demotions {
		t.Errorf("demotion counters diverge:\nscalar  %v\nbatched %v",
			scalar.Demotions, batched.Demotions)
	}
	if scalar.Demotions.Total() == 0 {
		t.Fatal("workload produced no demotions; the test exercises nothing")
	}
}

// TestShardObservabilityEquivalence requires the shard engine's merged
// counters to be independent of the shard count: flows hash wholly
// onto one shard, so slicing the same traffic 1, 2, or 4 ways must
// yield identical aggregate stats and demotion attribution.
func TestShardObservabilityEquivalence(t *testing.T) {
	suite := capability.Fast
	auth := capability.NewAuthority(suite, 0)
	now := tvatime.FromSeconds(1)
	pkts := mixedWorkload(auth, 400, now)

	run := func(shards int) (core.RouterStats, telemetry.DropCounters) {
		base := core.RouterConfig{Suite: suite, Authority: auth}
		e := newShardEngine(shards, func() *core.Router { return core.NewRouter(base) })
		defer e.close()
		const burstLen = 16
		b := packet.NewBatch(burstLen)
		for i := 0; i < len(pkts); i += burstLen {
			end := i + burstLen
			if end > len(pkts) {
				end = len(pkts)
			}
			for _, p := range pkts[i:end] {
				b.Append(clonePkt(p))
			}
			e.process(b, now)
			b.Reset()
		}
		return e.stats(), e.demotions()
	}

	baseStats, baseDem := run(1)
	for _, shards := range []int{2, 4} {
		st, dem := run(shards)
		if st != baseStats {
			t.Errorf("shards=%d: stats %+v != shards=1 %+v", shards, st, baseStats)
		}
		if dem != baseDem {
			t.Errorf("shards=%d: demotions %v != shards=1 %v", shards, dem, baseDem)
		}
	}
	if baseDem.Total() == 0 {
		t.Fatal("workload produced no demotion attribution")
	}
}

// TestRouterMetricsExposition boots a socketless registry off a real
// router and checks the exposition parses strictly, carries the
// shared-name series tvatop requires, and that burst-fill gauges in
// the registry agree exactly with the router's own accessors.
func TestRouterMetricsExposition(t *testing.T) {
	r, alice, bob := batchNet(t, 8, 2)
	_ = alice
	_ = bob

	m := r.Metrics(16, metrics.DetectorConfig{})
	m.Tick(tvatime.WallClock{}.Now())
	m.Tick(tvatime.WallClock{}.Now() + tvatime.Time(tvatime.Second))

	var buf bytes.Buffer
	if err := m.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		"tva_router_received_total", "tva_router_forwarded_total",
		"tva_sched_drops_total", "tva_demotions_total",
		"tva_flowcache_entries", "tva_queue_wait_ns", "tva_queue_wait_ewma_us",
		"tva_rx_burst_fill", "tva_tx_burst_fill",
		"tva_queue_pkts", "tva_regular_queues", "tva_token_bucket_bytes",
		"tva_port_sent_pkts_total", "tva_port_dropped_pkts_total",
		"tva_health_state", "tva_health_transitions_total",
		"tva_router_received_total:rate", // synthetic rate after 2 ticks
	} {
		if !sc.Has(name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if got, ok := sc.Get("tva_rx_burst_fill"); !ok || got.Value != r.RxBurstFill() {
		t.Errorf("registry rx burst fill %v, router says %v", got.Value, r.RxBurstFill())
	}
	if got, ok := sc.Get("tva_tx_burst_fill"); !ok || got.Value != r.TxBurstFill() {
		t.Errorf("registry tx burst fill %v, router says %v", got.Value, r.TxBurstFill())
	}
}
