package overlay

import (
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/exp"
	"tva/internal/metrics"
	"tva/internal/trace"
)

func streamShim() core.ShimConfig {
	return core.ShimConfig{Suite: capability.Fast, AutoReturn: true}
}

// sendUntilDelivered drives the knock-then-stream loop until want
// full-size messages arrive at dst, or the deadline passes.
func sendUntilDelivered(t *testing.T, src, dst *Host, msg []byte, want int) int {
	t.Helper()
	got := 0
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for got < want {
		select {
		case m := <-dst.Inbox:
			if len(m.Payload) >= len(msg) {
				got++
			}
		case <-tick.C:
			if src.HasCaps(dst.Addr()) {
				src.Send(dst.Addr(), msg)
			} else {
				src.Send(dst.Addr(), nil) // knock: shim piggybacks the request
			}
		case <-deadline:
			t.Fatalf("delivered %d of %d messages before deadline", got, want)
		}
	}
	return got
}

// A three-router chain must forward end-to-end in-process: host at one
// edge acquires capabilities from a host at the other edge and streams
// messages across both inter-router links.
func TestTopologyChainForwardsEndToEnd(t *testing.T) {
	topo, err := NewTopology(TopoConfig{
		Routers:      3,
		LinkBps:      50_000_000,
		Suite:        capability.Fast,
		SpanCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	dest, err := topo.AddHost(exp.DestAddr, 2, core.NewServerPolicy(), streamShim())
	if err != nil {
		t.Fatal(err)
	}
	user, err := topo.AddHost(exp.UserAddr(0), 0, core.NewClientPolicy(), streamShim())
	if err != nil {
		t.Fatal(err)
	}

	msg := make([]byte, 512)
	sendUntilDelivered(t, user, dest, msg, 20)

	// The shared span sink must hold per-hop fragments from the chain:
	// every router assigns fresh trace IDs at ingress, so a delivered
	// message shows up as enqueue/dequeue/tx triples at each hop.
	spans := topo.Spans().Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	edges := map[trace.Edge]int{}
	for _, sp := range spans {
		edges[sp.Edge]++
	}
	for _, e := range []trace.Edge{trace.EdgeEnqueue, trace.EdgeDequeue, trace.EdgeTx} {
		if edges[e] == 0 {
			t.Fatalf("no %v spans recorded (edge counts: %v)", e, edges)
		}
	}
	// Hops from at least the two forward inter-router ports plus the
	// delivery port must be registered.
	stats := trace.AnalyzeAll(spans)
	hops := trace.AggregateHops(stats, uint32(exp.UserAddr(0)), uint32(exp.DestAddr))
	if len(hops) == 0 {
		t.Fatal("no per-hop aggregates for the user->dest flow")
	}
}

// Same-seed (here: same-workload) runs of the loopback topology must
// expose the identical metric series set and identical count-based
// totals — wall-clock timing may differ, packet counts may not.
func TestTopologyDeterministicSnapshot(t *testing.T) {
	run := func() (ids []string, delivered int) {
		topo, err := NewTopology(TopoConfig{Routers: 2, LinkBps: 50_000_000, Suite: capability.Fast})
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		dest, err := topo.AddHost(exp.DestAddr, 1, core.NewServerPolicy(), streamShim())
		if err != nil {
			t.Fatal(err)
		}
		user, err := topo.AddHost(exp.UserAddr(0), 0, core.NewClientPolicy(), streamShim())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := topo.StartMetrics(64, metrics.DetectorConfig{}, 0); err != nil {
			t.Fatal(err)
		}
		delivered = sendUntilDelivered(t, user, dest, make([]byte, 256), 10)
		topo.Tick()
		// Port labels carry ephemeral UDP addresses; erase the values so
		// the comparison is about series structure, not bind order.
		portVal := regexp.MustCompile(`port="[^"]*"`)
		for _, id := range topo.Metrics(0).Registry.IDs() {
			ids = append(ids, portVal.ReplaceAllString(id, `port="*"`))
		}
		sort.Strings(ids)
		return ids, delivered
	}
	ids1, n1 := run()
	ids2, n2 := run()
	if n1 != n2 {
		t.Fatalf("delivered counts differ: %d vs %d", n1, n2)
	}
	if len(ids1) == 0 {
		t.Fatal("empty series set")
	}
	if len(ids1) != len(ids2) {
		t.Fatalf("series sets differ in size: %d vs %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("series sets diverge at %d: %q vs %q", i, ids1[i], ids2[i])
		}
	}
}

// StartMetrics must refuse a second call.
func TestTopologyStartMetricsOnce(t *testing.T) {
	topo, err := NewTopology(TopoConfig{Routers: 2, LinkBps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if _, err := topo.AddHost(exp.DestAddr, 1, core.NewServerPolicy(), streamShim()); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.StartMetrics(16, metrics.DetectorConfig{}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.StartMetrics(16, metrics.DetectorConfig{}, time.Millisecond); err == nil {
		t.Fatal("second StartMetrics succeeded")
	}
}

// Closing the topology must stop every goroutine it started: router
// receive/port loops, host loops, and the metrics ticker.
func TestTopologyCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	topo, err := NewTopology(TopoConfig{Routers: 3, LinkBps: 20_000_000, SpanCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	dest, err := topo.AddHost(exp.DestAddr, 2, core.NewServerPolicy(), streamShim())
	if err != nil {
		t.Fatal(err)
	}
	user, err := topo.AddHost(exp.UserAddr(0), 0, core.NewClientPolicy(), streamShim())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.StartMetrics(16, metrics.DetectorConfig{}, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sendUntilDelivered(t, user, dest, make([]byte, 128), 5)
	if err := topo.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := topo.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
