package pathid

import (
	"testing"

	"tva/internal/packet"
)

func TestTagsDeterministic(t *testing.T) {
	a := NewSeeded(1)
	b := NewSeeded(1)
	for i := 0; i < 100; i++ {
		if a.ForInterface(i) != b.ForInterface(i) {
			t.Fatalf("iface %d: same seed gave different tags", i)
		}
	}
}

func TestTagsVaryBySeed(t *testing.T) {
	a, b := NewSeeded(1), NewSeeded(2)
	same := 0
	for i := 0; i < 256; i++ {
		if a.ForInterface(i) == b.ForInterface(i) {
			same++
		}
	}
	if same > 3 {
		t.Errorf("%d/256 tags collide across seeds; tags are not router-specific", same)
	}
}

func TestTagsMostlyUniqueAcrossInterfaces(t *testing.T) {
	// 16-bit tags over a few hundred interfaces: collisions possible
	// but must be rare (birthday bound ≈ 0.5% pairwise for 200).
	tag := NewSeeded(7)
	seen := map[packet.PathID]bool{}
	collisions := 0
	for i := 0; i < 200; i++ {
		id := tag.ForInterface(i)
		if seen[id] {
			collisions++
		}
		seen[id] = true
	}
	if collisions > 5 {
		t.Errorf("%d collisions among 200 interfaces", collisions)
	}
}

func TestRandomTaggerDistinct(t *testing.T) {
	if New().ForInterface(0) == New().ForInterface(0) {
		t.Error("two random taggers produced identical tags (improbable)")
	}
}

func TestStampAppends(t *testing.T) {
	h := &packet.CapHdr{Kind: packet.KindRequest}
	Stamp(h, 10)
	Stamp(h, 20)
	if len(h.Request.PathIDs) != 2 || h.Request.PathIDs[0] != 10 || h.Request.PathIDs[1] != 20 {
		t.Errorf("Stamp order wrong: %v", h.Request.PathIDs)
	}
}
