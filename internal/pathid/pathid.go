// Package pathid implements TVA's path identifiers (paper §3.2): each
// router at the ingress of a trust boundary tags request packets with a
// 16-bit value derived from the incoming interface, likely to be unique
// across the boundary. The most recent tag names the fair queue a
// request joins, so senders sharing an ingress share fate and bounded
// tag space bounds queue state.
package pathid

import (
	"encoding/binary"

	"tva/internal/mac"
	"tva/internal/packet"
)

// Tagger derives stable pseudo-random tags for a trust-boundary
// router's interfaces.
type Tagger struct {
	k0, k1 uint64
}

// New returns a Tagger keyed with fresh random material; tags are
// stable for the Tagger's lifetime (the paper's tags are configured or
// pseudo-random per interface, changing only slowly).
func New() *Tagger {
	s := mac.NewSecret()
	return &Tagger{
		k0: binary.BigEndian.Uint64(s[0:8]),
		k1: binary.BigEndian.Uint64(s[8:16]),
	}
}

// NewSeeded returns a deterministic Tagger for tests and simulations.
func NewSeeded(seed uint64) *Tagger {
	return &Tagger{k0: seed, k1: seed ^ 0x9e3779b97f4a7c15}
}

// Rekey deterministically re-derives the tagger's key material, as a
// rebooted trust-boundary router would when its (unlike the capability
// secrets, not §3.8-persistent) tag configuration is regenerated.
// In-flight requests queued under old tags simply land in different
// fair queues until they drain; salt keeps successive reboots distinct.
func (t *Tagger) Rekey(salt uint64) {
	t.k0 = t.k0*0x9e3779b97f4a7c15 + salt + 1
	t.k1 = t.k1 ^ (t.k0 >> 17) ^ (salt * 0xc4ceb9fe1a85ec53)
}

// ForInterface returns the tag for an incoming interface index.
func (t *Tagger) ForInterface(iface int) packet.PathID {
	h := t.k0 ^ uint64(iface)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h ^= t.k1
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return packet.PathID(h)
}

// Stamp appends the tag for the incoming interface to a request's path
// identifier list, in place. Routers not at trust boundaries do not
// stamp (the upstream boundary already did).
func Stamp(hdr *packet.CapHdr, tag packet.PathID) {
	hdr.Request.PathIDs = append(hdr.Request.PathIDs, tag)
}
