// Package flowstats is bounded-memory per-sender accounting for both
// data planes: a space-saving top-K heavy-hitter table (bytes, packets,
// drops, demotions per sender in O(K) memory regardless of sender
// count), a count-min sketch for total-traffic estimates over the full
// sender population, and a streaming fairness engine maintaining
// Jain's fairness index and a max/min goodput ratio per metrics
// window.
//
// Everything on the record path is preallocated at construction and
// //tva:hotpath-clean: no maps, no closures, no allocation — a table
// touch is an open-addressed probe plus a heap sift, a sketch update
// is four array adds. Collectors are not synchronized; each owner
// (a core engine, a port scheduler, a shard worker) holds its own
// collector under its own lock and snapshots merge deterministically
// off the hot path (DESIGN.md §16).
//
// Senders are keyed the way the paper holds them accountable (§3.2):
// request packets by their most recent path identifier (source
// addresses on requests are spoofable; the path-id is stamped by the
// trust boundary), everything else by source address.
package flowstats

import "tva/internal/packet"

// Key identifies one accounted sender: the source address in the high
// 32 bits of the significant range and the path identifier (non-zero
// only for request traffic) in the low 16.
type Key uint64

// KeyFor builds the accounting key for an address/path-id pair.
func KeyFor(src packet.Addr, path packet.PathID) Key {
	return Key(uint64(src)<<16 | uint64(path))
}

// Src returns the key's source address.
func (k Key) Src() packet.Addr { return packet.Addr(k >> 16) }

// Path returns the key's path identifier (zero for non-request keys).
func (k Key) Path() packet.PathID { return packet.PathID(k) }

// keyOf derives the accounting key from a packet: requests by their
// last stamped path identifier, all other traffic by source address.
//
//tva:hotpath
func keyOf(pkt *packet.Packet) Key {
	if pkt.Hdr != nil && pkt.Hdr.Kind == packet.KindRequest {
		ids := pkt.Hdr.Request.PathIDs
		if len(ids) > 0 {
			return KeyFor(pkt.Src, ids[len(ids)-1])
		}
	}
	return KeyFor(pkt.Src, 0)
}

// Default sizing: 32 tracked heavy hitters and a 1024-wide sketch per
// collector keep a collector around 40 KB while holding the count-min
// overestimate under ~0.27% of total bytes (e/width).
const (
	DefaultTopK        = 32
	DefaultSketchWidth = 1024
)

// Collector is one owner's accounting unit: a top-K table plus a
// count-min sketch fed by the same stream. A nil *Collector is a valid
// no-op receiver, so data-path hooks cost one branch when accounting
// is off.
type Collector struct {
	table  Table
	sketch Sketch
}

// New builds a collector tracking the top k senders with a count-min
// sketch of the given width (rounded up to a power of two).
func New(k, sketchWidth int) *Collector {
	c := &Collector{}
	c.table.Init(k)
	c.sketch.Init(sketchWidth)
	return c
}

// Observe accounts one forwarded/processed packet to its sender.
//
//tva:hotpath
func (c *Collector) Observe(pkt *packet.Packet) {
	if c == nil {
		return
	}
	k := keyOf(pkt)
	n := uint64(pkt.Size)
	c.table.touch(k, n, 1, 0, 0)
	c.sketch.add(k, n)
}

// Drop accounts one scheduler/queue drop to the packet's sender. A
// sender not already tracked is only added while the table has room —
// drops alone never evict a heavy hitter.
//
//tva:hotpath
func (c *Collector) Drop(pkt *packet.Packet) {
	if c == nil {
		return
	}
	c.table.touch(keyOf(pkt), 0, 0, 1, 0)
}

// Demote accounts one capability demotion (§3.8) to the packet's
// sender, under the same no-eviction rule as Drop.
//
//tva:hotpath
func (c *Collector) Demote(pkt *packet.Packet) {
	if c == nil {
		return
	}
	c.table.touch(keyOf(pkt), 0, 0, 0, 1)
}

// Tracked returns the number of live table entries.
func (c *Collector) Tracked() int {
	if c == nil {
		return 0
	}
	return c.table.Len()
}

// TotalBytes returns the exact total byte count the collector has
// observed (the count-min stream total N).
func (c *Collector) TotalBytes() uint64 {
	if c == nil {
		return 0
	}
	return c.sketch.N()
}

// TopShare returns the top tracked sender's fraction of all observed
// bytes (0 before any traffic).
func (c *Collector) TopShare() float64 {
	if c == nil {
		return 0
	}
	n := c.sketch.N()
	if n == 0 {
		return 0
	}
	return float64(c.table.MaxBytes()) / float64(n)
}

// Estimate returns the count-min byte estimate for one sender: never
// an underestimate, and over by at most ~e/width of TotalBytes with
// high probability.
func (c *Collector) Estimate(k Key) uint64 {
	if c == nil {
		return 0
	}
	return c.sketch.Estimate(k)
}

// AppendSamples appends the live table entries to dst, unsorted. Not
// for the hot path; callers snapshot under their own lock and merge
// with MergeSamples.
func (c *Collector) AppendSamples(dst []Sample) []Sample {
	if c == nil {
		return dst
	}
	return c.table.AppendSamples(dst)
}
