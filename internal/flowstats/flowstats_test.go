package flowstats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tva/internal/packet"
)

// zipfStream draws n (key, bytes) events from a Zipf(s) distribution
// over keys and returns the stream plus exact per-key byte totals.
func zipfStream(t *testing.T, seed int64, s float64, keys, n int) ([]Key, map[Key]uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	if z == nil {
		t.Fatal("rand.NewZipf returned nil")
	}
	stream := make([]Key, n)
	exact := make(map[Key]uint64, keys)
	for i := range stream {
		k := KeyFor(packet.Addr(z.Uint64()+1), 0)
		stream[i] = k
		exact[k] += 1000
	}
	return stream, exact
}

func exactTopK(exact map[Key]uint64, k int) []Key {
	type kv struct {
		k Key
		v uint64
	}
	all := make([]kv, 0, len(exact))
	for key, v := range exact {
		all = append(all, kv{key, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Key, len(all))
	for i, e := range all {
		out[i] = e.k
	}
	return out
}

// TestTopKRecallZipf is the satellite property test: on a skewed
// Zipf(1.2) stream, the space-saving table's top set must recover at
// least 90% of the exact heavy hitters, and every tracked byte count
// must bracket the truth per the space-saving guarantee
// (true <= tracked <= true + err).
func TestTopKRecallZipf(t *testing.T) {
	const (
		tableK  = 128
		judgeK  = 32
		keys    = 100_000
		draws   = 200_000
		minWant = 0.9
	)
	stream, exact := zipfStream(t, 42, 1.2, keys, draws)

	var tbl Table
	tbl.Init(tableK)
	for _, k := range stream {
		tbl.touch(k, 1000, 1, 0, 0)
	}

	samples := tbl.AppendSamples(nil)
	SortSamples(samples)
	tracked := make(map[Key]Sample, len(samples))
	for _, s := range samples {
		tracked[s.Key] = s
		truth := exact[s.Key]
		if s.Bytes < truth {
			t.Fatalf("key %v: tracked bytes %d below true %d", s.Key, s.Bytes, truth)
		}
		if s.Bytes-s.Err > truth {
			t.Fatalf("key %v: bytes-err %d exceeds true %d (err %d)",
				s.Key, s.Bytes-s.Err, truth, s.Err)
		}
	}

	hits := 0
	for _, k := range exactTopK(exact, judgeK) {
		if _, ok := tracked[k]; ok {
			hits++
		}
	}
	recall := float64(hits) / float64(judgeK)
	t.Logf("top-%d recall over %d tracked: %.3f", judgeK, tableK, recall)
	if recall < minWant {
		t.Fatalf("top-K recall %.3f < %.2f", recall, minWant)
	}
}

// TestCountMinBound checks the count-min guarantee on the same skewed
// stream: estimates never undershoot, and (almost) all overshoot by
// less than eps*N with eps = e/width.
func TestCountMinBound(t *testing.T) {
	const width = 1024
	stream, exact := zipfStream(t, 7, 1.2, 50_000, 150_000)

	var sk Sketch
	sk.Init(width)
	for _, k := range stream {
		sk.add(k, 1000)
	}
	if want := uint64(len(stream)) * 1000; sk.N() != want {
		t.Fatalf("stream total N = %d, want %d", sk.N(), want)
	}

	bound := uint64(math.E / float64(sk.Width()) * float64(sk.N()))
	within := 0
	var worst uint64
	for k, truth := range exact {
		est := sk.Estimate(k)
		if est < truth {
			t.Fatalf("key %v: estimate %d under true count %d", k, est, truth)
		}
		over := est - truth
		if over <= bound {
			within++
		}
		if over > worst {
			worst = over
		}
	}
	frac := float64(within) / float64(len(exact))
	t.Logf("%.4f of %d keys within e/w bound %d; worst overshoot %d",
		frac, len(exact), bound, worst)
	// The per-query failure probability is ~e^-depth ≈ 1.8%; require
	// 97% to leave slack, and cap the worst overshoot at a small
	// multiple of the bound.
	if frac < 0.97 {
		t.Fatalf("only %.4f of keys within eps*N bound, want >= 0.97", frac)
	}
	if worst > 4*bound {
		t.Fatalf("worst overshoot %d exceeds 4x bound %d", worst, bound)
	}
}

// TestTableEviction exercises the space-saving replacement rule
// directly on a tiny table.
func TestTableEviction(t *testing.T) {
	var tbl Table
	tbl.Init(2)
	a, b, c := KeyFor(1, 0), KeyFor(2, 0), KeyFor(3, 0)
	tbl.touch(a, 100, 1, 0, 0)
	tbl.touch(b, 10, 1, 0, 0)
	tbl.touch(c, 5, 1, 0, 0) // evicts b (min=10), inherits its count

	samples := tbl.AppendSamples(nil)
	SortSamples(samples)
	if len(samples) != 2 {
		t.Fatalf("len = %d, want 2", len(samples))
	}
	if samples[0].Key != a || samples[0].Bytes != 100 || samples[0].Err != 0 {
		t.Fatalf("top entry = %+v, want key %v bytes 100 err 0", samples[0], a)
	}
	if samples[1].Key != c || samples[1].Bytes != 15 || samples[1].Err != 10 {
		t.Fatalf("evictee slot = %+v, want key %v bytes 15 err 10", samples[1], c)
	}

	// Drops on an untracked sender must not evict anyone.
	tbl.touch(KeyFor(9, 0), 0, 0, 1, 0)
	if tbl.Len() != 2 || tbl.find(KeyFor(9, 0)) >= 0 {
		t.Fatal("zero-byte touch on full table must be a no-op for untracked keys")
	}
	// But drops on a tracked sender are attributed.
	tbl.touch(a, 0, 0, 1, 0)
	samples = tbl.AppendSamples(samples[:0])
	SortSamples(samples)
	if samples[0].Drops != 1 {
		t.Fatalf("tracked drop not attributed: %+v", samples[0])
	}
}

// TestMergeDeterminism: merging shard snapshots must not depend on
// shard order, and must sum per-key counters.
func TestMergeDeterminism(t *testing.T) {
	s1 := []Sample{
		{Key: KeyFor(1, 0), Bytes: 100, Pkts: 1},
		{Key: KeyFor(2, 0), Bytes: 50, Pkts: 1, Drops: 2},
	}
	s2 := []Sample{
		{Key: KeyFor(2, 0), Bytes: 60, Pkts: 2},
		{Key: KeyFor(3, 0), Bytes: 10, Pkts: 1, Demotions: 1},
	}
	ab := MergeSamples(append(append([]Sample(nil), s1...), s2...), 0)
	ba := MergeSamples(append(append([]Sample(nil), s2...), s1...), 0)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge order-dependent:\n%v\n%v", ab, ba)
	}
	want := []Sample{
		{Key: KeyFor(2, 0), Bytes: 110, Pkts: 3, Drops: 2},
		{Key: KeyFor(1, 0), Bytes: 100, Pkts: 1},
		{Key: KeyFor(3, 0), Bytes: 10, Pkts: 1, Demotions: 1},
	}
	if !reflect.DeepEqual(ab, want) {
		t.Fatalf("merge = %v, want %v", ab, want)
	}
	if top := MergeSamples(append(append([]Sample(nil), s1...), s2...), 2); len(top) != 2 {
		t.Fatalf("k-truncation kept %d rows, want 2", len(top))
	}
}

// TestKeying: requests are keyed by their most recent path identifier,
// everything else by source address.
func TestKeying(t *testing.T) {
	legacy := &packet.Packet{Src: packet.AddrFrom(10, 0, 0, 1), Size: 100}
	if got := keyOf(legacy); got.Src() != legacy.Src || got.Path() != 0 {
		t.Fatalf("legacy key = %v/%v", got.Src(), got.Path())
	}
	req := &packet.Packet{
		Src:  packet.AddrFrom(10, 0, 0, 2),
		Size: 40,
		Hdr: &packet.CapHdr{
			Kind:    packet.KindRequest,
			Request: packet.RequestHdr{PathIDs: []packet.PathID{7, 9}},
		},
	}
	if got := keyOf(req); got.Src() != req.Src || got.Path() != 9 {
		t.Fatalf("request key = %v/%v, want %v/9", got.Src(), got.Path(), req.Src)
	}
}

func TestFairnessWindows(t *testing.T) {
	f := NewFairness(4)
	if f.Jain() != 1 || f.MaxMinRatio() != 1 {
		t.Fatal("fresh engine must report the ideal indices")
	}
	for i := 0; i < 4; i++ {
		f.Account(i, 1000)
	}
	f.Account(99, 5000) // out of range: ignored
	f.Roll()
	if f.Jain() != 1 || f.MaxMinRatio() != 1 {
		t.Fatalf("equal window: jain=%v ratio=%v, want 1/1", f.Jain(), f.MaxMinRatio())
	}

	// Second window: one sender hogs everything.
	f.Account(0, 4000)
	f.Roll()
	if want := 0.25; math.Abs(f.Jain()-want) > 1e-9 {
		t.Fatalf("hogged window jain = %v, want %v", f.Jain(), want)
	}
	if f.MaxMinRatio() != 4000 {
		t.Fatalf("hogged window ratio = %v, want 4000 (1-byte clamp)", f.MaxMinRatio())
	}

	// Idle window rolls back to the ideal.
	f.Roll()
	if f.Jain() != 1 || f.MaxMinRatio() != 1 {
		t.Fatal("idle window must score 1/1")
	}

	if got := JainIndex([]uint64{2, 2, 2}); got != 1 {
		t.Fatalf("JainIndex equal = %v", got)
	}
	if got := JainIndex([]uint64{6, 0, 0}); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("JainIndex hogged = %v, want 1/3", got)
	}
	if got := MaxMinRatio([]uint64{10, 5}); got != 2 {
		t.Fatalf("MaxMinRatio = %v, want 2", got)
	}
}

func TestSampleFairness(t *testing.T) {
	prev := map[Key]uint64{}
	cur := []Sample{
		{Key: KeyFor(1, 0), Bytes: 100},
		{Key: KeyFor(2, 0), Bytes: 100},
	}
	jain, ratio := SampleFairness(prev, cur)
	if jain != 1 || ratio != 1 {
		t.Fatalf("first window: jain=%v ratio=%v", jain, ratio)
	}
	cur = []Sample{
		{Key: KeyFor(1, 0), Bytes: 400}, // +300
		{Key: KeyFor(2, 0), Bytes: 200}, // +100
	}
	jain, ratio = SampleFairness(prev, cur)
	if ratio != 3 {
		t.Fatalf("second window ratio = %v, want 3", ratio)
	}
	if want := 0.8; math.Abs(jain-want) > 1e-9 {
		t.Fatalf("second window jain = %v, want %v", jain, want)
	}
	// Departed keys leave prev so it cannot grow without bound.
	jain, ratio = SampleFairness(prev, []Sample{{Key: KeyFor(3, 0), Bytes: 10}})
	if jain != 1 || ratio != 1 {
		t.Fatalf("single-sender window: jain=%v ratio=%v", jain, ratio)
	}
	if len(prev) != 1 {
		t.Fatalf("prev kept departed keys: %v", prev)
	}
}
