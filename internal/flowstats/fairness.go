package flowstats

import "sort"

// Fairness is the streaming fairness engine over a fixed legit-sender
// population: the simulator accounts each delivered byte to its
// sender's slot on the hot path (one bounds check, one add), and each
// metrics window Roll folds the per-window deltas into Jain's fairness
// index and a max/min goodput ratio.
type Fairness struct {
	cur   []uint64 // cumulative delivered bytes per sender
	prev  []uint64 // cur as of the last Roll
	jain  float64
	ratio float64
}

// NewFairness builds an engine over n senders. Before any Roll both
// indices report the ideal 1.
func NewFairness(n int) *Fairness {
	if n < 0 {
		n = 0
	}
	return &Fairness{
		cur:   make([]uint64, n),
		prev:  make([]uint64, n),
		jain:  1,
		ratio: 1,
	}
}

// Account adds delivered bytes to sender i; out-of-range senders (and
// a nil engine) are ignored, so attacker traffic costs one branch.
//
//tva:hotpath
func (f *Fairness) Account(i int, bytes uint64) {
	if f == nil || i < 0 || i >= len(f.cur) {
		return
	}
	f.cur[i] += bytes
}

// N returns the population size.
func (f *Fairness) N() int {
	if f == nil {
		return 0
	}
	return len(f.cur)
}

// Roll closes the current window: it computes Jain's index and the
// max/min ratio over each sender's byte delta since the previous Roll,
// then starts the next window. An all-idle window scores the ideal 1.
// A nil engine is a no-op (its indices stay at the ideal 1).
func (f *Fairness) Roll() {
	if f == nil {
		return
	}
	var sum, sumSq float64
	min, max := ^uint64(0), uint64(0)
	for i := range f.cur {
		d := f.cur[i] - f.prev[i]
		f.prev[i] = f.cur[i]
		fd := float64(d)
		sum += fd
		sumSq += fd * fd
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if len(f.cur) == 0 || sum == 0 {
		f.jain, f.ratio = 1, 1
		return
	}
	f.jain = sum * sum / (float64(len(f.cur)) * sumSq)
	if min == 0 {
		// A starved sender makes the true ratio infinite; clamp the
		// denominator to one byte so the gauge stays finite (and huge).
		min = 1
	}
	f.ratio = float64(max) / float64(min)
}

// Jain returns the last window's Jain fairness index: 1 when every
// sender got equal goodput, 1/n when one sender got everything.
func (f *Fairness) Jain() float64 {
	if f == nil {
		return 1
	}
	return f.jain
}

// MaxMinRatio returns the last window's best/worst sender goodput
// ratio (1 = perfectly fair).
func (f *Fairness) MaxMinRatio() float64 {
	if f == nil {
		return 1
	}
	return f.ratio
}

// Totals returns the cumulative per-sender byte counts (the engine
// retains ownership; callers must not mutate).
func (f *Fairness) Totals() []uint64 {
	if f == nil {
		return nil
	}
	return f.cur
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over x,
// returning 1 for an empty or all-zero population.
func JainIndex(x []uint64) float64 {
	var sum, sumSq float64
	for _, v := range x {
		fv := float64(v)
		sum += fv
		sumSq += fv * fv
	}
	if len(x) == 0 || sum == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

// MaxMinRatio computes the max/min ratio over x with the same one-byte
// clamp as Fairness.Roll.
func MaxMinRatio(x []uint64) float64 {
	if len(x) == 0 {
		return 1
	}
	min, max := ^uint64(0), uint64(0)
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	if min == 0 {
		min = 1
	}
	return float64(max) / float64(min)
}

// SampleFairness scores one overlay metrics window from merged top-K
// snapshots: the population is the senders in cur, each weighted by
// its byte delta against prev (clamped at zero — eviction churn can
// shrink a re-entering sender's inherited counter). prev is rewritten
// in place to cur's values, dropping departed keys, so consecutive
// calls see consecutive windows. Unlike the simulator's exact engine
// this sees only tracked senders; DESIGN.md §16 spells out the
// difference.
func SampleFairness(prev map[Key]uint64, cur []Sample) (jain, ratio float64) {
	deltas := make([]uint64, len(cur))
	seen := make(map[Key]struct{}, len(cur))
	for i, s := range cur {
		seen[s.Key] = struct{}{}
		if p, ok := prev[s.Key]; ok && s.Bytes >= p {
			deltas[i] = s.Bytes - p
		} else if !ok {
			deltas[i] = s.Bytes
		}
		prev[s.Key] = s.Bytes
	}
	for k := range prev {
		if _, ok := seen[k]; !ok {
			delete(prev, k)
		}
	}
	// Deterministic regardless of map behaviour: deltas follow cur's
	// (already sorted) order and the index math below is order-free
	// anyway.
	sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
	return JainIndex(deltas), MaxMinRatio(deltas)
}
