package flowstats

import "math/bits"

// sketchDepth is the number of count-min rows. With width W, an
// estimate overshoots by more than (e/W)·N with probability about
// e^-depth per query (Cormode & Muthukrishnan); four rows put that
// under 2%.
const sketchDepth = 4

// sketchSeeds are fixed odd multipliers, one multiply-shift hash per
// row. Fixed (not per-process random) so same-seed runs produce
// byte-identical estimates — determinism outranks adversarial hash
// resistance here; an attacker who can engineer collisions still only
// inflates estimates, never hides traffic.
var sketchSeeds = [sketchDepth]uint64{
	0x9E3779B97F4A7C15,
	0xC2B2AE3D27D4EB4F,
	0x165667B19E3779F9,
	0x27D4EB2F165667C5,
}

// Sketch is a count-min sketch over sender keys: depth×width counters,
// flat and preallocated. Add never allocates; Estimate returns the
// minimum over rows, an overestimate bounded by ~(e/width)·N.
type Sketch struct {
	width uint32
	mask  uint32
	rows  []uint64
	n     uint64
}

// Init sizes the sketch; width is rounded up to a power of two.
func (s *Sketch) Init(width int) {
	if width < 2 {
		width = 2
	}
	w := 1 << bits.Len(uint(width-1))
	s.width = uint32(w)
	s.mask = uint32(w - 1)
	s.rows = make([]uint64, sketchDepth*w)
	s.n = 0
}

// add accounts n units (bytes) to key k in every row.
//
//tva:hotpath
func (s *Sketch) add(k Key, n uint64) {
	s.n += n
	base := uint32(0)
	for i := 0; i < sketchDepth; i++ {
		h := uint32((uint64(k)*sketchSeeds[i])>>32) & s.mask
		s.rows[base+h] += n
		base += s.width
	}
}

// Estimate returns the minimum row counter for k: at least the true
// count, over by at most ~(e/width)·N with high probability.
func (s *Sketch) Estimate(k Key) uint64 {
	min := ^uint64(0)
	base := uint32(0)
	for i := 0; i < sketchDepth; i++ {
		h := uint32((uint64(k)*sketchSeeds[i])>>32) & s.mask
		if v := s.rows[base+h]; v < min {
			min = v
		}
		base += s.width
	}
	return min
}

// N returns the exact stream total (sum of all added units).
func (s *Sketch) N() uint64 { return s.n }

// Width returns the (rounded) row width.
func (s *Sketch) Width() int { return int(s.width) }
