package flowstats

import (
	"testing"

	"tva/internal/packet"
)

// TestFlowStatsNoAllocs is the dynamic twin of the //tva:hotpath
// annotations: every record-path entry point must be allocation-free
// in steady state, including the full-table eviction path (the worst
// case: index delete + insert + heap sift per packet).
func TestFlowStatsNoAllocs(t *testing.T) {
	c := New(DefaultTopK, DefaultSketchWidth)

	hdr := &packet.CapHdr{
		Kind:    packet.KindRequest,
		Request: packet.RequestHdr{PathIDs: []packet.PathID{3}},
	}
	pkts := make([]packet.Packet, 4*DefaultTopK)
	for i := range pkts {
		pkts[i] = packet.Packet{Src: packet.Addr(i + 1), Size: 1000}
	}
	pkts[0].Hdr = hdr // one request so the path-id keying runs too

	// Warm past the fill phase so the loop below measures the
	// steady-state mix: found-key updates plus evictions.
	for i := range pkts {
		c.Observe(&pkts[i])
	}

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		p := &pkts[i%len(pkts)]
		c.Observe(p)
		c.Drop(p)
		c.Demote(p)
		i++
	})
	if allocs != 0 {
		t.Fatalf("flowstats record path allocates %.1f allocs/op, want 0", allocs)
	}

	var nilC *Collector
	allocs = testing.AllocsPerRun(100, func() {
		nilC.Observe(&pkts[0])
		nilC.Drop(&pkts[0])
		nilC.Demote(&pkts[0])
	})
	if allocs != 0 {
		t.Fatalf("nil collector no-ops allocate %.1f allocs/op, want 0", allocs)
	}
}
