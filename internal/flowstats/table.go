package flowstats

import (
	"math/bits"
	"sort"
)

// entry is one tracked sender. Bytes is the space-saving ranking
// counter: on eviction the replacement inherits the evicted minimum
// (so Bytes is an overestimate by at most Err); the auxiliary counters
// restart from zero at takeover, since inheriting another sender's
// drops would be pure noise.
type entry struct {
	key       Key
	bytes     uint64
	pkts      uint64
	drops     uint64
	demotions uint64
	err       uint64
}

// Sample is one exported table entry (or one merged row). Err is the
// space-saving overestimate bound on Bytes: zero for senders tracked
// since their first packet, the evicted minimum otherwise.
type Sample struct {
	Key       Key
	Bytes     uint64
	Pkts      uint64
	Drops     uint64
	Demotions uint64
	Err       uint64
}

// tableIndexFactor sizes the open-addressed index at 4 slots per
// entry, keeping linear-probe chains short (load factor <= 1/4 after
// rounding up to a power of two).
const tableIndexFactor = 4

// Table is a space-saving top-K heavy-hitter table: K preallocated
// entries, an open-addressed key index (no Go map — the hot path must
// not hash through runtime map code or allocate), and a min-heap over
// the ranking counter so eviction of the current minimum is O(log K).
type Table struct {
	k       int
	n       int
	entries []entry
	heap    []int32 // entry indices ordered by entries[i].bytes, min at root
	pos     []int32 // entry index -> heap position
	slots   []int32 // open-addressed index; entryIdx+1, 0 = empty
	mask    uint32
}

// Init sizes the table for k tracked senders. It is the only method
// that allocates.
func (t *Table) Init(k int) {
	if k < 1 {
		k = 1
	}
	nslots := 1 << bits.Len(uint(k*tableIndexFactor-1))
	t.k = k
	t.n = 0
	t.entries = make([]entry, k)
	t.heap = make([]int32, k)
	t.pos = make([]int32, k)
	t.slots = make([]int32, nslots)
	t.mask = uint32(nslots - 1)
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.n }

// K returns the table's capacity.
func (t *Table) K() int { return t.k }

// hashOf spreads a key over the slot space (multiply-shift with a
// fixed odd constant; determinism across runs is part of the merge
// contract).
//
//tva:hotpath
func (t *Table) hashOf(k Key) uint32 {
	return uint32((uint64(k)*0x9E3779B97F4A7C15)>>32) & t.mask
}

// find returns the entry index for key, or -1.
//
//tva:hotpath
func (t *Table) find(k Key) int32 {
	i := t.hashOf(k)
	for {
		s := t.slots[i]
		if s == 0 {
			return -1
		}
		if t.entries[s-1].key == k {
			return s - 1
		}
		i = (i + 1) & t.mask
	}
}

// insertSlot indexes entry idx under key k (k must be absent).
//
//tva:hotpath
func (t *Table) insertSlot(k Key, idx int32) {
	i := t.hashOf(k)
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.slots[i] = idx + 1
}

// removeKey unindexes k using backward-shift deletion, which keeps
// probe chains gap-free without tombstones.
//
//tva:hotpath
func (t *Table) removeKey(k Key) {
	i := t.hashOf(k)
	for {
		s := t.slots[i]
		if s == 0 {
			return
		}
		if t.entries[s-1].key == k {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		j = (j + 1) & t.mask
		s := t.slots[j]
		if s == 0 {
			break
		}
		h := t.hashOf(t.entries[s-1].key)
		// Slot j's occupant may fill the hole at i only if its home
		// position is cyclically at or before i — i.e. i lies inside
		// its probe chain.
		if ((j - h) & t.mask) >= ((j - i) & t.mask) {
			t.slots[i] = s
			i = j
		}
	}
	t.slots[i] = 0
}

// siftDown restores heap order downward from heap position p after
// the ranking counter there grew.
//
//tva:hotpath
func (t *Table) siftDown(p int32) {
	h := t.heap
	n := int32(t.n)
	for {
		l := 2*p + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && t.entries[h[r]].bytes < t.entries[h[l]].bytes {
			m = r
		}
		if t.entries[h[m]].bytes >= t.entries[h[p]].bytes {
			return
		}
		h[p], h[m] = h[m], h[p]
		t.pos[h[p]] = p
		t.pos[h[m]] = m
		p = m
	}
}

// heapPush appends entry idx (already in entries) at the heap's end
// and sifts it up.
//
//tva:hotpath
func (t *Table) heapPush(idx int32) {
	h := t.heap
	p := int32(t.n) - 1 // caller bumped t.n; new element goes last
	h[p] = idx
	t.pos[idx] = p
	for p > 0 {
		parent := (p - 1) / 2
		if t.entries[h[parent]].bytes <= t.entries[h[p]].bytes {
			return
		}
		h[p], h[parent] = h[parent], h[p]
		t.pos[h[p]] = p
		t.pos[h[parent]] = parent
		p = parent
	}
}

// touch accounts one event to key k: bytes/pkts on observation,
// drops/demotions at loss sites. Space-saving semantics apply to the
// byte counter: a new sender seen while the table is full replaces the
// current minimum and inherits its byte count (recording the old
// minimum as the entry's error bound). Zero-byte events (drops,
// demotions) never evict — an untracked sender's losses are simply
// not attributed rather than displacing a real heavy hitter.
//
//tva:hotpath
func (t *Table) touch(k Key, bytes, pkts, drops, demotions uint64) {
	if idx := t.find(k); idx >= 0 {
		e := &t.entries[idx]
		e.bytes += bytes
		e.pkts += pkts
		e.drops += drops
		e.demotions += demotions
		if bytes > 0 {
			t.siftDown(t.pos[idx])
		}
		return
	}
	if t.n < t.k {
		idx := int32(t.n)
		t.n++
		e := &t.entries[idx]
		e.key = k
		e.bytes = bytes
		e.pkts = pkts
		e.drops = drops
		e.demotions = demotions
		e.err = 0
		t.insertSlot(k, idx)
		t.heapPush(idx)
		return
	}
	if bytes == 0 {
		return
	}
	root := t.heap[0]
	e := &t.entries[root]
	t.removeKey(e.key)
	e.err = e.bytes
	e.key = k
	e.bytes += bytes
	e.pkts = pkts
	e.drops = drops
	e.demotions = demotions
	t.insertSlot(k, root)
	t.siftDown(0)
}

// MaxBytes returns the largest tracked byte count (0 when empty).
func (t *Table) MaxBytes() uint64 {
	var max uint64
	for i := 0; i < t.n; i++ {
		if b := t.entries[i].bytes; b > max {
			max = b
		}
	}
	return max
}

// AppendSamples appends the live entries to dst, unsorted.
func (t *Table) AppendSamples(dst []Sample) []Sample {
	for i := 0; i < t.n; i++ {
		e := &t.entries[i]
		dst = append(dst, Sample{
			Key: e.key, Bytes: e.bytes, Pkts: e.pkts,
			Drops: e.drops, Demotions: e.demotions, Err: e.err,
		})
	}
	return dst
}

// SortSamples orders samples for display and export: bytes descending,
// key ascending on ties — a total order, so equal inputs always yield
// byte-identical output.
func SortSamples(s []Sample) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Bytes != s[j].Bytes {
			return s[i].Bytes > s[j].Bytes
		}
		return s[i].Key < s[j].Key
	})
}

// MergeSamples combines snapshots from several collectors (shards,
// ports, engines) into one deterministic ranking: counters are summed
// per key, then rows are ordered by SortSamples and truncated to k
// (k <= 0 keeps every row). The result depends only on the multiset
// of input rows, never on shard iteration order.
func MergeSamples(in []Sample, k int) []Sample {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Key < in[j].Key })
	out := in[:0]
	cur := in[0]
	for _, s := range in[1:] {
		if s.Key == cur.Key {
			cur.Bytes += s.Bytes
			cur.Pkts += s.Pkts
			cur.Drops += s.Drops
			cur.Demotions += s.Demotions
			cur.Err += s.Err
			continue
		}
		out = append(out, cur)
		cur = s
	}
	out = append(out, cur)
	SortSamples(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
