// Command tvarouter runs a userspace TVA capability router over UDP —
// the inline packet-processing box of the paper's deployment story
// (§8). Example:
//
//	tvarouter -listen 127.0.0.1:7000 \
//	    -route 10.0.0.1=127.0.0.1:7001 \
//	    -route 10.0.0.2=127.0.0.2:7002 \
//	    -rate 10000000 \
//	    -metrics 127.0.0.1:9100
//
// Routes map TVA addresses to next-hop UDP addresses (another router
// or a tvaping/overlay host proxy). With -metrics the router serves
// Prometheus text exposition at /metrics (watch it live with tvatop)
// and logs attack-onset health transitions.
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/flowstats"
	"tva/internal/metrics"
	"tva/internal/overlay"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

type routeList []string

func (r *routeList) String() string     { return strings.Join(*r, ",") }
func (r *routeList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "UDP address to bind")
	rate := flag.Int64("rate", 0, "per-neighbour link pacing in bits/s (0 = unpaced)")
	reqFrac := flag.Float64("request-fraction", 0.05, "request channel share of the link")
	fast := flag.Bool("fast-hash", false, "use the fast (non-crypto) hash suite")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 = never)")
	debugAddr := flag.String("pprof", "", "serve pprof and expvar diagnostics on this address (e.g. 127.0.0.1:6060)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text exposition at /metrics on this address (e.g. 127.0.0.1:9100)")
	metricsEvery := flag.Duration("metrics-interval", time.Second, "metrics sampling / health detector tick interval")
	metricsWindow := flag.Int("metrics-window", 600, "retained metrics rows (ticks)")
	batch := flag.Int("batch", 1, "datagrams per socket burst (recvmmsg/sendmmsg where available); 1 = per-datagram path")
	shards := flag.Int("shards", 0, "per-flow worker shards for capability processing (needs -batch > 1; 0/1 = single engine)")
	var routes routeList
	flag.Var(&routes, "route", "addr=udphost:port (repeatable)")
	def := flag.String("default", "", "default next hop udphost:port")
	flag.Parse()

	suite := capability.Crypto
	if *fast {
		suite = capability.Fast
	}
	r, err := overlay.NewRouter(overlay.RouterConfig{
		Listen:          *listen,
		LinkBps:         *rate,
		RequestFraction: *reqFrac,
		Batch:           *batch,
		Shards:          *shards,
		Core: core.RouterConfig{
			Suite:         suite,
			TrustBoundary: true,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Close()

	for _, spec := range routes {
		addrStr, via, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -route %q (want addr=host:port)\n", spec)
			os.Exit(2)
		}
		addr, err := parseAddr(addrStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := r.AddRoute(addr, via); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *def != "" {
		if err := r.SetDefaultRoute(*def); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fmt.Printf("tvarouter listening on %s (%d routes, suite=%s, batch=%d, shards=%d)\n",
		r.Addr(), len(routes), suite.Name, *batch, *shards)

	// Every background goroutine below selects on stop and joins bg, so
	// shutdown is a close + Wait, not a process-exit shrug; the goleak
	// analyzer (internal/lint) enforces exactly this shape.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	var listeners []net.Listener

	// The registry is built after every route is installed, so each
	// neighbour port gets its labelled series; it is the single source
	// of truth behind /metrics, /debug/vars, and the health engine.
	m := r.Metrics(*metricsWindow, metrics.DetectorConfig{})
	m.Health.OnTransition = func(tr metrics.Transition) {
		fmt.Printf("health: %s\n", tr)
	}
	m.Tick(tvatime.WallClock{}.Now()) // seal + first row before anything scrapes
	bg.Add(1)
	go func() {
		defer bg.Done()
		t := time.NewTicker(*metricsEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Tick(tvatime.WallClock{}.Now())
			case <-stop:
				return
			}
		}
	}()

	// /metrics (and the per-sender /flows JSON) on the default mux too,
	// so -pprof alone also exposes them.
	http.Handle("/metrics", metrics.Handler(m.Registry))
	http.Handle("/flows", flowsHandler(r))
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		listeners = append(listeners, ln)
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(m.Registry))
		mux.Handle("/flows", flowsHandler(r))
		bg.Add(1)
		go func() {
			defer bg.Done()
			// Serve returns once ln is closed at shutdown.
			if err := http.Serve(ln, mux); err != nil && !isClosed(err) {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
		// The resolved address (not the flag) so :0 works in scripts.
		fmt.Printf("metrics on http://%s/metrics (per-sender flows at /flows)\n", ln.Addr())
	}

	if *debugAddr != "" {
		// /debug/pprof (profiles) and /debug/vars (expvar) on the
		// default mux; both packages register themselves on import.
		expvar.Publish("tva", expvar.Func(func() any { return diagnostics(m) }))
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprof:", err)
			os.Exit(1)
		}
		listeners = append(listeners, ln)
		bg.Add(1)
		go func() {
			defer bg.Done()
			if err := http.Serve(ln, nil); err != nil && !isClosed(err) {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
		fmt.Printf("diagnostics on http://%s/debug/pprof and /debug/vars\n", ln.Addr())
	}

	if *stats > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			t := time.NewTicker(*stats)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Printf("stats: received=%d forwarded=%d unroutable=%d malformed=%d health=%s\n",
						r.Received.Load(), r.Forwarded.Load(), r.Unroutable.Load(),
						r.Malformed.Load(), m.Health.State())
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	close(stop)
	for _, ln := range listeners {
		ln.Close()
	}
	bg.Wait()
}

// flowRow is one /flows table entry: a tracked sender's aggregates at
// this router. err bounds the space-saving overcount on bytes (true
// count is within [bytes-err, bytes]).
type flowRow struct {
	Src       string `json:"src"`
	Path      uint16 `json:"path,omitempty"` // non-zero: request traffic keyed by path-id
	Bytes     uint64 `json:"bytes"`
	Err       uint64 `json:"err,omitempty"`
	Pkts      uint64 `json:"pkts"`
	Drops     uint64 `json:"drops,omitempty"`
	Demotions uint64 `json:"demotions,omitempty"`
}

// flowsHandler serves the per-sender heavy-hitter table as JSON. Each
// request takes its own FlowSnapshot (stateless — no shared window
// state with the metrics ticker), so the fairness pair here is
// cumulative over the tracked senders' total bytes, while the
// registry's fairness gauges are per metrics window.
func flowsHandler(r *overlay.Router) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rows, total := r.FlowSnapshot()
		bytes := make([]uint64, len(rows))
		out := make([]flowRow, len(rows))
		for i, s := range rows {
			bytes[i] = s.Bytes
			out[i] = flowRow{
				Src:       s.Key.Src().String(),
				Path:      uint16(s.Key.Path()),
				Bytes:     s.Bytes,
				Err:       s.Err,
				Pkts:      s.Pkts,
				Drops:     s.Drops,
				Demotions: s.Demotions,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"tracked":      len(rows),
			"total_bytes":  total,
			"jain":         flowstats.JainIndex(bytes),
			"maxmin_ratio": flowstats.MaxMinRatio(bytes),
			"flows":        out,
		})
	})
}

// isClosed reports the http.Serve error produced by closing its
// listener during shutdown — expected, not worth logging.
func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// diagnostics renders the legacy /debug/vars block by re-reading the
// metrics registry — the expvar names survive as aliases, but every
// value now has exactly one source of truth, so /metrics and
// /debug/vars can never disagree. The shape matches the pre-metrics
// output: forwarding totals, reason-attributed scheduler drops,
// demotion causes, flow-cache occupancy, the hop-wait estimate, burst
// fill levels, and one structured gauge block per neighbour port.
func diagnostics(m *overlay.RouterMetrics) map[string]any {
	out := map[string]any{}
	drops := map[string]uint64{}
	demotions := map[string]uint64{}
	portBlocks := map[string]map[string]any{}
	var portOrder []string
	portFor := func(name string) map[string]any {
		blk, ok := portBlocks[name]
		if !ok {
			blk = map[string]any{"neighbor": name}
			portBlocks[name] = blk
			portOrder = append(portOrder, name)
		}
		return blk
	}
	var dropsTotal uint64
	m.Registry.Each(func(s metrics.SeriesView) {
		switch s.Name {
		case metrics.NameRouterReceived:
			out["received"] = uint64(s.Value)
		case metrics.NameRouterForwarded:
			out["forwarded"] = uint64(s.Value)
		case metrics.NameRouterUnroutable:
			out["unroutable"] = uint64(s.Value)
		case metrics.NameRouterMalformed:
			out["malformed"] = uint64(s.Value)
		case metrics.NameSchedDrops:
			dropsTotal += uint64(s.Value)
			if s.Value > 0 {
				drops[label(s, "reason")] = uint64(s.Value)
			}
		case metrics.NameDemotions:
			if s.Value > 0 {
				demotions[label(s, "reason")] = uint64(s.Value)
			}
		case metrics.NameFlowCacheEntries:
			out["flowcache_entries"] = int(s.Value)
		case metrics.NameQueueWaitEWMA:
			out["queue_wait_us"] = uint32(s.Value)
		case metrics.NameRxBurstFill:
			out["rx_burst_fill"] = s.Value
		case metrics.NameTxBurstFill:
			out["tx_burst_fill"] = s.Value
		case metrics.NameQueuePkts:
			blk := portFor(label(s, "port"))
			blk["queue_"+label(s, "class")+"_pkts"] = int(s.Value)
		case metrics.NameRegularQueues:
			portFor(label(s, "port"))["regular_queues"] = int(s.Value)
		case metrics.NameTokenBucket:
			portFor(label(s, "port"))["token_bucket_bytes"] = s.Value
		case metrics.NamePortSent:
			portFor(label(s, "port"))["sent_pkts"] = uint64(s.Value)
		case metrics.NamePortDropped:
			portFor(label(s, "port"))["dropped_pkts"] = uint64(s.Value)
		case metrics.NameHealthState:
			out["health"] = metrics.State(s.Value).String()
		}
	})
	out["sched_drops"] = drops
	out["sched_drops_total"] = dropsTotal
	out["demotions"] = demotions
	ports := make([]map[string]any, 0, len(portOrder))
	for _, name := range portOrder {
		ports = append(ports, portBlocks[name])
	}
	out["ports"] = ports
	return out
}

func label(s metrics.SeriesView, key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

func parseAddr(s string) (packet.Addr, error) {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad TVA address %q (want dotted quad)", s)
	}
	return packet.AddrFrom(a, b, c, d), nil
}
