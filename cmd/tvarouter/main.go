// Command tvarouter runs a userspace TVA capability router over UDP —
// the inline packet-processing box of the paper's deployment story
// (§8). Example:
//
//	tvarouter -listen 127.0.0.1:7000 \
//	    -route 10.0.0.1=127.0.0.1:7001 \
//	    -route 10.0.0.2=127.0.0.2:7002 \
//	    -rate 10000000
//
// Routes map TVA addresses to next-hop UDP addresses (another router
// or a tvaping/overlay host proxy).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/overlay"
	"tva/internal/packet"
	"tva/internal/telemetry"
)

type routeList []string

func (r *routeList) String() string     { return strings.Join(*r, ",") }
func (r *routeList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "UDP address to bind")
	rate := flag.Int64("rate", 0, "per-neighbour link pacing in bits/s (0 = unpaced)")
	reqFrac := flag.Float64("request-fraction", 0.05, "request channel share of the link")
	fast := flag.Bool("fast-hash", false, "use the fast (non-crypto) hash suite")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 = never)")
	debugAddr := flag.String("pprof", "", "serve pprof and expvar diagnostics on this address (e.g. 127.0.0.1:6060)")
	batch := flag.Int("batch", 1, "datagrams per socket burst (recvmmsg/sendmmsg where available); 1 = per-datagram path")
	shards := flag.Int("shards", 0, "per-flow worker shards for capability processing (needs -batch > 1; 0/1 = single engine)")
	var routes routeList
	flag.Var(&routes, "route", "addr=udphost:port (repeatable)")
	def := flag.String("default", "", "default next hop udphost:port")
	flag.Parse()

	suite := capability.Crypto
	if *fast {
		suite = capability.Fast
	}
	r, err := overlay.NewRouter(overlay.RouterConfig{
		Listen:          *listen,
		LinkBps:         *rate,
		RequestFraction: *reqFrac,
		Batch:           *batch,
		Shards:          *shards,
		Core: core.RouterConfig{
			Suite:         suite,
			TrustBoundary: true,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Close()

	for _, spec := range routes {
		addrStr, via, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -route %q (want addr=host:port)\n", spec)
			os.Exit(2)
		}
		addr, err := parseAddr(addrStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := r.AddRoute(addr, via); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *def != "" {
		if err := r.SetDefaultRoute(*def); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fmt.Printf("tvarouter listening on %s (%d routes, suite=%s, batch=%d, shards=%d)\n",
		r.Addr(), len(routes), suite.Name, *batch, *shards)

	if *debugAddr != "" {
		// /debug/pprof (profiles) and /debug/vars (expvar) on the
		// default mux; both packages register themselves on import.
		expvar.Publish("tva", expvar.Func(func() any { return diagnostics(r) }))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
		fmt.Printf("diagnostics on http://%s/debug/pprof and /debug/vars\n", *debugAddr)
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				fmt.Printf("stats: received=%d forwarded=%d unroutable=%d malformed=%d\n",
					r.Received, r.Forwarded, r.Unroutable, r.Malformed)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

// diagnostics snapshots the router's counters for /debug/vars:
// forwarding totals, reason-attributed scheduler drops, demotion
// causes, flow-cache occupancy, the hop-wait estimate, burst fill
// levels of the batched data path, and one structured gauge block per
// neighbour port (the same gauges the simulator's sampler records:
// per-class backlogs, live fair queues, and the request channel's
// token level). The demotion and cache numbers go through the
// shard-aware accessors, so they aggregate the per-flow workers when
// -shards is on.
func diagnostics(r *overlay.Router) map[string]any {
	schedDrops := r.SchedDrops()
	coreDem := r.CoreDemotions()
	drops := make(map[string]uint64, telemetry.NumDropReasons)
	demotions := make(map[string]uint64, telemetry.NumDropReasons)
	for i := 0; i < telemetry.NumDropReasons; i++ {
		reason := telemetry.DropReason(i)
		if n := schedDrops.Get(reason); n > 0 {
			drops[reason.String()] = n
		}
		if n := coreDem.Get(reason); n > 0 {
			demotions[reason.String()] = n
		}
	}
	ports := make([]map[string]any, 0, 4)
	for _, g := range r.Gauges() {
		ports = append(ports, map[string]any{
			"neighbor":           g.Neighbor,
			"queue_request_pkts": g.RequestPkts,
			"queue_regular_pkts": g.RegularPkts,
			"queue_legacy_pkts":  g.LegacyPkts,
			"regular_queues":     g.RegularQueues,
			"token_bucket_bytes": g.TokenBytes,
			"sent_pkts":          g.Sent,
			"dropped_pkts":       g.Dropped,
		})
	}
	return map[string]any{
		"received":          r.Received,
		"forwarded":         r.Forwarded,
		"unroutable":        r.Unroutable,
		"malformed":         r.Malformed,
		"sched_drops":       drops,
		"sched_drops_total": schedDrops.Total(),
		"demotions":         demotions,
		"flowcache_entries": r.FlowCacheEntries(),
		"queue_wait_us":     r.QueueWaitMicros(),
		"rx_burst_fill":     r.RxBurstFill(),
		"tx_burst_fill":     r.TxBurstFill(),
		"ports":             ports,
	}
}

func parseAddr(s string) (packet.Addr, error) {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad TVA address %q (want dotted quad)", s)
	}
	return packet.AddrFrom(a, b, c, d), nil
}
