// tvaxcheck cross-validates the two data planes: it runs scenario
// specs on both the discrete-event simulator and an in-process
// loopback overlay deployment, compares the shared metric series,
// drop attribution, and queue-wait distributions, and exits non-zero
// when any gated check exceeds its declared tolerance.
//
// Usage:
//
//	tvaxcheck                      # run the canonical scenarios (baseline, flood)
//	tvaxcheck baseline             # run one builtin by name
//	tvaxcheck -scenario spec.json  # run a JSON scenario spec
//	tvaxcheck -o report.json       # also write the JSON divergence report
//	tvaxcheck -list                # list builtin scenarios
package main

import (
	"flag"
	"fmt"
	"os"

	"tva/internal/xcheck"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list builtin scenarios and exit")
		specPath = flag.String("scenario", "", "path to a JSON scenario spec (may repeat via args)")
		out      = flag.String("o", "", "write the JSON divergence report to this file")
	)
	flag.Parse()

	if *list {
		for _, s := range xcheck.Builtins {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return
	}

	var scenarios []xcheck.Scenario
	if *specPath != "" {
		sc, err := xcheck.LoadScenario(*specPath)
		if err != nil {
			fatal(err)
		}
		scenarios = append(scenarios, sc)
	}
	for _, name := range flag.Args() {
		sc, ok := xcheck.Builtin(name)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q (try -list)", name))
		}
		scenarios = append(scenarios, sc)
	}
	if len(scenarios) == 0 {
		scenarios = xcheck.Builtins
	}

	var comparisons []*xcheck.Comparison
	for _, sc := range scenarios {
		fmt.Fprintf(os.Stderr, "xcheck: running %s on both planes...\n", sc.Name)
		c, err := xcheck.RunScenario(sc)
		if err != nil {
			fatal(err)
		}
		comparisons = append(comparisons, c)
	}
	report := xcheck.NewReport(comparisons)

	if err := report.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if !report.Pass {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvaxcheck:", err)
	os.Exit(1)
}
