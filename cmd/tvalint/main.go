// Command tvalint runs the repository's custom analyzers (hotpath,
// determinism, dropreason, poolowner, lockorder, atomicfield, goleak,
// metricname — see internal/lint) over the module and exits non-zero
// if any invariant is violated. `tvalint -list` prints the suite with
// one-line descriptions.
//
// Usage:
//
//	tvalint [-json] [-checks hotpath,determinism,...] [packages]
//
// Packages default to ./... relative to the current directory, which
// must be inside the module. Findings print as file:line:col: [check]
// message; with -json they stream as one JSON object per finding with
// file, line, col, check, and message fields, so CI and future tooling
// can consume them without scraping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tva/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := lint.Run(prog, nil, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			rec := struct {
				File    string `json:"file"`
				Line    int    `json:"line"`
				Col     int    `json:"col"`
				Check   string `json:"check"`
				Message string `json:"message"`
			}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tvalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
