// Command tvatop is a live terminal console for TVA routers: it polls
// one or more /metrics endpoints (tvarouter's exposition, or a file
// written by tvasim -prom) and renders per-interface throughput,
// queue occupancy and waits, request-channel token levels, the
// drop-reason mix, burst fill, and the attack-onset health state.
//
//	tvatop http://127.0.0.1:9100/metrics
//	tvatop -interval 2s http://r1:9100/metrics http://r2:9100/metrics
//	tvatop -once -require tva_health_state,tva_sched_drops_total URL
//	tvatop -once -require-set overlay URL
//
// With -once it scrapes each target a single time and prints one
// plain-text snapshot — no ANSI, no wall-clock text — so the output
// is a deterministic function of the scraped bytes (scripts diff it).
// -require lists series names that must be present in every target's
// exposition; -require-set requires one of the plane contracts
// declared in internal/metrics (shared, overlay, sim), so scripts
// anchor on the same constants both data planes register instead of
// their own literal lists. A missing series is a non-zero exit. The
// parser is strict: malformed exposition is an error, never a shrug.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tva/internal/metrics"
)

func main() {
	interval := flag.Duration("interval", time.Second, "poll interval in live mode")
	once := flag.Bool("once", false, "scrape once, print a plain snapshot, exit")
	require := flag.String("require", "", "comma-separated series names that must be present in every target")
	requireSet := flag.String("require-set", "", "require a named plane contract from internal/metrics: shared, overlay, or sim")
	timeout := flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tvatop [-once] [-interval D] [-require a,b] [-require-set shared|overlay|sim] URL...")
		os.Exit(2)
	}
	var required []string
	if *requireSet != "" {
		required = metrics.RequiredFor(*requireSet)
		if required == nil {
			fmt.Fprintf(os.Stderr, "tvatop: unknown -require-set %q (want shared, overlay, or sim)\n", *requireSet)
			os.Exit(2)
		}
	}
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	client := &http.Client{Timeout: *timeout}

	if *once {
		code := 0
		for _, url := range targets {
			sc, err := scrape(client, url)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tvatop: %s: %v\n", url, err)
				code = 1
				continue
			}
			if missing := missingSeries(sc, required); len(missing) > 0 {
				fmt.Fprintf(os.Stderr, "tvatop: %s: missing required series: %s\n",
					url, strings.Join(missing, ", "))
				code = 1
			}
			render(os.Stdout, url, sc)
		}
		os.Exit(code)
	}

	// The refresh loop is interrupt-aware: ctrl-c (or SIGTERM) lands on
	// sig and the console exits cleanly after the current frame instead
	// of dying mid-escape-sequence.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		var b strings.Builder
		b.WriteString("\x1b[2J\x1b[H") // clear + home
		for _, url := range targets {
			sc, err := scrape(client, url)
			if err != nil {
				fmt.Fprintf(&b, "== %s\n  scrape error: %v\n\n", url, err)
				continue
			}
			render(&b, url, sc)
		}
		fmt.Fprintf(&b, "-- %s  every %s  q to quit (ctrl-c)\n",
			time.Now().Format("15:04:05"), interval)
		os.Stdout.WriteString(b.String())
		select {
		case <-ticker.C:
		case <-sig:
			fmt.Println()
			return
		}
	}
}

// scrape fetches and strictly parses one exposition endpoint.
func scrape(client *http.Client, url string) (*metrics.Scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %s", resp.Status)
	}
	return metrics.ParseProm(resp.Body)
}

func missingSeries(sc *metrics.Scrape, required []string) []string {
	var missing []string
	for _, name := range required {
		if !sc.Has(name) {
			missing = append(missing, name)
		}
	}
	return missing
}

// value returns the first sample of name, or 0.
func value(sc *metrics.Scrape, name string) float64 {
	if s, ok := sc.Get(name); ok {
		return s.Value
	}
	return 0
}

// render writes one target's console block: health, forwarding rates,
// per-port queue state, waits, the drop mix, and burst fill. Every
// section iterates samples in sorted-ID order, so the block is a
// deterministic function of the scrape.
func render(w io.Writer, url string, sc *metrics.Scrape) {
	fmt.Fprintf(w, "== %s\n", url)

	// Health line.
	if sc.Has(metrics.NameHealthState) {
		state := metrics.State(value(sc, metrics.NameHealthState))
		fmt.Fprintf(w, "  health %-12s transitions %.0f\n",
			state, value(sc, metrics.NameHealthTransitions))
	}

	// Forwarding / goodput rates (overlay names first, sim fallback).
	if sc.Has(metrics.NameRouterReceived) {
		fmt.Fprintf(w, "  rx %spps  fwd %spps  received %.0f  forwarded %.0f  unroutable %.0f  malformed %.0f\n",
			rate(sc, metrics.NameRouterReceived), rate(sc, metrics.NameRouterForwarded),
			value(sc, metrics.NameRouterReceived), value(sc, metrics.NameRouterForwarded),
			value(sc, metrics.NameRouterUnroutable), value(sc, metrics.NameRouterMalformed))
	}
	if sc.Has(metrics.NameGoodputBytes) {
		fmt.Fprintf(w, "  goodput %sBps  total %.0f bytes\n",
			rate(sc, metrics.NameGoodputBytes), value(sc, metrics.NameGoodputBytes))
	}
	if sc.Has(metrics.NameLegitCompletion) {
		fmt.Fprintf(w, "  legit completion %5.1f%%  %s\n",
			100*value(sc, metrics.NameLegitCompletion),
			bar(value(sc, metrics.NameLegitCompletion), 20))
	}

	// Queue occupancy by port and class.
	if samples := sorted(sc.Select(metrics.NameQueuePkts)); len(samples) > 0 {
		fmt.Fprintf(w, "  queues:\n")
		for _, s := range samples {
			name := s.Label("class")
			if p := s.Label("port"); p != "" {
				name = p + "/" + name
			}
			fmt.Fprintf(w, "    %-28s %6.0f pkts\n", name, s.Value)
		}
	}
	for _, s := range sorted(sc.Select(metrics.NameRegularQueues)) {
		fmt.Fprintf(w, "  fair queues %-18s %6.0f\n", s.Label("port"), s.Value)
	}
	for _, s := range sorted(sc.Select(metrics.NameTokenBucket)) {
		fmt.Fprintf(w, "  req tokens  %-18s %8.0f B\n", s.Label("port"), s.Value)
	}

	// Queue waits: the EWMA hop estimate plus sketch quantiles.
	if sc.Has(metrics.NameQueueWaitEWMA) {
		fmt.Fprintf(w, "  queue wait ewma %.0fus\n", value(sc, metrics.NameQueueWaitEWMA))
	}
	for _, s := range sorted(sc.Select(metrics.NameQueueWait)) {
		fmt.Fprintf(w, "  queue wait %-5s %10.0fns\n", percentile(s.Label("q")), s.Value)
	}

	// Drop-reason mix with live rates, non-zero reasons only.
	if drops := sorted(sc.Select(metrics.NameSchedDrops)); len(drops) > 0 {
		var total float64
		for _, s := range drops {
			total += s.Value
		}
		if total > 0 {
			fmt.Fprintf(w, "  drops %.0f total:\n", total)
			for _, s := range drops {
				if s.Value == 0 {
					continue
				}
				fmt.Fprintf(w, "    %-24s %10.0f  %spps  %s\n",
					s.Label("reason"), s.Value,
					rateFor(sc, metrics.NameSchedDrops+":rate", s),
					bar(s.Value/total, 20))
			}
		}
	}

	// Burst fill (batching efficiency).
	for _, name := range []string{metrics.NameRxBurstFill, metrics.NameTxBurstFill} {
		if sc.Has(name) {
			fmt.Fprintf(w, "  %s %.2f\n", strings.TrimPrefix(strings.TrimSuffix(name, "_burst_fill"), "tva_")+" burst fill", value(sc, name))
		}
	}
	fmt.Fprintln(w)
}

// rate renders name's synthetic :rate series, or "-" before the
// source has ticked twice.
func rate(sc *metrics.Scrape, name string) string {
	if s, ok := sc.Get(name + ":rate"); ok {
		return fmt.Sprintf("%.1f ", s.Value)
	}
	return "- "
}

// rateFor finds the :rate sample whose labels match s.
func rateFor(sc *metrics.Scrape, rateName string, s metrics.Sample) string {
	for _, r := range sc.Select(rateName) {
		if labelsEqual(r.Labels, s.Labels) {
			return fmt.Sprintf("%8.1f ", r.Value)
		}
	}
	return "       - "
}

func labelsEqual(a, b []metrics.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sorted orders samples by their full series ID for stable output.
func sorted(samples []metrics.Sample) []metrics.Sample {
	out := append([]metrics.Sample(nil), samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// percentile renders a quantile label ("0.5", "0.99") as "p50"/"p99".
func percentile(q string) string {
	f, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return "p" + q
	}
	return fmt.Sprintf("p%g", 100*f)
}

// bar renders fraction f as a fixed-width meter.
func bar(f float64, width int) string {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n := int(f*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
