// Command tvatop is a live terminal console for TVA routers: it polls
// one or more /metrics endpoints (tvarouter's exposition, or a file
// written by tvasim -prom) and renders per-interface throughput,
// queue occupancy and waits, request-channel token levels, the
// drop-reason mix, burst fill, the attack-onset health state, and the
// per-sender flow view (top talkers, top dropped, the fairness gauge,
// and a per-tenant rollup) when the target's sibling /flows endpoint
// answers.
//
//	tvatop http://127.0.0.1:9100/metrics
//	tvatop -interval 2s http://r1:9100/metrics http://r2:9100/metrics
//	tvatop -once -require tva_health_state,tva_sched_drops_total URL
//	tvatop -once -require-set overlay URL
//
// With -once it scrapes each target a single time and prints one
// plain-text snapshot — no ANSI, no wall-clock text — so the output
// is a deterministic function of the scraped bytes (scripts diff it).
// -require lists series names that must be present in every target's
// exposition; -require-set requires one of the plane contracts
// declared in internal/metrics (shared, overlay, sim), so scripts
// anchor on the same constants both data planes register instead of
// their own literal lists. A missing series is a non-zero exit. The
// parser is strict: malformed exposition is an error, never a shrug.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tva/internal/metrics"
)

func main() {
	interval := flag.Duration("interval", time.Second, "poll interval in live mode")
	once := flag.Bool("once", false, "scrape once, print a plain snapshot, exit")
	require := flag.String("require", "", "comma-separated series names that must be present in every target")
	requireSet := flag.String("require-set", "", "require a named plane contract from internal/metrics: shared, overlay, or sim")
	timeout := flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tvatop [-once] [-interval D] [-require a,b] [-require-set shared|overlay|sim] URL...")
		os.Exit(2)
	}
	var required []string
	if *requireSet != "" {
		required = metrics.RequiredFor(*requireSet)
		if required == nil {
			fmt.Fprintf(os.Stderr, "tvatop: unknown -require-set %q (want shared, overlay, or sim)\n", *requireSet)
			os.Exit(2)
		}
	}
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	client := &http.Client{Timeout: *timeout}

	if *once {
		code := 0
		for _, url := range targets {
			sc, err := scrape(client, url)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tvatop: %s: %v\n", url, err)
				code = 1
				continue
			}
			if missing := missingSeries(sc, required); len(missing) > 0 {
				fmt.Fprintf(os.Stderr, "tvatop: %s: missing required series: %s\n",
					url, strings.Join(missing, ", "))
				code = 1
			}
			render(os.Stdout, url, sc)
			renderFlows(os.Stdout, client, url)
		}
		os.Exit(code)
	}

	// The refresh loop is interrupt-aware: ctrl-c (or SIGTERM) lands on
	// sig and the console exits cleanly after the current frame instead
	// of dying mid-escape-sequence.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		var b strings.Builder
		b.WriteString("\x1b[2J\x1b[H") // clear + home
		for _, url := range targets {
			sc, err := scrape(client, url)
			if err != nil {
				fmt.Fprintf(&b, "== %s\n  scrape error: %v\n\n", url, err)
				continue
			}
			render(&b, url, sc)
			renderFlows(&b, client, url)
		}
		fmt.Fprintf(&b, "-- %s  every %s  q to quit (ctrl-c)\n",
			time.Now().Format("15:04:05"), interval)
		os.Stdout.WriteString(b.String())
		select {
		case <-ticker.C:
		case <-sig:
			fmt.Println()
			return
		}
	}
}

// scrape fetches and strictly parses one exposition endpoint.
func scrape(client *http.Client, url string) (*metrics.Scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %s", resp.Status)
	}
	return metrics.ParseProm(resp.Body)
}

func missingSeries(sc *metrics.Scrape, required []string) []string {
	var missing []string
	for _, name := range required {
		if !sc.Has(name) {
			missing = append(missing, name)
		}
	}
	return missing
}

// value returns the first sample of name, or 0.
func value(sc *metrics.Scrape, name string) float64 {
	if s, ok := sc.Get(name); ok {
		return s.Value
	}
	return 0
}

// render writes one target's console block: health, forwarding rates,
// per-port queue state, waits, the drop mix, and burst fill. Every
// section iterates samples in sorted-ID order, so the block is a
// deterministic function of the scrape.
func render(w io.Writer, url string, sc *metrics.Scrape) {
	fmt.Fprintf(w, "== %s\n", url)

	// Health line.
	if sc.Has(metrics.NameHealthState) {
		state := metrics.State(value(sc, metrics.NameHealthState))
		fmt.Fprintf(w, "  health %-12s transitions %.0f\n",
			state, value(sc, metrics.NameHealthTransitions))
	}

	// Forwarding / goodput rates (overlay names first, sim fallback).
	if sc.Has(metrics.NameRouterReceived) {
		fmt.Fprintf(w, "  rx %spps  fwd %spps  received %.0f  forwarded %.0f  unroutable %.0f  malformed %.0f\n",
			rate(sc, metrics.NameRouterReceived), rate(sc, metrics.NameRouterForwarded),
			value(sc, metrics.NameRouterReceived), value(sc, metrics.NameRouterForwarded),
			value(sc, metrics.NameRouterUnroutable), value(sc, metrics.NameRouterMalformed))
	}
	if sc.Has(metrics.NameGoodputBytes) {
		fmt.Fprintf(w, "  goodput %sBps  total %.0f bytes\n",
			rate(sc, metrics.NameGoodputBytes), value(sc, metrics.NameGoodputBytes))
	}
	if sc.Has(metrics.NameLegitCompletion) {
		fmt.Fprintf(w, "  legit completion %5.1f%%  %s\n",
			100*value(sc, metrics.NameLegitCompletion),
			bar(value(sc, metrics.NameLegitCompletion), 20))
	}

	// Queue occupancy by port and class.
	if samples := sorted(sc.Select(metrics.NameQueuePkts)); len(samples) > 0 {
		fmt.Fprintf(w, "  queues:\n")
		for _, s := range samples {
			name := s.Label("class")
			if p := s.Label("port"); p != "" {
				name = p + "/" + name
			}
			fmt.Fprintf(w, "    %-28s %6.0f pkts\n", name, s.Value)
		}
	}
	for _, s := range sorted(sc.Select(metrics.NameRegularQueues)) {
		fmt.Fprintf(w, "  fair queues %-18s %6.0f\n", s.Label("port"), s.Value)
	}
	for _, s := range sorted(sc.Select(metrics.NameTokenBucket)) {
		fmt.Fprintf(w, "  req tokens  %-18s %8.0f B\n", s.Label("port"), s.Value)
	}

	// Queue waits: the EWMA hop estimate plus sketch quantiles.
	if sc.Has(metrics.NameQueueWaitEWMA) {
		fmt.Fprintf(w, "  queue wait ewma %.0fus\n", value(sc, metrics.NameQueueWaitEWMA))
	}
	for _, s := range sorted(sc.Select(metrics.NameQueueWait)) {
		fmt.Fprintf(w, "  queue wait %-5s %10.0fns\n", percentile(s.Label("q")), s.Value)
	}

	// Drop-reason mix with live rates, non-zero reasons only.
	if drops := sorted(sc.Select(metrics.NameSchedDrops)); len(drops) > 0 {
		var total float64
		for _, s := range drops {
			total += s.Value
		}
		if total > 0 {
			fmt.Fprintf(w, "  drops %.0f total:\n", total)
			for _, s := range drops {
				if s.Value == 0 {
					continue
				}
				fmt.Fprintf(w, "    %-24s %10.0f  %spps  %s\n",
					s.Label("reason"), s.Value,
					rateFor(sc, metrics.NameSchedDrops+":rate", s),
					bar(s.Value/total, 20))
			}
		}
	}

	// Burst fill (batching efficiency).
	for _, name := range []string{metrics.NameRxBurstFill, metrics.NameTxBurstFill} {
		if sc.Has(name) {
			fmt.Fprintf(w, "  %s %.2f\n", strings.TrimPrefix(strings.TrimSuffix(name, "_burst_fill"), "tva_")+" burst fill", value(sc, name))
		}
	}

	// Per-sender accounting aggregates and the fairness gauge (per
	// metrics window; 1.0 = every sender equal).
	if sc.Has(metrics.NameFlowTrackedSenders) {
		fmt.Fprintf(w, "  flows tracked %3.0f  bytes %.0f  top-share %5.1f%%\n",
			value(sc, metrics.NameFlowTrackedSenders),
			value(sc, metrics.NameFlowBytes),
			100*value(sc, metrics.NameFlowTopShare))
		jain := value(sc, metrics.NameFlowFairnessJain)
		fmt.Fprintf(w, "  fairness jain %6.4f %s  max/min %.2f\n",
			jain, bar(jain, 20), value(sc, metrics.NameFlowMaxMinRatio))
	}
	fmt.Fprintln(w)
}

// flowRow mirrors one entry of tvarouter's /flows JSON table.
type flowRow struct {
	Src       string `json:"src"`
	Path      uint16 `json:"path"`
	Bytes     uint64 `json:"bytes"`
	Err       uint64 `json:"err"`
	Pkts      uint64 `json:"pkts"`
	Drops     uint64 `json:"drops"`
	Demotions uint64 `json:"demotions"`
}

// flowsDoc mirrors the /flows JSON document.
type flowsDoc struct {
	Tracked     int       `json:"tracked"`
	TotalBytes  uint64    `json:"total_bytes"`
	Jain        float64   `json:"jain"`
	MaxMinRatio float64   `json:"maxmin_ratio"`
	Flows       []flowRow `json:"flows"`
}

// flowsURL derives the sibling /flows endpoint from a /metrics target
// ("" when the target is not a /metrics URL — e.g. a tvasim -prom
// file served some other way).
func flowsURL(metricsURL string) string {
	base, ok := strings.CutSuffix(metricsURL, "/metrics")
	if !ok {
		return ""
	}
	return base + "/flows"
}

// renderFlows fetches the target's sibling /flows endpoint and prints
// the per-sender view: top talkers, top dropped, and a per-tenant /16
// rollup. A target without the endpoint is skipped silently — the
// flows view is additive, never a scrape failure. The server returns
// rows pre-sorted (bytes descending, key ascending), so with -once the
// block is a deterministic function of the response.
func renderFlows(w io.Writer, client *http.Client, metricsURL string) {
	url := flowsURL(metricsURL)
	if url == "" {
		return
	}
	resp, err := client.Get(url)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var doc flowsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || len(doc.Flows) == 0 {
		return
	}

	fmt.Fprintf(w, "  -- flows (%d tracked, %d bytes, jain %.4f, max/min %.2f)\n",
		doc.Tracked, doc.TotalBytes, doc.Jain, doc.MaxMinRatio)
	fmt.Fprintf(w, "  top talkers:\n")
	for i, f := range doc.Flows {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "    %-20s %12d B %8d pkts %8d drops %6d demoted\n",
			senderName(f), f.Bytes, f.Pkts, f.Drops, f.Demotions)
	}

	// Top dropped: re-rank by drops (desc, then bytes desc, then the
	// server's row order) — the senders the schedulers squeezed hardest.
	dropped := append([]flowRow(nil), doc.Flows...)
	sort.SliceStable(dropped, func(i, j int) bool {
		if dropped[i].Drops != dropped[j].Drops {
			return dropped[i].Drops > dropped[j].Drops
		}
		return dropped[i].Bytes > dropped[j].Bytes
	})
	shown := 0
	for _, f := range dropped {
		if f.Drops == 0 || shown >= 5 {
			break
		}
		if shown == 0 {
			fmt.Fprintf(w, "  top dropped:\n")
		}
		fmt.Fprintf(w, "    %-20s %12d drops %10d B\n", senderName(f), f.Drops, f.Bytes)
		shown++
	}

	// Per-tenant rollup: aggregate by /16 address prefix (path-keyed
	// request rows pool under one "requests" tenant — their source
	// addresses are spoofable, so a prefix would be meaningless).
	type tenant struct {
		name               string
		bytes, pkts, drops uint64
	}
	byName := map[string]*tenant{}
	var order []string
	for _, f := range doc.Flows {
		name := "requests"
		if f.Path == 0 {
			if a, b, ok := prefix16(f.Src); ok {
				name = a + "." + b + ".0.0/16"
			} else {
				name = f.Src
			}
		}
		t, ok := byName[name]
		if !ok {
			t = &tenant{name: name}
			byName[name] = t
			order = append(order, name)
		}
		t.bytes += f.Bytes
		t.pkts += f.Pkts
		t.drops += f.Drops
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byName[order[i]], byName[order[j]]
		if a.bytes != b.bytes {
			return a.bytes > b.bytes
		}
		return a.name < b.name
	})
	fmt.Fprintf(w, "  tenants (/16):\n")
	for _, name := range order {
		t := byName[name]
		share := 0.0
		if doc.TotalBytes > 0 {
			share = float64(t.bytes) / float64(doc.TotalBytes)
		}
		fmt.Fprintf(w, "    %-20s %12d B %8d pkts %8d drops  %s\n",
			t.name, t.bytes, t.pkts, t.drops, bar(share, 20))
	}
	fmt.Fprintln(w)
}

// senderName renders a flow row's accounting identity: the source
// address, or the stamped path identifier for request traffic.
func senderName(f flowRow) string {
	if f.Path != 0 {
		return fmt.Sprintf("path:%d", f.Path)
	}
	return f.Src
}

// prefix16 splits a dotted-quad source into its first two octets.
func prefix16(src string) (a, b string, ok bool) {
	parts := strings.SplitN(src, ".", 3)
	if len(parts) < 3 {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// rate renders name's synthetic :rate series, or "-" before the
// source has ticked twice.
func rate(sc *metrics.Scrape, name string) string {
	if s, ok := sc.Get(name + ":rate"); ok {
		return fmt.Sprintf("%.1f ", s.Value)
	}
	return "- "
}

// rateFor finds the :rate sample whose labels match s.
func rateFor(sc *metrics.Scrape, rateName string, s metrics.Sample) string {
	for _, r := range sc.Select(rateName) {
		if labelsEqual(r.Labels, s.Labels) {
			return fmt.Sprintf("%8.1f ", r.Value)
		}
	}
	return "       - "
}

func labelsEqual(a, b []metrics.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sorted orders samples by their full series ID for stable output.
func sorted(samples []metrics.Sample) []metrics.Sample {
	out := append([]metrics.Sample(nil), samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// percentile renders a quantile label ("0.5", "0.99") as "p50"/"p99".
func percentile(q string) string {
	f, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return "p" + q
	}
	return fmt.Sprintf("p%g", 100*f)
}

// bar renders fraction f as a fixed-width meter.
func bar(f float64, width int) string {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n := int(f*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
