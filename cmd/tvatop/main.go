// Command tvatop is a live terminal console for TVA routers: it polls
// one or more /metrics endpoints (tvarouter's exposition, or a file
// written by tvasim -prom) and renders per-interface throughput,
// queue occupancy and waits, request-channel token levels, the
// drop-reason mix, burst fill, and the attack-onset health state.
//
//	tvatop http://127.0.0.1:9100/metrics
//	tvatop -interval 2s http://r1:9100/metrics http://r2:9100/metrics
//	tvatop -once -require tva_health_state,tva_sched_drops_total URL
//
// With -once it scrapes each target a single time and prints one
// plain-text snapshot — no ANSI, no wall-clock text — so the output
// is a deterministic function of the scraped bytes (scripts diff it).
// -require lists series names that must be present in every target's
// exposition; a missing one is a non-zero exit. The parser is strict:
// malformed exposition is an error, never a shrug.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tva/internal/metrics"
)

func main() {
	interval := flag.Duration("interval", time.Second, "poll interval in live mode")
	once := flag.Bool("once", false, "scrape once, print a plain snapshot, exit")
	require := flag.String("require", "", "comma-separated series names that must be present in every target")
	timeout := flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tvatop [-once] [-interval D] [-require a,b] URL...")
		os.Exit(2)
	}
	var required []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	client := &http.Client{Timeout: *timeout}

	if *once {
		code := 0
		for _, url := range targets {
			sc, err := scrape(client, url)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tvatop: %s: %v\n", url, err)
				code = 1
				continue
			}
			if missing := missingSeries(sc, required); len(missing) > 0 {
				fmt.Fprintf(os.Stderr, "tvatop: %s: missing required series: %s\n",
					url, strings.Join(missing, ", "))
				code = 1
			}
			render(os.Stdout, url, sc)
		}
		os.Exit(code)
	}

	for {
		var b strings.Builder
		b.WriteString("\x1b[2J\x1b[H") // clear + home
		for _, url := range targets {
			sc, err := scrape(client, url)
			if err != nil {
				fmt.Fprintf(&b, "== %s\n  scrape error: %v\n\n", url, err)
				continue
			}
			render(&b, url, sc)
		}
		fmt.Fprintf(&b, "-- %s  every %s  q to quit (ctrl-c)\n",
			time.Now().Format("15:04:05"), interval)
		os.Stdout.WriteString(b.String())
		time.Sleep(*interval)
	}
}

// scrape fetches and strictly parses one exposition endpoint.
func scrape(client *http.Client, url string) (*metrics.Scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %s", resp.Status)
	}
	return metrics.ParseProm(resp.Body)
}

func missingSeries(sc *metrics.Scrape, required []string) []string {
	var missing []string
	for _, name := range required {
		if !sc.Has(name) {
			missing = append(missing, name)
		}
	}
	return missing
}

// value returns the first sample of name, or 0.
func value(sc *metrics.Scrape, name string) float64 {
	if s, ok := sc.Get(name); ok {
		return s.Value
	}
	return 0
}

// render writes one target's console block: health, forwarding rates,
// per-port queue state, waits, the drop mix, and burst fill. Every
// section iterates samples in sorted-ID order, so the block is a
// deterministic function of the scrape.
func render(w io.Writer, url string, sc *metrics.Scrape) {
	fmt.Fprintf(w, "== %s\n", url)

	// Health line.
	if sc.Has("tva_health_state") {
		state := metrics.State(value(sc, "tva_health_state"))
		fmt.Fprintf(w, "  health %-12s transitions %.0f\n",
			state, value(sc, "tva_health_transitions_total"))
	}

	// Forwarding / goodput rates (overlay names first, sim fallback).
	if sc.Has("tva_router_received_total") {
		fmt.Fprintf(w, "  rx %spps  fwd %spps  received %.0f  forwarded %.0f  unroutable %.0f  malformed %.0f\n",
			rate(sc, "tva_router_received_total"), rate(sc, "tva_router_forwarded_total"),
			value(sc, "tva_router_received_total"), value(sc, "tva_router_forwarded_total"),
			value(sc, "tva_router_unroutable_total"), value(sc, "tva_router_malformed_total"))
	}
	if sc.Has("tva_goodput_bytes_total") {
		fmt.Fprintf(w, "  goodput %sBps  total %.0f bytes\n",
			rate(sc, "tva_goodput_bytes_total"), value(sc, "tva_goodput_bytes_total"))
	}
	if sc.Has("tva_legit_completion_fraction") {
		fmt.Fprintf(w, "  legit completion %5.1f%%  %s\n",
			100*value(sc, "tva_legit_completion_fraction"),
			bar(value(sc, "tva_legit_completion_fraction"), 20))
	}

	// Queue occupancy by port and class.
	if samples := sorted(sc.Select("tva_queue_pkts")); len(samples) > 0 {
		fmt.Fprintf(w, "  queues:\n")
		for _, s := range samples {
			name := s.Label("class")
			if p := s.Label("port"); p != "" {
				name = p + "/" + name
			}
			fmt.Fprintf(w, "    %-28s %6.0f pkts\n", name, s.Value)
		}
	}
	for _, s := range sorted(sc.Select("tva_regular_queues")) {
		fmt.Fprintf(w, "  fair queues %-18s %6.0f\n", s.Label("port"), s.Value)
	}
	for _, s := range sorted(sc.Select("tva_token_bucket_bytes")) {
		fmt.Fprintf(w, "  req tokens  %-18s %8.0f B\n", s.Label("port"), s.Value)
	}

	// Queue waits: the EWMA hop estimate plus sketch quantiles.
	if sc.Has("tva_queue_wait_ewma_us") {
		fmt.Fprintf(w, "  queue wait ewma %.0fus\n", value(sc, "tva_queue_wait_ewma_us"))
	}
	for _, s := range sorted(sc.Select("tva_queue_wait_ns")) {
		fmt.Fprintf(w, "  queue wait %-5s %10.0fns\n", percentile(s.Label("q")), s.Value)
	}

	// Drop-reason mix with live rates, non-zero reasons only.
	if drops := sorted(sc.Select("tva_sched_drops_total")); len(drops) > 0 {
		var total float64
		for _, s := range drops {
			total += s.Value
		}
		if total > 0 {
			fmt.Fprintf(w, "  drops %.0f total:\n", total)
			for _, s := range drops {
				if s.Value == 0 {
					continue
				}
				fmt.Fprintf(w, "    %-24s %10.0f  %spps  %s\n",
					s.Label("reason"), s.Value,
					rateFor(sc, "tva_sched_drops_total:rate", s),
					bar(s.Value/total, 20))
			}
		}
	}

	// Burst fill (batching efficiency).
	for _, name := range []string{"tva_rx_burst_fill", "tva_tx_burst_fill"} {
		if sc.Has(name) {
			fmt.Fprintf(w, "  %s %.2f\n", strings.TrimPrefix(strings.TrimSuffix(name, "_burst_fill"), "tva_")+" burst fill", value(sc, name))
		}
	}
	fmt.Fprintln(w)
}

// rate renders name's synthetic :rate series, or "-" before the
// source has ticked twice.
func rate(sc *metrics.Scrape, name string) string {
	if s, ok := sc.Get(name + ":rate"); ok {
		return fmt.Sprintf("%.1f ", s.Value)
	}
	return "- "
}

// rateFor finds the :rate sample whose labels match s.
func rateFor(sc *metrics.Scrape, rateName string, s metrics.Sample) string {
	for _, r := range sc.Select(rateName) {
		if labelsEqual(r.Labels, s.Labels) {
			return fmt.Sprintf("%8.1f ", r.Value)
		}
	}
	return "       - "
}

func labelsEqual(a, b []metrics.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sorted orders samples by their full series ID for stable output.
func sorted(samples []metrics.Sample) []metrics.Sample {
	out := append([]metrics.Sample(nil), samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// percentile renders a quantile label ("0.5", "0.99") as "p50"/"p99".
func percentile(q string) string {
	f, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return "p" + q
	}
	return fmt.Sprintf("p%g", 100*f)
}

// bar renders fraction f as a fixed-width meter.
func bar(f float64, width int) string {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n := int(f*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
