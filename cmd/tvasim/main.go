// Command tvasim regenerates the paper's simulation figures (§5):
//
//	tvasim -fig 8   # legacy packet floods          (Fig. 8)
//	tvasim -fig 9   # request packet floods         (Fig. 9)
//	tvasim -fig 10  # authorized floods (colluder)  (Fig. 10)
//	tvasim -fig 11  # imprecise authorization       (Fig. 11)
//	tvasim -fig all
//
// Output is whitespace-separated columns, one series per scheme, in
// the same shape as the paper's plots: completion fraction and average
// transfer time versus attacker count (Figs. 8–10), or per-transfer
// times versus start time (Fig. 11).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tva/internal/exp"
	"tva/internal/tvatime"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 10, 11 or all")
	schemesFlag := flag.String("schemes", "internet,siff,pushback,tva", "comma-separated schemes")
	attackersFlag := flag.String("attackers", "1,2,5,10,20,40,70,100", "attacker counts for figs 8-10")
	durationSec := flag.Float64("duration", 120, "simulated seconds per run")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS); results are identical at any worker count")
	flag.Parse()

	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	counts, err := parseInts(*attackersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dur := tvatime.FromSeconds(*durationSec).Sub(0)

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"8", "9", "10", "11"}
	}
	for _, f := range figs {
		switch f {
		case "8":
			sweepFigure("Figure 8: legacy traffic flood", exp.AttackLegacyFlood, schemes, counts, dur, *seed, *workers)
		case "9":
			sweepFigure("Figure 9: request packet flood", exp.AttackRequestFlood, schemes, counts, dur, *seed, *workers)
		case "10":
			sweepFigure("Figure 10: authorized traffic flood (colluder)", exp.AttackAuthorizedFlood, schemes, counts, dur, *seed, *workers)
		case "11":
			figure11(schemes, dur, *seed, *workers)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}

func parseSchemes(s string) ([]exp.Scheme, error) {
	var out []exp.Scheme
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "internet":
			out = append(out, exp.SchemeInternet)
		case "tva":
			out = append(out, exp.SchemeTVA)
		case "siff":
			out = append(out, exp.SchemeSIFF)
		case "pushback":
			out = append(out, exp.SchemePushback)
		case "":
		default:
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad attacker count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func sweepFigure(title string, attack exp.Attack, schemes []exp.Scheme, counts []int, dur tvatime.Duration, seed int64, workers int) {
	cfgs := make([]exp.Config, 0, len(schemes)*len(counts))
	for _, scheme := range schemes {
		for _, k := range counts {
			cfgs = append(cfgs, exp.Config{
				Scheme:       scheme,
				Attack:       attack,
				NumAttackers: k,
				Duration:     dur,
				Seed:         seed,
			})
		}
	}
	results := exp.RunMany(cfgs, workers)

	fmt.Printf("# %s\n", title)
	fmt.Printf("%-10s %10s %12s %14s\n", "scheme", "attackers", "completion", "xfer-time(s)")
	i := 0
	for _, scheme := range schemes {
		for _, k := range counts {
			res := results[i]
			i++
			fmt.Printf("%-10s %10d %12.3f %14.3f\n",
				scheme, k, res.CompletionFraction(), res.AvgTransferTime())
		}
		fmt.Println()
	}
}

// figure11 prints per-2s-bucket maxima of transfer time for the
// high-intensity (all at once) and low-intensity (10 at a time)
// imprecise-authorization attacks, for TVA and SIFF (the schemes in
// the paper's Fig. 11).
func figure11(schemes []exp.Scheme, dur tvatime.Duration, seed int64, workers int) {
	fmt.Println("# Figure 11: imprecise authorization (100 attackers granted 32KB/10s once; attack at t=10s)")
	groupings := []int{1, 10}
	var cfgs []exp.Config
	var plotted []exp.Scheme
	for _, scheme := range schemes {
		if scheme != exp.SchemeTVA && scheme != exp.SchemeSIFF {
			continue
		}
		plotted = append(plotted, scheme)
		for _, groups := range groupings {
			cfgs = append(cfgs, exp.Config{
				Scheme:       scheme,
				Attack:       exp.AttackImpreciseAuth,
				NumAttackers: 100,
				AttackGroups: groups,
				AttackStart:  10 * tvatime.Second,
				Duration:     dur,
				Seed:         seed,
			})
		}
	}
	results := exp.RunMany(cfgs, workers)
	i := 0
	for _, scheme := range plotted {
		for _, groups := range groupings {
			label := "all-at-once"
			if groups > 1 {
				label = "10-at-a-time"
			}
			res := results[i]
			i++
			fmt.Printf("%-6s %-13s completion=%.3f avg=%.3fs\n",
				scheme, label, res.CompletionFraction(), res.AvgTransferTime())
			starts, durs := res.Series()
			fmt.Printf("  %8s %12s\n", "t(s)", "max-xfer(s)")
			for lo := 0.0; lo < dur.Seconds(); lo += 2 {
				maxDur := 0.0
				for i, st := range starts {
					if st >= lo && st < lo+2 && durs[i] > maxDur {
						maxDur = durs[i]
					}
				}
				fmt.Printf("  %8.0f %12.2f\n", lo, maxDur)
			}
			fmt.Println()
		}
	}
}
